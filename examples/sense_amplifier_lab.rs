//! Analog sense-amplifier lab: run the classic (Fig. 2c) and OCSA (Fig. 9b)
//! event schedules, observe the delayed charge sharing, and sweep threshold
//! mismatch to see why vendors moved to offset-cancellation designs.
//!
//! ```text
//! cargo run --release --example sense_amplifier_lab
//! ```

use hifi_dram::analog::events::{
    max_tolerated_offset, simulate_classic_activation, simulate_ocsa_activation, ActivationConfig,
};
use hifi_dram::circuit::topology::SaTopologyKind;

fn main() {
    let cfg = ActivationConfig::default();
    println!(
        "Testbench: Vdd={} V, Vpre={} V, cell={} fF, bitline={} fF\n",
        cfg.vdd, cfg.vpre, cfg.c_cell_ff, cfg.c_bitline_ff
    );

    println!("== Activation events (stored 1) ==");
    let classic = simulate_classic_activation(&cfg, true);
    let ocsa = simulate_ocsa_activation(&cfg, true);
    for (name, r) in [("classic", &classic), ("OCSA", &ocsa)] {
        println!(
            "{name:>8}: charge-sharing onset {:>5.2} ns, latch split {:>5.2} ns, restored {:.3} V, correct={}",
            r.charge_sharing_onset.unwrap_or(f64::NAN) * 1e9,
            r.latch_split_time.unwrap_or(f64::NAN) * 1e9,
            r.restored_level,
            r.correct
        );
    }
    let delay = (ocsa.charge_sharing_onset.unwrap() - classic.charge_sharing_onset.unwrap()) * 1e9;
    println!(
        "\nOCSA charge sharing is delayed by {delay:.1} ns — the offset-cancellation\n\
         phase runs first (Fig. 9b / Section VI-D).\n"
    );

    println!("== Sensing with threshold mismatch (stored 1, -80 mV on nSA_l) ==");
    let mut skewed = cfg.clone();
    skewed.nsa_vt_offset = -0.08;
    let c = simulate_classic_activation(&skewed, true);
    let o = simulate_ocsa_activation(&skewed, true);
    println!(
        "classic senses: {} (expected failure)",
        if c.correct { "1 ok" } else { "0 WRONG" }
    );
    println!(
        "OCSA    senses: {} (offset cancelled)\n",
        if o.correct { "1 ok" } else { "0 WRONG" }
    );

    println!("== Offset tolerance sweep (20 mV steps) ==");
    let tc = max_tolerated_offset(SaTopologyKind::Classic, &cfg, 20.0, 160.0);
    let to = max_tolerated_offset(SaTopologyKind::OffsetCancellation, &cfg, 20.0, 160.0);
    println!("classic tolerates ±{tc:.0} mV");
    println!("OCSA    tolerates ±{to:.0} mV");
    println!(
        "\nSmaller nodes mean more mismatch and weaker cell signals; the OCSA's\n\
         {:.0}x margin is why A4, A5 and B5 deploy it (Section V).",
        to / tc.max(1.0)
    );
}
