//! Quickstart: reverse engineer a synthetic sense-amplifier region end to
//! end and check the result against ground truth.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use hifi_dram::circuit::topology::SaTopologyKind;
use hifi_dram::pipeline::{Pipeline, PipelineConfig, PipelineError};

fn main() -> Result<(), PipelineError> {
    println!("HiFi-DRAM quickstart: generate -> voxelise -> extract -> identify\n");

    // With `HIFI_STORE=<dir>` set, the pipelines below replay cached
    // stage artifacts; the delta of these counters is reported at the end.
    let store_enabled = std::env::var_os("HIFI_STORE").is_some_and(|v| !v.is_empty());
    let store_before = hifi_store::stats::snapshot();

    for kind in [SaTopologyKind::Classic, SaTopologyKind::OffsetCancellation] {
        let report = Pipeline::new(PipelineConfig::pristine(kind)).run_instrumented()?;
        println!("generated topology : {kind}");
        println!(
            "identified as      : {}",
            report
                .identified
                .map(|k| k.to_string())
                .unwrap_or_else(|| "<no match>".into())
        );
        println!("transistors found  : {}", report.device_count);
        if let Some(worst) = report.worst_dimension_deviation {
            println!(
                "worst dimension err: {:.1}% (voxel quantisation)",
                worst.as_percent()
            );
        }
        if let Some(telemetry) = &report.telemetry {
            println!("telemetry          : {}", telemetry.summary_line());
        }
        println!(
            "verdict            : {}\n",
            if report.topology_correct() {
                "ground truth recovered"
            } else {
                "MISMATCH"
            }
        );
    }

    // One imaged run exercises the full FIB/SEM post-processing chain
    // (acquire → normalize → align → denoise → reconstruct). With
    // `HIFI_TRACE=<path>` set, this is also what gives the exported trace
    // its per-worker slice lanes — the pristine runs above have no
    // parallel imaging stages.
    // Thicker slices than the default keep the demo run in the seconds
    // range; fidelity suffers a little, topology identification does not.
    let imaging = hifi_dram::imaging::ImagingConfig {
        slice_voxels: 4,
        ..Default::default()
    };
    let imaged = Pipeline::new(PipelineConfig::with_imaging(
        SaTopologyKind::Classic,
        imaging,
    ))
    .run_instrumented()?;
    println!(
        "imaged run         : identified {}, {} slices aligned",
        imaged
            .identified
            .map(|k| k.to_string())
            .unwrap_or_else(|| "<no match>".into()),
        imaged.alignment_corrections.len()
    );
    if let Some(telemetry) = &imaged.telemetry {
        println!("telemetry          : {}\n", telemetry.summary_line());
    }

    // The headline evaluation numbers, computed live from the dataset.
    let rows = hifi_dram::eval::overhead::table2();
    let cool = rows
        .iter()
        .find(|r| r.paper.name == "CoolDRAM")
        .expect("CoolDRAM in registry");
    println!(
        "Evaluation headline: CoolDRAM overhead error = {} (paper: 175x)",
        cool.overhead_error.expect("ddr4 paper").as_times()
    );
    if store_enabled {
        let delta = hifi_store::stats::snapshot().since(&store_before);
        println!("{}", delta.summary());
    }
    Ok(())
}
