//! Drive the DRAM device simulator with a command trace and report
//! controller statistics — the substrate role the simulator plays for
//! architecture studies layered on top of the SA models.
//!
//! ```text
//! cargo run --release --example dram_trace [trace-file]
//! ```

use hifi_dram::circuit::topology::SaTopologyKind;
use hifi_dram::dramsim::trace::{parse_trace, run_trace};
use hifi_dram::dramsim::{DeviceConfig, DramDevice};

const DEMO_TRACE: &str = "\
# stream: row-friendly writes then a strided read pass
ACT 0 10
WR 0 0 0x01
WR 0 1 0x02
WR 0 2 0x03
RD 0 0
RD 0 1
RD 0 2
PRE 0
ACT 1 20
WR 1 0 0xAA
RD 1 0
PRE 1
ACT 0 11
WR 0 0 0x44
RD 0 0
PRE 0
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let text = match std::env::args().nth(1) {
        Some(path) => std::fs::read_to_string(path)?,
        None => DEMO_TRACE.to_owned(),
    };
    let commands = parse_trace(&text)?;
    println!("parsed {} commands\n", commands.len());

    for kind in [SaTopologyKind::Classic, SaTopologyKind::OffsetCancellation] {
        let mut dev = DramDevice::new(DeviceConfig::ddr4(kind));
        let stats = run_trace(&mut dev, &commands)?;
        println!("== {kind} device ==");
        println!(
            "  ACT {}  RD {}  WR {}  PRE {}  REF {}",
            stats.activates, stats.reads, stats.writes, stats.precharges, stats.refreshes
        );
        println!(
            "  row-buffer hit rate {:.0}%  elapsed {:.1} ns  read bandwidth {:.2} B/us",
            stats.hit_rate() * 100.0,
            stats.elapsed.value(),
            stats.read_bandwidth()
        );
        println!("  read data: {:02x?}", stats.read_data);
        println!(
            "  all commands in spec: {}\n",
            dev.trace().iter().all(|r| r.in_spec)
        );
    }
    println!(
        "In-spec traffic is identical on both topologies; the divergence only\n\
         appears out of spec (see the out_of_spec example)."
    );
    Ok(())
}
