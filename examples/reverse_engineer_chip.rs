//! Reverse engineer a specific studied chip through the full simulated
//! FIB/SEM pipeline (noise, drift, denoising, alignment), then compare the
//! measured transistor dimensions against the dataset and export the
//! generated SA-region layout as GDSII — the paper's released artefact
//! format.
//!
//! ```text
//! cargo run --release --example reverse_engineer_chip
//! ```

use hifi_dram::circuit::TransistorClass;
use hifi_dram::data::{chips, ChipName};
use hifi_dram::geometry::gds;
use hifi_dram::imaging::ImagingConfig;
use hifi_dram::pipeline::{dims_for_chip, Pipeline, PipelineConfig};
use hifi_dram::synth::{generate_region, SaRegionSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let all = chips();
    let chip = all
        .iter()
        .find(|c| c.name() == ChipName::B5)
        .expect("B5 in dataset");
    println!(
        "Reverse engineering {} ({} {}, {} produced '{}, {} SA)\n",
        chip.name(),
        chip.vendor(),
        chip.generation(),
        chip.die_area(),
        chip.production_year() % 100,
        chip.topology(),
    );

    // Full pipeline with simulated FIB/SEM between generation & extraction.
    let mut cfg = PipelineConfig::for_chip(chip);
    cfg.imaging = Some(ImagingConfig {
        dwell_us: 6.0, // the paper's B5 dwell time
        drift_sigma_px: 0.6,
        brightness_wander: 1.0,
        slice_voxels: 2,
        ..ImagingConfig::default()
    });
    let report = Pipeline::new(cfg).run()?;

    println!(
        "identified topology: {} ({})",
        report
            .identified
            .map(|k| k.to_string())
            .unwrap_or_else(|| "<no match>".into()),
        if report.topology_correct() {
            "correct"
        } else {
            "WRONG"
        }
    );
    let drift: i32 = report
        .alignment_corrections
        .iter()
        .map(|(a, b)| a.abs() + b.abs())
        .sum();
    println!("alignment corrected {drift} px of stage drift across the stack\n");

    println!("measured vs dataset dimensions (nm):");
    for class in TransistorClass::ALL {
        let (Some(m), Some(truth)) = (report.measurement.class(class), chip.transistor(class))
        else {
            continue;
        };
        println!(
            "  {:<4} measured W={:>5.0} L={:>4.0}   dataset W={:>5.0} L={:>4.0}",
            class.short_name(),
            m.mean_width.value(),
            m.mean_length.value(),
            truth.dims.width.value(),
            truth.dims.length.value(),
        );
    }

    // Export the generated layout as GDSII, like the paper's open data.
    let spec = SaRegionSpec::new(chip.topology()).with_dims(dims_for_chip(chip));
    let region = generate_region(&spec);
    let bytes = gds::write_library("hifi-dram-b5", &[region.layout().clone()])?;
    let path = std::env::temp_dir().join("hifi_dram_b5_sa_region.gds");
    std::fs::write(&path, &bytes)?;
    println!(
        "\nGDSII layout written to {} ({} bytes)",
        path.display(),
        bytes.len()
    );
    Ok(())
}
