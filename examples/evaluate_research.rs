//! Evaluate a DRAM research proposal against the reverse-engineered dataset:
//! print the paper's Table II live, then score a hypothetical new proposal
//! ("add two isolation transistors per SA region") the way Section VI-C
//! scores the 13 published ones, and list the recommendations it triggers.
//!
//! ```text
//! cargo run --release --example evaluate_research
//! ```

use hifi_dram::data::chips;
use hifi_dram::eval::overhead::{overhead_error, paper_overhead_on_chip, porting_cost};
use hifi_dram::eval::papers::{Inaccuracy, OverheadFormula, Paper};
use hifi_dram::eval::recommendations::triggered_by;
use hifi_dram::units::Ratio;

fn main() {
    // Table II, computed live.
    println!("{}", hifi_bench::table2());

    // A hypothetical proposal: isolation transistors for row-buffer
    // decoupling, claiming 0.5% chip overhead on DDR4.
    let proposal = Paper {
        name: "MyNewProposal",
        year: 2026,
        original_generation: hifi_dram::data::DdrGeneration::Ddr4,
        inaccuracies: &[Inaccuracy::I4, Inaccuracy::I5],
        original_overhead_estimate: Ratio(0.005),
        formula: OverheadFormula::IsolationOnly,
    };
    let cs = chips();
    println!("Scoring a hypothetical proposal: {}", proposal.name);
    for chip in &cs {
        println!(
            "  on {}: realistic overhead {:.3}% of the chip",
            chip.name(),
            paper_overhead_on_chip(&proposal, chip).as_percent()
        );
    }
    if let Some(err) = overhead_error(&proposal, &cs) {
        println!("  overhead error vs own estimate: {}", err.as_times());
    }
    println!(
        "  porting cost to DDR5: {}",
        porting_cost(&proposal, &cs).as_times()
    );

    println!("\nRecommendations triggered:");
    for r in triggered_by(proposal.inaccuracies) {
        println!("  {}: {}", r.id, r.text);
    }
}
