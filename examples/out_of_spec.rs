//! Out-of-spec DRAM experiments (Section VI-D): attempt ComputeDRAM-style
//! in-DRAM row copies on classic-SA and OCSA devices and watch the trick
//! break on offset-cancellation chips.
//!
//! ```text
//! cargo run --release --example out_of_spec
//! ```

use hifi_dram::circuit::topology::SaTopologyKind;
use hifi_dram::dramsim::outofspec::{attempt_row_copy, truncated_restore};
use hifi_dram::dramsim::{DeviceConfig, DramDevice};
use hifi_dram::units::Nanoseconds;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== In-DRAM row copy: ACT(src) ... PRE ... ACT(dst) with violated tRP ==\n");
    println!("{:>14}  {:>12}  {:>12}", "PRE->ACT gap", "classic", "OCSA");
    for gap in [1.0, 2.0, 4.0, 8.0, 12.0, 16.0, 20.0] {
        let mut classic = DramDevice::new(DeviceConfig::ddr4(SaTopologyKind::Classic));
        let mut ocsa = DramDevice::new(DeviceConfig::ddr4(SaTopologyKind::OffsetCancellation));
        let c = attempt_row_copy(&mut classic, 0, 3, 9, Nanoseconds(gap))?;
        let o = attempt_row_copy(&mut ocsa, 0, 3, 9, Nanoseconds(gap))?;
        println!(
            "{:>11} ns  {:>12}  {:>12}",
            gap,
            if c.copied { "copied" } else { "failed" },
            if o.copied { "copied" } else { "failed" },
        );
    }
    println!(
        "\nClassic SAs share charge immediately at ACT, so residual bitline charge\n\
         from an interrupted precharge overwrites the destination row. OCSAs run\n\
         their offset-cancellation phase first, destroying the residue (Fig. 9b).\n"
    );

    println!("== Truncated restore: PRE issued before tRAS ==\n");
    for act_to_pre in [3.0, 10.0, 30.0] {
        let mut dev = DramDevice::new(DeviceConfig::ddr4(SaTopologyKind::Classic));
        let out = truncated_restore(&mut dev, 0, 4, Nanoseconds(act_to_pre))?;
        println!(
            "ACT->PRE {:>5} ns: data {}",
            act_to_pre,
            if out.data_survived {
                "survived"
            } else {
                "LOST (restore interrupted)"
            }
        );
    }
    Ok(())
}
