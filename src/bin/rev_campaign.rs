//! Command-issuing reverse-engineering campaign driver.
//!
//! ```text
//! rev_campaign [--runs N] [--seed S] [--threads T] [--no-imaging]
//! ```
//!
//! Runs a seeded black-box RE campaign over `hifi-dramsim` devices,
//! prints the deterministic JSON [`RevReport`](hifi_rev::RevReport) to
//! stdout and a one-line summary to stderr, and exits 1 if any device's
//! inference disagreed with ground truth or with the imaging route. The
//! report is a pure function of `(--runs, --seed, --no-imaging)` — thread
//! count changes wall time, never bytes.
//!
//! `HIFI_REV_SEED` and `HIFI_REV_RUNS` set the defaults (flags win), so
//! CI matrices can vary the campaign without editing scripts.

use std::process::ExitCode;

use hifi_rev::{run_rev_campaign, RevCampaignConfig};

fn main() -> ExitCode {
    let mut cfg = RevCampaignConfig::default();
    if let Some(seed) = env_parse("HIFI_REV_SEED") {
        cfg.seed = seed;
    }
    if let Some(runs) = env_parse("HIFI_REV_RUNS") {
        cfg.runs = runs;
    }
    let mut threads: Option<usize> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .unwrap_or_else(|| die(&format!("{flag} needs a value")))
        };
        match arg.as_str() {
            "--runs" => {
                cfg.runs = value("--runs")
                    .parse()
                    .unwrap_or_else(|_| die("--runs needs an unsigned integer"))
            }
            "--seed" => {
                cfg.seed = value("--seed")
                    .parse()
                    .unwrap_or_else(|_| die("--seed needs a u64"))
            }
            "--threads" => {
                threads = Some(
                    value("--threads")
                        .parse()
                        .unwrap_or_else(|_| die("--threads needs an unsigned integer")),
                )
            }
            "--no-imaging" => cfg.with_imaging = false,
            "--help" | "-h" => {
                eprintln!("usage: rev_campaign [--runs N] [--seed S] [--threads T] [--no-imaging]");
                return ExitCode::SUCCESS;
            }
            other => die(&format!("unknown argument: {other}")),
        }
    }

    let report = match threads {
        Some(t) => rayon::with_num_threads(t, || run_rev_campaign(&cfg)),
        None => run_rev_campaign(&cfg),
    };
    println!("{}", report.to_json());
    eprintln!("{}", report.summary_line());
    for outcome in report.outcomes.iter().filter(|o| !o.passed) {
        for field in outcome.comparison.fields.iter().filter(|f| !f.agrees) {
            eprintln!(
                "  run {} (seed {:#x}) disagreed on {}: {}",
                outcome.run_index, outcome.seed, field.field, field.detail
            );
        }
    }
    if report.failed > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn env_parse<T: std::str::FromStr>(name: &str) -> Option<T> {
    let raw = std::env::var(name).ok()?;
    if raw.is_empty() {
        return None;
    }
    match raw.parse() {
        Ok(v) => Some(v),
        Err(_) => die(&format!("{name} must parse, got {raw:?}")),
    }
}

fn die(message: &str) -> ! {
    eprintln!("rev_campaign: {message}");
    std::process::exit(2)
}
