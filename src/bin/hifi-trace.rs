//! Trace and profile tooling for `HIFI_TRACE` captures.
//!
//! ```text
//! hifi-trace summarize <trace.json.events.json | profile.json>
//! hifi-trace export-chrome <trace.json.events.json> [-o OUT]
//! hifi-trace export-folded <trace.json.events.json> [-o OUT]
//! hifi-trace validate <trace.json> [--require a,b,c]
//! hifi-trace diff <current.profile.json> <baseline.profile.json>
//!               [--tolerance-pct X]
//! ```
//!
//! Running any pipeline with `HIFI_TRACE=<path>` writes three documents:
//! the Chrome trace at `<path>` (load in Perfetto), the raw event streams
//! at `<path>.events.json`, and the aggregated profile at
//! `<path>.profile.json`. `summarize` renders a profile (from either the
//! events or the profile document); the exporters re-derive Chrome and
//! folded-stack (flamegraph) output from the raw events; `validate`
//! checks a Chrome trace parses, carries the required stage spans and
//! nests cleanly; `diff` is the CI profile gate — it compares per-stage
//! self-time *shares* against a committed baseline and exits 1 on
//! regression. `--tolerance-pct` (or `HIFI_PROFILE_TOLERANCE_PCT`)
//! overrides the gate's default tolerance.

use std::process::ExitCode;

use hifi_telemetry::{
    chrome_trace, parse_run_events, validate_chrome, ProfileGate, ProfileSummary, RunEvents, Trace,
};

/// Stage spans every pipeline run must contain, imaged or pristine.
const REQUIRED_STAGES: [&str; 5] = ["generate", "voxelize", "extract", "identify", "measure"];

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        usage();
        return ExitCode::from(2);
    };
    match command.as_str() {
        "summarize" => summarize(&args[1..]),
        "export-chrome" => export(&args[1..], Format::Chrome),
        "export-folded" => export(&args[1..], Format::Folded),
        "validate" => validate(&args[1..]),
        "diff" => diff(&args[1..]),
        "--help" | "-h" | "help" => {
            usage();
            ExitCode::SUCCESS
        }
        other => die(&format!("unknown command: {other}")),
    }
}

fn usage() {
    eprintln!(
        "usage: hifi-trace <command>\n\
         \n\
         commands:\n\
         \x20 summarize <events.json|profile.json>   render the aggregated profile\n\
         \x20 export-chrome <events.json> [-o OUT]   Chrome trace JSON (Perfetto)\n\
         \x20 export-folded <events.json> [-o OUT]   folded stacks (flamegraph)\n\
         \x20 validate <trace.json> [--require a,b]  check a Chrome trace document\n\
         \x20 diff <current> <baseline> [--tolerance-pct X]\n\
         \x20                                        profile gate: exit 1 on regression"
    );
}

fn die(message: &str) -> ! {
    eprintln!("hifi-trace: {message}");
    std::process::exit(2)
}

fn read(path: &str) -> String {
    std::fs::read_to_string(path).unwrap_or_else(|e| die(&format!("cannot read {path}: {e}")))
}

/// Loads `.events.json` run streams from a path.
fn load_runs(path: &str) -> Vec<RunEvents> {
    parse_run_events(&read(path)).unwrap_or_else(|e| die(&format!("{path}: {e}")))
}

/// Loads a profile either directly (a `.profile.json` document) or by
/// folding a `.events.json` document.
fn load_profile(path: &str) -> ProfileSummary {
    let text = read(path);
    if let Ok(profile) = ProfileSummary::parse(&text) {
        return profile;
    }
    match parse_run_events(&text) {
        Ok(runs) => {
            let streams: Vec<_> = runs.into_iter().map(|r| r.events).collect();
            ProfileSummary::from_event_runs(&streams)
        }
        Err(e) => die(&format!(
            "{path} is neither a profile nor an events document: {e}"
        )),
    }
}

fn summarize(args: &[String]) -> ExitCode {
    let [path] = args else {
        die("summarize needs exactly one input path");
    };
    print!("{}", load_profile(path).render());
    ExitCode::SUCCESS
}

enum Format {
    Chrome,
    Folded,
}

fn export(args: &[String], format: Format) -> ExitCode {
    let mut input: Option<&str> = None;
    let mut output: Option<&str> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "-o" | "--output" => {
                output = Some(it.next().unwrap_or_else(|| die("-o needs a path")).as_str())
            }
            other if input.is_none() => input = Some(other),
            other => die(&format!("unexpected argument: {other}")),
        }
    }
    let input = input.unwrap_or_else(|| die("export needs an events.json path"));
    let runs = load_runs(input);
    let traced: Vec<(String, Trace)> = runs
        .iter()
        .map(|r| (r.label.clone(), Trace::from_events(&r.events)))
        .collect();
    let text = match format {
        Format::Chrome => chrome_trace(&traced),
        // Folded lines are "path;to;span value"; flamegraph tooling sums
        // duplicate paths, so concatenating the per-run documents merges
        // them for free.
        Format::Folded => traced
            .iter()
            .map(|(_, t)| t.to_folded())
            .collect::<Vec<_>>()
            .concat(),
    };
    match output {
        Some(path) => {
            std::fs::write(path, text).unwrap_or_else(|e| die(&format!("cannot write {path}: {e}")))
        }
        None => print!("{text}"),
    }
    ExitCode::SUCCESS
}

fn validate(args: &[String]) -> ExitCode {
    let mut input: Option<&str> = None;
    let mut required: Vec<String> = REQUIRED_STAGES.iter().map(|s| s.to_string()).collect();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--require" => {
                let list = it.next().unwrap_or_else(|| die("--require needs a list"));
                required = list.split(',').map(|s| s.trim().to_string()).collect();
            }
            other if input.is_none() => input = Some(other),
            other => die(&format!("unexpected argument: {other}")),
        }
    }
    let input = input.unwrap_or_else(|| die("validate needs a trace path"));
    let required: Vec<&str> = required.iter().map(String::as_str).collect();
    match validate_chrome(&read(input), &required) {
        Ok(check) => {
            println!("{input}: valid — {}", check.render());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("{input}: INVALID — {e}");
            ExitCode::FAILURE
        }
    }
}

fn diff(args: &[String]) -> ExitCode {
    let mut paths: Vec<&str> = Vec::new();
    let mut gate = ProfileGate::default();
    if let Ok(tol) = std::env::var("HIFI_PROFILE_TOLERANCE_PCT") {
        gate.tolerance_pct = tol
            .parse()
            .unwrap_or_else(|_| die("HIFI_PROFILE_TOLERANCE_PCT needs a number"));
    }
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--tolerance-pct" => {
                gate.tolerance_pct = it
                    .next()
                    .unwrap_or_else(|| die("--tolerance-pct needs a value"))
                    .parse()
                    .unwrap_or_else(|_| die("--tolerance-pct needs a number"));
            }
            other => paths.push(other),
        }
    }
    let [current, baseline] = paths[..] else {
        die("diff needs <current> and <baseline> profile paths");
    };
    let current = load_profile(current);
    let baseline = load_profile(baseline);
    let result = current.diff(&baseline, &gate);
    print!("{}", result.render());
    if result.passed() {
        println!("profile gate: PASS (tolerance {:.0}%)", gate.tolerance_pct);
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "profile gate: FAIL — {} regression(s) beyond {:.0}% tolerance",
            result.regressions(),
            gate.tolerance_pct
        );
        ExitCode::FAILURE
    }
}
