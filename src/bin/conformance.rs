//! Conformance campaign driver.
//!
//! ```text
//! conformance [--runs N] [--seed S] [--threads T] [--store PATH] [--no-shrink]
//! ```
//!
//! Runs a seeded campaign, prints the deterministic JSON
//! [`ConformanceReport`](hifi_conformance::ConformanceReport) to stdout and
//! a one-line summary to stderr, and exits 1 if any oracle failed. The
//! report is a pure function of `(--runs, --seed)` — thread count changes
//! wall time, never bytes.

use std::path::PathBuf;
use std::process::ExitCode;

use hifi_conformance::{run_campaign, CampaignConfig};

fn main() -> ExitCode {
    let mut cfg = CampaignConfig::default();
    let mut threads: Option<usize> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .unwrap_or_else(|| die(&format!("{flag} needs a value")))
        };
        match arg.as_str() {
            "--runs" => {
                cfg.runs = value("--runs")
                    .parse()
                    .unwrap_or_else(|_| die("--runs needs an unsigned integer"))
            }
            "--seed" => {
                cfg.seed = value("--seed")
                    .parse()
                    .unwrap_or_else(|_| die("--seed needs a u64"))
            }
            "--threads" => {
                threads = Some(
                    value("--threads")
                        .parse()
                        .unwrap_or_else(|_| die("--threads needs an unsigned integer")),
                )
            }
            "--store" => cfg.store = Some(PathBuf::from(value("--store"))),
            "--no-shrink" => cfg.shrink_failures = false,
            "--help" | "-h" => {
                eprintln!(
                    "usage: conformance [--runs N] [--seed S] [--threads T] \
                     [--store PATH] [--no-shrink]"
                );
                return ExitCode::SUCCESS;
            }
            other => die(&format!("unknown argument: {other}")),
        }
    }

    let store_before = hifi_store::stats::snapshot();
    let faults_before = hifi_faults::stats::snapshot();
    let report = match threads {
        Some(t) => rayon::with_num_threads(t, || run_campaign(&cfg)),
        None => run_campaign(&cfg),
    };
    println!("{}", report.to_json());
    eprintln!("{}", report.summary_line());
    // Infrastructure one-liners (stderr, like quickstart's): what the
    // campaign's runs did to the artifact store and the fault layer. The
    // JSON report on stdout stays a pure function of (--runs, --seed).
    let store_enabled =
        cfg.store.is_some() || std::env::var_os("HIFI_STORE").is_some_and(|v| !v.is_empty());
    if store_enabled {
        eprintln!(
            "{}",
            hifi_store::stats::snapshot().since(&store_before).summary()
        );
    }
    let fault_delta = hifi_faults::stats::snapshot().since(&faults_before);
    if fault_delta.any() {
        eprintln!("{}", fault_delta.summary());
    }
    for failure in &report.failures {
        eprintln!(
            "  run {} (seed {:#x}) failed [{}]: {} — shrunk to: {}",
            failure.run_index,
            failure.seed,
            failure.failed_oracles.join(", "),
            failure.detail,
            failure.shrunk_spec,
        );
    }
    if report.failed > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn die(message: &str) -> ! {
    eprintln!("conformance: {message}");
    std::process::exit(2)
}
