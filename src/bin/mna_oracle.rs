//! MNA waveform-oracle driver for CI.
//!
//! ```text
//! mna_oracle [--seed S] [--samples N] [--sigma-mv X] [--threads T]
//! ```
//!
//! Three seeded check families, printed as one JSON report on stdout with a
//! one-line summary on stderr (exit 1 on any failure):
//!
//! 1. **schedule** — both activation schedules (classic Fig. 2c, OCSA
//!    Fig. 9b) sense both stored values correctly on the MNA engine,
//! 2. **extract** — netlists extracted by the pristine imaging pipeline,
//!    with sense-amp roles inferred from connectivity alone, reproduce the
//!    same verdicts (the behavioural half of extraction fidelity),
//! 3. **montecarlo** — a reduced Vt-mismatch sweep stays solver-healthy
//!    (Newton far from the cap, KCL residuals at noise level) and the OCSA
//!    never yields below the classic latch on the same noise draws.
//!
//! The report is a pure function of `(--seed, --samples, --sigma-mv)`;
//! `--threads` changes wall time, never bytes.

use std::process::ExitCode;

use hifi_dram::analog::events::ActivationConfig;
use hifi_dram::analog::{run_sweep, McConfig};
use hifi_dram::circuit::topology::SaTopologyKind;
use hifi_dram::pipeline::{Pipeline, PipelineConfig};

#[derive(serde::Serialize)]
struct Check {
    name: String,
    passed: bool,
    detail: String,
}

#[derive(serde::Serialize)]
struct OracleReport {
    seed: u64,
    samples: usize,
    sigma_mv: f64,
    passed: usize,
    failed: usize,
    checks: Vec<Check>,
}

fn main() -> ExitCode {
    let mut seed: u64 = 42;
    let mut samples: usize = 8;
    let mut sigma_mv: f64 = 45.0;
    let mut threads: Option<usize> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .unwrap_or_else(|| die(&format!("{flag} needs a value")))
        };
        match arg.as_str() {
            "--seed" => {
                seed = value("--seed")
                    .parse()
                    .unwrap_or_else(|_| die("--seed needs a u64"))
            }
            "--samples" => {
                samples = value("--samples")
                    .parse()
                    .unwrap_or_else(|_| die("--samples needs an unsigned integer"))
            }
            "--sigma-mv" => {
                sigma_mv = value("--sigma-mv")
                    .parse()
                    .unwrap_or_else(|_| die("--sigma-mv needs a number"))
            }
            "--threads" => {
                threads = Some(
                    value("--threads")
                        .parse()
                        .unwrap_or_else(|_| die("--threads needs an unsigned integer")),
                )
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: mna_oracle [--seed S] [--samples N] [--sigma-mv X] [--threads T]"
                );
                return ExitCode::SUCCESS;
            }
            other => die(&format!("unknown argument: {other}")),
        }
    }

    let report = match threads {
        Some(t) => rayon::with_num_threads(t, || run_oracle(seed, samples, sigma_mv)),
        None => run_oracle(seed, samples, sigma_mv),
    };
    println!(
        "{}",
        serde_json::to_string_pretty(&report).expect("report serializes")
    );
    eprintln!(
        "mna_oracle: seed {seed}: {}/{} checks passed",
        report.passed,
        report.passed + report.failed
    );
    for check in report.checks.iter().filter(|c| !c.passed) {
        eprintln!("  FAIL {}: {}", check.name, check.detail);
    }
    if report.failed > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn run_oracle(seed: u64, samples: usize, sigma_mv: f64) -> OracleReport {
    let cfg = ActivationConfig::default();
    let topologies = [SaTopologyKind::Classic, SaTopologyKind::OffsetCancellation];
    let mut checks = Vec::new();

    // 1. The golden schedules on the schematic netlists.
    for kind in topologies {
        for stored in [false, true] {
            let (passed, detail) = match hifi_dram::analog::events::try_simulate(kind, &cfg, stored)
            {
                Ok(r) => (r.correct, verdict_detail(&r)),
                Err(e) => (false, format!("simulation failed: {e}")),
            };
            checks.push(Check {
                name: format!("schedule.{kind}.stored{}", stored as u8),
                passed,
                detail,
            });
        }
    }

    // 2. The same verdicts through the full imaging pipeline: extraction →
    // role inference → MNA. A netlist can be graph-isomorphic to ground
    // truth and still sense wrong; this is the waveform-level oracle.
    for kind in topologies {
        match Pipeline::new(PipelineConfig::pristine(kind)).run() {
            Ok(pipeline) => {
                for stored in [false, true] {
                    let (passed, detail) = match pipeline.simulate_activation(&cfg, stored) {
                        Ok(r) => (r.correct, verdict_detail(&r)),
                        Err(e) => (false, format!("simulation failed: {e}")),
                    };
                    checks.push(Check {
                        name: format!("extract.{kind}.stored{}", stored as u8),
                        passed,
                        detail,
                    });
                }
            }
            Err(e) => checks.push(Check {
                name: format!("extract.{kind}"),
                passed: false,
                detail: format!("pipeline failed: {e}"),
            }),
        }
    }

    // 3. Reduced Monte-Carlo sweep: solver health plus the Section V trend.
    let mut yields = Vec::new();
    for kind in topologies {
        let sweep = run_sweep(&McConfig {
            seed,
            ..McConfig::new(kind, sigma_mv, samples)
        });
        let healthy =
            sweep.solve.max_newton_iterations < 50 && sweep.solve.worst_kcl_residual_amps < 1e-6;
        checks.push(Check {
            name: format!("montecarlo.{kind}"),
            passed: healthy,
            detail: format!(
                "yield {:.0}% over {samples} samples @ σ={sigma_mv} mV; worst Newton {} iters, \
                 worst KCL residual {:.2e} A",
                sweep.yield_fraction * 100.0,
                sweep.solve.max_newton_iterations,
                sweep.solve.worst_kcl_residual_amps
            ),
        });
        yields.push(sweep.yield_fraction);
    }
    checks.push(Check {
        name: "montecarlo.trend".to_owned(),
        passed: yields[1] >= yields[0],
        detail: format!(
            "classic yield {:.0}% vs OCSA {:.0}% on identical noise draws",
            yields[0] * 100.0,
            yields[1] * 100.0
        ),
    });

    let passed = checks.iter().filter(|c| c.passed).count();
    OracleReport {
        seed,
        samples,
        sigma_mv,
        passed,
        failed: checks.len() - passed,
        checks,
    }
}

fn verdict_detail(r: &hifi_dram::analog::events::SenseReport) -> String {
    let solve = r.solve_stats.unwrap_or_default();
    format!(
        "sensed {} ({} restored to {:.3} V); {} steps, worst KCL residual {:.2e} A",
        if r.sensed_one { "1" } else { "0" },
        r.topology,
        r.restored_level,
        solve.steps,
        solve.worst_kcl_residual_amps
    )
}

fn die(message: &str) -> ! {
    eprintln!("mna_oracle: {message}");
    std::process::exit(2)
}
