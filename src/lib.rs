//! Workspace root crate: see `hifi-dram` for the library facade.
pub use hifi_dram as facade;
