#!/usr/bin/env bash
# Benchmark regression gate.
#
#   scripts/bench_gate.sh              # run the overhead benches, then gate
#   scripts/bench_gate.sh --check-only # gate an existing BENCH_results.json
#
# The overhead benches (fault_overhead, telemetry_overhead) and the
# full-die scale sweep (scale_sweep, streaming 256x the base region with
# O(tile) memory) record their headline numbers into BENCH_results.json;
# the bench_gate binary compares them against the committed
# BENCH_baseline.json and fails on any metric more than 15% over baseline
# (BENCH_GATE_TOLERANCE_PCT to override; paired-ratio "percent" metrics
# additionally get one absolute point of allowance, and "per_sec"
# throughput rates gate in the opposite direction — see
# crates/bench/src/results.rs for the exact rules).
#
# Wall-clock ("ms") baselines are machine-dependent. After a genuine,
# intended performance change — or on new hardware — regenerate with:
#
#   scripts/bench_gate.sh && cp BENCH_results.json BENCH_baseline.json
#
# and commit the new baseline alongside the change that justifies it.
set -euo pipefail

cd "$(dirname "$0")/.."

if [[ "${1:-}" != "--check-only" ]]; then
    rm -f BENCH_results.json
    echo "==> overhead benches (fault_overhead, telemetry_overhead)"
    cargo bench --offline --locked -p hifi-bench \
        --bench fault_overhead --bench telemetry_overhead
    echo "==> full-die scale sweep (1x/16x/256x, streaming tiled)"
    cargo bench --offline --locked -p hifi-bench \
        --features hifi-telemetry/alloc-track --bench scale_sweep
    echo "==> MNA Monte-Carlo throughput (mna_montecarlo)"
    cargo bench --offline --locked -p hifi-bench --bench mna_montecarlo
    echo "==> serve throughput (load_test --bench)"
    cargo build --release --offline --locked -p hifi-serve --bin load_test
    target/release/load_test --jobs 300 --distinct 32 --workers 4 --clients 8 --bench
fi

echo "==> bench_gate: BENCH_results.json vs BENCH_baseline.json"
cargo run -q --release --offline --locked -p hifi-bench --bin bench_gate
