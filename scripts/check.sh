#!/usr/bin/env bash
# Repo health gate: formatting, lints, and regen-output drift.
#
#   scripts/check.sh            # run everything
#   scripts/check.sh --no-drift # skip the (slow) regen drift check
#
# The drift check re-runs every regen binary that has a pinned snapshot in
# regen_outputs/ and diffs the output byte-for-byte. regen_telemetry and
# regen_dataset_json are excluded: telemetry JSON embeds wall times
# (non-deterministic by design) and the dataset JSON has no pinned snapshot.
set -euo pipefail

cd "$(dirname "$0")/.."

run_drift=1
if [[ "${1:-}" == "--no-drift" ]]; then
    run_drift=0
fi

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets --offline -- -D warnings

if [[ "$run_drift" -eq 1 ]]; then
    echo "==> regen drift check"
    cargo build --release --offline -p hifi-bench --bins
    failed=0
    for snapshot in regen_outputs/*.txt; do
        name="$(basename "$snapshot" .txt)"
        bin="target/release/regen_${name}"
        if [[ ! -x "$bin" ]]; then
            echo "MISSING BIN  regen_${name} (snapshot ${snapshot})"
            failed=1
            continue
        fi
        if diff -u "$snapshot" <("$bin") > /dev/null 2>&1; then
            echo "ok           ${name}"
        else
            echo "DRIFT        ${name}  (run: cargo run --release -p hifi-bench --bin regen_${name} > ${snapshot})"
            failed=1
        fi
    done
    if [[ "$failed" -ne 0 ]]; then
        echo "regen drift detected" >&2
        exit 1
    fi
fi

echo "all checks passed"
