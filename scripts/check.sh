#!/usr/bin/env bash
# Repo health gate: formatting, lints, thread-count determinism, and
# regen-output drift.
#
#   scripts/check.sh            # run everything
#   scripts/check.sh --no-drift # skip the (slow) tests + regen drift check
#
# The drift check re-runs every regen binary that has a pinned snapshot in
# regen_outputs/ and diffs the output byte-for-byte — once with the thread
# count forced to 1 and once at available_parallelism (HIFI_THREADS, see
# vendor/rayon): parallel execution must be a pure performance knob, so
# both runs must match the snapshot exactly. regen_telemetry and
# regen_dataset_json are excluded: telemetry JSON embeds wall times
# (non-deterministic by design) and the dataset JSON has no pinned snapshot.
# The tier-1 test suite likewise runs at both thread counts.
set -euo pipefail

cd "$(dirname "$0")/.."

run_drift=1
if [[ "${1:-}" == "--no-drift" ]]; then
    run_drift=0
fi

threads="$(nproc 2>/dev/null || echo 1)"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets --offline -- -D warnings

if [[ "$run_drift" -eq 1 ]]; then
    echo "==> tier-1 tests @ 1 thread"
    HIFI_THREADS=1 cargo test -q --offline

    if [[ "$threads" -gt 1 ]]; then
        echo "==> tier-1 tests @ ${threads} threads"
        HIFI_THREADS="$threads" cargo test -q --offline
    else
        echo "==> tier-1 tests @ available_parallelism: skipped (1 core)"
    fi

    echo "==> regen drift check (1 thread and ${threads} threads)"
    cargo build --release --offline -p hifi-bench --bins
    failed=0
    for snapshot in regen_outputs/*.txt; do
        name="$(basename "$snapshot" .txt)"
        bin="target/release/regen_${name}"
        if [[ ! -x "$bin" ]]; then
            echo "MISSING BIN  regen_${name} (snapshot ${snapshot})"
            failed=1
            continue
        fi
        ok=1
        thread_list=(1)
        if [[ "$threads" -gt 1 ]]; then
            thread_list+=("$threads")
        fi
        for n in "${thread_list[@]}"; do
            if ! HIFI_THREADS="$n" "$bin" | diff -u "$snapshot" - > /dev/null 2>&1; then
                ok=0
                echo "DRIFT        ${name} @ ${n} thread(s)  (run: cargo run --release -p hifi-bench --bin regen_${name} > ${snapshot})"
            fi
        done
        if [[ "$ok" -eq 1 ]]; then
            echo "ok           ${name} (thread-count independent)"
        else
            failed=1
        fi
    done
    if [[ "$failed" -ne 0 ]]; then
        echo "regen drift detected" >&2
        exit 1
    fi

    # Artifact-store round trip: the same regen suite against a throwaway
    # store must (a) leave the pinned stdout snapshots untouched on both
    # the cold and the warm pass, (b) serve the warm pass entirely from
    # cache, and (c) survive `hifi-store gc` with the snapshots intact.
    echo "==> artifact store: cold + warm regen passes against a temp store"
    store_dir="$(mktemp -d)"
    trap 'rm -rf "$store_dir"' EXIT
    store_bins=(pipeline_fidelity measurements)
    for pass in cold warm; do
        for name in "${store_bins[@]}"; do
            summary="$(HIFI_STORE="$store_dir" "target/release/regen_${name}" 2>&1 >/dev/null || true)"
            if ! HIFI_STORE="$store_dir" "target/release/regen_${name}" 2>/dev/null \
                    | diff -u "regen_outputs/${name}.txt" - > /dev/null; then
                echo "STORE DRIFT  ${name} (${pass} pass changed the pinned snapshot)" >&2
                exit 1
            fi
            echo "ok           ${name} (${pass} pass, snapshot intact)${summary:+  [$summary]}"
        done
    done
    misses="$(HIFI_STORE="$store_dir" target/release/regen_pipeline_fidelity 2>&1 >/dev/null \
        | sed -n 's/.* \([0-9]*\) misses.*/\1/p')"
    if [[ "${misses:-1}" -ne 0 ]]; then
        echo "warm regen pass was not fully cached (${misses:-?} misses)" >&2
        exit 1
    fi
    echo "ok           warm pass fully cached (0 misses)"

    echo "==> artifact store: gc + re-verify"
    cargo run --release --offline -q -p hifi-store --bin hifi-store -- stats "$store_dir"
    cargo run --release --offline -q -p hifi-store --bin hifi-store -- verify "$store_dir"
    # Halve the store; survivors must still verify and the regen output
    # must still match the snapshot (evicted stages recompute).
    bytes="$(cargo run --release --offline -q -p hifi-store --bin hifi-store -- stats "$store_dir" | sed -n 's/^bytes //p')"
    cargo run --release --offline -q -p hifi-store --bin hifi-store -- gc "$store_dir" "$((bytes / 2))"
    cargo run --release --offline -q -p hifi-store --bin hifi-store -- verify "$store_dir"
    if ! HIFI_STORE="$store_dir" target/release/regen_pipeline_fidelity 2>/dev/null \
            | diff -u regen_outputs/pipeline_fidelity.txt - > /dev/null; then
        echo "STORE DRIFT  pipeline_fidelity (after gc)" >&2
        exit 1
    fi
    echo "ok           pipeline_fidelity (post-gc recompute, snapshot intact)"
fi

echo "all checks passed"
