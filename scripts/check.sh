#!/usr/bin/env bash
# Repo health gate: formatting, lints, thread-count determinism, and
# regen-output drift.
#
#   scripts/check.sh              # run everything
#   scripts/check.sh --no-drift   # lint only: skip tests + regen drift
#   scripts/check.sh --drift-only # regen/store drift only: skip lint + tests
#                                 # (CI runs lint and tests as separate jobs)
#
# The drift check enumerates every regen binary under
# crates/bench/src/bin/ and requires each to be accounted for:
#
#   - regen_outputs/<name>.txt   — pinned snapshot; the binary's stdout is
#     diffed byte-for-byte against it, once with the thread count forced
#     to 1 and once at available_parallelism (HIFI_THREADS, see
#     vendor/rayon): parallel execution must be a pure performance knob.
#   - regen_outputs/<name>.skip  — marker excluding the binary from the
#     drift check; the file's contents state why (e.g. regen_telemetry
#     embeds wall times, which are non-deterministic by design).
#
# A regen binary with neither file fails the gate: new artefacts must be
# pinned or explicitly skipped, never silently unchecked. The tier-1 test
# suite likewise runs at both thread counts.
set -euo pipefail

cd "$(dirname "$0")/.."

run_lint=1
run_tests=1
run_drift=1
case "${1:-}" in
    --no-drift)
        run_tests=0
        run_drift=0
        ;;
    --drift-only)
        run_lint=0
        run_tests=0
        ;;
esac

threads="$(nproc 2>/dev/null || echo 1)"

if [[ "$run_lint" -eq 1 ]]; then
    echo "==> cargo fmt --check"
    cargo fmt --all -- --check

    echo "==> cargo clippy --workspace -- -D warnings"
    cargo clippy --workspace --all-targets --offline --locked -- -D warnings
fi

if [[ "$run_tests" -eq 1 ]]; then
    echo "==> tier-1 tests @ 1 thread"
    HIFI_THREADS=1 cargo test -q --offline --locked

    if [[ "$threads" -gt 1 ]]; then
        echo "==> tier-1 tests @ ${threads} threads"
        HIFI_THREADS="$threads" cargo test -q --offline --locked
    else
        echo "==> tier-1 tests @ available_parallelism: skipped (1 core)"
    fi
fi

if [[ "$run_drift" -eq 1 ]]; then
    echo "==> regen drift check (1 thread and ${threads} threads)"
    cargo build --release --offline --locked -p hifi-bench --bins
    failed=0
    for src in crates/bench/src/bin/regen_*.rs; do
        name="$(basename "$src" .rs)"
        name="${name#regen_}"
        snapshot="regen_outputs/${name}.txt"
        skip_marker="regen_outputs/${name}.skip"
        if [[ -f "$skip_marker" ]]; then
            echo "skip         ${name} ($(head -n1 "$skip_marker"))"
            continue
        fi
        if [[ ! -f "$snapshot" ]]; then
            echo "UNACCOUNTED  ${name}: pin ${snapshot} or add ${skip_marker} with a reason"
            failed=1
            continue
        fi
        bin="target/release/regen_${name}"
        if [[ ! -x "$bin" ]]; then
            echo "MISSING BIN  regen_${name} (snapshot ${snapshot})"
            failed=1
            continue
        fi
        ok=1
        thread_list=(1)
        if [[ "$threads" -gt 1 ]]; then
            thread_list+=("$threads")
        fi
        for n in "${thread_list[@]}"; do
            if ! HIFI_THREADS="$n" "$bin" | diff -u "$snapshot" - > /dev/null 2>&1; then
                ok=0
                echo "DRIFT        ${name} @ ${n} thread(s)  (run: cargo run --release -p hifi-bench --bin regen_${name} > ${snapshot})"
            fi
        done
        if [[ "$ok" -eq 1 ]]; then
            echo "ok           ${name} (thread-count independent)"
        fi
        if [[ "$ok" -ne 1 ]]; then
            failed=1
        fi
    done
    # Stale snapshots/markers without a matching binary are drift too.
    for pinned in regen_outputs/*.txt regen_outputs/*.skip; do
        [[ -e "$pinned" ]] || continue
        name="$(basename "$pinned")"
        name="${name%.*}"
        if [[ ! -f "crates/bench/src/bin/regen_${name}.rs" ]]; then
            echo "STALE        ${pinned}: no crates/bench/src/bin/regen_${name}.rs"
            failed=1
        fi
    done
    if [[ "$failed" -ne 0 ]]; then
        echo "regen drift detected" >&2
        exit 1
    fi

    # Artifact-store round trip: the same regen suite against a throwaway
    # store must (a) leave the pinned stdout snapshots untouched on both
    # the cold and the warm pass, (b) serve the warm pass entirely from
    # cache, and (c) survive `hifi-store gc` with the snapshots intact.
    echo "==> artifact store: cold + warm regen passes against a temp store"
    store_dir="$(mktemp -d)"
    trap 'rm -rf "$store_dir"' EXIT
    store_bins=(pipeline_fidelity measurements)
    for pass in cold warm; do
        for name in "${store_bins[@]}"; do
            summary="$(HIFI_STORE="$store_dir" "target/release/regen_${name}" 2>&1 >/dev/null || true)"
            if ! HIFI_STORE="$store_dir" "target/release/regen_${name}" 2>/dev/null \
                    | diff -u "regen_outputs/${name}.txt" - > /dev/null; then
                echo "STORE DRIFT  ${name} (${pass} pass changed the pinned snapshot)" >&2
                exit 1
            fi
            echo "ok           ${name} (${pass} pass, snapshot intact)${summary:+  [$summary]}"
        done
    done
    misses="$(HIFI_STORE="$store_dir" target/release/regen_pipeline_fidelity 2>&1 >/dev/null \
        | sed -n 's/.* \([0-9]*\) misses.*/\1/p')"
    if [[ "${misses:-1}" -ne 0 ]]; then
        echo "warm regen pass was not fully cached (${misses:-?} misses)" >&2
        exit 1
    fi
    echo "ok           warm pass fully cached (0 misses)"

    echo "==> artifact store: gc + re-verify"
    cargo run --release --offline --locked -q -p hifi-store --bin hifi-store -- stats "$store_dir"
    cargo run --release --offline --locked -q -p hifi-store --bin hifi-store -- verify "$store_dir"
    # Halve the store; survivors must still verify and the regen output
    # must still match the snapshot (evicted stages recompute).
    bytes="$(cargo run --release --offline --locked -q -p hifi-store --bin hifi-store -- stats "$store_dir" | sed -n 's/^bytes //p')"
    cargo run --release --offline --locked -q -p hifi-store --bin hifi-store -- gc "$store_dir" "$((bytes / 2))"
    cargo run --release --offline --locked -q -p hifi-store --bin hifi-store -- verify "$store_dir"
    if ! HIFI_STORE="$store_dir" target/release/regen_pipeline_fidelity 2>/dev/null \
            | diff -u regen_outputs/pipeline_fidelity.txt - > /dev/null; then
        echo "STORE DRIFT  pipeline_fidelity (after gc)" >&2
        exit 1
    fi
    echo "ok           pipeline_fidelity (post-gc recompute, snapshot intact)"
fi

echo "all checks passed"
