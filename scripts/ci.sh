#!/usr/bin/env bash
# The CI pipeline, runnable locally job-by-job. `.github/workflows/ci.yml`
# invokes exactly these entry points, so "passes locally" and "passes in
# CI" mean the same thing.
#
#   scripts/ci.sh               # run every job in order
#   scripts/ci.sh <job> [...]   # run specific jobs
#
# Jobs:
#   lint          cargo fmt --check + clippy -D warnings
#   test          tier-1 test suite at 1 thread and at available_parallelism
#   regen-drift   regen snapshot drift + artifact-store cold/warm/gc round
#                 trip (scripts/check.sh --drift-only)
#   fault-matrix  tests/fault_recovery.rs under fault seeds; honours
#                 HIFI_FAULT_SEED (one seed, as the CI matrix does), else
#                 runs the default 3-seed matrix
#   conformance   randomized ground-truth campaigns (bin conformance);
#                 honours HIFI_CONFORMANCE_SEED (one seed, as the CI
#                 matrix does), else sweeps the default 2-seed matrix
#   rev-campaign  black-box reverse-engineering campaigns (bin
#                 rev_campaign) cross-validated against the imaging
#                 route; honours HIFI_REV_SEED (one seed, as the CI
#                 matrix does) and HIFI_REV_RUNS, else sweeps the
#                 default 2-seed matrix
#   mna-oracle    MNA waveform oracle (bin mna_oracle): activation
#                 schedules + extracted-netlist verdicts + a reduced
#                 Monte-Carlo sweep; honours HIFI_MNA_SEED (one seed, as
#                 the CI matrix does) and HIFI_MNA_SAMPLES, else sweeps
#                 the default 2-seed matrix
#   scale-smoke   16x-scale streaming sweep (scale_sweep bench capped via
#                 SCALE_SWEEP_MAX=16) under the counting allocator; proves
#                 the tiled path's O(tile) peak memory without the full
#                 256x run (that stays bench-gate-only)
#   serve-smoke   start the hifi-serve daemon, push two load_test batches
#                 through it over HTTP (the second resubmits completed
#                 specs, which must dedup against the shared store), then
#                 SIGTERM and assert a clean drained shutdown
#   bench-gate    overhead benches + full-die scale sweep (256x) +
#                 regression gate vs BENCH_baseline.json
#                 (scripts/bench_gate.sh)
#   profile-gate  quickstart under HIFI_TRACE, trace validation (parses,
#                 required stage spans present, nesting balanced), then
#                 `hifi-trace diff` of the run's profile against the
#                 committed PROFILE_baseline.json; honours
#                 HIFI_PROFILE_TOLERANCE_PCT
#
# Everything builds --offline --locked: the vendored crates under vendor/
# are the only dependency source, and Cargo.lock is authoritative.
#
# Each job ends with a "done in Ns" summary line so slow jobs stand out
# in both local runs and the Actions log. Campaign JSON reports land in
# target/ci-artifacts/ so the workflow can upload them when a job fails.
set -euo pipefail

cd "$(dirname "$0")/.."

# Seeds the fault-matrix job sweeps when HIFI_FAULT_SEED is unset. Values
# are arbitrary but pinned: the suite must pass for any seed, and a pinned
# matrix makes failures reproducible.
FAULT_SEEDS=(3 42 20240805)

# Seeds the conformance job sweeps when HIFI_CONFORMANCE_SEED is unset.
# Seed 42 is the acceptance campaign; seed 7 adds an independent spec
# stream. Runs are few because every imaged spec costs ~10 pristine ones.
CONFORMANCE_SEEDS=(42 7)
CONFORMANCE_RUNS="${HIFI_CONFORMANCE_RUNS:-4}"

# Seeds the rev-campaign job sweeps when HIFI_REV_SEED is unset. Seed 42
# is the acceptance campaign (same stream the regen snapshot pins); seed
# 7 proves the inference generalizes to an independent spec stream.
REV_SEEDS=(42 7)
REV_RUNS="${HIFI_REV_RUNS:-4}"

# Seeds the mna-oracle job sweeps when HIFI_MNA_SEED is unset — the same
# pair the conformance job uses, so the waveform oracle and the
# isomorphism oracles judge the same spec streams.
MNA_SEEDS=(42 7)
MNA_SAMPLES="${HIFI_MNA_SAMPLES:-8}"

# Campaign binaries write their JSON reports here so a failing workflow
# run can upload them as artifacts for post-mortem diffing.
ARTIFACT_DIR="target/ci-artifacts"

job_lint() {
    echo "=== job: lint ==="
    scripts/check.sh --no-drift
}

job_test() {
    echo "=== job: test ==="
    local threads
    threads="$(nproc 2>/dev/null || echo 1)"
    echo "==> cargo build --release (tier-1 gate)"
    cargo build --release --offline --locked
    echo "==> tier-1 tests @ 1 thread"
    HIFI_THREADS=1 cargo test -q --offline --locked
    if [[ "$threads" -gt 1 ]]; then
        echo "==> tier-1 tests @ ${threads} threads"
        HIFI_THREADS="$threads" cargo test -q --offline --locked
    else
        echo "==> tier-1 tests @ available_parallelism: skipped (1 core)"
    fi
}

job_regen_drift() {
    echo "=== job: regen-drift ==="
    scripts/check.sh --drift-only
}

job_fault_matrix() {
    echo "=== job: fault-matrix ==="
    local seeds=("${FAULT_SEEDS[@]}")
    if [[ -n "${HIFI_FAULT_SEED:-}" ]]; then
        seeds=("$HIFI_FAULT_SEED")
    fi
    for seed in "${seeds[@]}"; do
        echo "==> fault_recovery suite @ seed ${seed}"
        HIFI_FAULT_SEED="$seed" cargo test -q --offline --locked --test fault_recovery
    done
}

job_conformance() {
    echo "=== job: conformance ==="
    local seeds=("${CONFORMANCE_SEEDS[@]}")
    if [[ -n "${HIFI_CONFORMANCE_SEED:-}" ]]; then
        seeds=("$HIFI_CONFORMANCE_SEED")
    fi
    cargo build --release --offline --locked --bin conformance
    mkdir -p "$ARTIFACT_DIR"
    for seed in "${seeds[@]}"; do
        echo "==> conformance campaign @ seed ${seed} (${CONFORMANCE_RUNS} runs)"
        cargo run --release --offline --locked --bin conformance -- \
            --runs "$CONFORMANCE_RUNS" --seed "$seed" \
            > "$ARTIFACT_DIR/conformance_seed_${seed}.json"
    done
}

job_rev_campaign() {
    echo "=== job: rev-campaign ==="
    local seeds=("${REV_SEEDS[@]}")
    if [[ -n "${HIFI_REV_SEED:-}" ]]; then
        seeds=("$HIFI_REV_SEED")
    fi
    cargo build --release --offline --locked --bin rev_campaign
    mkdir -p "$ARTIFACT_DIR"
    for seed in "${seeds[@]}"; do
        echo "==> rev campaign @ seed ${seed} (${REV_RUNS} runs, two-route)"
        cargo run --release --offline --locked --bin rev_campaign -- \
            --runs "$REV_RUNS" --seed "$seed" \
            > "$ARTIFACT_DIR/rev_seed_${seed}.json"
    done
}

job_mna_oracle() {
    echo "=== job: mna-oracle ==="
    local seeds=("${MNA_SEEDS[@]}")
    if [[ -n "${HIFI_MNA_SEED:-}" ]]; then
        seeds=("$HIFI_MNA_SEED")
    fi
    cargo build --release --offline --locked --bin mna_oracle
    mkdir -p "$ARTIFACT_DIR"
    for seed in "${seeds[@]}"; do
        echo "==> MNA waveform oracle @ seed ${seed} (${MNA_SAMPLES} MC samples)"
        cargo run --release --offline --locked --bin mna_oracle -- \
            --seed "$seed" --samples "$MNA_SAMPLES" \
            > "$ARTIFACT_DIR/mna_oracle_seed_${seed}.json"
    done
}

job_scale_smoke() {
    echo "=== job: scale-smoke ==="
    local tmp
    tmp="$(mktemp -d)"
    # shellcheck disable=SC2064 # expand now: the dir name is fixed here
    trap "rm -rf '$tmp'" RETURN
    # Results go to a temp file: the smoke tier proves the streaming path
    # completes at 16x with O(tile) peak allocation (the bench asserts it
    # under alloc-track); only the bench-gate job's full 256x numbers are
    # compared against the committed baseline.
    echo "==> scale_sweep @ ≤16x under the counting allocator"
    SCALE_SWEEP_MAX=16 BENCH_RESULTS="$tmp/results.json" \
        cargo bench --offline --locked -p hifi-bench \
        --features hifi-telemetry/alloc-track --bench scale_sweep
}

# serve-smoke state shared with its EXIT trap. A RETURN trap is not
# enough here: under `set -e` a failing load_test aborts the whole
# script, and only the EXIT trap still runs — without it the backgrounded
# hifi-serve daemon would outlive CI.
SERVE_SMOKE_PID=""
SERVE_SMOKE_TMP=""

serve_smoke_cleanup() {
    if [[ -n "$SERVE_SMOKE_PID" ]]; then
        kill "$SERVE_SMOKE_PID" 2>/dev/null || true
        wait "$SERVE_SMOKE_PID" 2>/dev/null || true
        SERVE_SMOKE_PID=""
    fi
    if [[ -n "$SERVE_SMOKE_TMP" ]]; then
        rm -rf "$SERVE_SMOKE_TMP"
        SERVE_SMOKE_TMP=""
    fi
}

job_serve_smoke() {
    echo "=== job: serve-smoke ==="
    cargo build --release --offline --locked -p hifi-serve --bins
    SERVE_SMOKE_TMP="$(mktemp -d)"
    trap serve_smoke_cleanup EXIT
    local tmp="$SERVE_SMOKE_TMP"
    echo "==> start daemon on an ephemeral port"
    target/release/hifi-serve --addr 127.0.0.1:0 --workers 2 --capacity 16 \
        --store "$tmp/store" > "$tmp/serve.out" 2> "$tmp/serve.err" &
    SERVE_SMOKE_PID=$!
    local addr=""
    for _ in $(seq 1 100); do
        addr="$(sed -n 's#^hifi-serve listening on http://##p' "$tmp/serve.out")"
        [[ -n "$addr" ]] && break
        sleep 0.1
    done
    if [[ -z "$addr" ]]; then
        echo "serve-smoke: daemon never reported its address" >&2
        cat "$tmp/serve.err" >&2 || true
        exit 1
    fi
    echo "==> batch 1: 40 jobs over 8 distinct specs @ $addr"
    target/release/load_test --connect "$addr" --jobs 40 --distinct 8 --clients 4
    echo "==> batch 2: resubmit completed specs (must dedup via store hits)"
    target/release/load_test --connect "$addr" --jobs 16 --distinct 8 --clients 4
    echo "==> SIGTERM: daemon must drain and exit 0"
    kill -TERM "$SERVE_SMOKE_PID"
    local status=0
    wait "$SERVE_SMOKE_PID" || status=$?
    SERVE_SMOKE_PID=""
    if [[ "$status" -ne 0 ]]; then
        echo "serve-smoke: daemon exited $status on SIGTERM" >&2
        cat "$tmp/serve.err" >&2 || true
        exit 1
    fi
    grep -q "hifi-serve: stopped" "$tmp/serve.err"
    serve_smoke_cleanup
    trap - EXIT
}

job_bench_gate() {
    echo "=== job: bench-gate ==="
    scripts/bench_gate.sh
}

job_profile_gate() {
    echo "=== job: profile-gate ==="
    cargo build --release --offline --locked --example quickstart --bin hifi-trace
    local trace_dir
    trace_dir="$(mktemp -d)"
    # shellcheck disable=SC2064 # expand now: the dir name is fixed here
    trap "rm -rf '$trace_dir'" RETURN
    echo "==> quickstart with HIFI_TRACE=$trace_dir/trace.json"
    HIFI_TRACE="$trace_dir/trace.json" target/release/examples/quickstart > /dev/null
    echo "==> validate exported Chrome trace"
    target/release/hifi-trace validate "$trace_dir/trace.json"
    echo "==> profile summary"
    target/release/hifi-trace summarize "$trace_dir/trace.json.profile.json"
    echo "==> profile gate vs PROFILE_baseline.json"
    target/release/hifi-trace diff \
        "$trace_dir/trace.json.profile.json" PROFILE_baseline.json
}

run_job() {
    local start="$SECONDS"
    case "$1" in
        lint) job_lint ;;
        test) job_test ;;
        regen-drift) job_regen_drift ;;
        fault-matrix) job_fault_matrix ;;
        conformance) job_conformance ;;
        rev-campaign) job_rev_campaign ;;
        mna-oracle) job_mna_oracle ;;
        scale-smoke) job_scale_smoke ;;
        serve-smoke) job_serve_smoke ;;
        bench-gate) job_bench_gate ;;
        profile-gate) job_profile_gate ;;
        *)
            echo "unknown job: $1" >&2
            echo "jobs: lint test regen-drift fault-matrix conformance rev-campaign mna-oracle scale-smoke serve-smoke bench-gate profile-gate" >&2
            exit 2
            ;;
    esac
    echo "=== job: $1 done in $((SECONDS - start))s ==="
}

if [[ "$#" -eq 0 ]]; then
    set -- lint test regen-drift fault-matrix conformance rev-campaign mna-oracle scale-smoke serve-smoke bench-gate profile-gate
fi
for job in "$@"; do
    run_job "$job"
done
echo "ci: all requested jobs passed"
