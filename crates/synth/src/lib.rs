//! Synthetic DRAM chip generator: the workspace's stand-in for real silicon.
//!
//! The paper images physical dies; we cannot. Instead this crate generates
//! Fig.-10-style sense-amplifier-region layouts with known ground truth and
//! voxelises them into a 3-D [`MaterialVolume`] that the imaging pipeline
//! (`hifi-imaging`) slices like a FIB/SEM and the extractor (`hifi-extract`)
//! reverse engineers. Because the generator knows the intended netlist and
//! transistor dimensions, the whole reverse-engineering pipeline becomes
//! testable end to end — our substitute for the paper's independent-vendor
//! confirmation.
//!
//! The generated layout follows the paper's observed organisation:
//!
//! - bitlines run along **X** on metal 1 and enter the region through a
//!   MAT→SA transition zone,
//! - **column transistors are the first elements** after the MAT (§V-C),
//! - precharge / isolation / offset-cancellation devices share **common
//!   poly gates spanning the region along Y** (§V-C),
//! - latch transistors sit in per-pair slots with M2 cross-coupling,
//! - control rails (LA, LAB, VPRE, LIO, LIOB) are shared across stacked
//!   cells through M2 spines,
//! - an optional MAT strip adds honeycomb stacked capacitors (Fig. 7a).
//!
//! # Examples
//!
//! ```
//! use hifi_synth::{SaRegionSpec, generate_region};
//! use hifi_circuit::topology::SaTopologyKind;
//!
//! let spec = SaRegionSpec::new(SaTopologyKind::OffsetCancellation);
//! let region = generate_region(&spec);
//! assert!(region.layout().len() > 0);
//! let volume = region.voxelize();
//! assert!(volume.len() > 0);
//! ```

mod cell;
mod material;
mod region;
mod spec;

pub use cell::{CellGroundTruth, SaCell};
pub use material::{tile_ranges_x, Material, MaterialVolume};
pub use region::{expected_polarity, generate_region, RegionGroundTruth, SaRegion};
pub use spec::SaRegionSpec;
