//! Material classes and the voxelised chip volume.

use hifi_geometry::{Layer, LayerStack};

/// Material of one voxel. These are the classes the paper's analysis
/// distinguishes in the SEM imagery ("we determine color intensities that
/// correspond to gates, wires and vias", Section V-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(u8)]
pub enum Material {
    /// Inter-layer dielectric / empty space.
    Oxide = 0,
    /// Doped active silicon (source/drain diffusion and channels).
    ActiveSi = 1,
    /// Polysilicon gate.
    GatePoly = 2,
    /// Tungsten contact plug (active/gate up to M1).
    Contact = 3,
    /// Metal-1 wire (bitlines).
    Metal1 = 4,
    /// Via between M1 and M2.
    Via = 5,
    /// Metal-2 wire (rails, spines, cross-coupling).
    Metal2 = 6,
    /// Stacked-capacitor metal in the MAT.
    Capacitor = 7,
}

impl Material {
    /// All materials.
    pub const ALL: [Material; 8] = [
        Material::Oxide,
        Material::ActiveSi,
        Material::GatePoly,
        Material::Contact,
        Material::Metal1,
        Material::Via,
        Material::Metal2,
        Material::Capacitor,
    ];

    /// Decodes a voxel byte.
    pub const fn from_byte(b: u8) -> Option<Material> {
        match b {
            0 => Some(Material::Oxide),
            1 => Some(Material::ActiveSi),
            2 => Some(Material::GatePoly),
            3 => Some(Material::Contact),
            4 => Some(Material::Metal1),
            5 => Some(Material::Via),
            6 => Some(Material::Metal2),
            7 => Some(Material::Capacitor),
            _ => None,
        }
    }

    /// Whether the material conducts (oxide does not; a transistor channel
    /// is active silicon and handled separately during extraction).
    pub const fn is_conductor(self) -> bool {
        !matches!(self, Material::Oxide)
    }

    /// Mean secondary-electron image intensity (0–255) for this material.
    /// SE contrast tracks conductivity (Section IV: "SE depends on the
    /// conductivity").
    pub const fn se_intensity(self) -> f64 {
        match self {
            Material::Oxide => 25.0,
            Material::ActiveSi => 55.0,
            Material::Capacitor => 85.0,
            Material::GatePoly => 115.0,
            Material::Contact => 145.0,
            Material::Via => 175.0,
            Material::Metal1 => 205.0,
            Material::Metal2 => 235.0,
        }
    }

    /// Mean backscatter-electron intensity (0–255): BSE contrast tracks
    /// atomic number, separating tungsten plugs and metals more strongly.
    pub const fn bse_intensity(self) -> f64 {
        match self {
            Material::Oxide => 20.0,
            Material::ActiveSi => 50.0,
            Material::GatePoly => 80.0,
            Material::Capacitor => 110.0,
            Material::Metal1 => 140.0,
            Material::Via => 170.0,
            Material::Metal2 => 200.0,
            Material::Contact => 230.0,
        }
    }
}

/// A dense voxel grid of [`Material`]s with cubic voxels.
///
/// Axes: `x` = bitline direction, `y` = wordline direction, `z` = height
/// above the substrate (the FIB milling direction in the paper's setup is a
/// horizontal axis; slicing is performed by `hifi-imaging`).
#[derive(Debug, Clone, PartialEq)]
pub struct MaterialVolume {
    nx: usize,
    ny: usize,
    nz: usize,
    voxel_nm: f64,
    stack: LayerStack,
    data: Vec<u8>,
}

impl MaterialVolume {
    /// Creates an all-oxide volume.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero or the voxel size is not positive.
    pub fn new(nx: usize, ny: usize, nz: usize, voxel_nm: f64, stack: LayerStack) -> Self {
        assert!(
            nx > 0 && ny > 0 && nz > 0,
            "volume dimensions must be non-zero"
        );
        assert!(voxel_nm > 0.0, "voxel size must be positive");
        Self {
            nx,
            ny,
            nz,
            voxel_nm,
            stack,
            data: vec![Material::Oxide as u8; nx * ny * nz],
        }
    }

    /// Grid dimensions `(nx, ny, nz)`.
    pub fn dims(&self) -> (usize, usize, usize) {
        (self.nx, self.ny, self.nz)
    }

    /// Edge length of one voxel in nm.
    pub fn voxel_nm(&self) -> f64 {
        self.voxel_nm
    }

    /// The layer stack used to build this volume.
    pub fn stack(&self) -> &LayerStack {
        &self.stack
    }

    /// Total voxel count.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the volume holds no voxels (never true post-construction).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    #[inline]
    fn index(&self, x: usize, y: usize, z: usize) -> usize {
        debug_assert!(x < self.nx && y < self.ny && z < self.nz);
        (z * self.ny + y) * self.nx + x
    }

    /// The material at a voxel.
    ///
    /// # Panics
    ///
    /// Panics if the coordinate is out of range.
    pub fn get(&self, x: usize, y: usize, z: usize) -> Material {
        Material::from_byte(self.data[self.index(x, y, z)]).expect("valid voxel byte")
    }

    /// Sets the material at a voxel.
    ///
    /// # Panics
    ///
    /// Panics if the coordinate is out of range.
    pub fn set(&mut self, x: usize, y: usize, z: usize, m: Material) {
        let i = self.index(x, y, z);
        self.data[i] = m as u8;
    }

    /// Fills an axis-aligned box (half-open voxel ranges, clamped to the
    /// grid). When `overwrite` is false, existing non-oxide voxels are kept —
    /// used for contact plugs that must not punch through gates.
    #[allow(clippy::too_many_arguments)]
    pub fn fill_box(
        &mut self,
        x0: usize,
        x1: usize,
        y0: usize,
        y1: usize,
        z0: usize,
        z1: usize,
        m: Material,
        overwrite: bool,
    ) {
        for z in z0..z1.min(self.nz) {
            for y in y0..y1.min(self.ny) {
                for x in x0..x1.min(self.nx) {
                    let i = self.index(x, y, z);
                    if overwrite || self.data[i] == Material::Oxide as u8 {
                        self.data[i] = m as u8;
                    }
                }
            }
        }
    }

    /// Converts a nm coordinate to a voxel index (floor).
    pub fn to_voxel(&self, nm: f64) -> usize {
        (nm / self.voxel_nm).floor().max(0.0) as usize
    }

    /// The voxel z-range (half-open) covering a layer's z-extent.
    pub fn layer_z_range(&self, layer: Layer) -> (usize, usize) {
        let e = self.stack.extent(layer);
        (
            self.to_voxel(e.z_bottom.value()),
            self.to_voxel(e.z_top.value()).min(self.nz),
        )
    }

    /// Fraction of voxels that are not oxide.
    pub fn fill_fraction(&self) -> f64 {
        let filled = self
            .data
            .iter()
            .filter(|&&b| b != Material::Oxide as u8)
            .count();
        filled as f64 / self.data.len() as f64
    }

    /// Counts voxels of one material.
    pub fn count(&self, m: Material) -> usize {
        self.data.iter().filter(|&&b| b == m as u8).count()
    }

    /// Crops the volume to the half-open voxel ranges `[x0, x1) × [y0, y1)`
    /// (full z), clamping to the grid.
    ///
    /// # Panics
    ///
    /// Panics if the clamped window is empty.
    pub fn crop(&self, x0: usize, x1: usize, y0: usize, y1: usize) -> MaterialVolume {
        let x1 = x1.min(self.nx);
        let y1 = y1.min(self.ny);
        assert!(x0 < x1 && y0 < y1, "empty crop window");
        let mut out =
            MaterialVolume::new(x1 - x0, y1 - y0, self.nz, self.voxel_nm, self.stack.clone());
        for z in 0..self.nz {
            for y in y0..y1 {
                for x in x0..x1 {
                    let m = self.get(x, y, z);
                    if m != Material::Oxide {
                        out.set(x - x0, y - y0, z, m);
                    }
                }
            }
        }
        out
    }

    /// The volume mirrored along the bitline (`x`) axis. Geometry, voxel
    /// size and layer stack are preserved; only the voxel contents flip.
    /// Mirroring is an isometry of the layout, so a correct extractor must
    /// recover an isomorphic netlist from the mirrored volume.
    pub fn mirror_x(&self) -> MaterialVolume {
        let mut out = self.clone();
        for z in 0..self.nz {
            for y in 0..self.ny {
                for x in 0..self.nx {
                    out.data[(z * self.ny + y) * self.nx + (self.nx - 1 - x)] =
                        self.data[self.index(x, y, z)];
                }
            }
        }
        out
    }

    /// The volume mirrored along the wordline (`y`) axis; see
    /// [`MaterialVolume::mirror_x`].
    pub fn mirror_y(&self) -> MaterialVolume {
        let mut out = self.clone();
        for z in 0..self.nz {
            for y in 0..self.ny {
                let flipped = self.ny - 1 - y;
                for x in 0..self.nx {
                    out.data[(z * self.nx * self.ny) + flipped * self.nx + x] =
                        self.data[self.index(x, y, z)];
                }
            }
        }
        out
    }

    /// The raw voxel bytes, `x`-major within `y` within `z` (the exact
    /// [`MaterialVolume::index`] layout). Every byte is a valid
    /// [`Material`] discriminant. Used by `hifi-store`'s binary codec.
    pub fn raw_voxels(&self) -> &[u8] {
        &self.data
    }

    /// Rebuilds a volume from raw parts (the inverse of
    /// [`MaterialVolume::raw_voxels`] plus the geometry accessors), used
    /// when decoding a stored volume. Returns `None` — instead of
    /// panicking, since the input may be a decoded artifact — when a
    /// dimension is zero, the voxel size is not positive, the data length
    /// does not match `nx * ny * nz`, or any byte is not a valid
    /// [`Material`].
    pub fn from_raw(
        nx: usize,
        ny: usize,
        nz: usize,
        voxel_nm: f64,
        stack: LayerStack,
        data: Vec<u8>,
    ) -> Option<Self> {
        if nx == 0 || ny == 0 || nz == 0 || voxel_nm.is_nan() || voxel_nm <= 0.0 {
            return None;
        }
        if data.len() != nx.checked_mul(ny)?.checked_mul(nz)? {
            return None;
        }
        if data.iter().any(|&b| Material::from_byte(b).is_none()) {
            return None;
        }
        Some(Self {
            nx,
            ny,
            nz,
            voxel_nm,
            stack,
            data,
        })
    }

    /// A cross-section slice at fixed `x` (the FIB cut plane): returns a
    /// `ny × nz` matrix of materials, row-major in `y` for each `z`.
    pub fn cross_section(&self, x: usize) -> Vec<Material> {
        let mut out = Vec::with_capacity(self.ny * self.nz);
        for z in 0..self.nz {
            for y in 0..self.ny {
                out.push(self.get(x, y, z));
            }
        }
        out
    }

    /// Copies the half-open x-slab `[x0, x1)` (full `y`/`z`) of `self` into
    /// `out`, whose dimensions must match the slab. Row-contiguous copies,
    /// no per-voxel decode.
    fn copy_slab_into(&self, x0: usize, x1: usize, out: &mut MaterialVolume) {
        debug_assert!(x0 < x1 && x1 <= self.nx);
        debug_assert_eq!(out.dims(), (x1 - x0, self.ny, self.nz));
        let w = x1 - x0;
        for row in 0..self.ny * self.nz {
            let src = row * self.nx + x0;
            out.data[row * w..(row + 1) * w].copy_from_slice(&self.data[src..src + w]);
        }
    }

    /// The half-open x-slab `[x0, x1)` (full `y`/`z`) as an owned volume,
    /// clamping `x1` to the grid. Equivalent to
    /// [`MaterialVolume::crop`]`(x0, x1, 0, ny)` but copied row-wise.
    ///
    /// # Panics
    ///
    /// Panics if the clamped slab is empty.
    pub fn slab_x(&self, x0: usize, x1: usize) -> MaterialVolume {
        let x1 = x1.min(self.nx);
        assert!(x0 < x1, "empty slab");
        let mut out =
            MaterialVolume::new(x1 - x0, self.ny, self.nz, self.voxel_nm, self.stack.clone());
        self.copy_slab_into(x0, x1, &mut out);
        out
    }

    /// Writes `slab` (full `y`/`z`, matching dims) back into `self` at
    /// x-offset `x0` — the inverse of [`MaterialVolume::slab_x`], used to
    /// assemble a die from independently produced slabs.
    ///
    /// # Panics
    ///
    /// Panics if the slab does not fit at `x0` or its `y`/`z` dims differ.
    pub fn write_slab_x(&mut self, x0: usize, slab: &MaterialVolume) {
        let (w, sy, sz) = slab.dims();
        assert!(
            sy == self.ny && sz == self.nz && x0 + w <= self.nx,
            "slab ({w}, {sy}, {sz}) at x0={x0} does not fit ({}, {}, {})",
            self.nx,
            self.ny,
            self.nz
        );
        for row in 0..self.ny * self.nz {
            let dst = row * self.nx + x0;
            self.data[dst..dst + w].copy_from_slice(&slab.data[row * w..(row + 1) * w]);
        }
    }

    /// Streams the volume in x-slabs of `tile_x` voxel columns, calling
    /// `f(slab, x0)` for each. One slab buffer is reused across equal-width
    /// tiles (only a narrower tail tile reallocates), so the peak working
    /// set of a streaming consumer is O(tile), not O(die).
    ///
    /// # Panics
    ///
    /// Panics if `tile_x` is zero.
    pub fn for_each_slab_x<F: FnMut(&MaterialVolume, usize)>(&self, tile_x: usize, mut f: F) {
        assert!(tile_x > 0, "tile width must be non-zero");
        let mut buf: Option<MaterialVolume> = None;
        let mut x0 = 0;
        while x0 < self.nx {
            let x1 = (x0 + tile_x).min(self.nx);
            let w = x1 - x0;
            if buf.as_ref().map(|b| b.nx) != Some(w) {
                buf = Some(MaterialVolume::new(
                    w,
                    self.ny,
                    self.nz,
                    self.voxel_nm,
                    self.stack.clone(),
                ));
            }
            let slab = buf.as_mut().expect("slab buffer present");
            self.copy_slab_into(x0, x1, slab);
            f(slab, x0);
            x0 = x1;
        }
    }

    /// Iterator over owned x-slabs of `tile_x` voxel columns, yielding
    /// `(x0, slab)`. Prefer [`MaterialVolume::for_each_slab_x`] when the
    /// consumer can borrow — it reuses one buffer across tiles.
    ///
    /// # Panics
    ///
    /// Panics if `tile_x` is zero.
    pub fn slabs_x(&self, tile_x: usize) -> impl Iterator<Item = (usize, MaterialVolume)> + '_ {
        assert!(tile_x > 0, "tile width must be non-zero");
        tile_ranges_x(self.nx, tile_x)
            .into_iter()
            .map(move |(x0, x1)| (x0, self.slab_x(x0, x1)))
    }

    /// The slab `[x0, x1)` of the infinite periodic x-tiling of `self`
    /// (column `x` reads `self` at `x % nx`). A full-die volume is, to
    /// first order, this periodic repetition of one MAT/SA stripe along
    /// the bitline axis — the scale-sweep bench streams such dies without
    /// ever materializing them.
    ///
    /// # Panics
    ///
    /// Panics if `x0 >= x1`.
    pub fn periodic_slab_x(&self, x0: usize, x1: usize) -> MaterialVolume {
        assert!(x0 < x1, "empty periodic slab");
        let w = x1 - x0;
        let mut out = MaterialVolume::new(w, self.ny, self.nz, self.voxel_nm, self.stack.clone());
        for row in 0..self.ny * self.nz {
            let src_row = &self.data[row * self.nx..(row + 1) * self.nx];
            let dst_row = &mut out.data[row * w..(row + 1) * w];
            let mut written = 0usize;
            let mut src_x = x0 % self.nx;
            while written < w {
                let run = (self.nx - src_x).min(w - written);
                dst_row[written..written + run].copy_from_slice(&src_row[src_x..src_x + run]);
                written += run;
                src_x = 0;
            }
        }
        out
    }
}

/// Half-open x-ranges covering `[0, nx)` in slabs of `tile_x` columns (the
/// last range may be narrower).
///
/// # Panics
///
/// Panics if `tile_x` is zero.
pub fn tile_ranges_x(nx: usize, tile_x: usize) -> Vec<(usize, usize)> {
    assert!(tile_x > 0, "tile width must be non-zero");
    let mut out = Vec::with_capacity(nx.div_ceil(tile_x));
    let mut x0 = 0;
    while x0 < nx {
        let x1 = (x0 + tile_x).min(nx);
        out.push((x0, x1));
        x0 = x1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> MaterialVolume {
        MaterialVolume::new(10, 8, 6, 5.0, LayerStack::default_dram())
    }

    #[test]
    fn starts_all_oxide() {
        let v = small();
        assert_eq!(v.fill_fraction(), 0.0);
        assert_eq!(v.get(0, 0, 0), Material::Oxide);
    }

    #[test]
    fn fill_box_clamps_and_counts() {
        let mut v = small();
        v.fill_box(2, 100, 1, 3, 0, 2, Material::Metal1, true);
        // x clamped to 10: (10-2) * 2 * 2 = 32 voxels.
        assert_eq!(v.count(Material::Metal1), 32);
        assert_eq!(v.get(5, 2, 1), Material::Metal1);
    }

    #[test]
    fn non_overwrite_preserves_existing() {
        let mut v = small();
        v.set(1, 1, 1, Material::GatePoly);
        v.fill_box(0, 3, 0, 3, 0, 3, Material::Contact, false);
        assert_eq!(v.get(1, 1, 1), Material::GatePoly, "gate kept under plug");
        assert_eq!(v.get(0, 0, 0), Material::Contact);
    }

    #[test]
    fn material_round_trip_and_conductivity() {
        for m in Material::ALL {
            assert_eq!(Material::from_byte(m as u8), Some(m));
        }
        assert_eq!(Material::from_byte(200), None);
        assert!(!Material::Oxide.is_conductor());
        assert!(Material::Metal1.is_conductor());
    }

    #[test]
    fn intensities_are_distinct_per_detector() {
        for pair in Material::ALL.iter().zip(Material::ALL.iter().skip(1)) {
            assert_ne!(pair.0.se_intensity(), pair.1.se_intensity());
        }
        // BSE separates the tungsten plug from silicon far more than SE does,
        // mirroring the detector physics the paper leans on.
        let sep_bse = Material::Contact.bse_intensity() - Material::ActiveSi.bse_intensity();
        let sep_se = Material::Contact.se_intensity() - Material::ActiveSi.se_intensity();
        assert!(sep_bse > sep_se);
    }

    #[test]
    fn cross_section_shape() {
        let v = small();
        assert_eq!(v.cross_section(3).len(), 8 * 6);
    }

    #[test]
    fn layer_z_ranges_follow_stack() {
        let v = small();
        let (m1_lo, m1_hi) = v.layer_z_range(Layer::Metal1);
        assert!(m1_lo < m1_hi || m1_hi == v.dims().2);
        // Active starts at the substrate.
        assert_eq!(v.layer_z_range(Layer::Active).0, 0);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_dimension_rejected() {
        let _ = MaterialVolume::new(0, 4, 4, 5.0, LayerStack::default_dram());
    }

    #[test]
    fn mirrors_are_involutions_and_flip_contents() {
        let mut v = small();
        v.fill_box(1, 3, 2, 5, 0, 2, Material::Metal1, true);
        v.set(0, 0, 0, Material::GatePoly);
        let mx = v.mirror_x();
        let my = v.mirror_y();
        assert_eq!(mx.dims(), v.dims());
        assert_eq!(mx.get(9, 0, 0), Material::GatePoly);
        assert_eq!(my.get(0, 7, 0), Material::GatePoly);
        assert_eq!(mx.count(Material::Metal1), v.count(Material::Metal1));
        assert_eq!(mx.mirror_x(), v, "mirror_x is an involution");
        assert_eq!(my.mirror_y(), v, "mirror_y is an involution");
    }

    #[test]
    fn raw_round_trip_preserves_volume() {
        let mut v = small();
        v.fill_box(1, 4, 2, 5, 0, 3, Material::GatePoly, true);
        let (nx, ny, nz) = v.dims();
        let back = MaterialVolume::from_raw(
            nx,
            ny,
            nz,
            v.voxel_nm(),
            v.stack().clone(),
            v.raw_voxels().to_vec(),
        )
        .expect("valid raw parts");
        assert_eq!(back, v);
    }

    fn textured() -> MaterialVolume {
        let mut v = small();
        v.fill_box(1, 7, 2, 6, 0, 3, Material::Metal1, true);
        v.fill_box(3, 9, 0, 4, 2, 5, Material::GatePoly, true);
        v.set(9, 7, 5, Material::Capacitor);
        v
    }

    #[test]
    fn tile_ranges_cover_without_overlap() {
        assert_eq!(tile_ranges_x(10, 4), vec![(0, 4), (4, 8), (8, 10)]);
        assert_eq!(tile_ranges_x(8, 8), vec![(0, 8)]);
        assert_eq!(tile_ranges_x(3, 100), vec![(0, 3)]);
        assert_eq!(tile_ranges_x(6, 1).len(), 6);
    }

    #[test]
    fn slab_matches_crop_and_reassembles() {
        let v = textured();
        for (x0, x1) in tile_ranges_x(10, 3) {
            assert_eq!(v.slab_x(x0, x1), v.crop(x0, x1, 0, 8), "slab [{x0}, {x1})");
        }
        // Round trip: slabs written back rebuild the die exactly.
        let mut rebuilt = MaterialVolume::new(10, 8, 6, 5.0, LayerStack::default_dram());
        for (x0, slab) in v.slabs_x(4) {
            rebuilt.write_slab_x(x0, &slab);
        }
        assert_eq!(rebuilt, v);
    }

    #[test]
    fn streaming_slabs_match_owned_slabs_and_reuse_buffers() {
        let v = textured();
        let owned: Vec<(usize, MaterialVolume)> = v.slabs_x(4).collect();
        let mut streamed: Vec<(usize, MaterialVolume)> = Vec::new();
        v.for_each_slab_x(4, |slab, x0| streamed.push((x0, slab.clone())));
        assert_eq!(streamed, owned);
        // The reused buffer must not leak voxels from the previous tile:
        // tile widths that do not divide nx force a fresh tail buffer, and
        // equal-width tiles with disjoint content overwrite fully.
        v.for_each_slab_x(5, |slab, x0| assert_eq!(*slab, v.slab_x(x0, x0 + 5)));
    }

    #[test]
    fn periodic_slab_wraps_contents() {
        let v = textured();
        // One full period starting at 0 is the volume itself.
        assert_eq!(v.periodic_slab_x(0, 10), v);
        // A slab spanning two periods repeats the voxels.
        let two = v.periodic_slab_x(0, 20);
        for z in 0..6 {
            for y in 0..8 {
                for x in 0..20 {
                    assert_eq!(two.get(x, y, z), v.get(x % 10, y, z));
                }
            }
        }
        // A misaligned window reads modulo the period.
        let window = v.periodic_slab_x(7, 13);
        for x in 0..6 {
            assert_eq!(window.get(x, 3, 2), v.get((7 + x) % 10, 3, 2));
        }
    }

    #[test]
    fn from_raw_rejects_invalid_parts() {
        let v = small();
        let (nx, ny, nz) = v.dims();
        let stack = v.stack().clone();
        let data = v.raw_voxels().to_vec();
        // Wrong length.
        assert!(
            MaterialVolume::from_raw(nx, ny, nz + 1, 5.0, stack.clone(), data.clone()).is_none()
        );
        // Zero dimension / bad voxel size.
        assert!(MaterialVolume::from_raw(0, ny, nz, 5.0, stack.clone(), Vec::new()).is_none());
        assert!(MaterialVolume::from_raw(nx, ny, nz, -1.0, stack.clone(), data.clone()).is_none());
        // A byte that is not a material.
        let mut bad = data;
        bad[0] = 200;
        assert!(MaterialVolume::from_raw(nx, ny, nz, 5.0, stack, bad).is_none());
    }
}
