//! Generator configuration.

use hifi_circuit::topology::{SaDimensions, SaTopologyKind};

/// Configuration for one generated SA region (builder style).
///
/// ```
/// use hifi_synth::SaRegionSpec;
/// use hifi_circuit::topology::SaTopologyKind;
///
/// let spec = SaRegionSpec::new(SaTopologyKind::Classic)
///     .with_pairs(4)
///     .with_voxel_nm(10.0);
/// assert_eq!(spec.n_pairs, 4);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SaRegionSpec {
    /// Which SA circuit to lay out.
    pub topology: SaTopologyKind,
    /// Transistor dimensions (drawn W/L per class). Defaults match a modern
    /// node; pass a chip's measured dimensions to emulate that chip.
    pub dims: SaDimensions,
    /// Number of bitline pairs (stacked SA cells along Y).
    pub n_pairs: usize,
    /// Voxel edge for voxelisation (nm). The paper's SEM pixel resolutions
    /// run 3.4–10.4 nm (Table I).
    pub voxel_nm: f64,
    /// MAT→SA transition-zone length along the bitline (nm);
    /// 318 nm (DDR4) / 275 nm (DDR5) on average in the paper.
    pub transition_nm: i64,
    /// Whether to prepend a MAT strip with honeycomb capacitors (Fig. 7a).
    pub include_mat: bool,
    /// Length of the MAT strip when included (nm).
    pub mat_length_nm: i64,
}

impl SaRegionSpec {
    /// A spec with workspace defaults: two pairs, 8 nm voxels, 318 nm
    /// transition, no MAT strip.
    pub fn new(topology: SaTopologyKind) -> Self {
        Self {
            topology,
            dims: SaDimensions::default(),
            n_pairs: 2,
            voxel_nm: 8.0,
            transition_nm: 318,
            include_mat: false,
            mat_length_nm: 640,
        }
    }

    /// Sets the transistor dimensions.
    pub fn with_dims(mut self, dims: SaDimensions) -> Self {
        self.dims = dims;
        self
    }

    /// Sets the number of bitline pairs.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn with_pairs(mut self, n: usize) -> Self {
        assert!(n > 0, "a region needs at least one pair");
        self.n_pairs = n;
        self
    }

    /// Sets the voxel size.
    ///
    /// # Panics
    ///
    /// Panics unless the size is positive.
    pub fn with_voxel_nm(mut self, nm: f64) -> Self {
        assert!(nm > 0.0, "voxel size must be positive");
        self.voxel_nm = nm;
        self
    }

    /// Sets the MAT→SA transition length.
    pub fn with_transition_nm(mut self, nm: i64) -> Self {
        self.transition_nm = nm.max(0);
        self
    }

    /// Enables the MAT capacitor strip.
    pub fn with_mat_strip(mut self, include: bool) -> Self {
        self.include_mat = include;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_round_trip() {
        let s = SaRegionSpec::new(SaTopologyKind::OffsetCancellation)
            .with_pairs(3)
            .with_voxel_nm(5.0)
            .with_transition_nm(275)
            .with_mat_strip(true);
        assert_eq!(s.n_pairs, 3);
        assert_eq!(s.voxel_nm, 5.0);
        assert_eq!(s.transition_nm, 275);
        assert!(s.include_mat);
    }

    #[test]
    #[should_panic(expected = "at least one pair")]
    fn zero_pairs_rejected() {
        let _ = SaRegionSpec::new(SaTopologyKind::Classic).with_pairs(0);
    }
}
