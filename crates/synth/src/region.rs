//! Tiling SA cells into a full region and voxelising it.

use crate::cell::{generate_cell, CellGroundTruth, TRACK_PITCH, WIRE_W};
use crate::material::{Material, MaterialVolume};
use crate::spec::SaRegionSpec;
use hifi_circuit::{Netlist, Polarity, TransistorClass};
use hifi_geometry::{Element, ElementKind, Layer, LayerStack, Layout, Rect};

/// Ground truth for the whole region.
#[derive(Debug, Clone)]
pub struct RegionGroundTruth {
    /// Per-cell ground truth (all cells share one topology and dimensions).
    pub cell: CellGroundTruth,
    /// The region-level netlist: per-pair bitlines and column selects,
    /// shared LA/LAB/VPRE/LIO/LIOB rails and common-gate control nets.
    pub region_netlist: Netlist,
}

/// A generated SA region: layout, voxelisation and ground truth.
#[derive(Debug, Clone)]
pub struct SaRegion {
    spec: SaRegionSpec,
    layout: Layout,
    cell_length: i64,
    cell_height: i64,
    /// X where the SA slots start (after MAT strip and transition).
    sa_x0: i64,
    /// Total region extent.
    extent: Rect,
    ground_truth: RegionGroundTruth,
}

impl SaRegion {
    /// The generator spec.
    pub fn spec(&self) -> &SaRegionSpec {
        &self.spec
    }

    /// The flattened region layout.
    pub fn layout(&self) -> &Layout {
        &self.layout
    }

    /// Region bounding extent.
    pub fn extent(&self) -> Rect {
        self.extent
    }

    /// X coordinate where SA cells begin (end of the MAT→SA transition).
    pub fn sa_x0(&self) -> i64 {
        self.sa_x0
    }

    /// Height of one cell (pitch of the stacked pairs).
    pub fn cell_height(&self) -> i64 {
        self.cell_height
    }

    /// Length of one cell.
    pub fn cell_length(&self) -> i64 {
        self.cell_length
    }

    /// The window (in nm) covering exactly one cell's SA circuitry — the
    /// extraction target for topology identification.
    ///
    /// # Panics
    ///
    /// Panics if `pair` is out of range.
    pub fn cell_window(&self, pair: usize) -> Rect {
        assert!(pair < self.spec.n_pairs, "pair {pair} out of range");
        let y0 = pair as i64 * self.cell_height;
        Rect::new(
            (self.sa_x0, y0).into(),
            (self.sa_x0 + self.cell_length, y0 + self.cell_height).into(),
        )
    }

    /// Ground truth.
    pub fn ground_truth(&self) -> &RegionGroundTruth {
        &self.ground_truth
    }

    /// The ground-truth netlist an extraction of one [`Self::cell_window`]
    /// should recover (identical for every pair — cells share a topology).
    pub fn window_netlist(&self) -> &Netlist {
        &self.ground_truth.cell.netlist
    }

    /// Crops `volume` — a voxelisation (or imaging reconstruction) of this
    /// region — to `cell_window(pair)`, using the same nm→voxel rounding
    /// as [`SaRegion::voxelize`]. Returns `None` when the clamped window is
    /// empty, i.e. the volume does not extend to the requested cell (a
    /// degenerate reconstruction), instead of panicking like
    /// [`MaterialVolume::crop`].
    ///
    /// # Panics
    ///
    /// Panics if `pair` is out of range (same contract as
    /// [`Self::cell_window`]).
    pub fn window_volume(&self, volume: &MaterialVolume, pair: usize) -> Option<MaterialVolume> {
        let window = self.cell_window(pair);
        let voxel = volume.voxel_nm();
        let to_vox = |nm: i64| ((nm as f64) / voxel).round().max(0.0) as usize;
        let (nx, ny, _) = volume.dims();
        let (x0, x1) = (to_vox(window.min().x), to_vox(window.max().x).min(nx));
        let (y0, y1) = (to_vox(window.min().y), to_vox(window.max().y).min(ny));
        if x0 >= x1 || y0 >= y1 {
            return None;
        }
        Some(volume.crop(x0, x1, y0, y1))
    }

    /// Voxel-grid dimensions `(nx, ny, nz)` of a full voxelisation of this
    /// region, without materializing it — what a streaming consumer needs
    /// to plan its tiles and acquisition schedule.
    pub fn voxel_dims(&self) -> (usize, usize, usize) {
        let voxel = self.spec.voxel_nm;
        let stack = LayerStack::default_dram();
        let nx = ((self.extent.max().x as f64) / voxel).ceil() as usize + 1;
        let ny = ((self.extent.max().y as f64) / voxel).ceil() as usize + 1;
        let nz = (stack.total_height().value() / voxel).ceil() as usize;
        (nx, ny, nz)
    }

    /// Voxelises the layout into a material volume at the spec's voxel size.
    pub fn voxelize(&self) -> MaterialVolume {
        let (nx, _, _) = self.voxel_dims();
        self.voxelize_slab(0, nx)
    }

    /// Voxelises only the half-open x-slab `[x0, x1)` of the voxel grid
    /// (clamping `x1`), bit-identical to the same slab of a full
    /// [`SaRegion::voxelize`]: every fill box is intersected with the slab
    /// and the non-overwriting contact pass sees the same prior contents
    /// voxel-for-voxel. Peak memory is O(slab), which is what lets a
    /// full-die voxelisation stream instead of materializing.
    ///
    /// # Panics
    ///
    /// Panics if the clamped slab is empty.
    pub fn voxelize_slab(&self, x0: usize, x1: usize) -> MaterialVolume {
        let voxel = self.spec.voxel_nm;
        let stack = LayerStack::default_dram();
        let (nx, ny, nz) = self.voxel_dims();
        let x1 = x1.min(nx);
        assert!(x0 < x1, "empty voxelisation slab [{x0}, {x1})");
        let mut vol = MaterialVolume::new(x1 - x0, ny, nz, voxel, stack.clone());

        let band = |layer: Layer| {
            let e = stack.extent(layer);
            (
                (e.z_bottom.value() / voxel).floor() as usize,
                (e.z_top.value() / voxel).ceil() as usize,
            )
        };
        let vox = |nm: i64| ((nm as f64) / voxel).round().max(0.0) as usize;
        // Global voxel x mapped into the slab: start clamps up to the slab
        // origin, end is clamped by `fill_box` against the slab width.
        let slab_x = |nm: i64| vox(nm).saturating_sub(x0);
        let slab_x_end = |nm: i64| vox(nm).min(x1).saturating_sub(x0);

        // Fill order: base layers first; contacts last without overwriting
        // so plugs rest on gates instead of punching through them.
        let order = [
            (Layer::Active, Material::ActiveSi, true),
            (Layer::Gate, Material::GatePoly, true),
            (Layer::Metal1, Material::Metal1, true),
            (Layer::Via1, Material::Via, true),
            (Layer::Metal2, Material::Metal2, true),
            (Layer::Capacitor, Material::Capacitor, true),
        ];
        for (layer, material, overwrite) in order {
            let (z0, z1) = band(layer);
            for e in self.layout.elements_on(layer) {
                let r = e.rect();
                vol.fill_box(
                    slab_x(r.min().x),
                    slab_x_end(r.max().x),
                    vox(r.min().y),
                    vox(r.max().y),
                    z0,
                    z1,
                    material,
                    overwrite,
                );
            }
        }
        // Contact plugs: from the top of active to the bottom of M1.
        let z0 = (stack.extent(Layer::Active).z_top.value() / voxel).floor() as usize;
        let z1 = (stack.extent(Layer::Metal1).z_bottom.value() / voxel).ceil() as usize;
        for e in self.layout.elements_on(Layer::Contact) {
            let r = e.rect();
            vol.fill_box(
                slab_x(r.min().x),
                slab_x_end(r.max().x),
                vox(r.min().y),
                vox(r.max().y),
                z0,
                z1,
                Material::Contact,
                false,
            );
        }
        vol
    }

    /// [`SaRegion::voxelize`] assembled slab-by-slab in tiles of `tile_x`
    /// voxel columns — bit-identical to the monolithic voxelisation (the
    /// tiled-vs-monolithic equivalence suite pins this), with each slab
    /// produced independently.
    ///
    /// # Panics
    ///
    /// Panics if `tile_x` is zero.
    pub fn voxelize_tiled(&self, tile_x: usize) -> MaterialVolume {
        let (nx, ny, nz) = self.voxel_dims();
        let stack = LayerStack::default_dram();
        let mut vol = MaterialVolume::new(nx, ny, nz, self.spec.voxel_nm, stack);
        for (x0, x1) in crate::material::tile_ranges_x(nx, tile_x) {
            vol.write_slab_x(x0, &self.voxelize_slab(x0, x1));
        }
        vol
    }
}

/// Builds the region-level ground-truth netlist: one SA circuit per pair
/// with shared rails and common-gate nets.
fn region_netlist(spec: &SaRegionSpec) -> Netlist {
    let cell = generate_cell(spec);
    let src = &cell.ground_truth().netlist;
    let mut nl = Netlist::new(format!("region-{}x-{}", spec.n_pairs, spec.topology));
    let shared = [
        "LA", "LAB", "VPRE", "LIO", "LIOB", "PEQ", "PRE", "ISO", "OC",
    ];
    for pair in 0..spec.n_pairs {
        let map_name = |n: &str| -> String {
            if shared.contains(&n) {
                n.to_owned()
            } else {
                format!("{n}#{pair}")
            }
        };
        let devices: Vec<_> = src.devices().map(|(_, d)| d.clone()).collect();
        for d in devices {
            match d {
                hifi_circuit::Device::Mosfet(m) => {
                    let g = nl.add_net(map_name(src.net_name(m.gate)));
                    let s = nl.add_net(map_name(src.net_name(m.source)));
                    let dr = nl.add_net(map_name(src.net_name(m.drain)));
                    nl.add_mosfet(
                        format!("{}#{pair}", m.name),
                        m.polarity,
                        m.class,
                        m.dims,
                        g,
                        s,
                        dr,
                    );
                }
                hifi_circuit::Device::Capacitor(c) => {
                    let a = nl.add_net(map_name(src.net_name(c.a)));
                    let b = nl.add_net(map_name(src.net_name(c.b)));
                    nl.add_capacitor(format!("{}#{pair}", c.name), c.value, a, b);
                }
            }
        }
    }
    nl
}

/// Generates a full SA region from a spec.
pub fn generate_region(spec: &SaRegionSpec) -> SaRegion {
    let cell = generate_cell(spec);
    let mat_len = if spec.include_mat {
        spec.mat_length_nm
    } else {
        0
    };
    let sa_x0 = mat_len + spec.transition_nm;

    let mut layout = Layout::new(format!(
        "sa-region-{}x-{}",
        spec.n_pairs,
        spec.topology.name()
    ));

    // Tile the cells.
    for pair in 0..spec.n_pairs {
        layout.merge_translated(cell.layout(), sa_x0, pair as i64 * cell.height());
    }

    // Bitline continuations through the transition (and MAT strip): the
    // paper measures this MAT→SA overhead explicitly (Section V-C).
    for pair in 0..spec.n_pairs {
        let y_off = pair as i64 * cell.height();
        for (track_y, name) in [(cell.bl_track_y(), "BL"), (cell.blb_track_y(), "BLB")] {
            layout.push(
                Element::new(
                    Layer::Metal1,
                    Rect::new(
                        (0, y_off + track_y).into(),
                        (sa_x0, y_off + track_y + WIRE_W).into(),
                    ),
                    ElementKind::Wire,
                )
                .with_label(format!("{name}#{pair}")),
            );
        }
    }

    // MAT strip: honeycomb stacked capacitors above the bitlines (Fig. 7a).
    if spec.include_mat {
        let cap = 40;
        let pitch_x = 72;
        let pitch_y = 64;
        let total_h = spec.n_pairs as i64 * cell.height();
        let mut row = 0;
        let mut y = 8;
        while y + cap <= total_h {
            let x_shift = if row % 2 == 0 { 8 } else { 8 + pitch_x / 2 };
            let mut x = x_shift;
            while x + cap <= mat_len {
                layout.push(
                    Element::new(
                        Layer::Capacitor,
                        Rect::from_origin_size(x, y, cap, cap),
                        ElementKind::CellCapacitor,
                    )
                    .with_label("cell-cap"),
                );
                x += pitch_x;
            }
            y += pitch_y;
            row += 1;
        }
    }

    // Rail spines: M2 Y-wires joining each cell's rail tracks across the
    // region, one unique X per rail.
    let spine_x0 = sa_x0 + cell.length() + 40;
    let total_h = spec.n_pairs as i64 * cell.height();
    let mut spine_x = spine_x0;
    for (rail, track_y) in cell.rail_track_ys() {
        layout.push(
            Element::new(
                Layer::Metal2,
                Rect::new((spine_x, 0).into(), (spine_x + WIRE_W, total_h).into()),
                ElementKind::Wire,
            )
            .with_label(rail.clone()),
        );
        for pair in 0..spec.n_pairs {
            let y = pair as i64 * cell.height() + track_y;
            // Extend the rail M1 track to reach under the spine.
            layout.push(
                Element::new(
                    Layer::Metal1,
                    Rect::new(
                        (sa_x0 + cell.length() - WIRE_W, y).into(),
                        (spine_x + WIRE_W, y + WIRE_W).into(),
                    ),
                    ElementKind::Wire,
                )
                .with_label(rail.clone()),
            );
            layout.push(
                Element::new(
                    Layer::Via1,
                    Rect::from_origin_size(spine_x, y, WIRE_W, WIRE_W),
                    ElementKind::Via,
                )
                .with_label(rail.clone()),
            );
        }
        spine_x += 2 * TRACK_PITCH;
    }

    let extent = Rect::new((0, 0).into(), (spine_x + 40, total_h).into());

    SaRegion {
        spec: spec.clone(),
        cell_length: cell.length(),
        cell_height: cell.height(),
        sa_x0,
        extent,
        ground_truth: RegionGroundTruth {
            cell: cell.ground_truth().clone(),
            region_netlist: region_netlist(spec),
        },
        layout,
    }
}

/// Expected polarity by class under the paper's identification heuristic:
/// pSA latch devices are PMOS; everything else NMOS (Section V-A viii).
pub fn expected_polarity(class: TransistorClass) -> Polarity {
    if class == TransistorClass::PSa {
        Polarity::Pmos
    } else {
        Polarity::Nmos
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hifi_circuit::topology::SaTopologyKind;

    #[test]
    fn region_tiles_cells_and_spines() {
        let spec = SaRegionSpec::new(SaTopologyKind::Classic).with_pairs(3);
        let region = generate_region(&spec);
        // 3 cells' worth of active regions.
        assert_eq!(
            region
                .layout()
                .elements_of_kind(ElementKind::ActiveRegion)
                .count(),
            27
        );
        // 5 rail spines.
        let spines = region
            .layout()
            .elements_on(Layer::Metal2)
            .filter(|e| e.rect().height() == 3 * region.cell_height())
            .count();
        assert_eq!(spines, 5);
    }

    #[test]
    fn region_netlist_shares_rails_but_not_bitlines() {
        let spec = SaRegionSpec::new(SaTopologyKind::Classic).with_pairs(2);
        let region = generate_region(&spec);
        let nl = &region.ground_truth().region_netlist;
        assert_eq!(nl.device_count(), 18);
        assert!(nl.net("LA").is_some());
        assert!(nl.net("BL#0").is_some());
        assert!(nl.net("BL#1").is_some());
        assert!(nl.net("BL").is_none(), "bitlines are per-pair");
        // PEQ is shared: 6 gates attach (3 per cell).
        let peq = nl.net("PEQ").unwrap();
        assert_eq!(nl.net_degree(peq), 6);
    }

    #[test]
    fn cell_window_covers_one_cell() {
        let spec = SaRegionSpec::new(SaTopologyKind::OffsetCancellation).with_pairs(2);
        let region = generate_region(&spec);
        let w0 = region.cell_window(0);
        let w1 = region.cell_window(1);
        assert_eq!(w0.width(), region.cell_length());
        assert_eq!(w0.height(), region.cell_height());
        assert!(!w0.intersects(&w1));
    }

    #[test]
    fn window_volume_crops_to_the_cell_and_rejects_short_volumes() {
        let spec = SaRegionSpec::new(SaTopologyKind::Classic).with_pairs(2);
        let region = generate_region(&spec);
        let volume = region.voxelize();
        let cropped = region
            .window_volume(&volume, 1)
            .expect("full voxelisation covers every window");
        let voxel = volume.voxel_nm();
        let expected_nx = (region.cell_window(1).width() as f64 / voxel).round() as usize;
        assert!((cropped.dims().0 as i64 - expected_nx as i64).abs() <= 1);
        assert_eq!(
            region.window_netlist().device_count(),
            region.ground_truth().cell.netlist.device_count()
        );
        // A volume that stops short of the window (degenerate
        // reconstruction) yields None, not a panic.
        let short = volume.crop(0, 4, 0, 4);
        assert!(region.window_volume(&short, 0).is_none());
    }

    #[test]
    fn mirrored_window_volume_preserves_material_census() {
        let spec = SaRegionSpec::new(SaTopologyKind::OffsetCancellation);
        let region = generate_region(&spec);
        let volume = region.voxelize();
        let window = region.window_volume(&volume, 0).unwrap();
        for mirrored in [window.mirror_x(), window.mirror_y()] {
            for m in Material::ALL {
                assert_eq!(mirrored.count(m), window.count(m), "{m:?} census");
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn window_out_of_range_panics() {
        let region = generate_region(&SaRegionSpec::new(SaTopologyKind::Classic));
        let _ = region.cell_window(5);
    }

    #[test]
    fn voxelization_contains_all_materials() {
        let spec = SaRegionSpec::new(SaTopologyKind::Classic)
            .with_pairs(1)
            .with_mat_strip(true);
        let region = generate_region(&spec);
        let vol = region.voxelize();
        for m in [
            Material::ActiveSi,
            Material::GatePoly,
            Material::Contact,
            Material::Metal1,
            Material::Via,
            Material::Metal2,
            Material::Capacitor,
        ] {
            assert!(vol.count(m) > 0, "{m:?} missing from volume");
        }
        // Mostly oxide, as in a real chip cross-section.
        assert!(vol.fill_fraction() < 0.5);
    }

    #[test]
    fn slab_voxelisation_matches_monolithic() {
        let spec = SaRegionSpec::new(SaTopologyKind::OffsetCancellation)
            .with_pairs(2)
            .with_mat_strip(true);
        let region = generate_region(&spec);
        let full = region.voxelize();
        let (nx, ny, _) = region.voxel_dims();
        assert_eq!(full.dims(), region.voxel_dims());
        // Every slab of several tile widths is bit-identical to the crop of
        // the monolithic voxelisation — including tiles cutting through
        // cells, the MAT strip and the contact plugs.
        for tile in [17usize, 64, nx / 2, nx] {
            for (x0, x1) in crate::material::tile_ranges_x(nx, tile) {
                assert_eq!(
                    region.voxelize_slab(x0, x1),
                    full.crop(x0, x1, 0, ny),
                    "slab [{x0}, {x1}) of tile {tile}"
                );
            }
            assert_eq!(region.voxelize_tiled(tile), full, "tiled assembly {tile}");
        }
    }

    #[test]
    fn contacts_do_not_punch_through_gates() {
        let spec = SaRegionSpec::new(SaTopologyKind::Classic).with_pairs(1);
        let region = generate_region(&spec);
        let vol = region.voxelize();
        // Wherever a contact voxel column exists over a gate, gate voxels
        // must survive beneath it.
        let (nx, ny, nz) = vol.dims();
        let mut checked = 0;
        for z in 0..nz {
            for y in 0..ny {
                for x in 0..nx {
                    if vol.get(x, y, z) == Material::GatePoly {
                        checked += 1;
                    }
                }
            }
        }
        assert!(checked > 0, "gates exist in the volume");
    }

    #[test]
    fn transition_zone_has_only_wiring() {
        let spec = SaRegionSpec::new(SaTopologyKind::Classic).with_transition_nm(318);
        let region = generate_region(&spec);
        let window = Rect::new(
            (0, 0).into(),
            (region.sa_x0(), region.extent().max().y).into(),
        );
        for layer in [Layer::Active, Layer::Gate] {
            assert_eq!(
                region.layout().query(layer, window).count(),
                0,
                "{layer} in transition zone"
            );
        }
        assert!(region.layout().query(Layer::Metal1, window).count() > 0);
    }

    #[test]
    fn generated_layouts_have_no_floating_connectors() {
        use hifi_geometry::DesignRules;
        for kind in [SaTopologyKind::Classic, SaTopologyKind::OffsetCancellation] {
            let region = generate_region(&SaRegionSpec::new(kind).with_pairs(2));
            let rules = DesignRules::default_dram(18.0);
            let violations = rules.check_enclosure(region.layout());
            assert!(
                violations.is_empty(),
                "{kind}: {} floating connectors, first: {}",
                violations.len(),
                violations[0]
            );
        }
    }

    #[test]
    fn expected_polarity_heuristic() {
        assert_eq!(expected_polarity(TransistorClass::PSa), Polarity::Pmos);
        assert_eq!(expected_polarity(TransistorClass::NSa), Polarity::Nmos);
        assert_eq!(expected_polarity(TransistorClass::Column), Polarity::Nmos);
    }
}
