//! One SA cell: the layout of a single bitline pair's sense amplifier.
//!
//! Geometry discipline (what makes the routing provably conflict-free):
//!
//! - **M1 wires run along X** at fixed Y tracks (bitlines, internal nodes,
//!   rails) plus short X stubs at device rows — no two M1 shapes share a
//!   track unless they belong to the same net.
//! - **M2 wires run along Y** at unique X positions (one per connection), so
//!   M2 never crosses M2.
//! - **Common-gate poly strips run along Y** through the whole cell (and,
//!   once tiled, the whole region), exactly as the paper observed for
//!   precharge/ISO/OC devices (Section V-C).
//! - Vias/contacts only at intended junctions.

use crate::spec::SaRegionSpec;
use hifi_circuit::topology::{self, SaTopologyKind};
use hifi_circuit::{Netlist, TransistorClass, TransistorDims};
use hifi_geometry::{Element, ElementKind, Layer, Layout, Rect};

/// Wire width for M1/M2/poly routing (nm).
pub const WIRE_W: i64 = 32;
/// Track pitch for M1 X-tracks (nm).
pub const TRACK_PITCH: i64 = 64;
/// First track's Y offset (nm).
const TRACK_Y0: i64 = 16;
/// Active pad length along X on each side of a gate (nm).
const PAD_LEN: i64 = 64;
/// Gate overhang beyond the channel in Y (nm).
const GATE_OV: i64 = 48;
/// Contact/via edge (nm).
const CUT: i64 = 32;
/// Vertical gap between stacked devices on a common-gate strip (nm).
const STACK_GAP: i64 = 56;
/// Margin between slots (nm).
const SLOT_GAP: i64 = 112;

/// The named M1 tracks of a cell, bottom to top.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Track {
    Bl,
    Blb,
    Sabl,
    Sablb,
    Lio,
    Liob,
    Vpre,
    La,
    Lab,
    Y0,
}

impl Track {
    fn net_name(self) -> &'static str {
        match self {
            Track::Bl => "BL",
            Track::Blb => "BLB",
            Track::Sabl => "SABL",
            Track::Sablb => "SABLB",
            Track::Lio => "LIO",
            Track::Liob => "LIOB",
            Track::Vpre => "VPRE",
            Track::La => "LA",
            Track::Lab => "LAB",
            Track::Y0 => "Y0",
        }
    }
}

/// Ground truth carried alongside a generated cell.
#[derive(Debug, Clone, PartialEq)]
pub struct CellGroundTruth {
    /// The intended netlist (identical in structure to the library
    /// topology).
    pub netlist: Netlist,
    /// Drawn dimensions per transistor class, as placed.
    pub dims_by_class: Vec<(TransistorClass, TransistorDims)>,
}

/// One generated SA cell: layout in cell-local coordinates
/// (`x ∈ [0, length)`, `y ∈ [0, height)`) plus its ground truth.
#[derive(Debug, Clone)]
pub struct SaCell {
    layout: Layout,
    length: i64,
    height: i64,
    /// Y positions (track bottom) of the bitline tracks, for stitching the
    /// MAT/transition wires at region level.
    bl_track_y: i64,
    blb_track_y: i64,
    ground_truth: CellGroundTruth,
    rail_track_ys: Vec<(String, i64)>,
}

impl SaCell {
    /// The cell layout (local coordinates).
    pub fn layout(&self) -> &Layout {
        &self.layout
    }

    /// Cell length along X.
    pub fn length(&self) -> i64 {
        self.length
    }

    /// Cell height along Y.
    pub fn height(&self) -> i64 {
        self.height
    }

    /// Y of the BL track bottom edge.
    pub fn bl_track_y(&self) -> i64 {
        self.bl_track_y
    }

    /// Y of the BLB track bottom edge.
    pub fn blb_track_y(&self) -> i64 {
        self.blb_track_y
    }

    /// The shared rails and their track Y positions (for region spines).
    pub fn rail_track_ys(&self) -> &[(String, i64)] {
        &self.rail_track_ys
    }

    /// Ground truth.
    pub fn ground_truth(&self) -> &CellGroundTruth {
        &self.ground_truth
    }
}

struct CellBuilder {
    layout: Layout,
    tracks: Vec<(Track, i64)>,
    zone_y0: i64,
    zone_y1: i64,
    height: i64,
    cursor_x: i64,
}

impl CellBuilder {
    fn track_y(&self, t: Track) -> i64 {
        self.tracks
            .iter()
            .find(|(tt, _)| *tt == t)
            .map(|(_, y)| *y)
            .expect("track exists for this topology")
    }

    fn rect(&mut self, layer: Layer, kind: ElementKind, r: Rect, label: &str) {
        self.layout
            .push(Element::new(layer, r, kind).with_label(label));
    }

    /// An M1 X-direction wire on a track.
    fn m1_track(&mut self, t: Track, x0: i64, x1: i64) {
        let y = self.track_y(t);
        self.rect(
            Layer::Metal1,
            ElementKind::Wire,
            Rect::new((x0, y).into(), (x1, y + WIRE_W).into()),
            t.net_name(),
        );
    }

    /// Contact cut (active/gate → M1) centred at `(cx, cy)` with an M1 pad.
    fn contact(&mut self, cx: i64, cy: i64, label: &str) {
        self.rect(
            Layer::Contact,
            ElementKind::Via,
            Rect::new(
                (cx - CUT / 2, cy - CUT / 2).into(),
                (cx + CUT / 2, cy + CUT / 2).into(),
            ),
            label,
        );
    }

    /// Via cut (M1 → M2) centred at `(cx, cy)`.
    fn via(&mut self, cx: i64, cy: i64, label: &str) {
        self.rect(
            Layer::Via1,
            ElementKind::Via,
            Rect::new(
                (cx - CUT / 2, cy - CUT / 2).into(),
                (cx + CUT / 2, cy + CUT / 2).into(),
            ),
            label,
        );
    }

    /// Connects an M1 pad centre `(px, py)` to the M1 track `target` using a
    /// Y-direction M2 wire at X position `conn_x` (plus M1 stub at the pad
    /// row when the connector is offset from the pad).
    fn connect_to_track(&mut self, px: i64, py: i64, conn_x: i64, target: Track, label: &str) {
        // M1 stub from the pad to the connector position.
        let (sx0, sx1) = if conn_x < px {
            (conn_x, px)
        } else {
            (px, conn_x)
        };
        self.rect(
            Layer::Metal1,
            ElementKind::Wire,
            Rect::new(
                (sx0 - WIRE_W / 2, py - WIRE_W / 2).into(),
                (sx1 + WIRE_W / 2, py + WIRE_W / 2).into(),
            ),
            label,
        );
        // Via up at the connector, M2 Y-wire, via down at the track.
        self.via(conn_x, py, label);
        let ty = self.track_y(target) + WIRE_W / 2;
        let (y0, y1) = if ty < py { (ty, py) } else { (py, ty) };
        self.rect(
            Layer::Metal2,
            ElementKind::Wire,
            Rect::new(
                (conn_x - WIRE_W / 2, y0 - WIRE_W / 2).into(),
                (conn_x + WIRE_W / 2, y1 + WIRE_W / 2).into(),
            ),
            label,
        );
        self.via(conn_x, ty, label);
    }

    /// Places one transistor with a *local* gate: channel along X at row
    /// `(row_y, row_y + w)`, slot starting at `x0`. Returns the next free x.
    #[allow(clippy::too_many_arguments)]
    fn local_gate_fet(
        &mut self,
        x0: i64,
        row_y: i64,
        dims: TransistorDims,
        source: Track,
        drain: Track,
        gate: Track,
        name: &str,
    ) -> i64 {
        let w = dims.width.value().round() as i64;
        let l = dims.length.value().round() as i64;
        let src = Rect::new((x0, row_y).into(), (x0 + PAD_LEN, row_y + w).into());
        let chan_x0 = x0 + PAD_LEN;
        let drn_x0 = chan_x0 + l;
        let drn = Rect::new((drn_x0, row_y).into(), (drn_x0 + PAD_LEN, row_y + w).into());
        // Continuous active: pads + channel (the extractor separates the
        // channel via the gate overlap, as the paper's analysis does).
        self.rect(
            Layer::Active,
            ElementKind::ActiveRegion,
            Rect::new((x0, row_y).into(), (drn_x0 + PAD_LEN, row_y + w).into()),
            name,
        );
        // Gate with Y overhang for the gate contact.
        self.rect(
            Layer::Gate,
            ElementKind::Gate,
            Rect::new(
                (chan_x0, row_y - GATE_OV).into(),
                (chan_x0 + l, row_y + w + GATE_OV).into(),
            ),
            name,
        );
        // Terminal contacts.
        let sy = row_y + w / 2;
        let (scx, dcx) = (x0 + PAD_LEN / 2, drn_x0 + PAD_LEN / 2);
        self.contact(scx, sy, source.net_name());
        self.contact(dcx, sy, drain.net_name());
        let gate_cy = row_y + w + GATE_OV - CUT;
        let gcx = chan_x0 + l / 2;
        self.contact(gcx, gate_cy, gate.net_name());
        // Connectors: source on the left edge, gate above, drain on the right.
        self.connect_to_track(scx, sy, x0 - WIRE_W / 2, source, source.net_name());
        self.connect_to_track(gcx, gate_cy, gcx, gate, gate.net_name());
        let right = drn_x0 + PAD_LEN;
        self.connect_to_track(dcx, sy, right + WIRE_W / 2, drain, drain.net_name());
        let _ = (src, drn);
        right + SLOT_GAP
    }

    /// Bridges two common-gate strips into one electrical net with a pair of
    /// gate contacts and an M1 jumper just above the transistor zone (the
    /// classic PEQ line controls both the precharge strip and the equaliser
    /// strip).
    fn bridge_strips(&mut self, gate1_cx: i64, gate2_cx: i64, net: &str) {
        let y = self.zone_y1 + 8 + WIRE_W / 2;
        self.contact(gate1_cx, y, net);
        self.contact(gate2_cx, y, net);
        let (x0, x1) = if gate1_cx < gate2_cx {
            (gate1_cx, gate2_cx)
        } else {
            (gate2_cx, gate1_cx)
        };
        self.rect(
            Layer::Metal1,
            ElementKind::Wire,
            Rect::new(
                (x0 - WIRE_W / 2, y - WIRE_W / 2).into(),
                (x1 + WIRE_W / 2, y + WIRE_W / 2).into(),
            ),
            net,
        );
    }

    /// Places a common-gate strip with `devices` stacked along Y. The strip
    /// spans the full cell height (so tiled cells merge into one
    /// region-spanning gate). Returns `(next_free_x, gate_center_x)`.
    fn strip_fets(
        &mut self,
        x0: i64,
        strip_net: &str,
        dims: TransistorDims,
        devices: &[(Track, Track, &str)],
    ) -> (i64, i64) {
        let w = dims.width.value().round() as i64;
        let l = dims.length.value().round() as i64;
        let conn_span = 32 + 80 * devices.len() as i64;
        let gate_x0 = x0 + conn_span + PAD_LEN;
        // The region-spanning gate.
        self.rect(
            Layer::Gate,
            ElementKind::Gate,
            Rect::new((gate_x0, 0).into(), (gate_x0 + l, self.height).into()),
            strip_net,
        );
        let mut row_y = self.zone_y0 + GATE_OV;
        for (k, (source, drain, name)) in devices.iter().enumerate() {
            let sy = row_y + w / 2;
            self.rect(
                Layer::Active,
                ElementKind::ActiveRegion,
                Rect::new(
                    (gate_x0 - PAD_LEN, row_y).into(),
                    (gate_x0 + l + PAD_LEN, row_y + w).into(),
                ),
                name,
            );
            let scx = gate_x0 - PAD_LEN / 2;
            let dcx = gate_x0 + l + PAD_LEN / 2;
            self.contact(scx, sy, source.net_name());
            self.contact(dcx, sy, drain.net_name());
            let left_conn = x0 + 16 + 80 * k as i64;
            let right_conn = gate_x0 + l + PAD_LEN + 16 + 80 * k as i64;
            self.connect_to_track(scx, sy, left_conn, *source, source.net_name());
            self.connect_to_track(dcx, sy, right_conn, *drain, drain.net_name());
            row_y += w + STACK_GAP;
        }
        (
            gate_x0 + l + PAD_LEN + conn_span + SLOT_GAP,
            gate_x0 + l / 2,
        )
    }
}

/// Generates one SA cell for the given spec.
///
/// # Panics
///
/// Panics if the spec's dimensions are degenerate (zero-sized transistors
/// are already rejected by [`TransistorDims::new`]).
pub fn generate_cell(spec: &SaRegionSpec) -> SaCell {
    let d = &spec.dims;
    let is_ocsa = spec.topology == SaTopologyKind::OffsetCancellation;

    // Track plan, bottom to top.
    let mut track_list: Vec<Track> = vec![Track::Bl, Track::Blb];
    if is_ocsa {
        track_list.push(Track::Sabl);
        track_list.push(Track::Sablb);
    }
    let n_bottom = track_list.len() as i64;
    let zone_y0 = TRACK_Y0 + n_bottom * TRACK_PITCH + 56;

    // Zone height: the tallest slot (strips stack devices).
    let w_of = |t: &TransistorDims| t.width.value().round() as i64;
    let strip_heights: Vec<i64> = if is_ocsa {
        vec![
            2 * w_of(&d.precharge) + STACK_GAP,
            2 * w_of(&d.isolation) + STACK_GAP,
            2 * w_of(&d.offset_cancel) + STACK_GAP,
        ]
    } else {
        vec![2 * w_of(&d.precharge) + STACK_GAP, w_of(&d.equalizer)]
    };
    let singles = [w_of(&d.nsa), w_of(&d.psa), w_of(&d.column)];
    let zone_h = strip_heights
        .iter()
        .chain(singles.iter())
        .copied()
        .max()
        .expect("non-empty")
        + 2 * GATE_OV
        + 16;
    let zone_y1 = zone_y0 + zone_h;

    // Rails above the zone.
    let rails = [
        Track::Lio,
        Track::Liob,
        Track::Vpre,
        Track::La,
        Track::Lab,
        Track::Y0,
    ];
    let rail_y0 = zone_y1 + 80;
    let height = rail_y0 + rails.len() as i64 * TRACK_PITCH + 16;

    let mut tracks: Vec<(Track, i64)> = track_list
        .iter()
        .enumerate()
        .map(|(i, t)| (*t, TRACK_Y0 + i as i64 * TRACK_PITCH))
        .collect();
    tracks.extend(
        rails
            .iter()
            .enumerate()
            .map(|(i, t)| (*t, rail_y0 + i as i64 * TRACK_PITCH)),
    );

    let mut b = CellBuilder {
        layout: Layout::new(format!("sa-cell-{}", spec.topology)),
        tracks,
        zone_y0,
        zone_y1,
        height,
        cursor_x: SLOT_GAP,
    };

    let row = zone_y0 + GATE_OV;
    // Column transistors come first after the MAT (Section V-C).
    b.cursor_x = b.local_gate_fet(
        b.cursor_x,
        row,
        d.column,
        Track::Bl,
        Track::Lio,
        Track::Y0,
        "col_l",
    );
    b.cursor_x = b.local_gate_fet(
        b.cursor_x,
        row,
        d.column,
        Track::Blb,
        Track::Liob,
        Track::Y0,
        "col_r",
    );

    if is_ocsa {
        b.cursor_x = b
            .strip_fets(
                b.cursor_x,
                "PRE",
                d.precharge,
                &[
                    (Track::Vpre, Track::Bl, "pre_l"),
                    (Track::Vpre, Track::Blb, "pre_r"),
                ],
            )
            .0;
        b.cursor_x = b
            .strip_fets(
                b.cursor_x,
                "ISO",
                d.isolation,
                &[
                    (Track::Sabl, Track::Bl, "iso_l"),
                    (Track::Sablb, Track::Blb, "iso_r"),
                ],
            )
            .0;
        b.cursor_x = b
            .strip_fets(
                b.cursor_x,
                "OC",
                d.offset_cancel,
                &[
                    (Track::Sabl, Track::Blb, "oc_l"),
                    (Track::Sablb, Track::Bl, "oc_r"),
                ],
            )
            .0;
        let (dl, dr) = (Track::Sabl, Track::Sablb);
        b.cursor_x = b.local_gate_fet(b.cursor_x, row, d.nsa, Track::Lab, dl, Track::Blb, "nSA_l");
        b.cursor_x = b.local_gate_fet(b.cursor_x, row, d.nsa, Track::Lab, dr, Track::Bl, "nSA_r");
        b.cursor_x = b.local_gate_fet(b.cursor_x, row, d.psa, Track::La, dl, Track::Blb, "pSA_l");
        b.cursor_x = b.local_gate_fet(b.cursor_x, row, d.psa, Track::La, dr, Track::Bl, "pSA_r");
    } else {
        let (next_x, pre_gate_cx) = b.strip_fets(
            b.cursor_x,
            "PEQ",
            d.precharge,
            &[
                (Track::Vpre, Track::Bl, "pre_l"),
                (Track::Vpre, Track::Blb, "pre_r"),
            ],
        );
        b.cursor_x = next_x;
        let (next_x, eq_gate_cx) = b.strip_fets(
            b.cursor_x,
            "PEQ",
            d.equalizer,
            &[(Track::Bl, Track::Blb, "eq")],
        );
        b.cursor_x = next_x;
        b.bridge_strips(pre_gate_cx, eq_gate_cx, "PEQ");
        b.cursor_x = b.local_gate_fet(
            b.cursor_x,
            row,
            d.nsa,
            Track::Lab,
            Track::Bl,
            Track::Blb,
            "nSA_l",
        );
        b.cursor_x = b.local_gate_fet(
            b.cursor_x,
            row,
            d.nsa,
            Track::Lab,
            Track::Blb,
            Track::Bl,
            "nSA_r",
        );
        b.cursor_x = b.local_gate_fet(
            b.cursor_x,
            row,
            d.psa,
            Track::La,
            Track::Bl,
            Track::Blb,
            "pSA_l",
        );
        b.cursor_x = b.local_gate_fet(
            b.cursor_x,
            row,
            d.psa,
            Track::La,
            Track::Blb,
            Track::Bl,
            "pSA_r",
        );
    }

    let length = b.cursor_x + SLOT_GAP;
    // Lay the M1 tracks across the whole cell.
    let all_tracks: Vec<Track> = b.tracks.iter().map(|(t, _)| *t).collect();
    for t in all_tracks {
        b.m1_track(t, 0, length);
    }

    let circuit = match spec.topology {
        SaTopologyKind::Classic => topology::classic_sa(d.clone()),
        SaTopologyKind::OffsetCancellation => topology::ocsa(d.clone()),
        SaTopologyKind::ClassicWithIsolation => topology::classic_sa_with_isolation(d.clone()),
    };
    let mut dims_by_class = vec![
        (TransistorClass::NSa, d.nsa),
        (TransistorClass::PSa, d.psa),
        (TransistorClass::Precharge, d.precharge),
        (TransistorClass::Column, d.column),
    ];
    if is_ocsa {
        dims_by_class.push((TransistorClass::Isolation, d.isolation));
        dims_by_class.push((TransistorClass::OffsetCancel, d.offset_cancel));
    } else {
        dims_by_class.push((TransistorClass::Equalizer, d.equalizer));
    }

    let rail_track_ys = b
        .tracks
        .iter()
        .filter(|(t, _)| {
            matches!(
                t,
                Track::Lio | Track::Liob | Track::Vpre | Track::La | Track::Lab
            )
        })
        .map(|(t, y)| (t.net_name().to_owned(), *y))
        .collect();
    let bl_track_y = b.track_y(Track::Bl);
    let blb_track_y = b.track_y(Track::Blb);

    SaCell {
        layout: b.layout,
        length,
        height,
        bl_track_y,
        blb_track_y,
        ground_truth: CellGroundTruth {
            netlist: circuit.into_netlist(),
            dims_by_class,
        },
        rail_track_ys,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classic_cell_has_expected_structure() {
        let spec = SaRegionSpec::new(SaTopologyKind::Classic);
        let cell = generate_cell(&spec);
        // 9 transistors → 9 active regions, 7 gates (PEQ strip shared by 3).
        assert_eq!(
            cell.layout()
                .elements_of_kind(ElementKind::ActiveRegion)
                .count(),
            9
        );
        assert_eq!(cell.layout().elements_on(Layer::Gate).count(), 8);
        assert_eq!(cell.ground_truth().netlist.device_count(), 9);
        assert!(cell.length() > 0 && cell.height() > 0);
    }

    #[test]
    fn ocsa_cell_has_expected_structure() {
        let spec = SaRegionSpec::new(SaTopologyKind::OffsetCancellation);
        let cell = generate_cell(&spec);
        assert_eq!(
            cell.layout()
                .elements_of_kind(ElementKind::ActiveRegion)
                .count(),
            12
        );
        // 12 transistors, 3 strips + 6 local gates = 9 gate shapes.
        assert_eq!(cell.layout().elements_on(Layer::Gate).count(), 9);
        assert_eq!(cell.ground_truth().netlist.device_count(), 12);
        // OCSA is longer along X (more slots) than classic.
        let classic = generate_cell(&SaRegionSpec::new(SaTopologyKind::Classic));
        assert!(cell.length() > classic.length());
    }

    #[test]
    fn strips_span_full_cell_height() {
        let spec = SaRegionSpec::new(SaTopologyKind::OffsetCancellation);
        let cell = generate_cell(&spec);
        let strip_count = cell
            .layout()
            .elements_on(Layer::Gate)
            .filter(|e| e.rect().min().y == 0 && e.rect().max().y == cell.height())
            .count();
        assert_eq!(strip_count, 3, "PRE, ISO and OC strips span the cell");
    }

    #[test]
    fn no_same_layer_overlaps_except_intended_junctions() {
        // M1 stubs intentionally overlap the pads/tracks they join, so full
        // no-overlap does not hold; but gates and actives must never overlap
        // within their own layer.
        for kind in [SaTopologyKind::Classic, SaTopologyKind::OffsetCancellation] {
            let cell = generate_cell(&SaRegionSpec::new(kind));
            for layer in [Layer::Gate, Layer::Active] {
                let rects: Vec<Rect> = cell.layout().elements_on(layer).map(|e| e.rect()).collect();
                for i in 0..rects.len() {
                    for j in (i + 1)..rects.len() {
                        assert!(
                            !rects[i].intersects(&rects[j]),
                            "{kind}: {layer} overlap between {} and {}",
                            rects[i],
                            rects[j]
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn m2_connectors_never_touch_each_other() {
        // All M2 shapes are Y-direction wires at unique X (or short pads);
        // any same-layer contact between different nets would be a short.
        for kind in [SaTopologyKind::Classic, SaTopologyKind::OffsetCancellation] {
            let cell = generate_cell(&SaRegionSpec::new(kind));
            let m2: Vec<(&str, Rect)> = cell
                .layout()
                .elements_on(Layer::Metal2)
                .map(|e| (e.label().unwrap_or(""), e.rect()))
                .collect();
            for i in 0..m2.len() {
                for j in (i + 1)..m2.len() {
                    if m2[i].0 != m2[j].0 {
                        assert!(
                            !m2[i].1.expanded(1).intersects(&m2[j].1),
                            "{kind}: M2 nets {} and {} touch",
                            m2[i].0,
                            m2[j].0
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn m1_shapes_of_different_nets_never_touch() {
        for kind in [SaTopologyKind::Classic, SaTopologyKind::OffsetCancellation] {
            let cell = generate_cell(&SaRegionSpec::new(kind));
            let m1: Vec<(&str, Rect)> = cell
                .layout()
                .elements_on(Layer::Metal1)
                .map(|e| (e.label().unwrap_or(""), e.rect()))
                .collect();
            for i in 0..m1.len() {
                for j in (i + 1)..m1.len() {
                    if m1[i].0 != m1[j].0 {
                        assert!(
                            !m1[i].1.expanded(1).intersects(&m1[j].1),
                            "{kind}: M1 nets {} and {} touch at {} / {}",
                            m1[i].0,
                            m1[j].0,
                            m1[i].1,
                            m1[j].1
                        );
                    }
                }
            }
        }
    }
}
