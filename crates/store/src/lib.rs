//! Content-addressed artifact store and incremental pipeline execution.
//!
//! A full imaged pipeline run spends nearly all of its time in four
//! expensive stages — voxelization, virtual SEM acquisition, stack
//! post-processing, and volume reconstruction — whose outputs are pure
//! functions of the run configuration. This crate caches those outputs on
//! disk under *content addresses* so that re-running an unchanged
//! configuration replays stored artifacts instead of recomputing them:
//!
//! - [`fingerprint`] derives stable 128-bit keys from canonical encodings
//!   of the pipeline configuration. Each stage's key chains in the key of
//!   the stage feeding it plus a per-stage code-version salt, so changing
//!   any upstream parameter (or bumping a salt after a code change)
//!   invalidates exactly the stages downstream of the change.
//! - [`codec`] gives the large intermediates compact, fully-validating
//!   binary encodings (chunked RLE for voxel volumes, raw IEEE-754 bit
//!   patterns for image stacks) whose round trips are bit-identical.
//! - [`store`] is the on-disk half: `objects/<shard>/<key>` blobs with
//!   self-checking headers, sharded by leading key nibble with a per-shard
//!   manifest and lock file so concurrent pipelines contend per shard
//!   instead of on one global lock, LRU eviction (`gc`) with globally
//!   comparable ticks, and corruption handling that turns damaged blobs
//!   into cache misses rather than errors.
//!
//! Caching is **opt-in** (a store path on the pipeline config, or the
//! `HIFI_STORE` environment variable) and **bit-transparent**: a warm run
//! must produce exactly the bytes a cold or store-less run produces. The
//! process-wide [`stats`] counters let front-ends print hit/miss summaries
//! without threading state through every call site.

pub mod codec;
pub mod fingerprint;
pub mod store;

pub use codec::CodecError;
pub use fingerprint::{
    fault_fingerprint, imaging_fingerprint, spec_fingerprint, stage, Fingerprinter, Key,
};
pub use store::{ArtifactStore, ShardUsage, StoreError, SHARD_COUNT};

/// Process-wide store activity counters.
///
/// The pipeline reports per-run hit/miss counts through its telemetry
/// recorder; these global counters exist for callers that run many
/// pipelines (regen binaries, benches) and want a cheap end-of-process
/// summary without collecting every run report.
pub mod stats {
    use std::sync::atomic::{AtomicU64, Ordering};

    static HITS: AtomicU64 = AtomicU64::new(0);
    static MISSES: AtomicU64 = AtomicU64::new(0);
    static BYTES_READ: AtomicU64 = AtomicU64::new(0);
    static BYTES_WRITTEN: AtomicU64 = AtomicU64::new(0);
    static CORRUPT: AtomicU64 = AtomicU64::new(0);

    /// A point-in-time copy of the counters (monotonic; diff two
    /// snapshots to measure an interval).
    #[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
    pub struct Snapshot {
        /// Objects served from the store.
        pub hits: u64,
        /// Lookups that found nothing (including evicted corrupt blobs).
        pub misses: u64,
        /// Payload bytes read on hits.
        pub bytes_read: u64,
        /// Payload bytes written by puts.
        pub bytes_written: u64,
        /// Corrupted blobs detected and evicted.
        pub corrupt: u64,
    }

    impl Snapshot {
        /// Counter deltas since an `earlier` snapshot.
        pub fn since(&self, earlier: &Snapshot) -> Snapshot {
            Snapshot {
                hits: self.hits - earlier.hits,
                misses: self.misses - earlier.misses,
                bytes_read: self.bytes_read - earlier.bytes_read,
                bytes_written: self.bytes_written - earlier.bytes_written,
                corrupt: self.corrupt - earlier.corrupt,
            }
        }

        /// One-line human summary, e.g.
        /// `store: 5 hits, 0 misses, 1.2 MiB read, 0 B written`.
        pub fn summary(&self) -> String {
            fn mib(bytes: u64) -> String {
                if bytes >= 1024 * 1024 {
                    format!("{:.1} MiB", bytes as f64 / (1024.0 * 1024.0))
                } else if bytes >= 1024 {
                    format!("{:.1} KiB", bytes as f64 / 1024.0)
                } else {
                    format!("{bytes} B")
                }
            }
            let corrupt = if self.corrupt > 0 {
                format!(", {} corrupt evicted", self.corrupt)
            } else {
                String::new()
            };
            format!(
                "store: {} hits, {} misses, {} read, {} written{corrupt}",
                self.hits,
                self.misses,
                mib(self.bytes_read),
                mib(self.bytes_written),
            )
        }
    }

    /// Reads the current counters.
    pub fn snapshot() -> Snapshot {
        Snapshot {
            hits: HITS.load(Ordering::Relaxed),
            misses: MISSES.load(Ordering::Relaxed),
            bytes_read: BYTES_READ.load(Ordering::Relaxed),
            bytes_written: BYTES_WRITTEN.load(Ordering::Relaxed),
            corrupt: CORRUPT.load(Ordering::Relaxed),
        }
    }

    pub(crate) fn record_hit(payload_bytes: u64) {
        HITS.fetch_add(1, Ordering::Relaxed);
        BYTES_READ.fetch_add(payload_bytes, Ordering::Relaxed);
    }

    pub(crate) fn record_miss() {
        MISSES.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_write(payload_bytes: u64) {
        BYTES_WRITTEN.fetch_add(payload_bytes, Ordering::Relaxed);
    }

    pub(crate) fn record_corrupt() {
        CORRUPT.fetch_add(1, Ordering::Relaxed);
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn snapshot_deltas_and_summary() {
            let a = Snapshot {
                hits: 2,
                misses: 1,
                bytes_read: 10,
                bytes_written: 2048,
                corrupt: 0,
            };
            let b = Snapshot {
                hits: 7,
                misses: 1,
                bytes_read: 3 * 1024 * 1024,
                bytes_written: 2048,
                corrupt: 1,
            };
            let d = b.since(&a);
            assert_eq!(d.hits, 5);
            assert_eq!(d.misses, 0);
            let line = d.summary();
            assert!(line.contains("5 hits"), "{line}");
            assert!(line.contains("MiB read"), "{line}");
            assert!(line.contains("corrupt"), "{line}");
        }
    }
}
