//! Store maintenance CLI: inspect, verify, and garbage-collect an artifact
//! store directory.
//!
//! ```text
//! hifi-store stats  <root>              object count and total bytes,
//!                                       plus a per-shard breakdown
//! hifi-store verify <root>              re-checksum every object
//! hifi-store gc     <root> <max-bytes>  evict LRU objects over the budget,
//!                                       locking one shard at a time
//! ```
//!
//! `stats` keeps its `objects N` / `bytes N` lines first (scripts parse
//! them); the sharded breakdown follows as `shard <s> objects N bytes N`
//! lines, one per non-empty shard.

use std::process::ExitCode;

use hifi_store::ArtifactStore;

fn usage() -> ExitCode {
    eprintln!(
        "usage: hifi-store stats <root>\n       hifi-store verify <root>\n       hifi-store gc <root> <max-bytes>"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (cmd, root) = match (args.first(), args.get(1)) {
        (Some(cmd), Some(root)) => (cmd.as_str(), root.as_str()),
        _ => return usage(),
    };
    let store = match ArtifactStore::open(root) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("hifi-store: {e}");
            return ExitCode::FAILURE;
        }
    };
    match cmd {
        "stats" => {
            let by_shard = store.usage_by_shard();
            let objects: usize = by_shard.iter().map(|s| s.objects).sum();
            let bytes: u64 = by_shard.iter().map(|s| s.bytes).sum();
            println!("objects {objects}");
            println!("bytes {bytes}");
            for s in by_shard.iter().filter(|s| s.objects > 0) {
                println!(
                    "shard {:x} objects {} bytes {}",
                    s.shard, s.objects, s.bytes
                );
            }
            ExitCode::SUCCESS
        }
        "verify" => match store.verify() {
            Ok((intact, corrupt)) => {
                println!("intact {intact}");
                println!("corrupt {corrupt}");
                if corrupt == 0 {
                    ExitCode::SUCCESS
                } else {
                    ExitCode::FAILURE
                }
            }
            Err(e) => {
                eprintln!("hifi-store: {e}");
                ExitCode::FAILURE
            }
        },
        "gc" => {
            let Some(max_bytes) = args.get(2).and_then(|s| s.parse::<u64>().ok()) else {
                return usage();
            };
            match store.gc(max_bytes) {
                Ok(evicted) => {
                    let (objects, bytes) = store.usage();
                    println!("evicted {evicted}");
                    println!("objects {objects}");
                    println!("bytes {bytes}");
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("hifi-store: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        _ => usage(),
    }
}
