//! Store maintenance CLI: inspect, verify, and garbage-collect an artifact
//! store directory.
//!
//! ```text
//! hifi-store stats  <root>              object count and total bytes
//! hifi-store verify <root>              re-checksum every object
//! hifi-store gc     <root> <max-bytes>  evict LRU objects over the budget
//! ```

use std::process::ExitCode;

use hifi_store::ArtifactStore;

fn usage() -> ExitCode {
    eprintln!(
        "usage: hifi-store stats <root>\n       hifi-store verify <root>\n       hifi-store gc <root> <max-bytes>"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (cmd, root) = match (args.first(), args.get(1)) {
        (Some(cmd), Some(root)) => (cmd.as_str(), root.as_str()),
        _ => return usage(),
    };
    let store = match ArtifactStore::open(root) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("hifi-store: {e}");
            return ExitCode::FAILURE;
        }
    };
    match cmd {
        "stats" => {
            let (objects, bytes) = store.usage();
            println!("objects {objects}");
            println!("bytes {bytes}");
            ExitCode::SUCCESS
        }
        "verify" => match store.verify() {
            Ok((intact, corrupt)) => {
                println!("intact {intact}");
                println!("corrupt {corrupt}");
                if corrupt == 0 {
                    ExitCode::SUCCESS
                } else {
                    ExitCode::FAILURE
                }
            }
            Err(e) => {
                eprintln!("hifi-store: {e}");
                ExitCode::FAILURE
            }
        },
        "gc" => {
            let Some(max_bytes) = args.get(2).and_then(|s| s.parse::<u64>().ok()) else {
                return usage();
            };
            match store.gc(max_bytes) {
                Ok(evicted) => {
                    let (objects, bytes) = store.usage();
                    println!("evicted {evicted}");
                    println!("objects {objects}");
                    println!("bytes {bytes}");
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("hifi-store: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        _ => usage(),
    }
}
