//! Binary codecs for the pipeline's large intermediates.
//!
//! Every artifact the store holds is encoded with a small, explicit binary
//! format: a four-byte magic identifying the artifact kind, a format
//! version, then length-prefixed fields in little-endian order. Floats are
//! stored as IEEE-754 bit patterns so a decoded artifact is **bit-identical**
//! to the encoded one — the store must never perturb a cached pipeline's
//! output by a single ulp.
//!
//! Voxel data (one byte per voxel, long oxide runs) is chunked and
//! run-length encoded; image stacks (dense `f32` noise) are stored raw.
//! Decoders validate everything — magic, version, lengths, enum
//! discriminants, net indices — and return [`CodecError`] instead of
//! panicking: a corrupted blob must fall back to recompute, not abort the
//! run.

use hifi_circuit::{Device, DeviceId, Netlist, Polarity, TransistorClass, TransistorDims};
use hifi_extract::{
    ClassMeasurement, ExtractedDevice, Extraction, MeasurementConfidence, MeasurementReport,
};
use hifi_geometry::{Layer, LayerExtent, LayerStack};
use hifi_imaging::{DetectorKind, DriftTruth, ImageStack, SemImage};
use hifi_synth::MaterialVolume;
use hifi_units::Nanometers;

/// Why a blob failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The buffer ended before the field being read.
    Truncated {
        /// What was being decoded.
        what: &'static str,
    },
    /// The artifact magic did not match the expected kind.
    BadMagic {
        /// The kind the decoder expected.
        expected: &'static str,
    },
    /// The format version is not supported by this build.
    BadVersion {
        /// The version found in the header.
        found: u16,
    },
    /// A field held a value outside its domain (enum discriminant, net
    /// index, voxel byte, inconsistent length, …).
    Invalid {
        /// What was being decoded.
        what: &'static str,
    },
}

impl core::fmt::Display for CodecError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CodecError::Truncated { what } => write!(f, "blob truncated while decoding {what}"),
            CodecError::BadMagic { expected } => write!(f, "blob is not a {expected} artifact"),
            CodecError::BadVersion { found } => write!(f, "unsupported artifact version {found}"),
            CodecError::Invalid { what } => write!(f, "invalid {what} in blob"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Current format version shared by all artifact kinds.
///
/// v2: measurement reports carry [`MeasurementConfidence`] provenance.
/// Old blobs fail with [`CodecError::BadVersion`], which the store treats
/// as a cache miss — never fatal.
const VERSION: u16 = 2;

/// Raw voxel bytes per RLE chunk (chunking bounds decoder allocations and
/// keeps a flipped length byte from requesting gigabytes).
const CHUNK: usize = 256 * 1024;

// ---------------------------------------------------------------------------
// Little-endian writer / reader
// ---------------------------------------------------------------------------

/// Append-only little-endian byte writer.
#[derive(Debug, Default)]
struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn magic(kind: &[u8; 4]) -> Self {
        let mut w = Writer::default();
        w.buf.extend_from_slice(kind);
        w.u16(VERSION);
        w
    }

    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn i32(&mut self, v: i32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    fn f32(&mut self, v: f32) {
        self.u32(v.to_bits());
    }

    fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

/// Bounds-checked little-endian reader.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8], kind: &'static str, magic: &[u8; 4]) -> Result<Self, CodecError> {
        let mut r = Reader { buf, pos: 0 };
        let found = r.take(4, kind)?;
        if found != magic {
            return Err(CodecError::BadMagic { expected: kind });
        }
        let version = r.u16(kind)?;
        if version != VERSION {
            return Err(CodecError::BadVersion { found: version });
        }
        Ok(r)
    }

    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], CodecError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or(CodecError::Truncated { what })?;
        let out = &self.buf[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    fn u8(&mut self, what: &'static str) -> Result<u8, CodecError> {
        Ok(self.take(1, what)?[0])
    }

    fn u16(&mut self, what: &'static str) -> Result<u16, CodecError> {
        Ok(u16::from_le_bytes(self.take(2, what)?.try_into().unwrap()))
    }

    fn u32(&mut self, what: &'static str) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(self.take(4, what)?.try_into().unwrap()))
    }

    fn u64(&mut self, what: &'static str) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(self.take(8, what)?.try_into().unwrap()))
    }

    fn i32(&mut self, what: &'static str) -> Result<i32, CodecError> {
        Ok(i32::from_le_bytes(self.take(4, what)?.try_into().unwrap()))
    }

    fn f64(&mut self, what: &'static str) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.u64(what)?))
    }

    fn usize(&mut self, what: &'static str) -> Result<usize, CodecError> {
        usize::try_from(self.u64(what)?).map_err(|_| CodecError::Invalid { what })
    }

    fn str(&mut self, what: &'static str) -> Result<String, CodecError> {
        let len = self.u32(what)? as usize;
        let bytes = self.take(len, what)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| CodecError::Invalid { what })
    }

    /// A count that will drive a `Vec::with_capacity`: bounded by the bytes
    /// actually remaining (each element is ≥ `min_bytes`), so a corrupted
    /// length cannot request an absurd allocation.
    fn count(&mut self, min_bytes: usize, what: &'static str) -> Result<usize, CodecError> {
        let n = self.u32(what)? as usize;
        if n.saturating_mul(min_bytes) > self.buf.len() - self.pos {
            return Err(CodecError::Invalid { what });
        }
        Ok(n)
    }

    fn finish(&self, what: &'static str) -> Result<(), CodecError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(CodecError::Invalid { what })
        }
    }
}

// ---------------------------------------------------------------------------
// MaterialVolume (chunked RLE)
// ---------------------------------------------------------------------------

const VOLUME_MAGIC: &[u8; 4] = b"HVOL";

/// Encodes a material volume: geometry, layer stack, then the voxel bytes
/// in [`CHUNK`]-sized runs of simple `(count, value)` RLE — oxide dominates
/// every region, so this typically compresses >10×.
pub fn encode_volume(v: &MaterialVolume) -> Vec<u8> {
    let mut w = Writer::magic(VOLUME_MAGIC);
    let (nx, ny, nz) = v.dims();
    w.u64(nx as u64);
    w.u64(ny as u64);
    w.u64(nz as u64);
    w.f64(v.voxel_nm());
    for layer in Layer::ALL {
        let e = v.stack().extent(layer);
        w.f64(e.z_bottom.value());
        w.f64(e.z_top.value());
    }
    let data = v.raw_voxels();
    let chunks = data.chunks(CHUNK);
    w.u32(chunks.len() as u32);
    for chunk in chunks {
        w.u32(chunk.len() as u32);
        // RLE pairs for this chunk: (run length, voxel byte).
        let mut pairs: Vec<(u32, u8)> = Vec::new();
        for &b in chunk {
            match pairs.last_mut() {
                Some((run, val)) if *val == b && *run < u32::MAX => *run += 1,
                _ => pairs.push((1, b)),
            }
        }
        w.u32(pairs.len() as u32);
        for (run, val) in pairs {
            w.u32(run);
            w.u8(val);
        }
    }
    w.into_bytes()
}

/// Decodes [`encode_volume`] output.
///
/// # Errors
///
/// Returns [`CodecError`] on any structural damage: bad magic or version,
/// truncation, layer extents that do not form a valid stack, RLE runs that
/// do not add up to the declared chunk length, or voxel bytes outside the
/// material alphabet.
pub fn decode_volume(buf: &[u8]) -> Result<MaterialVolume, CodecError> {
    view_volume(buf)?.to_volume()
}

/// One RLE chunk of a volume blob: its expanded length and the borrowed
/// `(run: u32, value: u8)` pair bytes, validated at parse time.
#[derive(Debug, Clone, Copy)]
struct ChunkEntry<'a> {
    raw_len: usize,
    pairs: &'a [u8],
}

/// A zero-copy view over an [`encode_volume`] blob: the header (geometry,
/// layer stack) is decoded eagerly and every RLE chunk is structurally
/// validated, but voxel payloads stay **borrowed** from the blob until a
/// chunk is explicitly expanded. A streaming consumer decodes one chunk at
/// a time into a reused buffer — O(chunk) working memory instead of the
/// O(die) allocation of [`decode_volume`].
#[derive(Debug, Clone)]
pub struct VolumeView<'a> {
    nx: usize,
    ny: usize,
    nz: usize,
    voxel_nm: f64,
    extents: [LayerExtent; 7],
    chunks: Vec<ChunkEntry<'a>>,
}

/// Parses an [`encode_volume`] blob into a [`VolumeView`] without
/// materializing the voxel data.
///
/// # Errors
///
/// Returns [`CodecError`] on the same structural damage [`decode_volume`]
/// rejects, except voxel bytes outside the material alphabet (checked only
/// when a chunk is expanded into a volume).
pub fn view_volume(buf: &[u8]) -> Result<VolumeView<'_>, CodecError> {
    let mut r = Reader::new(buf, "MaterialVolume", VOLUME_MAGIC)?;
    let nx = r.usize("volume nx")?;
    let ny = r.usize("volume ny")?;
    let nz = r.usize("volume nz")?;
    let voxel_nm = r.f64("volume voxel size")?;
    let mut extents = [LayerExtent {
        z_bottom: Nanometers(0.0),
        z_top: Nanometers(0.0),
    }; 7];
    let mut prev_top = f64::NEG_INFINITY;
    for e in &mut extents {
        let bottom = r.f64("layer extent")?;
        let top = r.f64("layer extent")?;
        // Re-validate the `LayerStack::from_extents` contract here: that
        // constructor panics on bad input, and a corrupted blob must not.
        if !(top >= bottom && bottom >= prev_top - 1e-9) {
            return Err(CodecError::Invalid {
                what: "layer stack extents",
            });
        }
        prev_top = top;
        *e = LayerExtent {
            z_bottom: Nanometers(bottom),
            z_top: Nanometers(top),
        };
    }
    let expected_len =
        nx.checked_mul(ny)
            .and_then(|p| p.checked_mul(nz))
            .ok_or(CodecError::Invalid {
                what: "volume dimensions",
            })?;
    let n_chunks = r.count(8, "volume chunk count")?;
    let mut chunks = Vec::with_capacity(n_chunks);
    let mut total = 0usize;
    for _ in 0..n_chunks {
        let raw_len = r.u32("chunk length")? as usize;
        if raw_len > CHUNK || total + raw_len > expected_len {
            return Err(CodecError::Invalid {
                what: "volume chunk length",
            });
        }
        let n_pairs = r.count(5, "chunk pair count")?;
        let pairs = r.take(n_pairs * 5, "rle run")?;
        let mut produced = 0usize;
        for pair in pairs.chunks_exact(5) {
            let run = u32::from_le_bytes(pair[..4].try_into().unwrap()) as usize;
            produced = produced.checked_add(run).ok_or(CodecError::Invalid {
                what: "rle run length",
            })?;
            if produced > raw_len {
                return Err(CodecError::Invalid {
                    what: "rle run length",
                });
            }
        }
        if produced != raw_len {
            return Err(CodecError::Invalid {
                what: "rle chunk total",
            });
        }
        total += raw_len;
        chunks.push(ChunkEntry { raw_len, pairs });
    }
    r.finish("volume trailing bytes")?;
    Ok(VolumeView {
        nx,
        ny,
        nz,
        voxel_nm,
        extents,
        chunks,
    })
}

impl VolumeView<'_> {
    /// Voxel grid dimensions `(nx, ny, nz)` from the header.
    pub fn dims(&self) -> (usize, usize, usize) {
        (self.nx, self.ny, self.nz)
    }

    /// Voxel edge length in nanometres.
    pub fn voxel_nm(&self) -> f64 {
        self.voxel_nm
    }

    /// The decoded layer stack.
    pub fn stack(&self) -> LayerStack {
        LayerStack::from_extents(self.extents)
    }

    /// Number of RLE chunks in the blob.
    pub fn chunk_count(&self) -> usize {
        self.chunks.len()
    }

    /// Expanded byte length of chunk `i`.
    pub fn chunk_len(&self, i: usize) -> usize {
        self.chunks[i].raw_len
    }

    /// Expands chunk `i`'s RLE into `out` (cleared first, capacity
    /// reused). Chunks cover the voxel array in encode order, so chunk `i`
    /// holds bytes `[i·CHUNK, i·CHUNK + chunk_len(i))` of
    /// `MaterialVolume::raw_voxels`. Structure was validated at parse
    /// time; voxel bytes are passed through unchecked.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn decode_chunk_into(&self, i: usize, out: &mut Vec<u8>) {
        let chunk = self.chunks[i];
        out.clear();
        out.reserve(chunk.raw_len);
        for pair in chunk.pairs.chunks_exact(5) {
            let run = u32::from_le_bytes(pair[..4].try_into().unwrap()) as usize;
            out.resize(out.len() + run, pair[4]);
        }
    }

    /// Materializes the full volume — bit-identical to [`decode_volume`].
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::Invalid`] when the expanded data does not
    /// form a valid volume (length mismatch or bytes outside the material
    /// alphabet).
    pub fn to_volume(&self) -> Result<MaterialVolume, CodecError> {
        let mut data = Vec::with_capacity(
            (self.nx * self.ny * self.nz).min(self.chunks.len().saturating_mul(CHUNK)),
        );
        for chunk in &self.chunks {
            for pair in chunk.pairs.chunks_exact(5) {
                let run = u32::from_le_bytes(pair[..4].try_into().unwrap()) as usize;
                data.resize(data.len() + run, pair[4]);
            }
        }
        MaterialVolume::from_raw(self.nx, self.ny, self.nz, self.voxel_nm, self.stack(), data)
            .ok_or(CodecError::Invalid {
                what: "volume contents",
            })
    }
}

// ---------------------------------------------------------------------------
// ImageStack, DriftTruth, alignment corrections
// ---------------------------------------------------------------------------

const STACK_MAGIC: &[u8; 4] = b"HSTK";

fn detector_byte(d: DetectorKind) -> u8 {
    match d {
        DetectorKind::Se => 0,
        DetectorKind::Bse => 1,
    }
}

fn detector_from(b: u8) -> Result<DetectorKind, CodecError> {
    match b {
        0 => Ok(DetectorKind::Se),
        1 => Ok(DetectorKind::Bse),
        _ => Err(CodecError::Invalid { what: "detector" }),
    }
}

fn write_stack(w: &mut Writer, stack: &ImageStack) {
    w.f64(stack.pixel_nm());
    w.u64(stack.slice_voxels() as u64);
    w.u8(detector_byte(stack.detector()));
    w.u64(stack.frame_margin_px() as u64);
    w.u32(stack.len() as u32);
    for s in stack.slices() {
        let (ny, nz) = s.dims();
        w.u32(ny as u32);
        w.u32(nz as u32);
        for &p in s.pixels() {
            w.f32(p);
        }
    }
}

/// One slice of a stack blob: its dimensions and the borrowed raw `f32`
/// little-endian pixel bytes.
#[derive(Debug, Clone, Copy)]
struct SliceEntry<'a> {
    ny: usize,
    nz: usize,
    bytes: &'a [u8],
}

/// A zero-copy view over the stack portion of an acquisition or processed
/// blob: the header is decoded eagerly, per-slice pixel payloads stay
/// **borrowed** from the blob until a slice is explicitly decoded. Lets a
/// streaming consumer walk a cached stack one slice at a time with
/// O(slice) working memory instead of the O(stack) allocation of
/// [`decode_acquisition`] / [`decode_processed`].
#[derive(Debug, Clone)]
pub struct StackView<'a> {
    pixel_nm: f64,
    slice_voxels: usize,
    detector: DetectorKind,
    margin: usize,
    slices: Vec<SliceEntry<'a>>,
}

impl<'a> StackView<'a> {
    fn parse(r: &mut Reader<'a>) -> Result<Self, CodecError> {
        let pixel_nm = r.f64("stack pixel size")?;
        let slice_voxels = r.usize("stack slice thickness")?;
        let detector = detector_from(r.u8("stack detector")?)?;
        let margin = r.usize("stack frame margin")?;
        let n = r.count(8, "stack slice count")?;
        let mut slices = Vec::with_capacity(n);
        for _ in 0..n {
            let ny = r.u32("slice width")? as usize;
            let nz = r.u32("slice height")? as usize;
            let n_px = ny.checked_mul(nz).ok_or(CodecError::Invalid {
                what: "slice dimensions",
            })?;
            let bytes = r.take(n_px * 4, "slice pixels")?;
            slices.push(SliceEntry { ny, nz, bytes });
        }
        Ok(StackView {
            pixel_nm,
            slice_voxels,
            detector,
            margin,
            slices,
        })
    }

    /// Number of slices in the stack.
    pub fn len(&self) -> usize {
        self.slices.len()
    }

    /// Whether the stack holds no slices.
    pub fn is_empty(&self) -> bool {
        self.slices.is_empty()
    }

    /// Pixel pitch in nanometres.
    pub fn pixel_nm(&self) -> f64 {
        self.pixel_nm
    }

    /// Voxel columns each slice represents along the milling axis.
    pub fn slice_voxels(&self) -> usize {
        self.slice_voxels
    }

    /// The detector the stack was imaged with.
    pub fn detector(&self) -> DetectorKind {
        self.detector
    }

    /// Frame margin in pixels.
    pub fn frame_margin_px(&self) -> usize {
        self.margin
    }

    /// Dimensions `(ny, nz)` of slice `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn slice_dims(&self, i: usize) -> (usize, usize) {
        (self.slices[i].ny, self.slices[i].nz)
    }

    /// The raw little-endian `f32` pixel bytes of slice `i`, borrowed
    /// straight from the blob (no copy).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn slice_bytes(&self, i: usize) -> &'a [u8] {
        self.slices[i].bytes
    }

    /// Decodes slice `i` into an owned image — bit-identical to the same
    /// slice of the eager decode.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn decode_slice(&self, i: usize) -> SemImage {
        let entry = self.slices[i];
        let mut img = SemImage::filled(entry.ny, entry.nz, 0.0);
        for (dst, src) in img.pixels_mut().iter_mut().zip(entry.bytes.chunks_exact(4)) {
            *dst = f32::from_bits(u32::from_le_bytes(src.try_into().unwrap()));
        }
        img
    }

    /// Materializes the full stack — bit-identical to the eager decode.
    pub fn to_stack(&self) -> ImageStack {
        let slices = (0..self.len()).map(|i| self.decode_slice(i)).collect();
        ImageStack::from_slices(slices, self.pixel_nm, self.slice_voxels, self.detector)
            .with_frame_margin(self.margin)
    }
}

fn write_shift_list(w: &mut Writer, shifts: &[(i32, i32)]) {
    w.u32(shifts.len() as u32);
    for &(dy, dz) in shifts {
        w.i32(dy);
        w.i32(dz);
    }
}

fn read_shift_list(r: &mut Reader<'_>, what: &'static str) -> Result<Vec<(i32, i32)>, CodecError> {
    let n = r.count(8, what)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push((r.i32(what)?, r.i32(what)?));
    }
    Ok(out)
}

/// Encodes an acquisition result: the raw stack, its ground-truth
/// drift/brightness artefacts (needed by fidelity telemetry on cache
/// hits), and the indices of slices that were interpolated after
/// exhausting re-acquisition retries (so a cache hit keeps the degraded
/// provenance a recomputation would rediscover).
pub fn encode_acquisition(stack: &ImageStack, truth: &DriftTruth, degraded: &[usize]) -> Vec<u8> {
    let mut w = Writer::magic(STACK_MAGIC);
    write_stack(&mut w, stack);
    write_shift_list(&mut w, &truth.shifts);
    w.u32(truth.brightness.len() as u32);
    for &b in &truth.brightness {
        w.f64(b);
    }
    w.u32(degraded.len() as u32);
    for &d in degraded {
        w.u64(d as u64);
    }
    w.into_bytes()
}

/// Decodes [`encode_acquisition`] output.
///
/// # Errors
///
/// Returns [`CodecError`] on structural damage (see [`decode_volume`]).
pub fn decode_acquisition(buf: &[u8]) -> Result<(ImageStack, DriftTruth, Vec<usize>), CodecError> {
    let view = view_acquisition(buf)?;
    Ok((view.stack.to_stack(), view.truth, view.degraded))
}

/// Zero-copy view of an acquisition blob: slice pixels stay borrowed in
/// [`Self::stack`]; the small metadata (drift truth, degraded indices) is
/// decoded eagerly.
#[derive(Debug, Clone)]
pub struct AcquisitionView<'a> {
    /// The raw stack, slices borrowed from the blob.
    pub stack: StackView<'a>,
    /// Ground-truth drift/brightness artefacts.
    pub truth: DriftTruth,
    /// Indices of slices interpolated after exhausting retries.
    pub degraded: Vec<usize>,
}

/// Parses an [`encode_acquisition`] blob without copying slice pixels.
///
/// # Errors
///
/// Returns [`CodecError`] on the same structural damage
/// [`decode_acquisition`] rejects.
pub fn view_acquisition(buf: &[u8]) -> Result<AcquisitionView<'_>, CodecError> {
    let mut r = Reader::new(buf, "acquisition", STACK_MAGIC)?;
    let stack = StackView::parse(&mut r)?;
    let shifts = read_shift_list(&mut r, "drift shifts")?;
    let n = r.count(8, "brightness count")?;
    let mut brightness = Vec::with_capacity(n);
    for _ in 0..n {
        brightness.push(r.f64("brightness offset")?);
    }
    let n_degraded = r.count(8, "degraded slice count")?;
    let mut degraded = Vec::with_capacity(n_degraded);
    for _ in 0..n_degraded {
        let idx = r.usize("degraded slice index")?;
        if idx >= stack.len() {
            return Err(CodecError::Invalid {
                what: "degraded slice index",
            });
        }
        degraded.push(idx);
    }
    r.finish("acquisition trailing bytes")?;
    Ok(AcquisitionView {
        stack,
        truth: DriftTruth { shifts, brightness },
        degraded,
    })
}

const PROCESSED_MAGIC: &[u8; 4] = b"HPRC";

/// Encodes a post-processed (normalized + aligned + denoised) stack along
/// with the per-slice alignment corrections applied to it.
pub fn encode_processed(stack: &ImageStack, corrections: &[(i32, i32)]) -> Vec<u8> {
    let mut w = Writer::magic(PROCESSED_MAGIC);
    write_stack(&mut w, stack);
    write_shift_list(&mut w, corrections);
    w.into_bytes()
}

/// Decodes [`encode_processed`] output.
///
/// # Errors
///
/// Returns [`CodecError`] on structural damage (see [`decode_volume`]).
pub fn decode_processed(buf: &[u8]) -> Result<(ImageStack, Vec<(i32, i32)>), CodecError> {
    let (view, corrections) = view_processed(buf)?;
    Ok((view.to_stack(), corrections))
}

/// Parses an [`encode_processed`] blob without copying slice pixels:
/// returns the borrowed stack view and the (small, eagerly decoded)
/// per-slice alignment corrections.
///
/// # Errors
///
/// Returns [`CodecError`] on the same structural damage
/// [`decode_processed`] rejects.
pub fn view_processed(buf: &[u8]) -> Result<(StackView<'_>, Vec<(i32, i32)>), CodecError> {
    let mut r = Reader::new(buf, "processed stack", PROCESSED_MAGIC)?;
    let stack = StackView::parse(&mut r)?;
    let corrections = read_shift_list(&mut r, "alignment corrections")?;
    r.finish("processed stack trailing bytes")?;
    Ok((stack, corrections))
}

// ---------------------------------------------------------------------------
// Netlist, Extraction, MeasurementReport
// ---------------------------------------------------------------------------

const NETLIST_MAGIC: &[u8; 4] = b"HNET";

fn class_byte(c: TransistorClass) -> u8 {
    TransistorClass::ALL
        .iter()
        .position(|&x| x == c)
        .expect("class in ALL") as u8
}

fn class_from(b: u8) -> Result<TransistorClass, CodecError> {
    TransistorClass::ALL
        .get(b as usize)
        .copied()
        .ok_or(CodecError::Invalid {
            what: "transistor class",
        })
}

fn write_dims(w: &mut Writer, d: TransistorDims) {
    w.f64(d.width.value());
    w.f64(d.length.value());
}

fn read_dims(r: &mut Reader<'_>) -> Result<TransistorDims, CodecError> {
    let width = r.f64("dims width")?;
    let length = r.f64("dims length")?;
    if !(width > 0.0 && length > 0.0) {
        return Err(CodecError::Invalid {
            what: "transistor dimensions",
        });
    }
    Ok(TransistorDims::new(Nanometers(width), Nanometers(length)))
}

fn write_netlist(w: &mut Writer, nl: &Netlist) {
    w.str(nl.name());
    w.u32(nl.net_count() as u32);
    for i in 0..nl.net_count() {
        w.str(nl.net_name(hifi_circuit::NetId(i)));
    }
    w.u32(nl.device_count() as u32);
    for (_, d) in nl.devices() {
        match d {
            Device::Mosfet(m) => {
                w.u8(0);
                w.str(&m.name);
                w.u8(match m.polarity {
                    Polarity::Nmos => 0,
                    Polarity::Pmos => 1,
                });
                w.u8(class_byte(m.class));
                write_dims(w, m.dims);
                w.u32(m.gate.0 as u32);
                w.u32(m.source.0 as u32);
                w.u32(m.drain.0 as u32);
            }
            Device::Capacitor(c) => {
                w.u8(1);
                w.str(&c.name);
                w.f64(c.value.value());
                w.u32(c.a.0 as u32);
                w.u32(c.b.0 as u32);
            }
        }
    }
}

fn read_netlist(r: &mut Reader<'_>) -> Result<Netlist, CodecError> {
    let name = r.str("netlist name")?;
    let mut nl = Netlist::new(name);
    let n_nets = r.count(5, "net count")?;
    for i in 0..n_nets {
        let net_name = r.str("net name")?;
        let id = nl.add_net(net_name);
        // Duplicate names would silently renumber every later net.
        if id.0 != i {
            return Err(CodecError::Invalid {
                what: "duplicate net name",
            });
        }
    }
    let net = |raw: u32| -> Result<hifi_circuit::NetId, CodecError> {
        let idx = raw as usize;
        if idx < n_nets {
            Ok(hifi_circuit::NetId(idx))
        } else {
            Err(CodecError::Invalid {
                what: "net reference",
            })
        }
    };
    let n_devices = r.count(2, "device count")?;
    for _ in 0..n_devices {
        match r.u8("device tag")? {
            0 => {
                let dev_name = r.str("mosfet name")?;
                let polarity = match r.u8("polarity")? {
                    0 => Polarity::Nmos,
                    1 => Polarity::Pmos,
                    _ => return Err(CodecError::Invalid { what: "polarity" }),
                };
                let class = class_from(r.u8("mosfet class")?)?;
                let dims = read_dims(r)?;
                let gate = net(r.u32("gate net")?)?;
                let source = net(r.u32("source net")?)?;
                let drain = net(r.u32("drain net")?)?;
                nl.add_mosfet(dev_name, polarity, class, dims, gate, source, drain);
            }
            1 => {
                let dev_name = r.str("capacitor name")?;
                let value = r.f64("capacitance")?;
                let a = net(r.u32("capacitor net a")?)?;
                let b = net(r.u32("capacitor net b")?)?;
                nl.add_capacitor(dev_name, hifi_units::Femtofarads(value), a, b);
            }
            _ => return Err(CodecError::Invalid { what: "device tag" }),
        }
    }
    Ok(nl)
}

/// Encodes a bare netlist (nets by id order, then devices in id order).
pub fn encode_netlist(nl: &Netlist) -> Vec<u8> {
    let mut w = Writer::magic(NETLIST_MAGIC);
    write_netlist(&mut w, nl);
    w.into_bytes()
}

/// Decodes [`encode_netlist`] output.
///
/// # Errors
///
/// Returns [`CodecError`] on structural damage (see [`decode_volume`]).
pub fn decode_netlist(buf: &[u8]) -> Result<Netlist, CodecError> {
    let mut r = Reader::new(buf, "netlist", NETLIST_MAGIC)?;
    let nl = read_netlist(&mut r)?;
    r.finish("netlist trailing bytes")?;
    Ok(nl)
}

const EXTRACTION_MAGIC: &[u8; 4] = b"HEXT";

fn write_measurement(w: &mut Writer, m: &MeasurementReport) {
    w.u32(m.classes.len() as u32);
    for c in &m.classes {
        w.u8(class_byte(c.class));
        w.u64(c.count as u64);
        w.f64(c.mean_width.value());
        w.f64(c.mean_length.value());
        w.f64(c.width_spread.value());
        w.f64(c.length_spread.value());
    }
    w.u64(m.total_measurements as u64);
    w.u32(m.confidence.degraded_slices.len() as u32);
    for &s in &m.confidence.degraded_slices {
        w.u64(s as u64);
    }
    w.u64(m.confidence.total_slices as u64);
    w.f64(m.confidence.score);
}

fn read_measurement(r: &mut Reader<'_>) -> Result<MeasurementReport, CodecError> {
    let n = r.count(41, "measurement class count")?;
    let mut classes = Vec::with_capacity(n);
    for _ in 0..n {
        classes.push(ClassMeasurement {
            class: class_from(r.u8("measured class")?)?,
            count: r.usize("class device count")?,
            mean_width: Nanometers(r.f64("mean width")?),
            mean_length: Nanometers(r.f64("mean length")?),
            width_spread: Nanometers(r.f64("width spread")?),
            length_spread: Nanometers(r.f64("length spread")?),
        });
    }
    let total_measurements = r.usize("total measurements")?;
    let n_degraded = r.count(8, "degraded slice count")?;
    let mut degraded_slices = Vec::with_capacity(n_degraded);
    for _ in 0..n_degraded {
        degraded_slices.push(r.usize("degraded slice index")?);
    }
    let total_slices = r.usize("confidence slice total")?;
    let score = r.f64("confidence score")?;
    if degraded_slices.len() > total_slices || !(0.0..=1.0).contains(&score) {
        return Err(CodecError::Invalid {
            what: "measurement confidence",
        });
    }
    Ok(MeasurementReport {
        classes,
        total_measurements,
        confidence: MeasurementConfidence {
            degraded_slices,
            total_slices,
            score,
        },
    })
}

const MEASUREMENT_MAGIC: &[u8; 4] = b"HMEA";

/// Encodes a stand-alone measurement report.
pub fn encode_measurement(m: &MeasurementReport) -> Vec<u8> {
    let mut w = Writer::magic(MEASUREMENT_MAGIC);
    write_measurement(&mut w, m);
    w.into_bytes()
}

/// Decodes [`encode_measurement`] output.
///
/// # Errors
///
/// Returns [`CodecError`] on structural damage (see [`decode_volume`]).
pub fn decode_measurement(buf: &[u8]) -> Result<MeasurementReport, CodecError> {
    let mut r = Reader::new(buf, "measurement report", MEASUREMENT_MAGIC)?;
    let m = read_measurement(&mut r)?;
    r.finish("measurement trailing bytes")?;
    Ok(m)
}

/// Encodes the extraction stage's full result: netlist, per-device
/// extraction metadata, grid geometry, and the measurement report derived
/// from it (so a cache hit restores the complete stage output).
pub fn encode_extraction(ex: &Extraction, measurement: &MeasurementReport) -> Vec<u8> {
    let mut w = Writer::magic(EXTRACTION_MAGIC);
    write_netlist(&mut w, &ex.netlist);
    w.u32(ex.devices.len() as u32);
    for d in &ex.devices {
        w.u32(d.device.0 as u32);
        write_dims(&mut w, d.dims);
        let (x0, y0, x1, y1) = d.channel_bbox;
        for v in [x0, y0, x1, y1] {
            w.u64(v as u64);
        }
        w.f64(d.gate_y_span_fraction);
        match d.class {
            None => w.u8(0xff),
            Some(c) => w.u8(class_byte(c)),
        }
    }
    w.u64(ex.nx as u64);
    w.u64(ex.ny as u64);
    w.f64(ex.voxel_nm);
    write_measurement(&mut w, measurement);
    w.into_bytes()
}

/// Decodes [`encode_extraction`] output.
///
/// # Errors
///
/// Returns [`CodecError`] on structural damage (see [`decode_volume`]).
pub fn decode_extraction(buf: &[u8]) -> Result<(Extraction, MeasurementReport), CodecError> {
    let mut r = Reader::new(buf, "extraction", EXTRACTION_MAGIC)?;
    let netlist = read_netlist(&mut r)?;
    let n = r.count(58, "extracted device count")?;
    let mut devices = Vec::with_capacity(n);
    for _ in 0..n {
        let id = r.u32("device id")? as usize;
        if id >= netlist.device_count() {
            return Err(CodecError::Invalid {
                what: "device reference",
            });
        }
        let dims = read_dims(&mut r)?;
        let mut bbox = [0usize; 4];
        for v in &mut bbox {
            *v = r.usize("channel bbox")?;
        }
        let gate_y_span_fraction = r.f64("gate span")?;
        let class = match r.u8("device class")? {
            0xff => None,
            b => Some(class_from(b)?),
        };
        devices.push(ExtractedDevice {
            device: DeviceId(id),
            dims,
            channel_bbox: (bbox[0], bbox[1], bbox[2], bbox[3]),
            gate_y_span_fraction,
            class,
        });
    }
    let nx = r.usize("extraction nx")?;
    let ny = r.usize("extraction ny")?;
    let voxel_nm = r.f64("extraction voxel size")?;
    let measurement = read_measurement(&mut r)?;
    r.finish("extraction trailing bytes")?;
    Ok((
        Extraction {
            netlist,
            devices,
            nx,
            ny,
            voxel_nm,
        },
        measurement,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hifi_circuit::topology::SaTopologyKind;
    use hifi_synth::{generate_region, SaRegionSpec};

    fn small_volume() -> MaterialVolume {
        generate_region(&SaRegionSpec::new(SaTopologyKind::Classic).with_pairs(1)).voxelize()
    }

    #[test]
    fn volume_round_trips_bit_identically() {
        let v = small_volume();
        let blob = encode_volume(&v);
        let back = decode_volume(&blob).expect("decodes");
        assert_eq!(back, v);
        // RLE earns its keep on sparse volumes.
        assert!(
            blob.len() < v.len() / 2,
            "blob {} bytes for {} voxels",
            blob.len(),
            v.len()
        );
    }

    #[test]
    fn acquisition_round_trips_bit_identically() {
        let v = small_volume();
        let cfg = hifi_imaging::ImagingConfig {
            slice_voxels: 3,
            ..Default::default()
        };
        let (stack, truth) = hifi_imaging::acquire(&v, &cfg);
        let blob = encode_acquisition(&stack, &truth, &[1, 3]);
        let (s2, t2, degraded) = decode_acquisition(&blob).expect("decodes");
        assert_eq!(s2, stack);
        assert_eq!(t2, truth);
        assert_eq!(degraded, vec![1, 3]);
        assert_eq!(s2.frame_margin_px(), stack.frame_margin_px());
        // A degraded index past the stack length is structural damage.
        let bad = encode_acquisition(&stack, &truth, &[stack.len()]);
        assert!(matches!(
            decode_acquisition(&bad),
            Err(CodecError::Invalid { .. })
        ));
    }

    #[test]
    fn empty_stack_round_trips() {
        let stack = ImageStack::from_slices(Vec::new(), 5.0, 1, DetectorKind::Se);
        let truth = DriftTruth {
            shifts: Vec::new(),
            brightness: Vec::new(),
        };
        let (s2, t2, degraded) =
            decode_acquisition(&encode_acquisition(&stack, &truth, &[])).expect("decodes");
        assert!(s2.is_empty());
        assert_eq!(s2.detector(), DetectorKind::Se);
        assert!(t2.shifts.is_empty());
        assert!(degraded.is_empty());
        let (p, c) = decode_processed(&encode_processed(&stack, &[])).expect("decodes");
        assert!(p.is_empty() && c.is_empty());
    }

    #[test]
    fn netlist_round_trips_including_capacitors() {
        let nl = hifi_circuit::topology::ocsa(Default::default()).into_netlist();
        let back = decode_netlist(&encode_netlist(&nl)).expect("decodes");
        assert_eq!(back, nl);
    }

    #[test]
    fn zero_device_netlist_round_trips() {
        let mut nl = Netlist::new("empty");
        nl.add_net("BL");
        let back = decode_netlist(&encode_netlist(&nl)).expect("decodes");
        assert_eq!(back, nl);
        assert_eq!(back.device_count(), 0);
    }

    #[test]
    fn extraction_round_trips_with_measurement() {
        let v = small_volume();
        let ex = hifi_extract::extract(&v).expect("extracts");
        let m = hifi_extract::measure(&ex);
        let blob = encode_extraction(&ex, &m);
        let (ex2, m2) = decode_extraction(&blob).expect("decodes");
        assert_eq!(ex2.netlist, ex.netlist);
        assert_eq!(ex2.devices, ex.devices);
        assert_eq!((ex2.nx, ex2.ny), (ex.nx, ex.ny));
        assert_eq!(ex2.voxel_nm.to_bits(), ex.voxel_nm.to_bits());
        assert_eq!(m2, m);
    }

    #[test]
    fn wrong_magic_and_version_are_rejected() {
        let blob = encode_volume(&small_volume());
        assert!(matches!(
            decode_acquisition(&blob),
            Err(CodecError::BadMagic { .. })
        ));
        let mut vers = blob.clone();
        vers[4] = 99;
        assert!(matches!(
            decode_volume(&vers),
            Err(CodecError::BadVersion { found: 99 })
        ));
        assert!(matches!(
            decode_volume(&blob[..10]),
            Err(CodecError::Truncated { .. })
        ));
    }

    #[test]
    fn volume_view_streams_chunks_without_eager_decode() {
        let v = small_volume();
        let blob = encode_volume(&v);
        let view = view_volume(&blob).expect("parses");
        assert_eq!(view.dims(), v.dims());
        assert_eq!(view.voxel_nm().to_bits(), v.voxel_nm().to_bits());
        assert_eq!(view.stack(), *v.stack());
        // Chunk-by-chunk expansion into a reused buffer reproduces the
        // raw voxel array exactly, CHUNK bytes at a time.
        let mut scratch = Vec::new();
        let mut offset = 0usize;
        for i in 0..view.chunk_count() {
            view.decode_chunk_into(i, &mut scratch);
            assert_eq!(scratch.len(), view.chunk_len(i));
            assert_eq!(
                &v.raw_voxels()[offset..offset + scratch.len()],
                &scratch[..]
            );
            offset += scratch.len();
        }
        assert_eq!(offset, v.len());
        // The materialized path is the eager decoder.
        assert_eq!(view.to_volume().expect("materializes"), v);
    }

    #[test]
    fn stack_view_borrows_slices_from_the_blob() {
        let v = small_volume();
        let (stack, truth) = hifi_imaging::acquire(&v, &Default::default());
        let blob = encode_acquisition(&stack, &truth, &[2]);
        let view = view_acquisition(&blob).expect("parses");
        assert_eq!(view.stack.len(), stack.len());
        assert_eq!(view.stack.slice_voxels(), stack.slice_voxels());
        assert_eq!(view.stack.detector(), stack.detector());
        assert_eq!(view.stack.frame_margin_px(), stack.frame_margin_px());
        assert_eq!(view.truth, truth);
        assert_eq!(view.degraded, vec![2]);
        let blob_range = blob.as_ptr_range();
        for i in 0..view.stack.len() {
            // Payload bytes are borrowed straight out of the blob…
            let bytes = view.stack.slice_bytes(i);
            assert!(
                blob_range.contains(&bytes.as_ptr()),
                "slice {i} not zero-copy"
            );
            assert_eq!(bytes.len(), stack.slice(i).pixels().len() * 4);
            // …and per-slice decode is bit-identical to the eager path.
            assert_eq!(view.stack.decode_slice(i), *stack.slice(i));
        }
        assert_eq!(view.stack.to_stack(), stack);

        let processed_blob = encode_processed(&stack, &[(1, -1); 3]);
        let (pview, corrections) = view_processed(&processed_blob).expect("parses");
        assert_eq!(pview.to_stack(), stack);
        assert_eq!(corrections, vec![(1, -1); 3]);
    }

    #[test]
    fn views_reject_corrupt_blobs_like_the_eager_decoders() {
        let mut v = MaterialVolume::new(6, 5, 4, 5.0, hifi_geometry::LayerStack::default_dram());
        v.fill_box(1, 4, 0, 3, 1, 3, hifi_synth::Material::Metal1, true);
        v.fill_box(0, 6, 2, 5, 0, 2, hifi_synth::Material::ActiveSi, true);
        let blob = encode_volume(&v);
        assert!(matches!(
            view_acquisition(&blob),
            Err(CodecError::BadMagic { .. })
        ));
        assert!(matches!(
            view_volume(&blob[..10]),
            Err(CodecError::Truncated { .. })
        ));
        for i in 0..blob.len() {
            let mut bad = blob.clone();
            bad[i] ^= 0x41;
            // Parse + materialize must agree with the eager decoder's
            // verdict on every single-byte flip.
            let eager = decode_volume(&bad);
            let viewed = view_volume(&bad).and_then(|v| v.to_volume());
            assert_eq!(eager.is_ok(), viewed.is_ok(), "flip at byte {i}");
        }
    }

    /// Flip every byte of a small volume blob one at a time: decode must
    /// return an error or a (different or identical) volume — never panic.
    /// This is the codec half of the corruption contract; the store layer
    /// additionally checksums blobs so flips are caught before decode.
    #[test]
    fn single_byte_flips_never_panic() {
        let mut v = MaterialVolume::new(4, 3, 2, 5.0, hifi_geometry::LayerStack::default_dram());
        v.fill_box(0, 2, 0, 2, 0, 2, hifi_synth::Material::Metal1, true);
        let blob = encode_volume(&v);
        for i in 0..blob.len() {
            let mut bad = blob.clone();
            bad[i] ^= 0x41;
            let _ = decode_volume(&bad); // must not panic
        }
    }
}
