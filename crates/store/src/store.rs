//! The on-disk content-addressed artifact store.
//!
//! Layout under the store root:
//!
//! ```text
//! <root>/objects/<32-hex-key>   one artifact per file, self-checking header
//! <root>/manifest               text index: key, size, checksum, LRU tick
//! <root>/.lock                  advisory lock guarding manifest rewrites
//! ```
//!
//! Blobs carry their own header (magic, version, payload length, FNV
//! checksum), so a blob is verifiable without the manifest; the manifest
//! exists for the LRU eviction order and for cheap `stats`/`gc` without
//! touching every object. Writers stage to a temp file and `rename` into
//! place, so concurrent writers of the *same* key race benignly (identical
//! content) and readers never observe a half-written object. Corrupted
//! blobs are detected by checksum, evicted, and reported as a miss — the
//! pipeline recomputes instead of failing.

use std::collections::BTreeMap;
use std::fs;
use std::hash::Hasher;
use std::io::{ErrorKind, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant, SystemTime};

use hifi_faults::{FaultKind, FaultPlan};

use crate::fingerprint::Key;
use crate::stats;

/// A store operation failure (I/O level, not corruption — corruption is
/// handled internally by falling back to a miss).
///
/// Keeps `Clone + PartialEq` (the pipeline error type requires both) by
/// carrying the underlying I/O error as its kind and rendered message
/// rather than the live `std::io::Error`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreError {
    /// The operation that failed (`"open"`, `"put"`, `"lock"`, …).
    pub op: &'static str,
    /// The path involved.
    pub path: PathBuf,
    /// The underlying `std::io::ErrorKind`.
    pub kind: ErrorKind,
    /// The rendered I/O error message.
    pub message: String,
}

impl StoreError {
    fn io(op: &'static str, path: &Path, err: &std::io::Error) -> Self {
        Self {
            op,
            path: path.to_path_buf(),
            kind: err.kind(),
            message: err.to_string(),
        }
    }

    /// A transient failure injected by an attached [`FaultPlan`]; carries
    /// `ErrorKind::Interrupted` so [`StoreError::is_transient`] holds.
    fn injected(op: &'static str, path: &Path, kind: FaultKind) -> Self {
        Self {
            op,
            path: path.to_path_buf(),
            kind: ErrorKind::Interrupted,
            message: format!("injected transient {kind} fault"),
        }
    }

    /// Whether retrying the failed operation can plausibly succeed.
    ///
    /// Injected faults and interrupted/timed-out I/O are transient; real
    /// environmental failures (permissions, disk full) are not.
    pub fn is_transient(&self) -> bool {
        matches!(
            self.kind,
            ErrorKind::Interrupted | ErrorKind::TimedOut | ErrorKind::WouldBlock
        )
    }
}

impl core::fmt::Display for StoreError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "artifact store {} failed at {}: {}",
            self.op,
            self.path.display(),
            self.message
        )
    }
}

impl std::error::Error for StoreError {}

/// Blob header magic.
const BLOB_MAGIC: &[u8; 4] = b"HFST";
/// Blob header version.
const BLOB_VERSION: u16 = 1;
/// Header bytes: magic + version + payload length + checksum.
const HEADER_LEN: usize = 4 + 2 + 8 + 8;

/// FNV-1a checksum of a payload (independent of the content key, which
/// hashes the *inputs*; this hashes the stored *bytes*).
fn checksum(payload: &[u8]) -> u64 {
    let mut h = fnv::FnvHasher::default();
    h.write(payload);
    h.finish()
}

/// One manifest row.
#[derive(Debug, Clone, Copy)]
struct Entry {
    size: u64,
    checksum: u64,
    tick: u64,
}

/// A content-addressed artifact store rooted at one directory.
#[derive(Debug, Clone)]
pub struct ArtifactStore {
    root: PathBuf,
    /// Optional fault-injection plan exercising the error paths: transient
    /// read/write failures and in-memory blob corruption. `None` (the
    /// default) costs nothing on the hot paths.
    fault_plan: Option<Arc<FaultPlan>>,
}

/// Advisory cross-process lock: holds `<root>/.lock`, created with
/// `create_new` so exactly one holder wins; removed on drop.
struct LockGuard {
    path: PathBuf,
}

impl Drop for LockGuard {
    fn drop(&mut self) {
        let _ = fs::remove_file(&self.path);
    }
}

/// How long a lock file may sit before it is presumed orphaned (a crashed
/// holder) and broken.
const LOCK_STALE: Duration = Duration::from_secs(30);
/// How long to spin waiting for the lock before giving up.
const LOCK_WAIT: Duration = Duration::from_secs(10);

impl ArtifactStore {
    /// Opens (creating if needed) a store rooted at `root`.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError`] if the directory tree cannot be created.
    pub fn open(root: impl Into<PathBuf>) -> Result<Self, StoreError> {
        let root = root.into();
        let objects = root.join("objects");
        fs::create_dir_all(&objects).map_err(|e| StoreError::io("open", &objects, &e))?;
        Ok(Self {
            root,
            fault_plan: None,
        })
    }

    /// Attaches a fault plan: subsequent [`ArtifactStore::get`] and
    /// [`ArtifactStore::put`] calls consult it and may fail transiently
    /// (`StoreRead`/`StoreWrite`, surfacing as [`StoreError`] with
    /// [`StoreError::is_transient`] true) or observe a corrupted payload
    /// (`CorruptBlob`, flipping a byte of the read buffer so the real
    /// evict-and-recompute path runs against an intact on-disk object).
    pub fn with_fault_plan(mut self, plan: Arc<FaultPlan>) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// The attached fault plan, if any.
    pub fn fault_plan(&self) -> Option<&Arc<FaultPlan>> {
        self.fault_plan.as_ref()
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn object_path(&self, key: Key) -> PathBuf {
        self.root.join("objects").join(key.hex())
    }

    fn manifest_path(&self) -> PathBuf {
        self.root.join("manifest")
    }

    fn lock(&self) -> Result<LockGuard, StoreError> {
        let path = self.root.join(".lock");
        let start = Instant::now();
        loop {
            match fs::OpenOptions::new()
                .write(true)
                .create_new(true)
                .open(&path)
            {
                Ok(_) => return Ok(LockGuard { path }),
                Err(e) if e.kind() == ErrorKind::AlreadyExists => {
                    // Break locks orphaned by a crashed holder.
                    if let Ok(meta) = fs::metadata(&path) {
                        let age = meta
                            .modified()
                            .ok()
                            .and_then(|m| SystemTime::now().duration_since(m).ok());
                        if age.is_some_and(|a| a > LOCK_STALE) {
                            let _ = fs::remove_file(&path);
                            continue;
                        }
                    }
                    if start.elapsed() > LOCK_WAIT {
                        return Err(StoreError::io(
                            "lock",
                            &path,
                            &std::io::Error::new(
                                ErrorKind::TimedOut,
                                "store lock held for too long",
                            ),
                        ));
                    }
                    std::thread::sleep(Duration::from_millis(2));
                }
                Err(e) => return Err(StoreError::io("lock", &path, &e)),
            }
        }
    }

    fn read_manifest(&self) -> BTreeMap<Key, Entry> {
        // The manifest is advisory (LRU order + stats); damage to it must
        // never fail the store, so parsing is best-effort.
        let mut out = BTreeMap::new();
        let Ok(text) = fs::read_to_string(self.manifest_path()) else {
            return out;
        };
        for line in text.lines() {
            let mut parts = line.split_whitespace();
            let (Some(hex), Some(size), Some(sum), Some(tick)) =
                (parts.next(), parts.next(), parts.next(), parts.next())
            else {
                continue;
            };
            let (Some(key), Ok(size), Ok(sum), Ok(tick)) = (
                Key::from_hex(hex),
                size.parse::<u64>(),
                u64::from_str_radix(sum, 16),
                tick.parse::<u64>(),
            ) else {
                continue;
            };
            out.insert(
                key,
                Entry {
                    size,
                    checksum: sum,
                    tick,
                },
            );
        }
        out
    }

    fn write_manifest(&self, manifest: &BTreeMap<Key, Entry>) -> Result<(), StoreError> {
        let mut text = String::new();
        for (key, e) in manifest {
            text.push_str(&format!(
                "{} {} {:016x} {}\n",
                key.hex(),
                e.size,
                e.checksum,
                e.tick
            ));
        }
        let tmp = self
            .root
            .join(format!(".manifest.tmp.{}", std::process::id()));
        fs::write(&tmp, text).map_err(|e| StoreError::io("put", &tmp, &e))?;
        fs::rename(&tmp, self.manifest_path())
            .map_err(|e| StoreError::io("put", &self.manifest_path(), &e))
    }

    /// Updates the manifest under the store lock.
    fn with_manifest(&self, f: impl FnOnce(&mut BTreeMap<Key, Entry>)) -> Result<(), StoreError> {
        let _guard = self.lock()?;
        let mut manifest = self.read_manifest();
        f(&mut manifest);
        self.write_manifest(&manifest)
    }

    /// Fetches the payload stored under `key`.
    ///
    /// Returns `Ok(None)` on a miss **or** on a corrupted blob (bad magic,
    /// truncation, checksum mismatch) — the damaged object is evicted and
    /// the caller recomputes. Only environmental I/O failures surface as
    /// errors.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError`] if the object exists but cannot be read for
    /// I/O reasons (permissions, hardware), or the lock cannot be taken.
    pub fn get(&self, key: Key) -> Result<Option<Vec<u8>>, StoreError> {
        let path = self.object_path(key);
        if let Some(plan) = &self.fault_plan {
            if plan.check(FaultKind::StoreRead, &key.hex()) {
                return Err(StoreError::injected("get", &path, FaultKind::StoreRead));
            }
        }
        let mut file = match fs::File::open(&path) {
            Ok(f) => f,
            Err(e) if e.kind() == ErrorKind::NotFound => {
                stats::record_miss();
                return Ok(None);
            }
            Err(e) => return Err(StoreError::io("get", &path, &e)),
        };
        let mut buf = Vec::new();
        file.read_to_end(&mut buf)
            .map_err(|e| StoreError::io("get", &path, &e))?;
        drop(file);
        if let Some(plan) = &self.fault_plan {
            // Corrupt the *read buffer*, not the file: the checksum check
            // below fails, the (intact) object is evicted, and the caller
            // recomputes — exactly the bit-rot path, deterministically.
            if !buf.is_empty() && plan.check(FaultKind::CorruptBlob, &key.hex()) {
                let last = buf.len() - 1;
                buf[last] ^= 0x01;
            }
        }
        match Self::check_blob(&buf) {
            Some(payload_range) => {
                let payload = buf[payload_range].to_vec();
                stats::record_hit(payload.len() as u64);
                // Touch the LRU tick; freshness is advisory, so lock
                // failures here must not turn a hit into an error.
                let _ = self.with_manifest(|m| {
                    let next = m.values().map(|e| e.tick).max().unwrap_or(0) + 1;
                    if let Some(e) = m.get_mut(&key) {
                        e.tick = next;
                    }
                });
                Ok(Some(payload))
            }
            None => {
                // Corrupted: evict and report a miss so the stage recomputes.
                let _ = fs::remove_file(&path);
                let _ = self.with_manifest(|m| {
                    m.remove(&key);
                });
                stats::record_corrupt();
                stats::record_miss();
                Ok(None)
            }
        }
    }

    /// Validates a raw blob; returns the payload byte range if intact.
    fn check_blob(buf: &[u8]) -> Option<core::ops::Range<usize>> {
        if buf.len() < HEADER_LEN || &buf[..4] != BLOB_MAGIC {
            return None;
        }
        let version = u16::from_le_bytes(buf[4..6].try_into().ok()?);
        if version != BLOB_VERSION {
            return None;
        }
        let len = u64::from_le_bytes(buf[6..14].try_into().ok()?) as usize;
        let sum = u64::from_le_bytes(buf[14..22].try_into().ok()?);
        let payload = buf.get(HEADER_LEN..)?;
        if payload.len() != len || checksum(payload) != sum {
            return None;
        }
        Some(HEADER_LEN..buf.len())
    }

    /// Stores `payload` under `key` (atomic temp-file + rename).
    ///
    /// # Errors
    ///
    /// Returns [`StoreError`] if the object or manifest cannot be written.
    pub fn put(&self, key: Key, payload: &[u8]) -> Result<(), StoreError> {
        let sum = checksum(payload);
        let path = self.object_path(key);
        if let Some(plan) = &self.fault_plan {
            if plan.check(FaultKind::StoreWrite, &key.hex()) {
                return Err(StoreError::injected("put", &path, FaultKind::StoreWrite));
            }
        }
        let tmp =
            self.root
                .join("objects")
                .join(format!(".tmp.{}.{}", std::process::id(), key.hex()));
        {
            let mut file = fs::File::create(&tmp).map_err(|e| StoreError::io("put", &tmp, &e))?;
            let mut header = Vec::with_capacity(HEADER_LEN);
            header.extend_from_slice(BLOB_MAGIC);
            header.extend_from_slice(&BLOB_VERSION.to_le_bytes());
            header.extend_from_slice(&(payload.len() as u64).to_le_bytes());
            header.extend_from_slice(&sum.to_le_bytes());
            file.write_all(&header)
                .and_then(|()| file.write_all(payload))
                .and_then(|()| file.sync_all())
                .map_err(|e| StoreError::io("put", &tmp, &e))?;
        }
        fs::rename(&tmp, &path).map_err(|e| StoreError::io("put", &path, &e))?;
        let total = (payload.len() + HEADER_LEN) as u64;
        self.with_manifest(|m| {
            let next = m.values().map(|e| e.tick).max().unwrap_or(0) + 1;
            m.insert(
                key,
                Entry {
                    size: total,
                    checksum: sum,
                    tick: next,
                },
            );
        })?;
        stats::record_write(payload.len() as u64);
        Ok(())
    }

    /// Number of objects and total bytes currently indexed.
    pub fn usage(&self) -> (usize, u64) {
        let manifest = self.read_manifest();
        let bytes = manifest.values().map(|e| e.size).sum();
        (manifest.len(), bytes)
    }

    /// Evicts least-recently-used objects until the store holds at most
    /// `max_bytes`. Returns the number of objects evicted.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError`] if the lock cannot be taken or the manifest
    /// cannot be rewritten.
    pub fn gc(&self, max_bytes: u64) -> Result<usize, StoreError> {
        let _guard = self.lock()?;
        let mut manifest = self.read_manifest();
        let mut total: u64 = manifest.values().map(|e| e.size).sum();
        let mut order: Vec<(u64, Key)> = manifest.iter().map(|(k, e)| (e.tick, *k)).collect();
        order.sort_unstable();
        let mut evicted = 0;
        for (_, key) in order {
            if total <= max_bytes {
                break;
            }
            if let Some(e) = manifest.remove(&key) {
                let _ = fs::remove_file(self.object_path(key));
                total = total.saturating_sub(e.size);
                evicted += 1;
            }
        }
        self.write_manifest(&manifest)?;
        Ok(evicted)
    }

    /// Re-checksums every object on disk; returns `(intact, corrupt)`
    /// counts. Corrupt objects are left in place (use [`ArtifactStore::get`]
    /// or `gc` to evict).
    ///
    /// # Errors
    ///
    /// Returns [`StoreError`] if the objects directory cannot be listed.
    pub fn verify(&self) -> Result<(usize, usize), StoreError> {
        let dir = self.root.join("objects");
        let entries = fs::read_dir(&dir).map_err(|e| StoreError::io("verify", &dir, &e))?;
        let (mut intact, mut corrupt) = (0, 0);
        for entry in entries.flatten() {
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if Key::from_hex(name).is_none() {
                continue; // temp files, strays
            }
            match fs::read(entry.path()) {
                Ok(buf) if Self::check_blob(&buf).is_some() => intact += 1,
                _ => corrupt += 1,
            }
        }
        Ok((intact, corrupt))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fingerprint::Fingerprinter;

    fn temp_store(tag: &str) -> ArtifactStore {
        let dir =
            std::env::temp_dir().join(format!("hifi-store-test-{}-{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        ArtifactStore::open(&dir).expect("open store")
    }

    fn key_of(s: &str) -> Key {
        Fingerprinter::new().str(s).finish()
    }

    #[test]
    fn put_get_round_trips() {
        let store = temp_store("roundtrip");
        let key = key_of("alpha");
        assert_eq!(store.get(key).expect("get"), None);
        store.put(key, b"payload bytes").expect("put");
        assert_eq!(
            store.get(key).expect("get").as_deref(),
            Some(&b"payload bytes"[..])
        );
        let (n, bytes) = store.usage();
        assert_eq!(n, 1);
        assert!(bytes > b"payload bytes".len() as u64);
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn corrupted_blob_reads_as_miss_and_is_evicted() {
        let store = temp_store("corrupt");
        let key = key_of("beta");
        store.put(key, b"precious data").expect("put");
        let path = store.object_path(key);
        let mut raw = fs::read(&path).expect("read blob");
        let last = raw.len() - 1;
        raw[last] ^= 0x01; // flip one payload byte
        fs::write(&path, &raw).expect("rewrite blob");
        assert_eq!(store.get(key).expect("get"), None, "corrupt blob must miss");
        assert!(!path.exists(), "corrupt blob must be evicted");
        // The store recovers: a re-put works and reads back.
        store.put(key, b"precious data").expect("re-put");
        assert!(store.get(key).expect("get").is_some());
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn truncated_and_empty_blobs_miss_without_panic() {
        let store = temp_store("truncate");
        let key = key_of("gamma");
        store.put(key, b"0123456789").expect("put");
        let path = store.object_path(key);
        let raw = fs::read(&path).expect("read");
        fs::write(&path, &raw[..HEADER_LEN / 2]).expect("truncate");
        assert_eq!(store.get(key).expect("get"), None);
        store.put(key, b"x").expect("put");
        fs::write(store.object_path(key), b"").expect("empty");
        assert_eq!(store.get(key).expect("get"), None);
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn gc_evicts_least_recently_used_first() {
        let store = temp_store("gc");
        let (a, b, c) = (key_of("a"), key_of("b"), key_of("c"));
        store.put(a, &[1u8; 100]).expect("put a");
        store.put(b, &[2u8; 100]).expect("put b");
        store.put(c, &[3u8; 100]).expect("put c");
        // Touch `a` so `b` becomes the coldest entry.
        assert!(store.get(a).expect("get a").is_some());
        let (_, total) = store.usage();
        let evicted = store.gc(total - 1).expect("gc");
        assert_eq!(evicted, 1);
        assert_eq!(store.get(b).expect("get b"), None, "coldest entry evicted");
        assert!(store.get(a).expect("get a").is_some());
        assert!(store.get(c).expect("get c").is_some());
        assert_eq!(store.gc(0).expect("gc all"), 2);
        assert_eq!(store.usage().0, 0);
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn verify_counts_intact_and_corrupt() {
        let store = temp_store("verify");
        store.put(key_of("one"), b"one").expect("put");
        store.put(key_of("two"), b"two").expect("put");
        assert_eq!(store.verify().expect("verify"), (2, 0));
        let path = store.object_path(key_of("two"));
        let mut raw = fs::read(&path).expect("read");
        raw[HEADER_LEN] ^= 0xff;
        fs::write(&path, raw).expect("corrupt");
        assert_eq!(store.verify().expect("verify"), (1, 1));
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn concurrent_writers_do_not_corrupt_the_store() {
        let store = temp_store("concurrent");
        let n_threads = 4;
        let per_thread = 8;
        std::thread::scope(|scope| {
            for t in 0..n_threads {
                let store = store.clone();
                scope.spawn(move || {
                    for i in 0..per_thread {
                        let key = key_of(&format!("obj-{t}-{i}"));
                        let payload = vec![t as u8; 64 + i];
                        store.put(key, &payload).expect("put");
                        assert_eq!(store.get(key).expect("get").as_deref(), Some(&payload[..]));
                    }
                });
            }
        });
        let (n, _) = store.usage();
        assert_eq!(n, n_threads * per_thread);
        assert_eq!(store.verify().expect("verify"), (n_threads * per_thread, 0));
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn injected_store_faults_are_transient_and_clear_on_retry() {
        use hifi_faults::FaultSpec;
        let spec = FaultSpec::disabled()
            .with_rate(FaultKind::StoreWrite, 1.0)
            .with_rate(FaultKind::StoreRead, 1.0)
            .with_max_consecutive(1);
        let plan = Arc::new(FaultPlan::new(spec));
        let store = temp_store("inject-rw").with_fault_plan(plan.clone());
        let key = key_of("epsilon");
        let err = store.put(key, b"x").expect_err("first put injected");
        assert!(err.is_transient(), "{err}");
        store.put(key, b"x").expect("second put clears");
        let err = store.get(key).expect_err("first get injected");
        assert!(err.is_transient(), "{err}");
        assert_eq!(store.get(key).expect("get").as_deref(), Some(&b"x"[..]));
        assert_eq!(plan.tally().injected, 2);
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn injected_corruption_misses_then_recovers_via_reput() {
        use hifi_faults::FaultSpec;
        let spec = FaultSpec::disabled()
            .with_rate(FaultKind::CorruptBlob, 1.0)
            .with_max_consecutive(1);
        let store = temp_store("inject-corrupt").with_fault_plan(Arc::new(FaultPlan::new(spec)));
        let key = key_of("zeta");
        store.put(key, b"artifact").expect("put");
        // The read buffer is corrupted in memory; checksum fails, the
        // object is evicted, the caller sees a plain miss.
        assert_eq!(store.get(key).expect("get"), None);
        assert!(!store.object_path(key).exists());
        // The recompute-and-re-put path restores service; the corruption
        // site has walked past `max_consecutive`, so the next read is clean.
        store.put(key, b"artifact").expect("re-put");
        assert_eq!(
            store.get(key).expect("get").as_deref(),
            Some(&b"artifact"[..])
        );
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn real_io_errors_are_not_transient() {
        let e = StoreError::io(
            "get",
            Path::new("/nope"),
            &std::io::Error::new(ErrorKind::PermissionDenied, "denied"),
        );
        assert!(!e.is_transient());
    }

    #[test]
    fn waiting_writer_proceeds_once_lock_is_released() {
        let store = temp_store("held-lock");
        let lock_path = store.root().join(".lock");
        fs::write(&lock_path, b"").expect("plant lock");
        let planted = lock_path.clone();
        let dropper = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(50));
            let _ = fs::remove_file(&planted);
        });
        store.put(key_of("delta"), b"waits for lock").expect("put");
        dropper.join().expect("join");
        assert!(store.get(key_of("delta")).expect("get").is_some());
        let _ = fs::remove_dir_all(store.root());
    }
}
