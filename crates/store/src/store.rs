//! The on-disk content-addressed artifact store.
//!
//! Layout under the store root (sharded by the leading key nibble):
//!
//! ```text
//! <root>/objects/<s>/<32-hex-key>   one artifact per file, self-checking header
//! <root>/objects/<s>/manifest       per-shard text index: key, size, checksum, LRU tick
//! <root>/objects/<s>/.lock          advisory lock guarding that shard's manifest
//! <root>/.lock                      root lock, held only for legacy-layout migration
//! ```
//!
//! `<s>` is the first hex character of the key, so keys spread uniformly
//! over [`SHARD_COUNT`] shards and concurrent pipelines writing different
//! stages contend only when their keys share a leading nibble, not on one
//! global lock. LRU ticks are drawn from a process-wide monotone counter
//! seeded by wall-clock microseconds, so eviction order stays comparable
//! *across* shards (and across processes, to wall-clock precision) even
//! though each shard keeps its own manifest.
//!
//! Blobs carry their own header (magic, version, payload length, FNV
//! checksum), so a blob is verifiable without the manifest; the manifest
//! exists for the LRU eviction order and for cheap `stats`/`gc` without
//! touching every object. Writers stage to a temp file and `rename` into
//! place, so concurrent writers of the *same* key race benignly (identical
//! content) and readers never observe a half-written object. Corrupted
//! blobs are detected by checksum, evicted, and reported as a miss — the
//! pipeline recomputes instead of failing.
//!
//! Stores written by older versions (flat `objects/<key>` plus a root
//! `manifest`) are migrated in place on [`ArtifactStore::open`], under the
//! root lock so exactly one opener performs the move.

use std::collections::BTreeMap;
use std::fs;
use std::hash::Hasher;
use std::io::{ErrorKind, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, SystemTime};

use hifi_faults::{FaultKind, FaultPlan, RetryPolicy};

use crate::fingerprint::Key;
use crate::stats;

/// Number of shards `objects/` is split into: one per leading hex nibble.
pub const SHARD_COUNT: usize = 16;

/// A store operation failure (I/O level, not corruption — corruption is
/// handled internally by falling back to a miss).
///
/// Keeps `Clone + PartialEq` (the pipeline error type requires both) by
/// carrying the underlying I/O error as its kind and rendered message
/// rather than the live `std::io::Error`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// An I/O operation failed.
    Io {
        /// The operation that failed (`"open"`, `"put"`, `"lock"`, …).
        op: &'static str,
        /// The path involved.
        path: PathBuf,
        /// The underlying `std::io::ErrorKind`.
        kind: ErrorKind,
        /// The rendered I/O error message.
        message: String,
    },
    /// A lock stayed held by another holder for the whole retry budget.
    ///
    /// Contention is transient by nature (the holder finishes eventually),
    /// so [`StoreError::is_transient`] holds and pipeline-level retry
    /// policies treat it like any injected fault.
    Contended {
        /// The lock file that could not be acquired.
        path: PathBuf,
        /// Acquisition attempts made before giving up.
        attempts: u32,
        /// Total backoff slept across those attempts.
        waited: Duration,
    },
}

impl StoreError {
    fn io(op: &'static str, path: &Path, err: &std::io::Error) -> Self {
        Self::Io {
            op,
            path: path.to_path_buf(),
            kind: err.kind(),
            message: err.to_string(),
        }
    }

    /// A transient failure injected by an attached [`FaultPlan`]; carries
    /// `ErrorKind::Interrupted` so [`StoreError::is_transient`] holds.
    fn injected(op: &'static str, path: &Path, kind: FaultKind) -> Self {
        Self::Io {
            op,
            path: path.to_path_buf(),
            kind: ErrorKind::Interrupted,
            message: format!("injected transient {kind} fault"),
        }
    }

    /// The operation that failed (`"open"`, `"put"`, `"lock"`, …).
    pub fn op(&self) -> &'static str {
        match self {
            Self::Io { op, .. } => op,
            Self::Contended { .. } => "lock",
        }
    }

    /// The path involved in the failure.
    pub fn path(&self) -> &Path {
        match self {
            Self::Io { path, .. } | Self::Contended { path, .. } => path,
        }
    }

    /// Whether this is lock-budget exhaustion rather than an I/O failure.
    pub fn is_contended(&self) -> bool {
        matches!(self, Self::Contended { .. })
    }

    /// Whether retrying the failed operation can plausibly succeed.
    ///
    /// Injected faults, interrupted/timed-out I/O, and lock contention are
    /// transient; real environmental failures (permissions, disk full)
    /// are not.
    pub fn is_transient(&self) -> bool {
        match self {
            Self::Io { kind, .. } => matches!(
                kind,
                ErrorKind::Interrupted | ErrorKind::TimedOut | ErrorKind::WouldBlock
            ),
            Self::Contended { .. } => true,
        }
    }
}

impl core::fmt::Display for StoreError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::Io {
                op, path, message, ..
            } => write!(
                f,
                "artifact store {} failed at {}: {}",
                op,
                path.display(),
                message
            ),
            Self::Contended {
                path,
                attempts,
                waited,
            } => write!(
                f,
                "artifact store lock contended at {}: gave up after {} attempts ({:?} backoff)",
                path.display(),
                attempts,
                waited
            ),
        }
    }
}

impl std::error::Error for StoreError {}

/// Blob header magic.
const BLOB_MAGIC: &[u8; 4] = b"HFST";
/// Blob header version.
const BLOB_VERSION: u16 = 1;
/// Header bytes: magic + version + payload length + checksum.
const HEADER_LEN: usize = 4 + 2 + 8 + 8;

/// FNV-1a checksum of a payload (independent of the content key, which
/// hashes the *inputs*; this hashes the stored *bytes*).
fn checksum(payload: &[u8]) -> u64 {
    let mut h = fnv::FnvHasher::default();
    h.write(payload);
    h.finish()
}

/// One manifest row.
#[derive(Debug, Clone, Copy)]
struct Entry {
    size: u64,
    checksum: u64,
    tick: u64,
}

/// Per-shard usage, as reported by [`ArtifactStore::usage_by_shard`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardUsage {
    /// Shard index (`0..SHARD_COUNT`, the leading key nibble).
    pub shard: usize,
    /// Objects indexed in this shard.
    pub objects: usize,
    /// Total on-disk bytes (headers included) indexed in this shard.
    pub bytes: u64,
}

/// A content-addressed artifact store rooted at one directory.
#[derive(Debug, Clone)]
pub struct ArtifactStore {
    root: PathBuf,
    /// Optional fault-injection plan exercising the error paths: transient
    /// read/write failures and in-memory blob corruption. `None` (the
    /// default) costs nothing on the hot paths.
    fault_plan: Option<Arc<FaultPlan>>,
    /// Exponential-backoff schedule for lock acquisition; the budget runs
    /// out into [`StoreError::Contended`].
    lock_policy: RetryPolicy,
}

/// Advisory cross-process lock: holds a `.lock` file, created with
/// `create_new` so exactly one holder wins; removed on drop.
struct LockGuard {
    path: PathBuf,
}

impl Drop for LockGuard {
    fn drop(&mut self) {
        let _ = fs::remove_file(&self.path);
    }
}

/// How long a lock file may sit before it is presumed orphaned (a crashed
/// holder) and broken.
const LOCK_STALE: Duration = Duration::from_secs(30);

/// The default lock-acquisition schedule: 1 ms doubling to a 250 ms
/// ceiling, 47 retries ≈ 10 s of total backoff — the same wait budget the
/// old spin loop had, but with exponentially fewer wakeups. Contention is
/// retried with *real* sleeps (unlike pipeline-stage retries, which charge
/// a [`hifi_faults::VirtualClock`]) because the holder genuinely needs the
/// wall-clock time to finish.
fn default_lock_policy() -> RetryPolicy {
    RetryPolicy {
        max_retries: 47,
        base_delay: Duration::from_millis(1),
        multiplier: 2.0,
        max_delay: Duration::from_millis(250),
    }
}

/// Draws the next LRU tick: strictly increasing within the process,
/// seeded by wall-clock microseconds so ticks stay comparable across
/// shards *and* across cooperating processes. (The manifest is advisory —
/// clock skew can only mis-order eviction, never corrupt data.)
fn next_tick() -> u64 {
    static TICK: AtomicU64 = AtomicU64::new(0);
    let now = SystemTime::now()
        .duration_since(SystemTime::UNIX_EPOCH)
        .map(|d| d.as_micros() as u64)
        .unwrap_or(0);
    let mut cur = TICK.load(Ordering::Relaxed);
    loop {
        let next = cur.max(now).saturating_add(1);
        match TICK.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return next,
            Err(observed) => cur = observed,
        }
    }
}

impl ArtifactStore {
    /// Opens (creating if needed) a store rooted at `root`. A legacy flat
    /// layout (objects directly under `objects/`, one root manifest) is
    /// migrated into the sharded layout under the root lock.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError`] if the directory tree cannot be created or a
    /// legacy store cannot be migrated.
    pub fn open(root: impl Into<PathBuf>) -> Result<Self, StoreError> {
        let root = root.into();
        let objects = root.join("objects");
        fs::create_dir_all(&objects).map_err(|e| StoreError::io("open", &objects, &e))?;
        let store = Self {
            root,
            fault_plan: None,
            lock_policy: default_lock_policy(),
        };
        for shard in 0..SHARD_COUNT {
            let dir = store.shard_dir(shard);
            fs::create_dir_all(&dir).map_err(|e| StoreError::io("open", &dir, &e))?;
        }
        store.migrate_legacy_layout()?;
        Ok(store)
    }

    /// Attaches a fault plan: subsequent [`ArtifactStore::get`] and
    /// [`ArtifactStore::put`] calls consult it and may fail transiently
    /// (`StoreRead`/`StoreWrite`, surfacing as [`StoreError`] with
    /// [`StoreError::is_transient`] true) or observe a corrupted payload
    /// (`CorruptBlob`, flipping a byte of the read buffer so the real
    /// evict-and-recompute path runs against an intact on-disk object).
    pub fn with_fault_plan(mut self, plan: Arc<FaultPlan>) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Overrides the lock-acquisition backoff schedule (tests shrink the
    /// budget to observe [`StoreError::Contended`] quickly).
    pub fn with_lock_policy(mut self, policy: RetryPolicy) -> Self {
        self.lock_policy = policy;
        self
    }

    /// The attached fault plan, if any.
    pub fn fault_plan(&self) -> Option<&Arc<FaultPlan>> {
        self.fault_plan.as_ref()
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The shard a key lives in: its leading hex nibble.
    fn shard_of(key: Key) -> usize {
        (key.parts().0 >> 60) as usize
    }

    fn shard_dir(&self, shard: usize) -> PathBuf {
        self.root.join("objects").join(format!("{shard:x}"))
    }

    fn object_path(&self, key: Key) -> PathBuf {
        self.shard_dir(Self::shard_of(key)).join(key.hex())
    }

    fn shard_manifest_path(&self, shard: usize) -> PathBuf {
        self.shard_dir(shard).join("manifest")
    }

    fn shard_lock_path(&self, shard: usize) -> PathBuf {
        self.shard_dir(shard).join(".lock")
    }

    /// Acquires the advisory lock at `path` with bounded exponential
    /// backoff. Locks older than [`LOCK_STALE`] are presumed orphaned by a
    /// crashed holder and broken.
    fn acquire_lock(&self, path: &Path) -> Result<LockGuard, StoreError> {
        let mut waited = Duration::ZERO;
        let mut attempt: u32 = 0;
        loop {
            match fs::OpenOptions::new()
                .write(true)
                .create_new(true)
                .open(path)
            {
                Ok(_) => {
                    return Ok(LockGuard {
                        path: path.to_path_buf(),
                    })
                }
                Err(e) if e.kind() == ErrorKind::AlreadyExists => {
                    // Break locks orphaned by a crashed holder.
                    if let Ok(meta) = fs::metadata(path) {
                        let age = meta
                            .modified()
                            .ok()
                            .and_then(|m| SystemTime::now().duration_since(m).ok());
                        if age.is_some_and(|a| a > LOCK_STALE) {
                            let _ = fs::remove_file(path);
                            continue;
                        }
                    }
                    if attempt >= self.lock_policy.max_retries {
                        return Err(StoreError::Contended {
                            path: path.to_path_buf(),
                            attempts: attempt + 1,
                            waited,
                        });
                    }
                    let delay = self.lock_policy.backoff(attempt);
                    std::thread::sleep(delay);
                    waited += delay;
                    attempt += 1;
                }
                Err(e) => return Err(StoreError::io("lock", path, &e)),
            }
        }
    }

    fn lock_shard(&self, shard: usize) -> Result<LockGuard, StoreError> {
        self.acquire_lock(&self.shard_lock_path(shard))
    }

    /// Moves a pre-sharding store (flat `objects/<key>`, one root
    /// `manifest`) into the sharded layout. Runs under the root lock so
    /// concurrent openers serialize; a second opener finds nothing left to
    /// move and returns immediately.
    fn migrate_legacy_layout(&self) -> Result<(), StoreError> {
        let objects = self.root.join("objects");
        let legacy_manifest = self.root.join("manifest");
        let has_flat_objects = fs::read_dir(&objects)
            .ok()
            .into_iter()
            .flatten()
            .flatten()
            .any(|e| {
                e.file_name()
                    .to_str()
                    .is_some_and(|n| Key::from_hex(n).is_some())
            });
        if !legacy_manifest.exists() && !has_flat_objects {
            return Ok(());
        }
        let _guard = self.acquire_lock(&self.root.join(".lock"))?;
        // Move each flat object into its shard.
        let entries = fs::read_dir(&objects).map_err(|e| StoreError::io("open", &objects, &e))?;
        for entry in entries.flatten() {
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            let Some(key) = Key::from_hex(name) else {
                continue; // shard dirs, temp files, strays
            };
            let dest = self.object_path(key);
            fs::rename(entry.path(), &dest).map_err(|e| StoreError::io("open", &dest, &e))?;
        }
        // Split the root manifest into per-shard manifests, preserving the
        // relative LRU order (legacy ticks are small counters, far below
        // the wall-clock-seeded ticks new writes draw).
        if legacy_manifest.exists() {
            let mut shards: Vec<BTreeMap<Key, Entry>> =
                (0..SHARD_COUNT).map(|_| BTreeMap::new()).collect();
            for (key, entry) in read_manifest_file(&legacy_manifest) {
                shards[Self::shard_of(key)].insert(key, entry);
            }
            for (shard, manifest) in shards.iter().enumerate() {
                if manifest.is_empty() {
                    continue;
                }
                self.write_shard_manifest(shard, manifest)?;
            }
            fs::remove_file(&legacy_manifest)
                .map_err(|e| StoreError::io("open", &legacy_manifest, &e))?;
        }
        Ok(())
    }

    fn read_shard_manifest(&self, shard: usize) -> BTreeMap<Key, Entry> {
        read_manifest_file(&self.shard_manifest_path(shard))
    }

    fn write_shard_manifest(
        &self,
        shard: usize,
        manifest: &BTreeMap<Key, Entry>,
    ) -> Result<(), StoreError> {
        let mut text = String::new();
        for (key, e) in manifest {
            text.push_str(&format!(
                "{} {} {:016x} {}\n",
                key.hex(),
                e.size,
                e.checksum,
                e.tick
            ));
        }
        let tmp = self
            .shard_dir(shard)
            .join(format!(".manifest.tmp.{}", std::process::id()));
        fs::write(&tmp, text).map_err(|e| StoreError::io("put", &tmp, &e))?;
        let dest = self.shard_manifest_path(shard);
        fs::rename(&tmp, &dest).map_err(|e| StoreError::io("put", &dest, &e))
    }

    /// Updates one shard's manifest under that shard's lock.
    fn with_shard_manifest(
        &self,
        shard: usize,
        f: impl FnOnce(&mut BTreeMap<Key, Entry>),
    ) -> Result<(), StoreError> {
        let _guard = self.lock_shard(shard)?;
        let mut manifest = self.read_shard_manifest(shard);
        f(&mut manifest);
        self.write_shard_manifest(shard, &manifest)
    }

    /// Fetches the payload stored under `key`.
    ///
    /// Returns `Ok(None)` on a miss **or** on a corrupted blob (bad magic,
    /// truncation, checksum mismatch) — the damaged object is evicted and
    /// the caller recomputes. Only environmental I/O failures surface as
    /// errors.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError`] if the object exists but cannot be read for
    /// I/O reasons (permissions, hardware), or the lock cannot be taken.
    pub fn get(&self, key: Key) -> Result<Option<Vec<u8>>, StoreError> {
        let path = self.object_path(key);
        if let Some(plan) = &self.fault_plan {
            if plan.check(FaultKind::StoreRead, &key.hex()) {
                return Err(StoreError::injected("get", &path, FaultKind::StoreRead));
            }
        }
        let mut file = match fs::File::open(&path) {
            Ok(f) => f,
            Err(e) if e.kind() == ErrorKind::NotFound => {
                stats::record_miss();
                return Ok(None);
            }
            Err(e) => return Err(StoreError::io("get", &path, &e)),
        };
        let mut buf = Vec::new();
        file.read_to_end(&mut buf)
            .map_err(|e| StoreError::io("get", &path, &e))?;
        drop(file);
        if let Some(plan) = &self.fault_plan {
            // Corrupt the *read buffer*, not the file: the checksum check
            // below fails, the (intact) object is evicted, and the caller
            // recomputes — exactly the bit-rot path, deterministically.
            if !buf.is_empty() && plan.check(FaultKind::CorruptBlob, &key.hex()) {
                let last = buf.len() - 1;
                buf[last] ^= 0x01;
            }
        }
        let shard = Self::shard_of(key);
        match Self::check_blob(&buf) {
            Some(payload_range) => {
                let payload = buf[payload_range].to_vec();
                stats::record_hit(payload.len() as u64);
                // Touch the LRU tick; freshness is advisory, so lock
                // failures here must not turn a hit into an error.
                let _ = self.with_shard_manifest(shard, |m| {
                    let next = next_tick();
                    if let Some(e) = m.get_mut(&key) {
                        e.tick = next;
                    }
                });
                Ok(Some(payload))
            }
            None => {
                // Corrupted: evict and report a miss so the stage recomputes.
                let _ = fs::remove_file(&path);
                let _ = self.with_shard_manifest(shard, |m| {
                    m.remove(&key);
                });
                stats::record_corrupt();
                stats::record_miss();
                Ok(None)
            }
        }
    }

    /// Validates a raw blob; returns the payload byte range if intact.
    fn check_blob(buf: &[u8]) -> Option<core::ops::Range<usize>> {
        if buf.len() < HEADER_LEN || &buf[..4] != BLOB_MAGIC {
            return None;
        }
        let version = u16::from_le_bytes(buf[4..6].try_into().ok()?);
        if version != BLOB_VERSION {
            return None;
        }
        let len = u64::from_le_bytes(buf[6..14].try_into().ok()?) as usize;
        let sum = u64::from_le_bytes(buf[14..22].try_into().ok()?);
        let payload = buf.get(HEADER_LEN..)?;
        if payload.len() != len || checksum(payload) != sum {
            return None;
        }
        Some(HEADER_LEN..buf.len())
    }

    /// Stores `payload` under `key` (atomic temp-file + rename).
    ///
    /// # Errors
    ///
    /// Returns [`StoreError`] if the object or manifest cannot be written.
    pub fn put(&self, key: Key, payload: &[u8]) -> Result<(), StoreError> {
        let sum = checksum(payload);
        let path = self.object_path(key);
        if let Some(plan) = &self.fault_plan {
            if plan.check(FaultKind::StoreWrite, &key.hex()) {
                return Err(StoreError::injected("put", &path, FaultKind::StoreWrite));
            }
        }
        let shard = Self::shard_of(key);
        // The temp name must be unique per *put*, not per key: two threads
        // of one process racing the same key would otherwise share a temp
        // path, and the loser's rename fails NotFound after the winner's
        // rename consumes the file.
        static PUT_SERIAL: AtomicU64 = AtomicU64::new(0);
        let serial = PUT_SERIAL.fetch_add(1, Ordering::Relaxed);
        let tmp = self.shard_dir(shard).join(format!(
            ".tmp.{}.{serial}.{}",
            std::process::id(),
            key.hex()
        ));
        {
            let mut file = fs::File::create(&tmp).map_err(|e| StoreError::io("put", &tmp, &e))?;
            let mut header = Vec::with_capacity(HEADER_LEN);
            header.extend_from_slice(BLOB_MAGIC);
            header.extend_from_slice(&BLOB_VERSION.to_le_bytes());
            header.extend_from_slice(&(payload.len() as u64).to_le_bytes());
            header.extend_from_slice(&sum.to_le_bytes());
            file.write_all(&header)
                .and_then(|()| file.write_all(payload))
                .and_then(|()| file.sync_all())
                .map_err(|e| StoreError::io("put", &tmp, &e))?;
        }
        fs::rename(&tmp, &path).map_err(|e| StoreError::io("put", &path, &e))?;
        let total = (payload.len() + HEADER_LEN) as u64;
        self.with_shard_manifest(shard, |m| {
            m.insert(
                key,
                Entry {
                    size: total,
                    checksum: sum,
                    tick: next_tick(),
                },
            );
        })?;
        stats::record_write(payload.len() as u64);
        Ok(())
    }

    /// Number of objects and total bytes currently indexed, summed over
    /// every shard.
    pub fn usage(&self) -> (usize, u64) {
        self.usage_by_shard()
            .iter()
            .fold((0, 0), |(n, b), s| (n + s.objects, b + s.bytes))
    }

    /// Per-shard object counts and byte totals (advisory: read without
    /// locks, like `usage`).
    pub fn usage_by_shard(&self) -> Vec<ShardUsage> {
        (0..SHARD_COUNT)
            .map(|shard| {
                let manifest = self.read_shard_manifest(shard);
                ShardUsage {
                    shard,
                    objects: manifest.len(),
                    bytes: manifest.values().map(|e| e.size).sum(),
                }
            })
            .collect()
    }

    /// Evicts least-recently-used objects until the store holds at most
    /// `max_bytes`. Returns the number of objects evicted.
    ///
    /// Victims are chosen from an advisory cross-shard read of every
    /// manifest, then evicted shard by shard — holding only the lock of
    /// the shard currently being collected, so readers and writers of
    /// other shards proceed. Objects touched between selection and
    /// eviction may be evicted anyway (LRU freshness is advisory); the
    /// next run recomputes them.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError`] if a shard lock cannot be taken or a
    /// manifest cannot be rewritten.
    pub fn gc(&self, max_bytes: u64) -> Result<usize, StoreError> {
        let mut order: Vec<(u64, Key, u64)> = Vec::new();
        let mut total: u64 = 0;
        for shard in 0..SHARD_COUNT {
            for (key, e) in self.read_shard_manifest(shard) {
                order.push((e.tick, key, e.size));
                total += e.size;
            }
        }
        order.sort_unstable();
        let mut victims: Vec<Vec<Key>> = (0..SHARD_COUNT).map(|_| Vec::new()).collect();
        for (_, key, size) in &order {
            if total <= max_bytes {
                break;
            }
            total = total.saturating_sub(*size);
            victims[Self::shard_of(*key)].push(*key);
        }
        let mut evicted = 0;
        for (shard, keys) in victims.iter().enumerate() {
            if keys.is_empty() {
                continue;
            }
            let _guard = self.lock_shard(shard)?;
            let mut manifest = self.read_shard_manifest(shard);
            for key in keys {
                if manifest.remove(key).is_some() {
                    let _ = fs::remove_file(self.object_path(*key));
                    evicted += 1;
                }
            }
            self.write_shard_manifest(shard, &manifest)?;
        }
        Ok(evicted)
    }

    /// Re-checksums every object on disk across all shards; returns
    /// `(intact, corrupt)` counts. Corrupt objects are left in place (use
    /// [`ArtifactStore::get`] or `gc` to evict).
    ///
    /// # Errors
    ///
    /// Returns [`StoreError`] if a shard directory cannot be listed.
    pub fn verify(&self) -> Result<(usize, usize), StoreError> {
        let (mut intact, mut corrupt) = (0, 0);
        for shard in 0..SHARD_COUNT {
            let dir = self.shard_dir(shard);
            let entries = fs::read_dir(&dir).map_err(|e| StoreError::io("verify", &dir, &e))?;
            for entry in entries.flatten() {
                let name = entry.file_name();
                let Some(name) = name.to_str() else { continue };
                if Key::from_hex(name).is_none() {
                    continue; // manifest, lock, temp files, strays
                }
                match fs::read(entry.path()) {
                    Ok(buf) if Self::check_blob(&buf).is_some() => intact += 1,
                    _ => corrupt += 1,
                }
            }
        }
        Ok((intact, corrupt))
    }
}

/// Best-effort manifest parse: the manifest is advisory (LRU order +
/// stats), so damage to it must never fail the store.
fn read_manifest_file(path: &Path) -> BTreeMap<Key, Entry> {
    let mut out = BTreeMap::new();
    let Ok(text) = fs::read_to_string(path) else {
        return out;
    };
    for line in text.lines() {
        let mut parts = line.split_whitespace();
        let (Some(hex), Some(size), Some(sum), Some(tick)) =
            (parts.next(), parts.next(), parts.next(), parts.next())
        else {
            continue;
        };
        let (Some(key), Ok(size), Ok(sum), Ok(tick)) = (
            Key::from_hex(hex),
            size.parse::<u64>(),
            u64::from_str_radix(sum, 16),
            tick.parse::<u64>(),
        ) else {
            continue;
        };
        out.insert(
            key,
            Entry {
                size,
                checksum: sum,
                tick,
            },
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fingerprint::Fingerprinter;

    fn temp_store(tag: &str) -> ArtifactStore {
        let dir =
            std::env::temp_dir().join(format!("hifi-store-test-{}-{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        ArtifactStore::open(&dir).expect("open store")
    }

    fn key_of(s: &str) -> Key {
        Fingerprinter::new().str(s).finish()
    }

    #[test]
    fn put_get_round_trips() {
        let store = temp_store("roundtrip");
        let key = key_of("alpha");
        assert_eq!(store.get(key).expect("get"), None);
        store.put(key, b"payload bytes").expect("put");
        assert_eq!(
            store.get(key).expect("get").as_deref(),
            Some(&b"payload bytes"[..])
        );
        let (n, bytes) = store.usage();
        assert_eq!(n, 1);
        assert!(bytes > b"payload bytes".len() as u64);
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn objects_land_in_their_leading_nibble_shard() {
        let store = temp_store("shard-paths");
        for i in 0..64 {
            let key = key_of(&format!("spread-{i}"));
            store.put(key, &[i as u8; 16]).expect("put");
            let shard = (key.parts().0 >> 60) as usize;
            let expected = store
                .root()
                .join("objects")
                .join(format!("{shard:x}"))
                .join(key.hex());
            assert!(expected.is_file(), "object must live in shard {shard:x}");
        }
        // 64 uniform keys cover more than one shard with overwhelming odds.
        let populated = store
            .usage_by_shard()
            .iter()
            .filter(|s| s.objects > 0)
            .count();
        assert!(populated > 1, "keys must spread across shards");
        assert_eq!(store.usage().0, 64);
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn usage_by_shard_sums_to_global_usage() {
        let store = temp_store("shard-usage");
        for i in 0..32 {
            store
                .put(key_of(&format!("u-{i}")), &[7u8; 32])
                .expect("put");
        }
        let by_shard = store.usage_by_shard();
        assert_eq!(by_shard.len(), SHARD_COUNT);
        let n: usize = by_shard.iter().map(|s| s.objects).sum();
        let bytes: u64 = by_shard.iter().map(|s| s.bytes).sum();
        assert_eq!((n, bytes), store.usage());
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn legacy_flat_layout_is_migrated_on_open() {
        let dir = std::env::temp_dir().join(format!(
            "hifi-store-test-{}-legacy-migrate",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        // Build the store through the current API, then flatten it back
        // into the legacy layout: objects directly under objects/, one
        // root manifest.
        let store = ArtifactStore::open(&dir).expect("open");
        let keys: Vec<Key> = (0..16).map(|i| key_of(&format!("legacy-{i}"))).collect();
        for (i, key) in keys.iter().enumerate() {
            store.put(*key, &[i as u8; 24]).expect("put");
        }
        let mut legacy_manifest = String::new();
        for shard in 0..SHARD_COUNT {
            let manifest = store.shard_manifest_path(shard);
            if let Ok(text) = fs::read_to_string(&manifest) {
                legacy_manifest.push_str(&text);
                fs::remove_file(&manifest).expect("drop shard manifest");
            }
            for entry in fs::read_dir(store.shard_dir(shard))
                .expect("list")
                .flatten()
            {
                let name = entry.file_name();
                if name.to_str().and_then(Key::from_hex).is_some() {
                    fs::rename(entry.path(), dir.join("objects").join(name)).expect("flatten");
                }
            }
        }
        fs::write(dir.join("manifest"), legacy_manifest).expect("root manifest");

        // Re-opening migrates: flat objects move into shards, the root
        // manifest splits, and every object reads back.
        let migrated = ArtifactStore::open(&dir).expect("open migrates");
        assert!(!dir.join("manifest").exists(), "root manifest consumed");
        assert_eq!(migrated.usage().0, keys.len());
        for (i, key) in keys.iter().enumerate() {
            assert_eq!(
                migrated.get(*key).expect("get").as_deref(),
                Some(&[i as u8; 24][..]),
                "key {i} must survive migration"
            );
            assert!(migrated.object_path(*key).is_file());
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupted_blob_reads_as_miss_and_is_evicted() {
        let store = temp_store("corrupt");
        let key = key_of("beta");
        store.put(key, b"precious data").expect("put");
        let path = store.object_path(key);
        let mut raw = fs::read(&path).expect("read blob");
        let last = raw.len() - 1;
        raw[last] ^= 0x01; // flip one payload byte
        fs::write(&path, &raw).expect("rewrite blob");
        assert_eq!(store.get(key).expect("get"), None, "corrupt blob must miss");
        assert!(!path.exists(), "corrupt blob must be evicted");
        // The store recovers: a re-put works and reads back.
        store.put(key, b"precious data").expect("re-put");
        assert!(store.get(key).expect("get").is_some());
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn truncated_and_empty_blobs_miss_without_panic() {
        let store = temp_store("truncate");
        let key = key_of("gamma");
        store.put(key, b"0123456789").expect("put");
        let path = store.object_path(key);
        let raw = fs::read(&path).expect("read");
        fs::write(&path, &raw[..HEADER_LEN / 2]).expect("truncate");
        assert_eq!(store.get(key).expect("get"), None);
        store.put(key, b"x").expect("put");
        fs::write(store.object_path(key), b"").expect("empty");
        assert_eq!(store.get(key).expect("get"), None);
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn gc_evicts_least_recently_used_first() {
        let store = temp_store("gc");
        let (a, b, c) = (key_of("a"), key_of("b"), key_of("c"));
        store.put(a, &[1u8; 100]).expect("put a");
        store.put(b, &[2u8; 100]).expect("put b");
        store.put(c, &[3u8; 100]).expect("put c");
        // Touch `a` so `b` becomes the coldest entry. Ticks are globally
        // comparable even though a, b, c hash into different shards.
        assert!(store.get(a).expect("get a").is_some());
        let (_, total) = store.usage();
        let evicted = store.gc(total - 1).expect("gc");
        assert_eq!(evicted, 1);
        assert_eq!(store.get(b).expect("get b"), None, "coldest entry evicted");
        assert!(store.get(a).expect("get a").is_some());
        assert!(store.get(c).expect("get c").is_some());
        assert_eq!(store.gc(0).expect("gc all"), 2);
        assert_eq!(store.usage().0, 0);
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn gc_holds_only_the_lock_of_the_shard_being_collected() {
        let store = temp_store("gc-shard-lock");
        let key = key_of("lonely");
        store.put(key, &[9u8; 64]).expect("put");
        let victim_shard = ArtifactStore::shard_of(key);
        // Plant fresh locks on every *other* shard: if gc took them, it
        // would burn its whole backoff budget and return Contended.
        let mut planted = Vec::new();
        for shard in 0..SHARD_COUNT {
            if shard != victim_shard {
                let path = store.shard_lock_path(shard);
                fs::write(&path, b"").expect("plant lock");
                planted.push(path);
            }
        }
        let quick = store.clone().with_lock_policy(RetryPolicy {
            max_retries: 2,
            base_delay: Duration::from_millis(1),
            multiplier: 2.0,
            max_delay: Duration::from_millis(4),
        });
        assert_eq!(quick.gc(0).expect("gc touches only the victim shard"), 1);
        assert_eq!(store.usage().0, 0);
        for path in planted {
            let _ = fs::remove_file(path);
        }
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn verify_counts_intact_and_corrupt() {
        let store = temp_store("verify");
        store.put(key_of("one"), b"one").expect("put");
        store.put(key_of("two"), b"two").expect("put");
        assert_eq!(store.verify().expect("verify"), (2, 0));
        let path = store.object_path(key_of("two"));
        let mut raw = fs::read(&path).expect("read");
        raw[HEADER_LEN] ^= 0xff;
        fs::write(&path, raw).expect("corrupt");
        assert_eq!(store.verify().expect("verify"), (1, 1));
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn concurrent_writers_do_not_corrupt_the_store() {
        let store = temp_store("concurrent");
        let n_threads = 4;
        let per_thread = 8;
        std::thread::scope(|scope| {
            for t in 0..n_threads {
                let store = store.clone();
                scope.spawn(move || {
                    for i in 0..per_thread {
                        let key = key_of(&format!("obj-{t}-{i}"));
                        let payload = vec![t as u8; 64 + i];
                        store.put(key, &payload).expect("put");
                        assert_eq!(store.get(key).expect("get").as_deref(), Some(&payload[..]));
                    }
                });
            }
        });
        let (n, _) = store.usage();
        assert_eq!(n, n_threads * per_thread);
        assert_eq!(store.verify().expect("verify"), (n_threads * per_thread, 0));
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn injected_store_faults_are_transient_and_clear_on_retry() {
        use hifi_faults::FaultSpec;
        let spec = FaultSpec::disabled()
            .with_rate(FaultKind::StoreWrite, 1.0)
            .with_rate(FaultKind::StoreRead, 1.0)
            .with_max_consecutive(1);
        let plan = Arc::new(FaultPlan::new(spec));
        let store = temp_store("inject-rw").with_fault_plan(plan.clone());
        let key = key_of("epsilon");
        let err = store.put(key, b"x").expect_err("first put injected");
        assert!(err.is_transient(), "{err}");
        store.put(key, b"x").expect("second put clears");
        let err = store.get(key).expect_err("first get injected");
        assert!(err.is_transient(), "{err}");
        assert_eq!(store.get(key).expect("get").as_deref(), Some(&b"x"[..]));
        assert_eq!(plan.tally().injected, 2);
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn injected_corruption_misses_then_recovers_via_reput() {
        use hifi_faults::FaultSpec;
        let spec = FaultSpec::disabled()
            .with_rate(FaultKind::CorruptBlob, 1.0)
            .with_max_consecutive(1);
        let store = temp_store("inject-corrupt").with_fault_plan(Arc::new(FaultPlan::new(spec)));
        let key = key_of("zeta");
        store.put(key, b"artifact").expect("put");
        // The read buffer is corrupted in memory; checksum fails, the
        // object is evicted, the caller sees a plain miss.
        assert_eq!(store.get(key).expect("get"), None);
        assert!(!store.object_path(key).exists());
        // The recompute-and-re-put path restores service; the corruption
        // site has walked past `max_consecutive`, so the next read is clean.
        store.put(key, b"artifact").expect("re-put");
        assert_eq!(
            store.get(key).expect("get").as_deref(),
            Some(&b"artifact"[..])
        );
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn real_io_errors_are_not_transient() {
        let e = StoreError::io(
            "get",
            Path::new("/nope"),
            &std::io::Error::new(ErrorKind::PermissionDenied, "denied"),
        );
        assert!(!e.is_transient());
    }

    #[test]
    fn waiting_writer_proceeds_once_lock_is_released() {
        let store = temp_store("held-lock");
        let key = key_of("delta");
        let lock_path = store.shard_lock_path(ArtifactStore::shard_of(key));
        fs::write(&lock_path, b"").expect("plant lock");
        let planted = lock_path.clone();
        let dropper = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(50));
            let _ = fs::remove_file(&planted);
        });
        store.put(key, b"waits for lock").expect("put");
        dropper.join().expect("join");
        assert!(store.get(key).expect("get").is_some());
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn exhausted_lock_budget_surfaces_typed_contended_error() {
        let key = key_of("eta");
        let store = temp_store("contended").with_lock_policy(RetryPolicy {
            max_retries: 2,
            base_delay: Duration::from_millis(1),
            multiplier: 2.0,
            max_delay: Duration::from_millis(4),
        });
        let lock_path = store.shard_lock_path(ArtifactStore::shard_of(key));
        fs::write(&lock_path, b"").expect("plant lock");
        let err = store.put(key, b"never lands").expect_err("budget runs out");
        match &err {
            StoreError::Contended {
                path,
                attempts,
                waited,
            } => {
                assert_eq!(path, &lock_path);
                assert_eq!(*attempts, 3, "initial try + 2 retries");
                assert_eq!(*waited, Duration::from_millis(1 + 2));
            }
            other => panic!("expected Contended, got {other:?}"),
        }
        assert!(
            err.is_transient(),
            "contention clears when the holder exits"
        );
        assert!(err.is_contended());
        assert_eq!(err.op(), "lock");
        // Once the stuck lock clears, the same store works again.
        fs::remove_file(&lock_path).expect("unstick");
        store.put(key, b"lands now").expect("put");
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn stale_locks_are_broken_not_waited_on() {
        // A lock whose mtime is older than LOCK_STALE is orphaned; the
        // acquirer breaks it instead of burning its backoff budget. Aging
        // a file's mtime portably requires filetime juggling, so instead
        // assert the cheap invariant: a *fresh* lock is NOT broken.
        let store = temp_store("stale").with_lock_policy(RetryPolicy {
            max_retries: 1,
            base_delay: Duration::from_millis(1),
            multiplier: 2.0,
            max_delay: Duration::from_millis(2),
        });
        let key = key_of("theta");
        let lock_path = store.shard_lock_path(ArtifactStore::shard_of(key));
        fs::write(&lock_path, b"").expect("plant fresh lock");
        let err = store.put(key, b"x").expect_err("fresh lock holds");
        assert!(err.is_contended(), "fresh locks are respected: {err}");
        assert!(lock_path.exists(), "fresh lock must not be broken");
        let _ = fs::remove_file(&lock_path);
        let _ = fs::remove_dir_all(store.root());
    }
}
