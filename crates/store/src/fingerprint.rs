//! Stable content fingerprints for cache keys.
//!
//! A cache key must be a pure function of everything that can change a
//! stage's output: the canonical encoding of its configuration, the key of
//! the stage that feeds it, and a per-stage *code-version salt* that is
//! bumped whenever the stage's implementation changes behaviour. Keys are
//! 128 bits: two independent 64-bit FNV-1a streams over the same canonical
//! bytes (the vendored `fnv` hasher is fully specified, so keys are stable
//! across platforms, processes and runs).

use std::hash::Hasher;

use hifi_imaging::{DetectorKind, ImagingConfig};
use hifi_synth::SaRegionSpec;

/// Per-stage code-version salts. Bump a salt when the corresponding
/// stage's implementation changes output for the same inputs — old cache
/// entries then simply miss instead of serving stale artifacts.
pub mod salts {
    /// `SaRegion::voxelize` over a generated region.
    pub const VOXELIZE: u64 = 0x564f_5831; // "VOX" v1
    /// `hifi_imaging::acquire` (stack + drift truth).
    pub const ACQUIRE: u64 = 0x4143_5131; // "ACQ" v1
    /// Post-processing: normalize + align + denoise (stack + corrections).
    pub const POSTPROC: u64 = 0x504f_5331; // "POS" v1
    /// `hifi_imaging::reconstruct` of the processed stack.
    pub const RECONSTRUCT: u64 = 0x5245_4331; // "REC" v1
    /// Crop + `hifi_extract::extract` + `measure` over the window.
    pub const EXTRACT: u64 = 0x4558_5431; // "EXT" v1
}

/// A 128-bit content fingerprint, used as the on-disk object address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Key {
    hi: u64,
    lo: u64,
}

impl Key {
    /// Rebuilds a key from its two halves (manifest parsing).
    pub fn from_parts(hi: u64, lo: u64) -> Self {
        Self { hi, lo }
    }

    /// The two 64-bit halves.
    pub fn parts(&self) -> (u64, u64) {
        (self.hi, self.lo)
    }

    /// The 32-character lowercase hex form used as the object file name.
    pub fn hex(&self) -> String {
        format!("{:016x}{:016x}", self.hi, self.lo)
    }

    /// Parses the [`Key::hex`] form.
    pub fn from_hex(s: &str) -> Option<Self> {
        if s.len() != 32 || !s.bytes().all(|b| b.is_ascii_hexdigit()) {
            return None;
        }
        let hi = u64::from_str_radix(&s[..16], 16).ok()?;
        let lo = u64::from_str_radix(&s[16..], 16).ok()?;
        Some(Self { hi, lo })
    }
}

impl core::fmt::Display for Key {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(&self.hex())
    }
}

/// Incremental fingerprint builder: a canonical, type-tagged byte encoding
/// fed to two independent FNV-1a streams.
///
/// Every write is prefixed with a one-byte type tag so that adjacent
/// fields cannot alias (`("ab", "c")` vs `("a", "bc")`, or an `f64` that
/// happens to share bits with a length). Floats are written as IEEE-754
/// bit patterns — fingerprinting is exact, not approximate.
#[derive(Debug, Clone)]
pub struct Fingerprinter {
    a: fnv::FnvHasher,
    b: fnv::FnvHasher,
}

impl Default for Fingerprinter {
    fn default() -> Self {
        Self::new()
    }
}

/// Second-stream key: an arbitrary odd constant so the `b` stream is
/// independent of the standard offset basis used by `a`.
const STREAM_B_BASIS: u64 = 0x9e37_79b9_7f4a_7c15;

impl Fingerprinter {
    /// Starts an empty fingerprint.
    pub fn new() -> Self {
        Self {
            a: fnv::FnvHasher::default(),
            b: fnv::FnvHasher::with_key(STREAM_B_BASIS),
        }
    }

    fn raw(&mut self, tag: u8, bytes: &[u8]) {
        self.a.write(&[tag]);
        self.a.write(bytes);
        self.b.write(&[tag]);
        self.b.write(bytes);
    }

    /// Feeds an unsigned integer.
    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.raw(b'u', &v.to_le_bytes());
        self
    }

    /// Feeds a signed integer.
    pub fn i64(&mut self, v: i64) -> &mut Self {
        self.raw(b'i', &v.to_le_bytes());
        self
    }

    /// Feeds a float as its exact bit pattern.
    pub fn f64(&mut self, v: f64) -> &mut Self {
        self.raw(b'f', &v.to_bits().to_le_bytes());
        self
    }

    /// Feeds a boolean.
    pub fn bool(&mut self, v: bool) -> &mut Self {
        self.raw(b'b', &[u8::from(v)]);
        self
    }

    /// Feeds a string (length-prefixed by the tag protocol).
    pub fn str(&mut self, s: &str) -> &mut Self {
        self.u64(s.len() as u64);
        self.raw(b's', s.as_bytes());
        self
    }

    /// Feeds an upstream key, chaining this stage onto its input.
    pub fn key(&mut self, k: Key) -> &mut Self {
        self.raw(b'k', &k.hi.to_le_bytes());
        self.raw(b'k', &k.lo.to_le_bytes());
        self
    }

    /// Finishes the fingerprint.
    pub fn finish(&self) -> Key {
        Key {
            hi: self.a.finish(),
            lo: self.b.finish(),
        }
    }
}

/// Canonical fingerprint of a generator spec (every field that shapes the
/// voxelised region, including all per-class transistor dimensions).
pub fn spec_fingerprint(spec: &SaRegionSpec) -> Key {
    let mut f = Fingerprinter::new();
    f.str("SaRegionSpec.v1");
    f.str(spec.topology.name());
    for dims in [
        spec.dims.nsa,
        spec.dims.psa,
        spec.dims.precharge,
        spec.dims.equalizer,
        spec.dims.column,
        spec.dims.isolation,
        spec.dims.offset_cancel,
    ] {
        f.f64(dims.width.value()).f64(dims.length.value());
    }
    f.u64(spec.n_pairs as u64)
        .f64(spec.voxel_nm)
        .i64(spec.transition_nm)
        .bool(spec.include_mat)
        .i64(spec.mat_length_nm);
    f.finish()
}

/// Canonical fingerprint of an imaging configuration.
pub fn imaging_fingerprint(cfg: &ImagingConfig) -> Key {
    let mut f = Fingerprinter::new();
    f.str("ImagingConfig.v1");
    f.u64(match cfg.detector {
        DetectorKind::Se => 0,
        DetectorKind::Bse => 1,
    })
    .f64(cfg.dwell_us)
    .f64(cfg.drift_sigma_px)
    .f64(cfg.brightness_wander)
    .u64(cfg.slice_voxels as u64)
    .u64(cfg.seed)
    .u64(cfg.frame_margin_px as u64);
    f.finish()
}

/// Canonical fingerprint of a fault spec. Pipelines running under an
/// *enabled* fault plan salt their root stage key with this, so artifacts
/// produced under injection (possibly degraded) can never be served to a
/// fault-free run of the same configuration — and vice versa.
pub fn fault_fingerprint(spec: &hifi_faults::FaultSpec) -> Key {
    let mut f = Fingerprinter::new();
    f.str("FaultSpec.v1");
    f.u64(spec.seed);
    for kind in hifi_faults::FaultKind::ALL {
        f.f64(spec.rate(kind));
    }
    f.u64(u64::from(spec.max_consecutive));
    f.finish()
}

/// Chains a stage onto its upstream: `stage_key = H(salt ‖ upstream ‖ extras)`.
/// Call `.finish()` on the returned builder after feeding any stage-local
/// parameters (denoise strength, window index, …).
pub fn stage(salt: u64, upstream: Key) -> Fingerprinter {
    let mut f = Fingerprinter::new();
    f.u64(salt).key(upstream);
    f
}

#[cfg(test)]
mod tests {
    use super::*;
    use hifi_circuit::topology::SaTopologyKind;

    #[test]
    fn hex_round_trips() {
        let k = Fingerprinter::new().str("x").finish();
        assert_eq!(Key::from_hex(&k.hex()), Some(k));
        assert_eq!(k.hex().len(), 32);
        assert_eq!(Key::from_hex("nope"), None);
        assert_eq!(Key::from_hex(&"g".repeat(32)), None);
        let (hi, lo) = k.parts();
        assert_eq!(Key::from_parts(hi, lo), k);
    }

    #[test]
    fn fingerprints_are_stable_across_calls() {
        let spec = SaRegionSpec::new(SaTopologyKind::Classic);
        assert_eq!(spec_fingerprint(&spec), spec_fingerprint(&spec));
        let img = ImagingConfig::default();
        assert_eq!(imaging_fingerprint(&img), imaging_fingerprint(&img));
    }

    #[test]
    fn any_spec_field_changes_the_key() {
        let base = SaRegionSpec::new(SaTopologyKind::Classic);
        let k0 = spec_fingerprint(&base);
        let variants = [
            SaRegionSpec::new(SaTopologyKind::OffsetCancellation),
            base.clone().with_pairs(3),
            base.clone().with_voxel_nm(5.0),
            base.clone().with_transition_nm(275),
            base.clone().with_mat_strip(true),
        ];
        for (i, v) in variants.iter().enumerate() {
            assert_ne!(spec_fingerprint(v), k0, "variant {i} collided");
        }
    }

    #[test]
    fn any_imaging_field_changes_the_key() {
        let base = ImagingConfig::default();
        let k0 = imaging_fingerprint(&base);
        let variants = [
            ImagingConfig {
                detector: DetectorKind::Se,
                ..base.clone()
            },
            ImagingConfig {
                dwell_us: 3.0,
                ..base.clone()
            },
            ImagingConfig {
                drift_sigma_px: 0.0,
                ..base.clone()
            },
            ImagingConfig {
                seed: 1,
                ..base.clone()
            },
            ImagingConfig {
                slice_voxels: 2,
                ..base.clone()
            },
            ImagingConfig {
                frame_margin_px: 0,
                ..base.clone()
            },
        ];
        for (i, v) in variants.iter().enumerate() {
            assert_ne!(imaging_fingerprint(v), k0, "variant {i} collided");
        }
    }

    #[test]
    fn chaining_differs_by_salt_and_upstream() {
        let up1 = Fingerprinter::new().str("a").finish();
        let up2 = Fingerprinter::new().str("b").finish();
        assert_ne!(stage(1, up1).finish(), stage(2, up1).finish());
        assert_ne!(stage(1, up1).finish(), stage(1, up2).finish());
        // Stage-local params fold in after the chain.
        assert_ne!(
            stage(1, up1).f64(2.0).finish(),
            stage(1, up1).f64(3.0).finish()
        );
    }

    #[test]
    fn any_fault_spec_field_changes_the_key() {
        use hifi_faults::{FaultKind, FaultSpec};
        let base = FaultSpec::uniform(7, 0.1);
        let k0 = fault_fingerprint(&base);
        assert_eq!(k0, fault_fingerprint(&base), "must be stable");
        let variants = [
            base.clone().with_seed(8),
            base.clone().with_rate(FaultKind::CorruptBlob, 0.2),
            base.clone().with_max_consecutive(3),
        ];
        for (i, v) in variants.iter().enumerate() {
            assert_ne!(fault_fingerprint(v), k0, "variant {i} collided");
        }
    }

    #[test]
    fn adjacent_fields_do_not_alias() {
        let ab = Fingerprinter::new().str("ab").str("c").finish();
        let a_bc = Fingerprinter::new().str("a").str("bc").finish();
        assert_ne!(ab, a_bc);
    }
}
