//! Property tests for the artifact codecs: round trips must be
//! bit-identical for arbitrary valid inputs (including empty stacks and
//! device-free netlists), and arbitrarily damaged blobs must decode to an
//! error — never a panic — so the store can fall back to recompute.

use proptest::prelude::*;

use hifi_circuit::{NetId, Netlist, Polarity, TransistorClass, TransistorDims};
use hifi_geometry::LayerStack;
use hifi_imaging::{DetectorKind, DriftTruth, ImageStack, SemImage};
use hifi_store::codec;
use hifi_synth::MaterialVolume;
use hifi_units::{Femtofarads, Nanometers};

/// Builds a valid volume from arbitrary bytes by cycling them through the
/// 8-value material alphabet.
fn volume_from(nx: usize, ny: usize, nz: usize, voxel_nm: f64, seed: &[u8]) -> MaterialVolume {
    let data: Vec<u8> = (0..nx * ny * nz)
        .map(|i| seed.get(i % seed.len().max(1)).copied().unwrap_or(0) % 8)
        .collect();
    MaterialVolume::from_raw(nx, ny, nz, voxel_nm, LayerStack::default_dram(), data)
        .expect("constructed volume is valid")
}

fn stack_from(n_slices: usize, ny: usize, nz: usize, pixels: &[f32], margin: usize) -> ImageStack {
    let slices = (0..n_slices)
        .map(|s| {
            let mut img = SemImage::filled(ny, nz, 0.0);
            for (i, p) in img.pixels_mut().iter_mut().enumerate() {
                *p = pixels
                    .get((s + i) % pixels.len().max(1))
                    .copied()
                    .unwrap_or(0.25);
            }
            img
        })
        .collect();
    ImageStack::from_slices(slices, 4.5, 2, DetectorKind::Bse).with_frame_margin(margin)
}

proptest! {
    #[test]
    fn volume_round_trips_for_arbitrary_contents(
        nx in 1usize..8,
        ny in 1usize..8,
        nz in 1usize..6,
        voxel_nm in 0.5f64..25.0,
        seed in prop::collection::vec(any::<u8>(), 1..200),
    ) {
        let v = volume_from(nx, ny, nz, voxel_nm, &seed);
        let decoded = codec::decode_volume(&codec::encode_volume(&v));
        prop_assert_eq!(decoded.as_ref(), Ok(&v));
    }

    /// Slice counts and dimensions include zero: the empty-stack edge case
    /// is part of the property's domain, not a separate special case.
    #[test]
    fn acquisition_round_trips_including_empty(
        n_slices in 0usize..4,
        ny in 0usize..6,
        nz in 0usize..6,
        margin in 0usize..4,
        pixels in prop::collection::vec(-1.0e3f32..1.0e3, 1..64),
        shifts in prop::collection::vec((-4i32..4, -4i32..4), 0..4),
        brightness in prop::collection::vec(-2.0f64..2.0, 0..4),
    ) {
        let stack = stack_from(n_slices, ny, nz, &pixels, margin);
        let truth = DriftTruth { shifts: shifts.clone(), brightness };
        let degraded: Vec<usize> = (0..stack.len()).step_by(2).collect();
        let blob = codec::encode_acquisition(&stack, &truth, &degraded);
        let (s2, t2, d2) = codec::decode_acquisition(&blob).expect("round trip");
        prop_assert_eq!(&s2, &stack);
        prop_assert_eq!(s2.frame_margin_px(), stack.frame_margin_px());
        prop_assert_eq!(t2, truth);
        prop_assert_eq!(d2, degraded);

        let blob = codec::encode_processed(&stack, &shifts);
        let (s3, c3) = codec::decode_processed(&blob).expect("round trip");
        prop_assert_eq!(s3, stack);
        prop_assert_eq!(c3, shifts);
    }

    /// Device counts include zero: a nets-only netlist round trips too.
    #[test]
    fn netlist_round_trips_for_arbitrary_graphs(
        n_nets in 1usize..6,
        mosfets in prop::collection::vec(
            (0u8..9, any::<bool>(), 1.0f64..900.0, 1.0f64..900.0, any::<u8>(), any::<u8>(), any::<u8>()),
            0..6,
        ),
        caps in prop::collection::vec((0.1f64..50.0, any::<u8>(), any::<u8>()), 0..3),
    ) {
        let mut nl = Netlist::new("prop");
        for i in 0..n_nets {
            nl.add_net(format!("net{i}"));
        }
        let net = |raw: u8| NetId(raw as usize % n_nets);
        for (i, &(class, nmos, w, l, g, s, d)) in mosfets.iter().enumerate() {
            nl.add_mosfet(
                format!("m{i}"),
                if nmos { Polarity::Nmos } else { Polarity::Pmos },
                TransistorClass::ALL[class as usize],
                TransistorDims::new(Nanometers(w), Nanometers(l)),
                net(g),
                net(s),
                net(d),
            );
        }
        for (i, &(ff, a, b)) in caps.iter().enumerate() {
            nl.add_capacitor(format!("c{i}"), Femtofarads(ff), net(a), net(b));
        }
        let decoded = codec::decode_netlist(&codec::encode_netlist(&nl));
        prop_assert_eq!(decoded.as_ref(), Ok(&nl));
    }

    /// A single flipped byte anywhere in a volume blob must yield a clean
    /// decode result (an error, or — if the flip lands in padding that the
    /// format tolerates — a volume), never a panic or runaway allocation.
    #[test]
    fn flipped_byte_decodes_cleanly(
        nx in 1usize..6,
        ny in 1usize..6,
        nz in 1usize..4,
        seed in prop::collection::vec(any::<u8>(), 1..64),
        pos in any::<u64>(),
        flip in 1u8..=255,
    ) {
        let v = volume_from(nx, ny, nz, 6.0, &seed);
        let mut blob = codec::encode_volume(&v);
        let idx = (pos % blob.len() as u64) as usize;
        blob[idx] ^= flip;
        let _ = codec::decode_volume(&blob);
    }
}
