//! Netlist extraction: channels, source/drain splitting, via tracing.

use crate::components::{label_components, overlapping_labels};
use crate::slabs::{project_layer, Slab};
use crate::ExtractError;
use hifi_circuit::{DeviceId, Netlist, Polarity, TransistorClass, TransistorDims};
use hifi_geometry::Layer;
use hifi_synth::MaterialVolume;
use hifi_units::Nanometers;

/// One recognised transistor with extraction metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct ExtractedDevice {
    /// Index into the extracted netlist.
    pub device: DeviceId,
    /// Measured drawn dimensions (W from gate∩active extent, L from the
    /// source–drain pitch).
    pub dims: TransistorDims,
    /// Channel bounding box in grid cells `(x0, y0, x1, y1)`.
    pub channel_bbox: (usize, usize, usize, usize),
    /// Fraction of the full grid height the gate component spans — ≈1.0 for
    /// the region-spanning common gates of Section V-C.
    pub gate_y_span_fraction: f64,
    /// Functional class once classified.
    pub class: Option<TransistorClass>,
}

/// The result of netlist extraction.
#[derive(Debug, Clone)]
pub struct Extraction {
    /// The extracted netlist (classes/polarities are refined by
    /// [`crate::classify`]).
    pub netlist: Netlist,
    /// Per-transistor extraction metadata, aligned with netlist device ids.
    pub devices: Vec<ExtractedDevice>,
    /// Grid width (voxels).
    pub nx: usize,
    /// Grid height (voxels).
    pub ny: usize,
    /// Voxel edge (nm).
    pub voxel_nm: f64,
}

#[derive(Debug)]
struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        Self {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[ra] = rb;
        }
    }
}

/// Extracts the netlist from a material volume (no classification yet).
///
/// # Errors
///
/// Returns [`ExtractError::NoTransistors`] when no gate∩active overlap
/// exists (or every candidate was filtered as reconstruction debris), and
/// [`ExtractError::MalformedChannel`] when a channel is partially
/// connected — several substantial gates, or exactly one substantial
/// diffusion neighbour. Channels bordering *no* substantial gate or
/// diffusion at all are treated as debris and skipped, not errored.
pub fn extract_netlist(volume: &MaterialVolume) -> Result<Extraction, ExtractError> {
    extract_netlist_with(volume, &mut hifi_telemetry::NoopRecorder)
}

/// [`extract_netlist`] with instrumentation (see
/// [`crate::extract_with`] for the recorded counter names).
///
/// # Errors
///
/// Same as [`extract_netlist`].
pub fn extract_netlist_with<R: hifi_telemetry::Recorder>(
    volume: &MaterialVolume,
    rec: &mut R,
) -> Result<Extraction, ExtractError> {
    let (nx, ny, _) = volume.dims();
    let voxel = volume.voxel_nm();

    // Closing bridges small reconstruction gaps in the conducting layers;
    // active/gate stay raw so channel geometry (the measurement target)
    // is not distorted.
    let close = crate::slabs::close_unit;
    let active = project_layer(volume, Layer::Active);
    let gate = project_layer(volume, Layer::Gate);
    let contact = close(&project_layer(volume, Layer::Contact));
    let m1 = close(&project_layer(volume, Layer::Metal1));
    let via = close(&project_layer(volume, Layer::Via1));
    let m2 = close(&project_layer(volume, Layer::Metal2));

    // Channels are where gates cross active; removing them splits diffusion
    // into source/drain islands (the paper's step iii: "To correctly
    // identify transistors, we include active regions in the analysis").
    let channel: Slab = gate.intersect(&active);
    let sd: Slab = active.subtract(&channel);

    let gates = label_components(&gate);
    let sds = label_components(&sd);
    let contacts = label_components(&contact);
    let m1s = label_components(&m1);
    let vias = label_components(&via);
    let m2s = label_components(&m2);
    let channels = label_components(&channel);

    if rec.enabled() {
        rec.counter("extract.components.gate", gates.len() as u64);
        rec.counter("extract.components.diffusion", sds.len() as u64);
        rec.counter("extract.components.contact", contacts.len() as u64);
        rec.counter("extract.components.metal1", m1s.len() as u64);
        rec.counter("extract.components.via1", vias.len() as u64);
        rec.counter("extract.components.metal2", m2s.len() as u64);
        rec.counter("extract.components.channel", channels.len() as u64);
    }

    if channels.is_empty() {
        return Err(ExtractError::NoTransistors);
    }

    // Global conductor node ids.
    let base_gate = 0;
    let base_sd = base_gate + gates.len();
    let base_contact = base_sd + sds.len();
    let base_m1 = base_contact + contacts.len();
    let base_via = base_m1 + m1s.len();
    let base_m2 = base_via + vias.len();
    let total = base_m2 + m2s.len();
    let mut uf = UnionFind::new(total);

    // Contacts bond to whatever they overlap: gates, diffusion, and M1.
    for c in 0..contacts.len() {
        for g in overlapping_labels(&contacts, c, &gates) {
            uf.union(base_contact + c, base_gate + g);
        }
        for s in overlapping_labels(&contacts, c, &sds) {
            uf.union(base_contact + c, base_sd + s);
        }
        for w in overlapping_labels(&contacts, c, &m1s) {
            uf.union(base_contact + c, base_m1 + w);
        }
    }
    // Vias bond M1 to M2.
    for v in 0..vias.len() {
        for w in overlapping_labels(&vias, v, &m1s) {
            uf.union(base_via + v, base_m1 + w);
        }
        for w in overlapping_labels(&vias, v, &m2s) {
            uf.union(base_via + v, base_m2 + w);
        }
    }

    // Transistors: one per channel component.
    struct RawFet {
        gate_label: usize,
        sd_labels: [usize; 2],
        dims: TransistorDims,
        bbox: (usize, usize, usize, usize),
        gate_span: f64,
    }
    let mut raw = Vec::new();
    // Reconstruction noise can leave speckle components; ignore anything
    // smaller than a plausible minimum device footprint (~30 nm × 30 nm).
    let min_area = ((900.0 / (voxel * voxel)).ceil() as usize).max(4);
    for ch in 0..channels.len() {
        if channels.components[ch].area < min_area {
            rec.counter("extract.rejected.speckle_channels", 1);
            continue;
        }
        let mut gate_labels = overlapping_labels(&channels, ch, &gates);
        let gate_candidates = gate_labels.len();
        gate_labels.retain(|&g| gates.components[g].area >= min_area);
        if rec.enabled() {
            rec.counter(
                "extract.rejected.small_gates",
                (gate_candidates - gate_labels.len()) as u64,
            );
        }
        // Rank diffusion neighbours by shared boundary and keep substantial
        // ones; stray one-pixel contacts are artefacts.
        let sd_candidates = crate::components::adjacent_labels_counted(&channels, ch, &sds);
        let sd_candidate_count = sd_candidates.len();
        let mut sd_neighbours: Vec<(usize, usize)> = sd_candidates
            .into_iter()
            .filter(|&(l, c)| c >= 2 && sds.components[l].area >= min_area)
            .collect();
        if rec.enabled() {
            rec.counter(
                "extract.rejected.weak_diffusion_contacts",
                (sd_candidate_count - sd_neighbours.len()) as u64,
            );
        }
        sd_neighbours.sort_by_key(|&(_, contact)| std::cmp::Reverse(contact));
        let sd_neighbours: Vec<usize> = sd_neighbours.into_iter().map(|(l, _)| l).collect();
        // A channel with no substantial gate or no substantial diffusion at
        // all is reconstruction debris (thick-slice or heavy-drift stacks
        // smear gate poly across bare areas) — skip it like a speckle so
        // the genuine devices still extract. Anything *partially* connected
        // (one diffusion island, or several gates) is a real but malformed
        // transistor: silently dropping it would yield a plausible-looking
        // wrong netlist, so that stays a hard error.
        if gate_labels.is_empty() || sd_neighbours.is_empty() {
            rec.counter("extract.rejected.orphan_channels", 1);
            continue;
        }
        if gate_labels.len() != 1 || sd_neighbours.len() < 2 {
            return Err(ExtractError::MalformedChannel {
                neighbours: sd_neighbours.len(),
            });
        }
        let sd_neighbours = &sd_neighbours[..2];
        let comp = &channels.components[ch];
        // Orientation: the axis towards the two diffusion islands is the
        // current direction (L); the perpendicular extent is W.
        let (s0, s1) = (
            &sds.components[sd_neighbours[0]],
            &sds.components[sd_neighbours[1]],
        );
        let cx = |b: &(usize, usize, usize, usize)| (b.0 + b.2) as f64 / 2.0;
        let cy = |b: &(usize, usize, usize, usize)| (b.1 + b.3) as f64 / 2.0;
        let dx = (cx(&s0.bbox) - cx(&s1.bbox)).abs();
        let dy = (cy(&s0.bbox) - cy(&s1.bbox)).abs();
        let (l_cells, w_cells) = if dx >= dy {
            (comp.width_x(), comp.height_y())
        } else {
            (comp.height_y(), comp.width_x())
        };
        let g = &gates.components[gate_labels[0]];
        raw.push(RawFet {
            gate_label: gate_labels[0],
            sd_labels: [sd_neighbours[0], sd_neighbours[1]],
            dims: TransistorDims::new(
                Nanometers(w_cells as f64 * voxel),
                Nanometers(l_cells as f64 * voxel),
            ),
            bbox: comp.bbox,
            gate_span: g.height_y() as f64 / ny as f64,
        });
    }

    if raw.is_empty() {
        return Err(ExtractError::NoTransistors);
    }

    // Build the netlist: nets are union-find roots that carry at least one
    // device terminal.
    let mut netlist = Netlist::new("extracted");
    let mut devices = Vec::new();
    for (i, fet) in raw.iter().enumerate() {
        let g_root = uf.find(base_gate + fet.gate_label);
        let s_root = uf.find(base_sd + fet.sd_labels[0]);
        let d_root = uf.find(base_sd + fet.sd_labels[1]);
        let g = netlist.add_net(format!("n{g_root}"));
        let s = netlist.add_net(format!("n{s_root}"));
        let d = netlist.add_net(format!("n{d_root}"));
        let id = netlist.add_mosfet(
            format!("m{i}"),
            Polarity::Nmos,
            TransistorClass::Access,
            fet.dims,
            g,
            s,
            d,
        );
        devices.push(ExtractedDevice {
            device: id,
            dims: fet.dims,
            channel_bbox: fet.bbox,
            gate_y_span_fraction: fet.gate_span,
            class: None,
        });
    }

    Ok(Extraction {
        netlist,
        devices,
        nx,
        ny,
        voxel_nm: voxel,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hifi_geometry::LayerStack;
    use hifi_synth::Material;

    /// Hand-builds a volume with one transistor: active bar crossed by a
    /// gate, contacts on both diffusion pads and on the gate, an M1 wire on
    /// the drain and a via to M2.
    fn single_fet_volume() -> MaterialVolume {
        let stack = LayerStack::default_dram();
        let mut v = MaterialVolume::new(60, 40, 141, 5.0, stack);
        let zr = |l: Layer, v: &MaterialVolume| v.layer_z_range(l);
        let (az0, az1) = zr(Layer::Active, &v);
        let (gz0, gz1) = zr(Layer::Gate, &v);
        let (mz0, mz1) = zr(Layer::Metal1, &v);
        let (vz0, vz1) = zr(Layer::Via1, &v);
        let (m2z0, m2z1) = zr(Layer::Metal2, &v);
        // Active bar: x 10..40, y 10..26 (W = 16 cells * 5 nm = 80 nm).
        v.fill_box(10, 40, 10, 26, az0, az1, Material::ActiveSi, true);
        // Gate crossing at x 22..28 (L = 6 cells * 5 = 30 nm), overhang in y.
        v.fill_box(22, 28, 4, 34, gz0, gz1, Material::GatePoly, true);
        // Contacts: source pad, drain pad, gate overhang.
        let (cz0, cz1) = (az1, mz0);
        v.fill_box(14, 17, 16, 19, cz0, cz1, Material::Contact, false);
        v.fill_box(33, 36, 16, 19, cz0, cz1, Material::Contact, false);
        v.fill_box(23, 26, 29, 32, gz0, mz0, Material::Contact, false);
        // M1 pads over the contacts + a wire from the drain.
        v.fill_box(13, 18, 15, 20, mz0, mz1, Material::Metal1, true);
        v.fill_box(32, 55, 15, 20, mz0, mz1, Material::Metal1, true);
        v.fill_box(22, 27, 28, 33, mz0, mz1, Material::Metal1, true);
        // Via + M2 on the drain wire.
        v.fill_box(50, 53, 16, 19, vz0, vz1, Material::Via, true);
        v.fill_box(48, 55, 5, 30, m2z0, m2z1, Material::Metal2, true);
        v
    }

    #[test]
    fn extracts_single_transistor_with_dims() {
        let v = single_fet_volume();
        let ex = extract_netlist(&v).unwrap();
        assert_eq!(ex.devices.len(), 1);
        let d = &ex.devices[0];
        assert!(
            (d.dims.width.value() - 80.0).abs() <= 5.0,
            "W = {}",
            d.dims.width
        );
        assert!(
            (d.dims.length.value() - 30.0).abs() <= 5.0,
            "L = {}",
            d.dims.length
        );
        // Three nets: gate, source, drain(+wire+via+m2).
        assert_eq!(ex.netlist.net_count(), 3);
    }

    #[test]
    fn via_merges_m1_and_m2_into_one_net() {
        let v = single_fet_volume();
        let ex = extract_netlist(&v).unwrap();
        let m = ex.netlist.mosfets().next().unwrap();
        // Drain net carries wire + via + m2: still a single net id.
        assert_ne!(m.source, m.drain);
        assert_ne!(m.gate, m.drain);
    }

    #[test]
    fn instrumented_extraction_counts_components_and_devices() {
        use hifi_telemetry::JsonRecorder;
        let v = single_fet_volume();
        let mut rec = JsonRecorder::new();
        let ex = extract_netlist_with(&v, &mut rec).unwrap();
        assert_eq!(ex.devices.len(), 1);
        assert_eq!(rec.counter_total("extract.components.channel"), 1);
        assert_eq!(rec.counter_total("extract.components.gate"), 1);
        // Three contacts drawn, three components expected after closing.
        assert_eq!(rec.counter_total("extract.components.contact"), 3);
        // A clean hand-built volume rejects nothing.
        assert_eq!(rec.counter_total("extract.rejected.speckle_channels"), 0);
        assert_eq!(rec.counter_total("extract.rejected.small_gates"), 0);
        // The instrumented path returns the identical extraction.
        let plain = extract_netlist(&v).unwrap();
        assert_eq!(ex.devices, plain.devices);
    }

    #[test]
    fn empty_volume_yields_no_transistors() {
        let v = MaterialVolume::new(10, 10, 141, 5.0, LayerStack::default_dram());
        assert!(matches!(
            extract_netlist(&v),
            Err(ExtractError::NoTransistors)
        ));
    }

    #[test]
    fn vertical_orientation_measured_correctly() {
        // Same device rotated 90°: current along y.
        let stack = LayerStack::default_dram();
        let mut v = MaterialVolume::new(40, 60, 141, 5.0, stack);
        let (az0, az1) = v.layer_z_range(Layer::Active);
        let (gz0, gz1) = v.layer_z_range(Layer::Gate);
        v.fill_box(10, 26, 10, 40, az0, az1, Material::ActiveSi, true);
        v.fill_box(4, 34, 22, 28, gz0, gz1, Material::GatePoly, true);
        let ex = extract_netlist(&v).unwrap();
        let d = &ex.devices[0];
        assert!(
            (d.dims.width.value() - 80.0).abs() <= 5.0,
            "W = {}",
            d.dims.width
        );
        assert!(
            (d.dims.length.value() - 30.0).abs() <= 5.0,
            "L = {}",
            d.dims.length
        );
    }
}
