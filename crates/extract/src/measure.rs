//! Per-class dimension measurement (Section V-B).

use crate::netlist::Extraction;
use hifi_circuit::{TransistorClass, TransistorDims};
use hifi_units::{Nanometers, Ratio};

/// Aggregated measurements for one transistor class.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassMeasurement {
    /// The class measured.
    pub class: TransistorClass,
    /// Number of devices measured.
    pub count: usize,
    /// Mean measured width.
    pub mean_width: Nanometers,
    /// Mean measured length.
    pub mean_length: Nanometers,
    /// Largest deviation of any individual width from the mean (spread).
    pub width_spread: Nanometers,
    /// Largest deviation of any individual length from the mean.
    pub length_spread: Nanometers,
}

impl ClassMeasurement {
    /// Mean W/L ratio.
    pub fn w_over_l(&self) -> f64 {
        self.mean_width / self.mean_length
    }
}

/// How much the measurements can be trusted, given the provenance of the
/// data they were taken from.
///
/// The physical pipeline degrades gracefully: a slice that fails
/// acquisition repeatedly is interpolated from its neighbours rather than
/// aborting the run (the paper's authors re-mill and re-acquire; when that
/// fails the region is simply less trustworthy). This record carries that
/// provenance into the final report so a measurement over interpolated
/// data is never mistaken for a clean one.
#[derive(Debug, Clone, PartialEq)]
pub struct MeasurementConfidence {
    /// Input slices that were interpolated from neighbours after
    /// exhausting re-acquisition retries (indices into the acquired
    /// stack). Empty for clean runs and for pristine (non-imaged) runs.
    pub degraded_slices: Vec<usize>,
    /// Total input slices considered (0 for pristine runs).
    pub total_slices: usize,
    /// `1.0` minus the degraded input fraction; `1.0` for clean runs.
    pub score: f64,
}

impl MeasurementConfidence {
    /// Full confidence: nothing was degraded.
    pub fn full() -> Self {
        Self {
            degraded_slices: Vec::new(),
            total_slices: 0,
            score: 1.0,
        }
    }

    /// Confidence for a run where `degraded_slices` (out of
    /// `total_slices`) were interpolated from neighbours.
    pub fn degraded(degraded_slices: Vec<usize>, total_slices: usize) -> Self {
        let score = if total_slices == 0 {
            1.0
        } else {
            1.0 - degraded_slices.len() as f64 / total_slices as f64
        };
        Self {
            degraded_slices,
            total_slices,
            score,
        }
    }

    /// Whether any input had to be interpolated.
    pub fn is_degraded(&self) -> bool {
        !self.degraded_slices.is_empty()
    }
}

impl Default for MeasurementConfidence {
    fn default() -> Self {
        Self::full()
    }
}

/// A full measurement report over an extraction.
#[derive(Debug, Clone, PartialEq)]
pub struct MeasurementReport {
    /// Per-class aggregates, ordered by [`TransistorClass::ALL`].
    pub classes: Vec<ClassMeasurement>,
    /// Total individual measurements taken (2 per device: W and L).
    pub total_measurements: usize,
    /// Provenance-based confidence in these numbers (degraded-input
    /// flags; see [`MeasurementConfidence`]).
    pub confidence: MeasurementConfidence,
}

impl MeasurementReport {
    /// The measurement for one class, if present.
    pub fn class(&self, class: TransistorClass) -> Option<&ClassMeasurement> {
        self.classes.iter().find(|c| c.class == class)
    }

    /// Worst relative deviation of the measured means from the expected
    /// drawn dimensions (per class, W and L), e.g. to validate the pipeline
    /// against generator ground truth.
    pub fn worst_deviation(&self, expected: &[(TransistorClass, TransistorDims)]) -> Option<Ratio> {
        let mut worst: Option<Ratio> = None;
        for (class, dims) in expected {
            let Some(m) = self.class(*class) else {
                continue;
            };
            for (measured, truth) in [
                (m.mean_width.value(), dims.width.value()),
                (m.mean_length.value(), dims.length.value()),
            ] {
                let dev = Ratio::relative_deviation(measured, truth);
                worst = Some(match worst {
                    Some(w) => w.max(dev),
                    None => dev,
                });
            }
        }
        worst
    }
}

/// Measures all classified devices of an extraction.
///
/// Devices without a class (classification skipped or failed) are ignored.
pub fn measure(extraction: &Extraction) -> MeasurementReport {
    let mut classes = Vec::new();
    let mut total = 0usize;
    for class in TransistorClass::ALL {
        let dims: Vec<TransistorDims> = extraction
            .devices
            .iter()
            .filter(|d| d.class == Some(class))
            .map(|d| d.dims)
            .collect();
        if dims.is_empty() {
            continue;
        }
        let n = dims.len() as f64;
        let mean_w = dims.iter().map(|d| d.width.value()).sum::<f64>() / n;
        let mean_l = dims.iter().map(|d| d.length.value()).sum::<f64>() / n;
        let spread_w = dims
            .iter()
            .map(|d| (d.width.value() - mean_w).abs())
            .fold(0.0, f64::max);
        let spread_l = dims
            .iter()
            .map(|d| (d.length.value() - mean_l).abs())
            .fold(0.0, f64::max);
        total += dims.len() * 2;
        classes.push(ClassMeasurement {
            class,
            count: dims.len(),
            mean_width: Nanometers(mean_w),
            mean_length: Nanometers(mean_l),
            width_spread: Nanometers(spread_w),
            length_spread: Nanometers(spread_l),
        });
    }
    MeasurementReport {
        classes,
        total_measurements: total,
        confidence: MeasurementConfidence::full(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extract;
    use hifi_circuit::topology::SaTopologyKind;
    use hifi_synth::{generate_region, SaRegionSpec};

    #[test]
    fn measured_dims_match_ground_truth_within_a_voxel() {
        let spec = SaRegionSpec::new(SaTopologyKind::OffsetCancellation).with_pairs(1);
        let region = generate_region(&spec);
        let ex = extract(&region.voxelize()).unwrap();
        let report = measure(&ex);
        let truth = &region.ground_truth().cell.dims_by_class;
        let worst = report.worst_deviation(truth).unwrap();
        // One voxel (8 nm) on a ~50 nm length is ~16%; stay under 20%.
        assert!(
            worst.value() < 0.20,
            "worst deviation {}%",
            worst.as_percent()
        );
    }

    #[test]
    fn report_counts_match_topology() {
        let spec = SaRegionSpec::new(SaTopologyKind::Classic).with_pairs(2);
        let region = generate_region(&spec);
        let ex = extract(&region.voxelize()).unwrap();
        let report = measure(&ex);
        assert_eq!(report.class(TransistorClass::NSa).unwrap().count, 4);
        assert_eq!(report.class(TransistorClass::Equalizer).unwrap().count, 2);
        // 2 cells × 9 devices × 2 measurements each.
        assert_eq!(report.total_measurements, 36);
    }

    #[test]
    fn identical_cells_spread_stays_within_one_voxel() {
        // Tiled cells are geometrically identical; only voxel quantisation
        // (cell offsets need not be voxel-aligned) may differ.
        let spec = SaRegionSpec::new(SaTopologyKind::Classic).with_pairs(2);
        let region = generate_region(&spec);
        let ex = extract(&region.voxelize()).unwrap();
        let report = measure(&ex);
        let voxel = Nanometers(spec.voxel_nm);
        for c in &report.classes {
            assert!(c.width_spread <= voxel, "{}: {}", c.class, c.width_spread);
            assert!(c.length_spread <= voxel, "{}: {}", c.class, c.length_spread);
        }
    }
}
