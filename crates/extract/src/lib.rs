//! Automated circuit reverse engineering from a reconstructed chip volume.
//!
//! This crate implements Challenge C2 of the paper: starting from a (planar
//! view of a) 3-D reconstruction, recover the circuit — find gates, wires and
//! vias, trace intra- and inter-layer connections, recognise transistors
//! including their active regions, classify them by function, and measure
//! their dimensions (Section V). The input is a
//! [`hifi_synth::MaterialVolume`], either pristine from the generator or
//! reconstructed by `hifi-imaging` after the simulated FIB/SEM run.
//!
//! Pipeline:
//!
//! 1. [`slabs`] — collapse each process layer's z-band into a 2-D occupancy
//!    grid (the "selected planar slices" of Fig. 7d),
//! 2. [`components`] — 2-D connected components per layer,
//! 3. [`netlist`] — recognise channels (gate ∩ active), split source/drain,
//!    trace contacts and vias across layers, and emit a
//!    [`hifi_circuit::Netlist`],
//! 4. [`classify`] — assign functional classes using the paper's own
//!    heuristics (latch = gates on bitlines; common-gate strips =
//!    precharge/EQ/ISO/OC; pSA narrower than nSA; column first after MAT),
//! 5. [`measure`] — per-class dimension statistics (W from the gate∩active
//!    overlap, L from the source–drain pitch; Section V-B).
//!
//! # Examples
//!
//! ```
//! use hifi_synth::{generate_region, SaRegionSpec};
//! use hifi_circuit::topology::SaTopologyKind;
//! use hifi_circuit::identify::TopologyLibrary;
//!
//! let region = generate_region(&SaRegionSpec::new(SaTopologyKind::Classic).with_pairs(1));
//! let volume = region.voxelize();
//! let extraction = hifi_extract::extract(&volume)?;
//! let kind = TopologyLibrary::standard().identify(&extraction.netlist);
//! assert_eq!(kind, Some(SaTopologyKind::Classic));
//! # Ok::<(), hifi_extract::ExtractError>(())
//! ```

pub mod classify;
pub mod components;
pub mod measure;
pub mod netlist;
pub mod slabs;

use hifi_synth::MaterialVolume;

pub use classify::classify;
pub use measure::{measure, ClassMeasurement, MeasurementConfidence, MeasurementReport};
pub use netlist::{ExtractedDevice, Extraction};

/// Error produced during extraction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExtractError {
    /// The volume contains no transistors (no gate ∩ active overlap).
    NoTransistors,
    /// A channel is partially connected: several substantial gates, or
    /// exactly one substantial source/drain region. Such a channel is a
    /// real-looking but malformed transistor, and silently dropping it
    /// would produce a plausible wrong netlist. Channels with *no*
    /// substantial gate or diffusion at all are reconstruction debris and
    /// are skipped instead (counted under
    /// `extract.rejected.orphan_channels`).
    MalformedChannel {
        /// Number of adjacent source/drain regions found.
        neighbours: usize,
    },
    /// Classification failed: the circuit does not expose the structure the
    /// paper's heuristics rely on.
    ClassificationFailed(String),
}

impl core::fmt::Display for ExtractError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ExtractError::NoTransistors => write!(f, "no transistors found in the volume"),
            ExtractError::MalformedChannel { neighbours } => {
                write!(f, "channel with {neighbours} adjacent diffusion regions")
            }
            ExtractError::ClassificationFailed(m) => write!(f, "classification failed: {m}"),
        }
    }
}

impl std::error::Error for ExtractError {}

/// Runs the full extraction (netlist + classification) on a volume.
///
/// # Errors
///
/// Returns [`ExtractError`] if no transistors are present, a channel is
/// malformed, or the functional classification cannot be completed.
pub fn extract(volume: &MaterialVolume) -> Result<Extraction, ExtractError> {
    extract_with(volume, &mut hifi_telemetry::NoopRecorder)
}

/// [`extract`] with instrumentation: records per-layer component counts
/// (`extract.components.<layer>`), rejected-candidate counters
/// (`extract.rejected.speckle_channels`, `extract.rejected.small_gates`,
/// `extract.rejected.weak_diffusion_contacts`,
/// `extract.rejected.orphan_channels`) and the final device count
/// (`extract.devices`).
///
/// # Errors
///
/// Same as [`extract`].
pub fn extract_with<R: hifi_telemetry::Recorder>(
    volume: &MaterialVolume,
    rec: &mut R,
) -> Result<Extraction, ExtractError> {
    let mut extraction = netlist::extract_netlist_with(volume, rec)?;
    classify::classify(&mut extraction)?;
    rec.counter("extract.devices", extraction.devices.len() as u64);
    Ok(extraction)
}
