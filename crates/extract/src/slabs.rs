//! Collapsing layer z-bands into 2-D occupancy grids.

use hifi_geometry::Layer;
use hifi_synth::{Material, MaterialVolume};

/// A boolean occupancy grid for one layer (x-major rows of y).
#[derive(Debug, Clone, PartialEq)]
pub struct Slab {
    /// Grid width along x.
    pub nx: usize,
    /// Grid height along y.
    pub ny: usize,
    /// Occupancy flags, index `y * nx + x`.
    pub cells: Vec<bool>,
}

impl Slab {
    /// Creates an empty slab.
    pub fn empty(nx: usize, ny: usize) -> Self {
        Self {
            nx,
            ny,
            cells: vec![false; nx * ny],
        }
    }

    /// Occupancy at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics when out of range.
    #[inline]
    pub fn get(&self, x: usize, y: usize) -> bool {
        self.cells[y * self.nx + x]
    }

    /// Sets occupancy at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics when out of range.
    #[inline]
    pub fn set(&mut self, x: usize, y: usize, v: bool) {
        self.cells[y * self.nx + x] = v;
    }

    /// Number of occupied cells.
    pub fn count(&self) -> usize {
        self.cells.iter().filter(|&&c| c).count()
    }

    /// Logical AND of two slabs (used for gate ∩ active).
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn intersect(&self, other: &Slab) -> Slab {
        assert_eq!(
            (self.nx, self.ny),
            (other.nx, other.ny),
            "slab shape mismatch"
        );
        Slab {
            nx: self.nx,
            ny: self.ny,
            cells: self
                .cells
                .iter()
                .zip(&other.cells)
                .map(|(a, b)| *a && *b)
                .collect(),
        }
    }

    /// Removes `other`'s occupied cells from `self` (active minus channel).
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn subtract(&self, other: &Slab) -> Slab {
        assert_eq!(
            (self.nx, self.ny),
            (other.nx, other.ny),
            "slab shape mismatch"
        );
        Slab {
            nx: self.nx,
            ny: self.ny,
            cells: self
                .cells
                .iter()
                .zip(&other.cells)
                .map(|(a, b)| *a && !*b)
                .collect(),
        }
    }
}

/// Which material realises each extracted layer.
pub fn layer_material(layer: Layer) -> Material {
    match layer {
        Layer::Active => Material::ActiveSi,
        Layer::Gate => Material::GatePoly,
        Layer::Contact => Material::Contact,
        Layer::Metal1 => Material::Metal1,
        Layer::Via1 => Material::Via,
        Layer::Metal2 => Material::Metal2,
        Layer::Capacitor => Material::Capacitor,
    }
}

/// Morphological closing with a unit 4-neighbourhood structuring element:
/// dilation followed by erosion. Bridges 1–2-cell breaks left by imaging
/// noise/misregistration without permanently growing features (layout
/// clearances are kept above the bridging distance by the generator).
pub fn close_unit(slab: &Slab) -> Slab {
    let (nx, ny) = (slab.nx, slab.ny);
    let neighbours_or_self = |s: &Slab, x: usize, y: usize| -> [bool; 5] {
        [
            s.get(x, y),
            x > 0 && s.get(x - 1, y),
            x + 1 < nx && s.get(x + 1, y),
            y > 0 && s.get(x, y - 1),
            y + 1 < ny && s.get(x, y + 1),
        ]
    };
    let mut dilated = Slab::empty(nx, ny);
    for y in 0..ny {
        for x in 0..nx {
            if neighbours_or_self(slab, x, y).iter().any(|&b| b) {
                dilated.set(x, y, true);
            }
        }
    }
    let mut closed = Slab::empty(nx, ny);
    for y in 0..ny {
        for x in 0..nx {
            if neighbours_or_self(&dilated, x, y).iter().all(|&b| b) {
                closed.set(x, y, true);
            }
        }
    }
    closed
}

/// Projects a layer's z-band onto a 2-D occupancy grid. A cell is occupied
/// when at least a third of the band's voxels at that (x, y) carry the
/// layer's material — robust to stray misclassified voxels after the
/// imaging pipeline.
pub fn project_layer(volume: &MaterialVolume, layer: Layer) -> Slab {
    let (nx, ny, _) = volume.dims();
    let (z0, z1) = volume.layer_z_range(layer);
    let material = layer_material(layer);
    let band = (z1.saturating_sub(z0)).max(1);
    let threshold = band.div_ceil(3);
    let mut slab = Slab::empty(nx, ny);
    for y in 0..ny {
        for x in 0..nx {
            let mut hits = 0;
            for z in z0..z1 {
                if volume.get(x, y, z) == material {
                    hits += 1;
                }
            }
            if hits >= threshold {
                slab.set(x, y, true);
            }
        }
    }
    slab
}

#[cfg(test)]
mod tests {
    use super::*;
    use hifi_geometry::LayerStack;

    #[test]
    fn projection_finds_filled_band() {
        let mut v = MaterialVolume::new(10, 10, 141, 5.0, LayerStack::default_dram());
        let (z0, z1) = v.layer_z_range(Layer::Metal1);
        v.fill_box(2, 5, 3, 7, z0, z1, Material::Metal1, true);
        let slab = project_layer(&v, Layer::Metal1);
        assert!(slab.get(3, 4));
        assert!(!slab.get(8, 8));
        assert_eq!(slab.count(), 3 * 4);
    }

    #[test]
    fn projection_tolerates_partial_band() {
        let mut v = MaterialVolume::new(6, 6, 141, 5.0, LayerStack::default_dram());
        let (z0, z1) = v.layer_z_range(Layer::Gate);
        // Fill only half of the band: still occupied (>= 1/3).
        let mid = z0 + (z1 - z0) / 2;
        v.fill_box(1, 2, 1, 2, z0, mid, Material::GatePoly, true);
        let slab = project_layer(&v, Layer::Gate);
        assert!(slab.get(1, 1));
    }

    #[test]
    fn intersect_and_subtract() {
        let mut a = Slab::empty(4, 1);
        let mut b = Slab::empty(4, 1);
        a.set(0, 0, true);
        a.set(1, 0, true);
        b.set(1, 0, true);
        b.set(2, 0, true);
        let i = a.intersect(&b);
        assert_eq!(i.count(), 1);
        assert!(i.get(1, 0));
        let s = a.subtract(&b);
        assert_eq!(s.count(), 1);
        assert!(s.get(0, 0));
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn shape_mismatch_panics() {
        let a = Slab::empty(2, 2);
        let b = Slab::empty(3, 2);
        let _ = a.intersect(&b);
    }
}
