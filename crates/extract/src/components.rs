//! 2-D connected components over occupancy slabs.

use crate::slabs::Slab;

/// One connected region of a slab.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Component {
    /// Bounding box in grid coordinates: `(x0, y0, x1, y1)` inclusive.
    pub bbox: (usize, usize, usize, usize),
    /// Number of cells.
    pub area: usize,
}

impl Component {
    /// Bounding-box width along x (cells).
    pub fn width_x(&self) -> usize {
        self.bbox.2 - self.bbox.0 + 1
    }

    /// Bounding-box height along y (cells).
    pub fn height_y(&self) -> usize {
        self.bbox.3 - self.bbox.1 + 1
    }
}

/// Connected-component labelling result: a label grid (`usize::MAX` = empty)
/// plus per-component metadata.
#[derive(Debug, Clone)]
pub struct Labeled {
    /// Grid width.
    pub nx: usize,
    /// Grid height.
    pub ny: usize,
    /// Per-cell component label (`usize::MAX` when unoccupied).
    pub labels: Vec<usize>,
    /// Component metadata, indexed by label.
    pub components: Vec<Component>,
}

impl Labeled {
    /// Label at `(x, y)`, or `None` when unoccupied.
    ///
    /// # Panics
    ///
    /// Panics when out of range.
    #[inline]
    pub fn label(&self, x: usize, y: usize) -> Option<usize> {
        let l = self.labels[y * self.nx + x];
        (l != usize::MAX).then_some(l)
    }

    /// Number of components.
    pub fn len(&self) -> usize {
        self.components.len()
    }

    /// Whether no components were found.
    pub fn is_empty(&self) -> bool {
        self.components.is_empty()
    }
}

/// Labels the 4-connected components of a slab (BFS flood fill).
pub fn label_components(slab: &Slab) -> Labeled {
    let (nx, ny) = (slab.nx, slab.ny);
    let mut labels = vec![usize::MAX; nx * ny];
    let mut components = Vec::new();
    let mut queue = Vec::new();
    for start_y in 0..ny {
        for start_x in 0..nx {
            if !slab.get(start_x, start_y) || labels[start_y * nx + start_x] != usize::MAX {
                continue;
            }
            let label = components.len();
            let mut bbox = (start_x, start_y, start_x, start_y);
            let mut area = 0usize;
            queue.clear();
            queue.push((start_x, start_y));
            labels[start_y * nx + start_x] = label;
            while let Some((x, y)) = queue.pop() {
                area += 1;
                bbox.0 = bbox.0.min(x);
                bbox.1 = bbox.1.min(y);
                bbox.2 = bbox.2.max(x);
                bbox.3 = bbox.3.max(y);
                let neighbours = [
                    (x.wrapping_sub(1), y),
                    (x + 1, y),
                    (x, y.wrapping_sub(1)),
                    (x, y + 1),
                ];
                for (px, py) in neighbours {
                    if px < nx && py < ny && slab.get(px, py) && labels[py * nx + px] == usize::MAX
                    {
                        labels[py * nx + px] = label;
                        queue.push((px, py));
                    }
                }
            }
            components.push(Component { bbox, area });
        }
    }
    Labeled {
        nx,
        ny,
        labels,
        components,
    }
}

/// Returns the set of labels in `b` that overlap (share a cell with) the
/// given component label of `a`. Both labelings must cover the same grid.
///
/// # Panics
///
/// Panics on grid shape mismatch.
pub fn overlapping_labels(a: &Labeled, a_label: usize, b: &Labeled) -> Vec<usize> {
    assert_eq!((a.nx, a.ny), (b.nx, b.ny), "label grid mismatch");
    let mut out = Vec::new();
    for y in 0..a.ny {
        for x in 0..a.nx {
            if a.label(x, y) == Some(a_label) {
                if let Some(bl) = b.label(x, y) {
                    if !out.contains(&bl) {
                        out.push(bl);
                    }
                }
            }
        }
    }
    out
}

/// Labels in `b` that are 4-adjacent (touching, not overlapping) to the given
/// component of `a`.
///
/// # Panics
///
/// Panics on grid shape mismatch.
pub fn adjacent_labels(a: &Labeled, a_label: usize, b: &Labeled) -> Vec<usize> {
    adjacent_labels_counted(a, a_label, b)
        .into_iter()
        .map(|(l, _)| l)
        .collect()
}

/// Like [`adjacent_labels`] but returns, per label, the number of boundary
/// cells shared — used to rank neighbours when reconstruction noise creates
/// spurious one-pixel contacts.
///
/// # Panics
///
/// Panics on grid shape mismatch.
pub fn adjacent_labels_counted(a: &Labeled, a_label: usize, b: &Labeled) -> Vec<(usize, usize)> {
    assert_eq!((a.nx, a.ny), (b.nx, b.ny), "label grid mismatch");
    let mut out: Vec<(usize, usize)> = Vec::new();
    for y in 0..a.ny {
        for x in 0..a.nx {
            if a.label(x, y) != Some(a_label) {
                continue;
            }
            let neighbours = [
                (x.wrapping_sub(1), y),
                (x + 1, y),
                (x, y.wrapping_sub(1)),
                (x, y + 1),
            ];
            for (px, py) in neighbours {
                if px < a.nx && py < a.ny {
                    if let Some(bl) = b.label(px, py) {
                        match out.iter_mut().find(|(l, _)| *l == bl) {
                            Some((_, c)) => *c += 1,
                            None => out.push((bl, 1)),
                        }
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn slab_from(rows: &[&str]) -> Slab {
        let ny = rows.len();
        let nx = rows[0].len();
        let mut s = Slab::empty(nx, ny);
        for (y, row) in rows.iter().enumerate() {
            for (x, c) in row.chars().enumerate() {
                if c == '#' {
                    s.set(x, y, true);
                }
            }
        }
        s
    }

    #[test]
    fn labels_two_islands() {
        let s = slab_from(&["##..", "....", "..##"]);
        let l = label_components(&s);
        assert_eq!(l.len(), 2);
        assert_eq!(l.components[0].area, 2);
        assert_eq!(l.components[0].bbox, (0, 0, 1, 0));
        assert_eq!(l.components[1].bbox, (2, 2, 3, 2));
    }

    #[test]
    fn diagonals_do_not_connect() {
        let s = slab_from(&["#.", ".#"]);
        let l = label_components(&s);
        assert_eq!(l.len(), 2);
    }

    #[test]
    fn overlap_query() {
        let a = label_components(&slab_from(&["###.", "...."]));
        let b = label_components(&slab_from(&["..##", "...."]));
        let hits = overlapping_labels(&a, 0, &b);
        assert_eq!(hits, vec![0]);
    }

    #[test]
    fn adjacency_query() {
        // a's island touches b's island on the right edge only.
        let a = label_components(&slab_from(&["##..", "...."]));
        let b = label_components(&slab_from(&["..#.", "...."]));
        assert_eq!(adjacent_labels(&a, 0, &b), vec![0]);
        let far = label_components(&slab_from(&["...#", "...."]));
        assert!(adjacent_labels(&a, 0, &far).is_empty());
    }

    #[test]
    fn component_extents() {
        let s = slab_from(&["####", "####"]);
        let l = label_components(&s);
        assert_eq!(l.components[0].width_x(), 4);
        assert_eq!(l.components[0].height_y(), 2);
    }
}
