//! Functional classification of extracted transistors.
//!
//! Implements Section V-A's identification steps (iv)–(viii) as an
//! algorithm:
//!
//! - **latch** transistors are the coupled devices whose *gates* sit on
//!   nets that are source/drain elsewhere (the bitlines — used as the
//!   anchor, step ii),
//! - the latch pair with the **narrower** width is PMOS (step viii),
//! - **common-gate** devices (gate spanning the region along Y) are the
//!   precharge/equaliser (classic) or precharge/ISO/OC (OCSA) elements
//!   (steps iv & vii),
//! - ISO connects a latch drain to the *opposite* bitline of its latch
//!   transistor's gate, OC to the *same* one (Section V's OCSA analysis),
//! - the remaining devices are the **column multiplexers** (step v).

use crate::netlist::Extraction;
use crate::ExtractError;
use hifi_circuit::{Mosfet, NetId, Polarity, TransistorClass};
use std::collections::{HashMap, HashSet};

/// Gate-span fraction above which a gate counts as region-spanning.
const COMMON_GATE_SPAN: f64 = 0.8;

/// Classifies every extracted transistor in place (updates both the
/// metadata and the netlist's class/polarity labels).
///
/// # Errors
///
/// Returns [`ExtractError::ClassificationFailed`] when the circuit does not
/// expose the expected structure (e.g. not exactly four latch devices).
pub fn classify(extraction: &mut Extraction) -> Result<(), ExtractError> {
    let mosfets: Vec<Mosfet> = extraction.netlist.mosfets().cloned().collect();
    let n = mosfets.len();

    // Net → devices having it as a source/drain terminal.
    let mut sd_users: HashMap<NetId, Vec<usize>> = HashMap::new();
    for (i, m) in mosfets.iter().enumerate() {
        sd_users.entry(m.source).or_default().push(i);
        sd_users.entry(m.drain).or_default().push(i);
    }
    let sd_nets: HashSet<NetId> = sd_users.keys().copied().collect();

    // Latch devices: gate on a net that is S/D elsewhere.
    let latch: Vec<usize> = (0..n)
        .filter(|&i| sd_nets.contains(&mosfets[i].gate))
        .collect();
    if latch.len() < 4 || !latch.len().is_multiple_of(4) {
        return Err(ExtractError::ClassificationFailed(format!(
            "expected a multiple of 4 cross-coupled latch devices, found {}",
            latch.len()
        )));
    }
    let latch_set: HashSet<usize> = latch.iter().copied().collect();
    let bitline_nets: HashSet<NetId> = latch.iter().map(|&i| mosfets[i].gate).collect();
    // One bitline pair per SA cell; rails (LA/LAB) are shared region-wide,
    // which is why SAs cannot be analysed in isolation (Recommendation R2).
    if bitline_nets.len() != latch.len() / 2 {
        return Err(ExtractError::ClassificationFailed(format!(
            "latch gates sit on {} nets, expected {} bitlines",
            bitline_nets.len(),
            latch.len() / 2
        )));
    }

    // For each latch device, split its terminals into the shared rail (a net
    // used only by latch devices) and the latch drain.
    let is_rail = |net: NetId| -> bool {
        sd_users
            .get(&net)
            .map(|users| users.iter().all(|u| latch_set.contains(u)))
            .unwrap_or(false)
    };
    let mut latch_drain: HashMap<usize, NetId> = HashMap::new();
    let mut latch_rail: HashMap<usize, NetId> = HashMap::new();
    for &i in &latch {
        let m = &mosfets[i];
        match (is_rail(m.source), is_rail(m.drain)) {
            (true, false) => {
                latch_rail.insert(i, m.source);
                latch_drain.insert(i, m.drain);
            }
            (false, true) => {
                latch_rail.insert(i, m.drain);
                latch_drain.insert(i, m.source);
            }
            _ => {
                return Err(ExtractError::ClassificationFailed(format!(
                    "latch device {i} has no unambiguous rail terminal"
                )))
            }
        }
    }

    // Pair latch devices by rail; the narrower pair is PMOS (step viii).
    let rails: Vec<NetId> = {
        let mut r: Vec<NetId> = latch_rail.values().copied().collect();
        r.sort_unstable();
        r.dedup();
        r
    };
    if rails.len() != 2 {
        return Err(ExtractError::ClassificationFailed(format!(
            "expected 2 latch rails, found {}",
            rails.len()
        )));
    }
    let pair_width = |rail: NetId| -> f64 {
        let ws: Vec<f64> = latch
            .iter()
            .filter(|&&i| latch_rail[&i] == rail)
            .map(|&i| mosfets[i].dims.width.value())
            .collect();
        ws.iter().sum::<f64>() / ws.len() as f64
    };
    let (psa_rail, _nsa_rail) = if pair_width(rails[0]) < pair_width(rails[1]) {
        (rails[0], rails[1])
    } else {
        (rails[1], rails[0])
    };

    // Latch drains (SABL/SABLB in OCSA; the bitlines themselves in classic).
    let internal_nets: HashSet<NetId> = latch_drain.values().copied().collect();
    // Map latch-drain net → the gate (bitline) of a latch device driving it.
    // For ISO/OC disambiguation.
    let mut drain_to_gate: HashMap<NetId, NetId> = HashMap::new();
    for &i in &latch {
        drain_to_gate.insert(latch_drain[&i], mosfets[i].gate);
    }

    let mut classes: Vec<Option<TransistorClass>> = vec![None; n];
    for &i in &latch {
        classes[i] = Some(if latch_rail[&i] == psa_rail {
            TransistorClass::PSa
        } else {
            TransistorClass::NSa
        });
    }

    for i in 0..n {
        if classes[i].is_some() {
            continue;
        }
        let m = &mosfets[i];
        let span = extraction.devices[i].gate_y_span_fraction;
        let s_bl = bitline_nets.contains(&m.source);
        let d_bl = bitline_nets.contains(&m.drain);
        let s_int = internal_nets.contains(&m.source) && !bitline_nets.contains(&m.source);
        let d_int = internal_nets.contains(&m.drain) && !bitline_nets.contains(&m.drain);
        if span >= COMMON_GATE_SPAN {
            // Precharge / equaliser / isolation / offset-cancellation.
            classes[i] = Some(if s_bl && d_bl {
                TransistorClass::Equalizer
            } else if (s_int && d_bl) || (d_int && s_bl) {
                let (internal, bitline) = if s_int {
                    (m.source, m.drain)
                } else {
                    (m.drain, m.source)
                };
                let latch_gate = drain_to_gate.get(&internal).copied();
                if latch_gate == Some(bitline) {
                    TransistorClass::OffsetCancel
                } else {
                    TransistorClass::Isolation
                }
            } else if s_bl || d_bl {
                TransistorClass::Precharge
            } else {
                return Err(ExtractError::ClassificationFailed(format!(
                    "common-gate device {i} touches no bitline"
                )));
            });
        } else if s_bl || d_bl {
            // Bitline to datapath with a private gate: column multiplexer
            // (the first elements after the MAT, Section V-C).
            classes[i] = Some(TransistorClass::Column);
        } else {
            return Err(ExtractError::ClassificationFailed(format!(
                "device {i} does not match any functional class"
            )));
        }
    }

    // Commit classes (and the polarity heuristic) to the netlist + metadata.
    for (i, class) in classes.iter().enumerate() {
        let class = class.expect("all devices classified above");
        let polarity = if class == TransistorClass::PSa {
            Polarity::Pmos
        } else {
            Polarity::Nmos
        };
        extraction
            .netlist
            .set_mosfet_role(extraction.devices[i].device, class, polarity);
        extraction.devices[i].class = Some(class);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::extract_netlist;
    use hifi_circuit::topology::SaTopologyKind;
    use hifi_synth::{generate_region, SaRegionSpec};

    fn classify_region(kind: SaTopologyKind) -> Extraction {
        let spec = SaRegionSpec::new(kind).with_pairs(1);
        let region = generate_region(&spec);
        let volume = region.voxelize();
        let mut ex = extract_netlist(&volume).expect("extraction succeeds");
        classify(&mut ex).expect("classification succeeds");
        ex
    }

    fn histogram(ex: &Extraction) -> HashMap<TransistorClass, usize> {
        let mut h = HashMap::new();
        for d in &ex.devices {
            *h.entry(d.class.unwrap()).or_insert(0) += 1;
        }
        h
    }

    #[test]
    fn classic_classes_recovered() {
        let ex = classify_region(SaTopologyKind::Classic);
        let h = histogram(&ex);
        assert_eq!(h[&TransistorClass::NSa], 2);
        assert_eq!(h[&TransistorClass::PSa], 2);
        assert_eq!(h[&TransistorClass::Precharge], 2);
        assert_eq!(h[&TransistorClass::Equalizer], 1);
        assert_eq!(h[&TransistorClass::Column], 2);
    }

    #[test]
    fn ocsa_classes_recovered() {
        let ex = classify_region(SaTopologyKind::OffsetCancellation);
        let h = histogram(&ex);
        assert_eq!(h[&TransistorClass::NSa], 2);
        assert_eq!(h[&TransistorClass::PSa], 2);
        assert_eq!(h[&TransistorClass::Precharge], 2);
        assert_eq!(h[&TransistorClass::Isolation], 2);
        assert_eq!(h[&TransistorClass::OffsetCancel], 2);
        assert_eq!(h[&TransistorClass::Column], 2);
        assert!(!h.contains_key(&TransistorClass::Equalizer));
    }

    #[test]
    fn psa_polarity_follows_width_heuristic() {
        let ex = classify_region(SaTopologyKind::Classic);
        for m in ex.netlist.mosfets() {
            if m.class == TransistorClass::PSa {
                assert_eq!(m.polarity, Polarity::Pmos);
            } else {
                assert_eq!(m.polarity, Polarity::Nmos);
            }
        }
    }
}
