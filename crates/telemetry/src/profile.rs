//! [`ProfileSummary`]: the cross-run cost profile written next to each
//! [`RunReport`](crate::RunReport), and the diff the CI profile gate runs.
//!
//! Where a `RunReport` answers "what did this run measure?", a
//! `ProfileSummary` answers "where did the time go?": per-span self time
//! aggregated over every run in a session, merged latency/size histograms,
//! store traffic, fault totals and the allocation high-water mark (when
//! the `alloc-track` feature installed the counting allocator).
//!
//! [`ProfileSummary::diff`] compares two profiles by per-stage **share of
//! self time** (in odds form, see [`ProfileGate`]) rather than absolute
//! microseconds: shares are stable across machine speeds, so a committed
//! `PROFILE_baseline.json` keeps gating on faster or slower CI hardware,
//! while a stage whose cost structurally grows (the "artificially
//! inflated" case the gate exists for) still shifts its share and fails.

use serde::{Deserialize, Serialize};

use crate::hist::{Histogram, HistogramSummary};
use crate::recorder::{Event, EventType};
use crate::report::FaultTotals;
use crate::trace::{Trace, TraceNode};

/// Aggregated cost of one span name across all runs in a profile.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StageProfile {
    /// Span name (top-level pipeline stages and nested sub-spans alike).
    pub name: String,
    /// Times the span completed.
    pub calls: u64,
    /// Summed wall time, µs.
    pub total_us: u64,
    /// Summed self time (wall time minus child spans), µs.
    pub self_us: u64,
}

/// Store traffic totals folded from the `store.*` counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct StoreTotals {
    /// Stage lookups served from the artifact store.
    pub hits: u64,
    /// Lookups that missed and recomputed.
    pub misses: u64,
    /// Artifact payload bytes read.
    pub bytes_read: u64,
    /// Artifact payload bytes written.
    pub bytes_written: u64,
}

/// Cross-run cost profile; see the module docs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProfileSummary {
    /// Schema version of this document (currently 1).
    pub schema_version: u32,
    /// Number of pipeline runs folded in.
    pub runs: u64,
    /// Summed top-level wall time across runs, µs.
    pub total_us: u64,
    /// Per-span aggregates, in first-completion order.
    pub stages: Vec<StageProfile>,
    /// Histograms merged across runs (count/min/p50/p90/p99/max).
    pub histograms: Vec<HistogramSummary>,
    /// Store traffic totals.
    pub store: StoreTotals,
    /// Fault-injection and recovery totals.
    pub faults: FaultTotals,
    /// Allocation high-water mark, bytes; `None` unless the `alloc-track`
    /// counting allocator was installed.
    pub alloc_peak_bytes: Option<u64>,
}

impl ProfileSummary {
    /// Folds one or more recorded event streams (one per pipeline run)
    /// into a profile.
    pub fn from_event_runs(runs: &[Vec<Event>]) -> Self {
        let mut stages: Vec<StageProfile> = Vec::new();
        let mut hists: Vec<(String, Histogram)> = Vec::new();
        let mut counters: Vec<(String, u64)> = Vec::new();
        let mut total_us = 0u64;
        let mut alloc_peak: Option<u64> = None;

        fn add_node(stages: &mut Vec<StageProfile>, node: &TraceNode) {
            let (total, self_us) = (node.duration_us, node.self_us());
            match stages.iter_mut().find(|s| s.name == node.name) {
                Some(s) => {
                    s.calls += 1;
                    s.total_us = s.total_us.saturating_add(total);
                    s.self_us = s.self_us.saturating_add(self_us);
                }
                None => stages.push(StageProfile {
                    name: node.name.clone(),
                    calls: 1,
                    total_us: total,
                    self_us,
                }),
            }
            for child in &node.children {
                add_node(stages, child);
            }
        }

        for events in runs {
            let trace = Trace::from_events(events);
            total_us = total_us.saturating_add(trace.total_us());
            for root in &trace.roots {
                add_node(&mut stages, root);
            }
            // Counters fold to their final (max) total per run, summed
            // across runs; histograms merge observation-by-observation.
            let mut run_totals: Vec<(String, u64)> = Vec::new();
            for ev in events {
                match ev.kind {
                    EventType::Counter => {
                        let total = ev.total.unwrap_or(0);
                        match run_totals.iter_mut().find(|(n, _)| *n == ev.name) {
                            Some((_, t)) => *t = (*t).max(total),
                            None => run_totals.push((ev.name.clone(), total)),
                        }
                    }
                    EventType::Histogram => {
                        let v = ev.delta.unwrap_or(0);
                        match hists.iter_mut().find(|(n, _)| *n == ev.name) {
                            Some((_, h)) => h.record(v),
                            None => {
                                let mut h = Histogram::new();
                                h.record(v);
                                hists.push((ev.name.clone(), h));
                            }
                        }
                    }
                    EventType::Gauge if ev.name == crate::names::ALLOC_PEAK_BYTES => {
                        if let Some(v) = ev.value {
                            let v = v.max(0.0) as u64;
                            alloc_peak = Some(alloc_peak.unwrap_or(0).max(v));
                        }
                    }
                    _ => {}
                }
            }
            for (name, total) in run_totals {
                match counters.iter_mut().find(|(n, _)| *n == name) {
                    Some((_, t)) => *t = t.saturating_add(total),
                    None => counters.push((name, total)),
                }
            }
        }

        let counter = |name: &str| {
            counters
                .iter()
                .find(|(n, _)| n == name)
                .map_or(0, |(_, t)| *t)
        };
        Self {
            schema_version: 1,
            runs: runs.len() as u64,
            total_us,
            stages,
            histograms: hists.iter().map(|(n, h)| h.summarize(n)).collect(),
            store: StoreTotals {
                hits: counter(crate::names::STORE_HIT),
                misses: counter(crate::names::STORE_MISS),
                bytes_read: counter(crate::names::STORE_BYTES_READ),
                bytes_written: counter(crate::names::STORE_BYTES_WRITTEN),
            },
            faults: FaultTotals {
                injected: counter(crate::names::FAULT_INJECTED),
                retried: counter(crate::names::FAULT_RETRIED),
                recovered: counter(crate::names::FAULT_RECOVERED),
                degraded: counter(crate::names::FAULT_DEGRADED),
            },
            alloc_peak_bytes: alloc_peak,
        }
    }

    /// Summed self time across every stage, µs (the share denominator).
    pub fn total_self_us(&self) -> u64 {
        self.stages.iter().map(|s| s.self_us).sum()
    }

    /// A stage's share of total self time, in `[0, 1]` (0 when empty).
    pub fn self_share(&self, name: &str) -> f64 {
        let denom = self.total_self_us();
        if denom == 0 {
            return 0.0;
        }
        self.stages
            .iter()
            .find(|s| s.name == name)
            .map_or(0.0, |s| s.self_us as f64 / denom as f64)
    }

    /// The named stage aggregate, if recorded.
    pub fn stage(&self, name: &str) -> Option<&StageProfile> {
        self.stages.iter().find(|s| s.name == name)
    }

    /// Summary of the named histogram, if recorded.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSummary> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// Serializes as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).unwrap_or_else(|_| "{}".into())
    }

    /// Parses a profile back from JSON text.
    ///
    /// # Errors
    ///
    /// Returns a message when the text is not a valid profile document.
    pub fn parse(text: &str) -> Result<Self, String> {
        serde_json::from_str(text).map_err(|e| format!("invalid profile JSON: {e}"))
    }

    /// Compares this profile (the new measurement) against a committed
    /// baseline; see [`ProfileGate`] for the regression rule.
    ///
    /// Shares used for the verdict are renormalized over the stages the
    /// two profiles have in *common*: a stage that disappeared is
    /// reported once as [`DiffVerdict::MissingStage`] instead of also
    /// inflating every survivor's share past the gate. The rows keep the
    /// plain whole-profile shares for display.
    pub fn diff(&self, baseline: &ProfileSummary, gate: &ProfileGate) -> ProfileDiff {
        let common_self = |of: &ProfileSummary, other: &ProfileSummary| -> u64 {
            of.stages
                .iter()
                .filter(|s| other.stage(&s.name).is_some())
                .map(|s| s.self_us)
                .sum()
        };
        let base_denom = common_self(baseline, self);
        let cur_denom = common_self(self, baseline);
        let norm = |self_us: u64, denom: u64| {
            if denom == 0 {
                0.0
            } else {
                self_us as f64 / denom as f64
            }
        };
        let mut rows: Vec<DiffRow> = Vec::new();
        for base_stage in &baseline.stages {
            let base_share = baseline.self_share(&base_stage.name);
            let current = self.stage(&base_stage.name);
            let current_share = self.self_share(&base_stage.name);
            let current_self = current.map_or(0, |s| s.self_us);
            let verdict = match current {
                None if base_stage.self_us >= gate.min_self_us => DiffVerdict::MissingStage,
                None => DiffVerdict::Ok,
                Some(s) => {
                    let base_cmp = norm(base_stage.self_us, base_denom);
                    let cur_cmp = norm(s.self_us, cur_denom);
                    let allowed = share_odds(base_cmp + gate.share_slack)
                        * (1.0 + gate.tolerance_pct / 100.0);
                    if share_odds(cur_cmp) > allowed && s.self_us >= gate.min_self_us {
                        DiffVerdict::Regressed
                    } else {
                        DiffVerdict::Ok
                    }
                }
            };
            rows.push(DiffRow {
                name: base_stage.name.clone(),
                baseline_share: base_share,
                current_share,
                baseline_self_us: base_stage.self_us,
                current_self_us: current_self,
                verdict,
            });
        }
        for stage in &self.stages {
            if baseline.stage(&stage.name).is_none() {
                rows.push(DiffRow {
                    name: stage.name.clone(),
                    baseline_share: 0.0,
                    current_share: self.self_share(&stage.name),
                    baseline_self_us: 0,
                    current_self_us: stage.self_us,
                    verdict: DiffVerdict::NewStage,
                });
            }
        }
        ProfileDiff { rows }
    }

    /// Multi-line human rendering: per-stage table, histogram one-liners,
    /// store/fault/allocation footers.
    pub fn render(&self) -> String {
        let mut out = format!(
            "profile: {} run{} · total {:.1} ms\n",
            self.runs,
            if self.runs == 1 { "" } else { "s" },
            self.total_us as f64 / 1e3
        );
        out.push_str(&format!(
            "{:<24} {:>6} {:>12} {:>12} {:>7}\n",
            "stage", "calls", "total_us", "self_us", "share"
        ));
        for s in &self.stages {
            out.push_str(&format!(
                "{:<24} {:>6} {:>12} {:>12} {:>6.1}%\n",
                s.name,
                s.calls,
                s.total_us,
                s.self_us,
                self.self_share(&s.name) * 100.0
            ));
        }
        if !self.histograms.is_empty() {
            out.push_str("histograms:\n");
            for h in &self.histograms {
                out.push_str(&format!("  {}\n", h.render()));
            }
        }
        out.push_str(&format!(
            "store: {} hits, {} misses, {} B read, {} B written\n",
            self.store.hits, self.store.misses, self.store.bytes_read, self.store.bytes_written
        ));
        if self.faults.any() {
            out.push_str(&format!(
                "faults: {} injected, {} retried, {} recovered, {} degraded\n",
                self.faults.injected,
                self.faults.retried,
                self.faults.recovered,
                self.faults.degraded
            ));
        }
        match self.alloc_peak_bytes {
            Some(b) => out.push_str(&format!("alloc peak: {b} bytes\n")),
            None => out.push_str("alloc peak: not tracked (enable feature alloc-track)\n"),
        }
        out
    }
}

/// One labelled run's full event stream — the element type of the
/// `<trace>.events.json` side file the `HIFI_TRACE` sink writes next to
/// the Chrome trace, and the raw input `hifi-trace` re-derives traces,
/// folded stacks and profiles from.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunEvents {
    /// Human label for the run (configuration summary).
    pub label: String,
    /// The run's flat event stream, in emission order.
    pub events: Vec<Event>,
}

/// Parses a `.events.json` document (a JSON array of [`RunEvents`]).
///
/// # Errors
///
/// Returns a message when the text is not a valid event-stream document.
pub fn parse_run_events(text: &str) -> Result<Vec<RunEvents>, String> {
    serde_json::from_str(text).map_err(|e| format!("invalid events JSON: {e}"))
}

/// Serializes labelled run streams as a pretty-printed `.events.json`
/// document (the inverse of [`parse_run_events`]).
pub fn run_events_to_json(runs: &[RunEvents]) -> String {
    serde_json::to_string_pretty(&runs.to_vec()).unwrap_or_else(|_| "[]".into())
}

/// Regression rule for [`ProfileSummary::diff`]. Shares are compared as
/// **odds** — `share / (1 − share)` — so the gate stays sensitive for
/// dominant stages: a stage already at 90% can barely grow its *share*,
/// but inflating it 20× still multiplies its odds ~20×. A baseline stage
/// fails when
/// `odds(current_share) > odds(baseline_share + share_slack) · (1 + tolerance_pct/100)`
/// *and* its absolute self time is at least `min_self_us` (µs-scale
/// stages jitter too much to gate on). A baseline stage missing from the
/// current profile fails outright; stages new in the current profile are
/// listed but never fail the gate. Odds are a pure function of shares,
/// so the gate stays machine-speed independent.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileGate {
    /// Relative share growth tolerated, percent.
    pub tolerance_pct: f64,
    /// Absolute share slack added on top (fraction of 1).
    pub share_slack: f64,
    /// Stages below this self time never regress.
    pub min_self_us: u64,
}

impl Default for ProfileGate {
    fn default() -> Self {
        Self {
            tolerance_pct: 50.0,
            share_slack: 0.02,
            min_self_us: 200,
        }
    }
}

/// Odds form of a self-time share, `s / (1 − s)`. The clamp keeps a
/// share of exactly 1 (a single-stage profile) finite; such a profile
/// cannot express relative growth and never regresses by share.
fn share_odds(share: f64) -> f64 {
    let s = share.clamp(0.0, 0.9999);
    s / (1.0 - s)
}

/// Verdict for one stage in a profile diff.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DiffVerdict {
    /// Within tolerance.
    Ok,
    /// Self-time share grew beyond the gate.
    Regressed,
    /// Present in the baseline, absent from the current profile.
    MissingStage,
    /// Absent from the baseline (informational, never fails).
    NewStage,
}

/// One stage's comparison in a [`ProfileDiff`].
#[derive(Debug, Clone, PartialEq)]
pub struct DiffRow {
    /// Stage name.
    pub name: String,
    /// Baseline share of self time.
    pub baseline_share: f64,
    /// Current share of self time.
    pub current_share: f64,
    /// Baseline self time, µs.
    pub baseline_self_us: u64,
    /// Current self time, µs.
    pub current_self_us: u64,
    /// Outcome under the gate.
    pub verdict: DiffVerdict,
}

/// Result of comparing two profiles.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileDiff {
    /// Per-stage rows: baseline stages first, then new stages.
    pub rows: Vec<DiffRow>,
}

impl ProfileDiff {
    /// Number of failing rows (regressed or missing stages).
    pub fn regressions(&self) -> usize {
        self.rows
            .iter()
            .filter(|r| {
                matches!(
                    r.verdict,
                    DiffVerdict::Regressed | DiffVerdict::MissingStage
                )
            })
            .count()
    }

    /// Whether the gate passes.
    pub fn passed(&self) -> bool {
        self.regressions() == 0
    }

    /// Multi-line human rendering of the comparison table.
    pub fn render(&self) -> String {
        let mut out = format!(
            "{:<24} {:>8} {:>8} {:>12} {:>12}  verdict\n",
            "stage", "base%", "now%", "base_self", "now_self"
        );
        for r in &self.rows {
            out.push_str(&format!(
                "{:<24} {:>7.1}% {:>7.1}% {:>12} {:>12}  {:?}\n",
                r.name,
                r.baseline_share * 100.0,
                r.current_share * 100.0,
                r.baseline_self_us,
                r.current_self_us,
                r.verdict
            ));
        }
        out.push_str(&format!(
            "profile gate: {} regression{}\n",
            self.regressions(),
            if self.regressions() == 1 { "" } else { "s" }
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::{with_span, JsonRecorder, Recorder};

    fn events_with(scale: &[(&str, u64)]) -> Vec<Event> {
        // Build a synthetic run whose per-stage self time is given in
        // `scale` (µs are simulated through duration fields post-hoc).
        let mut rec = JsonRecorder::new();
        for (name, _) in scale {
            with_span(&mut rec, name, |rec| {
                rec.histogram("stage.slice_us", 64);
            });
        }
        rec.counter(crate::names::STORE_HIT, 2);
        rec.counter(crate::names::STORE_BYTES_READ, 1024);
        let mut events = rec.into_events();
        // Overwrite wall times deterministically.
        for ev in &mut events {
            if ev.kind == EventType::SpanEnd {
                let us = scale.iter().find(|(n, _)| *n == ev.name).unwrap().1;
                ev.duration_us = Some(us);
            }
        }
        events
    }

    #[test]
    fn profile_folds_stages_counters_and_histograms() {
        let run_a = events_with(&[("acquire", 4_000), ("extract", 1_000)]);
        let run_b = events_with(&[("acquire", 6_000), ("extract", 1_000)]);
        let p = ProfileSummary::from_event_runs(&[run_a, run_b]);
        assert_eq!(p.runs, 2);
        assert_eq!(p.total_us, 12_000);
        let acq = p.stage("acquire").expect("present");
        assert_eq!(acq.calls, 2);
        assert_eq!(acq.self_us, 10_000);
        assert!((p.self_share("acquire") - 10.0 / 12.0).abs() < 1e-12);
        assert_eq!(p.store.hits, 4);
        assert_eq!(p.store.bytes_read, 2048);
        assert_eq!(p.histogram("stage.slice_us").unwrap().count, 4);
        assert_eq!(p.alloc_peak_bytes, None);
        // JSON round trip.
        let back = ProfileSummary::parse(&p.to_json()).expect("parse");
        assert_eq!(back, p);
        assert!(ProfileSummary::parse("nonsense").is_err());
    }

    /// Pins the odds-form clamp: a share of exactly 1.0 (single-stage
    /// profile) must stay finite instead of dividing by zero, and such a
    /// profile can never regress by share — there is no relative growth
    /// for it to express.
    #[test]
    fn full_share_odds_stay_finite_and_never_regress() {
        let odds = share_odds(1.0);
        assert!(odds.is_finite(), "share=1.0 must not divide by zero");
        assert!((odds - 0.9999 / (1.0 - 0.9999)).abs() < 1e-6);
        // Shares beyond 1 (degenerate input) and below 0 clamp too.
        assert!(share_odds(1.5).is_finite());
        assert_eq!(share_odds(-0.3), 0.0);
        // Monotone on the meaningful range, so the clamp only saturates.
        assert!(share_odds(0.5) < share_odds(0.99));
        assert!(share_odds(0.99) <= share_odds(1.0));

        // End-to-end: a single-stage profile holds 100% share in both
        // baseline and current; even wildly slower absolute time passes
        // the share gate (shares are machine-speed independent).
        let baseline = ProfileSummary::from_event_runs(&[events_with(&[("acquire", 4_000)])]);
        let current = ProfileSummary::from_event_runs(&[events_with(&[("acquire", 400_000)])]);
        let diff = current.diff(&baseline, &ProfileGate::default());
        assert!(diff.passed(), "full-share stage must never regress");
        let row = &diff.rows[0];
        assert_eq!(row.verdict, DiffVerdict::Ok);
        assert!(row.baseline_share.is_finite() && row.current_share.is_finite());
    }

    #[test]
    fn diff_passes_on_identical_profiles_and_scaled_clones() {
        let p = ProfileSummary::from_event_runs(&[events_with(&[
            ("acquire", 4_000),
            ("extract", 1_000),
        ])]);
        // Identical.
        assert!(p.diff(&p, &ProfileGate::default()).passed());
        // Uniformly 3× slower machine: shares unchanged, still passes.
        let slow = ProfileSummary::from_event_runs(&[events_with(&[
            ("acquire", 12_000),
            ("extract", 3_000),
        ])]);
        assert!(slow.diff(&p, &ProfileGate::default()).passed());
    }

    #[test]
    fn diff_flags_inflated_and_missing_stages() {
        let baseline = ProfileSummary::from_event_runs(&[events_with(&[
            ("acquire", 4_000),
            ("extract", 1_000),
        ])]);
        // `extract` inflated 20×: its share jumps from 20% to ~83%.
        let inflated = ProfileSummary::from_event_runs(&[events_with(&[
            ("acquire", 4_000),
            ("extract", 20_000),
        ])]);
        let diff = inflated.diff(&baseline, &ProfileGate::default());
        assert_eq!(diff.regressions(), 1);
        let row = diff.rows.iter().find(|r| r.name == "extract").unwrap();
        assert_eq!(row.verdict, DiffVerdict::Regressed);
        assert!(diff.render().contains("Regressed"));
        // A baseline stage that disappeared fails too.
        let partial = ProfileSummary::from_event_runs(&[events_with(&[("acquire", 4_000)])]);
        let diff = partial.diff(&baseline, &ProfileGate::default());
        assert_eq!(diff.regressions(), 1);
        assert!(diff
            .rows
            .iter()
            .any(|r| r.verdict == DiffVerdict::MissingStage));
        // New stages are informational only.
        let grown = ProfileSummary::from_event_runs(&[events_with(&[
            ("acquire", 4_000),
            ("extract", 1_000),
            ("brand_new", 2_000),
        ])]);
        let diff = grown.diff(&baseline, &ProfileGate::default());
        assert!(diff.rows.iter().any(|r| r.verdict == DiffVerdict::NewStage));
        assert!(diff.passed());
    }

    #[test]
    fn tiny_stages_never_regress() {
        let baseline =
            ProfileSummary::from_event_runs(&[events_with(&[("big", 100_000), ("tiny", 10)])]);
        let jittery =
            ProfileSummary::from_event_runs(&[events_with(&[("big", 100_000), ("tiny", 150)])]);
        // `tiny`'s share grew 15×, but it is below min_self_us.
        assert!(jittery.diff(&baseline, &ProfileGate::default()).passed());
    }

    #[test]
    fn render_mentions_store_and_alloc_state() {
        let p = ProfileSummary::from_event_runs(&[events_with(&[("acquire", 1_000)])]);
        let text = p.render();
        assert!(text.contains("store: 2 hits"), "{text}");
        assert!(text.contains("not tracked"), "{text}");
        assert!(text.contains("acquire"), "{text}");
    }
}
