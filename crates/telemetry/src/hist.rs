//! Fixed log2-bucket latency/size histograms.
//!
//! [`Histogram`] is the third metric kind next to counters and gauges:
//! stages record individual `u64` observations (per-slice latencies in µs,
//! store payload sizes in bytes, retry backoff delays, search iteration
//! counts) and the report layer folds them into a compact
//! [`HistogramSummary`] (count/min/p50/p90/p99/max).
//!
//! # Bucketing
//!
//! Buckets are powers of two: observation `v` lands in bucket
//! `bit_width(v)` (so bucket 0 holds exactly `0`, bucket `b ≥ 1` holds
//! `2^(b-1) ..= 2^b - 1`). 65 buckets cover the full `u64` range with no
//! allocation-time configuration and no floating point, which keeps
//! recording cheap and the summaries bit-deterministic. Quantiles are
//! resolved to the upper bound of the bucket containing the requested
//! rank, clamped into `[min, max]` — a value that is exact for the tails
//! the profile gate cares about and never inverts ordering
//! (`p50 ≤ p90 ≤ p99` by construction).

use serde::{Deserialize, Serialize};

/// Number of log2 buckets: one for zero plus one per `u64` bit.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A fixed-bucket log2 histogram of `u64` observations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    counts: [u64; HISTOGRAM_BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self {
            counts: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Bucket index for an observation: 0 for 0, else `bit_width(v)`.
    pub fn bucket_index(value: u64) -> usize {
        (u64::BITS - value.leading_zeros()) as usize
    }

    /// Inclusive upper bound of a bucket (`2^b - 1`; bucket 0 → 0).
    pub fn bucket_upper_bound(bucket: usize) -> u64 {
        if bucket == 0 {
            0
        } else if bucket >= 64 {
            u64::MAX
        } else {
            (1u64 << bucket) - 1
        }
    }

    /// Records one observation.
    pub fn record(&mut self, value: u64) {
        self.counts[Self::bucket_index(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest observation (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest observation (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Per-bucket counts, lowest bucket first.
    pub fn bucket_counts(&self) -> &[u64; HISTOGRAM_BUCKETS] {
        &self.counts
    }

    /// Folds another histogram into this one. Merging is associative and
    /// commutative: bucket counts, counts and sums add; min/max take the
    /// extremes. `merge(a, merge(b, c)) == merge(merge(a, b), c)`.
    pub fn merge(&mut self, other: &Histogram) {
        for (dst, src) in self.counts.iter_mut().zip(other.counts.iter()) {
            *dst += src;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Value at quantile `q ∈ [0, 1]`: the upper bound of the bucket
    /// containing rank `ceil(q · count)`, clamped into `[min, max]`.
    /// Returns 0 when empty. Monotonic in `q`.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (b, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::bucket_upper_bound(b).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Condenses the histogram into its named summary form.
    pub fn summarize(&self, name: &str) -> HistogramSummary {
        HistogramSummary {
            name: name.to_string(),
            count: self.count(),
            min: self.min(),
            p50: self.quantile(0.50),
            p90: self.quantile(0.90),
            p99: self.quantile(0.99),
            max: self.max(),
        }
    }
}

/// Compact rendering of one histogram for reports and profiles.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramSummary {
    /// Histogram name (e.g. `acquire.slice_us`).
    pub name: String,
    /// Number of observations.
    pub count: u64,
    /// Smallest observation.
    pub min: u64,
    /// Median (bucket upper bound, clamped into `[min, max]`).
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 99th percentile.
    pub p99: u64,
    /// Largest observation.
    pub max: u64,
}

impl HistogramSummary {
    /// One-line human rendering, e.g.
    /// `acquire.slice_us: n=64 min=812 p50=1023 p90=2047 p99=4095 max=3922`.
    pub fn render(&self) -> String {
        format!(
            "{}: n={} min={} p50={} p90={} p99={} max={}",
            self.name, self.count, self.min, self.p50, self.p90, self.p99, self.max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_boundaries() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(u64::MAX), 64);
        for b in 0..HISTOGRAM_BUCKETS {
            let hi = Histogram::bucket_upper_bound(b);
            assert_eq!(Histogram::bucket_index(hi), b, "upper bound of {b}");
        }
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.quantile(0.5), 0);
        let s = h.summarize("empty");
        assert_eq!((s.count, s.min, s.p50, s.max), (0, 0, 0, 0));
    }

    #[test]
    fn quantiles_are_ordered_and_clamped() {
        let mut h = Histogram::new();
        for v in [3u64, 5, 9, 17, 33, 65, 129, 1025] {
            h.record(v);
        }
        let s = h.summarize("t");
        assert!(s.min <= s.p50 && s.p50 <= s.p90 && s.p90 <= s.p99 && s.p99 <= s.max);
        assert_eq!(s.count, 8);
        assert_eq!(s.min, 3);
        assert_eq!(s.max, 1025);
        // Single value: every quantile collapses onto it.
        let mut one = Histogram::new();
        one.record(42);
        assert_eq!(one.quantile(0.0), 42);
        assert_eq!(one.quantile(0.5), 42);
        assert_eq!(one.quantile(1.0), 42);
    }

    #[test]
    fn merge_matches_recording_into_one() {
        let values_a = [1u64, 2, 1000, 7];
        let values_b = [0u64, 3, 500_000];
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut all = Histogram::new();
        for v in values_a {
            a.record(v);
            all.record(v);
        }
        for v in values_b {
            b.record(v);
            all.record(v);
        }
        a.merge(&b);
        assert_eq!(a, all);
    }
}
