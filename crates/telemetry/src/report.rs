//! The [`RunReport`] provenance record assembled from a recorded event
//! stream.

use serde::{Deserialize, Serialize};

use crate::hist::{Histogram, HistogramSummary};
use crate::recorder::{Event, EventType};

/// Echo of the pipeline configuration that produced a run, so a report is
/// interpretable on its own. Filled in by the pipeline crate; plain fields
/// here keep `hifi-telemetry` free of upstream dependencies.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConfigEcho {
    /// Sense-amplifier topology under study (e.g. `"open_bitline"`).
    pub topology: String,
    /// Number of sense-amplifier pairs in the synthesized region.
    pub n_pairs: u32,
    /// Voxel pitch of the synthetic volume in nanometres.
    pub voxel_nm: f64,
    /// Whether the SEM imaging degradation model ran (false = pristine).
    pub imaging: bool,
    /// SEM dwell time per pixel in microseconds (imaging runs only).
    pub dwell_us: Option<f64>,
    /// Per-slice drift sigma in pixels (imaging runs only).
    pub drift_sigma_px: Option<f64>,
    /// Slab thickness per acquired slice in voxels (imaging runs only).
    pub slice_voxels: Option<u32>,
    /// PRNG seed of the imaging model (imaging runs only).
    pub seed: Option<u64>,
    /// Total-variation denoise weight.
    pub denoise_lambda: f64,
    /// Denoise iteration count.
    pub denoise_iterations: u32,
    /// Alignment search window half-width in pixels.
    pub align_window: u32,
    /// Index of the sense-amplifier pair the analysis window centres on.
    pub window_pair: u32,
    /// Whether a fault-injection plan was active for the run.
    pub faults: bool,
    /// Seed of the fault plan (fault runs only).
    pub fault_seed: Option<u64>,
}

impl ConfigEcho {
    /// A pristine-run echo with the given topology; imaging fields unset.
    pub fn pristine(topology: impl Into<String>) -> Self {
        Self {
            topology: topology.into(),
            n_pairs: 0,
            voxel_nm: 0.0,
            imaging: false,
            dwell_us: None,
            drift_sigma_px: None,
            slice_voxels: None,
            seed: None,
            denoise_lambda: 0.0,
            denoise_iterations: 0,
            align_window: 0,
            window_pair: 0,
            faults: false,
            fault_seed: None,
        }
    }
}

/// Wall time of one completed pipeline stage.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageTiming {
    /// Span name (stage name for top-level stages).
    pub name: String,
    /// Nesting depth (0 = pipeline stage, 1 = sub-step, ...).
    pub depth: u32,
    /// Wall time in microseconds.
    pub duration_us: u64,
}

/// Final accumulated value of one counter.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CounterTotal {
    /// Counter name.
    pub name: String,
    /// Sum of all increments over the run.
    pub total: u64,
}

/// Summary statistics over all observations of one gauge.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GaugeStat {
    /// Gauge name.
    pub name: String,
    /// Number of observations.
    pub count: u64,
    /// Smallest observed value.
    pub min: f64,
    /// Largest observed value.
    pub max: f64,
    /// Arithmetic mean of observations.
    pub mean: f64,
    /// The final observation (often the one that matters, e.g. a
    /// whole-volume accuracy recorded once at stage end).
    pub last: f64,
}

/// The fidelity metrics the paper's methodology tracks, pulled out of the
/// gauge stream by well-known name (see [`crate::names`]). All `None` for
/// pristine runs, which skip the imaging chain.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FidelityMetrics {
    /// Mean per-slice PSNR of the raw acquisition vs. ideal render (dB).
    pub psnr_noisy_db: Option<f64>,
    /// Mean per-slice PSNR after alignment + denoise vs. ideal render (dB).
    pub psnr_denoised_db: Option<f64>,
    /// Fraction of reconstructed voxels matching the pristine volume.
    pub voxel_accuracy: Option<f64>,
    /// Mean absolute residual drift after alignment, px/slice.
    pub residual_drift_px: Option<f64>,
    /// The paper's alignment budget for this stack, px.
    pub alignment_budget_px: Option<f64>,
    /// Worst relative dimension deviation vs. generator ground truth.
    pub worst_dimension_deviation: Option<f64>,
}

impl FidelityMetrics {
    /// How many of the metrics were recorded.
    pub fn recorded_count(&self) -> usize {
        [
            self.psnr_noisy_db,
            self.psnr_denoised_db,
            self.voxel_accuracy,
            self.residual_drift_px,
            self.alignment_budget_px,
            self.worst_dimension_deviation,
        ]
        .iter()
        .filter(|m| m.is_some())
        .count()
    }
}

/// Fault-injection and recovery totals of one run, extracted from the
/// `fault.*` counters (see [`crate::names`]). All zero for runs without a
/// fault plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct FaultTotals {
    /// Faults injected by the run's fault plan.
    pub injected: u64,
    /// Retry attempts made in response.
    pub retried: u64,
    /// Operations that recovered after at least one retry.
    pub recovered: u64,
    /// Operations that exhausted retries and were gracefully degraded.
    pub degraded: u64,
}

impl FaultTotals {
    /// Whether the run saw any fault activity at all.
    pub fn any(&self) -> bool {
        self.injected + self.retried + self.recovered + self.degraded > 0
    }
}

/// Speedup of one stage between two runs of the same pipeline at
/// different thread counts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageSpeedup {
    /// Stage name.
    pub name: String,
    /// Baseline (e.g. single-thread) wall time divided by this run's wall
    /// time; > 1 means this run was faster.
    pub speedup: f64,
}

/// Provenance record of one pipeline run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    /// Configuration that produced the run.
    pub config: ConfigEcho,
    /// Thread count the run's parallel stages resolved to (the last
    /// [`crate::names::PARALLEL_THREADS`] gauge), if recorded.
    pub threads: Option<f64>,
    /// Wall time per completed span, in completion order.
    pub stages: Vec<StageTiming>,
    /// Total wall time of the outermost span (µs), 0 if none completed.
    pub total_us: u64,
    /// Final counter totals, in first-increment order.
    pub counters: Vec<CounterTotal>,
    /// Per-gauge summary statistics, in first-observation order.
    pub gauges: Vec<GaugeStat>,
    /// Per-histogram summaries (count/min/p50/p90/p99/max), in
    /// first-observation order.
    pub histograms: Vec<HistogramSummary>,
    /// Named fidelity metrics extracted from the gauge stream.
    pub fidelity: FidelityMetrics,
    /// Fault-injection and recovery totals extracted from the counters.
    pub faults: FaultTotals,
    /// Number of events in the underlying stream.
    pub event_count: u64,
}

impl RunReport {
    /// Assembles a report from a recorded event stream.
    ///
    /// Stage timings come from `SpanEnd` events; counters fold to their
    /// final totals; gauges fold to min/max/mean/last; fidelity metrics
    /// are the *last* observation of each [`crate::names`] gauge.
    pub fn from_events(config: ConfigEcho, events: &[Event]) -> Self {
        let mut stages = Vec::new();
        let mut total_us = 0u64;
        let mut counters: Vec<CounterTotal> = Vec::new();
        let mut gauges: Vec<GaugeStat> = Vec::new();
        let mut hists: Vec<(String, Histogram)> = Vec::new();

        for ev in events {
            match ev.kind {
                EventType::SpanEnd => {
                    let duration_us = ev.duration_us.unwrap_or(0);
                    if ev.depth == 0 {
                        total_us = total_us.saturating_add(duration_us);
                    }
                    stages.push(StageTiming {
                        name: ev.name.clone(),
                        depth: ev.depth,
                        duration_us,
                    });
                }
                EventType::Counter => {
                    let total = ev.total.unwrap_or(0);
                    match counters.iter_mut().find(|c| c.name == ev.name) {
                        Some(c) => c.total = c.total.max(total),
                        None => counters.push(CounterTotal {
                            name: ev.name.clone(),
                            total,
                        }),
                    }
                }
                EventType::Gauge => {
                    let Some(v) = ev.value else { continue };
                    match gauges.iter_mut().find(|g| g.name == ev.name) {
                        Some(g) => {
                            g.min = g.min.min(v);
                            g.max = g.max.max(v);
                            g.mean += (v - g.mean) / (g.count + 1) as f64;
                            g.count += 1;
                            g.last = v;
                        }
                        None => gauges.push(GaugeStat {
                            name: ev.name.clone(),
                            count: 1,
                            min: v,
                            max: v,
                            mean: v,
                            last: v,
                        }),
                    }
                }
                EventType::Histogram => {
                    let value = ev.delta.unwrap_or(0);
                    match hists.iter_mut().find(|(n, _)| *n == ev.name) {
                        Some((_, h)) => h.record(value),
                        None => {
                            let mut h = Histogram::new();
                            h.record(value);
                            hists.push((ev.name.clone(), h));
                        }
                    }
                }
                EventType::SpanStart | EventType::ThreadSpan => {}
            }
        }
        let histograms = hists.iter().map(|(n, h)| h.summarize(n)).collect();

        let find = |name: &str| gauges.iter().find(|g| g.name == name).map(|g| g.last);
        let fidelity = FidelityMetrics {
            psnr_noisy_db: find(crate::names::PSNR_NOISY),
            psnr_denoised_db: find(crate::names::PSNR_DENOISED),
            voxel_accuracy: find(crate::names::VOXEL_ACCURACY),
            residual_drift_px: find(crate::names::RESIDUAL_DRIFT),
            alignment_budget_px: find(crate::names::ALIGNMENT_BUDGET),
            worst_dimension_deviation: find(crate::names::WORST_DIMENSION_DEVIATION),
        };

        let threads = find(crate::names::PARALLEL_THREADS);

        let counter = |name: &str| {
            counters
                .iter()
                .find(|c| c.name == name)
                .map_or(0, |c| c.total)
        };
        let faults = FaultTotals {
            injected: counter(crate::names::FAULT_INJECTED),
            retried: counter(crate::names::FAULT_RETRIED),
            recovered: counter(crate::names::FAULT_RECOVERED),
            degraded: counter(crate::names::FAULT_DEGRADED),
        };

        Self {
            config,
            threads,
            stages,
            total_us,
            counters,
            gauges,
            histograms,
            fidelity,
            faults,
            event_count: events.len() as u64,
        }
    }

    /// Summary of the named histogram, if any observations were recorded.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSummary> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// Per-stage speedups of this run against a `baseline` run of the same
    /// pipeline (typically recorded with the thread count pinned to 1):
    /// baseline wall time over this run's wall time, for every top-level
    /// stage both runs completed with non-zero time. Scaling harnesses
    /// record these as `parallel.speedup.<stage>` gauges (see
    /// [`crate::names::PARALLEL_SPEEDUP_PREFIX`]).
    pub fn stage_speedups(&self, baseline: &RunReport) -> Vec<StageSpeedup> {
        self.stages
            .iter()
            .filter(|s| s.depth == 0 && s.duration_us > 0)
            .filter_map(|s| {
                let base = baseline.stage_us(&s.name)?;
                if base == 0 {
                    return None;
                }
                Some(StageSpeedup {
                    name: s.name.clone(),
                    speedup: base as f64 / s.duration_us as f64,
                })
            })
            .collect()
    }

    /// Wall time of the named stage (first match), if it completed.
    pub fn stage_us(&self, name: &str) -> Option<u64> {
        self.stages
            .iter()
            .find(|s| s.name == name)
            .map(|s| s.duration_us)
    }

    /// Final total of the named counter (0 if never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map_or(0, |c| c.total)
    }

    /// Serializes the report as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).unwrap_or_else(|_| "{}".into())
    }

    /// One-line human summary: total time, stage count, fidelity headline.
    pub fn summary_line(&self) -> String {
        let stages = self.stages.iter().filter(|s| s.depth == 0).count();
        let mut line = format!(
            "{} run: {} stages in {:.1} ms",
            self.config.topology,
            stages,
            self.total_us as f64 / 1e3
        );
        if let Some(acc) = self.fidelity.voxel_accuracy {
            line.push_str(&format!(", voxel accuracy {:.3}", acc));
        }
        if let Some(psnr) = self.fidelity.psnr_denoised_db {
            line.push_str(&format!(", denoised PSNR {:.1} dB", psnr));
        }
        if let Some(drift) = self.fidelity.residual_drift_px {
            line.push_str(&format!(", residual drift {:.3} px", drift));
        }
        if self.faults.any() {
            line.push_str(&format!(
                ", faults {}/{} recovered ({} degraded)",
                self.faults.recovered, self.faults.injected, self.faults.degraded
            ));
        }
        line
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::{with_span, JsonRecorder, Recorder};

    fn sample_report() -> RunReport {
        let mut rec = JsonRecorder::new();
        with_span(&mut rec, "acquire", |rec| {
            rec.counter("slices", 8);
            rec.gauge(crate::names::PSNR_NOISY, 17.2);
            rec.gauge(crate::names::PSNR_NOISY, 18.4);
        });
        with_span(&mut rec, "extract", |rec| {
            rec.counter("devices", 12);
            rec.gauge(crate::names::VOXEL_ACCURACY, 0.97);
        });
        let mut echo = ConfigEcho::pristine("open_bitline");
        echo.n_pairs = 4;
        echo.voxel_nm = 8.0;
        RunReport::from_events(echo, rec.events())
    }

    #[test]
    fn report_folds_spans_counters_and_gauges() {
        let report = sample_report();
        assert_eq!(report.stages.len(), 2);
        assert!(report.stage_us("acquire").is_some());
        assert!(report.stage_us("missing").is_none());
        assert_eq!(report.counter("slices"), 8);
        assert_eq!(report.counter("devices"), 12);
        assert_eq!(report.counter("missing"), 0);
        let psnr = report
            .gauges
            .iter()
            .find(|g| g.name == crate::names::PSNR_NOISY)
            .unwrap();
        assert_eq!(psnr.count, 2);
        assert_eq!(psnr.min, 17.2);
        assert_eq!(psnr.max, 18.4);
        assert!((psnr.mean - 17.8).abs() < 1e-9);
        assert_eq!(psnr.last, 18.4);
        assert_eq!(report.fidelity.voxel_accuracy, Some(0.97));
        assert_eq!(report.fidelity.psnr_noisy_db, Some(18.4));
        assert_eq!(report.fidelity.recorded_count(), 2);
        assert!(report.total_us <= report.stages.iter().map(|s| s.duration_us).sum());
    }

    #[test]
    fn run_report_round_trips_through_json() {
        let report = sample_report();
        let json = report.to_json();
        let back: RunReport = serde_json::from_str(&json).expect("parse");
        assert_eq!(back.config, report.config);
        assert_eq!(back.counters, report.counters);
        assert_eq!(back.stages, report.stages);
        assert_eq!(back.event_count, report.event_count);
        assert_eq!(back.fidelity, report.fidelity);
        assert_eq!(back.gauges.len(), report.gauges.len());
    }

    #[test]
    fn summary_line_mentions_fidelity_when_present() {
        let report = sample_report();
        let line = report.summary_line();
        assert!(line.contains("open_bitline"), "{line}");
        assert!(line.contains("2 stages"), "{line}");
        assert!(line.contains("voxel accuracy 0.970"), "{line}");
    }

    #[test]
    fn fault_counters_are_lifted_into_totals() {
        let mut rec = JsonRecorder::new();
        rec.counter(crate::names::FAULT_INJECTED, 5);
        rec.counter(crate::names::FAULT_RETRIED, 4);
        rec.counter(crate::names::FAULT_RECOVERED, 3);
        rec.counter(crate::names::FAULT_DEGRADED, 1);
        let report = RunReport::from_events(ConfigEcho::pristine("classic"), rec.events());
        assert_eq!(
            report.faults,
            FaultTotals {
                injected: 5,
                retried: 4,
                recovered: 3,
                degraded: 1,
            }
        );
        assert!(report.faults.any());
        let line = report.summary_line();
        assert!(line.contains("faults 3/5 recovered (1 degraded)"), "{line}");
        // Fault-free streams fold to all-zero totals and stay silent.
        let clean = sample_report();
        assert_eq!(clean.faults, FaultTotals::default());
        assert!(!clean.faults.any());
        assert!(!clean.summary_line().contains("faults"));
    }

    #[test]
    fn threads_gauge_is_lifted_into_report() {
        let mut rec = JsonRecorder::new();
        rec.gauge(crate::names::PARALLEL_THREADS, 4.0);
        with_span(&mut rec, "acquire", |_| {});
        let report = RunReport::from_events(ConfigEcho::pristine("open_bitline"), rec.events());
        assert_eq!(report.threads, Some(4.0));
        assert_eq!(sample_report().threads, None);
    }

    #[test]
    fn stage_speedups_divide_baseline_by_this_run() {
        let mut baseline = sample_report();
        let mut parallel = sample_report();
        for s in &mut baseline.stages {
            s.duration_us = 400;
        }
        for s in &mut parallel.stages {
            s.duration_us = 100;
        }
        let speedups = parallel.stage_speedups(&baseline);
        assert_eq!(speedups.len(), 2);
        for s in &speedups {
            assert_eq!(s.speedup, 4.0, "{}", s.name);
        }
        // Stages absent from the baseline, or with zero recorded time on
        // either side, are skipped rather than reported as 0 or infinity.
        baseline.stages[0].duration_us = 0;
        parallel.stages[1].name = "only_here".into();
        assert!(parallel.stage_speedups(&baseline).is_empty());
    }

    #[test]
    fn zero_duration_stages_never_poison_speedup_gauges() {
        // Pins the guard: a 0 µs stage on either side of the comparison is
        // skipped outright, so `parallel.speedup.*` gauges can never see an
        // infinite or NaN ratio.
        let mut baseline = sample_report();
        let mut this_run = sample_report();
        for s in &mut baseline.stages {
            s.duration_us = 0; // e.g. sub-µs stage on a fast machine
        }
        for s in &mut this_run.stages {
            s.duration_us = 250;
        }
        assert!(
            this_run.stage_speedups(&baseline).is_empty(),
            "zero-duration baseline must yield no speedup entries"
        );
        // And the mirror image: this run at 0 µs would divide by zero.
        for s in &mut baseline.stages {
            s.duration_us = 250;
        }
        for s in &mut this_run.stages {
            s.duration_us = 0;
        }
        assert!(this_run.stage_speedups(&baseline).is_empty());
        // Mixed case: only the well-defined pair survives, finite and > 0.
        this_run.stages[0].duration_us = 125;
        let speedups = this_run.stage_speedups(&baseline);
        assert_eq!(speedups.len(), 1);
        assert!(speedups[0].speedup.is_finite());
        assert_eq!(speedups[0].speedup, 2.0);
    }

    #[test]
    fn histogram_events_fold_into_summaries() {
        let mut rec = JsonRecorder::new();
        for v in [100u64, 200, 400, 800] {
            rec.histogram("acquire.slice_us", v);
        }
        rec.histogram("store.get_bytes", 4096);
        let report = RunReport::from_events(ConfigEcho::pristine("classic"), rec.events());
        assert_eq!(report.histograms.len(), 2);
        let h = report.histogram("acquire.slice_us").expect("present");
        assert_eq!(h.count, 4);
        assert_eq!(h.min, 100);
        assert_eq!(h.max, 800);
        assert!(h.p50 <= h.p90 && h.p90 <= h.p99);
        assert!(report.histogram("missing").is_none());
        // Report survives a JSON round trip with histograms attached.
        let back: RunReport = serde_json::from_str(&report.to_json()).expect("parse");
        assert_eq!(back.histograms, report.histograms);
    }

    #[test]
    fn empty_stream_yields_empty_report() {
        let report = RunReport::from_events(ConfigEcho::pristine("none"), &[]);
        assert_eq!(report.total_us, 0);
        assert!(report.stages.is_empty());
        assert!(report.counters.is_empty());
        assert!(report.gauges.is_empty());
        assert_eq!(report.fidelity.recorded_count(), 0);
        assert_eq!(report.event_count, 0);
    }
}
