//! Allocation high-water tracking behind the `alloc-track` feature.
//!
//! When the feature is enabled, [`CountingAllocator`] is installed as the
//! process `#[global_allocator]`: a thin wrapper over [`System`] that
//! maintains live-bytes and peak-bytes atomics. The query API compiles in
//! both configurations — without the feature (or in a process that
//! installed a different allocator) [`peak_bytes`] returns `None`, so the
//! pipeline can record the `alloc.peak_bytes` gauge opportunistically
//! without any `cfg` of its own.
//!
//! The counters are process-global: concurrent pipeline runs (a campaign)
//! share one high-water mark, so treat per-run peaks as an upper bound.
//! Overhead is two relaxed atomic RMWs per allocation — negligible next
//! to the allocation itself, but the feature is off by default to keep
//! the bench-gated hot paths byte-identical.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Live heap bytes allocated through the counting allocator.
static CURRENT: AtomicU64 = AtomicU64::new(0);
/// High-water mark of [`CURRENT`] since process start or [`reset_peak`].
static PEAK: AtomicU64 = AtomicU64::new(0);
/// Set on first use; distinguishes "feature off" from "no allocations".
static INSTALLED: AtomicBool = AtomicBool::new(false);

fn add(n: usize) {
    let live = CURRENT.fetch_add(n as u64, Ordering::Relaxed) + n as u64;
    PEAK.fetch_max(live, Ordering::Relaxed);
}

fn sub(n: usize) {
    // Saturating: a dealloc of memory obtained before tracking started
    // must not wrap the counter.
    let _ = CURRENT.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |live| {
        Some(live.saturating_sub(n as u64))
    });
}

/// Byte-counting wrapper over the system allocator.
pub struct CountingAllocator;

// SAFETY: defers every allocation to `System`, which upholds the
// `GlobalAlloc` contract; the wrapper only updates atomic counters.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        INSTALLED.store(true, Ordering::Relaxed);
        let ptr = System.alloc(layout);
        if !ptr.is_null() {
            add(layout.size());
        }
        ptr
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        INSTALLED.store(true, Ordering::Relaxed);
        let ptr = System.alloc_zeroed(layout);
        if !ptr.is_null() {
            add(layout.size());
        }
        ptr
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        sub(layout.size());
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let new_ptr = System.realloc(ptr, layout, new_size);
        if !new_ptr.is_null() {
            sub(layout.size());
            add(new_size);
        }
        new_ptr
    }
}

#[cfg(feature = "alloc-track")]
#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

/// Whether the counting allocator is live in this process.
pub fn tracking_enabled() -> bool {
    INSTALLED.load(Ordering::Relaxed)
}

/// Live heap bytes, or `None` when tracking is not installed.
pub fn current_bytes() -> Option<u64> {
    tracking_enabled().then(|| CURRENT.load(Ordering::Relaxed))
}

/// Peak heap bytes since process start or the last [`reset_peak`], or
/// `None` when tracking is not installed.
pub fn peak_bytes() -> Option<u64> {
    tracking_enabled().then(|| PEAK.load(Ordering::Relaxed))
}

/// Resets the high-water mark to the current live size, so a caller can
/// measure the peak of one phase. No-op when tracking is not installed.
pub fn reset_peak() {
    if tracking_enabled() {
        PEAK.store(CURRENT.load(Ordering::Relaxed), Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[cfg(not(feature = "alloc-track"))]
    #[test]
    fn queries_report_untracked_without_the_feature() {
        assert!(!tracking_enabled());
        assert_eq!(current_bytes(), None);
        assert_eq!(peak_bytes(), None);
        reset_peak(); // must be a safe no-op
    }

    #[cfg(feature = "alloc-track")]
    #[test]
    fn peak_rises_with_allocations() {
        reset_peak();
        let before = peak_bytes().expect("tracking installed");
        let buf = vec![0u8; 1 << 20];
        let after = peak_bytes().expect("tracking installed");
        assert!(after >= before + (1 << 20), "{before} -> {after}");
        drop(buf);
        assert!(current_bytes().unwrap() <= after);
    }
}
