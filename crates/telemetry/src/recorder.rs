//! The [`Recorder`] trait and its two implementations.

use std::time::Instant;

use serde::{Deserialize, Serialize};

/// What a single [`Event`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EventType {
    /// A span opened (`name`, `seq`; `depth` is the nesting level).
    SpanStart,
    /// A span closed (`name`, `seq`, `duration_us`).
    SpanEnd,
    /// A counter was incremented (`name`, `delta`, `total`).
    Counter,
    /// A gauge observation (`name`, `value`).
    Gauge,
    /// A histogram observation (`name`, `delta` holds the value).
    Histogram,
    /// A completed span on a worker-thread lane (`name`, `tid`,
    /// `elapsed_us` is the lane-span start, `duration_us` its length).
    /// Emitted after the fact when a stage drains its lane profiler, so
    /// `elapsed_us` may precede earlier events in stream order.
    ThreadSpan,
}

/// One entry in a [`JsonRecorder`]'s event stream.
///
/// Flat by design: the vendored serde derive handles plain structs and unit
/// enums, so the per-type payload lives in optional fields rather than enum
/// variants. `elapsed_us` is measured from recorder construction on a
/// monotonic clock.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Event {
    /// Position in the stream (0-based, strictly increasing).
    pub seq: u64,
    /// Microseconds since the recorder was created (monotonic).
    pub elapsed_us: u64,
    /// What happened.
    pub kind: EventType,
    /// Span, counter or gauge name.
    pub name: String,
    /// Span nesting depth at the time of the event (0 = top level).
    pub depth: u32,
    /// Worker-lane index (vendored-rayon thread index). 0 for everything
    /// on the main lane; only `ThreadSpan` events carry other values.
    pub tid: u32,
    /// `SpanEnd` only: span wall time in microseconds.
    pub duration_us: Option<u64>,
    /// `Counter` only: the increment.
    pub delta: Option<u64>,
    /// `Counter` only: the running total after the increment.
    pub total: Option<u64>,
    /// `Gauge` only: the observed value.
    pub value: Option<f64>,
}

/// Sink for pipeline instrumentation.
///
/// Implementations must be cheap to call; code paths that compute a value
/// *only* to record it should gate on [`Recorder::enabled`] first.
pub trait Recorder {
    /// `false` means events are discarded; callers may skip computing
    /// expensive measurements (e.g. PSNR against an ideal render).
    fn enabled(&self) -> bool;

    /// Opens a named span. Pair with [`Recorder::span_end`], innermost
    /// first. Prefer [`with_span`] which cannot unbalance the stack.
    fn span_start(&mut self, name: &str);

    /// Closes the innermost open span. `name` must match the most recent
    /// unclosed [`Recorder::span_start`].
    fn span_end(&mut self, name: &str);

    /// Adds `delta` to the named monotonic counter.
    fn counter(&mut self, name: &str, delta: u64);

    /// Records a point-in-time observation. Non-finite values are
    /// sanitized by the implementation (NaN dropped, ±∞ clamped).
    fn gauge(&mut self, name: &str, value: f64);

    /// Records one observation into the named histogram (log2 buckets;
    /// see [`Histogram`](crate::Histogram)). Default: discarded.
    fn histogram(&mut self, _name: &str, _value: u64) {}

    /// Records a completed span that ran on a worker-thread lane, after
    /// the fact: `start_us` is on the same clock as [`Recorder::now_us`].
    /// Default: discarded.
    fn thread_span(&mut self, _name: &str, _tid: u32, _start_us: u64, _duration_us: u64) {}

    /// Microseconds elapsed on this recorder's clock (the `elapsed_us`
    /// domain of its events). Default 0 for recorders with no clock.
    fn now_us(&self) -> u64 {
        0
    }
}

/// Runs `body` inside a span on `rec`, closing it even on early return of
/// a value (panics still unwind without closing — acceptable for a
/// measurement pipeline where a panic aborts the run).
pub fn with_span<R: Recorder + ?Sized, T>(
    rec: &mut R,
    name: &str,
    body: impl FnOnce(&mut R) -> T,
) -> T {
    rec.span_start(name);
    let out = body(rec);
    rec.span_end(name);
    out
}

/// The zero-overhead recorder: every method is an empty inlined body, so
/// pipeline code monomorphised over it compiles to the uninstrumented
/// machine code.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    #[inline(always)]
    fn enabled(&self) -> bool {
        false
    }
    #[inline(always)]
    fn span_start(&mut self, _name: &str) {}
    #[inline(always)]
    fn span_end(&mut self, _name: &str) {}
    #[inline(always)]
    fn counter(&mut self, _name: &str, _delta: u64) {}
    #[inline(always)]
    fn gauge(&mut self, _name: &str, _value: f64) {}
    #[inline(always)]
    fn histogram(&mut self, _name: &str, _value: u64) {}
    #[inline(always)]
    fn thread_span(&mut self, _name: &str, _tid: u32, _start_us: u64, _duration_us: u64) {}
    #[inline(always)]
    fn now_us(&self) -> u64 {
        0
    }
}

/// Records a structured event stream suitable for JSON serialization and
/// [`RunReport`](crate::RunReport) assembly.
#[derive(Debug)]
pub struct JsonRecorder {
    origin: Instant,
    events: Vec<Event>,
    /// Open spans: (name, start seq, start instant).
    stack: Vec<(String, u64, Instant)>,
    /// Running totals per counter name, insertion-ordered.
    totals: Vec<(String, u64)>,
}

impl Default for JsonRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl JsonRecorder {
    /// Creates an empty recorder; `elapsed_us` timestamps count from here.
    pub fn new() -> Self {
        Self {
            origin: Instant::now(),
            events: Vec::new(),
            stack: Vec::new(),
            totals: Vec::new(),
        }
    }

    /// The recorded events, in emission order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Consumes the recorder, returning the event stream.
    pub fn into_events(self) -> Vec<Event> {
        self.events
    }

    /// Running total of a counter (0 if never incremented).
    pub fn counter_total(&self, name: &str) -> u64 {
        self.totals
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |(_, t)| *t)
    }

    /// Names of spans currently open, outermost first.
    pub fn open_spans(&self) -> Vec<&str> {
        self.stack.iter().map(|(n, _, _)| n.as_str()).collect()
    }

    /// Serializes the event stream as a JSON array.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(&self.events.to_vec()).unwrap_or_else(|_| "[]".into())
    }

    fn elapsed_us(&self) -> u64 {
        self.origin.elapsed().as_micros().min(u64::MAX as u128) as u64
    }

    fn push(&mut self, kind: EventType, name: &str, depth: u32) -> &mut Event {
        let seq = self.events.len() as u64;
        self.events.push(Event {
            seq,
            elapsed_us: self.elapsed_us(),
            kind,
            name: name.to_string(),
            depth,
            tid: 0,
            duration_us: None,
            delta: None,
            total: None,
            value: None,
        });
        self.events.last_mut().expect("just pushed")
    }
}

impl Recorder for JsonRecorder {
    fn enabled(&self) -> bool {
        true
    }

    fn span_start(&mut self, name: &str) {
        let depth = self.stack.len() as u32;
        let seq = self.events.len() as u64;
        self.push(EventType::SpanStart, name, depth);
        self.stack.push((name.to_string(), seq, Instant::now()));
    }

    fn span_end(&mut self, name: &str) {
        let Some((open_name, _, started)) = self.stack.pop() else {
            debug_assert!(false, "span_end(\"{name}\") with no open span");
            return;
        };
        debug_assert_eq!(
            open_name, name,
            "span_end(\"{name}\") does not match innermost open span \"{open_name}\""
        );
        let duration_us = started.elapsed().as_micros().min(u64::MAX as u128) as u64;
        let depth = self.stack.len() as u32;
        let ev = self.push(EventType::SpanEnd, &open_name, depth);
        ev.duration_us = Some(duration_us);
    }

    fn counter(&mut self, name: &str, delta: u64) {
        let total = match self.totals.iter_mut().find(|(n, _)| n == name) {
            Some((_, t)) => {
                *t = t.saturating_add(delta);
                *t
            }
            None => {
                self.totals.push((name.to_string(), delta));
                delta
            }
        };
        let depth = self.stack.len() as u32;
        let ev = self.push(EventType::Counter, name, depth);
        ev.delta = Some(delta);
        ev.total = Some(total);
    }

    fn gauge(&mut self, name: &str, value: f64) {
        if value.is_nan() {
            return;
        }
        let value = value.clamp(f64::MIN, f64::MAX);
        let depth = self.stack.len() as u32;
        let ev = self.push(EventType::Gauge, name, depth);
        ev.value = Some(value);
    }

    fn histogram(&mut self, name: &str, value: u64) {
        let depth = self.stack.len() as u32;
        let ev = self.push(EventType::Histogram, name, depth);
        ev.delta = Some(value);
    }

    fn thread_span(&mut self, name: &str, tid: u32, start_us: u64, duration_us: u64) {
        let depth = self.stack.len() as u32;
        let ev = self.push(EventType::ThreadSpan, name, depth);
        ev.elapsed_us = start_us;
        ev.tid = tid;
        ev.duration_us = Some(duration_us);
    }

    fn now_us(&self) -> u64 {
        self.elapsed_us()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_discards_everything() {
        let mut rec = NoopRecorder;
        assert!(!rec.enabled());
        rec.span_start("a");
        rec.counter("c", 5);
        rec.gauge("g", 1.0);
        rec.span_end("a");
    }

    #[test]
    fn span_nesting_emits_start_end_in_stack_order() {
        let mut rec = JsonRecorder::new();
        with_span(&mut rec, "outer", |rec| {
            with_span(rec, "inner", |_| ());
        });
        let kinds: Vec<(EventType, &str, u32)> = rec
            .events()
            .iter()
            .map(|e| (e.kind, e.name.as_str(), e.depth))
            .collect();
        assert_eq!(
            kinds,
            vec![
                (EventType::SpanStart, "outer", 0),
                (EventType::SpanStart, "inner", 1),
                (EventType::SpanEnd, "inner", 1),
                (EventType::SpanEnd, "outer", 0),
            ]
        );
        assert!(rec.open_spans().is_empty());
        // Inner span closed before outer, so its duration is no longer.
        let durations: Vec<u64> = rec.events().iter().filter_map(|e| e.duration_us).collect();
        assert_eq!(durations.len(), 2);
        assert!(
            durations[0] <= durations[1],
            "inner {} > outer {}",
            durations[0],
            durations[1]
        );
    }

    #[test]
    fn counters_accumulate_monotonically() {
        let mut rec = JsonRecorder::new();
        rec.counter("devices", 3);
        rec.counter("devices", 0);
        rec.counter("devices", 4);
        rec.counter("other", 1);
        assert_eq!(rec.counter_total("devices"), 7);
        assert_eq!(rec.counter_total("other"), 1);
        assert_eq!(rec.counter_total("missing"), 0);
        // Running totals within one counter never decrease.
        let totals: Vec<u64> = rec
            .events()
            .iter()
            .filter(|e| e.kind == EventType::Counter && e.name == "devices")
            .map(|e| e.total.unwrap())
            .collect();
        assert_eq!(totals, vec![3, 3, 7]);
        assert!(totals.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn gauges_sanitize_non_finite_values() {
        let mut rec = JsonRecorder::new();
        rec.gauge("nan", f64::NAN);
        rec.gauge("inf", f64::INFINITY);
        rec.gauge("ninf", f64::NEG_INFINITY);
        rec.gauge("ok", 2.5);
        let values: Vec<(String, f64)> = rec
            .events()
            .iter()
            .map(|e| (e.name.clone(), e.value.unwrap()))
            .collect();
        assert_eq!(values.len(), 3, "NaN gauge must be dropped");
        assert_eq!(values[0], ("inf".into(), f64::MAX));
        assert_eq!(values[1], ("ninf".into(), f64::MIN));
        assert_eq!(values[2], ("ok".into(), 2.5));
    }

    #[test]
    fn event_stream_round_trips_through_json() {
        let mut rec = JsonRecorder::new();
        with_span(&mut rec, "stage", |rec| {
            rec.counter("items", 2);
            rec.gauge("score", 0.75);
        });
        let json = rec.to_json();
        let back: Vec<Event> = serde_json::from_str(&json).expect("parse");
        assert_eq!(back, rec.events());
    }

    #[test]
    fn histogram_and_thread_span_events_carry_payload() {
        let mut rec = JsonRecorder::new();
        rec.histogram("acquire.slice_us", 1234);
        rec.thread_span("acquire.slice", 3, 10, 90);
        let evs = rec.events();
        assert_eq!(evs[0].kind, EventType::Histogram);
        assert_eq!(evs[0].delta, Some(1234));
        assert_eq!(evs[0].tid, 0);
        assert_eq!(evs[1].kind, EventType::ThreadSpan);
        assert_eq!(evs[1].tid, 3);
        assert_eq!(evs[1].elapsed_us, 10);
        assert_eq!(evs[1].duration_us, Some(90));
        // Round-trips through JSON like every other event kind.
        let back: Vec<Event> = serde_json::from_str(&rec.to_json()).expect("parse");
        assert_eq!(back, evs);
    }

    #[test]
    fn noop_recorder_discards_new_kinds_too() {
        let mut rec = NoopRecorder;
        rec.histogram("h", 1);
        rec.thread_span("s", 1, 0, 1);
        assert_eq!(rec.now_us(), 0);
    }

    #[test]
    fn elapsed_and_seq_are_monotonic() {
        let mut rec = JsonRecorder::new();
        for i in 0..10 {
            rec.counter("tick", i);
        }
        let evs = rec.events();
        assert!(evs.windows(2).all(|w| w[0].seq + 1 == w[1].seq));
        assert!(evs.windows(2).all(|w| w[0].elapsed_us <= w[1].elapsed_us));
    }
}
