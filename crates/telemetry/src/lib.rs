//! Observability for the reverse-engineering pipeline: spans, counters,
//! gauges and structured run reports.
//!
//! HiFi-DRAM is a *measurement* pipeline — its credibility rests on knowing
//! how much fidelity each stage preserves. This crate provides the
//! instrumentation layer the rest of the workspace records into:
//!
//! - [`Recorder`] — the sink trait. Stages emit spans (monotonic wall
//!   times), counters (monotonically accumulating totals) and gauges
//!   (point-in-time measurements such as per-slice PSNR).
//! - [`NoopRecorder`] — the zero-cost default: `enabled()` is `false`, every
//!   method is an empty body, and instrumented code paths monomorphised
//!   over it compile down to the uninstrumented pipeline.
//! - [`JsonRecorder`] — records a structured event stream, serializable to
//!   JSON, from which a [`RunReport`] is assembled.
//! - [`RunReport`] — the provenance record of one pipeline run: config
//!   echo, per-stage wall times, counter totals, gauge statistics and the
//!   extracted [`FidelityMetrics`].
//!
//! # Examples
//!
//! ```
//! use hifi_telemetry::{with_span, JsonRecorder, Recorder};
//!
//! let mut rec = JsonRecorder::new();
//! let sum = with_span(&mut rec, "outer", |rec| {
//!     rec.counter("items", 3);
//!     with_span(rec, "inner", |_| 1 + 2)
//! });
//! assert_eq!(sum, 3);
//! assert_eq!(rec.counter_total("items"), 3);
//! assert_eq!(rec.events().len(), 5); // 2 starts + 1 counter + 2 ends
//! ```

pub mod alloc;
mod hist;
mod profile;
mod recorder;
mod report;
mod trace;

pub use hist::{Histogram, HistogramSummary, HISTOGRAM_BUCKETS};
pub use profile::{
    parse_run_events, run_events_to_json, DiffRow, DiffVerdict, ProfileDiff, ProfileGate,
    ProfileSummary, RunEvents, StageProfile, StoreTotals,
};
pub use recorder::{with_span, Event, EventType, JsonRecorder, NoopRecorder, Recorder};
pub use report::{
    ConfigEcho, CounterTotal, FaultTotals, FidelityMetrics, GaugeStat, RunReport, StageSpeedup,
    StageTiming,
};
pub use trace::{
    chrome_trace, validate_chrome, ChromeCheck, LaneProfiler, LaneSpan, Trace, TraceNode,
};

/// Well-known gauge names the [`RunReport`] builder folds into
/// [`FidelityMetrics`]. Stages recording fidelity use these exact names.
pub mod names {
    /// Mean per-slice PSNR of the raw acquisition vs. the ideal render (dB).
    pub const PSNR_NOISY: &str = "fidelity.psnr_noisy_db";
    /// Mean per-slice PSNR after alignment + denoising vs. the ideal render.
    pub const PSNR_DENOISED: &str = "fidelity.psnr_denoised_db";
    /// Fraction of voxels matching ground truth after reconstruction.
    pub const VOXEL_ACCURACY: &str = "fidelity.voxel_accuracy";
    /// Mean absolute residual drift after alignment (px/slice).
    pub const RESIDUAL_DRIFT: &str = "fidelity.residual_drift_px";
    /// The paper's alignment budget for this stack (px; Section IV-C).
    pub const ALIGNMENT_BUDGET: &str = "fidelity.alignment_budget_px";
    /// Worst relative dimension deviation vs. generator ground truth.
    pub const WORST_DIMENSION_DEVIATION: &str = "fidelity.worst_dimension_deviation";
    /// Thread count the run's parallel stages resolved to.
    pub const PARALLEL_THREADS: &str = "parallel.threads";
    /// Per-stage speedup gauge prefix: `parallel.speedup.<stage>` records
    /// a stage's single-thread wall time divided by its parallel wall time
    /// (recorded by scaling harnesses that run a pipeline at both counts).
    pub const PARALLEL_SPEEDUP_PREFIX: &str = "parallel.speedup.";
    /// Counter: pipeline stages served from the artifact store.
    pub const STORE_HIT: &str = "store.hit";
    /// Counter: stage lookups that missed (or hit a corrupt, evicted blob)
    /// and recomputed.
    pub const STORE_MISS: &str = "store.miss";
    /// Counter: artifact payload bytes written to the store this run.
    pub const STORE_BYTES_WRITTEN: &str = "store.bytes_written";
    /// Counter: artifact payload bytes read from the store this run.
    pub const STORE_BYTES_READ: &str = "store.bytes_read";
    /// Counter: faults injected by the run's fault plan.
    pub const FAULT_INJECTED: &str = "fault.injected";
    /// Counter: retry attempts made in response to injected faults.
    pub const FAULT_RETRIED: &str = "fault.retried";
    /// Counter: operations that recovered after at least one retry.
    pub const FAULT_RECOVERED: &str = "fault.recovered";
    /// Counter: operations that exhausted retries and were gracefully
    /// degraded (e.g. slices interpolated from neighbours).
    pub const FAULT_DEGRADED: &str = "fault.degraded";
    /// Gauge: virtual backoff milliseconds charged by the retry layer.
    pub const FAULT_BACKOFF_MS: &str = "fault.backoff_ms";
    /// Histogram: individual virtual backoff delays, µs per retry.
    pub const HIST_FAULT_BACKOFF_US: &str = "fault.backoff_delay_us";
    /// Histogram: per-slice SEM acquisition wall time, µs.
    pub const HIST_ACQUIRE_SLICE_US: &str = "acquire.slice_us";
    /// Histogram: per-slice ideal-render wall time, µs.
    pub const HIST_RENDER_SLICE_US: &str = "render.slice_us";
    /// Histogram: per-chunk TV-denoise wall time, µs.
    pub const HIST_DENOISE_SLICE_US: &str = "denoise.slice_us";
    /// Histogram: per-slice alignment registration wall time, µs.
    pub const HIST_ALIGN_SLICE_US: &str = "align.slice_us";
    /// Histogram: MI offset candidates scored per aligned slice.
    pub const HIST_ALIGN_SEARCH_ITERS: &str = "align.search_iters";
    /// Histogram: artifact store fetch latency, µs per get.
    pub const HIST_STORE_GET_US: &str = "store.get_us";
    /// Histogram: artifact store persist latency, µs per put.
    pub const HIST_STORE_PUT_US: &str = "store.put_us";
    /// Histogram: payload bytes per store get.
    pub const HIST_STORE_GET_BYTES: &str = "store.get_bytes";
    /// Histogram: payload bytes per store put.
    pub const HIST_STORE_PUT_BYTES: &str = "store.put_bytes";
    /// Gauge: allocation high-water mark of the run, bytes (recorded only
    /// when the `alloc-track` counting allocator is installed).
    pub const ALLOC_PEAK_BYTES: &str = "alloc.peak_bytes";
    /// Counter: seeded runs executed by a conformance campaign.
    pub const CONFORMANCE_RUNS: &str = "conformance.runs";
    /// Counter: campaign runs that passed every oracle.
    pub const CONFORMANCE_PASSED: &str = "conformance.passed";
    /// Counter: individual oracle verdicts that failed across a campaign.
    pub const CONFORMANCE_ORACLE_FAILURES: &str = "conformance.oracle_failures";
    /// Counter: accepted shrink steps while minimising failing specs.
    pub const CONFORMANCE_SHRINK_STEPS: &str = "conformance.shrink_steps";
    /// Gauge: worst per-device dimension error observed, in voxels.
    pub const CONFORMANCE_WORST_DIM_ERROR: &str = "conformance.worst_dim_error_voxels";
    /// Histogram: time a job spent queued before a serve worker claimed
    /// it, µs.
    pub const HIST_SERVE_QUEUE_WAIT_US: &str = "serve.queue_wait_us";
    /// Histogram: queue depth observed at each job admission.
    pub const HIST_SERVE_QUEUE_DEPTH: &str = "serve.queue_depth";
    /// Counter: seeded device runs executed by a rev (black-box RE) campaign.
    pub const REV_RUNS: &str = "rev.runs";
    /// Counter: rev runs whose inference agreed with ground truth on every
    /// field.
    pub const REV_PASSED: &str = "rev.passed";
    /// Counter: individual cross-validation fields that disagreed across a
    /// rev campaign.
    pub const REV_FIELD_DISAGREEMENTS: &str = "rev.field_disagreements";
    /// Counter: DRAM commands issued by a rev campaign's probes.
    pub const REV_COMMANDS: &str = "rev.commands_issued";
    /// Histogram: bus-visible latency of mapping probes, ns.
    pub const HIST_REV_PROBE_LATENCY_NS: &str = "rev.probe_latency_ns";
    /// Counter: Monte-Carlo mismatch samples run by an MNA offset sweep.
    pub const MNA_SAMPLES: &str = "analog.mna.samples";
    /// Counter: Monte-Carlo samples in which a stored value mis-sensed.
    pub const MNA_FAILURES: &str = "analog.mna.failures";
    /// Gauge: sensing yield of an MNA Monte-Carlo sweep, percent.
    pub const MNA_YIELD_PCT: &str = "analog.mna.yield_pct";
    /// Histogram: worst per-step Newton iteration count per MC sample.
    pub const HIST_MNA_NEWTON_ITERS: &str = "analog.mna.newton_iters";
    /// Histogram: latch split time of the stored-1 activation, ps.
    pub const HIST_MNA_SPLIT_PS: &str = "analog.mna.latch_split_ps";
}
