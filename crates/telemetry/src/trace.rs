//! Hierarchical traces: span trees, worker lanes, and the Chrome
//! trace-event / folded-stacks exporters.
//!
//! A [`JsonRecorder`](crate::JsonRecorder) emits a *flat* event stream;
//! [`Trace::from_events`] rebuilds the span hierarchy from the
//! `SpanStart`/`SpanEnd` bracketing (the recorder's stack discipline
//! guarantees they nest) and computes per-span **self time** — wall time
//! not covered by child spans, the quantity the profile gate regresses on.
//!
//! Two export formats:
//!
//! - **Chrome trace-event JSON** ([`chrome_trace`], [`Trace::to_chrome_json`])
//!   — load in `chrome://tracing` or <https://ui.perfetto.dev>. Each
//!   pipeline run is one *process* (pid); the main span tree renders on
//!   tid 0 and per-slice work recorded through a [`LaneProfiler`] renders
//!   on one lane per vendored-rayon worker index.
//! - **Folded stacks** ([`Trace::to_folded`]) — `path;to;span <self_µs>`
//!   lines, the input format of Brendan Gregg's `flamegraph.pl` and
//!   speedscope. Worker-lane spans fold under the deepest main-lane span
//!   that contains them in time.

use std::sync::Mutex;
use std::time::Instant;

use serde::Value;

use crate::recorder::{Event, EventType};

/// Microseconds of slack tolerated by the nesting validator: span starts
/// and durations are measured by separate clock reads and floored to µs,
/// so a child's computed end may trail its parent's by a rounding hair.
const NEST_SLACK_US: u64 = 5;

/// One span in a reconstructed trace tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceNode {
    /// Span name.
    pub name: String,
    /// Nesting depth (0 = top-level pipeline stage).
    pub depth: u32,
    /// Worker lane (0 = main thread).
    pub tid: u32,
    /// Start, µs on the recorder's clock.
    pub start_us: u64,
    /// Wall time, µs.
    pub duration_us: u64,
    /// Child spans, in completion order.
    pub children: Vec<TraceNode>,
}

impl TraceNode {
    /// Wall time not covered by child spans.
    pub fn self_us(&self) -> u64 {
        let children: u64 = self.children.iter().map(|c| c.duration_us).sum();
        self.duration_us.saturating_sub(children)
    }

    /// Exclusive end timestamp, µs.
    pub fn end_us(&self) -> u64 {
        self.start_us.saturating_add(self.duration_us)
    }
}

/// A reconstructed trace: the main-lane span forest plus worker-lane
/// spans drained from a [`LaneProfiler`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Trace {
    /// Top-level spans in completion order (the pipeline stages).
    pub roots: Vec<TraceNode>,
    /// Per-slice worker spans (leaf nodes, `tid` = worker index).
    pub lanes: Vec<TraceNode>,
}

impl Trace {
    /// Rebuilds the span tree from a flat event stream.
    ///
    /// `SpanStart`/`SpanEnd` pairs become tree nodes (span start time from
    /// the start event's `elapsed_us`, duration from the end event);
    /// `ThreadSpan` events become [`Trace::lanes`] entries. Spans left
    /// open at the end of the stream are discarded — an unbalanced stream
    /// means the run aborted mid-stage and its timing is meaningless.
    pub fn from_events(events: &[Event]) -> Self {
        let mut open: Vec<TraceNode> = Vec::new();
        let mut roots: Vec<TraceNode> = Vec::new();
        let mut lanes: Vec<TraceNode> = Vec::new();
        for ev in events {
            match ev.kind {
                EventType::SpanStart => open.push(TraceNode {
                    name: ev.name.clone(),
                    depth: ev.depth,
                    tid: 0,
                    start_us: ev.elapsed_us,
                    duration_us: 0,
                    children: Vec::new(),
                }),
                EventType::SpanEnd => {
                    let Some(mut node) = open.pop() else { continue };
                    node.duration_us = ev.duration_us.unwrap_or(0);
                    match open.last_mut() {
                        Some(parent) => parent.children.push(node),
                        None => roots.push(node),
                    }
                }
                EventType::ThreadSpan => lanes.push(TraceNode {
                    name: ev.name.clone(),
                    depth: 0,
                    tid: ev.tid,
                    start_us: ev.elapsed_us,
                    duration_us: ev.duration_us.unwrap_or(0),
                    children: Vec::new(),
                }),
                EventType::Counter | EventType::Gauge | EventType::Histogram => {}
            }
        }
        Self { roots, lanes }
    }

    /// Total wall time of the top-level spans, µs.
    pub fn total_us(&self) -> u64 {
        self.roots.iter().map(|r| r.duration_us).sum()
    }

    /// Names of the top-level spans, in completion order.
    pub fn stage_names(&self) -> Vec<&str> {
        self.roots.iter().map(|r| r.name.as_str()).collect()
    }

    /// Single-run Chrome trace-event export; see [`chrome_trace`].
    pub fn to_chrome_json(&self, label: &str) -> String {
        chrome_trace(&[(label.to_string(), self.clone())])
    }

    /// Folded-stacks export: one `path;to;span <self_µs>` line per stack,
    /// self times aggregated over identical stacks, lines sorted. Feed to
    /// `flamegraph.pl` or paste into speedscope. Worker-lane spans attach
    /// beneath the deepest main-lane span containing their start time.
    pub fn to_folded(&self) -> String {
        let mut acc: Vec<(String, u64)> = Vec::new();
        fn add(acc: &mut Vec<(String, u64)>, path: String, us: u64) {
            match acc.iter_mut().find(|(p, _)| *p == path) {
                Some((_, total)) => *total += us,
                None => acc.push((path, us)),
            }
        }
        fn walk(acc: &mut Vec<(String, u64)>, node: &TraceNode, prefix: &str) {
            let path = if prefix.is_empty() {
                node.name.clone()
            } else {
                format!("{prefix};{}", node.name)
            };
            add(acc, path.clone(), node.self_us());
            for child in &node.children {
                walk(acc, child, &path);
            }
        }
        for root in &self.roots {
            walk(&mut acc, root, "");
        }
        for lane in &self.lanes {
            let path = match deepest_containing(&self.roots, lane.start_us) {
                Some(stack) => format!("{stack};{}", lane.name),
                None => lane.name.clone(),
            };
            add(&mut acc, path, lane.duration_us);
        }
        let mut lines: Vec<String> = acc
            .into_iter()
            .map(|(path, us)| format!("{path} {us}"))
            .collect();
        lines.sort();
        let mut out = lines.join("\n");
        if !out.is_empty() {
            out.push('\n');
        }
        out
    }
}

/// `path;to;deepest` main-lane stack containing timestamp `at_us`.
fn deepest_containing(roots: &[TraceNode], at_us: u64) -> Option<String> {
    let node = roots
        .iter()
        .find(|n| n.start_us <= at_us && at_us < n.end_us().max(n.start_us + 1))?;
    match deepest_containing(&node.children, at_us) {
        Some(rest) => Some(format!("{};{rest}", node.name)),
        None => Some(node.name.clone()),
    }
}

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn str_v(s: &str) -> Value {
    Value::Str(s.to_string())
}

fn u64_v(v: u64) -> Value {
    if v <= i64::MAX as u64 {
        Value::Int(v as i64)
    } else {
        Value::UInt(v)
    }
}

/// Renders one or more labelled traces as Chrome trace-event JSON.
///
/// Each `(label, trace)` pair becomes one *process*: pid `i + 1`, process
/// name `label` (a metadata event), the main span tree as complete (`"X"`)
/// events on tid 0 and worker-lane spans on their own tids. Timestamps are
/// in microseconds as the format requires; `displayTimeUnit` asks viewers
/// to display milliseconds.
pub fn chrome_trace(runs: &[(String, Trace)]) -> String {
    let mut events: Vec<Value> = Vec::new();
    for (i, (label, trace)) in runs.iter().enumerate() {
        let pid = (i + 1) as u64;
        let meta = |name: &str, tid: u64, value: &str| {
            obj(vec![
                ("ph", str_v("M")),
                ("pid", u64_v(pid)),
                ("tid", u64_v(tid)),
                ("name", str_v(name)),
                ("args", obj(vec![("name", str_v(value))])),
            ])
        };
        events.push(meta("process_name", 0, label));
        events.push(meta("thread_name", 0, "main"));
        let mut lane_tids: Vec<u32> = trace.lanes.iter().map(|l| l.tid).collect();
        lane_tids.sort_unstable();
        lane_tids.dedup();
        for tid in lane_tids {
            if tid != 0 {
                events.push(meta("thread_name", tid as u64, &format!("worker {tid}")));
            }
        }
        let complete = |node: &TraceNode, cat: &str| {
            obj(vec![
                ("ph", str_v("X")),
                ("pid", u64_v(pid)),
                ("tid", u64_v(node.tid as u64)),
                ("name", str_v(&node.name)),
                ("cat", str_v(cat)),
                ("ts", u64_v(node.start_us)),
                ("dur", u64_v(node.duration_us)),
            ])
        };
        fn walk(events: &mut Vec<Value>, node: &TraceNode, f: &dyn Fn(&TraceNode, &str) -> Value) {
            events.push(f(node, "stage"));
            for child in &node.children {
                walk(events, child, f);
            }
        }
        for root in &trace.roots {
            walk(&mut events, root, &complete);
        }
        for lane in &trace.lanes {
            events.push(complete(lane, "slice"));
        }
    }
    let doc = obj(vec![
        ("displayTimeUnit", str_v("ms")),
        ("traceEvents", Value::Array(events)),
    ]);
    serde_json::to_string_pretty(&doc).unwrap_or_else(|_| "{}".into())
}

/// What [`validate_chrome`] measured about a trace file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChromeCheck {
    /// Number of complete (`"X"`) span events.
    pub span_events: u64,
    /// Number of processes (distinct pids) — one per pipeline run.
    pub processes: u64,
    /// Number of distinct (pid, tid) lanes.
    pub lanes: u64,
}

impl ChromeCheck {
    /// One-line human rendering.
    pub fn render(&self) -> String {
        format!(
            "chrome trace OK: {} span events, {} runs, {} lanes, nesting balanced",
            self.span_events, self.processes, self.lanes
        )
    }
}

/// Validates Chrome trace-event JSON produced by [`chrome_trace`]:
/// parses, requires every `required_stage` to appear as a span event,
/// and checks span nesting is balanced per lane (spans on one (pid, tid)
/// either nest or are disjoint — the invariant viewers rely on).
///
/// # Errors
///
/// Returns a description of the first problem found.
pub fn validate_chrome(text: &str, required_stages: &[&str]) -> Result<ChromeCheck, String> {
    let doc: Value = serde_json::from_str(text).map_err(|e| format!("not valid JSON: {e}"))?;
    let events = match doc.field("traceEvents") {
        Ok(Value::Array(events)) => events,
        _ => return Err("missing traceEvents array".to_string()),
    };
    let get_u64 = |v: &Value, key: &str| -> Result<u64, String> {
        match v.field(key) {
            Ok(Value::Int(n)) if *n >= 0 => Ok(*n as u64),
            Ok(Value::UInt(n)) => Ok(*n),
            _ => Err(format!("span event missing numeric `{key}`")),
        }
    };
    // (pid, tid, ts, dur, name) per complete event.
    let mut spans: Vec<(u64, u64, u64, u64, String)> = Vec::new();
    for ev in events {
        let ph = match ev.field("ph") {
            Ok(Value::Str(s)) => s.clone(),
            _ => return Err("event missing `ph`".to_string()),
        };
        if ph != "X" {
            continue;
        }
        let name = match ev.field("name") {
            Ok(Value::Str(s)) => s.clone(),
            _ => return Err("span event missing `name`".to_string()),
        };
        spans.push((
            get_u64(ev, "pid")?,
            get_u64(ev, "tid")?,
            get_u64(ev, "ts")?,
            get_u64(ev, "dur")?,
            name,
        ));
    }
    for stage in required_stages {
        if !spans.iter().any(|(_, _, _, _, n)| n == stage) {
            return Err(format!("required stage span `{stage}` missing"));
        }
    }
    // Per-lane nesting: sort by (pid, tid, ts, -dur) so a parent sorts
    // before a child starting at the same instant, then run a stack.
    spans.sort_by(|a, b| {
        (a.0, a.1, a.2, std::cmp::Reverse(a.3)).cmp(&(b.0, b.1, b.2, std::cmp::Reverse(b.3)))
    });
    let mut lanes: Vec<(u64, u64)> = Vec::new();
    let mut pids: Vec<u64> = Vec::new();
    let mut stack: Vec<(u64, u64, u64, String)> = Vec::new(); // (pid, tid, end, name)
    for (pid, tid, ts, dur, name) in &spans {
        if !pids.contains(pid) {
            pids.push(*pid);
        }
        if !lanes.contains(&(*pid, *tid)) {
            lanes.push((*pid, *tid));
            stack.clear();
        }
        while let Some((spid, stid, end, _)) = stack.last() {
            if spid != pid || stid != tid || ts.saturating_add(NEST_SLACK_US) >= *end {
                stack.pop();
            } else {
                break;
            }
        }
        let end = ts + dur;
        if let Some((_, _, parent_end, parent)) = stack.last() {
            if end > parent_end.saturating_add(NEST_SLACK_US) {
                return Err(format!(
                    "span `{name}` ([{ts}, {end}]) overlaps `{parent}` (ends {parent_end}) \
                     on lane {pid}:{tid} without nesting"
                ));
            }
        }
        stack.push((*pid, *tid, end, name.clone()));
    }
    Ok(ChromeCheck {
        span_events: spans.len() as u64,
        processes: pids.len() as u64,
        lanes: lanes.len() as u64,
    })
}

/// One completed span captured on a worker lane by a [`LaneProfiler`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LaneSpan {
    /// Span name (e.g. `acquire.slice`).
    pub name: String,
    /// Worker lane (vendored-rayon thread index).
    pub tid: u32,
    /// Start, µs on the owning recorder's clock.
    pub start_us: u64,
    /// Wall time, µs.
    pub duration_us: u64,
}

/// Shared-reference span collector for parallel stages.
///
/// [`Recorder`](crate::Recorder) requires `&mut self`, so worker threads
/// inside `rayon::par_map` cannot record into it directly. A stage instead
/// creates a `LaneProfiler` aligned to the recorder's clock
/// (`LaneProfiler::new(rec.now_us())`), shares `&LaneProfiler` with its
/// workers — [`LaneProfiler::time`] takes `&self` — and afterwards drains
/// the collected spans back into the recorder as `ThreadSpan` events.
/// Contention is one short mutex hold per slice, far below the µs-scale
/// work items the parallel stages split on.
#[derive(Debug)]
pub struct LaneProfiler {
    base_us: u64,
    origin: Instant,
    spans: Mutex<Vec<LaneSpan>>,
}

impl LaneProfiler {
    /// Creates a profiler whose span timestamps count from `base_us` on
    /// the owning recorder's clock (pass `rec.now_us()`).
    pub fn new(base_us: u64) -> Self {
        Self {
            base_us,
            origin: Instant::now(),
            spans: Mutex::new(Vec::new()),
        }
    }

    /// Times `body` and records it as `name` on lane `tid` (pass
    /// `rayon::current_thread_index()`). Callable from any thread.
    pub fn time<T>(&self, name: &str, tid: u32, body: impl FnOnce() -> T) -> T {
        let start = self.origin.elapsed();
        let out = body();
        let end = self.origin.elapsed();
        let span = LaneSpan {
            name: name.to_string(),
            tid,
            start_us: self
                .base_us
                .saturating_add(start.as_micros().min(u64::MAX as u128) as u64),
            duration_us: (end - start).as_micros().min(u64::MAX as u128) as u64,
        };
        if let Ok(mut spans) = self.spans.lock() {
            spans.push(span);
        }
        out
    }

    /// Takes the collected spans, sorted by (start, lane, name) so the
    /// drain order is stable however the workers interleaved.
    pub fn drain(&self) -> Vec<LaneSpan> {
        let mut spans = match self.spans.lock() {
            Ok(mut guard) => std::mem::take(&mut *guard),
            Err(_) => Vec::new(),
        };
        spans.sort_by(|a, b| (a.start_us, a.tid, &a.name).cmp(&(b.start_us, b.tid, &b.name)));
        spans
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::{with_span, JsonRecorder, Recorder};

    /// Deterministic fixture: two stages, nested child, two lane spans.
    fn fixture() -> Trace {
        let ev = |seq, kind, name: &str, depth, elapsed, dur, tid| Event {
            seq,
            elapsed_us: elapsed,
            kind,
            name: name.to_string(),
            depth,
            tid,
            duration_us: dur,
            delta: None,
            total: None,
            value: None,
        };
        let events = vec![
            ev(0, EventType::SpanStart, "acquire", 0, 0, None, 0),
            ev(1, EventType::SpanStart, "render", 1, 10, None, 0),
            ev(2, EventType::SpanEnd, "render", 1, 80, Some(70), 0),
            ev(3, EventType::SpanEnd, "acquire", 0, 100, Some(100), 0),
            ev(4, EventType::SpanStart, "extract", 0, 100, None, 0),
            ev(5, EventType::SpanEnd, "extract", 0, 160, Some(60), 0),
            ev(
                6,
                EventType::ThreadSpan,
                "acquire.slice",
                0,
                12,
                Some(30),
                1,
            ),
            ev(
                7,
                EventType::ThreadSpan,
                "acquire.slice",
                0,
                14,
                Some(28),
                2,
            ),
        ];
        Trace::from_events(&events)
    }

    #[test]
    fn tree_reconstruction_computes_self_time() {
        let t = fixture();
        assert_eq!(t.stage_names(), vec!["acquire", "extract"]);
        assert_eq!(t.total_us(), 160);
        let acquire = &t.roots[0];
        assert_eq!(acquire.children.len(), 1);
        assert_eq!(acquire.duration_us, 100);
        assert_eq!(acquire.self_us(), 30); // 100 − 70 in `render`
        assert_eq!(acquire.children[0].self_us(), 70);
        assert_eq!(t.lanes.len(), 2);
        assert_eq!(t.lanes[0].tid, 1);
    }

    #[test]
    fn unbalanced_stream_drops_open_spans() {
        let mut rec = JsonRecorder::new();
        rec.span_start("never_closed");
        with_span(&mut rec, "done", |_| {});
        let t = Trace::from_events(rec.events());
        // `done` closed *inside* never_closed, which was then dropped —
        // nothing reaches the roots, and nothing panics.
        assert!(t.roots.is_empty());
    }

    #[test]
    fn chrome_export_validates_and_carries_lanes() {
        let t = fixture();
        let json = t.to_chrome_json("test run");
        let check = validate_chrome(&json, &["acquire", "extract"]).expect("valid");
        assert_eq!(check.span_events, 5); // 3 tree + 2 lane spans
        assert_eq!(check.processes, 1);
        assert_eq!(check.lanes, 3); // main + worker 1 + worker 2
        assert!(json.contains("\"displayTimeUnit\""));
        assert!(json.contains("\"process_name\""));
        assert!(json.contains("\"worker 1\""));
        // A missing required stage is reported by name.
        let err = validate_chrome(&json, &["measure"]).unwrap_err();
        assert!(err.contains("measure"), "{err}");
    }

    #[test]
    fn validator_rejects_overlapping_siblings() {
        // Two spans on one lane overlapping without containment.
        let t = Trace {
            roots: vec![
                TraceNode {
                    name: "a".into(),
                    depth: 0,
                    tid: 0,
                    start_us: 0,
                    duration_us: 100,
                    children: Vec::new(),
                },
                TraceNode {
                    name: "b".into(),
                    depth: 0,
                    tid: 0,
                    start_us: 50,
                    duration_us: 100,
                    children: Vec::new(),
                },
            ],
            lanes: Vec::new(),
        };
        let err = validate_chrome(&t.to_chrome_json("bad"), &[]).unwrap_err();
        assert!(err.contains("overlaps"), "{err}");
        assert!(validate_chrome("not json", &[]).is_err());
        assert!(validate_chrome("{\"a\": 1}", &[]).is_err());
    }

    #[test]
    fn folded_output_attaches_lanes_by_containment() {
        let t = fixture();
        let folded = t.to_folded();
        let lines: Vec<&str> = folded.lines().collect();
        assert!(lines.contains(&"acquire 30"), "{folded}");
        assert!(lines.contains(&"acquire;render 70"), "{folded}");
        assert!(lines.contains(&"extract 60"), "{folded}");
        // Both lane spans start inside acquire;render → aggregated there.
        assert!(
            lines.contains(&"acquire;render;acquire.slice 58"),
            "{folded}"
        );
        // Sorted, newline-terminated.
        let mut sorted = lines.clone();
        sorted.sort();
        assert_eq!(lines, sorted);
        assert!(folded.ends_with('\n'));
    }

    #[test]
    fn lane_profiler_rides_the_recorder_clock() {
        let mut rec = JsonRecorder::new();
        let lanes = LaneProfiler::new(rec.now_us());
        let v = lanes.time("work.slice", 2, || 21 * 2);
        assert_eq!(v, 42);
        lanes.time("work.slice", 1, || ());
        let spans = lanes.drain();
        assert_eq!(spans.len(), 2);
        assert!(spans[0].start_us <= spans[1].start_us);
        for s in &spans {
            rec.thread_span(&s.name, s.tid, s.start_us, s.duration_us);
        }
        let t = Trace::from_events(rec.events());
        assert_eq!(t.lanes.len(), 2);
        // Second drain is empty: spans were taken.
        assert!(lanes.drain().is_empty());
    }
}
