//! Functional DDR DRAM device simulator with topology-aware sensing.
//!
//! Section VI-D of the paper warns that out-of-spec DRAM experiments —
//! issuing command sequences that violate JEDEC timings to trigger charge
//! sharing between rows, in-DRAM copy or majority operations — implicitly
//! assume the classic SA. Chips with OCSAs behave differently: charge
//! sharing is *delayed* until after the offset-cancellation phase, and
//! bitlines are briefly connected to diode-connected transistors rather
//! than holding only latched/precharged states.
//!
//! This crate provides the substrate to study that: a bank/row/column DRAM
//! device with a JEDEC-style timing checker, a behavioural bitline-state
//! model parameterised by the deployed SA topology, and the out-of-spec
//! experiment drivers (row copy à la ComputeDRAM, truncated-precharge
//! charge sharing).
//!
//! # Examples
//!
//! ```
//! use hifi_dramsim::{DramDevice, DeviceConfig};
//! use hifi_circuit::topology::SaTopologyKind;
//!
//! let mut dev = DramDevice::new(DeviceConfig::ddr4(SaTopologyKind::Classic));
//! dev.activate(0, 7)?;
//! dev.write(0, 3, 0xAB)?;
//! assert_eq!(dev.read(0, 3)?, 0xAB);
//! # Ok::<(), hifi_dramsim::DramError>(())
//! ```

mod bank;
mod command;
mod device;
pub mod outofspec;
pub mod profile;
mod timing;
pub mod trace;

pub use bank::{Bank, BankState, BitlineState};
pub use command::{Command, CommandRecord};
pub use device::{AccessOutcome, DeviceConfig, DramDevice, DramError};
pub use profile::{CellPolarity, DeviceProfile, DisturbanceModel, RetentionModel};
pub use timing::TimingParams;
