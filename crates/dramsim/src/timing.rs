//! JEDEC-style timing parameters, topology-aware.

use hifi_circuit::topology::SaTopologyKind;
use hifi_units::Nanoseconds;

/// The timing parameters the simulator enforces (a practical subset of the
/// DDR4/DDR5 standards) plus the internal SA phase timings that out-of-spec
/// behaviour depends on.
#[derive(Debug, Clone, PartialEq)]
pub struct TimingParams {
    /// ACT → internal read/write (row to column delay).
    pub t_rcd: Nanoseconds,
    /// ACT → PRE minimum (row active time; covers restore).
    pub t_ras: Nanoseconds,
    /// PRE → next ACT on the same bank (precharge time).
    pub t_rp: Nanoseconds,
    /// ACT → ACT on the same bank (`t_ras + t_rp`).
    pub t_rc: Nanoseconds,
    /// Column-to-column delay.
    pub t_ccd: Nanoseconds,
    /// Average refresh interval.
    pub t_refi: Nanoseconds,
    /// Refresh cycle time (REF → next command).
    pub t_rfc: Nanoseconds,
    /// Internal: offset-cancellation phase duration after ACT
    /// (zero on classic-SA devices; Fig. 9b event ①).
    pub t_offset_cancel: Nanoseconds,
    /// Internal: charge-sharing window before the latch fires.
    pub t_charge_share: Nanoseconds,
    /// Internal: latch/pre-sense to full-rail.
    pub t_sense: Nanoseconds,
}

impl TimingParams {
    /// DDR4-class timings for the given SA topology. The OCSA inserts its
    /// offset-cancellation phase before charge sharing, which is internal —
    /// tRCD already budgets for it in real parts.
    pub fn ddr4(topology: SaTopologyKind) -> Self {
        let t_oc = match topology {
            SaTopologyKind::OffsetCancellation => Nanoseconds(3.0),
            _ => Nanoseconds(0.0),
        };
        Self {
            t_rcd: Nanoseconds(13.75),
            t_ras: Nanoseconds(32.0),
            t_rp: Nanoseconds(13.75),
            t_rc: Nanoseconds(45.75),
            t_ccd: Nanoseconds(5.0),
            t_refi: Nanoseconds(7_800.0),
            t_rfc: Nanoseconds(350.0),
            t_offset_cancel: t_oc,
            t_charge_share: Nanoseconds(4.0),
            t_sense: Nanoseconds(6.0),
        }
    }

    /// DDR5-class timings (tighter column timing, same core latencies).
    pub fn ddr5(topology: SaTopologyKind) -> Self {
        let mut t = Self::ddr4(topology);
        t.t_rcd = Nanoseconds(14.0);
        t.t_rp = Nanoseconds(14.0);
        t.t_ras = Nanoseconds(32.0);
        t.t_rc = Nanoseconds(46.0);
        t.t_ccd = Nanoseconds(3.3);
        t.t_refi = Nanoseconds(3_900.0);
        t.t_rfc = Nanoseconds(295.0);
        t
    }

    /// Time from ACT until the row's data is fully latched (charge sharing
    /// plus sensing, after any offset-cancellation phase).
    pub fn latch_complete(&self) -> Nanoseconds {
        self.t_offset_cancel + self.t_charge_share + self.t_sense
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ocsa_adds_offset_cancel_phase() {
        let classic = TimingParams::ddr4(SaTopologyKind::Classic);
        let ocsa = TimingParams::ddr4(SaTopologyKind::OffsetCancellation);
        assert_eq!(classic.t_offset_cancel, Nanoseconds(0.0));
        assert!(ocsa.t_offset_cancel > Nanoseconds(0.0));
        assert!(ocsa.latch_complete() > classic.latch_complete());
    }

    #[test]
    fn trc_is_tras_plus_trp() {
        for t in [
            TimingParams::ddr4(SaTopologyKind::Classic),
            TimingParams::ddr5(SaTopologyKind::Classic),
        ] {
            assert!((t.t_rc.value() - (t.t_ras + t.t_rp).value()).abs() < 1e-9);
        }
    }

    #[test]
    fn ddr5_has_tighter_column_timing() {
        let d4 = TimingParams::ddr4(SaTopologyKind::Classic);
        let d5 = TimingParams::ddr5(SaTopologyKind::Classic);
        assert!(d5.t_ccd < d4.t_ccd);
        assert!(d5.t_refi < d4.t_refi);
    }
}
