//! Bank state with a topology-aware behavioural bitline model.

use crate::profile::{CellPolarity, DeviceProfile};
use hifi_circuit::topology::SaTopologyKind;
use hifi_units::Nanoseconds;
use std::collections::HashSet;

/// Row-buffer state machine of a bank.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BankState {
    /// No open row; bitlines idle.
    Idle,
    /// A row is open (sensing may still be in flight; see timestamps on the
    /// device).
    Active {
        /// The open row.
        row: usize,
        /// When the activation was issued.
        opened_at: Nanoseconds,
    },
    /// Precharge in progress.
    Precharging {
        /// When the precharge was issued.
        since: Nanoseconds,
        /// The row that was open before the precharge.
        closed_row: usize,
        /// Whether the row had fully latched before the precharge.
        was_latched: bool,
    },
}

/// Electrical state of the bank's bitlines — the heart of Section VI-D.
///
/// The classic circuit has two stable bitline conditions (latched, or
/// precharged/equalised); interrupting a precharge leaves *residual charge*
/// that out-of-spec tricks exploit. OCSAs add a third condition: during the
/// offset-cancellation phase the bitlines are driven to the diode-connected
/// bias, which destroys any residual charge.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BitlineState {
    /// Equalised at Vpre.
    Precharged,
    /// Fully latched to the open row's data.
    Latched {
        /// The row whose data the SAs hold.
        row: usize,
    },
    /// A precharge was interrupted early: the bitlines still carry most of
    /// `row`'s latched values (the ComputeDRAM/AMBIT enabling condition).
    ResidualCharge {
        /// The row whose data lingers on the bitlines.
        row: usize,
    },
    /// OCSA only: bitlines parked at the diode-connected offset bias.
    OffsetBiased,
}

/// One DRAM bank: cell array + row buffer + bitline model, plus the
/// profile-driven charge dynamics (retention decay, polarity, activation
/// disturbance) command-issuing RE observes.
#[derive(Debug, Clone)]
pub struct Bank {
    rows: usize,
    cols: usize,
    topology: SaTopologyKind,
    cells: Vec<Vec<u8>>,
    /// Rows whose restore was interrupted; their charge is degraded and
    /// reads return corrupted data until the row is rewritten.
    weak_rows: HashSet<usize>,
    state: BankState,
    bitlines: BitlineState,
    /// This bank's index in the device (seeds per-row draws).
    bank_index: usize,
    /// Device-internal structure (flat = historical behaviour).
    profile: DeviceProfile,
    /// When each row's charge was last restored (write-back or refresh).
    last_restore: Vec<Nanoseconds>,
    /// Activations per *physical* row since the last refresh (hammer
    /// accounting; only maintained when the profile models disturbance).
    act_counts: Vec<u32>,
}

impl Bank {
    /// Creates a zero-initialised bank with the inert flat profile.
    ///
    /// # Panics
    ///
    /// Panics if `rows` or `cols` is zero.
    pub fn new(rows: usize, cols: usize, topology: SaTopologyKind) -> Self {
        Self::with_profile(rows, cols, topology, 0, DeviceProfile::flat(0))
    }

    /// Creates a zero-initialised bank carrying a device profile.
    ///
    /// # Panics
    ///
    /// Panics if `rows` or `cols` is zero.
    pub fn with_profile(
        rows: usize,
        cols: usize,
        topology: SaTopologyKind,
        bank_index: usize,
        profile: DeviceProfile,
    ) -> Self {
        assert!(rows > 0 && cols > 0, "bank dimensions must be non-zero");
        Self {
            rows,
            cols,
            topology,
            cells: vec![vec![0u8; cols]; rows],
            weak_rows: HashSet::new(),
            state: BankState::Idle,
            bitlines: BitlineState::Precharged,
            bank_index,
            profile,
            last_restore: vec![Nanoseconds(0.0); rows],
            act_counts: vec![0; rows],
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Current state.
    pub fn state(&self) -> BankState {
        self.state
    }

    /// Current bitline condition.
    pub fn bitlines(&self) -> BitlineState {
        self.bitlines
    }

    /// The SA topology of this bank.
    pub fn topology(&self) -> SaTopologyKind {
        self.topology
    }

    /// Whether a row's charge has been degraded by an interrupted restore.
    pub fn is_weak(&self, row: usize) -> bool {
        self.weak_rows.contains(&row)
    }

    /// The cell polarity of a row (profile-driven; flat profiles are all
    /// true-cell, matching the historical zero-discharge model).
    pub fn polarity(&self, row: usize) -> CellPolarity {
        self.profile.polarity(row)
    }

    /// Raw cell access for experiment setup/verification (bypasses timing).
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn cell(&self, row: usize, col: usize) -> u8 {
        self.cells[row][col]
    }

    /// Raw cell write (bypasses timing; clears weakness).
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn set_cell(&mut self, row: usize, col: usize, data: u8) {
        self.cells[row][col] = data;
        self.weak_rows.remove(&row);
    }

    /// Timed cell write through the open row buffer: the written cell's
    /// charge is fully driven, which restarts the row's retention clock.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn write_cell(&mut self, row: usize, col: usize, data: u8, now: Nanoseconds) {
        self.cells[row][col] = data;
        self.weak_rows.remove(&row);
        self.last_restore[row] = now;
    }

    /// Applies an activation's *sensing outcome* at latch-complete time.
    /// Called by the device; `row` is the activated row.
    ///
    /// The bitline precondition decides what gets sensed and restored:
    ///
    /// - `Precharged` — normal sensing: the row's own data is latched and
    ///   restored (a weak row reads corrupted and is restored corrupted).
    /// - `ResidualCharge { row: src }` — **classic SA**: charge sharing
    ///   happens immediately at ACT against bitlines still biased to `src`'s
    ///   data, which overpowers the weak cell signal: `row` is overwritten
    ///   with `src`'s values (in-DRAM row copy). **OCSA**: the
    ///   offset-cancellation phase re-biases the bitlines *before* charge
    ///   sharing (Fig. 9b), so the residue is destroyed and the row senses
    ///   normally.
    /// - `OffsetBiased` — normal sensing (the bias is the intended OCSA
    ///   starting condition).
    pub fn complete_activation(&mut self, row: usize, opened_at: Nanoseconds) {
        match (self.bitlines, self.topology) {
            (BitlineState::ResidualCharge { row: src }, SaTopologyKind::Classic)
            | (BitlineState::ResidualCharge { row: src }, SaTopologyKind::ClassicWithIsolation) => {
                // Row copy: the destination row's cells take the source data.
                let src_data = self.cells[src].clone();
                self.cells[row] = src_data;
                self.weak_rows.remove(&row);
            }
            (BitlineState::ResidualCharge { .. }, SaTopologyKind::OffsetCancellation) => {
                // Residue destroyed by the OC phase: normal self-sensing.
                self.sense_own_data(row, opened_at);
            }
            _ => self.sense_own_data(row, opened_at),
        }
        self.last_restore[row] = opened_at;
        self.record_activation(row);
        self.bitlines = BitlineState::Latched { row };
        self.state = BankState::Active { row, opened_at };
    }

    fn sense_own_data(&mut self, row: usize, now: Nanoseconds) {
        // Charge leakage first: a row sensed past its retention window has
        // already lost its signal, and the latch resolves every bit to the
        // discharged side of the row's cell polarity.
        let decayed = self
            .profile
            .retention_ns(self.bank_index, row)
            .is_some_and(|ret| (now - self.last_restore[row]).value() > ret);
        if decayed {
            let byte = self.profile.polarity(row).discharged_byte();
            self.cells[row].fill(byte);
            self.weak_rows.remove(&row);
        } else if self.weak_rows.contains(&row) {
            // Degraded charge: the latch resolves to the offset-favoured
            // (discharged) value for the row's polarity and restores it.
            let byte = self.profile.polarity(row).discharged_byte();
            self.cells[row].fill(byte);
            self.weak_rows.remove(&row);
        }
    }

    /// Hammer accounting: counts the activation against the row's
    /// *physical* position and, past the profile's threshold, flips the
    /// vulnerable bits of the physically adjacent rows toward their
    /// discharged value (idempotent, so repeated over-threshold
    /// activations leave the same deterministic error pattern).
    fn record_activation(&mut self, row: usize) {
        let Some(disturbance) = self.profile.disturbance.clone() else {
            return;
        };
        let phys = self.profile.physical_row(row);
        if phys >= self.act_counts.len() {
            return;
        }
        self.act_counts[phys] = self.act_counts[phys].saturating_add(1);
        if self.act_counts[phys] < disturbance.hammer_threshold {
            return;
        }
        for neighbour in [phys.wrapping_sub(1), phys + 1] {
            if neighbour >= self.rows {
                continue;
            }
            let victim = self.profile.logical_row(neighbour);
            if victim >= self.rows {
                continue;
            }
            let polarity = self.profile.polarity(victim);
            for col in 0..self.cols {
                let mask = self
                    .profile
                    .disturb_flip_mask(self.bank_index, neighbour, col);
                match polarity {
                    CellPolarity::True => self.cells[victim][col] &= !mask,
                    CellPolarity::Anti => self.cells[victim][col] |= mask,
                }
            }
        }
    }

    /// Refresh: every row is sensed and restored in place. Rows already
    /// past their retention window restore the decayed value (refresh
    /// arrived too late), weak rows resolve like any interrupted restore,
    /// and the hammer accounting window resets.
    pub fn refresh_all(&mut self, now: Nanoseconds) {
        for row in 0..self.rows {
            self.sense_own_data(row, now);
            self.last_restore[row] = now;
        }
        self.act_counts.fill(0);
    }

    /// Marks an activation as *started* (before the latch completes). During
    /// the OCSA offset-cancellation phase the bitlines go to the diode bias.
    pub fn begin_activation(&mut self, row: usize, now: Nanoseconds) {
        if self.topology == SaTopologyKind::OffsetCancellation {
            self.bitlines = BitlineState::OffsetBiased;
        }
        self.state = BankState::Active {
            row,
            opened_at: now,
        };
    }

    /// Applies a precharge issued at `now`. `restore_done` says whether the
    /// open row had completed its restore (tRAS honoured); if not, the row's
    /// charge is degraded (it was sensed but never fully written back).
    /// `latch_elapsed` says whether the ACT → PRE dwell covered the SA's
    /// latch-complete time: a precharge arriving before the latch fired
    /// cannot leave residual charge — the bitlines never developed full-rail
    /// data to linger, on *any* topology.
    pub fn begin_precharge(&mut self, now: Nanoseconds, restore_done: bool, latch_elapsed: bool) {
        if let BankState::Active { row, .. } = self.state {
            if !restore_done {
                self.weak_rows.insert(row);
            }
            let was_latched =
                latch_elapsed && matches!(self.bitlines, BitlineState::Latched { .. });
            self.state = BankState::Precharging {
                since: now,
                closed_row: row,
                was_latched,
            };
        }
    }

    /// AMBIT-style simultaneous multi-row activation (out-of-spec): the
    /// selected rows charge-share onto the same bitlines and the SA latches
    /// the **majority** value, which is then restored into *all* the rows.
    ///
    /// On OCSA devices the offset-cancellation phase consumes roughly one
    /// cell's worth of signal margin before sensing (the bitlines sit at the
    /// diode bias, not Vpre, when charge sharing finally happens —
    /// Section VI-D), so only *unanimous* bits resolve reliably; split
    /// majorities latch the complemented value.
    ///
    /// # Panics
    ///
    /// Panics if `rows` is empty or has an even length (majority undefined).
    pub fn multi_activate_majority(&mut self, rows: &[usize], now: Nanoseconds) {
        assert!(
            !rows.is_empty() && rows.len() % 2 == 1,
            "majority needs an odd, non-empty row set"
        );
        let cols = self.cols;
        let mut result = vec![0u8; cols];
        for (c, r) in result.iter_mut().enumerate() {
            for bit in 0..8 {
                let ones = rows
                    .iter()
                    .filter(|&&row| self.cells[row][c] & (1 << bit) != 0)
                    .count();
                let zeros = rows.len() - ones;
                let unanimous = ones == rows.len() || zeros == rows.len();
                let majority_one = ones > zeros;
                let sensed = match self.topology {
                    SaTopologyKind::OffsetCancellation => {
                        // Split decisions lose their margin to the OC bias
                        // and resolve inverted; unanimous bits survive.
                        if unanimous {
                            majority_one
                        } else {
                            !majority_one
                        }
                    }
                    _ => majority_one,
                };
                if sensed {
                    *r |= 1 << bit;
                }
            }
        }
        for &row in rows {
            self.cells[row] = result.clone();
            self.weak_rows.remove(&row);
        }
        self.bitlines = BitlineState::Latched { row: rows[0] };
        self.state = BankState::Active {
            row: rows[0],
            opened_at: now,
        };
    }

    /// Completes (or truncates) a precharge: called when the next command
    /// arrives. `fully_precharged` reflects whether tRP elapsed.
    pub fn finish_precharge(&mut self, fully_precharged: bool) {
        if let BankState::Precharging {
            closed_row,
            was_latched,
            ..
        } = self.state
        {
            self.bitlines = if fully_precharged || !was_latched {
                BitlineState::Precharged
            } else {
                BitlineState::ResidualCharge { row: closed_row }
            };
            self.state = BankState::Idle;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bank(t: SaTopologyKind) -> Bank {
        let mut b = Bank::new(8, 4, t);
        for c in 0..4 {
            b.set_cell(1, c, 0xA0 + c as u8);
            b.set_cell(2, c, 0x11);
        }
        b
    }

    #[test]
    fn truncated_precharge_leaves_residual_charge_on_classic() {
        let mut b = bank(SaTopologyKind::Classic);
        b.begin_activation(1, Nanoseconds(0.0));
        b.complete_activation(1, Nanoseconds(0.0));
        b.begin_precharge(Nanoseconds(40.0), true, true);
        b.finish_precharge(false); // interrupted before tRP
        assert_eq!(b.bitlines(), BitlineState::ResidualCharge { row: 1 });
    }

    #[test]
    fn residual_charge_copies_row_on_classic() {
        let mut b = bank(SaTopologyKind::Classic);
        b.begin_activation(1, Nanoseconds(0.0));
        b.complete_activation(1, Nanoseconds(0.0));
        b.begin_precharge(Nanoseconds(40.0), true, true);
        b.finish_precharge(false);
        b.begin_activation(2, Nanoseconds(50.0));
        b.complete_activation(2, Nanoseconds(50.0));
        // Row 2 now carries row 1's data: in-DRAM copy.
        assert_eq!(b.cell(2, 0), 0xA0);
        assert_eq!(b.cell(2, 3), 0xA3);
    }

    #[test]
    fn ocsa_destroys_residual_charge() {
        let mut b = bank(SaTopologyKind::OffsetCancellation);
        b.begin_activation(1, Nanoseconds(0.0));
        b.complete_activation(1, Nanoseconds(0.0));
        b.begin_precharge(Nanoseconds(40.0), true, true);
        b.finish_precharge(false);
        assert_eq!(b.bitlines(), BitlineState::ResidualCharge { row: 1 });
        b.begin_activation(2, Nanoseconds(50.0));
        // The OC phase re-biases the bitlines before charge sharing.
        assert_eq!(b.bitlines(), BitlineState::OffsetBiased);
        b.complete_activation(2, Nanoseconds(50.0));
        // Row 2 keeps its own data: the copy trick fails.
        assert_eq!(b.cell(2, 0), 0x11);
    }

    #[test]
    fn interrupted_restore_degrades_the_row() {
        let mut b = bank(SaTopologyKind::Classic);
        b.begin_activation(1, Nanoseconds(0.0));
        b.complete_activation(1, Nanoseconds(0.0));
        b.begin_precharge(Nanoseconds(2.0), false, false); // way before tRAS (and the latch)
        b.finish_precharge(true);
        assert!(b.is_weak(1));
        // Re-activating senses corrupted data.
        b.begin_activation(1, Nanoseconds(100.0));
        b.complete_activation(1, Nanoseconds(100.0));
        assert_eq!(b.cell(1, 0), 0);
        assert!(!b.is_weak(1), "restore rewrites the (corrupted) charge");
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_rows_rejected() {
        let _ = Bank::new(0, 4, SaTopologyKind::Classic);
    }
}
