//! The DRAM device: banks + clock + timing checker.

use crate::bank::{Bank, BankState};
use crate::command::{Command, CommandRecord};
use crate::profile::DeviceProfile;
use crate::timing::TimingParams;
use hifi_circuit::topology::SaTopologyKind;
use hifi_units::Nanoseconds;

/// Device organisation and timing.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceConfig {
    /// Number of banks.
    pub banks: usize,
    /// Rows per bank.
    pub rows: usize,
    /// Columns per row (byte-wide for simplicity).
    pub cols: usize,
    /// Deployed SA topology (drives out-of-spec behaviour).
    pub topology: SaTopologyKind,
    /// Timing parameters.
    pub timing: TimingParams,
    /// Device-internal structure (address scramble, retention, polarity,
    /// disturbance). [`DeviceProfile::flat`] reproduces the historical
    /// profile-free behaviour exactly.
    pub profile: DeviceProfile,
}

impl DeviceConfig {
    /// A small DDR4-class device with the given SA topology.
    pub fn ddr4(topology: SaTopologyKind) -> Self {
        Self {
            banks: 4,
            rows: 128,
            cols: 64,
            topology,
            timing: TimingParams::ddr4(topology),
            profile: DeviceProfile::flat(2),
        }
    }

    /// A small DDR5-class device.
    pub fn ddr5(topology: SaTopologyKind) -> Self {
        Self {
            banks: 8,
            rows: 128,
            cols: 64,
            topology,
            timing: TimingParams::ddr5(topology),
            profile: DeviceProfile::flat(3),
        }
    }

    /// A compact DDR4-class device carrying a seeded [`DeviceProfile`] —
    /// the target geometry for `hifi-rev` black-box campaigns (12 address
    /// bits keep full-die probe sweeps fast).
    pub fn profiled(topology: SaTopologyKind, seed: u64) -> Self {
        let banks = 4usize;
        let rows = 64usize;
        let cols = 16usize;
        Self {
            banks,
            rows,
            cols,
            topology,
            timing: TimingParams::ddr4(topology),
            profile: DeviceProfile::generate(seed, banks.trailing_zeros(), rows.trailing_zeros()),
        }
    }

    /// Column address bits (geometry is power-of-two).
    pub fn col_bits(&self) -> u32 {
        self.cols.trailing_zeros()
    }

    /// Bank address bits.
    pub fn bank_bits(&self) -> u32 {
        self.banks.trailing_zeros()
    }

    /// Row address bits.
    pub fn row_bits(&self) -> u32 {
        self.rows.trailing_zeros()
    }

    /// Total flat-address width: `[ row | bank | col ]`, low bits first.
    pub fn address_bits(&self) -> u32 {
        self.col_bits() + self.bank_bits() + self.row_bits()
    }

    /// The memory-controller address mapping: decodes a flat address into
    /// `(bank, row, col)`. The bank is the address's bank field XORed with
    /// the profile's per-output row-bit parities (bank hashing — the secret
    /// Knock-Knock-style probing recovers); the row field additionally
    /// passes through the device's logical row space unchanged (the
    /// logical→physical scramble lives inside the banks).
    ///
    /// # Errors
    ///
    /// Returns [`DramError::AddressOutOfRange`] when `addr` exceeds the
    /// device's address width.
    pub fn decode(&self, addr: usize) -> Result<(usize, usize, usize), DramError> {
        if addr >> self.address_bits() != 0 {
            return Err(DramError::AddressOutOfRange(format!(
                "flat address {addr:#x}"
            )));
        }
        let col = addr & (self.cols - 1);
        let bank_field = (addr >> self.col_bits()) & (self.banks - 1);
        let row = (addr >> (self.col_bits() + self.bank_bits())) & (self.rows - 1);
        let mut hash = 0usize;
        for (i, mask) in self.profile.bank_xor.iter().enumerate() {
            hash |= (((row as u64 & mask).count_ones() & 1) as usize) << i;
        }
        Ok((bank_field ^ hash, row, col))
    }

    /// Inverse of [`DeviceConfig::decode`] (the XOR hashing is involutive).
    pub fn encode(&self, bank: usize, row: usize, col: usize) -> usize {
        let mut hash = 0usize;
        for (i, mask) in self.profile.bank_xor.iter().enumerate() {
            hash |= (((row as u64 & mask).count_ones() & 1) as usize) << i;
        }
        let bank_field = bank ^ hash;
        (row << (self.col_bits() + self.bank_bits())) | (bank_field << self.col_bits()) | col
    }
}

/// The observable outcome of one flat-address access: the data plus the
/// bus-visible service latency — the side channel address-mapping RE reads.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccessOutcome {
    /// The byte read.
    pub data: u8,
    /// Time from request to data, including any row open/close the
    /// controller had to perform.
    pub latency: Nanoseconds,
}

/// Error produced by the device.
#[derive(Debug, Clone, PartialEq)]
pub enum DramError {
    /// An address was out of range.
    AddressOutOfRange(String),
    /// A command violated a timing constraint (in checked mode).
    TimingViolation {
        /// Which constraint.
        constraint: &'static str,
        /// Required delay.
        required: Nanoseconds,
        /// Actual elapsed time.
        actual: Nanoseconds,
    },
    /// Read/write with no (fully open) row.
    NoOpenRow {
        /// The bank addressed.
        bank: usize,
    },
}

impl core::fmt::Display for DramError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            DramError::AddressOutOfRange(s) => write!(f, "address out of range: {s}"),
            DramError::TimingViolation {
                constraint,
                required,
                actual,
            } => write!(f, "{constraint} violated: {actual} < required {required}"),
            DramError::NoOpenRow { bank } => write!(f, "no open row in bank {bank}"),
        }
    }
}

impl std::error::Error for DramError {}

/// A simulated DRAM device.
///
/// The *checked* API (`activate`/`read`/`write`/`precharge`) auto-advances
/// the clock to satisfy JEDEC timings, like a well-behaved controller. The
/// *unchecked* API (`issue_at`) places commands at explicit times and lets
/// them violate timings — the out-of-spec experiments of Section VI-D.
#[derive(Debug, Clone)]
pub struct DramDevice {
    config: DeviceConfig,
    banks: Vec<Bank>,
    now: Nanoseconds,
    /// Last ACT time per bank.
    last_act: Vec<Option<Nanoseconds>>,
    /// Last PRE time per bank.
    last_pre: Vec<Option<Nanoseconds>>,
    /// Last column command time.
    last_col: Option<Nanoseconds>,
    trace: Vec<CommandRecord>,
}

impl DramDevice {
    /// Creates a device.
    pub fn new(config: DeviceConfig) -> Self {
        let banks = (0..config.banks)
            .map(|i| {
                Bank::with_profile(
                    config.rows,
                    config.cols,
                    config.topology,
                    i,
                    config.profile.clone(),
                )
            })
            .collect();
        let n = config.banks;
        Self {
            config,
            banks,
            now: Nanoseconds(0.0),
            last_act: vec![None; n],
            last_pre: vec![None; n],
            last_col: None,
            trace: Vec::new(),
        }
    }

    /// Current simulation time.
    pub fn now(&self) -> Nanoseconds {
        self.now
    }

    /// The configuration.
    pub fn config(&self) -> &DeviceConfig {
        &self.config
    }

    /// Bank accessor (experiment setup/verification).
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn bank(&self, i: usize) -> &Bank {
        &self.banks[i]
    }

    /// Mutable bank accessor.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn bank_mut(&mut self, i: usize) -> &mut Bank {
        &mut self.banks[i]
    }

    /// The command trace.
    pub fn trace(&self) -> &[CommandRecord] {
        &self.trace
    }

    /// Advances the clock.
    pub fn step(&mut self, dt: Nanoseconds) {
        self.now += dt;
    }

    fn check_bank(&self, bank: usize) -> Result<(), DramError> {
        if bank >= self.banks.len() {
            return Err(DramError::AddressOutOfRange(format!("bank {bank}")));
        }
        Ok(())
    }

    /// Issues a command at the current time **without** enforcing timings.
    /// Sub-tRP precharge gaps and sub-tRAS activations take their
    /// (topology-dependent) electrical consequences. Returns read data when
    /// applicable.
    ///
    /// # Errors
    ///
    /// Only address errors are reported; timing violations are recorded in
    /// the trace as `in_spec: false` and applied behaviourally.
    pub fn issue_unchecked(&mut self, command: Command) -> Result<Option<u8>, DramError> {
        self.issue_inner(command, false)
    }

    /// Issues a command at the **current** time, enforcing JEDEC windows: a
    /// command that would violate a constraint is rejected with
    /// [`DramError::TimingViolation`] instead of taking effect. This is the
    /// strict dual of [`DramDevice::issue_unchecked`]; the controller API
    /// (`activate`/`read`/`write`/`precharge`/`refresh`) auto-waits the
    /// windows out instead of rejecting.
    ///
    /// # Errors
    ///
    /// Address errors, [`DramError::NoOpenRow`], or
    /// [`DramError::TimingViolation`] naming the violated constraint.
    pub fn issue_checked(&mut self, command: Command) -> Result<Option<u8>, DramError> {
        self.issue_inner(command, true)
    }

    fn issue_inner(&mut self, command: Command, checked: bool) -> Result<Option<u8>, DramError> {
        let t = self.config.timing.clone();
        let mut in_spec = true;
        let result = match command {
            Command::Activate { bank, row } => {
                self.check_bank(bank)?;
                if row >= self.config.rows {
                    return Err(DramError::AddressOutOfRange(format!("row {row}")));
                }
                // Resolve any precharge in flight.
                let fully = match self.last_pre[bank] {
                    Some(p) => (self.now - p) >= t.t_rp,
                    None => true,
                };
                if !fully {
                    in_spec = false;
                    if checked {
                        return Err(DramError::TimingViolation {
                            constraint: "tRP",
                            required: t.t_rp,
                            actual: self.now - self.last_pre[bank].expect("pre recorded"),
                        });
                    }
                }
                self.banks[bank].finish_precharge(fully);
                let now = self.now;
                self.banks[bank].begin_activation(row, now);
                // The latch completes after the (topology-dependent) phases;
                // the behavioural model applies the outcome immediately but
                // the timestamp gates read/write eligibility.
                self.banks[bank].complete_activation(row, now);
                self.last_act[bank] = Some(now);
                None
            }
            Command::Read { bank, col } | Command::Write { bank, col, .. } => {
                self.check_bank(bank)?;
                if col >= self.config.cols {
                    return Err(DramError::AddressOutOfRange(format!("col {col}")));
                }
                let BankState::Active { row, opened_at } = self.banks[bank].state() else {
                    return Err(DramError::NoOpenRow { bank });
                };
                if self.now - opened_at < t.t_rcd {
                    in_spec = false;
                    if checked {
                        return Err(DramError::TimingViolation {
                            constraint: "tRCD",
                            required: t.t_rcd,
                            actual: self.now - opened_at,
                        });
                    }
                }
                if let Some(c) = self.last_col {
                    if self.now - c < t.t_ccd {
                        in_spec = false;
                        if checked {
                            return Err(DramError::TimingViolation {
                                constraint: "tCCD",
                                required: t.t_ccd,
                                actual: self.now - c,
                            });
                        }
                    }
                }
                self.last_col = Some(self.now);
                let now = self.now;
                match command {
                    Command::Read { .. } => Some(self.banks[bank].cell(row, col)),
                    Command::Write { data, .. } => {
                        self.banks[bank].write_cell(row, col, data, now);
                        None
                    }
                    _ => unreachable!(),
                }
            }
            Command::Precharge { bank } => {
                self.check_bank(bank)?;
                let (restore_done, latch_elapsed) =
                    match (self.banks[bank].state(), self.last_act[bank]) {
                        (BankState::Active { .. }, Some(a)) => {
                            let elapsed = self.now - a;
                            if elapsed < t.t_ras {
                                in_spec = false;
                                if checked {
                                    return Err(DramError::TimingViolation {
                                        constraint: "tRAS",
                                        required: t.t_ras,
                                        actual: elapsed,
                                    });
                                }
                            }
                            (
                                elapsed >= t.latch_complete() + Nanoseconds(2.0),
                                elapsed >= t.latch_complete(),
                            )
                        }
                        _ => (true, true),
                    };
                let now = self.now;
                self.banks[bank].begin_precharge(now, restore_done, latch_elapsed);
                self.last_pre[bank] = Some(now);
                None
            }
            Command::Refresh => {
                // Every bank senses and restores all of its rows in place
                // (decayed rows restore their decayed value — the refresh
                // arrived too late) and the hammer accounting window resets.
                // In spec only when no bank has an open row and every
                // precharge in flight has completed tRP.
                let now = self.now;
                for b in 0..self.banks.len() {
                    match self.banks[b].state() {
                        BankState::Active { .. } => {
                            in_spec = false;
                            if checked {
                                return Err(DramError::TimingViolation {
                                    constraint: "REF-with-open-row",
                                    required: t.t_rp,
                                    actual: Nanoseconds(0.0),
                                });
                            }
                        }
                        BankState::Precharging { .. } => {
                            let fully = match self.last_pre[b] {
                                Some(p) => (now - p) >= t.t_rp,
                                None => true,
                            };
                            if !fully {
                                in_spec = false;
                                if checked {
                                    return Err(DramError::TimingViolation {
                                        constraint: "tRP",
                                        required: t.t_rp,
                                        actual: now - self.last_pre[b].expect("pre recorded"),
                                    });
                                }
                            }
                            self.banks[b].finish_precharge(fully);
                        }
                        BankState::Idle => {}
                    }
                    self.banks[b].refresh_all(now);
                }
                None
            }
        };
        self.trace.push(CommandRecord {
            at: self.now,
            command,
            in_spec,
        });
        Ok(result)
    }

    // ---- Checked, auto-waiting controller API ----

    fn wait_until(&mut self, t: Nanoseconds) {
        if t > self.now {
            self.now = t;
        }
    }

    /// Opens a row, waiting out tRP/tRC as needed.
    ///
    /// # Errors
    ///
    /// Returns address errors.
    pub fn activate(&mut self, bank: usize, row: usize) -> Result<(), DramError> {
        self.check_bank(bank)?;
        let t = self.config.timing.clone();
        if let Some(p) = self.last_pre[bank] {
            self.wait_until(p + t.t_rp);
        }
        if let Some(a) = self.last_act[bank] {
            self.wait_until(a + t.t_rc);
        }
        // Close any open row first.
        if matches!(self.banks[bank].state(), BankState::Active { .. }) {
            self.precharge(bank)?;
            let p = self.last_pre[bank].expect("just precharged");
            self.wait_until(p + t.t_rp);
        }
        self.issue_inner(Command::Activate { bank, row }, true)
            .map(|_| ())
    }

    /// Reads a byte, waiting out tRCD/tCCD.
    ///
    /// # Errors
    ///
    /// Returns address errors or [`DramError::NoOpenRow`].
    pub fn read(&mut self, bank: usize, col: usize) -> Result<u8, DramError> {
        self.check_bank(bank)?;
        let t = self.config.timing.clone();
        if let BankState::Active { opened_at, .. } = self.banks[bank].state() {
            self.wait_until(opened_at + t.t_rcd);
        }
        if let Some(c) = self.last_col {
            self.wait_until(c + t.t_ccd);
        }
        self.issue_inner(Command::Read { bank, col }, true)
            .map(|d| d.expect("read returns data"))
    }

    /// Writes a byte, waiting out tRCD/tCCD.
    ///
    /// # Errors
    ///
    /// Returns address errors or [`DramError::NoOpenRow`].
    pub fn write(&mut self, bank: usize, col: usize, data: u8) -> Result<(), DramError> {
        self.check_bank(bank)?;
        let t = self.config.timing.clone();
        if let BankState::Active { opened_at, .. } = self.banks[bank].state() {
            self.wait_until(opened_at + t.t_rcd);
        }
        if let Some(c) = self.last_col {
            self.wait_until(c + t.t_ccd);
        }
        self.issue_inner(Command::Write { bank, col, data }, true)
            .map(|_| ())
    }

    /// Closes the open row, waiting out tRAS.
    ///
    /// # Errors
    ///
    /// Returns address errors.
    pub fn precharge(&mut self, bank: usize) -> Result<(), DramError> {
        self.check_bank(bank)?;
        let t = self.config.timing.clone();
        if let Some(a) = self.last_act[bank] {
            self.wait_until(a + t.t_ras);
        }
        self.issue_inner(Command::Precharge { bank }, true)
            .map(|_| ())
    }

    /// Refreshes the whole device like a well-behaved controller: closes
    /// any open rows (waiting out tRAS/tRP), issues REF, and waits out tRFC.
    ///
    /// # Errors
    ///
    /// Returns address errors (propagated from the implicit precharges).
    pub fn refresh(&mut self) -> Result<(), DramError> {
        let t = self.config.timing.clone();
        for b in 0..self.banks.len() {
            if matches!(self.banks[b].state(), BankState::Active { .. }) {
                self.precharge(b)?;
            }
        }
        let mut ready = self.now;
        for p in self.last_pre.iter().flatten() {
            let done = *p + t.t_rp;
            if done > ready {
                ready = done;
            }
        }
        self.wait_until(ready);
        self.issue_inner(Command::Refresh, true)?;
        let end = self.now + t.t_rfc;
        self.wait_until(end);
        Ok(())
    }

    // ---- Flat-address controller front end ----

    /// Services a flat-address read the way a memory controller would:
    /// decodes through the (hidden) address mapping, opens/closes rows as
    /// needed, and reports the bus-visible latency. Row hits cost ~tCCD,
    /// row misses ~tRCD, row-buffer conflicts a precharge plus activation —
    /// the timing side channel Knock-Knock-style RE keys on.
    ///
    /// # Errors
    ///
    /// Returns address errors.
    pub fn access(&mut self, addr: usize) -> Result<AccessOutcome, DramError> {
        let (bank, row, col) = self.config.decode(addr)?;
        let start = self.now;
        match self.banks[bank].state() {
            BankState::Active { row: open, .. } if open == row => {}
            _ => self.activate(bank, row)?,
        }
        let data = self.read(bank, col)?;
        Ok(AccessOutcome {
            data,
            latency: self.now - start,
        })
    }

    /// Flat-address write; returns the bus-visible latency.
    ///
    /// # Errors
    ///
    /// Returns address errors.
    pub fn write_at(&mut self, addr: usize, data: u8) -> Result<Nanoseconds, DramError> {
        let (bank, row, col) = self.config.decode(addr)?;
        let start = self.now;
        match self.banks[bank].state() {
            BankState::Active { row: open, .. } if open == row => {}
            _ => self.activate(bank, row)?,
        }
        self.write(bank, col, data)?;
        Ok(self.now - start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_read_round_trip() {
        let mut dev = DramDevice::new(DeviceConfig::ddr4(SaTopologyKind::Classic));
        dev.activate(0, 5).unwrap();
        dev.write(0, 10, 0x5A).unwrap();
        assert_eq!(dev.read(0, 10).unwrap(), 0x5A);
        dev.precharge(0).unwrap();
        dev.activate(0, 5).unwrap();
        assert_eq!(dev.read(0, 10).unwrap(), 0x5A, "data survives close/open");
    }

    #[test]
    fn checked_api_respects_timings_in_trace() {
        let mut dev = DramDevice::new(DeviceConfig::ddr4(SaTopologyKind::Classic));
        dev.activate(1, 0).unwrap();
        dev.read(1, 0).unwrap();
        dev.precharge(1).unwrap();
        dev.activate(1, 1).unwrap();
        assert!(dev.trace().iter().all(|r| r.in_spec), "{:?}", dev.trace());
    }

    #[test]
    fn unchecked_violations_are_flagged_not_rejected() {
        let mut dev = DramDevice::new(DeviceConfig::ddr4(SaTopologyKind::Classic));
        dev.activate(0, 1).unwrap();
        dev.step(Nanoseconds(40.0));
        dev.issue_unchecked(Command::Precharge { bank: 0 }).unwrap();
        dev.step(Nanoseconds(1.0)); // far below tRP
        dev.issue_unchecked(Command::Activate { bank: 0, row: 2 })
            .unwrap();
        let last = dev.trace().last().unwrap();
        assert!(!last.in_spec);
    }

    #[test]
    fn read_without_open_row_errors() {
        let mut dev = DramDevice::new(DeviceConfig::ddr4(SaTopologyKind::Classic));
        assert_eq!(dev.read(0, 0), Err(DramError::NoOpenRow { bank: 0 }));
    }

    #[test]
    fn address_checks() {
        let mut dev = DramDevice::new(DeviceConfig::ddr4(SaTopologyKind::Classic));
        assert!(matches!(
            dev.activate(99, 0),
            Err(DramError::AddressOutOfRange(_))
        ));
        assert!(matches!(
            dev.activate(0, 100_000),
            Err(DramError::AddressOutOfRange(_))
        ));
        dev.activate(0, 0).unwrap();
        assert!(matches!(
            dev.read(0, 10_000),
            Err(DramError::AddressOutOfRange(_))
        ));
    }

    #[test]
    fn error_display() {
        let e = DramError::TimingViolation {
            constraint: "tRP",
            required: Nanoseconds(13.75),
            actual: Nanoseconds(1.0),
        };
        let s = e.to_string();
        assert!(s.contains("tRP") && s.contains("13.75"));
    }
}
