//! Seeded device-internal structure: the ground truth command-issuing
//! reverse engineering recovers.
//!
//! A [`DeviceProfile`] describes everything about a simulated chip that is
//! *not* visible on the command bus: how controller addresses scramble into
//! banks and physical rows, how long each row retains charge without a
//! refresh, which rows use true vs. anti cells, and how vulnerable
//! neighbouring rows are to activation disturbance. `hifi-rev` campaigns
//! drive the device purely through commands and infer these fields from
//! timing and error side effects; the cross-validation oracle then diffs
//! the inference against this profile (and against the imaging route).
//!
//! The default [`DeviceProfile::flat`] profile is inert — identity address
//! map, no retention limit, no disturbance — so pre-existing users of the
//! simulator observe exactly the historical behaviour.

/// True vs. anti cell: whether a stored logical `1` corresponds to a
/// charged or a discharged capacitor. In open-bitline arrays the polarity
/// alternates with the physical row's bitline attachment (BL vs. BLB), so
/// a decayed true cell reads `0` while a decayed anti cell reads `1` — the
/// data-pattern signature X-ray-style RE keys on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum CellPolarity {
    /// Charged capacitor encodes logical `1`; decay pulls bits to `0`.
    True,
    /// Charged capacitor encodes logical `0`; decay pulls bits to `1`.
    Anti,
}

impl CellPolarity {
    /// The byte a fully-decayed (discharged) cell row reads as.
    pub const fn discharged_byte(self) -> u8 {
        match self {
            CellPolarity::True => 0x00,
            CellPolarity::Anti => 0xFF,
        }
    }

    /// Short name for reports.
    pub const fn name(self) -> &'static str {
        match self {
            CellPolarity::True => "true",
            CellPolarity::Anti => "anti",
        }
    }
}

/// Per-row retention window: each row's charge survives a deterministic,
/// seeded time drawn log-uniformly from `[min_ns, max_ns]`; beyond it the
/// next sensing resolves the whole row to its discharged value.
#[derive(Debug, Clone, PartialEq)]
pub struct RetentionModel {
    /// Shortest retention any row may draw (ns).
    pub min_ns: f64,
    /// Longest retention any row may draw (ns).
    pub max_ns: f64,
}

impl RetentionModel {
    /// DDR4-class miniature: retention between 1.2 ms and 9.6 ms so a
    /// four-step refresh-withholding ladder brackets every row.
    pub fn default_window() -> Self {
        Self {
            min_ns: 1.2e6,
            max_ns: 9.6e6,
        }
    }
}

/// Activation-disturbance (RowHammer/RowPress) vulnerability.
#[derive(Debug, Clone, PartialEq)]
pub struct DisturbanceModel {
    /// Activations of one row within a refresh window after which the
    /// physically adjacent rows start losing their weakest bits.
    pub hammer_threshold: u32,
}

/// Everything about a device instance the command bus does not advertise.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceProfile {
    /// Structure seed; all per-row draws are pure hashes of it.
    pub seed: u64,
    /// Per bank-address output bit: the mask of *row-field* bits XORed
    /// into that output (bank hashing). Each row bit feeds at most one
    /// output, which keeps the Knock-Knock recovery well-posed.
    pub bank_xor: Vec<u64>,
    /// Logical-to-physical row scramble: `physical = logical ^ row_xor`.
    pub row_xor: u64,
    /// Charge retention; `None` retains forever (the historical model).
    pub retention: Option<RetentionModel>,
    /// Activation disturbance; `None` disables it.
    pub disturbance: Option<DisturbanceModel>,
}

impl DeviceProfile {
    /// The inert profile: identity mapping, infinite retention, no
    /// disturbance. Devices built with it behave exactly like the
    /// pre-profile simulator.
    pub fn flat(bank_bits: u32) -> Self {
        Self {
            seed: 0,
            bank_xor: vec![0; bank_bits as usize],
            row_xor: 0,
            retention: None,
            disturbance: None,
        }
    }

    /// Draws a full profile from `seed` for a device with `bank_bits` bank
    /// address bits and `row_bits` row address bits.
    ///
    /// Every draw is a pure hash of the seed, so equal seeds give equal
    /// profiles on any host. The bank masks respect the one-output-per-row-
    /// bit constraint; the hammer threshold comes from a small palette so
    /// a coarse doubling ladder always brackets it.
    pub fn generate(seed: u64, bank_bits: u32, row_bits: u32) -> Self {
        let mut bank_xor = vec![0u64; bank_bits as usize];
        // Each row bit joins one bank output's mask with probability 1/2,
        // choosing the output by hash — at most one output per row bit.
        for j in 0..row_bits {
            let h = mix(seed ^ 0xA11A_5EED ^ u64::from(j).wrapping_mul(0x9E37));
            if h & 1 == 1 && bank_bits > 0 {
                let i = ((h >> 1) % u64::from(bank_bits)) as usize;
                bank_xor[i] |= 1 << j;
            }
        }
        let row_xor = mix(seed ^ 0x5C4A_3B2E) & ((1 << row_bits) - 1);
        let threshold_palette = [24u32, 48];
        let threshold =
            threshold_palette[(mix(seed ^ 0xD157_0000) % threshold_palette.len() as u64) as usize];
        Self {
            seed,
            bank_xor,
            row_xor,
            retention: Some(RetentionModel::default_window()),
            disturbance: Some(DisturbanceModel {
                hammer_threshold: threshold,
            }),
        }
    }

    /// Whether this is the inert flat profile.
    pub fn is_flat(&self) -> bool {
        self.row_xor == 0
            && self.bank_xor.iter().all(|m| *m == 0)
            && self.retention.is_none()
            && self.disturbance.is_none()
    }

    /// The physical row a logical row index lands on.
    pub fn physical_row(&self, logical_row: usize) -> usize {
        logical_row ^ self.row_xor as usize
    }

    /// The logical row occupying a physical position (XOR is involutive).
    pub fn logical_row(&self, physical_row: usize) -> usize {
        physical_row ^ self.row_xor as usize
    }

    /// Cell polarity of a logical row: open-bitline attachment alternates
    /// with *physical* row parity. The inert flat profile is all-true-cell
    /// (the historical model discharges every degraded row to zero).
    pub fn polarity(&self, logical_row: usize) -> CellPolarity {
        if self.is_flat() {
            return CellPolarity::True;
        }
        if self.physical_row(logical_row).is_multiple_of(2) {
            CellPolarity::True
        } else {
            CellPolarity::Anti
        }
    }

    /// The seeded retention time of a row (ns); `None` without a model.
    /// Log-uniform in the model's window, hashed per physical cell row.
    pub fn retention_ns(&self, bank: usize, logical_row: usize) -> Option<f64> {
        let model = self.retention.as_ref()?;
        let phys = self.physical_row(logical_row);
        let u = unit(mix(self.seed
            ^ 0x8E7E_0000
            ^ ((bank as u64) << 32)
            ^ phys as u64));
        Some(model.min_ns * (model.max_ns / model.min_ns).powf(u))
    }

    /// Bit mask of a victim row's hammer-vulnerable bits in one column:
    /// ~1/8 of bits, hashed per (bank, physical row, column, bit).
    pub fn disturb_flip_mask(&self, bank: usize, physical_row: usize, col: usize) -> u8 {
        let mut mask = 0u8;
        for bit in 0..8u64 {
            let h = mix(self.seed
                ^ 0xF11B_0000
                ^ (bank as u64) << 48
                ^ (physical_row as u64) << 24
                ^ (col as u64) << 8
                ^ bit);
            if h & 7 == 0 {
                mask |= 1 << bit;
            }
        }
        mask
    }
}

/// SplitMix64 finaliser: the profile's only source of randomness.
pub(crate) fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Maps a hash to `[0, 1)`.
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}
