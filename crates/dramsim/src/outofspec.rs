//! Out-of-spec experiments (Section VI-D).
//!
//! Researchers use off-spec command sequences for reverse engineering,
//! characterisation and in-DRAM computation, implicitly assuming classic
//! SAs. These drivers reproduce the paper's two warnings:
//!
//! 1. charge sharing is **delayed** on OCSA chips (it waits for the
//!    offset-cancellation phase), breaking tricks that rely on charge
//!    sharing immediately at ACT;
//! 2. OCSA bitlines take a third, diode-biased state, breaking tricks that
//!    skip precharges to keep residual charge on the bitlines.

use crate::command::Command;
use crate::device::{DeviceConfig, DramDevice, DramError};
use hifi_circuit::topology::SaTopologyKind;
use hifi_units::Nanoseconds;

/// Result of one in-DRAM row-copy attempt.
#[derive(Debug, Clone, PartialEq)]
pub struct RowCopyOutcome {
    /// Whether the destination row ended up holding the source data.
    pub copied: bool,
    /// The ACT→PRE→ACT gap used (time between PRE and the second ACT).
    pub gap: Nanoseconds,
    /// The SA topology of the device.
    pub topology: SaTopologyKind,
}

/// Attempts a ComputeDRAM-style in-DRAM row copy on `bank`: open `src`, let
/// it latch, issue PRE, then re-ACT `dst` after only `gap` (violating tRP so
/// the bitlines keep `src`'s residual charge on classic chips).
///
/// # Errors
///
/// Propagates address errors from the device.
///
/// # Panics
///
/// Panics if `src == dst`.
pub fn attempt_row_copy(
    device: &mut DramDevice,
    bank: usize,
    src: usize,
    dst: usize,
    gap: Nanoseconds,
) -> Result<RowCopyOutcome, DramError> {
    assert_ne!(src, dst, "copy requires distinct rows");
    let cols = device.config().cols;
    // Marker pattern in src; complementary pattern in dst.
    for c in 0..cols {
        device.bank_mut(bank).set_cell(src, c, (0xC0 + c) as u8);
        device.bank_mut(bank).set_cell(dst, c, 0x00);
    }
    // Open src fully (in-spec) so its data is latched and restored.
    device.activate(bank, src)?;
    device.precharge(bank)?; // issued at tRAS — in-spec
                             // ...but interrupt the precharge: re-ACT after only `gap`.
    device.step(gap);
    device.issue_unchecked(Command::Activate { bank, row: dst })?;
    device.step(device.config().timing.latch_complete() + Nanoseconds(2.0));
    device.issue_unchecked(Command::Precharge { bank })?;
    device.step(device.config().timing.t_rp);

    let copied = (0..cols).all(|c| device.bank(bank).cell(dst, c) == (0xC0 + c) as u8);
    Ok(RowCopyOutcome {
        copied,
        gap,
        topology: device.config().topology,
    })
}

/// [`attempt_row_copy`] with an explicit ACT→PRE dwell: open `src` for
/// only `act_to_pre` before the (interrupted) precharge. Residual charge
/// is a property of a *latched* sense amplifier — a precharge issued
/// before `latch_complete()` finds nothing on the bitlines to retain, so
/// sub-latch dwells must never copy on any topology. The copy side
/// channel only separates classic from OCSA once the latch completed.
///
/// # Errors
///
/// Propagates address errors from the device.
///
/// # Panics
///
/// Panics if `src == dst`.
pub fn attempt_row_copy_with_dwell(
    device: &mut DramDevice,
    bank: usize,
    src: usize,
    dst: usize,
    act_to_pre: Nanoseconds,
    gap: Nanoseconds,
) -> Result<RowCopyOutcome, DramError> {
    assert_ne!(src, dst, "copy requires distinct rows");
    let cols = device.config().cols;
    for c in 0..cols {
        device.bank_mut(bank).set_cell(src, c, (0xC0 + c) as u8);
        device.bank_mut(bank).set_cell(dst, c, 0x00);
    }
    device.issue_unchecked(Command::Activate { bank, row: src })?;
    device.step(act_to_pre);
    device.issue_unchecked(Command::Precharge { bank })?;
    device.step(gap);
    device.issue_unchecked(Command::Activate { bank, row: dst })?;
    device.step(device.config().timing.latch_complete() + Nanoseconds(2.0));
    device.issue_unchecked(Command::Precharge { bank })?;
    device.step(device.config().timing.t_rp);

    let copied = (0..cols).all(|c| device.bank(bank).cell(dst, c) == (0xC0 + c) as u8);
    Ok(RowCopyOutcome {
        copied,
        gap,
        topology: device.config().topology,
    })
}

/// Sweeps the PRE→ACT gap and reports, per gap, whether the row copy
/// succeeded. On classic chips short gaps succeed (residual charge wins);
/// past tRP the bitlines equalise and the copy fails. On OCSA chips it
/// fails at every gap.
pub fn row_copy_gap_sweep(topology: SaTopologyKind, gaps_ns: &[f64]) -> Vec<RowCopyOutcome> {
    gaps_ns
        .iter()
        .map(|&g| {
            let mut dev = DramDevice::new(DeviceConfig::ddr4(topology));
            attempt_row_copy(&mut dev, 0, 3, 9, Nanoseconds(g)).expect("valid addresses")
        })
        .collect()
}

/// Result of a truncated-restore (sub-tRAS precharge) experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct TruncatedRestoreOutcome {
    /// Whether the row's data survived the early precharge.
    pub data_survived: bool,
    /// The ACT→PRE gap used.
    pub act_to_pre: Nanoseconds,
}

/// Activates a row and precharges after only `act_to_pre` (violating tRAS),
/// then reopens the row and checks the data — the transistor-speed
/// experiments of [68] and latency studies rely on this behaviour.
///
/// # Errors
///
/// Propagates address errors.
pub fn truncated_restore(
    device: &mut DramDevice,
    bank: usize,
    row: usize,
    act_to_pre: Nanoseconds,
) -> Result<TruncatedRestoreOutcome, DramError> {
    let cols = device.config().cols;
    for c in 0..cols {
        device.bank_mut(bank).set_cell(row, c, 0xEE);
    }
    device.issue_unchecked(Command::Activate { bank, row })?;
    device.step(act_to_pre);
    device.issue_unchecked(Command::Precharge { bank })?;
    device.step(device.config().timing.t_rp);
    // Reopen in-spec and inspect.
    device.activate(bank, row)?;
    let ok = (0..cols).all(|c| device.bank(bank).cell(row, c) == 0xEE);
    device.precharge(bank)?;
    Ok(TruncatedRestoreOutcome {
        data_survived: ok,
        act_to_pre,
    })
}

/// Result of an AMBIT-style triple-row majority attempt.
#[derive(Debug, Clone, PartialEq)]
pub struct MajorityOutcome {
    /// Whether every column computed the true 3-way majority.
    pub correct_majority: bool,
    /// Per-column computed values.
    pub result: Vec<u8>,
    /// Per-column expected (true majority) values.
    pub expected: Vec<u8>,
}

/// Attempts an in-DRAM majority (the AMBIT primitive) over three rows via
/// simultaneous activation. On classic-SA devices the bitline charge
/// sharing computes MAJ3; on OCSA devices only unanimous bits survive the
/// offset-cancellation bias (Section VI-D).
///
/// # Errors
///
/// Returns address errors.
///
/// # Panics
///
/// Panics if the rows are not distinct.
pub fn attempt_majority(
    device: &mut DramDevice,
    bank: usize,
    rows: [usize; 3],
    patterns: [&[u8]; 3],
) -> Result<MajorityOutcome, DramError> {
    assert!(
        rows[0] != rows[1] && rows[1] != rows[2] && rows[0] != rows[2],
        "rows must be distinct"
    );
    if bank >= device.config().banks {
        return Err(DramError::AddressOutOfRange(format!("bank {bank}")));
    }
    let cols = device.config().cols;
    for (row, pat) in rows.iter().zip(patterns) {
        for c in 0..cols {
            device
                .bank_mut(bank)
                .set_cell(*row, c, pat.get(c % pat.len()).copied().unwrap_or(0));
        }
    }
    let expected: Vec<u8> = (0..cols)
        .map(|c| {
            let vals: Vec<u8> = patterns
                .iter()
                .map(|p| p.get(c % p.len()).copied().unwrap_or(0))
                .collect();
            let mut out = 0u8;
            for bit in 0..8 {
                let ones = vals.iter().filter(|v| *v & (1 << bit) != 0).count();
                if ones >= 2 {
                    out |= 1 << bit;
                }
            }
            out
        })
        .collect();
    let now = device.now();
    device.bank_mut(bank).multi_activate_majority(&rows, now);
    device.step(device.config().timing.latch_complete() + Nanoseconds(2.0));
    device.issue_unchecked(Command::Precharge { bank })?;
    device.step(device.config().timing.t_rp);
    let result: Vec<u8> = (0..cols)
        .map(|c| device.bank(bank).cell(rows[0], c))
        .collect();
    let correct_majority = result == expected;
    Ok(MajorityOutcome {
        correct_majority,
        result,
        expected,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classic_row_copy_succeeds_with_short_gap() {
        let mut dev = DramDevice::new(DeviceConfig::ddr4(SaTopologyKind::Classic));
        let out = attempt_row_copy(&mut dev, 0, 1, 2, Nanoseconds(2.0)).unwrap();
        assert!(out.copied, "classic SA with residual charge copies the row");
    }

    #[test]
    fn classic_row_copy_fails_with_full_precharge() {
        let mut dev = DramDevice::new(DeviceConfig::ddr4(SaTopologyKind::Classic));
        let gap = dev.config().timing.t_rp + Nanoseconds(5.0);
        let out = attempt_row_copy(&mut dev, 0, 1, 2, gap).unwrap();
        assert!(!out.copied, "a completed precharge equalises the bitlines");
    }

    #[test]
    fn ocsa_row_copy_fails_at_every_gap() {
        // Section VI-D: charge sharing is delayed behind offset
        // cancellation, which destroys the residual charge.
        for gap in [1.0, 2.0, 5.0, 10.0] {
            let mut dev = DramDevice::new(DeviceConfig::ddr4(SaTopologyKind::OffsetCancellation));
            let out = attempt_row_copy(&mut dev, 0, 1, 2, Nanoseconds(gap)).unwrap();
            assert!(!out.copied, "ocsa must not copy at gap {gap} ns");
        }
    }

    #[test]
    fn gap_sweep_shows_crossover_on_classic_only() {
        let gaps = [1.0, 4.0, 8.0, 16.0];
        let classic = row_copy_gap_sweep(SaTopologyKind::Classic, &gaps);
        let ocsa = row_copy_gap_sweep(SaTopologyKind::OffsetCancellation, &gaps);
        assert!(classic.iter().any(|o| o.copied));
        assert!(classic.iter().any(|o| !o.copied));
        assert!(ocsa.iter().all(|o| !o.copied));
    }

    #[test]
    fn majority_works_on_classic_not_on_ocsa() {
        let patterns: [&[u8]; 3] = [&[0b1100_1010], &[0b1010_0110], &[0b0110_1100]];
        let mut classic = DramDevice::new(DeviceConfig::ddr4(SaTopologyKind::Classic));
        let out = attempt_majority(&mut classic, 0, [1, 2, 3], patterns).unwrap();
        assert!(out.correct_majority, "classic computes MAJ3");
        let mut ocsa = DramDevice::new(DeviceConfig::ddr4(SaTopologyKind::OffsetCancellation));
        let out = attempt_majority(&mut ocsa, 0, [1, 2, 3], patterns).unwrap();
        assert!(!out.correct_majority, "ocsa corrupts split-majority bits");
    }

    #[test]
    fn unanimous_bits_survive_even_on_ocsa() {
        let patterns: [&[u8]; 3] = [&[0xF0], &[0xF0], &[0xF0]];
        let mut ocsa = DramDevice::new(DeviceConfig::ddr4(SaTopologyKind::OffsetCancellation));
        let out = attempt_majority(&mut ocsa, 0, [1, 2, 3], patterns).unwrap();
        assert!(out.correct_majority, "no split bits, nothing to corrupt");
    }

    #[test]
    fn pre_latch_precharge_never_leaves_residual_charge() {
        // Audit pin: residual charge is restored row data held by a
        // *latched* SA. A precharge issued before latch_complete() has
        // nothing to retain, so the short-gap re-ACT must not copy on any
        // topology — classic and OCSA behave identically here. The only
        // sanctioned divergence between them is the documented
        // offset-cancellation phase after a completed latch (pinned by
        // the surrounding row-copy tests).
        for topology in [
            SaTopologyKind::Classic,
            SaTopologyKind::ClassicWithIsolation,
            SaTopologyKind::OffsetCancellation,
        ] {
            let mut dev = DramDevice::new(DeviceConfig::ddr4(topology));
            let dwell = dev.config().timing.latch_complete() - Nanoseconds(1.0);
            let out =
                attempt_row_copy_with_dwell(&mut dev, 0, 1, 2, dwell, Nanoseconds(2.0)).unwrap();
            assert!(
                !out.copied,
                "{topology:?}: sub-latch dwell must leave no residual charge"
            );
        }
    }

    #[test]
    fn copy_side_channel_opens_exactly_at_latch_completion() {
        // Boundary pin for the latch gate: the same interrupted-precharge
        // sequence flips from no-copy to copy (classic only) the moment
        // the dwell reaches latch_complete().
        let mut dev = DramDevice::new(DeviceConfig::ddr4(SaTopologyKind::Classic));
        let at_latch = dev.config().timing.latch_complete();
        let out =
            attempt_row_copy_with_dwell(&mut dev, 0, 1, 2, at_latch, Nanoseconds(2.0)).unwrap();
        assert!(out.copied, "classic copies once the latch completed");

        let mut dev = DramDevice::new(DeviceConfig::ddr4(SaTopologyKind::OffsetCancellation));
        let at_latch = dev.config().timing.latch_complete();
        let out =
            attempt_row_copy_with_dwell(&mut dev, 0, 1, 2, at_latch, Nanoseconds(2.0)).unwrap();
        assert!(!out.copied, "ocsa never exposes residual charge");
    }

    #[test]
    fn truncated_restore_loses_data_when_too_early() {
        let mut dev = DramDevice::new(DeviceConfig::ddr4(SaTopologyKind::Classic));
        let out = truncated_restore(&mut dev, 0, 4, Nanoseconds(3.0)).unwrap();
        assert!(!out.data_survived, "3 ns is before the restore completes");
        let mut dev = DramDevice::new(DeviceConfig::ddr4(SaTopologyKind::Classic));
        let out = truncated_restore(&mut dev, 0, 4, Nanoseconds(30.0)).unwrap();
        assert!(out.data_survived, "30 ns covers the restore");
    }
}
