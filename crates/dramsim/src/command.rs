//! DRAM commands and the command trace.

use hifi_units::Nanoseconds;

/// A DDR command as issued by the memory controller.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Command {
    /// Open a row in a bank.
    Activate {
        /// Bank index.
        bank: usize,
        /// Row index.
        row: usize,
    },
    /// Read a column of the open row.
    Read {
        /// Bank index.
        bank: usize,
        /// Column index.
        col: usize,
    },
    /// Write a column of the open row.
    Write {
        /// Bank index.
        bank: usize,
        /// Column index.
        col: usize,
        /// Data byte.
        data: u8,
    },
    /// Close the open row (precharge the bitlines).
    Precharge {
        /// Bank index.
        bank: usize,
    },
    /// Refresh all banks.
    Refresh,
}

impl Command {
    /// The bank this command addresses, if bank-scoped.
    pub fn bank(&self) -> Option<usize> {
        match self {
            Command::Activate { bank, .. }
            | Command::Read { bank, .. }
            | Command::Write { bank, .. }
            | Command::Precharge { bank } => Some(*bank),
            Command::Refresh => None,
        }
    }

    /// Mnemonic as printed in traces.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            Command::Activate { .. } => "ACT",
            Command::Read { .. } => "RD",
            Command::Write { .. } => "WR",
            Command::Precharge { .. } => "PRE",
            Command::Refresh => "REF",
        }
    }
}

impl core::fmt::Display for Command {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Command::Activate { bank, row } => write!(f, "ACT b{bank} r{row}"),
            Command::Read { bank, col } => write!(f, "RD b{bank} c{col}"),
            Command::Write { bank, col, data } => write!(f, "WR b{bank} c{col} = {data:#04x}"),
            Command::Precharge { bank } => write!(f, "PRE b{bank}"),
            Command::Refresh => write!(f, "REF"),
        }
    }
}

/// One issued command with its timestamp and spec-compliance flag.
#[derive(Debug, Clone, PartialEq)]
pub struct CommandRecord {
    /// Issue time.
    pub at: Nanoseconds,
    /// The command.
    pub command: Command,
    /// Whether the command respected all timing constraints.
    pub in_spec: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_bank() {
        let c = Command::Activate { bank: 2, row: 100 };
        assert_eq!(c.to_string(), "ACT b2 r100");
        assert_eq!(c.bank(), Some(2));
        assert_eq!(Command::Refresh.bank(), None);
        assert_eq!(Command::Refresh.mnemonic(), "REF");
    }
}
