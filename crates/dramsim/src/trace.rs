//! Command-trace parsing and execution.
//!
//! A minimal controller-trace format for driving the device simulator (the
//! substrate role a DRAM simulator plays for architecture studies):
//!
//! ```text
//! # comment
//! ACT 0 17
//! WR  0 3 0xAB
//! RD  0 3
//! PRE 0
//! REF
//! ```

use crate::command::Command;
use crate::device::{DramDevice, DramError};
use hifi_units::Nanoseconds;

/// Error produced when parsing a trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// A line could not be parsed.
    Malformed {
        /// 1-based line number.
        line: usize,
        /// Why it failed.
        reason: String,
    },
}

impl core::fmt::Display for TraceError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            TraceError::Malformed { line, reason } => {
                write!(f, "trace line {line}: {reason}")
            }
        }
    }
}

impl std::error::Error for TraceError {}

fn parse_int(tok: &str) -> Option<u64> {
    if let Some(hex) = tok.strip_prefix("0x").or_else(|| tok.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        tok.parse().ok()
    }
}

/// Parses a command trace.
///
/// # Errors
///
/// Returns [`TraceError::Malformed`] with the offending line number.
pub fn parse_trace(text: &str) -> Result<Vec<Command>, TraceError> {
    let mut out = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = idx + 1;
        let stripped = raw.split('#').next().unwrap_or("").trim();
        if stripped.is_empty() {
            continue;
        }
        let toks: Vec<&str> = stripped.split_whitespace().collect();
        let err = |reason: &str| TraceError::Malformed {
            line,
            reason: reason.to_owned(),
        };
        let arg = |i: usize| -> Result<u64, TraceError> {
            toks.get(i)
                .and_then(|t| parse_int(t))
                .ok_or_else(|| err("missing or invalid numeric argument"))
        };
        let cmd = match toks[0].to_ascii_uppercase().as_str() {
            "ACT" => Command::Activate {
                bank: arg(1)? as usize,
                row: arg(2)? as usize,
            },
            "RD" => Command::Read {
                bank: arg(1)? as usize,
                col: arg(2)? as usize,
            },
            "WR" => Command::Write {
                bank: arg(1)? as usize,
                col: arg(2)? as usize,
                data: arg(3)? as u8,
            },
            "PRE" => Command::Precharge {
                bank: arg(1)? as usize,
            },
            "REF" => Command::Refresh,
            other => return Err(err(&format!("unknown mnemonic `{other}`"))),
        };
        out.push(cmd);
    }
    Ok(out)
}

/// Statistics from executing a trace through the checked controller API.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceStats {
    /// Commands executed, by type.
    pub activates: usize,
    /// Read commands.
    pub reads: usize,
    /// Write commands.
    pub writes: usize,
    /// Precharges.
    pub precharges: usize,
    /// Refreshes.
    pub refreshes: usize,
    /// Column accesses that hit the already-open row (no new ACT needed).
    pub row_buffer_hits: usize,
    /// Column accesses that required opening a row first.
    pub row_buffer_misses: usize,
    /// Total simulated time.
    pub elapsed: Nanoseconds,
    /// Data returned by reads, in order.
    pub read_data: Vec<u8>,
}

impl TraceStats {
    /// Row-buffer hit rate over all column accesses (0 when none).
    pub fn hit_rate(&self) -> f64 {
        let total = self.row_buffer_hits + self.row_buffer_misses;
        if total == 0 {
            0.0
        } else {
            self.row_buffer_hits as f64 / total as f64
        }
    }

    /// Read bandwidth in bytes per microsecond of simulated time.
    pub fn read_bandwidth(&self) -> f64 {
        if self.elapsed.value() <= 0.0 {
            0.0
        } else {
            self.read_data.len() as f64 / (self.elapsed.value() / 1000.0)
        }
    }
}

/// Executes a parsed trace with the in-spec controller API. `ACT` to an
/// already-open row is a no-op (the row buffer is reused); `RD`/`WR` to a
/// bank whose open row differs from the last `ACT` target follow the trace's
/// explicit row management.
///
/// # Errors
///
/// Propagates device errors (bad addresses).
pub fn run_trace(device: &mut DramDevice, commands: &[Command]) -> Result<TraceStats, DramError> {
    let mut stats = TraceStats::default();
    let start = device.now();
    // Tracks the open row per bank according to the trace.
    let mut open: Vec<Option<usize>> = vec![None; device.config().banks];
    for cmd in commands {
        match *cmd {
            Command::Activate { bank, row } => {
                if open.get(bank).copied().flatten() == Some(row) {
                    continue; // row already open: reuse the buffer
                }
                device.activate(bank, row)?;
                if bank < open.len() {
                    open[bank] = Some(row);
                }
                stats.activates += 1;
            }
            Command::Read { bank, col } => {
                let hit = open.get(bank).copied().flatten().is_some();
                if hit {
                    stats.row_buffer_hits += 1;
                } else {
                    stats.row_buffer_misses += 1;
                    device.activate(bank, 0)?;
                    if bank < open.len() {
                        open[bank] = Some(0);
                    }
                    stats.activates += 1;
                }
                stats.read_data.push(device.read(bank, col)?);
                stats.reads += 1;
            }
            Command::Write { bank, col, data } => {
                let hit = open.get(bank).copied().flatten().is_some();
                if hit {
                    stats.row_buffer_hits += 1;
                } else {
                    stats.row_buffer_misses += 1;
                    device.activate(bank, 0)?;
                    if bank < open.len() {
                        open[bank] = Some(0);
                    }
                    stats.activates += 1;
                }
                device.write(bank, col, data)?;
                stats.writes += 1;
            }
            Command::Precharge { bank } => {
                device.precharge(bank)?;
                if bank < open.len() {
                    open[bank] = None;
                }
                stats.precharges += 1;
            }
            Command::Refresh => {
                stats.refreshes += 1;
            }
        }
    }
    stats.elapsed = device.now() - start;
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceConfig;
    use hifi_circuit::topology::SaTopologyKind;

    const TRACE: &str = "\
# write then read back across two banks
ACT 0 5
WR  0 1 0x11
WR  0 2 0x22
RD  0 1
PRE 0
ACT 1 9
WR  1 0 0x33
RD  1 0
ACT 1 9   # already open: free
RD  1 0
";

    #[test]
    fn parse_and_run_round_trip() {
        let cmds = parse_trace(TRACE).unwrap();
        assert_eq!(cmds.len(), 10);
        let mut dev = DramDevice::new(DeviceConfig::ddr4(SaTopologyKind::Classic));
        let stats = run_trace(&mut dev, &cmds).unwrap();
        assert_eq!(stats.read_data, vec![0x11, 0x33, 0x33]);
        assert_eq!(stats.activates, 2, "re-ACT of an open row is free");
        assert_eq!(stats.reads, 3);
        assert_eq!(stats.writes, 3);
        assert_eq!(stats.precharges, 1);
        assert!(stats.hit_rate() > 0.9);
        assert!(stats.elapsed.value() > 0.0);
        assert!(stats.read_bandwidth() > 0.0);
    }

    #[test]
    fn comments_and_hex_parse() {
        let cmds = parse_trace("# only a comment\nWR 0 0 0xFF\n").unwrap();
        assert_eq!(cmds.len(), 1);
        assert!(matches!(cmds[0], Command::Write { data: 0xFF, .. }));
    }

    #[test]
    fn malformed_lines_report_position() {
        let err = parse_trace("ACT 0 1\nBOGUS 3\n").unwrap_err();
        let TraceError::Malformed { line, reason } = err;
        assert_eq!(line, 2);
        assert!(reason.contains("BOGUS"));
        let err = parse_trace("RD 0\n").unwrap_err();
        let TraceError::Malformed { line, .. } = err;
        assert_eq!(line, 1);
    }

    #[test]
    fn topology_does_not_change_in_spec_results() {
        // Section VI-D's divergence is out-of-spec only: a JEDEC-compliant
        // trace behaves identically on classic and OCSA devices.
        let cmds = parse_trace(TRACE).unwrap();
        let mut a = DramDevice::new(DeviceConfig::ddr4(SaTopologyKind::Classic));
        let mut b = DramDevice::new(DeviceConfig::ddr4(SaTopologyKind::OffsetCancellation));
        let sa = run_trace(&mut a, &cmds).unwrap();
        let sb = run_trace(&mut b, &cmds).unwrap();
        assert_eq!(sa.read_data, sb.read_data);
        assert_eq!(sa.hit_rate(), sb.hit_rate());
    }
}
