//! Bounded retries with deterministic exponential backoff.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// How a fallible operation is retried: a bounded number of retries with
/// exponential backoff, saturating at a delay ceiling.
///
/// Backoff is *virtual* (see [`VirtualClock`]): delays are accounted, not
/// slept, so a faulted pipeline run is as fast as a clean one and the
/// backoff schedule is exactly reproducible.
#[derive(Debug, Clone, PartialEq)]
pub struct RetryPolicy {
    /// Retries after the first attempt (0 = fail on first error).
    pub max_retries: u32,
    /// Backoff before the first retry.
    pub base_delay: Duration,
    /// Multiplier applied per retry (exponential growth).
    pub multiplier: f64,
    /// Ceiling the backoff saturates at.
    pub max_delay: Duration,
}

impl Default for RetryPolicy {
    /// Three retries, 10 ms doubling to a 500 ms ceiling — enough to
    /// clear any fault a default [`crate::FaultSpec`] injects
    /// (`max_consecutive = 2`).
    fn default() -> Self {
        Self {
            max_retries: 3,
            base_delay: Duration::from_millis(10),
            multiplier: 2.0,
            max_delay: Duration::from_millis(500),
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries.
    pub fn none() -> Self {
        Self {
            max_retries: 0,
            ..Self::default()
        }
    }

    /// Sets the retry budget (builder style).
    pub fn with_max_retries(mut self, retries: u32) -> Self {
        self.max_retries = retries;
        self
    }

    /// The backoff before retry number `retry` (0-based):
    /// `base * multiplier^retry`, saturating at `max_delay` (including
    /// against `f64` overflow for absurd retry numbers).
    pub fn backoff(&self, retry: u32) -> Duration {
        let factor = self.multiplier.max(1.0).powi(retry.min(1_000) as i32);
        let nanos = self.base_delay.as_nanos() as f64 * factor;
        if !nanos.is_finite() || nanos >= self.max_delay.as_nanos() as f64 {
            self.max_delay
        } else {
            Duration::from_nanos(nanos as u64)
        }
    }

    /// Total virtual delay if every retry in the budget is used.
    ///
    /// Saturates instead of overflowing: huge budgets (`max_retries` up to
    /// `u32::MAX`) and ceiling-sized delays cap at [`Duration::MAX`]. The
    /// sum is computed in closed form past the point the schedule goes
    /// constant — [`Self::backoff`] clamps its exponent at 1000, so from
    /// retry 1000 on every backoff equals `backoff(1000)` — keeping this
    /// O(min(max_retries, 1000)) rather than O(max_retries).
    pub fn total_budget(&self) -> Duration {
        let head = self.max_retries.min(1_000);
        let mut total = Duration::ZERO;
        for r in 0..head {
            total = total.saturating_add(self.backoff(r));
        }
        let tail = self.max_retries - head;
        if tail > 0 {
            total = total.saturating_add(self.backoff(1_000).saturating_mul(tail));
        }
        total
    }
}

/// Accumulates virtual backoff time instead of sleeping.
///
/// Real sleeps would make faulted runs slow and their wall-clock telemetry
/// noisy; a virtual clock keeps the backoff schedule observable (tests
/// assert on it) while recovery stays instant.
#[derive(Debug, Default)]
pub struct VirtualClock {
    nanos: AtomicU64,
}

impl VirtualClock {
    /// A clock at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Advances the clock by `d`.
    pub fn advance(&self, d: Duration) {
        self.nanos.fetch_add(d.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Total virtual time slept so far.
    pub fn elapsed(&self) -> Duration {
        Duration::from_nanos(self.nanos.load(Ordering::Relaxed))
    }
}

/// Typed give-up: the retry budget ran out; `last` is the error of the
/// final attempt.
#[derive(Debug, Clone, PartialEq)]
pub struct GaveUp<E> {
    /// Total attempts made (initial try + retries).
    pub attempts: u32,
    /// The error the final attempt produced.
    pub last: E,
    /// Virtual backoff time spent before giving up.
    pub waited: Duration,
}

impl<E: core::fmt::Display> GaveUp<E> {
    /// Flattens into the site-annotated, `Clone + PartialEq` form error
    /// enums embed.
    pub fn into_exhausted(self, site: impl Into<String>) -> Exhausted {
        Exhausted {
            site: site.into(),
            attempts: self.attempts,
            last_error: self.last.to_string(),
            waited: self.waited,
        }
    }
}

/// A retried operation that exhausted its budget, rendered for embedding
/// in error enums that need `Clone + PartialEq`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Exhausted {
    /// Which operation gave up (e.g. `"store.get"`, `"stage:reconstruct"`).
    pub site: String,
    /// Total attempts made.
    pub attempts: u32,
    /// Rendered error of the final attempt.
    pub last_error: String,
    /// Virtual backoff time spent.
    pub waited: Duration,
}

impl core::fmt::Display for Exhausted {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "{} gave up after {} attempts ({:?} backoff): {}",
            self.site, self.attempts, self.waited, self.last_error
        )
    }
}

impl std::error::Error for Exhausted {}

/// Why [`retry`] stopped without a value.
#[derive(Debug, Clone, PartialEq)]
pub enum RetryError<E> {
    /// The error was not transient; retrying cannot help.
    Fatal(E),
    /// Every attempt in the budget failed transiently.
    GaveUp(GaveUp<E>),
}

/// Runs `op` under `policy`: transient errors (per `is_transient`) are
/// retried with exponential backoff charged to `clock`; fatal errors
/// return immediately. `op` receives the 0-based attempt number.
///
/// On success returns the value and the number of *retries* it took
/// (0 = first attempt succeeded), so callers can account recoveries.
///
/// # Errors
///
/// [`RetryError::Fatal`] on the first non-transient error,
/// [`RetryError::GaveUp`] once `policy.max_retries` retries are spent.
pub fn retry<T, E>(
    policy: &RetryPolicy,
    clock: &VirtualClock,
    is_transient: impl Fn(&E) -> bool,
    op: impl FnMut(u32) -> Result<T, E>,
) -> Result<(T, u32), RetryError<E>> {
    retry_observed(policy, clock, is_transient, |_, _| {}, op)
}

/// [`retry`] with a backoff observer: `observe(retry_number, delay)` is
/// called for every backoff charged to the clock, *before* the retried
/// attempt runs. Telemetry uses this to histogram individual backoff
/// delays (the `fault.backoff_delay_us` histogram) where the clock only
/// exposes their sum.
///
/// # Errors
///
/// Exactly as [`retry`].
pub fn retry_observed<T, E>(
    policy: &RetryPolicy,
    clock: &VirtualClock,
    is_transient: impl Fn(&E) -> bool,
    mut observe: impl FnMut(u32, Duration),
    mut op: impl FnMut(u32) -> Result<T, E>,
) -> Result<(T, u32), RetryError<E>> {
    let mut waited = Duration::ZERO;
    let mut attempt = 0u32;
    loop {
        match op(attempt) {
            Ok(v) => return Ok((v, attempt)),
            Err(e) if !is_transient(&e) => return Err(RetryError::Fatal(e)),
            Err(e) => {
                if attempt >= policy.max_retries {
                    return Err(RetryError::GaveUp(GaveUp {
                        attempts: attempt + 1,
                        last: e,
                        waited,
                    }));
                }
                let delay = policy.backoff(attempt);
                clock.advance(delay);
                observe(attempt, delay);
                waited += delay;
                attempt += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_exponentially_then_saturates() {
        let p = RetryPolicy {
            max_retries: 10,
            base_delay: Duration::from_millis(10),
            multiplier: 2.0,
            max_delay: Duration::from_millis(100),
        };
        assert_eq!(p.backoff(0), Duration::from_millis(10));
        assert_eq!(p.backoff(1), Duration::from_millis(20));
        assert_eq!(p.backoff(2), Duration::from_millis(40));
        assert_eq!(p.backoff(3), Duration::from_millis(80));
        // Saturation: 160 ms clamps to the 100 ms ceiling, forever after.
        assert_eq!(p.backoff(4), Duration::from_millis(100));
        assert_eq!(p.backoff(63), Duration::from_millis(100));
        assert_eq!(p.backoff(u32::MAX), Duration::from_millis(100));
    }

    #[test]
    fn total_budget_sums_the_schedule() {
        let p = RetryPolicy {
            max_retries: 3,
            base_delay: Duration::from_millis(10),
            multiplier: 2.0,
            max_delay: Duration::from_millis(500),
        };
        assert_eq!(p.total_budget(), Duration::from_millis(10 + 20 + 40));
        assert_eq!(RetryPolicy::none().total_budget(), Duration::ZERO);
    }

    #[test]
    fn total_budget_saturates_for_absurd_budgets() {
        // u32::MAX retries at the delay ceiling must neither overflow nor
        // take O(max_retries) time to account.
        let p = RetryPolicy {
            max_retries: u32::MAX,
            base_delay: Duration::from_secs(u64::MAX / 2),
            multiplier: 2.0,
            max_delay: Duration::MAX,
        };
        assert_eq!(p.total_budget(), Duration::MAX);
        // A non-growing schedule (multiplier 1.0) still sums in closed
        // form: every retry costs the base delay.
        let flat = RetryPolicy {
            max_retries: 2_000_000,
            base_delay: Duration::from_nanos(3),
            multiplier: 1.0,
            max_delay: Duration::from_secs(1),
        };
        assert_eq!(flat.total_budget(), Duration::from_nanos(3) * 2_000_000);
    }

    #[test]
    fn retry_recovers_and_reports_retry_count() {
        let clock = VirtualClock::new();
        let mut failures = 2;
        let out = retry(
            &RetryPolicy::default(),
            &clock,
            |_: &&str| true,
            |attempt| {
                if failures > 0 {
                    failures -= 1;
                    Err("transient")
                } else {
                    Ok(attempt)
                }
            },
        )
        .expect("recovers");
        assert_eq!(out, (2, 2));
        assert_eq!(clock.elapsed(), Duration::from_millis(10 + 20));
    }

    #[test]
    fn zero_retry_policy_gives_up_immediately() {
        let clock = VirtualClock::new();
        let err = retry(
            &RetryPolicy::none(),
            &clock,
            |_: &&str| true,
            |_| Err::<(), _>("transient"),
        )
        .unwrap_err();
        match err {
            RetryError::GaveUp(g) => {
                assert_eq!(g.attempts, 1);
                assert_eq!(g.waited, Duration::ZERO);
            }
            RetryError::Fatal(_) => panic!("transient error must give up, not go fatal"),
        }
        assert_eq!(clock.elapsed(), Duration::ZERO, "no backoff was due");
    }

    #[test]
    fn fatal_errors_short_circuit() {
        let clock = VirtualClock::new();
        let mut calls = 0;
        let err = retry(
            &RetryPolicy::default(),
            &clock,
            |e: &&str| *e != "fatal",
            |_| {
                calls += 1;
                Err::<(), _>("fatal")
            },
        )
        .unwrap_err();
        assert_eq!(err, RetryError::Fatal("fatal"));
        assert_eq!(calls, 1, "fatal errors must not be retried");
    }

    #[test]
    fn gave_up_renders_into_exhausted() {
        let g = GaveUp {
            attempts: 4,
            last: "disk on fire",
            waited: Duration::from_millis(70),
        };
        let ex = g.into_exhausted("store.get");
        assert_eq!(ex.attempts, 4);
        assert_eq!(ex.site, "store.get");
        let msg = ex.to_string();
        assert!(msg.contains("4 attempts"), "{msg}");
        assert!(msg.contains("disk on fire"), "{msg}");
    }

    #[test]
    fn observer_sees_each_backoff_delay() {
        let clock = VirtualClock::new();
        let mut seen: Vec<(u32, Duration)> = Vec::new();
        let mut failures = 3;
        let ((), retries) = retry_observed(
            &RetryPolicy::default(),
            &clock,
            |_: &&str| true,
            |retry, delay| seen.push((retry, delay)),
            |_| {
                if failures > 0 {
                    failures -= 1;
                    Err("transient")
                } else {
                    Ok(())
                }
            },
        )
        .expect("recovers within budget");
        assert_eq!(retries, 3);
        assert_eq!(
            seen,
            vec![
                (0, Duration::from_millis(10)),
                (1, Duration::from_millis(20)),
                (2, Duration::from_millis(40)),
            ]
        );
        let total: Duration = seen.iter().map(|(_, d)| *d).sum();
        assert_eq!(
            clock.elapsed(),
            total,
            "observer sees what the clock is charged"
        );
    }

    #[test]
    fn virtual_clock_accumulates_without_sleeping() {
        let clock = VirtualClock::new();
        let start = std::time::Instant::now();
        clock.advance(Duration::from_secs(3600));
        clock.advance(Duration::from_secs(1800));
        assert_eq!(clock.elapsed(), Duration::from_secs(5400));
        assert!(start.elapsed() < Duration::from_secs(1), "must not sleep");
    }
}
