//! The seeded fault plan: which attempt at which site fails.

use std::collections::HashMap;
use std::hash::Hasher;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// The injectable failure classes, mirroring the paper's Section IV
/// failure modes on their software counterparts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// A FIB/SEM slice acquisition fails (bad mill, charging, curtaining)
    /// and must be re-acquired from the same stage position.
    AcquireSlice,
    /// A transient I/O error while reading an artifact-store blob.
    StoreRead,
    /// A transient I/O error while writing an artifact-store blob.
    StoreWrite,
    /// A stored blob reads back corrupted (bit rot, torn write) and must
    /// be evicted and recomputed.
    CorruptBlob,
    /// A pipeline stage dies mid-flight (panic), caught and retried as a
    /// transient error.
    StagePanic,
}

impl FaultKind {
    /// Every kind, in lane order.
    pub const ALL: [FaultKind; 5] = [
        FaultKind::AcquireSlice,
        FaultKind::StoreRead,
        FaultKind::StoreWrite,
        FaultKind::CorruptBlob,
        FaultKind::StagePanic,
    ];

    /// Stable lane index (sub-seed selector).
    fn lane(self) -> usize {
        match self {
            FaultKind::AcquireSlice => 0,
            FaultKind::StoreRead => 1,
            FaultKind::StoreWrite => 2,
            FaultKind::CorruptBlob => 3,
            FaultKind::StagePanic => 4,
        }
    }

    /// Human-readable kind name (used in error messages and counters).
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::AcquireSlice => "acquire_slice",
            FaultKind::StoreRead => "store_read",
            FaultKind::StoreWrite => "store_write",
            FaultKind::CorruptBlob => "corrupt_blob",
            FaultKind::StagePanic => "stage_panic",
        }
    }
}

impl core::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

/// Declarative description of a fault plan: per-kind injection rates, a
/// seed, and the recoverability cap.
///
/// A spec is plain data (`Clone + PartialEq`); the live [`FaultPlan`]
/// built from it carries the run-scoped attempt and counter state. Rates
/// are per-*attempt* probabilities in `[0, 1]`.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSpec {
    /// Seed every injection decision derives from.
    pub seed: u64,
    /// Probability a given slice-acquisition attempt fails.
    pub acquire_slice_rate: f64,
    /// Probability a given store read attempt fails transiently.
    pub store_read_rate: f64,
    /// Probability a given store write attempt fails transiently.
    pub store_write_rate: f64,
    /// Probability a stored blob reads back corrupted.
    pub corrupt_blob_rate: f64,
    /// Probability a guarded stage attempt panics.
    pub stage_panic_rate: f64,
    /// Hard cap on *consecutive* failures any single site can see: from
    /// this attempt number on, the site always succeeds. Every fault in
    /// the plan is recoverable by a [`crate::RetryPolicy`] whose
    /// `max_retries >= max_consecutive`.
    pub max_consecutive: u32,
}

impl FaultSpec {
    /// A plan that injects nothing (useful for measuring plumbing
    /// overhead: the fault machinery runs, every check passes).
    pub fn disabled() -> Self {
        Self {
            seed: 0,
            acquire_slice_rate: 0.0,
            store_read_rate: 0.0,
            store_write_rate: 0.0,
            corrupt_blob_rate: 0.0,
            stage_panic_rate: 0.0,
            max_consecutive: 1,
        }
    }

    /// Every fault kind at the same `rate`, failing at most twice in a
    /// row — recoverable under the default [`crate::RetryPolicy`].
    pub fn uniform(seed: u64, rate: f64) -> Self {
        Self {
            seed,
            acquire_slice_rate: rate,
            store_read_rate: rate,
            store_write_rate: rate,
            corrupt_blob_rate: rate,
            stage_panic_rate: rate,
            max_consecutive: 2,
        }
    }

    /// Sets the seed (builder style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the per-kind rate (builder style).
    pub fn with_rate(mut self, kind: FaultKind, rate: f64) -> Self {
        match kind {
            FaultKind::AcquireSlice => self.acquire_slice_rate = rate,
            FaultKind::StoreRead => self.store_read_rate = rate,
            FaultKind::StoreWrite => self.store_write_rate = rate,
            FaultKind::CorruptBlob => self.corrupt_blob_rate = rate,
            FaultKind::StagePanic => self.stage_panic_rate = rate,
        }
        self
    }

    /// Sets the consecutive-failure cap (builder style).
    pub fn with_max_consecutive(mut self, cap: u32) -> Self {
        self.max_consecutive = cap;
        self
    }

    /// The rate configured for `kind`.
    pub fn rate(&self, kind: FaultKind) -> f64 {
        match kind {
            FaultKind::AcquireSlice => self.acquire_slice_rate,
            FaultKind::StoreRead => self.store_read_rate,
            FaultKind::StoreWrite => self.store_write_rate,
            FaultKind::CorruptBlob => self.corrupt_blob_rate,
            FaultKind::StagePanic => self.stage_panic_rate,
        }
    }

    /// Whether any kind can ever inject.
    pub fn is_enabled(&self) -> bool {
        FaultKind::ALL.iter().any(|k| self.rate(*k) > 0.0)
    }
}

/// Point-in-time copy of a plan's fault counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultTally {
    /// Faults injected (failed attempts handed to call sites).
    pub injected: u64,
    /// Retry attempts performed in response to injected faults.
    pub retried: u64,
    /// Operations that succeeded after at least one retry.
    pub recovered: u64,
    /// Operations that exhausted their retries and were gracefully
    /// degraded (e.g. a slice interpolated from its neighbours).
    pub degraded: u64,
}

/// A live fault plan: the pure injection function plus run-scoped attempt
/// tracking and counters.
///
/// Injection decisions are a pure function of `(seed, kind, site,
/// attempt)` — two plans built from the same [`FaultSpec`] inject exactly
/// the same faults no matter how calls interleave across threads. The
/// per-site attempt counters (which make repeated [`FaultPlan::check`]
/// calls walk the attempt axis) are independent per site, so parallel
/// workers touching disjoint sites stay deterministic too.
#[derive(Debug)]
pub struct FaultPlan {
    spec: FaultSpec,
    /// Per-kind sub-seeds, drawn from a seeded RNG at construction so
    /// the kinds' decision streams are independent.
    lanes: [u64; 5],
    attempts: Mutex<HashMap<(u8, u64), u32>>,
    injected: AtomicU64,
    retried: AtomicU64,
    recovered: AtomicU64,
    degraded: AtomicU64,
}

impl FaultPlan {
    /// Builds the live plan for one run of a pipeline.
    pub fn new(spec: FaultSpec) -> Self {
        let mut rng = StdRng::seed_from_u64(spec.seed);
        let lanes = [
            rng.next_u64(),
            rng.next_u64(),
            rng.next_u64(),
            rng.next_u64(),
            rng.next_u64(),
        ];
        Self {
            spec,
            lanes,
            attempts: Mutex::new(HashMap::new()),
            injected: AtomicU64::new(0),
            retried: AtomicU64::new(0),
            recovered: AtomicU64::new(0),
            degraded: AtomicU64::new(0),
        }
    }

    /// The spec this plan was built from.
    pub fn spec(&self) -> &FaultSpec {
        &self.spec
    }

    /// Registers one attempt of `kind` at `site` and reports whether this
    /// attempt fails. Consecutive calls for the same site walk the attempt
    /// axis, so a transient fault clears after at most
    /// [`FaultSpec::max_consecutive`] failures.
    pub fn check(&self, kind: FaultKind, site: &str) -> bool {
        let site_hash = hash_site(site);
        let attempt = {
            let mut attempts = self.attempts.lock().expect("fault plan poisoned");
            let slot = attempts.entry((kind.lane() as u8, site_hash)).or_insert(0);
            let attempt = *slot;
            *slot += 1;
            attempt
        };
        let fail = self.decides(kind, site_hash, attempt);
        if fail {
            self.injected.fetch_add(1, Ordering::Relaxed);
            crate::stats::record_injected(1);
        }
        fail
    }

    /// The pure decision function: would attempt number `attempt` at the
    /// site fail? Exposed for tests that verify order independence.
    pub fn would_fail(&self, kind: FaultKind, site: &str, attempt: u32) -> bool {
        self.decides(kind, hash_site(site), attempt)
    }

    fn decides(&self, kind: FaultKind, site_hash: u64, attempt: u32) -> bool {
        if attempt >= self.spec.max_consecutive {
            return false;
        }
        let rate = self.spec.rate(kind);
        if rate <= 0.0 {
            return false;
        }
        unit_interval(self.lanes[kind.lane()], site_hash, attempt) < rate
    }

    /// Panics if this stage attempt is injected — the caller is expected
    /// to run it under `catch_unwind` and convert the unwind into a
    /// transient, retryable error.
    pub fn trip_stage(&self, stage: &str) {
        if self.check(FaultKind::StagePanic, stage) {
            panic!("injected transient fault in stage `{stage}`");
        }
    }

    /// Counts retry attempts made in response to injected faults.
    pub fn record_retried(&self, n: u64) {
        self.retried.fetch_add(n, Ordering::Relaxed);
        crate::stats::record_retried(n);
    }

    /// Counts operations that recovered after at least one retry.
    pub fn record_recovered(&self, n: u64) {
        self.recovered.fetch_add(n, Ordering::Relaxed);
        crate::stats::record_recovered(n);
    }

    /// Counts operations degraded after exhausting their retries.
    pub fn record_degraded(&self, n: u64) {
        self.degraded.fetch_add(n, Ordering::Relaxed);
        crate::stats::record_degraded(n);
    }

    /// Snapshot of the plan's counters.
    pub fn tally(&self) -> FaultTally {
        FaultTally {
            injected: self.injected.load(Ordering::Relaxed),
            retried: self.retried.load(Ordering::Relaxed),
            recovered: self.recovered.load(Ordering::Relaxed),
            degraded: self.degraded.load(Ordering::Relaxed),
        }
    }
}

/// FNV-1a over the site string (stable across platforms — the vendored
/// hasher is fully specified).
fn hash_site(site: &str) -> u64 {
    let mut h = fnv::FnvHasher::default();
    h.write(site.as_bytes());
    h.finish()
}

/// Maps `(lane, site, attempt)` to a uniform value in `[0, 1)`.
fn unit_interval(lane: u64, site_hash: u64, attempt: u32) -> f64 {
    let mut h = fnv::FnvHasher::with_key(lane);
    h.write(&site_hash.to_le_bytes());
    h.write(&attempt.to_le_bytes());
    // Top 53 bits → the unit interval, like rand's f64 conversion.
    (h.finish() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_pure_and_order_independent() {
        let a = FaultPlan::new(FaultSpec::uniform(42, 0.5));
        let b = FaultPlan::new(FaultSpec::uniform(42, 0.5));
        // Query b in reverse order: decisions must match a's exactly.
        let sites: Vec<String> = (0..64).map(|i| format!("slice:{i}")).collect();
        let forward: Vec<bool> = sites
            .iter()
            .map(|s| a.would_fail(FaultKind::AcquireSlice, s, 0))
            .collect();
        let backward: Vec<bool> = sites
            .iter()
            .rev()
            .map(|s| b.would_fail(FaultKind::AcquireSlice, s, 0))
            .collect();
        assert_eq!(
            forward,
            backward.into_iter().rev().collect::<Vec<_>>(),
            "injection must not depend on query order"
        );
        // A 50% plan over 64 sites essentially never injects 0 or 64.
        let n = forward.iter().filter(|f| **f).count();
        assert!(n > 8 && n < 56, "suspicious injection count {n}");
    }

    #[test]
    fn seeds_change_the_pattern_and_kinds_are_independent() {
        let a = FaultPlan::new(FaultSpec::uniform(1, 0.5));
        let b = FaultPlan::new(FaultSpec::uniform(2, 0.5));
        let sites: Vec<String> = (0..128).map(|i| format!("s{i}")).collect();
        let pattern = |p: &FaultPlan, kind| -> Vec<bool> {
            sites.iter().map(|s| p.would_fail(kind, s, 0)).collect()
        };
        assert_ne!(
            pattern(&a, FaultKind::AcquireSlice),
            pattern(&b, FaultKind::AcquireSlice),
            "different seeds must inject differently"
        );
        assert_ne!(
            pattern(&a, FaultKind::AcquireSlice),
            pattern(&a, FaultKind::StoreRead),
            "kinds must not share a decision stream"
        );
    }

    #[test]
    fn max_consecutive_caps_every_site() {
        let spec = FaultSpec::uniform(9, 1.0).with_max_consecutive(3);
        let plan = FaultPlan::new(spec);
        // Rate 1.0: attempts 0..3 all fail, attempt 3 must pass.
        for attempt in 0..3 {
            assert!(
                plan.check(FaultKind::StoreRead, "blob"),
                "attempt {attempt}"
            );
        }
        assert!(!plan.check(FaultKind::StoreRead, "blob"), "capped attempt");
        assert_eq!(plan.tally().injected, 3);
    }

    #[test]
    fn disabled_spec_never_injects() {
        let plan = FaultPlan::new(FaultSpec::disabled());
        assert!(!plan.spec().is_enabled());
        for i in 0..32 {
            for kind in FaultKind::ALL {
                assert!(!plan.check(kind, &format!("site{i}")));
            }
        }
        assert_eq!(plan.tally(), FaultTally::default());
    }

    #[test]
    fn check_walks_the_attempt_axis_per_site() {
        let spec = FaultSpec::disabled()
            .with_seed(5)
            .with_rate(FaultKind::AcquireSlice, 1.0)
            .with_max_consecutive(1);
        let plan = FaultPlan::new(spec);
        assert!(plan.check(FaultKind::AcquireSlice, "slice:0"));
        // Second attempt at the same site passes; a fresh site fails again.
        assert!(!plan.check(FaultKind::AcquireSlice, "slice:0"));
        assert!(plan.check(FaultKind::AcquireSlice, "slice:1"));
    }

    #[test]
    fn tally_tracks_recovery_bookkeeping() {
        let plan = FaultPlan::new(FaultSpec::disabled());
        plan.record_retried(3);
        plan.record_recovered(2);
        plan.record_degraded(1);
        let t = plan.tally();
        assert_eq!((t.retried, t.recovered, t.degraded), (3, 2, 1));
    }

    #[test]
    #[should_panic(expected = "injected transient fault in stage `reconstruct`")]
    fn trip_stage_panics_when_injected() {
        let spec = FaultSpec::disabled()
            .with_rate(FaultKind::StagePanic, 1.0)
            .with_max_consecutive(1);
        FaultPlan::new(spec).trip_stage("reconstruct");
    }
}
