//! Deterministic fault injection, bounded retries and graceful degradation.
//!
//! The paper's physical pipeline is riddled with partial failures — a FIB
//! slice mills badly, the SEM image charges, the stage drifts past the
//! correction budget — and the authors recover by re-milling and
//! re-acquiring (Section IV). This crate gives the reproduction the same
//! shape *as infrastructure*: every fallible boundary in the software
//! pipeline (per-slice acquisition, artifact-store reads and writes,
//! stage execution) can be made to fail on demand, deterministically, and
//! the recovery machinery (retry with exponential backoff, neighbour
//! interpolation for slices that stay dead) is exercised under test
//! instead of being trusted on faith.
//!
//! - [`FaultSpec`] / [`FaultPlan`] — a seeded, pure-function description of
//!   which attempt at which site fails. Decisions depend only on
//!   `(seed, site, attempt)`, never on call order, so a faulted pipeline
//!   is bit-identical at every thread count.
//! - [`RetryPolicy`] — bounded retries with deterministic exponential
//!   backoff. Backoff advances a [`VirtualClock`] instead of sleeping, so
//!   recovery is reproducible and tests stay fast.
//! - [`GaveUp`] / [`Exhausted`] — typed errors for operations that used up
//!   their whole retry budget; callers either surface them or degrade
//!   gracefully (and say so via the fault counters).
//!
//! # Examples
//!
//! ```
//! use hifi_faults::{retry, FaultKind, FaultPlan, FaultSpec, RetryPolicy, VirtualClock};
//!
//! // Fail roughly half of all first attempts, never twice in a row.
//! let plan = FaultPlan::new(FaultSpec::uniform(7, 0.5).with_max_consecutive(1));
//! let policy = RetryPolicy::default();
//! let clock = VirtualClock::new();
//! let value = retry(&policy, &clock, |_| true, |attempt| {
//!     if plan.check(FaultKind::StoreRead, "blob:42") {
//!         Err(format!("injected fault on attempt {attempt}"))
//!     } else {
//!         Ok(42)
//!     }
//! })
//! .expect("recoverable by construction");
//! assert_eq!(value.0, 42);
//! ```

mod plan;
mod retry;

pub use plan::{FaultKind, FaultPlan, FaultSpec, FaultTally};
pub use retry::{retry, Exhausted, GaveUp, RetryError, RetryPolicy, VirtualClock};
