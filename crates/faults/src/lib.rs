//! Deterministic fault injection, bounded retries and graceful degradation.
//!
//! The paper's physical pipeline is riddled with partial failures — a FIB
//! slice mills badly, the SEM image charges, the stage drifts past the
//! correction budget — and the authors recover by re-milling and
//! re-acquiring (Section IV). This crate gives the reproduction the same
//! shape *as infrastructure*: every fallible boundary in the software
//! pipeline (per-slice acquisition, artifact-store reads and writes,
//! stage execution) can be made to fail on demand, deterministically, and
//! the recovery machinery (retry with exponential backoff, neighbour
//! interpolation for slices that stay dead) is exercised under test
//! instead of being trusted on faith.
//!
//! - [`FaultSpec`] / [`FaultPlan`] — a seeded, pure-function description of
//!   which attempt at which site fails. Decisions depend only on
//!   `(seed, site, attempt)`, never on call order, so a faulted pipeline
//!   is bit-identical at every thread count.
//! - [`RetryPolicy`] — bounded retries with deterministic exponential
//!   backoff. Backoff advances a [`VirtualClock`] instead of sleeping, so
//!   recovery is reproducible and tests stay fast.
//! - [`GaveUp`] / [`Exhausted`] — typed errors for operations that used up
//!   their whole retry budget; callers either surface them or degrade
//!   gracefully (and say so via the fault counters).
//!
//! # Examples
//!
//! ```
//! use hifi_faults::{retry, FaultKind, FaultPlan, FaultSpec, RetryPolicy, VirtualClock};
//!
//! // Fail roughly half of all first attempts, never twice in a row.
//! let plan = FaultPlan::new(FaultSpec::uniform(7, 0.5).with_max_consecutive(1));
//! let policy = RetryPolicy::default();
//! let clock = VirtualClock::new();
//! let value = retry(&policy, &clock, |_| true, |attempt| {
//!     if plan.check(FaultKind::StoreRead, "blob:42") {
//!         Err(format!("injected fault on attempt {attempt}"))
//!     } else {
//!         Ok(42)
//!     }
//! })
//! .expect("recoverable by construction");
//! assert_eq!(value.0, 42);
//! ```

mod plan;
mod retry;

pub use plan::{FaultKind, FaultPlan, FaultSpec, FaultTally};
pub use retry::{retry, retry_observed, Exhausted, GaveUp, RetryError, RetryPolicy, VirtualClock};

/// Process-wide fault counters, aggregated across every [`FaultPlan`] in
/// the process — the mirror of `hifi_store::stats` for the fault layer.
///
/// Per-plan tallies ([`FaultPlan::tally`]) serve a single run's report;
/// these counters let a driver that executes many runs (the conformance
/// campaign, quickstart's run sequence) print one end-of-process line
/// without threading every plan through. Counters are monotonic; diff two
/// [`stats::snapshot`]s to measure an interval.
pub mod stats {
    use std::sync::atomic::{AtomicU64, Ordering};

    static INJECTED: AtomicU64 = AtomicU64::new(0);
    static RETRIED: AtomicU64 = AtomicU64::new(0);
    static RECOVERED: AtomicU64 = AtomicU64::new(0);
    static DEGRADED: AtomicU64 = AtomicU64::new(0);

    /// A point-in-time copy of the counters.
    #[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
    pub struct Snapshot {
        /// Faults injected by any plan.
        pub injected: u64,
        /// Retry attempts made in response.
        pub retried: u64,
        /// Operations that recovered after at least one retry.
        pub recovered: u64,
        /// Operations that exhausted retries and were degraded.
        pub degraded: u64,
    }

    impl Snapshot {
        /// Counter deltas since an `earlier` snapshot.
        pub fn since(&self, earlier: &Snapshot) -> Snapshot {
            Snapshot {
                injected: self.injected - earlier.injected,
                retried: self.retried - earlier.retried,
                recovered: self.recovered - earlier.recovered,
                degraded: self.degraded - earlier.degraded,
            }
        }

        /// Whether any fault activity happened in this interval.
        pub fn any(&self) -> bool {
            self.injected + self.retried + self.recovered + self.degraded > 0
        }

        /// One-line human summary, e.g.
        /// `faults: 5 injected, 4 retried, 3 recovered, 1 degraded`.
        pub fn summary(&self) -> String {
            format!(
                "faults: {} injected, {} retried, {} recovered, {} degraded",
                self.injected, self.retried, self.recovered, self.degraded
            )
        }
    }

    /// Reads the current counters.
    pub fn snapshot() -> Snapshot {
        Snapshot {
            injected: INJECTED.load(Ordering::Relaxed),
            retried: RETRIED.load(Ordering::Relaxed),
            recovered: RECOVERED.load(Ordering::Relaxed),
            degraded: DEGRADED.load(Ordering::Relaxed),
        }
    }

    pub(crate) fn record_injected(n: u64) {
        INJECTED.fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn record_retried(n: u64) {
        RETRIED.fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn record_recovered(n: u64) {
        RECOVERED.fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn record_degraded(n: u64) {
        DEGRADED.fetch_add(n, Ordering::Relaxed);
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn snapshot_deltas_and_summary() {
            let before = snapshot();
            record_injected(2);
            record_retried(2);
            record_recovered(1);
            record_degraded(1);
            let delta = snapshot().since(&before);
            assert_eq!(delta.injected, 2);
            assert_eq!(delta.retried, 2);
            assert_eq!(delta.recovered, 1);
            assert_eq!(delta.degraded, 1);
            assert!(delta.any());
            assert!(!Snapshot::default().any());
            let line = delta.summary();
            assert!(line.contains("2 injected"), "{line}");
            assert!(line.contains("1 degraded"), "{line}");
        }
    }
}
