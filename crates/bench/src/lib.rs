//! Regeneration harness: one function per table/figure of the paper.
//!
//! Each `regen-*` binary in `src/bin/` prints one artefact of the paper's
//! evaluation, computed live from the workspace (never hard-coded). The
//! Criterion benches in `benches/` measure the performance of the pipeline
//! stages and evaluation kernels. `EXPERIMENTS.md` records paper-reported vs
//! regenerated values for every artefact.

pub mod regen;
pub mod results;
pub mod table;

pub use regen::*;
