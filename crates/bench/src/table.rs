//! Minimal fixed-width plain-text table formatter for the regen binaries.

/// A plain-text table builder.
///
/// ```
/// use hifi_bench::table::Table;
/// let mut t = Table::new(vec!["ID", "Vendor"]);
/// t.row(vec!["A4".into(), "A (DDR4)".into()]);
/// let s = t.render();
/// assert!(s.contains("A4"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(header: Vec<&str>) -> Self {
        Self {
            header: header.into_iter().map(str::to_owned).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (short rows are padded with empty cells).
    pub fn row(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    /// Renders the table with column-aligned cells.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for r in &self.rows {
            for (i, c) in r.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(c.len());
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for (i, w) in widths.iter().enumerate() {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                line.push_str(&format!("{cell:<w$}  "));
            }
            line.trim_end().to_owned()
        };
        let mut out = fmt_row(&self.header);
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for r in &self.rows {
            out.push_str(&fmt_row(r));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(vec!["a", "long-header"]);
        t.row(vec!["xxxx".into(), "1".into()]);
        t.row(vec!["y".into(), "22".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // Column 2 starts at the same offset on every row.
        let off = lines[0].find("long-header").unwrap();
        assert_eq!(lines[2].find('1').unwrap(), off);
        assert_eq!(lines[3].find("22").unwrap(), off);
    }

    #[test]
    fn short_rows_padded() {
        let mut t = Table::new(vec!["a", "b", "c"]);
        t.row(vec!["1".into()]);
        let s = t.render();
        assert!(s.ends_with('\n'));
    }
}
