//! Exports the generated SA-region layout of every studied chip as GDSII —
//! the format the paper releases its reverse-engineered layouts in.

use hifi_dram::data::chips;
use hifi_dram::geometry::gds;
use hifi_dram::pipeline::dims_for_chip;
use hifi_dram::synth::{generate_region, SaRegionSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::env::args().nth(1).unwrap_or_else(|| {
        std::env::temp_dir()
            .join("hifi-dram-gds")
            .display()
            .to_string()
    });
    std::fs::create_dir_all(&dir)?;
    for chip in chips() {
        let spec = SaRegionSpec::new(chip.topology())
            .with_dims(dims_for_chip(&chip))
            .with_pairs(2)
            .with_transition_nm(chip.geometry().mat_to_sa_transition.value().round() as i64)
            .with_mat_strip(true);
        let region = generate_region(&spec);
        let bytes = gds::write_library(
            &format!("hifi-dram-{}", chip.name()),
            &[region.layout().clone()],
        )?;
        let path = format!("{dir}/{}_sa_region.gds", chip.name());
        std::fs::write(&path, &bytes)?;
        // Round-trip sanity check before publishing the file.
        let parsed = gds::read_library(&bytes)?;
        assert_eq!(parsed.len(), 1, "gds must round-trip");
        println!(
            "{}: {} elements, {} bytes -> {}",
            chip.name(),
            region.layout().len(),
            bytes.len(),
            path
        );
    }
    Ok(())
}
