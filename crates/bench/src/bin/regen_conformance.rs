//! Regenerates the pinned conformance-campaign summary.
//!
//! A tiny fixed campaign (seed 42, 2 runs) whose aggregate report is
//! deterministic and thread-count independent, so `scripts/check.sh` can
//! diff the stdout against `regen_outputs/conformance.txt` at 1 thread
//! and at `available_parallelism`.

use hifi_conformance::{run_campaign, CampaignConfig};

fn main() {
    let cfg = CampaignConfig {
        seed: 42,
        runs: 2,
        ..CampaignConfig::default()
    };
    let report = run_campaign(&cfg);
    println!("# Conformance campaign (seed 42, 2 runs)");
    println!("{}", report.summary_line());
    println!();
    println!("oracle                      runs  failures");
    for o in &report.oracles {
        println!("{:<26}  {:>4}  {:>8}", o.oracle, o.runs, o.failures);
    }
    println!();
    println!("worst dimension error (voxels), histogram:");
    for b in &report.error_histogram {
        println!("  {:<6} {}", b.bucket, b.count);
    }
}
