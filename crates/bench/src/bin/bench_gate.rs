//! Benchmark regression gate.
//!
//! Compares `BENCH_results.json` (written by the overhead benches) against
//! the committed `BENCH_baseline.json` and exits non-zero when any metric
//! regressed past the tolerance (default 15%, `BENCH_GATE_TOLERANCE_PCT`
//! to override). Every baseline metric must be present in the results —
//! a bench that silently stops reporting is a gate failure, not a pass.
//! Metrics in the results but not in the baseline are listed as new so
//! the baseline can be extended deliberately.
//!
//! Usage: `bench_gate [results.json [baseline.json]]`; paths default to
//! `BENCH_RESULTS` / `BENCH_BASELINE`, then the workspace root files.

use std::path::PathBuf;
use std::process::ExitCode;

use hifi_bench::results::{baseline_path, gate_metric, results_path, BenchResults, Verdict};

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let results_file = args.next().map_or_else(results_path, PathBuf::from);
    let baseline_file = args.next().map_or_else(baseline_path, PathBuf::from);
    let tolerance_pct = std::env::var("BENCH_GATE_TOLERANCE_PCT")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(15.0);

    let baseline = match BenchResults::load(&baseline_file) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("bench_gate: cannot load baseline: {e}");
            return ExitCode::FAILURE;
        }
    };
    let results = match BenchResults::load(&results_file) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("bench_gate: cannot load results: {e}");
            eprintln!("bench_gate: run the overhead benches first (scripts/bench_gate.sh)");
            return ExitCode::FAILURE;
        }
    };
    if baseline.metrics.is_empty() {
        eprintln!(
            "bench_gate: baseline {} has no metrics",
            baseline_file.display()
        );
        return ExitCode::FAILURE;
    }

    println!(
        "bench_gate: {} vs baseline {} (tolerance {tolerance_pct}%)",
        results_file.display(),
        baseline_file.display()
    );
    let mut failed = false;
    for base in &baseline.metrics {
        let measured = results.get(&base.name).map(|m| m.value);
        let verdict = gate_metric(base, measured, tolerance_pct);
        let shown = measured.map_or_else(|| "-".to_string(), |v| format!("{v:.3}"));
        println!(
            "  {:<45} baseline {:>10.3} {:<7} measured {:>10} {}",
            base.name, base.value, base.unit, shown, verdict
        );
        failed |= verdict != Verdict::Ok;
    }
    for fresh in &results.metrics {
        if baseline.get(&fresh.name).is_none() {
            println!(
                "  {:<45} NEW ({:.3} {}) — add to {} to gate it",
                fresh.name,
                fresh.value,
                fresh.unit,
                baseline_file.display()
            );
        }
    }

    if failed {
        eprintln!("bench_gate: regression detected");
        ExitCode::FAILURE
    } else {
        println!("bench_gate: all metrics within tolerance");
        ExitCode::SUCCESS
    }
}
