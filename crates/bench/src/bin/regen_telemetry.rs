//! Regenerates the telemetry run reports; see `hifi_bench::regen`.
fn main() {
    println!("{}", hifi_bench::telemetry_runs());
}
