//! Regenerates the paper artefact; see `hifi_bench::regen`.
fn main() {
    println!("{}", hifi_bench::mna_sensitivity());
}
