//! Regenerates the pinned rev-campaign summary.
//!
//! A tiny fixed campaign (seed 42, 2 runs, imaging route on) whose
//! aggregate report is deterministic and thread-count independent, so
//! `scripts/check.sh` can diff the stdout against `regen_outputs/rev.txt`
//! at 1 thread and at `available_parallelism`.

use hifi_rev::{run_rev_campaign, RevCampaignConfig};

fn main() {
    let cfg = RevCampaignConfig {
        seed: 42,
        runs: 2,
        with_imaging: true,
    };
    let report = run_rev_campaign(&cfg);
    println!("# Rev campaign (seed 42, 2 runs, two-route)");
    println!("{}", report.summary_line());
    println!();
    println!("run  seed                device               fields  commands");
    for o in &report.outcomes {
        println!(
            "{:>3}  {:#018x}  {:<19}  {:>2}/{:<2}   {:>8}",
            o.run_index,
            o.seed,
            o.inference.topology.kind.name(),
            o.comparison.fields.iter().filter(|f| f.agrees).count(),
            o.comparison.fields.len(),
            o.inference.commands_issued,
        );
    }
    println!();
    println!("counters:");
    for c in &report.counters {
        println!("  {:<24} {:>10}", c.name, c.total);
    }
    println!();
    println!("probe latency (ns):");
    for h in &report.histograms {
        println!(
            "  {:<24} n={} min={} p50={} p90={} max={}",
            h.name, h.count, h.min, h.p50, h.p90, h.max
        );
    }
}
