//! Emits the full dataset release document (the paper's open-data artefact)
//! as JSON on stdout.
fn main() {
    println!("{}", hifi_dram::data::export::to_json());
}
