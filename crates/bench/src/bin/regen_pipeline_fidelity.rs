//! Regenerates the paper artefact; see `hifi_bench::regen`.
//!
//! When `HIFI_STORE` is set, the pipelines replay cached artifacts; the
//! cache summary goes to **stderr** so the stdout snapshot stays
//! byte-identical with and without a store.
fn main() {
    let store_enabled = std::env::var_os("HIFI_STORE").is_some_and(|v| !v.is_empty());
    let before = hifi_store::stats::snapshot();
    println!("{}", hifi_bench::pipeline_fidelity());
    if store_enabled {
        eprintln!("{}", hifi_store::stats::snapshot().since(&before).summary());
    }
}
