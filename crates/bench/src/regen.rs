//! One regeneration function per paper artefact.

use crate::table::Table;
use hifi_analog::events::{
    max_tolerated_offset, simulate_classic_activation, simulate_ocsa_activation, ActivationConfig,
};
use hifi_circuit::topology::SaTopologyKind;
use hifi_circuit::TransistorClass;
use hifi_data::{chips, crow, rem, DdrGeneration};
use hifi_dram::pipeline::{Pipeline, PipelineConfig};
use hifi_dramsim::outofspec::{attempt_majority, row_copy_gap_sweep};
use hifi_dramsim::{DeviceConfig, DramDevice};
use hifi_eval::models::{compare_model, DimensionMetric};
use hifi_eval::overhead::{fig14, i1_average_mat_extension, table2 as eval_table2};
use hifi_eval::{bitline, space};
use hifi_imaging::ImagingConfig;

/// Table I: the six studied chips.
pub fn table1() -> String {
    let mut t = Table::new(vec![
        "ID",
        "Vendor",
        "Storage",
        "Yr.",
        "Size",
        "Det.",
        "MATs",
        "Pixl.Res.",
        "SA",
    ]);
    for c in chips() {
        t.row(vec![
            c.name().to_string(),
            format!("{} ({})", c.vendor(), c.generation()),
            format!("{}Gb", c.density_gbit()),
            format!("'{}", c.production_year() % 100),
            format!("{}mm^2", c.die_area().value()),
            c.detector().to_string(),
            if c.mats_visible_after_decap() {
                "V."
            } else {
                "N.V."
            }
            .into(),
            format!("{} nm", c.pixel_resolution().value()),
            c.topology().to_string(),
        ]);
    }
    format!("Table I — studied chips\n\n{}", t.render())
}

/// Table II: research inaccuracies, overhead error and portability cost.
pub fn table2() -> String {
    let mut t = Table::new(vec![
        "Research",
        "Inacc.",
        "Error",
        "Port. Cost",
        "DDR",
        "Yr.",
    ]);
    for row in eval_table2() {
        let inacc = row
            .paper
            .inaccuracies
            .iter()
            .map(|i| i.to_string().trim_start_matches('I').to_owned())
            .collect::<Vec<_>>()
            .join(",");
        t.row(vec![
            row.paper.name.to_owned(),
            format!("I{inacc}"),
            row.overhead_error
                .map(|e| e.as_times())
                .unwrap_or_else(|| "N/A".into()),
            row.porting_cost.as_times(),
            match row.paper.original_generation {
                DdrGeneration::Ddr3 => "3",
                DdrGeneration::Ddr4 => "4",
                DdrGeneration::Ddr5 => "5",
            }
            .into(),
            format!("'{}", row.paper.year % 100),
        ]);
    }
    format!(
        "Table II — evaluated papers\n\n{}\nI1 papers' MAT extension alone: {:.0}% of the chip (paper: 57%)\n",
        t.render(),
        i1_average_mat_extension().as_percent()
    )
}

fn waveform_table(report: &hifi_analog::events::SenseReport, nodes: &[&str]) -> String {
    let wf = &report.waveforms;
    let dt = wf.sample_interval();
    let n = wf.trace(nodes[0]).map(|t| t.len()).unwrap_or(0);
    let mut header = vec!["t (ns)"];
    header.extend_from_slice(nodes);
    let mut t = Table::new(header);
    let step = (n / 24).max(1);
    for i in (0..n).step_by(step) {
        let mut row = vec![format!("{:6.2}", i as f64 * dt * 1e9)];
        for node in nodes {
            let v = wf.trace(node).map(|tr| tr[i]).unwrap_or(f64::NAN);
            row.push(format!("{v:6.3}"));
        }
        t.row(row);
    }
    t.render()
}

/// Fig. 2c: classic SA events (charge sharing → latch & restore → precharge).
pub fn fig2c() -> String {
    let cfg = ActivationConfig::default();
    let report = simulate_classic_activation(&cfg, true);
    format!(
        "Fig. 2c — classic SA activation events (stored 1)\n\n\
         charge-sharing onset: {:.2} ns\nlatch split (>Vdd/2): {:.2} ns\n\
         restored cell level:  {:.3} V (Vdd = {})\ncorrect: {}\n\n{}",
        report.charge_sharing_onset.unwrap_or(f64::NAN) * 1e9,
        report.latch_split_time.unwrap_or(f64::NAN) * 1e9,
        report.restored_level,
        cfg.vdd,
        report.correct,
        waveform_table(&report, &["BL", "BLB", "SN0_BL", "LA", "LAB"]),
    )
}

/// Fig. 9b: OCSA events (offset cancellation → delayed charge sharing →
/// pre-sensing → restore).
pub fn fig9b() -> String {
    let cfg = ActivationConfig::default();
    let classic = simulate_classic_activation(&cfg, true);
    let report = simulate_ocsa_activation(&cfg, true);
    let delay = report.charge_sharing_onset.unwrap_or(f64::NAN)
        - classic.charge_sharing_onset.unwrap_or(f64::NAN);
    format!(
        "Fig. 9b — OCSA activation events (stored 1)\n\n\
         charge-sharing onset: {:.2} ns ({:+.2} ns vs classic — delayed by the\n\
         offset-cancellation phase, Section VI-D)\nlatch split: {:.2} ns\n\
         restored cell level: {:.3} V\ncorrect: {}\n\n{}",
        report.charge_sharing_onset.unwrap_or(f64::NAN) * 1e9,
        delay * 1e9,
        report.latch_split_time.unwrap_or(f64::NAN) * 1e9,
        report.restored_level,
        report.correct,
        waveform_table(&report, &["BL", "BLB", "SABL", "SABLB", "SN0_BL"]),
    )
}

/// Offset-tolerance comparison backing the OCSA-deployment argument.
pub fn offset_tolerance() -> String {
    let cfg = ActivationConfig::default();
    let classic = max_tolerated_offset(SaTopologyKind::Classic, &cfg, 20.0, 160.0);
    let ocsa = max_tolerated_offset(SaTopologyKind::OffsetCancellation, &cfg, 20.0, 160.0);
    format!(
        "Offset tolerance (max Vt mismatch sensed correctly, 20 mV steps)\n\n\
         classic SA: {classic:.0} mV\nOCSA:       {ocsa:.0} mV\n\n\
         The OCSA tolerates ≥{:.1}x the mismatch — why two of three vendors\n\
         deployed offset-cancellation designs (Section V).\n",
        ocsa / classic.max(1.0)
    )
}

/// Fig. 11: measured pSA/nSA dimensions per chip, plus REM (CROW omitted as
/// out of range, as in the paper).
pub fn fig11() -> String {
    let mut t = Table::new(vec![
        "Chip", "nSA W", "nSA L", "pSA W", "pSA L", "nSA W/L", "pSA W/L",
    ]);
    for row in hifi_eval::models::fig11_rows(&chips()) {
        t.row(vec![
            row.label.clone(),
            format!("{:.0}", row.nsa.width.value()),
            format!("{:.0}", row.nsa.length.value()),
            format!("{:.0}", row.psa.width.value()),
            format!("{:.0}", row.psa.length.value()),
            format!("{:.2}", row.nsa.w_over_l()),
            format!("{:.2}", row.psa.w_over_l()),
        ]);
    }
    format!(
        "Fig. 11 — latch transistor sizes (nm); CROW omitted (out of range)\n\n{}",
        t.render()
    )
}

/// Fig. 12: average/maximum inaccuracies of REM and CROW.
pub fn fig12() -> String {
    let cs = chips();
    let mut t = Table::new(vec![
        "Model",
        "Tech",
        "avg W/L",
        "max W/L (@)",
        "avg W",
        "max W (@)",
        "avg L",
        "max L (@)",
    ]);
    for model in [rem(), crow()] {
        for gen in [DdrGeneration::Ddr4, DdrGeneration::Ddr5] {
            let cmp = compare_model(&model, &cs, gen);
            let cell = |m: DimensionMetric| {
                let mx = cmp.maximum(m);
                (
                    format!("{:.0}%", cmp.average(m).as_percent()),
                    format!(
                        "{:.0}% ({} {})",
                        mx.inaccuracy.as_percent(),
                        mx.chip,
                        mx.class
                    ),
                )
            };
            let (awl, mwl) = cell(DimensionMetric::WOverL);
            let (aw, mw) = cell(DimensionMetric::Width);
            let (al, ml) = cell(DimensionMetric::Length);
            t.row(vec![
                model.name().to_owned(),
                format!(
                    "{gen}{}",
                    if gen == DdrGeneration::Ddr5 {
                        " (¥)"
                    } else {
                        ""
                    }
                ),
                awl,
                mwl,
                aw,
                mw,
                al,
                ml,
            ]);
        }
    }
    format!(
        "Fig. 12 — model inaccuracies vs measured transistors\n\n{}",
        t.render()
    )
}

/// Fig. 13: free-space checks behind I1 and I2.
pub fn fig13() -> String {
    let mut t = Table::new(vec![
        "Chip",
        "BL pitch",
        "BL width",
        "usable gap",
        "extra BL fits?",
    ]);
    for c in chips() {
        let check = space::mat_free_space(&c);
        t.row(vec![
            c.name().to_string(),
            format!("{:.0} nm", c.geometry().bitline_pitch().value()),
            format!("{:.0} nm", c.geometry().bitline_width().value()),
            format!("{:.0} nm", check.usable_gap.value()),
            if check.fits { "yes" } else { "no (I1/I2)" }.into(),
        ]);
    }
    format!(
        "Fig. 13 — no free space for extra bitlines in MAT (I1) or SA region (I2)\n\n{}",
        t.render()
    )
}

/// Fig. 14: per-vendor overhead error / porting cost (papers ≤10x).
pub fn fig14_table() -> String {
    let mut t = Table::new(vec!["Paper", "Chip", "Vendor", "Value", "Kind"]);
    for e in fig14() {
        t.row(vec![
            e.paper.to_owned(),
            e.chip.to_string(),
            e.vendor.to_string(),
            e.value.as_times(),
            if e.is_porting { "porting" } else { "error" }.into(),
        ]);
    }
    format!(
        "Fig. 14 — per-vendor overhead error / porting cost (papers >10x omitted)\n\n{}",
        t.render()
    )
}

/// Appendix A: bitline-change arithmetic (Eq. 1) and electrical factors.
pub fn appendix_a() -> String {
    let cs = chips();
    let ext = bitline::halved_bitline_extension();
    let mut t = Table::new(vec!["Chip", "MAT+SA frac", "chip overhead"]);
    for c in &cs {
        t.row(vec![
            c.name().to_string(),
            format!(
                "{:.1}%",
                (c.geometry().mat_fraction().value() + c.geometry().sa_fraction().value()) * 100.0
            ),
            format!(
                "{:.1}%",
                bitline::halved_bitline_chip_overhead(c).as_percent()
            ),
        ]);
    }
    let scaling = bitline::BitlineScaling::new(0.5, 0.5);
    format!(
        "Appendix A — halving bitline widths (Eq. 1)\n\n\
         SA-region extension: {:.1}% (paper: ~33%)\n\n{}\n\
         Electrical penalties of 0.5x width/spacing: resistance x{:.1}, crosstalk x{:.1}\n",
        ext.as_percent(),
        t.render(),
        scaling.resistance_factor(),
        scaling.crosstalk_factor()
    )
}

/// Section V-B: the measurement campaign — reverse engineer every chip's
/// generated region and compare measured dimensions with the dataset.
pub fn measurements() -> String {
    let mut t = Table::new(vec![
        "Chip",
        "topology identified",
        "devices",
        "worst dim. dev.",
    ]);
    // Each chip's pipeline run is independent; fan the batch out and fold
    // the reports into the table in chip order (par_map preserves it).
    let chip_set = chips();
    let reports = rayon::par_map(&chip_set, |chip| {
        Pipeline::new(PipelineConfig::for_chip(chip))
            .run()
            .expect("pipeline runs")
    });
    let mut total = 0usize;
    for (chip, report) in chip_set.iter().zip(reports) {
        total += report.measurement.total_measurements;
        t.row(vec![
            chip.name().to_string(),
            format!(
                "{} ({})",
                report
                    .identified
                    .map(|k| k.to_string())
                    .unwrap_or_else(|| "unmatched".into()),
                if report.topology_correct() {
                    "correct"
                } else {
                    "WRONG"
                }
            ),
            report.device_count.to_string(),
            format!(
                "{:.1}%",
                report
                    .worst_dimension_deviation
                    .map(|d| d.as_percent())
                    .unwrap_or(f64::NAN)
            ),
        ]);
    }
    format!(
        "Section V-B — automated measurement campaign over all six chips\n\n{}\n\
         pipeline measurements this run: {total}\n\
         dataset size measurements (paper): {}\n",
        t.render(),
        hifi_data::TOTAL_SIZE_MEASUREMENTS
    )
}

/// Section V-C: layout findings.
pub fn layout_findings() -> String {
    let cs = chips();
    let avg = |gen: DdrGeneration| {
        let v: Vec<f64> = cs
            .iter()
            .filter(|c| c.generation() == gen)
            .map(|c| c.geometry().mat_to_sa_transition.value())
            .collect();
        v.iter().sum::<f64>() / v.len() as f64
    };
    let split = |gen: DdrGeneration| {
        let v: Vec<f64> = cs
            .iter()
            .filter(|c| c.generation() == gen)
            .map(|c| {
                c.geometry()
                    .split_mat_overhead(c.isolation_dims_for_overheads().length)
                    .as_percent()
            })
            .collect();
        v.iter().sum::<f64>() / v.len() as f64
    };
    let mut common_gate = String::new();
    for class in [
        TransistorClass::Precharge,
        TransistorClass::Equalizer,
        TransistorClass::Isolation,
        TransistorClass::OffsetCancel,
    ] {
        common_gate.push_str(&format!(
            "  {class}: common gate spanning the region (insertion costs its LENGTH)\n"
        ));
    }
    format!(
        "Section V-C — layout findings\n\n\
         stacked SAs between MATs: 2 on every chip (SA1/SA2, Fig. 10)\n\
         column transistors are the FIRST elements after the MAT\n\
         MAT→SA transition: {:.0} nm avg DDR4 (paper: 318), {:.0} nm avg DDR5 (paper: 275)\n\
         split-MAT isolation overhead: {:.1}% of a MAT on DDR4 (paper: 1.6%), {:.1}% on DDR5 (paper: 1.1%)\n\
         common-gate elements:\n{common_gate}",
        avg(DdrGeneration::Ddr4),
        avg(DdrGeneration::Ddr5),
        split(DdrGeneration::Ddr4),
        split(DdrGeneration::Ddr5),
    )
}

/// Section VI-D: out-of-spec experiments, classic vs OCSA.
pub fn outofspec() -> String {
    let gaps = [1.0, 2.0, 4.0, 8.0, 12.0, 16.0, 20.0];
    let classic = row_copy_gap_sweep(SaTopologyKind::Classic, &gaps);
    let ocsa = row_copy_gap_sweep(SaTopologyKind::OffsetCancellation, &gaps);
    let mut t = Table::new(vec!["PRE→ACT gap (ns)", "classic copy", "OCSA copy"]);
    for (c, o) in classic.iter().zip(&ocsa) {
        t.row(vec![
            format!("{:.0}", c.gap.value()),
            if c.copied { "success" } else { "fail" }.into(),
            if o.copied { "success" } else { "fail" }.into(),
        ]);
    }
    let patterns: [&[u8]; 3] = [&[0b1100_1010], &[0b1010_0110], &[0b0110_1100]];
    let mut mt = Table::new(vec!["Topology", "MAJ3 result", "verdict"]);
    for kind in [SaTopologyKind::Classic, SaTopologyKind::OffsetCancellation] {
        let mut dev = DramDevice::new(DeviceConfig::ddr4(kind));
        let out = attempt_majority(&mut dev, 0, [1, 2, 3], patterns).expect("valid rows");
        mt.row(vec![
            kind.to_string(),
            format!("{:#04x} (expected {:#04x})", out.result[0], out.expected[0]),
            if out.correct_majority {
                "correct"
            } else {
                "CORRUPTED"
            }
            .into(),
        ]);
    }
    format!(
        "Section VI-D — out-of-spec in-DRAM row copy (ComputeDRAM-style)\n\n{}\n\
         On OCSA chips the offset-cancellation phase precedes charge sharing,\n\
         destroying the residual bitline charge: the trick never works.\n\n\
         AMBIT-style triple-row majority:\n\n{}",
        t.render(),
        mt.render()
    )
}

/// Monte-Carlo sensing yield vs threshold mismatch (the paper's motivation
/// for OCSA deployment, Section II-A).
pub fn yield_analysis() -> String {
    use hifi_analog::reliability::yield_curve;
    let sigmas = [20.0, 40.0, 60.0, 80.0];
    let base = ActivationConfig::default();
    let trials = 12;
    let classic = yield_curve(SaTopologyKind::Classic, &sigmas, trials, &base);
    let ocsa = yield_curve(SaTopologyKind::OffsetCancellation, &sigmas, trials, &base);
    let mut t = Table::new(vec!["mismatch σ (mV)", "classic yield", "OCSA yield"]);
    for (c, o) in classic.iter().zip(&ocsa) {
        t.row(vec![
            format!("{:.0}", c.sigma_mv),
            format!("{:.0}%", c.yield_fraction * 100.0),
            format!("{:.0}%", o.yield_fraction * 100.0),
        ]);
    }
    format!(
        "Sensing yield vs latch mismatch ({} Monte-Carlo trials per point)\n\n{}\n\
         Shrinking nodes push mismatch up and the classic SA off a cliff;\n\
         the OCSA cancels the offset — why A4, A5 and B5 deploy it.\n",
        trials,
        t.render()
    )
}

/// Recommendation R1 quantified: how much do optimistic assumptions (drawn
/// sizes, a single SA per gap) underestimate the transistor-level papers?
pub fn sensitivity() -> String {
    let mut t = Table::new(vec![
        "Paper",
        "full assumptions",
        "optimistic",
        "underestimated by",
    ]);
    for row in hifi_eval::sensitivity::sensitivity_report() {
        t.row(vec![
            row.paper.to_owned(),
            format!("{:.3}%", row.with_full_assumptions.as_percent()),
            format!("{:.3}%", row.with_optimistic_assumptions.as_percent()),
            format!("{:.2}x", row.underestimation()),
        ]);
    }
    format!(
        "Recommendation R1 — sensitivity of overheads to estimation assumptions\n\n{}\n\
         \"Optimistic\" = drawn transistor sizes (no spacing margins) and one SA\n\
         per MAT gap instead of the two the paper found. Area-doubling papers\n\
         (I1/I2) are unaffected: no sizing optimism rescues a missing bitline.\n",
        t.render()
    )
}

/// Scoring example modifications with the Section VI-C cost model.
pub fn modification_costs() -> String {
    use hifi_eval::modification::{cost_report, Modification};
    let mods: [(&str, Modification); 4] = [
        (
            "2 shared isolation elements (R.B.DEC.-style)",
            Modification::AddCommonGateElements {
                class: TransistorClass::Isolation,
                count: 2,
            },
        ),
        (
            "1 extra latch pair per SA",
            Modification::AddPerSaTransistors {
                class: TransistorClass::NSa,
                count: 2,
            },
        ),
        (
            "1 new bitline per 3 (REGA-style)",
            Modification::AddBitlines { per_existing: 3 },
        ),
        ("split every MAT (TL-DRAM-style)", Modification::SplitMat),
    ];
    let mut out = String::from("Modification cost model (Section V-C layout rules)\n\n");
    for (name, m) in mods {
        let costs = cost_report(m);
        out.push_str(&format!("{name}:\n"));
        for c in costs {
            out.push_str(&format!(
                "  {}: {:.3}% of the chip (SA height +{:.0} nm)\n",
                c.chip,
                c.chip_overhead.as_percent(),
                c.sa_height_increase.value()
            ));
        }
        out.push('\n');
    }
    out
}

/// End-to-end fidelity: full FIB/SEM + post-processing + extraction run.
pub fn pipeline_fidelity() -> String {
    let mut out = String::from("End-to-end pipeline fidelity (simulated FIB/SEM)\n\n");
    // The two topologies run independent pipelines; par_map keeps the
    // output lines in the classic-then-OCSA order the snapshot expects.
    let kinds = [SaTopologyKind::Classic, SaTopologyKind::OffsetCancellation];
    let lines = rayon::par_map(&kinds, |&kind| {
        let imaging = ImagingConfig {
            dwell_us: 6.0,
            drift_sigma_px: 0.6,
            brightness_wander: 1.0,
            slice_voxels: 2,
            ..ImagingConfig::default()
        };
        let report = Pipeline::new(PipelineConfig::with_imaging(kind, imaging))
            .run()
            .expect("pipeline runs");
        let total_correction: i32 = report
            .alignment_corrections
            .iter()
            .map(|(a, b)| a.abs() + b.abs())
            .sum();
        format!(
            "{kind}: identified={} devices={} worst-dim-dev={:.1}% drift-corrections={} px total\n",
            report
                .identified
                .map(|k| k.to_string())
                .unwrap_or_else(|| "unmatched".into()),
            report.device_count,
            report
                .worst_dimension_deviation
                .map(|d| d.as_percent())
                .unwrap_or(f64::NAN),
            total_correction,
        )
    });
    for line in lines {
        out.push_str(&line);
    }
    out
}

/// Structured JSON run reports: both topologies through the pristine and
/// the imaged pipeline with a [`hifi_telemetry::JsonRecorder`] attached.
/// Wall times vary run to run, so this artefact is *not* part of the
/// deterministic drift-check set.
pub fn telemetry_runs() -> String {
    let mut variants = Vec::new();
    for kind in [SaTopologyKind::Classic, SaTopologyKind::OffsetCancellation] {
        for imaged in [false, true] {
            variants.push((kind, imaged));
        }
    }
    // The four runs are independent; par_map returns the reports in the
    // same classic/OCSA × pristine/imaged order the JSON consumers expect.
    let reports = rayon::par_map(&variants, |&(kind, imaged)| {
        let cfg = if imaged {
            let imaging = ImagingConfig {
                dwell_us: 6.0,
                drift_sigma_px: 0.6,
                brightness_wander: 1.0,
                slice_voxels: 2,
                ..ImagingConfig::default()
            };
            PipelineConfig::with_imaging(kind, imaging)
        } else {
            PipelineConfig::pristine(kind)
        };
        Pipeline::new(cfg)
            .run_instrumented()
            .expect("pipeline runs")
            .telemetry
            .expect("instrumented run carries telemetry")
    });
    serde_json::to_string_pretty(&reports).expect("run reports serialize")
}

/// Section VI sensing sensitivity, recomputed by the MNA Monte-Carlo engine:
/// seeded classic-vs-OCSA yields as latch Vt mismatch grows. The per-sample
/// seeds make the table bit-identical at any thread count, which is what
/// lets the drift gate pin it.
pub fn mna_sensitivity() -> String {
    let samples = 12;
    let rows =
        hifi_eval::mc_sensitivity::mc_sensitivity_report(42, samples, &[20.0, 45.0, 70.0, 95.0]);
    let mut t = Table::new(vec![
        "mismatch σ (mV)",
        "classic yield",
        "OCSA yield",
        "OCSA advantage",
    ]);
    for row in &rows {
        t.row(vec![
            format!("{:.0}", row.sigma_mv),
            format!("{:.0}%", row.classic.yield_fraction * 100.0),
            format!("{:.0}%", row.ocsa.yield_fraction * 100.0),
            format!("{:+.0} pp", row.ocsa_advantage_pct()),
        ]);
    }
    let worst_newton = rows
        .iter()
        .flat_map(|r| [&r.classic, &r.ocsa])
        .map(|rep| rep.solve.max_newton_iterations)
        .max()
        .unwrap_or(0);
    format!(
        "MNA Monte-Carlo sensing sensitivity (seed 42, {samples} samples per cell)\n\n{}\n\
         Same per-sample Vt draws on both topologies; the offset cancellation\n\
         is the only variable. Worst Newton iteration count across every\n\
         transient: {worst_newton} (cap 100) — the solver stays comfortably\n\
         convergent over the whole mismatch range.\n",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_lists_all_chips() {
        let s = table1();
        for id in ["A4", "B4", "C4", "A5", "B5", "C5"] {
            assert!(s.contains(id), "{id} missing:\n{s}");
        }
        assert!(s.contains("offset-cancellation"));
    }

    #[test]
    fn table2_lists_all_papers_and_headline() {
        let s = table2();
        assert!(s.contains("CoolDRAM"));
        assert!(s.contains("N/A"), "DDR3 papers report N/A error");
        assert!(s.contains("AMBIT"));
    }

    #[test]
    fn fig12_places_maxima_on_c4_precharge() {
        let s = fig12();
        assert!(
            s.contains("C4 PRE"),
            "max inaccuracies at C4's precharge:\n{s}"
        );
    }

    #[test]
    fn fig13_denies_free_space_everywhere() {
        let s = fig13();
        assert!(!s.contains("yes"));
        assert_eq!(s.matches("no (I1/I2)").count(), 6);
    }

    #[test]
    fn outofspec_shows_divergence() {
        let s = outofspec();
        assert!(s.contains("success"), "classic copies at short gaps");
        // The OCSA column is all "fail": ensure at least as many fails as gaps.
        assert!(s.matches("fail").count() >= 7);
    }

    #[test]
    fn appendix_a_reports_one_third() {
        let s = appendix_a();
        assert!(s.contains("33.3%"));
    }

    #[test]
    fn telemetry_runs_emits_valid_json_with_fidelity() {
        let s = telemetry_runs();
        let reports: Vec<hifi_telemetry::RunReport> =
            serde_json::from_str(&s).expect("valid JSON run reports");
        assert_eq!(reports.len(), 4, "2 topologies × (pristine, imaged)");
        for r in &reports {
            assert!(
                !r.stages.is_empty(),
                "{}: no stage timings",
                r.config.topology
            );
        }
        let imaged: Vec<_> = reports.iter().filter(|r| r.config.imaging).collect();
        assert_eq!(imaged.len(), 2);
        for r in imaged {
            assert!(
                r.fidelity.recorded_count() >= 3,
                "{}: fewer than 3 fidelity metrics: {:?}",
                r.config.topology,
                r.fidelity
            );
            assert!(r.stage_us("align").is_some());
            assert!(r.counter("extract.devices") > 0);
        }
    }
}
