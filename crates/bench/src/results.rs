//! Machine-readable benchmark results for the CI regression gate.
//!
//! Overhead benches (`telemetry_overhead`, `fault_overhead`) record their
//! headline numbers into `BENCH_results.json` at the workspace root; the
//! committed `BENCH_baseline.json` pins the expected values and
//! `scripts/bench_gate.sh` (via the `bench_gate` binary) fails CI when a
//! metric regresses past the tolerance.
//!
//! Three kinds of metric are recorded:
//!
//! - `"ms"` — a wall-clock median, lower is better. Load-sensitive, so the
//!   gate compares it relatively (>15% over baseline fails by default).
//! - `"percent"` — a paired-ratio overhead, lower is better. Load drift
//!   cancels in the pairs, so these are stable, but their baselines sit
//!   near zero (and may be legitimately negative) where a purely relative
//!   comparison is meaningless — the gate anchors the allowance at the
//!   *signed* baseline and grants one absolute percentage point on top.
//! - `"per_sec"` — a throughput rate, **higher** is better. The gate fails
//!   when the measured rate drops more than the tolerance below baseline.

use std::fmt;
use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};

/// One benchmark headline number.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Metric {
    /// Stable identifier, `"<bench>.<quantity>"` (e.g.
    /// `"fault_overhead.zero_fault_plan_pct"`).
    pub name: String,
    /// The measured value; lower is better for `"ms"` and `"percent"`
    /// metrics, higher is better for `"per_sec"` rates.
    pub value: f64,
    /// `"ms"`, `"percent"` or `"per_sec"` — selects the gate's comparison
    /// rule (and its direction).
    pub unit: String,
}

/// The results document (`BENCH_results.json` / `BENCH_baseline.json`).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct BenchResults {
    /// Recorded metrics, sorted by name.
    pub metrics: Vec<Metric>,
}

impl BenchResults {
    /// Loads a results document, or an empty one if `path` doesn't exist.
    ///
    /// # Errors
    ///
    /// An existing file that fails to read or parse is an error — a
    /// corrupt baseline must fail the gate, not pass it vacuously.
    pub fn load_or_default(path: &Path) -> Result<Self, String> {
        if !path.exists() {
            return Ok(Self::default());
        }
        Self::load(path)
    }

    /// Loads a results document from `path`.
    ///
    /// # Errors
    ///
    /// I/O or parse failures, rendered with the offending path.
    pub fn load(path: &Path) -> Result<Self, String> {
        let raw =
            std::fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
        serde_json::from_str(&raw).map_err(|e| format!("parse {}: {e}", path.display()))
    }

    /// Inserts or replaces the metric named `name`, keeping name order.
    pub fn record(&mut self, name: &str, value: f64, unit: &str) {
        self.metrics.retain(|m| m.name != name);
        self.metrics.push(Metric {
            name: name.to_string(),
            value,
            unit: unit.to_string(),
        });
        self.metrics.sort_by(|a, b| a.name.cmp(&b.name));
    }

    /// Looks a metric up by name.
    pub fn get(&self, name: &str) -> Option<&Metric> {
        self.metrics.iter().find(|m| m.name == name)
    }

    /// Writes the document as pretty-printed JSON.
    ///
    /// # Errors
    ///
    /// I/O failures, rendered with the offending path.
    pub fn write(&self, path: &Path) -> Result<(), String> {
        let json = serde_json::to_string_pretty(self).map_err(|e| e.to_string())?;
        std::fs::write(path, json + "\n").map_err(|e| format!("write {}: {e}", path.display()))
    }

    /// Merges `self`'s metrics into the document at `path` (other benches'
    /// metrics are preserved) and writes it back.
    ///
    /// # Errors
    ///
    /// Same as [`Self::load`] / [`Self::write`].
    pub fn merge_into(&self, path: &Path) -> Result<(), String> {
        let mut existing = Self::load_or_default(path)?;
        for m in &self.metrics {
            existing.record(&m.name, m.value, &m.unit);
        }
        existing.write(path)
    }
}

/// Where benches record their results: `$BENCH_RESULTS` when set, else
/// `BENCH_results.json` at the workspace root.
pub fn results_path() -> PathBuf {
    if let Some(p) = std::env::var_os("BENCH_RESULTS").filter(|v| !v.is_empty()) {
        return PathBuf::from(p);
    }
    workspace_root().join("BENCH_results.json")
}

/// The committed baseline the gate compares against:
/// `$BENCH_BASELINE` when set, else `BENCH_baseline.json` at the
/// workspace root.
pub fn baseline_path() -> PathBuf {
    if let Some(p) = std::env::var_os("BENCH_BASELINE").filter(|v| !v.is_empty()) {
        return PathBuf::from(p);
    }
    workspace_root().join("BENCH_baseline.json")
}

fn workspace_root() -> PathBuf {
    // crates/bench/ → workspace root, robust to where cargo runs us from.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/bench has a workspace root")
        .to_path_buf()
}

/// Verdict of gating one metric against its baseline.
#[derive(Debug, Clone, PartialEq)]
pub enum Verdict {
    /// Within tolerance (includes improvements).
    Ok,
    /// Regressed past the allowance (lower-is-better metrics).
    Regressed {
        /// The highest acceptable value.
        allowed: f64,
    },
    /// Fell below the requirement (higher-is-better `"per_sec"` rates).
    TooSlow {
        /// The lowest acceptable value.
        required: f64,
    },
    /// Present in the baseline but missing from the results.
    Missing,
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Verdict::Ok => write!(f, "ok"),
            Verdict::Regressed { allowed } => write!(f, "REGRESSED (allowed ≤ {allowed:.3})"),
            Verdict::TooSlow { required } => write!(f, "REGRESSED (required ≥ {required:.3})"),
            Verdict::Missing => write!(f, "MISSING from results"),
        }
    }
}

/// Gates one measured value against its baseline metric.
///
/// `"ms"` metrics fail when more than `tolerance_pct` over baseline.
/// `"percent"` metrics (paired-ratio overheads with near-zero baselines)
/// get an allowance anchored at the **signed** baseline — the relative
/// tolerance scales `|baseline|`, so a negative baseline tightens the gate
/// symmetrically instead of being clamped to zero — *plus* one absolute
/// percentage point, so a baseline of 0.2% doesn't turn measurement noise
/// into a gate failure. `"per_sec"` rates are higher-is-better: they fail
/// when more than `tolerance_pct` *below* baseline.
pub fn gate_metric(baseline: &Metric, measured: Option<f64>, tolerance_pct: f64) -> Verdict {
    let Some(value) = measured else {
        return Verdict::Missing;
    };
    let tol = tolerance_pct / 100.0;
    match baseline.unit.as_str() {
        "per_sec" => {
            let required = baseline.value * (1.0 - tol);
            if value < required {
                Verdict::TooSlow { required }
            } else {
                Verdict::Ok
            }
        }
        "percent" => {
            let allowed = baseline.value + baseline.value.abs() * tol + 1.0;
            if value > allowed {
                Verdict::Regressed { allowed }
            } else {
                Verdict::Ok
            }
        }
        _ => {
            let allowed = baseline.value.max(0.0) * (1.0 + tol);
            if value > allowed {
                Verdict::Regressed { allowed }
            } else {
                Verdict::Ok
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metric(name: &str, value: f64, unit: &str) -> Metric {
        Metric {
            name: name.to_string(),
            value,
            unit: unit.to_string(),
        }
    }

    #[test]
    fn record_upserts_and_sorts() {
        let mut r = BenchResults::default();
        r.record("b.time_ms", 20.0, "ms");
        r.record("a.pct", 1.0, "percent");
        r.record("b.time_ms", 25.0, "ms");
        assert_eq!(r.metrics.len(), 2);
        assert_eq!(r.metrics[0].name, "a.pct");
        assert_eq!(r.get("b.time_ms").unwrap().value, 25.0);
    }

    #[test]
    fn round_trips_and_merges_through_a_file() {
        let path = std::env::temp_dir().join(format!("hifi-bench-res-{}.json", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let mut first = BenchResults::default();
        first.record("one.ms", 10.0, "ms");
        first.merge_into(&path).unwrap();
        let mut second = BenchResults::default();
        second.record("two.pct", 0.5, "percent");
        second.merge_into(&path).unwrap();
        let loaded = BenchResults::load(&path).unwrap();
        assert_eq!(loaded.metrics.len(), 2, "merge preserves other benches");
        assert_eq!(loaded.get("one.ms").unwrap().value, 10.0);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn corrupt_baseline_is_an_error_not_a_pass() {
        let path = std::env::temp_dir().join(format!("hifi-bench-bad-{}.json", std::process::id()));
        std::fs::write(&path, "not json").unwrap();
        assert!(BenchResults::load_or_default(&path).is_err());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn gate_rules_per_unit() {
        let ms = metric("t.ms", 100.0, "ms");
        assert_eq!(gate_metric(&ms, Some(114.0), 15.0), Verdict::Ok);
        assert!(matches!(
            gate_metric(&ms, Some(116.0), 15.0),
            Verdict::Regressed { .. }
        ));
        assert_eq!(gate_metric(&ms, None, 15.0), Verdict::Missing);
        // Improvements always pass.
        assert_eq!(gate_metric(&ms, Some(50.0), 15.0), Verdict::Ok);

        // Percent metrics get +1 absolute point on top of the relative
        // allowance: baseline 0.2% tolerates up to 1.23%.
        let pct = metric("o.pct", 0.2, "percent");
        assert_eq!(gate_metric(&pct, Some(1.2), 15.0), Verdict::Ok);
        assert!(matches!(
            gate_metric(&pct, Some(1.3), 15.0),
            Verdict::Regressed { .. }
        ));
        // Negative overhead baselines anchor the allowance below zero:
        // -0.4% tolerates up to -0.4 + 0.06 + 1.0 = 0.66 — a swing to
        // +0.9 is a regression the old zero-clamped rule waved through.
        let neg = metric("n.pct", -0.4, "percent");
        assert_eq!(gate_metric(&neg, Some(0.6), 15.0), Verdict::Ok);
        assert!(matches!(
            gate_metric(&neg, Some(0.9), 15.0),
            Verdict::Regressed { .. }
        ));
    }

    /// The percent allowance must be symmetric and direction-correct
    /// around the signed baseline, not clamped at zero.
    #[test]
    fn percent_gate_is_anchored_at_the_signed_baseline() {
        // Strongly negative baseline: allowed = -8 + 1.2 + 1 = -5.8; a
        // sign-crossing drift to +0.5 — far under the old flat 1.0
        // allowance — must fail.
        let neg = metric("n.pct", -8.0, "percent");
        assert_eq!(gate_metric(&neg, Some(-6.0), 15.0), Verdict::Ok);
        assert_eq!(
            gate_metric(&neg, Some(0.5), 15.0),
            Verdict::Regressed { allowed: -5.8 }
        );
        // Near-zero baseline keeps the one-point noise floor exactly.
        let zero = metric("z.pct", 0.0, "percent");
        assert_eq!(gate_metric(&zero, Some(0.99), 15.0), Verdict::Ok);
        assert_eq!(
            gate_metric(&zero, Some(1.01), 15.0),
            Verdict::Regressed { allowed: 1.0 }
        );
        // Positive and negative baselines of equal magnitude get
        // allowances mirrored around their baselines (same headroom).
        let pos = metric("p.pct", 2.0, "percent");
        let Verdict::Regressed {
            allowed: pos_allowed,
        } = gate_metric(&pos, Some(1e9), 15.0)
        else {
            panic!("expected regression");
        };
        let mirror = metric("m.pct", -2.0, "percent");
        let Verdict::Regressed {
            allowed: neg_allowed,
        } = gate_metric(&mirror, Some(1e9), 15.0)
        else {
            panic!("expected regression");
        };
        assert!((pos_allowed - 2.0 - (neg_allowed + 2.0)).abs() < 1e-12);
    }

    /// `per_sec` rates gate in the opposite direction: faster always
    /// passes, slower than tolerance fails.
    #[test]
    fn rate_gate_is_higher_is_better() {
        let rate = metric("s.vps", 1000.0, "per_sec");
        assert_eq!(gate_metric(&rate, Some(2000.0), 15.0), Verdict::Ok);
        assert_eq!(gate_metric(&rate, Some(860.0), 15.0), Verdict::Ok);
        assert_eq!(
            gate_metric(&rate, Some(840.0), 15.0),
            Verdict::TooSlow { required: 850.0 }
        );
        assert_eq!(gate_metric(&rate, None, 15.0), Verdict::Missing);
        assert!(format!("{}", Verdict::TooSlow { required: 850.0 }).contains("REGRESSED"));
    }
}
