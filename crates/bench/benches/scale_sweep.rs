//! Full-die scale sweep: throughput and memory of the streaming-tiled path.
//!
//! The paper's die-scale ambition (Section VII extrapolates from one SA
//! region to full-die imaging) needs the pipeline to process volumes far
//! larger than RAM. This bench streams synthetic dies of 1×, 16× and 256×
//! the base MAT+SA region through the tiled acquire → denoise →
//! reconstruct path:
//!
//! - the die is **never materialized** — `periodic_slab_x` synthesizes one
//!   x-slab at a time from the base region's periodic repetition,
//! - the [`AcquirePlan`] walks the whole die's artefact schedule up front
//!   (O(slices) memory) so every slab renders bit-identically to a
//!   monolithic acquisition,
//! - each slab's slices are rendered in parallel, TV-denoised, folded into
//!   a slab reconstruction and dropped before the next slab begins.
//!
//! Peak working memory is therefore O(tile), not O(die) — asserted via the
//! counting allocator when the `alloc-track` feature is enabled. Headline
//! numbers (`scale_sweep.voxels_per_sec`, `scale_sweep.slices_per_sec_256x`)
//! land in `BENCH_results.json` as higher-is-better `per_sec` metrics for
//! the CI gate.
//!
//! `SCALE_SWEEP_MAX=<n>` caps the largest scale (CI smoke runs 16×).

use std::hint::black_box;
use std::time::Instant;

use hifi_circuit::topology::SaTopologyKind;
use hifi_imaging::{chambolle_tv, reconstruct, AcquirePlan, ImageStack, ImagingConfig, SemImage};
use hifi_synth::{generate_region, MaterialVolume, SaRegionSpec};

/// TV strength/iterations for the sweep: light denoising keeps the bench
/// dominated by the streaming path rather than the TV solver.
const LAMBDA: f32 = 4.0;
const TV_ITERS: usize = 5;

struct SweepStats {
    scale: usize,
    voxels: usize,
    slices: usize,
    secs: f64,
    peak_bytes: Option<usize>,
}

/// Streams a `scale`× periodic die through acquire→denoise→reconstruct,
/// one `tile_x`-column slab at a time.
fn sweep(base: &MaterialVolume, cfg: &ImagingConfig, scale: usize, tile_x: usize) -> SweepStats {
    let (bnx, ny, nz) = base.dims();
    let die_nx = bnx * scale;
    hifi_telemetry::alloc::reset_peak();
    let t0 = Instant::now();
    // The schedule walk covers the whole die but holds O(slices) state.
    let plan = AcquirePlan::for_dims(die_nx, ny, nz, cfg);
    let mut slices_done = 0usize;
    let mut x0 = 0usize;
    while x0 < die_nx {
        let x1 = (x0 + tile_x).min(die_nx);
        let slab = base.periodic_slab_x(x0, x1);
        let indices: Vec<usize> = plan.slices_in_slab(x0, x1).collect();
        if !indices.is_empty() {
            let denoised: Vec<SemImage> = rayon::par_map(&indices, |&i| {
                let raw = plan.render(&slab, x0, i, cfg);
                chambolle_tv(&raw, LAMBDA, TV_ITERS)
            });
            slices_done += denoised.len();
            let stack =
                ImageStack::from_slices(denoised, base.voxel_nm(), cfg.slice_voxels, cfg.detector)
                    .with_frame_margin(cfg.frame_margin_px);
            // The slab reconstruction is consumed (here: summarized) and
            // dropped before the next slab streams in.
            black_box(reconstruct(&stack).len());
        }
        x0 = x1;
    }
    SweepStats {
        scale,
        voxels: die_nx * ny * nz,
        slices: slices_done,
        secs: t0.elapsed().as_secs_f64(),
        peak_bytes: hifi_telemetry::alloc::peak_bytes().map(|b| b as usize),
    }
}

fn main() {
    let max_scale = std::env::var("SCALE_SWEEP_MAX")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(256);

    let base = generate_region(
        &SaRegionSpec::new(SaTopologyKind::Classic)
            .with_pairs(1)
            .with_mat_strip(true),
    )
    .voxelize();
    let (bnx, ny, nz) = base.dims();
    // Thick slices bound the slice count at die scale; the per-slice work
    // is unchanged, so throughput numbers stay representative.
    let cfg = ImagingConfig {
        slice_voxels: 8,
        ..ImagingConfig::default()
    };
    let tile_x = bnx; // one base period per slab
    println!("scale_sweep: base {bnx}x{ny}x{nz} voxels, tile_x {tile_x}, max scale {max_scale}x");

    let mut last: Option<SweepStats> = None;
    for scale in [1usize, 16, 256] {
        if scale > max_scale {
            println!("  {scale:>4}x skipped (SCALE_SWEEP_MAX={max_scale})");
            continue;
        }
        let stats = sweep(&base, &cfg, scale, tile_x);
        let vps = stats.voxels as f64 / stats.secs;
        let sps = stats.slices as f64 / stats.secs;
        let peak = stats.peak_bytes.map_or("untracked".to_string(), |b| {
            format!("{:.1} MiB", b as f64 / (1024.0 * 1024.0))
        });
        println!(
            "  {:>4}x: {:>12} voxels, {:>6} slices in {:>8.2}s — {:>12.0} vox/s, {:>7.1} slices/s, peak {}",
            stats.scale, stats.voxels, stats.slices, stats.secs, vps, sps, peak
        );
        // O(tile) memory: the peak must stay far below the die's own voxel
        // payload once the die is much larger than one tile. The bound is
        // generous (slab + parallel slice buffers + slab reconstruction),
        // but an O(die) materialization at 256× would blow through it.
        if let (Some(peak), true) = (stats.peak_bytes, stats.scale >= 16) {
            let die_bytes = stats.voxels;
            assert!(
                peak < die_bytes / 4,
                "peak allocation {peak} B is not O(tile): die is {die_bytes} B at {}x",
                stats.scale
            );
        }
        last = Some(stats);
    }

    let last = last.expect("at least the 1x sweep runs");
    let mut results = hifi_bench::results::BenchResults::default();
    results.record(
        "scale_sweep.voxels_per_sec",
        last.voxels as f64 / last.secs,
        "per_sec",
    );
    results.record(
        &format!("scale_sweep.slices_per_sec_{}x", last.scale),
        last.slices as f64 / last.secs,
        "per_sec",
    );
    let path = hifi_bench::results::results_path();
    results.merge_into(&path).expect("record bench results");
    println!("recorded → {}", path.display());
}
