//! MNA Monte-Carlo throughput: how many mismatch samples per second the
//! transient engine sustains.
//!
//! One sample is two full activations (stored 0 and stored 1) of the
//! classic schedule — ~29 ns of simulated time each at the 5 ps
//! backward-Euler step. The headline rate lands in `BENCH_results.json` as
//! the higher-is-better `analog.mna.samples_per_sec` metric so the gate
//! catches solver slowdowns, not just wrong waveforms.

use std::time::Instant;

use hifi_analog::montecarlo::{run_sweep, McConfig};
use hifi_circuit::topology::SaTopologyKind;

fn main() {
    let samples: usize = std::env::var("MNA_BENCH_SAMPLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(24);

    // Warm up allocator and caches with a small sweep before timing.
    run_sweep(&McConfig::new(SaTopologyKind::Classic, 45.0, 2));

    let start = Instant::now();
    let report = run_sweep(&McConfig::new(SaTopologyKind::Classic, 45.0, samples));
    let secs = start.elapsed().as_secs_f64();
    let rate = samples as f64 / secs;
    println!(
        "mna_montecarlo: {samples} samples in {secs:.2}s — {rate:.1} samples/s \
         (yield {:.0}%, worst Newton {} iters)",
        report.yield_fraction * 100.0,
        report.solve.max_newton_iterations
    );

    let mut results = hifi_bench::results::BenchResults::default();
    results.record("analog.mna.samples_per_sec", rate, "per_sec");
    let path = hifi_bench::results::results_path();
    results.merge_into(&path).expect("record bench results");
    println!("recorded → {}", path.display());
}
