//! Cost of the fault-injection layer when it injects nothing.
//!
//! Threading a zero-fault [`hifi_faults::FaultPlan`] through the pipeline
//! (plan allocation, per-site decision checks in the slice loop and store
//! paths, the retry wrappers, tally flushing) must cost ≤2% over running
//! with no plan at all — otherwise fault injection couldn't stay on in
//! regular test runs.
//!
//! Two variants of the pristine pipeline are timed:
//!
//! 1. `no_plan` — `faults: None`; the fault machinery is skipped entirely
//!    (the zero-cost default every user gets),
//! 2. `zero_fault_plan` — `faults: Some(FaultSpec::disabled())`; a real
//!    `FaultPlan` is built and consulted at every injection site, but all
//!    rates are zero so nothing ever fires. A disabled spec also shares
//!    the clean cache keys, so the comparison isolates pure plumbing cost.
//!
//! After the Criterion group, the harness measures both paths head-to-head
//! with the same paired-ratio methodology as `telemetry_overhead` and
//! asserts the ≤2% budget. The headline numbers land in
//! `BENCH_results.json` for the CI regression gate.

use std::time::Instant;

use criterion::{black_box, criterion_group, Criterion};
use hifi_circuit::topology::SaTopologyKind;
use hifi_dram::pipeline::{Pipeline, PipelineConfig};
use hifi_faults::FaultSpec;

fn no_plan() -> PipelineConfig {
    PipelineConfig::pristine(SaTopologyKind::Classic)
}

fn zero_fault_plan() -> PipelineConfig {
    no_plan().with_faults(FaultSpec::disabled())
}

fn bench_variants(c: &mut Criterion) {
    let mut g = c.benchmark_group("fault_overhead");
    g.sample_size(10);
    let without = Pipeline::new(no_plan());
    let with = Pipeline::new(zero_fault_plan());
    g.bench_function("no_plan", |b| b.iter(|| without.run().expect("pipeline")));
    g.bench_function("zero_fault_plan", |b| {
        b.iter(|| with.run().expect("pipeline"))
    });
    g.finish();
}

fn time_secs<T>(f: &mut impl FnMut() -> T) -> f64 {
    let start = Instant::now();
    black_box(f());
    start.elapsed().as_secs_f64()
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
    xs[xs.len() / 2]
}

fn main() {
    benches();

    // Head-to-head: adjacent pairs, alternating order, median of the
    // per-pair ratios — load drift hits both members of a pair and
    // cancels; a genuine regression shifts every ratio and moves the
    // median where noise cannot (same methodology as telemetry_overhead).
    const PAIRS: usize = 60;
    const BUDGET_PCT: f64 = 2.0;
    let without = Pipeline::new(no_plan());
    let with = Pipeline::new(zero_fault_plan());
    let mut run_base = || without.run().expect("pipeline");
    let mut run_plan = || with.run().expect("pipeline");
    black_box(run_base());
    black_box(run_plan());
    let mut ratios = Vec::with_capacity(PAIRS);
    let mut base_times = Vec::with_capacity(PAIRS);
    for i in 0..PAIRS {
        let (base, plan) = if i % 2 == 0 {
            let base = time_secs(&mut run_base);
            let plan = time_secs(&mut run_plan);
            (base, plan)
        } else {
            let plan = time_secs(&mut run_plan);
            let base = time_secs(&mut run_base);
            (base, plan)
        };
        ratios.push(plan / base);
        base_times.push(base);
    }
    let overhead = (median(ratios) - 1.0) * 100.0;
    let base_ms = median(base_times) * 1e3;
    println!(
        "zero-fault-plan overhead (median of {PAIRS} paired ratios): {overhead:+.2}%  \
         (median no-plan {base_ms:.1} ms)"
    );

    let mut results = hifi_bench::results::BenchResults::default();
    results.record("fault_overhead.zero_fault_plan_pct", overhead, "percent");
    results.record("fault_overhead.no_plan_median_ms", base_ms, "ms");
    let path = hifi_bench::results::results_path();
    results.merge_into(&path).expect("record bench results");
    println!("recorded → {}", path.display());

    assert!(
        overhead < BUDGET_PCT,
        "zero-fault plan overhead {overhead:.2}% exceeds the {BUDGET_PCT}% budget"
    );
}

criterion_group!(benches, bench_variants);
