//! Performance of every pipeline stage: generate → voxelise → image →
//! denoise → align → reconstruct → extract → identify (PIPE experiment).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use hifi_circuit::identify::TopologyLibrary;
use hifi_circuit::topology::SaTopologyKind;
use hifi_imaging::{acquire, align, chambolle_tv, reconstruct, AlignMethod, ImagingConfig};
use hifi_synth::{generate_region, SaRegionSpec};

fn spec() -> SaRegionSpec {
    SaRegionSpec::new(SaTopologyKind::OffsetCancellation)
        .with_pairs(1)
        .with_voxel_nm(10.0)
}

fn bench_stages(c: &mut Criterion) {
    let mut g = c.benchmark_group("pipeline");
    g.sample_size(10);

    g.bench_function("generate_region", |b| {
        b.iter(|| generate_region(&spec()));
    });

    let region = generate_region(&spec());
    g.bench_function("voxelize", |b| b.iter(|| region.voxelize()));

    let volume = region.voxelize();
    let cfg = ImagingConfig {
        slice_voxels: 2,
        ..ImagingConfig::default()
    };
    g.bench_function("sem_acquire", |b| b.iter(|| acquire(&volume, &cfg)));

    let (stack, _) = acquire(&volume, &cfg);
    g.bench_function("chambolle_denoise_slice", |b| {
        b.iter(|| chambolle_tv(stack.slice(0), 8.0, 20));
    });

    g.bench_function("mi_align_stack", |b| {
        b.iter_batched(
            || stack.clone(),
            |mut s| align(&mut s, AlignMethod::MutualInformation, 3),
            BatchSize::LargeInput,
        );
    });

    g.bench_function("reconstruct", |b| b.iter(|| reconstruct(&stack)));

    g.bench_function("extract_netlist", |b| {
        b.iter(|| hifi_extract::extract(&volume).expect("extraction"));
    });

    let extraction = hifi_extract::extract(&volume).expect("extraction");
    let library = TopologyLibrary::standard();
    g.bench_function("identify_topology", |b| {
        b.iter(|| library.identify(&extraction.netlist));
    });

    g.finish();
}

criterion_group!(benches, bench_stages);
criterion_main!(benches);
