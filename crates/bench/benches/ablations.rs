//! Ablation benches for the design choices DESIGN.md calls out: detector
//! choice, dwell time (noise), denoising strength and alignment method —
//! mirroring the imaging-parameter trade-offs of Section IV.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use hifi_circuit::topology::SaTopologyKind;
use hifi_imaging::{acquire, align, chambolle_tv, AlignMethod, DetectorKind, ImagingConfig};
use hifi_synth::{generate_region, SaRegionSpec};

fn bench_ablations(c: &mut Criterion) {
    let spec = SaRegionSpec::new(SaTopologyKind::Classic)
        .with_pairs(1)
        .with_voxel_nm(10.0);
    let volume = generate_region(&spec).voxelize();

    let mut g = c.benchmark_group("ablations");
    g.sample_size(10);

    // Dwell time: longer dwell = less noise but linearly more beam time —
    // the imaging-cost trade-off of Section IV.
    for dwell in [3.0, 6.0, 12.0] {
        g.bench_with_input(
            BenchmarkId::new("acquire_dwell_us", dwell as u32),
            &dwell,
            |b, &d| {
                let cfg = ImagingConfig {
                    dwell_us: d,
                    slice_voxels: 2,
                    ..ImagingConfig::default()
                };
                b.iter(|| acquire(&volume, &cfg));
            },
        );
    }

    // Detector choice: SE vs BSE contrast rendering.
    for (name, det) in [("se", DetectorKind::Se), ("bse", DetectorKind::Bse)] {
        g.bench_with_input(BenchmarkId::new("acquire_detector", name), &det, |b, &d| {
            let cfg = ImagingConfig {
                detector: d,
                slice_voxels: 2,
                ..ImagingConfig::default()
            };
            b.iter(|| acquire(&volume, &cfg));
        });
    }

    let cfg = ImagingConfig {
        slice_voxels: 2,
        ..ImagingConfig::default()
    };
    let (stack, _) = acquire(&volume, &cfg);

    // Denoise iteration count.
    for iters in [5usize, 20, 40] {
        g.bench_with_input(
            BenchmarkId::new("chambolle_iters", iters),
            &iters,
            |b, &n| {
                b.iter(|| chambolle_tv(stack.slice(0), 8.0, n));
            },
        );
    }

    // Alignment metric: MI (paper's choice) vs SSD.
    for (name, method) in [
        ("mutual_information", AlignMethod::MutualInformation),
        ("squared_difference", AlignMethod::SquaredDifference),
    ] {
        g.bench_with_input(BenchmarkId::new("align_method", name), &method, |b, &m| {
            b.iter_batched(
                || stack.clone(),
                |mut s| align(&mut s, m, 3),
                BatchSize::LargeInput,
            );
        });
    }

    g.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
