//! Thread-scaling of the imaged pipeline (PAR experiment).
//!
//! The imaged OCSA pipeline is the heaviest configuration in the
//! workspace: per-slice rendering in `acquire`, the MI offset search in
//! alignment and per-slice TV denoising all fan out through the
//! deterministic `rayon` stand-in. This harness times the end-to-end
//! pipeline with the thread count pinned to 1 and to
//! `available_parallelism()` (capped at 4, the acceptance point), prints
//! the per-stage and end-to-end speedups, and records them as
//! `parallel.speedup.<stage>` gauges so the telemetry layer carries the
//! scaling evidence alongside the fidelity metrics.
//!
//! Determinism is checked elsewhere (`tests/parallel_determinism.rs` and
//! `scripts/check.sh` diff snapshots across thread counts); this harness
//! only asserts *speed*: ≥1.5x end to end at 4 threads, skipped with a
//! note when the host has fewer than 4 cores (the ratio would measure
//! oversubscription, not scaling).

use std::thread::available_parallelism;
use std::time::Instant;

use criterion::{black_box, criterion_group, Criterion};
use hifi_circuit::topology::SaTopologyKind;
use hifi_dram::pipeline::{Pipeline, PipelineConfig};
use hifi_imaging::ImagingConfig;
use hifi_telemetry::{names, JsonRecorder, Recorder, RunReport};

/// The imaged OCSA configuration the fidelity snapshot uses.
fn config() -> PipelineConfig {
    let imaging = ImagingConfig {
        dwell_us: 6.0,
        drift_sigma_px: 0.6,
        brightness_wander: 1.0,
        slice_voxels: 2,
        ..ImagingConfig::default()
    };
    PipelineConfig::with_imaging(SaTopologyKind::OffsetCancellation, imaging)
}

fn bench_thread_counts(c: &mut Criterion) {
    let mut g = c.benchmark_group("pipeline_scaling");
    g.sample_size(10);
    let pipeline = Pipeline::new(config());
    let avail = available_parallelism().map(|n| n.get()).unwrap_or(1);
    g.bench_function("threads_1", |b| {
        b.iter(|| rayon::with_num_threads(1, || pipeline.run().expect("pipeline")))
    });
    if avail > 1 {
        g.bench_function(format!("threads_{avail}"), |b| {
            b.iter(|| rayon::with_num_threads(avail, || pipeline.run().expect("pipeline")))
        });
    }
    g.finish();
}

fn main() {
    benches();

    let pipeline = Pipeline::new(config());
    let avail = available_parallelism().map(|n| n.get()).unwrap_or(1);
    let threads = avail.min(4);

    // Instrumented run at a pinned thread count: wall time plus the
    // per-stage RunReport the speedup gauges are derived from.
    let timed_report = |n: usize| -> (f64, RunReport) {
        let start = Instant::now();
        let report = rayon::with_num_threads(n, || pipeline.run_instrumented().expect("pipeline"));
        let elapsed = start.elapsed().as_secs_f64();
        (
            elapsed,
            report
                .telemetry
                .expect("instrumented run carries telemetry"),
        )
    };
    // Warm-up so first-touch costs hit neither measured run.
    black_box(pipeline.run().expect("pipeline"));
    let (base_s, base_report) = timed_report(1);
    let (par_s, par_report) = timed_report(threads);
    let speedup = base_s / par_s;

    assert_eq!(base_report.threads, Some(1.0));
    assert_eq!(par_report.threads, Some(threads as f64));

    // Fold the scaling evidence into a telemetry report of its own.
    let mut rec = JsonRecorder::new();
    rec.gauge(names::PARALLEL_THREADS, threads as f64);
    println!("per-stage speedup at {threads} thread(s) vs 1:");
    for s in par_report.stage_speedups(&base_report) {
        rec.gauge(
            &format!("{}{}", names::PARALLEL_SPEEDUP_PREFIX, s.name),
            s.speedup,
        );
        println!("  {:<12} {:5.2}x", s.name, s.speedup);
    }
    println!(
        "end-to-end: {speedup:.2}x at {threads} thread(s) \
         (1-thread {:.1} ms, {threads}-thread {:.1} ms, {} speedup gauges recorded)",
        base_s * 1e3,
        par_s * 1e3,
        rec.events().len() - 1,
    );

    if avail >= 4 {
        assert!(
            speedup >= 1.5,
            "end-to-end speedup {speedup:.2}x at {threads} threads is below the 1.5x budget"
        );
    } else {
        println!(
            "skipping the >=1.5x assertion: only {avail} core(s) available \
             (needs 4 to measure scaling rather than oversubscription)"
        );
    }
}

criterion_group!(benches, bench_thread_counts);
