//! Analog transient performance: the Fig. 2c and Fig. 9b event schedules.

use criterion::{criterion_group, criterion_main, Criterion};
use hifi_analog::events::{
    simulate_classic_activation, simulate_ocsa_activation, try_simulate, ActivationConfig,
};
use hifi_circuit::topology::SaTopologyKind;

fn bench_analog(c: &mut Criterion) {
    let mut g = c.benchmark_group("analog");
    g.sample_size(10);
    let cfg = ActivationConfig::default();

    g.bench_function("fig2c_classic_activation", |b| {
        b.iter(|| simulate_classic_activation(&cfg, true));
    });
    g.bench_function("fig9b_ocsa_activation", |b| {
        b.iter(|| simulate_ocsa_activation(&cfg, true));
    });
    g.bench_function("classic_with_isolation_activation", |b| {
        b.iter(|| try_simulate(SaTopologyKind::ClassicWithIsolation, &cfg, true).expect("runs"));
    });
    let mut offset_cfg = cfg.clone();
    offset_cfg.nsa_vt_offset = -0.06;
    g.bench_function("ocsa_with_offset", |b| {
        b.iter(|| simulate_ocsa_activation(&offset_cfg, true));
    });
    g.finish();
}

criterion_group!(benches, bench_analog);
criterion_main!(benches);
