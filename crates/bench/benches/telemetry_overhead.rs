//! Cost of the telemetry layer (OBS experiment).
//!
//! Three variants of the pristine pipeline are timed:
//!
//! 1. `uninstrumented` — the stages composed directly from the public
//!    APIs, with no recorder anywhere (what `Pipeline::run` compiled to
//!    before the telemetry layer existed),
//! 2. `noop_recorder` — `Pipeline::run()`, which routes through
//!    `run_with(&mut NoopRecorder)`,
//! 3. `json_recorder` — `Pipeline::run_instrumented()`, paying for real
//!    event recording and report assembly.
//!
//! After the Criterion groups, the harness measures (1) and (2) directly
//! and prints the relative overhead; the telemetry design requires the
//! no-op path to stay within 2% of the uninstrumented baseline.

use std::time::Instant;

use criterion::{black_box, criterion_group, Criterion};
use hifi_circuit::identify::TopologyLibrary;
use hifi_circuit::topology::SaTopologyKind;
use hifi_dram::pipeline::{Pipeline, PipelineConfig};
use hifi_extract::measure;
use hifi_synth::generate_region;

fn config() -> PipelineConfig {
    PipelineConfig::pristine(SaTopologyKind::Classic)
}

/// The pristine pipeline composed from the stage APIs with no recorder in
/// sight — the baseline `Pipeline::run` is compared against.
fn uninstrumented(cfg: &PipelineConfig) -> usize {
    let region = generate_region(&cfg.spec);
    let volume = region.voxelize();
    let window = region.cell_window(cfg.window_pair);
    let voxel = volume.voxel_nm();
    let to_vox = |nm: i64| ((nm as f64) / voxel).round().max(0.0) as usize;
    let cropped = volume.crop(
        to_vox(window.min().x),
        to_vox(window.max().x),
        to_vox(window.min().y),
        to_vox(window.max().y),
    );
    let extraction = hifi_extract::extract(&cropped).expect("extraction");
    let identified = TopologyLibrary::standard().identify(&extraction.netlist);
    let measurement = measure(&extraction);
    let worst = measurement.worst_deviation(&region.ground_truth().cell.dims_by_class);
    assert!(identified.is_some() && worst.is_some());
    extraction.devices.len()
}

fn bench_variants(c: &mut Criterion) {
    let mut g = c.benchmark_group("telemetry");
    g.sample_size(10);
    let cfg = config();
    g.bench_function("uninstrumented", |b| b.iter(|| uninstrumented(&cfg)));
    let pipeline = Pipeline::new(config());
    g.bench_function("noop_recorder", |b| {
        b.iter(|| pipeline.run().expect("pipeline"))
    });
    g.bench_function("json_recorder", |b| {
        b.iter(|| pipeline.run_instrumented().expect("pipeline"))
    });
    g.finish();
}

fn time_secs<T>(f: &mut impl FnMut() -> T) -> f64 {
    let start = Instant::now();
    black_box(f());
    start.elapsed().as_secs_f64()
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
    xs[xs.len() / 2]
}

fn main() {
    benches();

    // Head-to-head: the two variants are timed in adjacent pairs and each
    // pair yields one noop/baseline ratio. Slow load drift hits both
    // members of a pair roughly equally and cancels in the ratio;
    // alternating which variant runs first cancels order bias; a load
    // spike contaminates only its own pair, and the median over all pairs
    // discards those outliers. A real regression shifts *every* ratio, so
    // it moves the median where noise cannot.
    const PAIRS: usize = 60;
    const BUDGET_PCT: f64 = 2.0;
    let cfg = config();
    let pipeline = Pipeline::new(config());
    let mut run_base = || uninstrumented(&cfg);
    let mut run_noop = || pipeline.run().expect("pipeline");
    // Warm-up both paths once.
    black_box(run_base());
    black_box(run_noop());
    let mut ratios = Vec::with_capacity(PAIRS);
    let mut base_times = Vec::with_capacity(PAIRS);
    for i in 0..PAIRS {
        let (base, noop) = if i % 2 == 0 {
            let base = time_secs(&mut run_base);
            let noop = time_secs(&mut run_noop);
            (base, noop)
        } else {
            let noop = time_secs(&mut run_noop);
            let base = time_secs(&mut run_base);
            (base, noop)
        };
        ratios.push(noop / base);
        base_times.push(base);
    }
    let overhead = (median(ratios) - 1.0) * 100.0;
    let base_ms = median(base_times) * 1e3;
    println!(
        "noop-recorder overhead (median of {PAIRS} paired ratios): {overhead:+.2}%  \
         (median uninstrumented {base_ms:.1} ms)"
    );

    let mut results = hifi_bench::results::BenchResults::default();
    results.record("telemetry_overhead.noop_recorder_pct", overhead, "percent");
    results.record("telemetry_overhead.uninstrumented_median_ms", base_ms, "ms");
    let path = hifi_bench::results::results_path();
    results.merge_into(&path).expect("record bench results");
    println!("recorded → {}", path.display());

    assert!(
        overhead < BUDGET_PCT,
        "NoopRecorder overhead {overhead:.2}% exceeds the {BUDGET_PCT}% budget"
    );
}

criterion_group!(benches, bench_variants);
