//! Performance of the evaluation kernels behind Table II and Figs. 11–14.

use criterion::{criterion_group, criterion_main, Criterion};
use hifi_data::{chips, crow, rem, DdrGeneration};
use hifi_eval::models::{compare_model, fig11_rows, fig12_comparisons};
use hifi_eval::overhead::{fig14, table2};

fn bench_eval(c: &mut Criterion) {
    let mut g = c.benchmark_group("evaluation");
    let cs = chips();

    g.bench_function("table2_full", |b| b.iter(table2));
    g.bench_function("fig11_rows", |b| b.iter(|| fig11_rows(&cs)));
    g.bench_function("fig12_all_models", |b| b.iter(|| fig12_comparisons(&cs)));
    g.bench_function("fig12_single_model", |b| {
        b.iter(|| compare_model(&crow(), &cs, DdrGeneration::Ddr4));
    });
    g.bench_function("fig12_rem_ddr5", |b| {
        b.iter(|| compare_model(&rem(), &cs, DdrGeneration::Ddr5));
    });
    g.bench_function("fig14_per_vendor", |b| b.iter(fig14));
    g.finish();
}

criterion_group!(benches, bench_eval);
criterion_main!(benches);
