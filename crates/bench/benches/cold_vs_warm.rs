//! Cold vs. warm artifact-store runs (CACHE experiment).
//!
//! The first imaged run against an empty store computes and persists every
//! stage artifact (cold); the next run replays all five from disk (warm).
//! This harness times both against a throwaway store directory, prints the
//! ratio, and enforces the acceptance gate: the warm run must be at least
//! 5x faster than the cold one, reuse every stage (zero misses in the
//! RunReport), and produce the same findings as a store-less run.

use std::time::Instant;

use criterion::{black_box, criterion_group, Criterion};
use hifi_circuit::topology::SaTopologyKind;
use hifi_dram::pipeline::{Pipeline, PipelineConfig};
use hifi_imaging::ImagingConfig;
use hifi_telemetry::names;

/// The imaged OCSA configuration the fidelity snapshot uses.
fn config() -> PipelineConfig {
    let imaging = ImagingConfig {
        dwell_us: 6.0,
        drift_sigma_px: 0.6,
        brightness_wander: 1.0,
        slice_voxels: 2,
        ..ImagingConfig::default()
    };
    PipelineConfig::with_imaging(SaTopologyKind::OffsetCancellation, imaging)
}

fn store_root() -> std::path::PathBuf {
    std::env::temp_dir().join(format!("hifi-cold-vs-warm-{}", std::process::id()))
}

fn bench_cold_vs_warm(c: &mut Criterion) {
    let mut g = c.benchmark_group("cold_vs_warm");
    g.sample_size(10);
    let root = store_root();
    let pipeline = Pipeline::new(config().with_store(&root));
    // Populate once so the measured warm iterations all hit.
    let _ = std::fs::remove_dir_all(&root);
    black_box(pipeline.run().expect("populate"));
    g.bench_function("warm", |b| b.iter(|| pipeline.run().expect("warm run")));
    g.finish();
    let _ = std::fs::remove_dir_all(&root);
}

fn main() {
    benches();

    let root = store_root();
    let _ = std::fs::remove_dir_all(&root);
    let baseline = Pipeline::new(config());
    let cached = Pipeline::new(config().with_store(&root));

    // Warm-up outside the store so first-touch costs (page cache, lazy
    // statics) hit neither measured run.
    let plain = baseline.run().expect("store-less run");

    let start = Instant::now();
    let cold_report = cached.run().expect("cold run");
    let cold_s = start.elapsed().as_secs_f64();

    // Time several warm runs and keep the fastest: disk replay is noisy
    // at the millisecond scale.
    let mut warm_s = f64::INFINITY;
    for _ in 0..3 {
        let start = Instant::now();
        black_box(cached.run().expect("warm run"));
        warm_s = warm_s.min(start.elapsed().as_secs_f64());
    }
    let speedup = cold_s / warm_s;

    // The warm run replays every stage: five hits, zero misses, no writes.
    let warm_report = cached.run_instrumented().expect("instrumented warm run");
    let telemetry = warm_report.telemetry.as_ref().expect("telemetry");
    assert_eq!(telemetry.counter(names::STORE_HIT), 5, "warm hits");
    assert_eq!(telemetry.counter(names::STORE_MISS), 0, "warm misses");
    assert_eq!(
        telemetry.counter(names::STORE_BYTES_WRITTEN),
        0,
        "warm run must not rewrite artifacts"
    );

    // Replayed artifacts are bit-transparent: same findings as no store.
    assert_eq!(plain.identified, warm_report.identified);
    assert_eq!(plain.device_count, warm_report.device_count);
    assert_eq!(
        plain.alignment_corrections,
        warm_report.alignment_corrections
    );
    assert_eq!(plain.measurement, warm_report.measurement);
    assert_eq!(cold_report.measurement, warm_report.measurement);

    println!(
        "cold {:.1} ms, warm {:.1} ms: {speedup:.1}x \
         ({} payload bytes replayed per warm run)",
        cold_s * 1e3,
        warm_s * 1e3,
        telemetry.counter(names::STORE_BYTES_READ),
    );
    assert!(
        speedup >= 5.0,
        "warm run must be at least 5x faster than cold (got {speedup:.2}x)"
    );
    let _ = std::fs::remove_dir_all(&root);
}

criterion_group!(benches, bench_cold_vs_warm);
