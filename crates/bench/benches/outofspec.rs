//! Out-of-spec experiment performance (Section VI-D) and in-spec traffic.

use criterion::{criterion_group, criterion_main, Criterion};
use hifi_circuit::topology::SaTopologyKind;
use hifi_dramsim::outofspec::{attempt_row_copy, row_copy_gap_sweep, truncated_restore};
use hifi_dramsim::{DeviceConfig, DramDevice};
use hifi_units::Nanoseconds;

fn bench_dramsim(c: &mut Criterion) {
    let mut g = c.benchmark_group("dramsim");

    g.bench_function("in_spec_row_sweep", |b| {
        b.iter(|| {
            let mut dev = DramDevice::new(DeviceConfig::ddr4(SaTopologyKind::Classic));
            for row in 0..32 {
                dev.activate(0, row).expect("in range");
                dev.write(0, 0, row as u8).expect("open row");
                assert_eq!(dev.read(0, 0).expect("open row"), row as u8);
                dev.precharge(0).expect("in range");
            }
            dev.now()
        });
    });

    g.bench_function("row_copy_classic", |b| {
        b.iter(|| {
            let mut dev = DramDevice::new(DeviceConfig::ddr4(SaTopologyKind::Classic));
            attempt_row_copy(&mut dev, 0, 1, 2, Nanoseconds(2.0)).expect("runs")
        });
    });

    g.bench_function("row_copy_gap_sweep_both", |b| {
        let gaps = [1.0, 2.0, 4.0, 8.0, 12.0, 16.0];
        b.iter(|| {
            (
                row_copy_gap_sweep(SaTopologyKind::Classic, &gaps),
                row_copy_gap_sweep(SaTopologyKind::OffsetCancellation, &gaps),
            )
        });
    });

    g.bench_function("truncated_restore", |b| {
        b.iter(|| {
            let mut dev = DramDevice::new(DeviceConfig::ddr4(SaTopologyKind::Classic));
            truncated_restore(&mut dev, 0, 4, Nanoseconds(3.0)).expect("runs")
        });
    });

    g.finish();
}

criterion_group!(benches, bench_dramsim);
criterion_main!(benches);
