//! FIB slicing and SEM image formation.

use hifi_faults::{retry, FaultKind, FaultPlan, RetryPolicy, VirtualClock};
use hifi_synth::MaterialVolume;
use hifi_telemetry::LaneProfiler;
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// SEM detector choice (Table I uses SE for vendor A and BSE elsewhere).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DetectorKind {
    /// Secondary electrons: conductivity contrast.
    Se,
    /// Backscatter electrons: atomic-number contrast.
    Bse,
}

/// Acquisition parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct ImagingConfig {
    /// Detector used for the whole stack.
    pub detector: DetectorKind,
    /// Dwell time per pixel (µs). Noise σ scales as `1/√dwell`
    /// (the paper uses 3 µs and 6 µs).
    pub dwell_us: f64,
    /// Standard deviation of the per-slice stage-drift innovation (pixels).
    /// Drift follows a mean-reverting (Ornstein–Uhlenbeck) walk — operators
    /// re-centre the field of view periodically, so drift stays bounded at
    /// roughly ±3× this value.
    pub drift_sigma_px: f64,
    /// Per-slice brightness random-walk step (intensity units).
    pub brightness_wander: f64,
    /// FIB slice thickness in voxels of the source volume (the paper mills
    /// 10 nm or 20 nm per slice).
    pub slice_voxels: usize,
    /// RNG seed: acquisitions are reproducible.
    pub seed: u64,
    /// Blank frame margin (pixels) around the cross-section, so stage drift
    /// moves content within the frame instead of clipping it at the image
    /// border — as an operator would frame the ROI with headroom.
    pub frame_margin_px: usize,
}

impl Default for ImagingConfig {
    fn default() -> Self {
        Self {
            detector: DetectorKind::Bse,
            dwell_us: 6.0,
            drift_sigma_px: 0.7,
            brightness_wander: 1.5,
            slice_voxels: 1,
            seed: 0x5EED,
            frame_margin_px: 16,
        }
    }
}

impl ImagingConfig {
    /// Noise standard deviation implied by the dwell time. Calibrated so
    /// that the paper's dwell times (3–6 µs) yield the SNR of a usable
    /// FIB/SEM acquisition (contrast ≈ 30 intensity units between adjacent
    /// material classes): ≈10σ at 3 µs, ≈7σ at 6 µs.
    pub fn noise_sigma(&self) -> f64 {
        18.0 / self.dwell_us.max(1e-6).sqrt()
    }
}

/// One SEM cross-section image: `ny × nz` intensity pixels (f32), row-major
/// in `y` per `z` row.
#[derive(Debug, Clone, PartialEq)]
pub struct SemImage {
    ny: usize,
    nz: usize,
    pixels: Vec<f32>,
}

impl SemImage {
    /// Creates a constant image.
    pub fn filled(ny: usize, nz: usize, value: f32) -> Self {
        Self {
            ny,
            nz,
            pixels: vec![value; ny * nz],
        }
    }

    /// Image dimensions `(ny, nz)`.
    pub fn dims(&self) -> (usize, usize) {
        (self.ny, self.nz)
    }

    /// Pixel accessor.
    ///
    /// # Panics
    ///
    /// Panics when out of range.
    #[inline]
    pub fn get(&self, y: usize, z: usize) -> f32 {
        self.pixels[z * self.ny + y]
    }

    /// Pixel setter.
    ///
    /// # Panics
    ///
    /// Panics when out of range.
    #[inline]
    pub fn set(&mut self, y: usize, z: usize, v: f32) {
        self.pixels[z * self.ny + y] = v;
    }

    /// Raw pixel slice.
    pub fn pixels(&self) -> &[f32] {
        &self.pixels
    }

    /// Mutable raw pixels.
    pub fn pixels_mut(&mut self) -> &mut [f32] {
        &mut self.pixels
    }

    /// Returns the image translated by `(dy, dz)` pixels, filling exposed
    /// borders with `fill`.
    pub fn shifted(&self, dy: i32, dz: i32, fill: f32) -> SemImage {
        let mut out = SemImage::filled(self.ny, self.nz, fill);
        for z in 0..self.nz {
            let sz = z as i32 - dz;
            if sz < 0 || sz >= self.nz as i32 {
                continue;
            }
            for y in 0..self.ny {
                let sy = y as i32 - dy;
                if sy < 0 || sy >= self.ny as i32 {
                    continue;
                }
                out.set(y, z, self.get(sy as usize, sz as usize));
            }
        }
        out
    }

    /// Median intensity (used for brightness normalisation: the oxide
    /// background dominates every cross-section).
    ///
    /// The true median: the mean of the two middle values for even pixel
    /// counts. NaN pixels are tolerated (`total_cmp` sorts them last
    /// instead of aborting the run) and an empty image reports `0.0`.
    pub fn median(&self) -> f32 {
        median_of(self.pixels.clone())
    }

    /// Adds a constant offset.
    pub fn add_offset(&mut self, offset: f32) {
        for p in &mut self.pixels {
            *p += offset;
        }
    }
}

/// An acquired (or processed) stack of cross-section slices.
#[derive(Debug, Clone, PartialEq)]
pub struct ImageStack {
    slices: Vec<SemImage>,
    /// Pixel edge in nm (equals the source voxel size).
    pixel_nm: f64,
    /// Slice thickness in source voxels.
    slice_voxels: usize,
    detector: DetectorKind,
    /// Blank frame margin around the imaged cross-section (pixels).
    frame_margin_px: usize,
}

impl ImageStack {
    /// Builds a stack from parts (used by processing steps).
    pub fn from_slices(
        slices: Vec<SemImage>,
        pixel_nm: f64,
        slice_voxels: usize,
        detector: DetectorKind,
    ) -> Self {
        Self {
            slices,
            pixel_nm,
            slice_voxels,
            detector,
            frame_margin_px: 0,
        }
    }

    /// Sets the frame margin recorded with the stack (builder style).
    pub fn with_frame_margin(mut self, margin_px: usize) -> Self {
        self.frame_margin_px = margin_px;
        self
    }

    /// Blank frame margin around the cross-section content (pixels).
    pub fn frame_margin_px(&self) -> usize {
        self.frame_margin_px
    }

    /// Number of slices.
    pub fn len(&self) -> usize {
        self.slices.len()
    }

    /// Whether the stack is empty.
    pub fn is_empty(&self) -> bool {
        self.slices.is_empty()
    }

    /// Slice accessor.
    pub fn slice(&self, i: usize) -> &SemImage {
        &self.slices[i]
    }

    /// Mutable slices.
    pub fn slices_mut(&mut self) -> &mut [SemImage] {
        &mut self.slices
    }

    /// All slices.
    pub fn slices(&self) -> &[SemImage] {
        &self.slices
    }

    /// Pixel size (nm).
    pub fn pixel_nm(&self) -> f64 {
        self.pixel_nm
    }

    /// Slice thickness in source voxels.
    pub fn slice_voxels(&self) -> usize {
        self.slice_voxels
    }

    /// Detector the stack was acquired with.
    pub fn detector(&self) -> DetectorKind {
        self.detector
    }

    /// A planar (top-down) view at height-row `z`: axes (slice index, y).
    /// This is the cross-section → planar pivot of Section IV-C.
    ///
    /// `z` indexes *content* rows: on a framed stack the blank frame
    /// margin is added internally, so the view reads the same physical
    /// height whether or not the stack was acquired with headroom. An
    /// empty stack yields an empty image.
    pub fn planar_view(&self, z: usize) -> SemImage {
        let Some(first) = self.slices.first() else {
            return SemImage::filled(0, 0, 0.0);
        };
        let (ny, _) = first.dims();
        let z_row = z + self.frame_margin_px;
        let mut out = SemImage::filled(self.len(), ny, 0.0);
        for (x, s) in self.slices.iter().enumerate() {
            for y in 0..ny {
                out.set(x, y, s.get(y, z_row));
            }
        }
        // Planar image dims: (n_slices, ny) mapped into SemImage(ny=n_slices, nz=ny).
        out
    }

    /// Normalises per-slice brightness by pinning each slice's median (the
    /// oxide background) to the stack-wide median (the true median — mean
    /// of the two middle slices for even-length stacks; NaN pixels no
    /// longer abort the run).
    pub fn normalize_brightness(&mut self) {
        if self.slices.is_empty() {
            return;
        }
        let medians: Vec<f32> = self.slices.iter().map(SemImage::median).collect();
        let target = median_of(medians.clone());
        for (s, m) in self.slices.iter_mut().zip(medians) {
            s.add_offset(target - m);
        }
    }
}

/// Ground-truth acquisition artefacts, for validating the post-processing.
#[derive(Debug, Clone, PartialEq)]
pub struct DriftTruth {
    /// Cumulative (dy, dz) shift applied to each slice.
    pub shifts: Vec<(i32, i32)>,
    /// Brightness offset applied to each slice.
    pub brightness: Vec<f64>,
}

/// True median of a sample: mean of the two middle values when the length
/// is even, `0.0` when empty. `total_cmp` keeps a stray NaN pixel from
/// aborting the sort (NaNs order last).
fn median_of(mut v: Vec<f32>) -> f32 {
    if v.is_empty() {
        return 0.0;
    }
    v.sort_by(f32::total_cmp);
    let mid = v.len() / 2;
    if v.len().is_multiple_of(2) {
        (v[mid - 1] + v[mid]) / 2.0
    } else {
        v[mid]
    }
}

fn gaussian(rng: &mut StdRng) -> f64 {
    // Box-Muller.
    let u1: f64 = rng.gen_range(1e-12..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Advances `rng` past the draws [`gaussian`] would consume for `count`
/// samples, without the Box-Muller arithmetic.
///
/// This is what lets [`acquire`] parallelise per-slice rendering while
/// staying bit-identical to a single sequential RNG stream: the sequential
/// artefact pass snapshots the RNG state at each slice boundary and skips
/// over the slice's noise draws; the parallel pass then replays exactly
/// those draws from the snapshot. Each `gaussian` consumes exactly two
/// `u64` draws (one per `gen_range`), which the test
/// `skipping_matches_gaussian_consumption` pins down.
fn skip_gaussians(rng: &mut StdRng, count: usize) {
    for _ in 0..2 * count {
        rng.next_u64();
    }
}

fn oxide_intensity(detector: DetectorKind) -> f32 {
    let base = match detector {
        DetectorKind::Se => hifi_synth::Material::Oxide.se_intensity(),
        DetectorKind::Bse => hifi_synth::Material::Oxide.bse_intensity(),
    };
    base as f32
}

/// Per-material mean intensity, indexed by the voxel byte. The same
/// `f64 → f32` conversion as the per-pixel `match` it replaces, done once
/// per render instead of once per pixel.
fn intensity_lut(detector: DetectorKind) -> [f32; 8] {
    let mut lut = [0.0f32; 8];
    for m in hifi_synth::Material::ALL {
        let base = match detector {
            DetectorKind::Se => m.se_intensity(),
            DetectorKind::Bse => m.bse_intensity(),
        };
        lut[m as usize] = base as f32;
    }
    lut
}

/// Renders the ideal (artefact-free) cross-section at milling position `x`,
/// framed with the configured blank margin.
///
/// The hot loop walks the raw voxel bytes of each `z` row directly and
/// writes one contiguous pixel row per `z` through the intensity LUT —
/// flat `f32` lanes with the per-pixel enum decode, detector branch and
/// 2-D index arithmetic hoisted out (bit-identical to the scalar form,
/// pinned by `blocked_render_matches_reference`).
fn render_cross_section(volume: &MaterialVolume, x: usize, cfg: &ImagingConfig) -> SemImage {
    let (nx, ny, nz) = volume.dims();
    let margin = cfg.frame_margin_px;
    let width = ny + 2 * margin;
    let mut img = SemImage::filled(width, nz + 2 * margin, oxide_intensity(cfg.detector));
    let lut = intensity_lut(cfg.detector);
    let raw = volume.raw_voxels();
    let pixels = img.pixels_mut();
    for z in 0..nz {
        // Voxels of this z plane, strided by nx in y, starting at column x.
        let src = &raw[z * ny * nx + x..];
        let dst_base = (z + margin) * width + margin;
        let dst = &mut pixels[dst_base..dst_base + ny];
        for (y, d) in dst.iter_mut().enumerate() {
            *d = lut[src[y * nx] as usize];
        }
    }
    img
}

/// Renders the ideal stack an artefact-free microscope would acquire: the
/// same slicing, framing and material contrast as [`acquire`] with no
/// noise, drift or brightness wander. Ground-truth reference for fidelity
/// metrics (PSNR of an acquired or denoised stack is measured against it).
pub fn render_ideal(volume: &MaterialVolume, cfg: &ImagingConfig) -> ImageStack {
    render_ideal_profiled(volume, cfg, None)
}

/// [`render_ideal`] with optional per-slice lane profiling: when `lanes`
/// is set, every slice render is timed as a `render.slice` span on the
/// worker lane that executed it. Rendering itself is unchanged — the
/// profiler observes, it never reorders.
pub fn render_ideal_profiled(
    volume: &MaterialVolume,
    cfg: &ImagingConfig,
    lanes: Option<&LaneProfiler>,
) -> ImageStack {
    let (nx, _, _) = volume.dims();
    let step = cfg.slice_voxels.max(1);
    let positions: Vec<usize> = (0..nx).step_by(step).collect();
    // Slices are independent; par_map preserves order, so the stack is
    // identical at any thread count.
    let slices = rayon::par_map(&positions, |&x| match lanes {
        Some(l) => l.time("render.slice", rayon::current_thread_index() as u32, || {
            render_cross_section(volume, x, cfg)
        }),
        None => render_cross_section(volume, x, cfg),
    });
    ImageStack::from_slices(slices, volume.voxel_nm(), step, cfg.detector)
        .with_frame_margin(cfg.frame_margin_px)
}

/// Sequentially-derived inputs for rendering one acquired slice: milling
/// position, rounded stage drift, brightness offset, and the RNG state the
/// slice's shot noise starts from.
struct SliceArtefacts {
    x: usize,
    dy: i32,
    dz: i32,
    bright: f64,
    noise_rng: StdRng,
}

/// The sequential artefact schedule of an acquisition: per-slice drift,
/// brightness and noise-RNG snapshots, derived from the die *dimensions*
/// alone. This is what lets tiled acquisition stream a full-die volume
/// slab by slab while staying bit-identical to a monolithic run — the
/// schedule is O(slices) in memory, independent of the voxel payload, and
/// any slice can then be rendered from whichever x-slab contains it.
pub struct AcquirePlan {
    artefacts: Vec<SliceArtefacts>,
    truth: DriftTruth,
    step: usize,
}

impl AcquirePlan {
    /// Builds the schedule for a die of `(nx, ny, nz)` voxels. Walks the
    /// single sequential RNG stream exactly as a monolithic acquisition
    /// would (see [`skip_gaussians`]).
    pub fn for_dims(nx: usize, ny: usize, nz: usize, cfg: &ImagingConfig) -> Self {
        let step = cfg.slice_voxels.max(1);
        let mut rng = StdRng::seed_from_u64(cfg.seed);

        let mut artefacts: Vec<SliceArtefacts> = Vec::new();
        let mut shifts = Vec::new();
        let mut brightness = Vec::new();
        // Continuous mean-reverting drift state, rounded per slice.
        let (mut fy, mut fz) = (0.0f64, 0.0f64);
        let mut bright = 0.0f64;
        const REVERSION: f64 = 0.94;

        let margin = cfg.frame_margin_px;
        let pixels_per_slice = (ny + 2 * margin) * (nz + 2 * margin);
        let mut x = 0usize;
        while x < nx {
            // Stage drift: mean-reverting walk (first slice is the reference).
            if !artefacts.is_empty() {
                fy = fy * REVERSION + gaussian(&mut rng) * cfg.drift_sigma_px;
                fz = fz * REVERSION + gaussian(&mut rng) * cfg.drift_sigma_px;
                bright = bright * REVERSION + gaussian(&mut rng) * cfg.brightness_wander;
            }
            let (dy, dz) = (fy.round() as i32, fz.round() as i32);
            artefacts.push(SliceArtefacts {
                x,
                dy,
                dz,
                bright,
                noise_rng: rng.clone(),
            });
            skip_gaussians(&mut rng, pixels_per_slice);
            shifts.push((dy, dz));
            brightness.push(bright);
            x += step;
        }
        Self {
            artefacts,
            truth: DriftTruth { shifts, brightness },
            step,
        }
    }

    /// [`AcquirePlan::for_dims`] for an in-memory volume.
    pub fn for_volume(volume: &MaterialVolume, cfg: &ImagingConfig) -> Self {
        let (nx, ny, nz) = volume.dims();
        Self::for_dims(nx, ny, nz, cfg)
    }

    /// Number of scheduled slices.
    pub fn len(&self) -> usize {
        self.artefacts.len()
    }

    /// Whether the schedule is empty.
    pub fn is_empty(&self) -> bool {
        self.artefacts.is_empty()
    }

    /// Ground-truth artefacts of the schedule.
    pub fn truth(&self) -> &DriftTruth {
        &self.truth
    }

    /// Global milling position of slice `i`.
    pub fn slice_x(&self, i: usize) -> usize {
        self.artefacts[i].x
    }

    /// Indices of the scheduled slices whose milling position lies in the
    /// half-open x-slab `[x0, x1)`.
    pub fn slices_in_slab(&self, x0: usize, x1: usize) -> std::ops::Range<usize> {
        let start = x0.div_ceil(self.step).min(self.artefacts.len());
        let end = x1.div_ceil(self.step).min(self.artefacts.len());
        start..end.max(start)
    }

    /// Renders scheduled slice `i` from `slab`, a volume whose x-range
    /// starts at global voxel column `slab_x0`. Rendering a slice from a
    /// slab is bit-identical to rendering it from the whole die — the
    /// cross-section only reads the slice's own voxel column.
    ///
    /// # Panics
    ///
    /// Panics if the slice's milling position does not fall inside the slab.
    pub fn render(
        &self,
        slab: &MaterialVolume,
        slab_x0: usize,
        i: usize,
        cfg: &ImagingConfig,
    ) -> SemImage {
        let a = &self.artefacts[i];
        let (slab_nx, _, _) = slab.dims();
        assert!(
            a.x >= slab_x0 && a.x - slab_x0 < slab_nx,
            "slice {i} at x={} outside slab [{slab_x0}, {})",
            a.x,
            slab_x0 + slab_nx
        );
        render_slice_at(slab, cfg, a, a.x - slab_x0)
    }
}

/// Acquires a cross-section stack from a volume: for every FIB slice the
/// cross-section is rendered with material-dependent contrast, shot noise,
/// cumulative integer stage drift and brightness wander.
///
/// Rendering is parallel across slices but the output is bit-identical to
/// a fully sequential acquisition at any thread count: a sequential pass
/// walks the single RNG stream — drawing each slice's drift and brightness
/// innovations and snapshotting the state its noise starts from — and the
/// parallel pass replays each slice's noise draws from its snapshot (see
/// [`skip_gaussians`]).
///
/// Returns the stack and the ground-truth artefacts (for validation only —
/// the post-processing never sees them).
pub fn acquire(volume: &MaterialVolume, cfg: &ImagingConfig) -> (ImageStack, DriftTruth) {
    acquire_profiled(volume, cfg, None)
}

/// [`acquire`] with optional per-slice lane profiling: when `lanes` is
/// set, every slice acquisition is timed as an `acquire.slice` span on
/// the worker lane that executed it.
pub fn acquire_profiled(
    volume: &MaterialVolume,
    cfg: &ImagingConfig,
    lanes: Option<&LaneProfiler>,
) -> (ImageStack, DriftTruth) {
    acquire_inner(volume, cfg, None, lanes)
}

/// [`acquire`] in streaming-tiled mode: the volume is walked in x-slabs of
/// `tile_x` voxel columns (one slab buffer reused across tiles) and each
/// slab's slices are rendered in parallel. Bit-identical to the monolithic
/// path at any thread count — the artefact schedule is shared and every
/// slice reads only its own voxel column.
pub fn acquire_tiled(
    volume: &MaterialVolume,
    cfg: &ImagingConfig,
    tile_x: usize,
) -> (ImageStack, DriftTruth) {
    acquire_tiled_profiled(volume, cfg, tile_x, None)
}

/// [`acquire_tiled`] with optional per-slice lane profiling.
pub fn acquire_tiled_profiled(
    volume: &MaterialVolume,
    cfg: &ImagingConfig,
    tile_x: usize,
    lanes: Option<&LaneProfiler>,
) -> (ImageStack, DriftTruth) {
    acquire_inner(volume, cfg, Some(tile_x), lanes)
}

fn acquire_inner(
    volume: &MaterialVolume,
    cfg: &ImagingConfig,
    tile_x: Option<usize>,
    lanes: Option<&LaneProfiler>,
) -> (ImageStack, DriftTruth) {
    let plan = AcquirePlan::for_volume(volume, cfg);
    let render_one = |src: &MaterialVolume, x0: usize, i: usize| match lanes {
        Some(l) => l.time(
            "acquire.slice",
            rayon::current_thread_index() as u32,
            || plan.render(src, x0, i, cfg),
        ),
        None => plan.render(src, x0, i, cfg),
    };
    // Parallel render pass: every slice renders, shifts and replays its
    // noise draws independently.
    let mut slices: Vec<SemImage> = Vec::with_capacity(plan.len());
    match tile_x {
        None => {
            let indices: Vec<usize> = (0..plan.len()).collect();
            slices = rayon::par_map(&indices, |&i| render_one(volume, 0, i));
        }
        Some(t) => volume.for_each_slab_x(t, |slab, x0| {
            let (slab_nx, _, _) = slab.dims();
            let indices: Vec<usize> = plan.slices_in_slab(x0, x0 + slab_nx).collect();
            slices.extend(rayon::par_map(&indices, |&i| render_one(slab, x0, i)));
        }),
    }
    let truth = plan.truth;
    (
        ImageStack::from_slices(
            slices,
            volume.voxel_nm(),
            cfg.slice_voxels.max(1),
            cfg.detector,
        )
        .with_frame_margin(cfg.frame_margin_px),
        truth,
    )
}

/// Renders one acquired slice from its sequentially-derived artefacts:
/// ideal cross-section at local column `x_local` of `volume` (the whole
/// die, or the x-slab holding the slice), framed with blank margin so
/// drift cannot push content off the image, then drift shift, shot noise
/// and brightness offset. A pure function of its inputs, so re-rendering
/// the same slice (a re-acquisition after a fault) is bit-identical.
fn render_slice_at(
    volume: &MaterialVolume,
    cfg: &ImagingConfig,
    a: &SliceArtefacts,
    x_local: usize,
) -> SemImage {
    let oxide = oxide_intensity(cfg.detector);
    let sigma = cfg.noise_sigma();
    let img = render_cross_section(volume, x_local, cfg);
    let mut img = img.shifted(a.dy, a.dz, oxide);
    let mut rng = a.noise_rng.clone();
    for p in img.pixels_mut() {
        *p += (gaussian(&mut rng) * sigma + a.bright) as f32;
    }
    img
}

/// Result of a fault-aware acquisition ([`acquire_with_recovery`]).
#[derive(Debug, Clone, PartialEq)]
pub struct AcquireOutcome {
    /// The acquired stack; degraded slices are interpolated in place.
    pub stack: ImageStack,
    /// Ground-truth artefacts, identical to a clean [`acquire`] (stage
    /// drift is a property of the mill schedule, not of which slice
    /// acquisitions failed).
    pub truth: DriftTruth,
    /// Slice indices that exhausted their retries and were interpolated
    /// from neighbours. Empty whenever the plan is recoverable under the
    /// policy (`policy.max_retries >= spec.max_consecutive`).
    pub degraded_slices: Vec<usize>,
}

/// [`acquire`] under a fault plan: each slice acquisition consults the
/// plan and, when a fault is injected, is re-acquired under `policy` with
/// backoff charged to `clock`. A re-acquired slice replays the same RNG
/// snapshot, so a recovered stack is **bit-identical** to a clean one at
/// any thread count. A slice that exhausts its retries is interpolated
/// from its nearest intact neighbours (mean of both sides, copy of one
/// side at the stack edges, oxide fill if every slice failed) and flagged
/// in [`AcquireOutcome::degraded_slices`].
pub fn acquire_with_recovery(
    volume: &MaterialVolume,
    cfg: &ImagingConfig,
    plan: &FaultPlan,
    policy: &RetryPolicy,
    clock: &VirtualClock,
) -> AcquireOutcome {
    acquire_with_recovery_profiled(volume, cfg, plan, policy, clock, None)
}

/// [`acquire_with_recovery`] with optional per-slice lane profiling: each
/// slice's whole acquire-with-retries is timed as an `acquire.slice` span
/// on its worker lane, so retried slices show up as long spans.
pub fn acquire_with_recovery_profiled(
    volume: &MaterialVolume,
    cfg: &ImagingConfig,
    plan: &FaultPlan,
    policy: &RetryPolicy,
    clock: &VirtualClock,
    lanes: Option<&LaneProfiler>,
) -> AcquireOutcome {
    acquire_with_recovery_inner(volume, cfg, plan, policy, clock, None, lanes)
}

/// [`acquire_with_recovery`] in streaming-tiled mode (see
/// [`acquire_tiled`]): fault checks, retries and interpolation are keyed
/// by global slice index, so the outcome is bit-identical to the
/// monolithic fault-aware path.
pub fn acquire_with_recovery_tiled_profiled(
    volume: &MaterialVolume,
    cfg: &ImagingConfig,
    plan: &FaultPlan,
    policy: &RetryPolicy,
    clock: &VirtualClock,
    tile_x: usize,
    lanes: Option<&LaneProfiler>,
) -> AcquireOutcome {
    acquire_with_recovery_inner(volume, cfg, plan, policy, clock, Some(tile_x), lanes)
}

fn acquire_with_recovery_inner(
    volume: &MaterialVolume,
    cfg: &ImagingConfig,
    plan: &FaultPlan,
    policy: &RetryPolicy,
    clock: &VirtualClock,
    tile_x: Option<usize>,
    lanes: Option<&LaneProfiler>,
) -> AcquireOutcome {
    let aplan = AcquirePlan::for_volume(volume, cfg);

    /// A failed slice acquisition (always transient: the stage position is
    /// unchanged and the mill schedule already advanced).
    #[derive(Debug)]
    struct SliceFault;
    impl core::fmt::Display for SliceFault {
        fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
            f.write_str("slice acquisition failed")
        }
    }

    let acquire_one = |src: &MaterialVolume, x0: usize, i: usize| -> Option<SemImage> {
        let site = format!("slice:{i}");
        let outcome = retry(
            policy,
            clock,
            |_: &SliceFault| true,
            |_attempt| {
                if plan.check(FaultKind::AcquireSlice, &site) {
                    Err(SliceFault)
                } else {
                    Ok(aplan.render(src, x0, i, cfg))
                }
            },
        );
        match outcome {
            Ok((img, retries)) => {
                if retries > 0 {
                    plan.record_retried(u64::from(retries));
                    plan.record_recovered(1);
                }
                Some(img)
            }
            Err(_) => {
                // Transient-only error type: the only reachable branch is
                // an exhausted retry budget.
                plan.record_retried(u64::from(policy.max_retries));
                plan.record_degraded(1);
                None
            }
        }
    };
    let timed_one = |src: &MaterialVolume, x0: usize, i: usize| match lanes {
        Some(l) => l.time(
            "acquire.slice",
            rayon::current_thread_index() as u32,
            || acquire_one(src, x0, i),
        ),
        None => acquire_one(src, x0, i),
    };
    let mut rendered: Vec<Option<SemImage>> = Vec::with_capacity(aplan.len());
    match tile_x {
        None => {
            let indices: Vec<usize> = (0..aplan.len()).collect();
            rendered = rayon::par_map(&indices, |&i| timed_one(volume, 0, i));
        }
        Some(t) => volume.for_each_slab_x(t, |slab, x0| {
            let (slab_nx, _, _) = slab.dims();
            let indices: Vec<usize> = aplan.slices_in_slab(x0, x0 + slab_nx).collect();
            rendered.extend(rayon::par_map(&indices, |&i| timed_one(slab, x0, i)));
        }),
    }
    let truth = aplan.truth;

    let degraded_slices: Vec<usize> = rendered
        .iter()
        .enumerate()
        .filter_map(|(i, r)| r.is_none().then_some(i))
        .collect();
    // Interpolate from *rendered* neighbours only (never from another
    // interpolated slice), reading the pre-fill state.
    let (ny, nz) = framed_dims(volume, cfg);
    let interpolated: Vec<(usize, SemImage)> = degraded_slices
        .iter()
        .map(|&i| (i, interpolate_slice(&rendered, i, ny, nz, cfg)))
        .collect();
    for (i, img) in interpolated {
        rendered[i] = Some(img);
    }
    let slices: Vec<SemImage> = rendered
        .into_iter()
        .map(|r| r.expect("every slot rendered or interpolated"))
        .collect();

    AcquireOutcome {
        stack: ImageStack::from_slices(
            slices,
            volume.voxel_nm(),
            cfg.slice_voxels.max(1),
            cfg.detector,
        )
        .with_frame_margin(cfg.frame_margin_px),
        truth,
        degraded_slices,
    }
}

/// Framed slice dimensions `(ny, nz)` of an acquisition over `volume`.
fn framed_dims(volume: &MaterialVolume, cfg: &ImagingConfig) -> (usize, usize) {
    let (_, ny, nz) = volume.dims();
    let m = cfg.frame_margin_px;
    (ny + 2 * m, nz + 2 * m)
}

/// Best-effort stand-in for a slice whose acquisition exhausted retries:
/// the pixel-wise mean of the nearest intact slices on both sides, a copy
/// of the single intact side at a stack edge, or the oxide background if
/// no slice survived.
fn interpolate_slice(
    rendered: &[Option<SemImage>],
    i: usize,
    ny: usize,
    nz: usize,
    cfg: &ImagingConfig,
) -> SemImage {
    let prev = rendered[..i]
        .iter()
        .rposition(|s| s.is_some())
        .and_then(|p| rendered[p].as_ref());
    let next = rendered[i + 1..]
        .iter()
        .position(|s| s.is_some())
        .and_then(|n| rendered[i + 1 + n].as_ref());
    match (prev, next) {
        (Some(a), Some(b)) => {
            let mut out = a.clone();
            for (p, q) in out.pixels_mut().iter_mut().zip(b.pixels()) {
                *p = (*p + q) / 2.0;
            }
            out
        }
        (Some(only), None) | (None, Some(only)) => only.clone(),
        (None, None) => SemImage::filled(ny, nz, oxide_intensity(cfg.detector)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hifi_geometry::LayerStack;
    use hifi_synth::Material;

    fn test_volume() -> MaterialVolume {
        let mut v = MaterialVolume::new(20, 30, 25, 5.0, LayerStack::default_dram());
        v.fill_box(0, 20, 10, 14, 8, 10, Material::Metal1, true);
        v.fill_box(0, 20, 4, 6, 2, 4, Material::ActiveSi, true);
        v
    }

    #[test]
    fn skipping_matches_gaussian_consumption() {
        // The parallel acquire path depends on `skip_gaussians` advancing
        // the RNG exactly as `gaussian` calls would.
        let mut drawn = StdRng::seed_from_u64(0xABCD);
        let mut skipped = drawn.clone();
        for _ in 0..37 {
            let _ = gaussian(&mut drawn);
        }
        skip_gaussians(&mut skipped, 37);
        assert_eq!(drawn, skipped);
    }

    /// Scalar reference for the LUT/row-blocked cross-section renderer:
    /// per-pixel volume accessor, detector `match` and `f64 → f32` cast.
    fn render_cross_section_reference(
        volume: &MaterialVolume,
        x: usize,
        cfg: &ImagingConfig,
    ) -> SemImage {
        let (_, ny, nz) = volume.dims();
        let margin = cfg.frame_margin_px;
        let mut img = SemImage::filled(
            ny + 2 * margin,
            nz + 2 * margin,
            oxide_intensity(cfg.detector),
        );
        for z in 0..nz {
            for y in 0..ny {
                let m = volume.get(x, y, z);
                let base = match cfg.detector {
                    DetectorKind::Se => m.se_intensity(),
                    DetectorKind::Bse => m.bse_intensity(),
                };
                img.set(y + margin, z + margin, base as f32);
            }
        }
        img
    }

    #[test]
    fn blocked_render_matches_reference() {
        let v = test_volume();
        for detector in [DetectorKind::Se, DetectorKind::Bse] {
            for margin in [0usize, 16] {
                let cfg = ImagingConfig {
                    detector,
                    frame_margin_px: margin,
                    ..Default::default()
                };
                for x in [0usize, 7, 19] {
                    let got = render_cross_section(&v, x, &cfg);
                    let want = render_cross_section_reference(&v, x, &cfg);
                    let gb: Vec<u32> = got.pixels().iter().map(|p| p.to_bits()).collect();
                    let wb: Vec<u32> = want.pixels().iter().map(|p| p.to_bits()).collect();
                    assert_eq!(gb, wb, "x {x} margin {margin} detector {detector:?}");
                }
            }
        }
    }

    #[test]
    fn tiled_acquisition_matches_monolithic() {
        let v = test_volume();
        let cfg = ImagingConfig {
            slice_voxels: 3,
            ..Default::default()
        };
        let (mono, mono_truth) = acquire(&v, &cfg);
        // Tile widths that divide, straddle and exceed the die, including
        // tiles narrower than the slice step (slabs with no slice).
        for tile in [1usize, 2, 3, 5, 7, 19, 20, 64] {
            let (tiled, truth) = acquire_tiled(&v, &cfg, tile);
            assert_eq!(tiled, mono, "tile width {tile}");
            assert_eq!(truth, mono_truth, "tile width {tile}");
        }
    }

    #[test]
    fn tiled_recovery_matches_monolithic_recovery() {
        use hifi_faults::FaultSpec;
        let v = test_volume();
        let cfg = ImagingConfig::default();
        let make_plan = || {
            FaultPlan::new(
                FaultSpec::disabled()
                    .with_seed(3)
                    .with_rate(FaultKind::AcquireSlice, 0.5)
                    .with_max_consecutive(2),
            )
        };
        let clock = VirtualClock::new();
        let mono = acquire_with_recovery(&v, &cfg, &make_plan(), &RetryPolicy::default(), &clock);
        for tile in [4usize, 9, 32] {
            let plan = make_plan();
            let tiled = acquire_with_recovery_tiled_profiled(
                &v,
                &cfg,
                &plan,
                &RetryPolicy::default(),
                &VirtualClock::new(),
                tile,
                None,
            );
            assert_eq!(tiled, mono, "tile width {tile}");
            assert!(plan.tally().injected > 0, "plan must actually inject");
        }
    }

    #[test]
    fn acquire_plan_slab_ranges_cover_all_slices() {
        let cfg = ImagingConfig {
            slice_voxels: 3,
            ..Default::default()
        };
        let plan = AcquirePlan::for_dims(20, 4, 4, &cfg);
        assert_eq!(plan.len(), 7);
        assert_eq!(plan.truth().shifts.len(), 7);
        let mut covered = Vec::new();
        for x0 in (0..20).step_by(5) {
            covered.extend(plan.slices_in_slab(x0, x0 + 5));
        }
        let all: Vec<usize> = (0..plan.len()).collect();
        assert_eq!(covered, all, "every slice in exactly one slab");
        for i in 0..plan.len() {
            assert_eq!(plan.slice_x(i), i * 3);
        }
    }

    #[test]
    fn acquisition_is_deterministic() {
        let v = test_volume();
        let cfg = ImagingConfig::default();
        let (a, ta) = acquire(&v, &cfg);
        let (b, tb) = acquire(&v, &cfg);
        assert_eq!(a, b);
        assert_eq!(ta, tb);
    }

    #[test]
    fn slice_count_follows_thickness() {
        let v = test_volume();
        let mut cfg = ImagingConfig {
            slice_voxels: 1,
            ..Default::default()
        };
        assert_eq!(acquire(&v, &cfg).0.len(), 20);
        cfg.slice_voxels = 4;
        assert_eq!(acquire(&v, &cfg).0.len(), 5);
    }

    #[test]
    fn higher_dwell_means_less_noise() {
        let mut cfg = ImagingConfig {
            dwell_us: 3.0,
            ..Default::default()
        };
        let s3 = cfg.noise_sigma();
        cfg.dwell_us = 6.0;
        let s6 = cfg.noise_sigma();
        assert!(s6 < s3);
        assert!((s3 / s6 - 2f64.sqrt()).abs() < 1e-9);
    }

    #[test]
    fn materials_are_visible_above_noise() {
        let v = test_volume();
        let cfg = ImagingConfig {
            drift_sigma_px: 0.0,
            brightness_wander: 0.0,
            ..Default::default()
        };
        let (stack, _) = acquire(&v, &cfg);
        let img = stack.slice(5);
        let m = cfg.frame_margin_px;
        // Metal pixel vs oxide pixel: means far apart.
        let metal = img.get(11 + m, 8 + m);
        let oxide = img.get(m, 20 + m);
        assert!(metal - oxide > 80.0, "metal {metal} vs oxide {oxide}");
    }

    #[test]
    fn shifted_fills_border() {
        let mut img = SemImage::filled(4, 4, 1.0);
        img.set(0, 0, 9.0);
        let s = img.shifted(1, 0, 0.0);
        assert_eq!(s.get(1, 0), 9.0);
        assert_eq!(s.get(0, 0), 0.0);
    }

    #[test]
    fn normalization_removes_brightness_wander() {
        let v = test_volume();
        let cfg = ImagingConfig {
            drift_sigma_px: 0.0,
            brightness_wander: 8.0,
            dwell_us: 1e6, // effectively noiseless
            ..Default::default()
        };
        let (mut stack, truth) = acquire(&v, &cfg);
        assert!(truth.brightness.iter().any(|b| b.abs() > 4.0));
        stack.normalize_brightness();
        let medians: Vec<f32> = stack.slices().iter().map(SemImage::median).collect();
        let spread = medians.iter().cloned().fold(f32::MIN, f32::max)
            - medians.iter().cloned().fold(f32::MAX, f32::min);
        assert!(spread < 1.0, "median spread {spread}");
    }

    #[test]
    fn render_ideal_matches_artefact_free_acquisition() {
        let v = test_volume();
        let cfg = ImagingConfig {
            drift_sigma_px: 0.0,
            brightness_wander: 0.0,
            dwell_us: 1e12, // noise sigma ≈ 0, rounds away in f32
            ..Default::default()
        };
        let ideal = render_ideal(&v, &cfg);
        let (acquired, _) = acquire(&v, &cfg);
        assert_eq!(ideal.len(), acquired.len());
        assert_eq!(ideal.frame_margin_px(), acquired.frame_margin_px());
        for (a, b) in ideal.slices().iter().zip(acquired.slices()) {
            let max_diff = a
                .pixels()
                .iter()
                .zip(b.pixels())
                .map(|(x, y)| (x - y).abs())
                .fold(0.0f32, f32::max);
            assert!(max_diff < 0.01, "max pixel difference {max_diff}");
        }
    }

    #[test]
    fn planar_view_shape() {
        let v = test_volume();
        let cfg = ImagingConfig::default();
        let (stack, _) = acquire(&v, &cfg);
        let planar = stack.planar_view(8);
        // Planar axes: (slice index, y including the frame margin).
        assert_eq!(planar.dims(), (stack.len(), 30 + 2 * cfg.frame_margin_px));
    }

    #[test]
    fn planar_view_of_empty_stack_is_empty() {
        let stack = ImageStack::from_slices(Vec::new(), 5.0, 1, DetectorKind::Bse);
        let planar = stack.planar_view(3);
        assert_eq!(planar.dims(), (0, 0));
        assert!(planar.pixels().is_empty());
    }

    #[test]
    fn planar_view_honors_frame_margin() {
        // Two framed slices with a marker at *content* row z=2: the planar
        // view indexed by content rows must read it, not the blank margin.
        let margin = 4usize;
        let (ny, nz) = (6usize, 5usize);
        let mut slices = Vec::new();
        for i in 0..2 {
            let mut img = SemImage::filled(ny + 2 * margin, nz + 2 * margin, 0.0);
            img.set(3 + margin, 2 + margin, 40.0 + i as f32);
            slices.push(img);
        }
        let framed = ImageStack::from_slices(slices.clone(), 5.0, 1, DetectorKind::Bse)
            .with_frame_margin(margin);
        let planar = framed.planar_view(2);
        assert_eq!(planar.get(0, 3 + margin), 40.0);
        assert_eq!(planar.get(1, 3 + margin), 41.0);
        // The same rows through an unframed stack of the same images land
        // on the raw z index instead.
        let unframed = ImageStack::from_slices(slices, 5.0, 1, DetectorKind::Bse);
        assert_eq!(unframed.planar_view(2 + margin).get(0, 3 + margin), 40.0);
    }

    #[test]
    fn median_is_true_even_length_median() {
        let mut img = SemImage::filled(2, 1, 0.0);
        img.set(0, 0, 1.0);
        img.set(1, 0, 3.0);
        assert_eq!(img.median(), 2.0);
        let odd = SemImage::filled(3, 1, 5.0);
        assert_eq!(odd.median(), 5.0);
        let empty = SemImage::filled(0, 0, 0.0);
        assert_eq!(empty.median(), 0.0);
    }

    #[test]
    fn recovered_acquisition_is_bit_identical_to_clean() {
        use hifi_faults::FaultSpec;
        let v = test_volume();
        let cfg = ImagingConfig::default();
        let (clean, clean_truth) = acquire(&v, &cfg);
        // Half the slice attempts fail, at most twice in a row — fully
        // recoverable under the default policy (3 retries).
        let plan = FaultPlan::new(
            FaultSpec::disabled()
                .with_seed(3)
                .with_rate(FaultKind::AcquireSlice, 0.5)
                .with_max_consecutive(2),
        );
        let clock = VirtualClock::new();
        let out = acquire_with_recovery(&v, &cfg, &plan, &RetryPolicy::default(), &clock);
        let tally = plan.tally();
        assert!(tally.injected > 0, "plan must actually inject");
        assert_eq!(tally.degraded, 0);
        assert!(tally.recovered > 0);
        assert!(out.degraded_slices.is_empty());
        assert_eq!(out.stack, clean, "recovery must be bit-transparent");
        assert_eq!(out.truth, clean_truth);
        assert!(
            clock.elapsed() > std::time::Duration::ZERO,
            "backoff must be charged to the virtual clock"
        );
    }

    #[test]
    fn exhausted_slices_are_interpolated_and_flagged() {
        use hifi_faults::FaultSpec;
        let v = test_volume();
        let cfg = ImagingConfig::default();
        let (clean, _) = acquire(&v, &cfg);
        // Zero-retry policy: every injected slice degrades immediately.
        let plan = FaultPlan::new(
            FaultSpec::disabled()
                .with_seed(11)
                .with_rate(FaultKind::AcquireSlice, 0.4)
                .with_max_consecutive(5),
        );
        let clock = VirtualClock::new();
        let out = acquire_with_recovery(&v, &cfg, &plan, &RetryPolicy::none(), &clock);
        assert!(
            !out.degraded_slices.is_empty(),
            "seed 11 at 40% must degrade"
        );
        assert_eq!(out.stack.len(), clean.len(), "stack shape is preserved");
        assert_eq!(plan.tally().degraded, out.degraded_slices.len() as u64);
        for i in 0..clean.len() {
            if out.degraded_slices.contains(&i) {
                assert_eq!(out.stack.slice(i).dims(), clean.slice(i).dims());
                assert_ne!(
                    out.stack.slice(i),
                    clean.slice(i),
                    "slice {i} was interpolated, not re-acquired"
                );
            } else {
                assert_eq!(out.stack.slice(i), clean.slice(i), "intact slice {i}");
            }
        }
    }

    #[test]
    fn interpolation_averages_neighbours_and_handles_edges() {
        let cfg = ImagingConfig::default();
        let img = |v: f32| SemImage::filled(2, 2, v);
        // Middle gap: mean of both sides.
        let rendered = vec![Some(img(10.0)), None, Some(img(30.0))];
        assert_eq!(interpolate_slice(&rendered, 1, 2, 2, &cfg), img(20.0));
        // Edge gap: copy of the single intact side.
        let rendered = vec![None, Some(img(7.0))];
        assert_eq!(interpolate_slice(&rendered, 0, 2, 2, &cfg), img(7.0));
        // Nearest *rendered* neighbour wins, skipping other gaps.
        let rendered = vec![Some(img(4.0)), None, None, Some(img(8.0))];
        assert_eq!(interpolate_slice(&rendered, 1, 2, 2, &cfg), img(6.0));
        assert_eq!(interpolate_slice(&rendered, 2, 2, 2, &cfg), img(6.0));
        // Total loss: oxide background.
        let rendered = vec![None, None];
        assert_eq!(
            interpolate_slice(&rendered, 0, 2, 2, &cfg),
            SemImage::filled(2, 2, oxide_intensity(cfg.detector))
        );
    }

    #[test]
    fn normalization_tolerates_nan_pixels() {
        let v = test_volume();
        let cfg = ImagingConfig {
            drift_sigma_px: 0.0,
            brightness_wander: 8.0,
            dwell_us: 1e6,
            ..Default::default()
        };
        let (mut stack, _) = acquire(&v, &cfg);
        // A dead detector pixel in one slice must not abort the run.
        stack.slices_mut()[2].set(1, 1, f32::NAN);
        stack.normalize_brightness();
        let medians: Vec<f32> = stack.slices().iter().map(SemImage::median).collect();
        assert!(medians.iter().all(|m| m.is_finite()), "medians {medians:?}");
        let spread = medians.iter().cloned().fold(f32::MIN, f32::max)
            - medians.iter().cloned().fold(f32::MAX, f32::min);
        assert!(spread < 1.0, "median spread {spread}");
    }
}
