//! Quality metrics for the imaging pipeline: how faithfully does a
//! processed stack reproduce the ground-truth volume?

use crate::sem::{DriftTruth, SemImage};
use hifi_synth::MaterialVolume;

/// Peak signal-to-noise ratio between two images (peak = 255).
///
/// Identical images yield `f64::INFINITY` (zero mean-squared error).
///
/// # Panics
///
/// Panics if the two images have different dimensions — comparing images
/// of different sizes is always a caller bug (e.g. comparing a framed
/// acquisition against an unframed render), never a measurable quantity,
/// so it fails loudly instead of silently truncating.
pub fn psnr(a: &SemImage, b: &SemImage) -> f64 {
    assert_eq!(a.dims(), b.dims(), "image dimensions differ");
    let n = a.pixels().len() as f64;
    let mse: f64 = a
        .pixels()
        .iter()
        .zip(b.pixels())
        .map(|(x, y)| ((x - y) as f64).powi(2))
        .sum::<f64>()
        / n;
    if mse == 0.0 {
        f64::INFINITY
    } else {
        10.0 * (255.0f64 * 255.0 / mse).log10()
    }
}

/// Fraction of voxels whose material matches between a reconstruction and
/// the ground-truth volume.
///
/// Mismatched extents are tolerated: only the common (element-wise
/// minimum) extent is compared, because a reconstruction from a thick-
/// sliced stack legitimately has fewer milling-axis planes than the
/// source volume. If the common extent is empty the function returns
/// `0.0` — no voxel was verified, so no accuracy can be claimed.
pub fn voxel_accuracy(reconstructed: &MaterialVolume, truth: &MaterialVolume) -> f64 {
    let (tx, ty, tz) = truth.dims();
    let (rx, ry, rz) = reconstructed.dims();
    let (nx, ny, nz) = (tx.min(rx), ty.min(ry), tz.min(rz));
    let mut same = 0usize;
    let mut total = 0usize;
    for z in 0..nz {
        for y in 0..ny {
            for x in 0..nx {
                total += 1;
                if reconstructed.get(x, y, z) == truth.get(x, y, z) {
                    same += 1;
                }
            }
        }
    }
    if total == 0 {
        0.0
    } else {
        same as f64 / total as f64
    }
}

/// Mean absolute residual drift after alignment, in pixels per slice:
/// a perfect aligner's corrections are the negated ground-truth shifts.
///
/// An empty `corrections` slice returns `0.0`: a stack that needed no
/// alignment (zero or one slice) has, by definition, no residual drift.
pub fn residual_drift(corrections: &[(i32, i32)], truth: &DriftTruth) -> f64 {
    if corrections.is_empty() {
        return 0.0;
    }
    let total: i32 = corrections
        .iter()
        .zip(&truth.shifts)
        .map(|(c, t)| (c.0 + t.0).abs() + (c.1 + t.1).abs())
        .sum();
    total as f64 / corrections.len() as f64
}

/// The paper's alignment budget: residual misalignment must stay below
/// 0.77% of the cross-section height (a 30 nm wire against a ~4 µm slice,
/// Section IV-C). Returns the budget in pixels for a given slice height.
pub fn alignment_budget_px(slice_height_px: usize) -> f64 {
    slice_height_px as f64 * 0.0077
}

#[cfg(test)]
mod tests {
    use super::*;
    use hifi_geometry::LayerStack;
    use hifi_synth::Material;

    #[test]
    fn psnr_of_identical_images_is_infinite() {
        let img = SemImage::filled(8, 8, 100.0);
        assert!(psnr(&img, &img).is_infinite());
    }

    #[test]
    fn psnr_decreases_with_noise() {
        let a = SemImage::filled(8, 8, 100.0);
        let mut b = a.clone();
        b.add_offset(5.0);
        let mut c = a.clone();
        c.add_offset(20.0);
        assert!(psnr(&a, &b) > psnr(&a, &c));
    }

    #[test]
    fn voxel_accuracy_bounds() {
        let a = MaterialVolume::new(4, 4, 4, 5.0, LayerStack::default_dram());
        assert_eq!(voxel_accuracy(&a, &a), 1.0);
        let mut b = a.clone();
        for z in 0..4 {
            for y in 0..4 {
                for x in 0..4 {
                    b.set(x, y, z, Material::Metal1);
                }
            }
        }
        assert_eq!(voxel_accuracy(&a, &b), 0.0);
    }

    #[test]
    fn residual_drift_zero_for_perfect_corrections() {
        let truth = DriftTruth {
            shifts: vec![(0, 0), (1, -2), (3, 0)],
            brightness: vec![0.0; 3],
        };
        let perfect: Vec<(i32, i32)> = truth.shifts.iter().map(|&(a, b)| (-a, -b)).collect();
        assert_eq!(residual_drift(&perfect, &truth), 0.0);
        let off: Vec<(i32, i32)> = vec![(0, 0), (-1, 2), (-2, 0)];
        assert!((residual_drift(&off, &truth) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "image dimensions differ")]
    fn psnr_panics_on_dimension_mismatch() {
        let a = SemImage::filled(8, 8, 100.0);
        let b = SemImage::filled(8, 9, 100.0);
        psnr(&a, &b);
    }

    #[test]
    fn residual_drift_of_empty_corrections_is_zero() {
        let truth = DriftTruth {
            shifts: vec![(5, -3)],
            brightness: vec![0.0],
        };
        assert_eq!(residual_drift(&[], &truth), 0.0);
    }

    #[test]
    fn voxel_accuracy_compares_only_common_extent() {
        // truth is larger than the reconstruction along every axis; the
        // extra planes must not count against (or for) the accuracy.
        let truth = MaterialVolume::new(6, 6, 6, 5.0, LayerStack::default_dram());
        let mut recon = MaterialVolume::new(4, 5, 3, 5.0, LayerStack::default_dram());
        assert_eq!(voxel_accuracy(&recon, &truth), 1.0);
        // One mismatched voxel inside the common extent changes exactly
        // 1/(4*5*3) of the score.
        recon.set(0, 0, 0, Material::Metal1);
        let expected = 1.0 - 1.0 / (4.0 * 5.0 * 3.0);
        assert!((voxel_accuracy(&recon, &truth) - expected).abs() < 1e-12);
    }

    #[test]
    fn alignment_budget_matches_paper_ratio() {
        // 130x ratio: a 30 nm wire in a ~3.9 µm slice.
        assert!((alignment_budget_px(130) - 1.0).abs() < 0.01);
    }
}
