//! Rebuilding a material volume from a processed image stack.
//!
//! This is the final step of the paper's Challenge C1: after denoising and
//! alignment, the cross-section stack becomes a 3-D reconstruction whose
//! planar slices drive the circuit reverse engineering (Fig. 7). Pixels are
//! classified to the nearest material intensity for the detector used.

use crate::sem::{DetectorKind, ImageStack};
use hifi_geometry::LayerStack;
use hifi_synth::{Material, MaterialVolume};

/// Classifies one intensity into the nearest material mean for a detector.
pub fn classify_pixel(intensity: f32, detector: DetectorKind) -> Material {
    let mut best = Material::Oxide;
    let mut best_d = f64::INFINITY;
    for m in Material::ALL {
        let mean = match detector {
            DetectorKind::Se => m.se_intensity(),
            DetectorKind::Bse => m.bse_intensity(),
        };
        let d = (intensity as f64 - mean).abs();
        if d < best_d {
            best_d = d;
            best = m;
        }
    }
    best
}

/// Reconstructs a material volume from a (denoised, aligned) stack.
///
/// Each slice becomes `slice_voxels` planes along X (nearest-neighbour
/// interpolation between FIB cuts, as in any serial-sectioning
/// reconstruction).
///
/// # Panics
///
/// Panics if the stack is empty.
pub fn reconstruct(stack: &ImageStack) -> MaterialVolume {
    assert!(!stack.is_empty(), "cannot reconstruct an empty stack");
    reconstruct_slab(stack, 0, stack.len())
}

/// Reconstructs only slices `[lo, hi)` of the stack into a volume slab of
/// `(hi − lo) · slice_voxels` planes along X — bit-identical to the same
/// x-slab of a full [`reconstruct`]. Classification is purely per-pixel,
/// so a streaming consumer can reconstruct, consume and drop one slab at
/// a time with O(slab) peak memory.
///
/// # Panics
///
/// Panics if the range is empty or out of bounds.
pub fn reconstruct_slab(stack: &ImageStack, lo: usize, hi: usize) -> MaterialVolume {
    assert!(
        lo < hi && hi <= stack.len(),
        "slab [{lo}, {hi}) out of range for {} slices",
        stack.len()
    );
    let margin = stack.frame_margin_px();
    let (py, pz) = stack.slice(lo).dims();
    let (ny, nz) = (py - 2 * margin, pz - 2 * margin);
    let step = stack.slice_voxels().max(1);
    let nx = (hi - lo) * step;
    let mut vol = MaterialVolume::new(nx, ny, nz, stack.pixel_nm(), LayerStack::default_dram());
    for (i, slice) in stack.slices()[lo..hi].iter().enumerate() {
        for z in 0..nz {
            for y in 0..ny {
                let m = classify_pixel(slice.get(y + margin, z + margin), stack.detector());
                if m != Material::Oxide {
                    for dx in 0..step {
                        vol.set(i * step + dx, y, z, m);
                    }
                }
            }
        }
    }
    vol
}

/// [`reconstruct`] assembled tile-by-tile, `tile_slices` slices per slab —
/// bit-identical to the monolithic reconstruction.
///
/// # Panics
///
/// Panics if the stack is empty or `tile_slices` is zero.
pub fn reconstruct_tiled(stack: &ImageStack, tile_slices: usize) -> MaterialVolume {
    assert!(!stack.is_empty(), "cannot reconstruct an empty stack");
    assert!(tile_slices > 0, "tile must hold at least one slice");
    let margin = stack.frame_margin_px();
    let (py, pz) = stack.slice(0).dims();
    let (ny, nz) = (py - 2 * margin, pz - 2 * margin);
    let step = stack.slice_voxels().max(1);
    let mut vol = MaterialVolume::new(
        stack.len() * step,
        ny,
        nz,
        stack.pixel_nm(),
        LayerStack::default_dram(),
    );
    let mut lo = 0usize;
    while lo < stack.len() {
        let hi = (lo + tile_slices).min(stack.len());
        vol.write_slab_x(lo * step, &reconstruct_slab(stack, lo, hi));
        lo = hi;
    }
    vol
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::align::{align, AlignMethod};
    use crate::denoise::denoise;
    use crate::sem::{acquire, ImagingConfig};

    fn volume() -> MaterialVolume {
        let mut v = MaterialVolume::new(12, 40, 30, 5.0, LayerStack::default_dram());
        v.fill_box(0, 12, 10, 16, 20, 24, hifi_synth::Material::Metal1, true);
        v.fill_box(0, 12, 24, 32, 0, 6, hifi_synth::Material::ActiveSi, true);
        v.fill_box(2, 9, 5, 8, 8, 11, hifi_synth::Material::GatePoly, true);
        v
    }

    #[test]
    fn classification_recovers_exact_means() {
        for m in Material::ALL {
            assert_eq!(classify_pixel(m.se_intensity() as f32, DetectorKind::Se), m);
            assert_eq!(
                classify_pixel(m.bse_intensity() as f32, DetectorKind::Bse),
                m
            );
        }
    }

    fn voxel_accuracy(reconstructed: &MaterialVolume, truth: &MaterialVolume) -> f64 {
        let (nx, ny, nz) = truth.dims();
        let mut same = 0usize;
        let mut total = 0usize;
        for z in 0..nz {
            for y in 0..ny {
                for x in 0..nx.min(reconstructed.dims().0) {
                    total += 1;
                    if reconstructed.get(x, y, z) == truth.get(x, y, z) {
                        same += 1;
                    }
                }
            }
        }
        same as f64 / total as f64
    }

    #[test]
    fn noiseless_reconstruction_is_exact() {
        let v = volume();
        let cfg = ImagingConfig {
            dwell_us: 1e9,
            drift_sigma_px: 0.0,
            brightness_wander: 0.0,
            ..ImagingConfig::default()
        };
        let (stack, _) = acquire(&v, &cfg);
        let r = reconstruct(&stack);
        assert!(voxel_accuracy(&r, &v) > 0.999);
    }

    #[test]
    fn full_pipeline_recovers_noisy_drifted_stack() {
        let v = volume();
        let cfg = ImagingConfig {
            dwell_us: 6.0,
            drift_sigma_px: 0.8,
            brightness_wander: 1.0,
            seed: 1234,
            ..ImagingConfig::default()
        };
        let (mut stack, _) = acquire(&v, &cfg);
        stack.normalize_brightness();
        denoise(&mut stack, 8.0, 25);
        align(&mut stack, AlignMethod::MutualInformation, 4);
        let r = reconstruct(&stack);
        let acc = voxel_accuracy(&r, &v);
        assert!(acc > 0.93, "pipeline voxel accuracy {acc}");
    }

    #[test]
    fn skipping_alignment_hurts_accuracy() {
        let v = volume();
        let cfg = ImagingConfig {
            dwell_us: 50.0,
            drift_sigma_px: 1.2,
            brightness_wander: 0.0,
            seed: 77,
            ..ImagingConfig::default()
        };
        let (stack_raw, _) = acquire(&v, &cfg);
        let mut stack_aligned = stack_raw.clone();
        align(&mut stack_aligned, AlignMethod::MutualInformation, 5);
        let acc_raw = voxel_accuracy(&reconstruct(&stack_raw), &v);
        let acc_aligned = voxel_accuracy(&reconstruct(&stack_aligned), &v);
        assert!(
            acc_aligned > acc_raw,
            "alignment must help: {acc_raw} vs {acc_aligned}"
        );
    }

    #[test]
    fn tiled_reconstruction_matches_monolithic() {
        let v = volume();
        let cfg = ImagingConfig {
            dwell_us: 6.0,
            drift_sigma_px: 0.8,
            brightness_wander: 1.0,
            seed: 99,
            slice_voxels: 3,
            ..ImagingConfig::default()
        };
        let (stack, _) = acquire(&v, &cfg);
        let full = reconstruct(&stack);
        let step = stack.slice_voxels();
        for tile in [1, 2, 3, stack.len() - 1, stack.len(), stack.len() + 4] {
            let tiled = reconstruct_tiled(&stack, tile);
            assert_eq!(tiled.dims(), full.dims(), "tile {tile}");
            assert_eq!(tiled.raw_voxels(), full.raw_voxels(), "tile {tile}");
        }
        // Each slab in isolation equals the matching x-range of the full volume.
        for (lo, hi) in [(0, 1), (1, 3), (0, stack.len()), (2, stack.len())] {
            let slab = reconstruct_slab(&stack, lo, hi);
            let crop = full.crop(lo * step, hi * step, 0, full.dims().1);
            assert_eq!(slab.raw_voxels(), crop.raw_voxels(), "slab [{lo}, {hi})");
        }
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_stack_rejected() {
        let stack = ImageStack::from_slices(vec![], 5.0, 1, DetectorKind::Bse);
        let _ = reconstruct(&stack);
    }
}
