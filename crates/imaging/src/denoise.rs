//! Total-variation denoising (Chambolle's dual projection algorithm).
//!
//! The paper filters every cross-section with an edge-preserving
//! total-variation denoiser (split-Bregman or Chambolle) before alignment
//! (Section IV-C). We implement Chambolle (2004): minimise
//! `‖u − f‖² / (2λ) + TV(u)` by projected gradient on the dual variable.

use crate::sem::{ImageStack, SemImage};

/// Denoises one image with Chambolle's algorithm.
///
/// `lambda` balances fidelity against smoothing (larger = smoother);
/// `iterations` of the dual update with the standard step 0.25.
///
/// # Panics
///
/// Panics if `lambda` is not positive.
pub fn chambolle_tv(image: &SemImage, lambda: f32, iterations: usize) -> SemImage {
    assert!(lambda > 0.0, "lambda must be positive");
    let (ny, nz) = image.dims();
    let n = ny * nz;
    // Dual field p = (p1, p2).
    let mut p1 = vec![0.0f32; n];
    let mut p2 = vec![0.0f32; n];
    let mut div = vec![0.0f32; n];
    let idx = |y: usize, z: usize| z * ny + y;
    let tau = 0.25f32;

    for _ in 0..iterations {
        // div p
        for z in 0..nz {
            for y in 0..ny {
                let i = idx(y, z);
                let a = p1[i] - if y > 0 { p1[idx(y - 1, z)] } else { 0.0 };
                let b = p2[i] - if z > 0 { p2[idx(y, z - 1)] } else { 0.0 };
                div[i] = a + b;
            }
        }
        // u = f − λ div p ; grad u ; dual ascent with reprojection.
        for z in 0..nz {
            for y in 0..ny {
                let i = idx(y, z);
                let u = |yy: usize, zz: usize| {
                    let j = idx(yy, zz);
                    image.get(yy, zz) - lambda * div[j]
                };
                let here = u(y, z);
                let gx = if y + 1 < ny { u(y + 1, z) - here } else { 0.0 };
                let gy = if z + 1 < nz { u(y, z + 1) - here } else { 0.0 };
                // Chambolle's dual ascent: with u = f − λ·div p, the update
                // direction is ∇(div p − f/λ) = −∇u/λ, followed by the
                // semi-implicit reprojection 1 + τ|g|.
                let g1 = -gx / lambda;
                let g2 = -gy / lambda;
                let denom = 1.0 + tau * (g1 * g1 + g2 * g2).sqrt();
                p1[i] = (p1[i] + tau * g1) / denom;
                p2[i] = (p2[i] + tau * g2) / denom;
            }
        }
    }
    // Final primal: u = f − λ div p.
    for z in 0..nz {
        for y in 0..ny {
            let i = idx(y, z);
            let a = p1[i] - if y > 0 { p1[idx(y - 1, z)] } else { 0.0 };
            let b = p2[i] - if z > 0 { p2[idx(y, z - 1)] } else { 0.0 };
            div[i] = a + b;
        }
    }
    let mut out = image.clone();
    for z in 0..nz {
        for y in 0..ny {
            let v = image.get(y, z) - lambda * div[idx(y, z)];
            out.set(y, z, v);
        }
    }
    out
}

/// 3×3 median filter — the edge-preserving prefilter of the pipeline.
///
/// Unlike total variation, the median does not shrink the amplitude of
/// small bright features (the SA region's wires are only 2–4 pixels wide in
/// cross-section), while suppressing shot noise by ≈3×. Borders use the
/// clamped neighbourhood.
pub fn median3x3(image: &SemImage) -> SemImage {
    let (ny, nz) = image.dims();
    let mut out = image.clone();
    let mut window = [0.0f32; 9];
    for z in 0..nz {
        for y in 0..ny {
            let mut n = 0;
            for dz in -1i32..=1 {
                for dy in -1i32..=1 {
                    let (py, pz) = (y as i32 + dy, z as i32 + dz);
                    if py >= 0 && py < ny as i32 && pz >= 0 && pz < nz as i32 {
                        window[n] = image.get(py as usize, pz as usize);
                        n += 1;
                    }
                }
            }
            // An order statistic, not the true median: the filter must
            // only emit values present in the neighbourhood. `total_cmp`
            // keeps a stray NaN pixel (sorted last) from aborting the run.
            window[..n].sort_by(f32::total_cmp);
            out.set(y, z, window[n / 2]);
        }
    }
    out
}

/// Denoises every slice of a stack in place with Chambolle TV. Keep `lambda`
/// small (≈2) on SA-region stacks: wires are only 2–4 pixels across and
/// stronger TV shrinks their amplitude below the classification margins.
///
/// Slices are independent, so they are denoised in parallel; each slice is
/// transformed purely from its own pixels, making the result bit-identical
/// at any thread count.
pub fn denoise(stack: &mut ImageStack, lambda: f32, iterations: usize) {
    denoise_profiled(stack, lambda, iterations, None);
}

/// [`denoise`] with optional per-slice lane profiling: when `lanes` is
/// set, each slice's TV pass is timed as a `denoise.slice` span on the
/// worker lane that executed it.
pub fn denoise_profiled(
    stack: &mut ImageStack,
    lambda: f32,
    iterations: usize,
    lanes: Option<&hifi_telemetry::LaneProfiler>,
) {
    rayon::par_chunks_mut(stack.slices_mut(), |chunk| {
        for s in chunk {
            *s = match lanes {
                Some(l) => l.time(
                    "denoise.slice",
                    rayon::current_thread_index() as u32,
                    || chambolle_tv(s, lambda, iterations),
                ),
                None => chambolle_tv(s, lambda, iterations),
            };
        }
    });
}

/// Averages each slice with its neighbours along the milling direction
/// (window `i−radius ..= i+radius`, clamped at the stack ends). Structures
/// extend across consecutive slices, so this cuts shot noise by ≈√(2r+1)
/// with **no in-plane erosion** — run it *after* alignment.
pub fn average_slices(stack: &mut ImageStack, radius: usize) {
    if radius == 0 || stack.len() < 2 {
        return;
    }
    let n = stack.len();
    let originals: Vec<SemImage> = stack.slices().to_vec();
    for i in 0..n {
        let lo = i.saturating_sub(radius);
        let hi = (i + radius).min(n - 1);
        let count = (hi - lo + 1) as f32;
        let out = stack.slices_mut()[i].pixels_mut();
        for (p, v) in out.iter_mut().enumerate() {
            let mut acc = 0.0f32;
            for s in &originals[lo..=hi] {
                acc += s.pixels()[p];
            }
            *v = acc / count;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// A step-edge image with additive noise.
    fn noisy_step(sigma: f32, seed: u64) -> (SemImage, SemImage) {
        let (ny, nz) = (40, 30);
        let mut clean = SemImage::filled(ny, nz, 30.0);
        for z in 0..nz {
            for y in 20..ny {
                clean.set(y, z, 200.0);
            }
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let mut noisy = clean.clone();
        for p in noisy.pixels_mut() {
            // Uniform noise is fine for this test.
            *p += rng.gen_range(-sigma..sigma);
        }
        (clean, noisy)
    }

    fn mse(a: &SemImage, b: &SemImage) -> f32 {
        let n = a.pixels().len() as f32;
        a.pixels()
            .iter()
            .zip(b.pixels())
            .map(|(x, y)| (x - y) * (x - y))
            .sum::<f32>()
            / n
    }

    #[test]
    fn denoising_reduces_error_against_clean_image() {
        let (clean, noisy) = noisy_step(25.0, 7);
        let den = chambolle_tv(&noisy, 12.0, 30);
        let before = mse(&clean, &noisy);
        let after = mse(&clean, &den);
        assert!(
            after < before * 0.5,
            "denoise should halve the MSE: {before} -> {after}"
        );
    }

    #[test]
    fn edges_are_preserved() {
        let (_, noisy) = noisy_step(20.0, 11);
        let den = chambolle_tv(&noisy, 10.0, 30);
        // The step at y=20 must survive: strong contrast across the edge.
        let left: f32 = (0..30).map(|z| den.get(18, z)).sum::<f32>() / 30.0;
        let right: f32 = (0..30).map(|z| den.get(22, z)).sum::<f32>() / 30.0;
        assert!(right - left > 120.0, "edge contrast {left} vs {right}");
    }

    #[test]
    fn constant_image_is_fixed_point() {
        let img = SemImage::filled(10, 10, 55.0);
        let den = chambolle_tv(&img, 10.0, 15);
        for (a, b) in img.pixels().iter().zip(den.pixels()) {
            assert!((a - b).abs() < 1e-3);
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn non_positive_lambda_rejected() {
        let img = SemImage::filled(4, 4, 0.0);
        let _ = chambolle_tv(&img, 0.0, 5);
    }
}
