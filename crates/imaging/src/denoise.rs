//! Total-variation denoising (Chambolle's dual projection algorithm).
//!
//! The paper filters every cross-section with an edge-preserving
//! total-variation denoiser (split-Bregman or Chambolle) before alignment
//! (Section IV-C). We implement Chambolle (2004): minimise
//! `‖u − f‖² / (2λ) + TV(u)` by projected gradient on the dual variable.

use crate::sem::{ImageStack, SemImage};

/// Denoises one image with Chambolle's algorithm.
///
/// `lambda` balances fidelity against smoothing (larger = smoother);
/// `iterations` of the dual update with the standard step 0.25.
///
/// # Panics
///
/// Panics if `lambda` is not positive.
pub fn chambolle_tv(image: &SemImage, lambda: f32, iterations: usize) -> SemImage {
    let mut scratch = TvScratch::default();
    chambolle_tv_with(image, lambda, iterations, &mut scratch)
}

/// Reusable working buffers for [`chambolle_tv_with`]: the dual field
/// `(p1, p2)`, its divergence, and the materialized primal `u`. Denoising a
/// stack slice-by-slice through one `TvScratch` performs no per-slice
/// allocation once the buffers reach the slice size.
#[derive(Debug, Default, Clone)]
pub struct TvScratch {
    p1: Vec<f32>,
    p2: Vec<f32>,
    div: Vec<f32>,
    u: Vec<f32>,
}

impl TvScratch {
    fn resize(&mut self, n: usize) {
        for buf in [&mut self.p1, &mut self.p2, &mut self.div, &mut self.u] {
            buf.clear();
            buf.resize(n, 0.0);
        }
    }
}

/// `div p` of the dual field into `div`, row-flat so the inner loops carry
/// no index arithmetic beyond a unit stride (autovectorizer-friendly).
/// Subtracting a literal `0.0` at the `y = 0` / `z = 0` borders is exact,
/// so folding the border case into the expressions below would be
/// bit-identical — it is kept explicit to keep each inner loop flat.
fn divergence(p1: &[f32], p2: &[f32], div: &mut [f32], ny: usize, nz: usize) {
    for z in 0..nz {
        let base = z * ny;
        if z == 0 {
            div[0] = p1[0] + p2[0];
            for y in 1..ny {
                let i = base + y;
                div[i] = (p1[i] - p1[i - 1]) + p2[i];
            }
        } else {
            div[base] = p1[base] + (p2[base] - p2[base - ny]);
            for y in 1..ny {
                let i = base + y;
                div[i] = (p1[i] - p1[i - 1]) + (p2[i] - p2[i - ny]);
            }
        }
    }
}

/// One dual-ascent step at pixel `i` given the forward gradient of `u`.
/// With u = f − λ·div p, the update direction is ∇(div p − f/λ) = −∇u/λ,
/// followed by the semi-implicit reprojection 1 + τ|g|.
#[inline(always)]
fn dual_step(p1: &mut [f32], p2: &mut [f32], i: usize, gx: f32, gy: f32, lambda: f32, tau: f32) {
    let g1 = -gx / lambda;
    let g2 = -gy / lambda;
    let denom = 1.0 + tau * (g1 * g1 + g2 * g2).sqrt();
    p1[i] = (p1[i] + tau * g1) / denom;
    p2[i] = (p2[i] + tau * g2) / denom;
}

/// [`chambolle_tv`] against caller-owned scratch buffers, so tiled and
/// per-stack denoising reuse one arena across slices.
///
/// The primal `u = f − λ·div p` is materialized once per dual iteration
/// into `scratch.u` — the dual ascent reads each value three times (here /
/// right / down), and recomputing it through a closure tripled the
/// multiply-subtract work of the hottest loop in the pipeline. Every value
/// is produced by the same arithmetic expression as the scalar reference,
/// so the result is bit-identical (pinned by `matches_scalar_reference`).
pub fn chambolle_tv_with(
    image: &SemImage,
    lambda: f32,
    iterations: usize,
    scratch: &mut TvScratch,
) -> SemImage {
    assert!(lambda > 0.0, "lambda must be positive");
    let (ny, nz) = image.dims();
    let n = ny * nz;
    if n == 0 {
        return image.clone();
    }
    scratch.resize(n);
    let TvScratch { p1, p2, div, u } = scratch;
    let f = image.pixels();
    let tau = 0.25f32;

    for _ in 0..iterations {
        divergence(p1, p2, div, ny, nz);
        // u = f − λ·div p, materialized once for the whole image.
        for i in 0..n {
            u[i] = f[i] - lambda * div[i];
        }
        // Dual ascent, row-flat with the borders peeled off so the hot
        // interior loop is branch-free over contiguous f32 lanes.
        for z in 0..nz {
            let base = z * ny;
            if z + 1 < nz {
                for y in 0..ny - 1 {
                    let i = base + y;
                    let here = u[i];
                    dual_step(p1, p2, i, u[i + 1] - here, u[i + ny] - here, lambda, tau);
                }
                let i = base + ny - 1;
                dual_step(p1, p2, i, 0.0, u[i + ny] - u[i], lambda, tau);
            } else {
                for y in 0..ny - 1 {
                    let i = base + y;
                    dual_step(p1, p2, i, u[i + 1] - u[i], 0.0, lambda, tau);
                }
                dual_step(p1, p2, base + ny - 1, 0.0, 0.0, lambda, tau);
            }
        }
    }
    // Final primal: u = f − λ div p.
    divergence(p1, p2, div, ny, nz);
    let mut out = image.clone();
    let pixels = out.pixels_mut();
    for i in 0..n {
        pixels[i] = f[i] - lambda * div[i];
    }
    out
}

/// 3×3 median filter — the edge-preserving prefilter of the pipeline.
///
/// Unlike total variation, the median does not shrink the amplitude of
/// small bright features (the SA region's wires are only 2–4 pixels wide in
/// cross-section), while suppressing shot noise by ≈3×. Borders use the
/// clamped neighbourhood.
pub fn median3x3(image: &SemImage) -> SemImage {
    let (ny, nz) = image.dims();
    let mut out = image.clone();
    let mut window = [0.0f32; 9];
    for z in 0..nz {
        for y in 0..ny {
            let mut n = 0;
            for dz in -1i32..=1 {
                for dy in -1i32..=1 {
                    let (py, pz) = (y as i32 + dy, z as i32 + dz);
                    if py >= 0 && py < ny as i32 && pz >= 0 && pz < nz as i32 {
                        window[n] = image.get(py as usize, pz as usize);
                        n += 1;
                    }
                }
            }
            // An order statistic, not the true median: the filter must
            // only emit values present in the neighbourhood. `total_cmp`
            // keeps a stray NaN pixel (sorted last) from aborting the run.
            window[..n].sort_by(f32::total_cmp);
            out.set(y, z, window[n / 2]);
        }
    }
    out
}

/// Denoises every slice of a stack in place with Chambolle TV. Keep `lambda`
/// small (≈2) on SA-region stacks: wires are only 2–4 pixels across and
/// stronger TV shrinks their amplitude below the classification margins.
///
/// Slices are independent, so they are denoised in parallel; each slice is
/// transformed purely from its own pixels, making the result bit-identical
/// at any thread count.
pub fn denoise(stack: &mut ImageStack, lambda: f32, iterations: usize) {
    denoise_profiled(stack, lambda, iterations, None);
}

/// [`denoise`] with optional per-slice lane profiling: when `lanes` is
/// set, each slice's TV pass is timed as a `denoise.slice` span on the
/// worker lane that executed it.
pub fn denoise_profiled(
    stack: &mut ImageStack,
    lambda: f32,
    iterations: usize,
    lanes: Option<&hifi_telemetry::LaneProfiler>,
) {
    rayon::par_chunks_mut(stack.slices_mut(), |chunk| {
        // One scratch arena per worker chunk: slices within a chunk reuse
        // the same dual-field and primal buffers.
        let mut scratch = TvScratch::default();
        for s in chunk {
            *s = match lanes {
                Some(l) => l.time(
                    "denoise.slice",
                    rayon::current_thread_index() as u32,
                    || chambolle_tv_with(s, lambda, iterations, &mut scratch),
                ),
                None => chambolle_tv_with(s, lambda, iterations, &mut scratch),
            };
        }
    });
}

/// Averages each slice with its neighbours along the milling direction
/// (window `i−radius ..= i+radius`, clamped at the stack ends). Structures
/// extend across consecutive slices, so this cuts shot noise by ≈√(2r+1)
/// with **no in-plane erosion** — run it *after* alignment.
pub fn average_slices(stack: &mut ImageStack, radius: usize) {
    if radius == 0 || stack.len() < 2 {
        return;
    }
    let n = stack.len();
    let originals: Vec<SemImage> = stack.slices().to_vec();
    for i in 0..n {
        let lo = i.saturating_sub(radius);
        let hi = (i + radius).min(n - 1);
        let count = (hi - lo + 1) as f32;
        let out = stack.slices_mut()[i].pixels_mut();
        for (p, v) in out.iter_mut().enumerate() {
            let mut acc = 0.0f32;
            for s in &originals[lo..=hi] {
                acc += s.pixels()[p];
            }
            *v = acc / count;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// The original scalar implementation, kept verbatim as the reference
    /// for the buffer-reusing row-flat kernel: nested `(y, z)` loops and a
    /// closure that recomputes `u = f − λ·div p` at every access.
    fn chambolle_tv_reference(image: &SemImage, lambda: f32, iterations: usize) -> SemImage {
        assert!(lambda > 0.0, "lambda must be positive");
        let (ny, nz) = image.dims();
        let n = ny * nz;
        let mut p1 = vec![0.0f32; n];
        let mut p2 = vec![0.0f32; n];
        let mut div = vec![0.0f32; n];
        let idx = |y: usize, z: usize| z * ny + y;
        let tau = 0.25f32;
        for _ in 0..iterations {
            for z in 0..nz {
                for y in 0..ny {
                    let i = idx(y, z);
                    let a = p1[i] - if y > 0 { p1[idx(y - 1, z)] } else { 0.0 };
                    let b = p2[i] - if z > 0 { p2[idx(y, z - 1)] } else { 0.0 };
                    div[i] = a + b;
                }
            }
            for z in 0..nz {
                for y in 0..ny {
                    let i = idx(y, z);
                    let u = |yy: usize, zz: usize| {
                        let j = idx(yy, zz);
                        image.get(yy, zz) - lambda * div[j]
                    };
                    let here = u(y, z);
                    let gx = if y + 1 < ny { u(y + 1, z) - here } else { 0.0 };
                    let gy = if z + 1 < nz { u(y, z + 1) - here } else { 0.0 };
                    let g1 = -gx / lambda;
                    let g2 = -gy / lambda;
                    let denom = 1.0 + tau * (g1 * g1 + g2 * g2).sqrt();
                    p1[i] = (p1[i] + tau * g1) / denom;
                    p2[i] = (p2[i] + tau * g2) / denom;
                }
            }
        }
        for z in 0..nz {
            for y in 0..ny {
                let i = idx(y, z);
                let a = p1[i] - if y > 0 { p1[idx(y - 1, z)] } else { 0.0 };
                let b = p2[i] - if z > 0 { p2[idx(y, z - 1)] } else { 0.0 };
                div[i] = a + b;
            }
        }
        let mut out = image.clone();
        for z in 0..nz {
            for y in 0..ny {
                let v = image.get(y, z) - lambda * div[idx(y, z)];
                out.set(y, z, v);
            }
        }
        out
    }

    fn assert_bits_equal(a: &SemImage, b: &SemImage, what: &str) {
        let ab: Vec<u32> = a.pixels().iter().map(|p| p.to_bits()).collect();
        let bb: Vec<u32> = b.pixels().iter().map(|p| p.to_bits()).collect();
        assert_eq!(ab, bb, "{what}");
    }

    /// The regression test for the materialized-`u` kernel: bit-identical
    /// to the scalar closure-based reference on noisy data, odd dims and
    /// single-row/column edge shapes.
    #[test]
    fn matches_scalar_reference() {
        let (_, noisy) = noisy_step(25.0, 3);
        for &(lambda, iters) in &[(2.0f32, 10usize), (12.0, 30), (0.7, 5)] {
            assert_bits_equal(
                &chambolle_tv(&noisy, lambda, iters),
                &chambolle_tv_reference(&noisy, lambda, iters),
                &format!("lambda {lambda} iters {iters}"),
            );
        }
        for &(ny, nz) in &[(1usize, 7usize), (7, 1), (1, 1), (5, 3)] {
            let mut img = SemImage::filled(ny, nz, 10.0);
            let mut rng = StdRng::seed_from_u64(9);
            for p in img.pixels_mut() {
                *p += rng.gen_range(-30.0..30.0) as f32;
            }
            assert_bits_equal(
                &chambolle_tv(&img, 4.0, 12),
                &chambolle_tv_reference(&img, 4.0, 12),
                &format!("dims ({ny}, {nz})"),
            );
        }
    }

    /// Scratch reuse across differently-sized and differently-valued
    /// slices must not leak state between calls.
    #[test]
    fn scratch_reuse_is_stateless() {
        let (_, a) = noisy_step(20.0, 5);
        let mut small = SemImage::filled(9, 6, 70.0);
        small.set(4, 3, 200.0);
        let mut scratch = TvScratch::default();
        let first = chambolle_tv_with(&a, 3.0, 8, &mut scratch);
        let shrunk = chambolle_tv_with(&small, 3.0, 8, &mut scratch);
        let again = chambolle_tv_with(&a, 3.0, 8, &mut scratch);
        assert_bits_equal(&first, &again, "same input through reused scratch");
        assert_bits_equal(&shrunk, &chambolle_tv(&small, 3.0, 8), "shrunk slice");
    }

    /// The stack-level kernel must stay bit-identical to per-slice scalar
    /// reference runs at 1, 2 and 8 threads (chunk boundaries move, the
    /// pixels must not).
    #[test]
    fn stack_denoise_matches_reference_across_thread_counts() {
        let slices: Vec<SemImage> = (0..7).map(|s| noisy_step(22.0, 40 + s).1).collect();
        let reference: Vec<SemImage> = slices
            .iter()
            .map(|s| chambolle_tv_reference(s, 2.0, 10))
            .collect();
        for threads in [1usize, 2, 8] {
            let mut stack =
                ImageStack::from_slices(slices.clone(), 5.0, 1, crate::sem::DetectorKind::Bse);
            rayon::with_num_threads(threads, || denoise(&mut stack, 2.0, 10));
            for (i, (got, want)) in stack.slices().iter().zip(&reference).enumerate() {
                assert_bits_equal(got, want, &format!("slice {i} @ {threads} threads"));
            }
        }
    }

    /// A step-edge image with additive noise.
    fn noisy_step(sigma: f32, seed: u64) -> (SemImage, SemImage) {
        let (ny, nz) = (40, 30);
        let mut clean = SemImage::filled(ny, nz, 30.0);
        for z in 0..nz {
            for y in 20..ny {
                clean.set(y, z, 200.0);
            }
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let mut noisy = clean.clone();
        for p in noisy.pixels_mut() {
            // Uniform noise is fine for this test.
            *p += rng.gen_range(-sigma..sigma);
        }
        (clean, noisy)
    }

    fn mse(a: &SemImage, b: &SemImage) -> f32 {
        let n = a.pixels().len() as f32;
        a.pixels()
            .iter()
            .zip(b.pixels())
            .map(|(x, y)| (x - y) * (x - y))
            .sum::<f32>()
            / n
    }

    #[test]
    fn denoising_reduces_error_against_clean_image() {
        let (clean, noisy) = noisy_step(25.0, 7);
        let den = chambolle_tv(&noisy, 12.0, 30);
        let before = mse(&clean, &noisy);
        let after = mse(&clean, &den);
        assert!(
            after < before * 0.5,
            "denoise should halve the MSE: {before} -> {after}"
        );
    }

    #[test]
    fn edges_are_preserved() {
        let (_, noisy) = noisy_step(20.0, 11);
        let den = chambolle_tv(&noisy, 10.0, 30);
        // The step at y=20 must survive: strong contrast across the edge.
        let left: f32 = (0..30).map(|z| den.get(18, z)).sum::<f32>() / 30.0;
        let right: f32 = (0..30).map(|z| den.get(22, z)).sum::<f32>() / 30.0;
        assert!(right - left > 120.0, "edge contrast {left} vs {right}");
    }

    #[test]
    fn constant_image_is_fixed_point() {
        let img = SemImage::filled(10, 10, 55.0);
        let den = chambolle_tv(&img, 10.0, 15);
        for (a, b) in img.pixels().iter().zip(den.pixels()) {
            assert!((a - b).abs() < 1e-3);
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn non_positive_lambda_rejected() {
        let img = SemImage::filled(4, 4, 0.0);
        let _ = chambolle_tv(&img, 0.0, 5);
    }
}
