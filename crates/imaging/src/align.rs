//! Slice alignment: each slice registered against the previous one.
//!
//! Section IV-C: "we align the slices using the mutual-information algorithm
//! of Dragonfly. In particular, each slide is aligned with respect to the
//! previous one." Wire heights can be 30 nm against ~4 µm cross-sections, so
//! residual misalignment must stay below 0.77% of the slice.

use crate::sem::{ImageStack, SemImage};
use hifi_telemetry::{names, NoopRecorder, Recorder};
use std::time::Instant;

/// Similarity metric used for registration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlignMethod {
    /// Mutual information over a 32-bin joint histogram (the paper's
    /// method; robust to brightness offsets between slices).
    MutualInformation,
    /// Negative sum of squared differences (cheaper; brightness-sensitive).
    SquaredDifference,
}

const BINS: usize = 32;

/// `(min, max)` of an image's pixels. `f32::min`/`max` ignore NaN pixels
/// rather than poisoning the range.
fn pixel_range(img: &SemImage) -> (f32, f32) {
    img.pixels()
        .iter()
        .fold((f32::INFINITY, f32::NEG_INFINITY), |(lo, hi), &v| {
            (lo.min(v), hi.max(v))
        })
}

/// Histogram bin of intensity `v` under a `[lo, hi)` range; a constant (or
/// all-NaN) image degenerates to a single bin.
#[inline(always)]
fn bin(v: f32, lo: f32, hi: f32) -> usize {
    let width = hi - lo;
    if width.is_nan() || width <= 0.0 {
        return 0;
    }
    (((v - lo) / width * BINS as f32).floor() as i32).clamp(0, BINS as i32 - 1) as usize
}

/// Mutual information of the overlap of `a` and `b` shifted by `(dy, dz)`.
///
/// Each image's bin range is derived from its observed intensities instead
/// of the old fixed [0, 256): low-contrast BSE stacks collapsed into a
/// handful of bins and degraded registration, and per-image ranges make MI
/// exactly invariant to per-slice brightness offsets. The range spans the
/// *whole* image rather than the candidate overlap so the bin edges stay
/// identical across the offset search — per-overlap edges jitter as
/// outlier pixels enter and leave the overlap, putting spurious maxima
/// into the MI surface. Because the ranges are offset-independent, the
/// caller computes them once per image ([`pixel_range`]) and the offset
/// search no longer rescans both full images per candidate.
///
/// The joint-histogram fill is row-blocked: the overlapping `y` interval
/// is resolved once per `z` row and the fill then walks two contiguous
/// `f32` rows, instead of bounds-branching per pixel.
fn mutual_information(
    a: &SemImage,
    b: &SemImage,
    range_a: (f32, f32),
    range_b: (f32, f32),
    dy: i32,
    dz: i32,
) -> f64 {
    let (ny, nz) = a.dims();
    let mut joint = [[0u32; BINS]; BINS];
    let mut count = 0u32;
    let (min_a, max_a) = range_a;
    let (min_b, max_b) = range_b;
    // Overlapping y interval in a's frame: 0 <= y < ny and 0 <= y + dy < ny.
    let y_lo = 0.max(-dy) as usize;
    let y_hi = ny.min((ny as i32 - dy).max(0) as usize);
    for z in 0..nz {
        let bz = z as i32 + dz;
        if bz < 0 || bz >= nz as i32 || y_lo >= y_hi {
            continue;
        }
        let a_row = &a.pixels()[z * ny + y_lo..z * ny + y_hi];
        let b_base = bz as usize * ny + (y_lo as i32 + dy) as usize;
        let b_row = &b.pixels()[b_base..b_base + (y_hi - y_lo)];
        for (&va, &vb) in a_row.iter().zip(b_row) {
            joint[bin(va, min_a, max_a)][bin(vb, min_b, max_b)] += 1;
        }
        count += (y_hi - y_lo) as u32;
    }
    if count == 0 {
        return f64::NEG_INFINITY;
    }
    let n = count as f64;
    let mut pa = [0.0f64; BINS];
    let mut pb = [0.0f64; BINS];
    for (i, row) in joint.iter().enumerate() {
        for (j, &c) in row.iter().enumerate() {
            let p = c as f64 / n;
            pa[i] += p;
            pb[j] += p;
        }
    }
    let mut mi = 0.0;
    for (i, row) in joint.iter().enumerate() {
        for (j, &c) in row.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let p = c as f64 / n;
            mi += p * (p / (pa[i] * pb[j])).ln();
        }
    }
    mi
}

fn neg_ssd(a: &SemImage, b: &SemImage, dy: i32, dz: i32) -> f64 {
    let (ny, nz) = a.dims();
    let mut acc = 0.0f64;
    let mut count = 0u32;
    for z in 0..nz {
        let bz = z as i32 + dz;
        if bz < 0 || bz >= nz as i32 {
            continue;
        }
        for y in 0..ny {
            let by = y as i32 + dy;
            if by < 0 || by >= ny as i32 {
                continue;
            }
            let d = (a.get(y, z) - b.get(by as usize, bz as usize)) as f64;
            acc += d * d;
            count += 1;
        }
    }
    if count == 0 {
        f64::NEG_INFINITY
    } else {
        -(acc / count as f64)
    }
}

/// Finds the shift of `b` relative to `a` maximising the similarity metric,
/// searching `center ± window` in both axes. A small bias towards the
/// `center` hypothesis suppresses metric jitter on featureless slices.
/// Returns the winning shift and its similarity score.
fn register(
    a: &SemImage,
    b: &SemImage,
    method: AlignMethod,
    window: i32,
    center: (i32, i32),
) -> ((i32, i32), f64) {
    // Hoisted out of the offset search: bin ranges span the whole image,
    // so they are identical for every candidate offset. Recomputing them
    // inside `mutual_information` cost two full-image scans per candidate
    // — O(pixels·window²) redundant work per registered slice.
    let (range_a, range_b) = match method {
        AlignMethod::MutualInformation => (pixel_range(a), pixel_range(b)),
        AlignMethod::SquaredDifference => ((0.0, 0.0), (0.0, 0.0)),
    };
    let score_at = |dy: i32, dz: i32| match method {
        AlignMethod::MutualInformation => mutual_information(a, b, range_a, range_b, dy, dz),
        AlignMethod::SquaredDifference => neg_ssd(a, b, dy, dz),
    };
    let score_c = score_at(center.0, center.1);
    // The (2·window+1)² candidate offsets are scored in parallel; the
    // argmax then scans the scores in the same order the sequential search
    // visited them, with the same strict comparison, so the winning offset
    // is identical at any thread count.
    let mut candidates = Vec::with_capacity((2 * window as usize + 1).pow(2));
    for dz in (center.1 - window)..=(center.1 + window) {
        for dy in (center.0 - window)..=(center.0 + window) {
            if (dy, dz) == center {
                continue;
            }
            candidates.push((dy, dz));
        }
    }
    let scores = rayon::par_map(&candidates, |&(dy, dz)| score_at(dy, dz));
    let mut best = center;
    let mut best_score = score_c;
    for (&(dy, dz), &score) in candidates.iter().zip(&scores) {
        if score > best_score {
            best_score = score;
            best = (dy, dz);
        }
    }
    let margin = 0.002 * score_c.abs().max(1e-6);
    if best != center && best_score < score_c + margin {
        return (center, score_c);
    }
    (best, best_score)
}

/// Aligns every slice into slice 0's frame, mutating the stack in place.
/// Returns the per-slice corrections applied (slice 0 is the reference, so
/// its correction is `(0, 0)`).
///
/// Registration runs against an exponential moving **template** of the
/// already-corrected slices rather than chaining slice-to-slice offsets:
/// sequential chaining turns every ±1 px registration error into a permanent
/// walk of the whole remaining stack, while template registration keeps
/// errors independent. The metric operates on median-filtered copies
/// (registration-only filtering); the slice data itself is not filtered.
pub fn align(stack: &mut ImageStack, method: AlignMethod, window: i32) -> Vec<(i32, i32)> {
    align_with(stack, method, window, &mut NoopRecorder)
}

/// [`align`] with instrumentation: records the registration score and the
/// applied shift magnitude for every slice as gauges
/// (`align.slice_score`, `align.slice_shift_px`), and counts slices whose
/// correction is non-zero (`align.corrected_slices`) next to the total
/// (`align.slices`).
pub fn align_with<R: Recorder>(
    stack: &mut ImageStack,
    method: AlignMethod,
    window: i32,
    rec: &mut R,
) -> Vec<(i32, i32)> {
    let n = stack.len();
    rec.counter("align.slices", n as u64);
    let mut corrections = vec![(0, 0); n];
    if n < 2 {
        return corrections;
    }
    let background = stack.slice(0).median();
    let originals: Vec<SemImage> = stack.slices().to_vec();
    // The registration-only median prefilter is independent per slice.
    let filtered: Vec<SemImage> = rayon::par_map(&originals, crate::denoise::median3x3);
    let (ny, nz) = filtered[0].dims();
    let mut template = filtered[0].clone();
    // Search around the previous slice's drift estimate: per-step drift is
    // small even when the accumulated drift exceeds the window.
    let mut prev_drift = (0i32, 0i32);
    const EMA: f32 = 0.15;
    for i in 1..n {
        let t0 = rec.enabled().then(Instant::now);
        let ((dy, dz), score) = register(&template, &filtered[i], method, window, prev_drift);
        if rec.enabled() {
            rec.gauge("align.slice_score", score);
            rec.gauge("align.slice_shift_px", ((dy * dy + dz * dz) as f64).sqrt());
            if (dy, dz) != (0, 0) {
                rec.counter("align.corrected_slices", 1);
            }
            if let Some(t0) = t0 {
                rec.histogram(names::HIST_ALIGN_SLICE_US, t0.elapsed().as_micros() as u64);
            }
            // Every candidate offset in the ±window square is scored once.
            let iters = (2 * window as u64 + 1).pow(2);
            rec.histogram(names::HIST_ALIGN_SEARCH_ITERS, iters);
        }
        corrections[i] = (-dy, -dz);
        stack.slices_mut()[i] = originals[i].shifted(-dy, -dz, background);
        // Fold the corrected (filtered) slice into the template.
        let corrected_f = filtered[i].shifted(-dy, -dz, background);
        for z in 0..nz {
            for y in 0..ny {
                let t = template.get(y, z);
                template.set(y, z, t * (1.0 - EMA) + corrected_f.get(y, z) * EMA);
            }
        }
        prev_drift = (dy, dz);
    }
    corrections
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sem::{acquire, DetectorKind, ImagingConfig};
    use hifi_geometry::LayerStack;
    use hifi_synth::{Material, MaterialVolume};

    fn structured_volume() -> MaterialVolume {
        let mut v = MaterialVolume::new(16, 48, 40, 5.0, LayerStack::default_dram());
        // A few wires and plugs at varying positions so slices have texture.
        v.fill_box(0, 16, 8, 12, 30, 34, Material::Metal1, true);
        v.fill_box(0, 16, 20, 26, 10, 14, Material::GatePoly, true);
        v.fill_box(0, 16, 36, 44, 20, 28, Material::Contact, true);
        v.fill_box(4, 12, 30, 34, 0, 8, Material::ActiveSi, true);
        v
    }

    fn drifted_config(method_seed: u64) -> ImagingConfig {
        ImagingConfig {
            detector: DetectorKind::Bse,
            dwell_us: 50.0, // low noise so the test isolates drift
            drift_sigma_px: 1.0,
            brightness_wander: 0.0,
            slice_voxels: 1,
            seed: method_seed,
            ..ImagingConfig::default()
        }
    }

    /// Runs alignment against a drifted acquisition and returns the mean
    /// absolute *residual* drift in pixels (corrections vs ground truth).
    fn residual_after(method: AlignMethod) -> f64 {
        let v = structured_volume();
        let (mut stack, truth) = acquire(&v, &drifted_config(42));
        assert!(
            truth.shifts.iter().any(|&(a, b)| a != 0 || b != 0),
            "drift actually happened"
        );
        let corrections = align(&mut stack, method, 4);
        let mut total = 0.0;
        for (c, t) in corrections.iter().zip(&truth.shifts) {
            // A perfect aligner applies the negated ground-truth drift.
            total += ((c.0 + t.0).abs() + (c.1 + t.1).abs()) as f64;
        }
        total / corrections.len() as f64
    }

    #[test]
    fn mutual_information_alignment_recovers_drift() {
        let residual = residual_after(AlignMethod::MutualInformation);
        // Well under one pixel of residual drift on average — far below the
        // paper's 0.77%-of-slice tolerance.
        assert!(residual < 0.5, "mean residual drift {residual} px");
    }

    #[test]
    fn ssd_alignment_also_recovers_drift() {
        let residual = residual_after(AlignMethod::SquaredDifference);
        assert!(residual < 0.5, "mean residual drift {residual} px");
    }

    #[test]
    fn alignment_without_drift_is_a_no_op() {
        let v = structured_volume();
        let mut cfg = drifted_config(1);
        cfg.drift_sigma_px = 0.0;
        cfg.dwell_us = 1e6;
        let (mut stack, _) = acquire(&v, &cfg);
        let before = stack.clone();
        let corrections = align(&mut stack, AlignMethod::MutualInformation, 3);
        assert!(corrections.iter().all(|&c| c == (0, 0)));
        assert_eq!(stack, before);
    }

    #[test]
    fn single_slice_stack_is_reference() {
        let v = structured_volume();
        let mut cfg = drifted_config(1);
        cfg.slice_voxels = 100; // one slice
        let (mut stack, _) = acquire(&v, &cfg);
        assert_eq!(stack.len(), 1);
        let c = align(&mut stack, AlignMethod::MutualInformation, 3);
        assert_eq!(c, vec![(0, 0)]);
    }

    #[test]
    fn mi_is_robust_to_brightness_offsets() {
        // Shift intensities of one image: MI unchanged at the true offset,
        // SSD degraded.
        let v = structured_volume();
        let mut cfg = drifted_config(9);
        cfg.drift_sigma_px = 0.0;
        cfg.dwell_us = 1e6;
        let (stack, _) = acquire(&v, &cfg);
        let a = stack.slice(3).clone();
        let mut b = a.shifted(2, 1, a.median());
        b.add_offset(4.0); // within the same intensity bin: MI unaffected
        let ((dy, dz), score) = register(&a, &b, AlignMethod::MutualInformation, 4, (0, 0));
        assert_eq!((dy, dz), (2, 1));
        assert!(score.is_finite());
    }

    #[test]
    fn mi_recovers_drift_on_low_contrast_stacks() {
        // Compress a slice's intensities into [100, 108] — a low-contrast
        // BSE acquisition. The fixed [0, 256) binning collapsed this into
        // one or two bins; range-adaptive binning must still register the
        // true shift.
        let v = structured_volume();
        let mut cfg = drifted_config(5);
        cfg.drift_sigma_px = 0.0;
        cfg.dwell_us = 1e6;
        let (stack, _) = acquire(&v, &cfg);
        let src = stack.slice(3);
        let (lo, hi) = src
            .pixels()
            .iter()
            .fold((f32::MAX, f32::MIN), |(l, h), &p| (l.min(p), h.max(p)));
        let mut a = src.clone();
        for p in a.pixels_mut() {
            *p = 100.0 + (*p - lo) / (hi - lo) * 8.0;
        }
        let b = a.shifted(2, 1, a.median());
        let ((dy, dz), score) = register(&a, &b, AlignMethod::MutualInformation, 4, (0, 0));
        assert_eq!((dy, dz), (2, 1));
        assert!(score.is_finite());
    }

    #[test]
    fn mi_handles_constant_overlap() {
        // Degenerate case for range-adaptive binning: zero intensity range.
        let a = crate::sem::SemImage::filled(8, 8, 42.0);
        let b = crate::sem::SemImage::filled(8, 8, 42.0);
        let ((dy, dz), score) = register(&a, &b, AlignMethod::MutualInformation, 2, (0, 0));
        assert_eq!((dy, dz), (0, 0));
        assert!(score.is_finite() || score == f64::NEG_INFINITY);
    }

    /// The original MI kernel, kept verbatim as the scalar reference: it
    /// recomputes both images' ranges per call and bounds-branches per
    /// pixel instead of row-blocking the histogram fill.
    fn mutual_information_reference(a: &SemImage, b: &SemImage, dy: i32, dz: i32) -> f64 {
        const BINS: usize = 32;
        let (ny, nz) = a.dims();
        let mut joint = [[0u32; BINS]; BINS];
        let mut count = 0u32;
        let range_of = |img: &SemImage| {
            img.pixels()
                .iter()
                .fold((f32::INFINITY, f32::NEG_INFINITY), |(lo, hi), &v| {
                    (lo.min(v), hi.max(v))
                })
        };
        let (min_a, max_a) = range_of(a);
        let (min_b, max_b) = range_of(b);
        let bin = |v: f32, lo: f32, hi: f32| {
            let width = hi - lo;
            if width.is_nan() || width <= 0.0 {
                return 0usize;
            }
            (((v - lo) / width * BINS as f32).floor() as i32).clamp(0, BINS as i32 - 1) as usize
        };
        for z in 0..nz {
            let bz = z as i32 + dz;
            if bz < 0 || bz >= nz as i32 {
                continue;
            }
            for y in 0..ny {
                let by = y as i32 + dy;
                if by < 0 || by >= ny as i32 {
                    continue;
                }
                let (va, vb) = (a.get(y, z), b.get(by as usize, bz as usize));
                joint[bin(va, min_a, max_a)][bin(vb, min_b, max_b)] += 1;
                count += 1;
            }
        }
        if count == 0 {
            return f64::NEG_INFINITY;
        }
        let n = count as f64;
        let mut pa = [0.0f64; BINS];
        let mut pb = [0.0f64; BINS];
        for (i, row) in joint.iter().enumerate() {
            for (j, &c) in row.iter().enumerate() {
                let p = c as f64 / n;
                pa[i] += p;
                pb[j] += p;
            }
        }
        let mut mi = 0.0;
        for (i, row) in joint.iter().enumerate() {
            for (j, &c) in row.iter().enumerate() {
                if c == 0 {
                    continue;
                }
                let p = c as f64 / n;
                mi += p * (p / (pa[i] * pb[j])).ln();
            }
        }
        mi
    }

    /// Regression test for the hoisted-range, row-blocked MI kernel: every
    /// candidate offset (including fully and partially out-of-frame ones)
    /// must score bit-identically to the per-offset-recompute reference.
    #[test]
    fn blocked_mi_matches_reference_at_every_offset() {
        let v = structured_volume();
        let (stack, _) = acquire(&v, &drifted_config(13));
        let a = stack.slice(2);
        let b = stack.slice(3);
        let (ny, nz) = a.dims();
        let big = ny.max(nz) as i32;
        let mut offsets: Vec<(i32, i32)> = Vec::new();
        for dz in -5..=5 {
            for dy in -5..=5 {
                offsets.push((dy, dz));
            }
        }
        // Degenerate overlaps: entire rows/columns out of frame.
        offsets.extend([(big, 0), (0, big), (-big, -big), (big - 1, 1 - big)]);
        let (range_a, range_b) = (pixel_range(a), pixel_range(b));
        for (dy, dz) in offsets {
            let got = mutual_information(a, b, range_a, range_b, dy, dz);
            let want = mutual_information_reference(a, b, dy, dz);
            assert_eq!(
                got.to_bits(),
                want.to_bits(),
                "offset ({dy}, {dz}): {got} vs {want}"
            );
        }
        // Constant images: the degenerate single-bin path.
        let ca = SemImage::filled(8, 8, 42.0);
        let got = mutual_information(&ca, &ca, pixel_range(&ca), pixel_range(&ca), 1, -2);
        assert_eq!(
            got.to_bits(),
            mutual_information_reference(&ca, &ca, 1, -2).to_bits()
        );
    }

    /// Full alignment is bit-identical at 1, 2 and 8 threads with the
    /// hoisted ranges (the candidate scoring is the parallel stage).
    #[test]
    fn alignment_is_identical_across_thread_counts() {
        let v = structured_volume();
        let run = |threads: usize| {
            rayon::with_num_threads(threads, || {
                let (mut stack, _) = acquire(&v, &drifted_config(42));
                let corrections = align(&mut stack, AlignMethod::MutualInformation, 4);
                (stack, corrections)
            })
        };
        let (base_stack, base_corr) = run(1);
        for threads in [2usize, 8] {
            let (stack, corr) = run(threads);
            assert_eq!(base_corr, corr, "corrections @ {threads} threads");
            assert_eq!(base_stack, stack, "stack @ {threads} threads");
        }
    }

    #[test]
    fn align_with_records_per_slice_gauges() {
        use hifi_telemetry::JsonRecorder;
        let v = structured_volume();
        let (mut stack, _) = acquire(&v, &drifted_config(42));
        let n = stack.len();
        let mut rec = JsonRecorder::new();
        let instrumented = align_with(&mut stack, AlignMethod::MutualInformation, 4, &mut rec);
        // Same corrections as the uninstrumented path.
        let (mut stack2, _) = acquire(&v, &drifted_config(42));
        let plain = align(&mut stack2, AlignMethod::MutualInformation, 4);
        assert_eq!(instrumented, plain);
        assert_eq!(stack, stack2);
        // One score and one shift gauge per registered slice (all but the
        // reference slice 0).
        let scores = rec
            .events()
            .iter()
            .filter(|e| e.name == "align.slice_score")
            .count();
        assert_eq!(scores, n - 1);
        assert_eq!(rec.counter_total("align.slices"), n as u64);
        assert!(rec.counter_total("align.corrected_slices") <= (n - 1) as u64);
    }
}
