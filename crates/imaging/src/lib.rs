//! Simulated FIB/SEM acquisition and the paper's post-processing pipeline.
//!
//! Section IV of the paper acquires cross-section slices with FIB/SEM and
//! fights two artefacts before any reverse engineering can happen: noise
//! (dwell-time limited) and inter-slice drift — the planar view tolerates
//! less than 0.77% misalignment per slice. This crate mirrors that pipeline
//! on synthetic volumes:
//!
//! - [`acquire`] — slices a [`hifi_synth::MaterialVolume`] like a Ga-FIB and
//!   renders SE/BSE images with shot noise, cumulative stage drift and
//!   brightness wander,
//! - [`denoise`] — Chambolle total-variation denoising (the same algorithm
//!   family the paper runs in Dragonfly),
//! - [`align`] — mutual-information rigid slice alignment, each slice against
//!   the previous one, exactly as described in Section IV-C,
//! - [`reconstruct`] — re-assembles the processed stack into a material
//!   volume for the extractor, completing the cross-section → planar pivot.
//!
//! # Examples
//!
//! ```
//! use hifi_synth::{generate_region, SaRegionSpec};
//! use hifi_circuit::topology::SaTopologyKind;
//! use hifi_imaging::{acquire, ImagingConfig};
//!
//! let region = generate_region(&SaRegionSpec::new(SaTopologyKind::Classic).with_pairs(1));
//! let volume = region.voxelize();
//! let (stack, truth) = acquire(&volume, &ImagingConfig::default());
//! assert_eq!(stack.len(), truth.shifts.len());
//! ```

mod align;
mod denoise;
pub mod metrics;
mod reconstruct;
mod sem;

pub use align::{align, align_with, AlignMethod};
pub use denoise::{
    average_slices, chambolle_tv, chambolle_tv_with, denoise, denoise_profiled, median3x3,
    TvScratch,
};
pub use reconstruct::{classify_pixel, reconstruct, reconstruct_slab, reconstruct_tiled};
pub use sem::{
    acquire, acquire_profiled, acquire_tiled, acquire_tiled_profiled, acquire_with_recovery,
    acquire_with_recovery_profiled, acquire_with_recovery_tiled_profiled, render_ideal,
    render_ideal_profiled, AcquireOutcome, AcquirePlan, DetectorKind, DriftTruth, ImageStack,
    ImagingConfig, SemImage,
};
