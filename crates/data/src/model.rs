//! The public analog DRAM models the paper evaluates (Section VI-A).

use hifi_circuit::{TransistorClass, TransistorDims};
use hifi_units::Nanometers;
use serde::{Deserialize, Serialize};

/// A published analog SA model (CROW or REM) with its transistor dimensions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AnalogModel {
    name: String,
    publication_year: u16,
    /// Technology node the model claims (nm), if stated.
    technology_nm: Option<f64>,
    /// Whether the model's dimensions come from a real device (REM: Zentel
    /// 25 nm DDR4) or best guesses (CROW).
    based_on_real_device: bool,
    /// Whether the model includes column transistors (CROW does not).
    includes_column: bool,
    transistors: Vec<(TransistorClass, TransistorDims)>,
}

impl AnalogModel {
    /// The model's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Publication year.
    pub fn publication_year(&self) -> u16 {
        self.publication_year
    }

    /// Claimed technology node in nm, if any.
    pub fn technology_nm(&self) -> Option<f64> {
        self.technology_nm
    }

    /// Whether the dimensions come from a real device.
    pub fn based_on_real_device(&self) -> bool {
        self.based_on_real_device
    }

    /// Whether column transistors are modelled.
    pub fn includes_column(&self) -> bool {
        self.includes_column
    }

    /// Neither public model includes the OCSA design (Section VI-A).
    pub fn includes_ocsa(&self) -> bool {
        false
    }

    /// The modelled transistor classes and dimensions.
    pub fn transistors(&self) -> &[(TransistorClass, TransistorDims)] {
        &self.transistors
    }

    /// Dimensions for one class, if modelled.
    pub fn transistor(&self, class: TransistorClass) -> Option<TransistorDims> {
        self.transistors
            .iter()
            .find(|(c, _)| *c == class)
            .map(|(_, d)| *d)
    }
}

fn dims(w: f64, l: f64) -> TransistorDims {
    TransistorDims::new(Nanometers(w), Nanometers(l))
}

/// The REM model (2022): based on real DDR4 transistor dimensions from a
/// smaller vendor (Zentel) in 25 nm technology — one generation older than
/// the studied commodity chips. Includes column transistors; no OCSA.
pub fn rem() -> AnalogModel {
    use TransistorClass as T;
    AnalogModel {
        name: "REM".into(),
        publication_year: 2022,
        technology_nm: Some(25.0),
        based_on_real_device: true,
        includes_column: true,
        transistors: vec![
            (T::NSa, dims(330.0, 95.0)),
            (T::PSa, dims(190.0, 95.0)),
            (T::Precharge, dims(120.0, 78.0)),
            (T::Equalizer, dims(110.0, 92.0)),
            (T::Column, dims(180.0, 75.0)),
        ],
    }
}

/// The CROW model (2019): transistor dimensions are best guesses; no column
/// transistors, no OCSA. The paper finds it the least accurate public model
/// (average W/L inaccuracy ≈236%, widths up to ≈938% off).
pub fn crow() -> AnalogModel {
    use TransistorClass as T;
    AnalogModel {
        name: "CROW".into(),
        publication_year: 2019,
        technology_nm: None,
        based_on_real_device: false,
        includes_column: false,
        transistors: vec![
            (T::NSa, dims(520.0, 80.0)),
            (T::PSa, dims(430.0, 80.0)),
            (T::Precharge, dims(1043.0, 126.0)),
            (T::Equalizer, dims(230.0, 60.0)),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rem_models_five_classes_including_column() {
        let m = rem();
        assert!(m.includes_column());
        assert!(m.based_on_real_device());
        assert_eq!(m.transistors().len(), 5);
        assert!(m.transistor(TransistorClass::Column).is_some());
        assert!(!m.includes_ocsa());
    }

    #[test]
    fn crow_lacks_column_transistors() {
        let m = crow();
        assert!(!m.includes_column());
        assert!(!m.based_on_real_device());
        assert!(m.transistor(TransistorClass::Column).is_none());
        assert!(m.transistor(TransistorClass::Isolation).is_none());
    }

    #[test]
    fn crow_precharge_is_vastly_out_of_range() {
        // Fig. 11 omits CROW "as severely out of the range": its precharge
        // width dwarfs every measured value (~88–161 nm).
        let pre = crow().transistor(TransistorClass::Precharge).unwrap();
        assert!(pre.width.value() > 1000.0);
    }
}
