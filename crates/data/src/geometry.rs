//! Per-chip region geometry and derived areas.

use hifi_units::{Nanometers, Ratio, SquareMillimeters, SquareNanometers};
use serde::{Deserialize, Serialize};

/// Physical geometry of one chip's array organisation, as measured from the
/// reconstructed layouts (Section V-B/C).
///
/// Axis convention follows Fig. 10: **X** is the bitline direction ("SA
/// height" extends along X); **Y** is the wordline direction (common gates
/// span the region along Y; "SA width" equals the MAT width).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChipGeometry {
    /// Process feature size `F` (nm); cells are 6F² open-bitline.
    pub feature_size: Nanometers,
    /// Rows per MAT (wordlines).
    pub mat_rows: u32,
    /// Columns per MAT (bitline pairs terminating on each side).
    pub mat_cols: u32,
    /// Number of MATs in the chip; the paper's formulas use one SA region
    /// per MAT (each inter-MAT gap is shared by its two neighbours).
    pub n_mats: u32,
    /// Height of the SA region along the bitline direction (X). Contains two
    /// stacked SAs plus LSA datapath latches (Section V-C).
    pub sa_region_height: Nanometers,
    /// Bitline-direction overhead of one MAT→SA logic transition
    /// (318 nm avg on DDR4, 275 nm avg on DDR5; Section V-C).
    pub mat_to_sa_transition: Nanometers,
    /// Die area from Table I.
    pub die_area: SquareMillimeters,
    /// Number of stacked SAs between two MATs (2 in every studied chip).
    pub stacked_sa_count: u32,
}

impl ChipGeometry {
    /// MAT width along Y: `2F` bitline pitch × columns.
    pub fn mat_width(&self) -> Nanometers {
        self.feature_size * 2.0 * self.mat_cols as f64
    }

    /// MAT height along X: `3F` wordline pitch × rows.
    pub fn mat_height(&self) -> Nanometers {
        self.feature_size * 3.0 * self.mat_rows as f64
    }

    /// Bitline width on M1 (≈ `F`, the narrowest wires; Appendix A).
    pub fn bitline_width(&self) -> Nanometers {
        self.feature_size
    }

    /// Bitline pitch on M1 (`2F`: width + equal spacing).
    pub fn bitline_pitch(&self) -> Nanometers {
        self.feature_size * 2.0
    }

    /// M2 wire width (≈ 8× the M1 bitline width; Appendix A).
    pub fn m2_wire_width(&self) -> Nanometers {
        self.feature_size * 8.0
    }

    /// Area of one MAT.
    pub fn mat_area(&self) -> SquareNanometers {
        self.mat_width().by(self.mat_height())
    }

    /// Area of one SA region (width = MAT width).
    pub fn sa_region_area(&self) -> SquareNanometers {
        self.mat_width().by(self.sa_region_height)
    }

    /// Total MAT area in the chip.
    pub fn total_mat_area(&self) -> SquareNanometers {
        self.mat_area() * self.n_mats as f64
    }

    /// Total SA-region area in the chip.
    pub fn total_sa_area(&self) -> SquareNanometers {
        self.sa_region_area() * self.n_mats as f64
    }

    /// Fraction of the die covered by MATs.
    pub fn mat_fraction(&self) -> Ratio {
        Ratio(self.total_mat_area() / self.die_area.to_square_nanometers())
    }

    /// Fraction of the die covered by SA regions.
    pub fn sa_fraction(&self) -> Ratio {
        Ratio(self.total_sa_area() / self.die_area.to_square_nanometers())
    }

    /// Storage bits implied by the array organisation.
    pub fn array_bits(&self) -> u64 {
        self.mat_rows as u64 * self.mat_cols as u64 * self.n_mats as u64
    }

    /// Chip-area overhead of splitting every MAT in two with an isolation
    /// transistor (the Tiered-Latency-DRAM-style modification discussed in
    /// Section V-C): two MAT→SA transitions plus the isolation transistor
    /// length, as a fraction of the MAT height.
    pub fn split_mat_overhead(&self, iso_effective_length: Nanometers) -> Ratio {
        let extra = self.mat_to_sa_transition * 2.0 + iso_effective_length;
        Ratio(extra / self.mat_height())
    }

    /// Appendix A, Eq. 1: relative Y-extension of the SA region if bitline
    /// width were halved while keeping the safe distance `d = B_w/2`:
    /// `4/3 − 1 ≈ 33%`.
    pub fn halved_bitline_extension() -> Ratio {
        Ratio(4.0 / 3.0 - 1.0)
    }

    /// Appendix A: chip-area overhead of the halved-bitline extension — the
    /// extension applies to the MAT as well, so it scales the combined
    /// MAT+SA fraction (≈21% on B5).
    pub fn halved_bitline_chip_overhead(&self) -> Ratio {
        let ext = Self::halved_bitline_extension();
        Ratio(ext.value() * (self.mat_fraction().value() + self.sa_fraction().value()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ChipGeometry {
        ChipGeometry {
            feature_size: Nanometers(20.0),
            mat_rows: 768,
            mat_cols: 1024,
            n_mats: 10_000,
            sa_region_height: Nanometers(6000.0),
            mat_to_sa_transition: Nanometers(318.0),
            die_area: SquareMillimeters(34.0),
            stacked_sa_count: 2,
        }
    }

    #[test]
    fn derived_dimensions() {
        let g = sample();
        assert_eq!(g.mat_width(), Nanometers(40_960.0));
        assert_eq!(g.mat_height(), Nanometers(46_080.0));
        assert_eq!(g.bitline_pitch(), Nanometers(40.0));
        assert_eq!(g.m2_wire_width(), Nanometers(160.0));
    }

    #[test]
    fn fractions_are_sane() {
        let g = sample();
        let m = g.mat_fraction().value();
        let s = g.sa_fraction().value();
        assert!(m > 0.4 && m < 0.7, "mat fraction {m}");
        assert!(s > 0.02 && s < 0.15, "sa fraction {s}");
        assert!(m > s, "mats dominate the die");
    }

    #[test]
    fn eq1_extension_is_one_third() {
        let e = ChipGeometry::halved_bitline_extension();
        assert!((e.value() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn split_mat_overhead_matches_hand_calc() {
        let g = sample();
        let o = g.split_mat_overhead(Nanometers(64.0));
        let expect = (2.0 * 318.0 + 64.0) / 46_080.0;
        assert!((o.value() - expect).abs() < 1e-12);
    }

    #[test]
    fn array_bits() {
        let g = sample();
        assert_eq!(g.array_bits(), 768 * 1024 * 10_000);
    }
}
