//! The six studied chips (Table I) with measured transistor dimensions.

use crate::geometry::ChipGeometry;
use hifi_circuit::topology::SaTopologyKind;
use hifi_circuit::{TransistorClass, TransistorDims};
use hifi_units::{Nanometers, SquareMillimeters};
use serde::{Deserialize, Serialize};

/// Anonymised DRAM vendor (the three major manufacturers).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Vendor {
    /// Vendor A.
    A,
    /// Vendor B.
    B,
    /// Vendor C.
    C,
}

impl core::fmt::Display for Vendor {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(match self {
            Vendor::A => "A",
            Vendor::B => "B",
            Vendor::C => "C",
        })
    }
}

/// DDR protocol generation of a studied chip or evaluated paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum DdrGeneration {
    /// DDR3 (evaluated papers only; no DDR3 chip was imaged).
    Ddr3,
    /// DDR4.
    Ddr4,
    /// DDR5.
    Ddr5,
}

impl core::fmt::Display for DdrGeneration {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(match self {
            DdrGeneration::Ddr3 => "DDR3",
            DdrGeneration::Ddr4 => "DDR4",
            DdrGeneration::Ddr5 => "DDR5",
        })
    }
}

/// SEM detector used for a chip's acquisition (Table I).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Detector {
    /// Secondary-electron detector (conductivity contrast).
    Se,
    /// Backscatter-electron detector (atomic-number contrast).
    Bse,
}

impl core::fmt::Display for Detector {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(match self {
            Detector::Se => "SE",
            Detector::Bse => "BSE",
        })
    }
}

/// Identifier of a studied chip.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum ChipName {
    A4,
    B4,
    C4,
    A5,
    B5,
    C5,
}

impl ChipName {
    /// All chips in Table I order.
    pub const ALL: [ChipName; 6] = [
        ChipName::A4,
        ChipName::B4,
        ChipName::C4,
        ChipName::A5,
        ChipName::B5,
        ChipName::C5,
    ];

    /// The table label ("A4", …).
    pub const fn as_str(self) -> &'static str {
        match self {
            ChipName::A4 => "A4",
            ChipName::B4 => "B4",
            ChipName::C4 => "C4",
            ChipName::A5 => "A5",
            ChipName::B5 => "B5",
            ChipName::C5 => "C5",
        }
    }
}

impl core::fmt::Display for ChipName {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One transistor class's measured dimensions on a chip.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MeasuredTransistor {
    /// The functional class.
    pub class: TransistorClass,
    /// Drawn dimensions (gate pitch → L, gate ∩ active → W; Section V-B).
    pub dims: TransistorDims,
    /// Effective spacing dimensions: element size including the full gate
    /// dimension and the clearance from neighbours. Always larger than the
    /// drawn dimensions; this is what overhead calculations must use
    /// (Section V-B, "Effective sizes").
    pub effective: TransistorDims,
    /// How many distinct measurements back this entry (the dataset total is
    /// the paper's 835).
    pub n_measurements: usize,
}

/// One studied chip: Table I metadata plus measured circuit data.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Chip {
    name: ChipName,
    vendor: Vendor,
    generation: DdrGeneration,
    density_gbit: u32,
    production_year: u16,
    detector: Detector,
    mats_visible_after_decap: bool,
    pixel_resolution: Nanometers,
    topology: SaTopologyKind,
    transistors: Vec<MeasuredTransistor>,
    geometry: ChipGeometry,
}

impl Chip {
    /// The chip's identifier.
    pub fn name(&self) -> ChipName {
        self.name
    }

    /// The (anonymised) vendor.
    pub fn vendor(&self) -> Vendor {
        self.vendor
    }

    /// DDR generation.
    pub fn generation(&self) -> DdrGeneration {
        self.generation
    }

    /// Storage density in Gbit.
    pub fn density_gbit(&self) -> u32 {
        self.density_gbit
    }

    /// Production year.
    pub fn production_year(&self) -> u16 {
        self.production_year
    }

    /// SEM detector used (Table I).
    pub fn detector(&self) -> Detector {
        self.detector
    }

    /// Whether die extraction already exposed the MAT layers (Table I "MATs
    /// V./N.V."), which simplifies ROI identification (Section IV-A).
    pub fn mats_visible_after_decap(&self) -> bool {
        self.mats_visible_after_decap
    }

    /// SEM pixel resolution achieved (Table I).
    pub fn pixel_resolution(&self) -> Nanometers {
        self.pixel_resolution
    }

    /// The deployed SA topology (Section V: OCSA on A4, A5, B5; classic on
    /// B4, C4, C5).
    pub fn topology(&self) -> SaTopologyKind {
        self.topology
    }

    /// Measured transistors by class.
    pub fn transistors(&self) -> &[MeasuredTransistor] {
        &self.transistors
    }

    /// The measured entry for one class, if that class exists on this chip.
    pub fn transistor(&self, class: TransistorClass) -> Option<&MeasuredTransistor> {
        self.transistors.iter().find(|t| t.class == class)
    }

    /// Isolation-transistor dimensions for overhead math: the chip's own ISO
    /// device if present, else the workspace-average ISO scaled to this
    /// chip's feature size (Section VI-C's stated procedure for papers that
    /// need isolation transistors on chips without them).
    pub fn isolation_dims_for_overheads(&self) -> TransistorDims {
        if let Some(t) = self.transistor(TransistorClass::Isolation) {
            return t.effective;
        }
        let f = self.geometry.feature_size.value();
        // Average OCSA ISO multiples (5.5F × 2.8F) with the effective margin.
        TransistorDims::new(
            Nanometers((5.5 * f * EFFECTIVE_MARGIN).round()),
            Nanometers((2.8 * f * EFFECTIVE_MARGIN).round()),
        )
    }

    /// Region geometry.
    pub fn geometry(&self) -> &ChipGeometry {
        &self.geometry
    }

    /// Die area (Table I).
    pub fn die_area(&self) -> SquareMillimeters {
        self.geometry.die_area
    }
}

/// Ratio of effective (spacing-inclusive) to drawn dimensions used when
/// synthesising the dataset.
pub(crate) const EFFECTIVE_MARGIN: f64 = 1.30;

fn measured(class: TransistorClass, w: f64, l: f64, n: usize) -> MeasuredTransistor {
    let dims = TransistorDims::new(Nanometers(w), Nanometers(l));
    let effective = TransistorDims::new(
        Nanometers((w * EFFECTIVE_MARGIN).round()),
        Nanometers((l * EFFECTIVE_MARGIN).round()),
    );
    MeasuredTransistor {
        class,
        dims,
        effective,
        n_measurements: n,
    }
}

/// The six studied chips (Table I) with the full reverse-engineered dataset.
///
/// ```
/// use hifi_data::chips;
/// assert_eq!(chips().len(), 6);
/// ```
pub fn chips() -> Vec<Chip> {
    use TransistorClass as T;
    // Measurement counts per entry sum to 835 across the dataset
    // (33 entries: 25 each + 10 entries with one extra).
    vec![
        Chip {
            name: ChipName::A4,
            vendor: Vendor::A,
            generation: DdrGeneration::Ddr4,
            density_gbit: 8,
            production_year: 2017,
            detector: Detector::Se,
            mats_visible_after_decap: true,
            pixel_resolution: Nanometers(10.4),
            topology: SaTopologyKind::OffsetCancellation,
            transistors: vec![
                measured(T::NSa, 262.0, 64.0, 26),
                measured(T::PSa, 147.0, 67.0, 26),
                measured(T::Precharge, 130.0, 75.0, 26),
                measured(T::Column, 140.0, 56.0, 26),
                measured(T::Isolation, 106.0, 50.0, 25),
                measured(T::OffsetCancel, 96.0, 51.0, 25),
            ],
            geometry: ChipGeometry {
                feature_size: Nanometers(19.2),
                mat_rows: 768,
                mat_cols: 1024,
                n_mats: 10_923,
                sa_region_height: Nanometers(6_960.0),
                mat_to_sa_transition: Nanometers(310.0),
                die_area: SquareMillimeters(34.0),
                stacked_sa_count: 2,
            },
        },
        Chip {
            name: ChipName::B4,
            vendor: Vendor::B,
            generation: DdrGeneration::Ddr4,
            density_gbit: 4,
            production_year: 2022,
            detector: Detector::Bse,
            mats_visible_after_decap: false,
            pixel_resolution: Nanometers(3.4),
            topology: SaTopologyKind::Classic,
            transistors: vec![
                measured(T::NSa, 416.0, 118.0, 26),
                measured(T::PSa, 238.0, 120.0, 26),
                measured(T::Precharge, 161.0, 117.0, 26),
                measured(T::Equalizer, 143.0, 68.0, 25),
                measured(T::Column, 226.0, 102.0, 25),
            ],
            geometry: ChipGeometry {
                feature_size: Nanometers(33.0),
                mat_rows: 768,
                mat_cols: 1024,
                n_mats: 5_461,
                sa_region_height: Nanometers(7_540.0),
                mat_to_sa_transition: Nanometers(330.0),
                die_area: SquareMillimeters(48.0),
                stacked_sa_count: 2,
            },
        },
        Chip {
            name: ChipName::C4,
            vendor: Vendor::C,
            generation: DdrGeneration::Ddr4,
            density_gbit: 8,
            production_year: 2018,
            detector: Detector::Bse,
            mats_visible_after_decap: true,
            pixel_resolution: Nanometers(5.0),
            topology: SaTopologyKind::Classic,
            transistors: vec![
                measured(T::NSa, 284.0, 76.0, 26),
                measured(T::PSa, 164.0, 76.0, 26),
                measured(T::Precharge, 101.0, 81.0, 25),
                measured(T::Equalizer, 92.0, 46.0, 25),
                measured(T::Column, 153.0, 66.0, 25),
            ],
            geometry: ChipGeometry {
                feature_size: Nanometers(21.9),
                mat_rows: 768,
                mat_cols: 1024,
                n_mats: 10_923,
                sa_region_height: Nanometers(5_150.0),
                mat_to_sa_transition: Nanometers(314.0),
                die_area: SquareMillimeters(42.0),
                stacked_sa_count: 2,
            },
        },
        Chip {
            name: ChipName::A5,
            vendor: Vendor::A,
            generation: DdrGeneration::Ddr5,
            density_gbit: 16,
            production_year: 2021,
            detector: Detector::Se,
            mats_visible_after_decap: false,
            pixel_resolution: Nanometers(5.2),
            topology: SaTopologyKind::OffsetCancellation,
            transistors: vec![
                measured(T::NSa, 268.0, 65.0, 26),
                measured(T::PSa, 150.0, 69.0, 25),
                measured(T::Precharge, 133.0, 76.0, 25),
                measured(T::Column, 143.0, 57.0, 25),
                measured(T::Isolation, 108.0, 51.0, 25),
                measured(T::OffsetCancel, 98.0, 52.0, 25),
            ],
            geometry: ChipGeometry {
                feature_size: Nanometers(19.6),
                mat_rows: 1024,
                mat_cols: 1024,
                n_mats: 16_384,
                sa_region_height: Nanometers(10_700.0),
                mat_to_sa_transition: Nanometers(272.0),
                die_area: SquareMillimeters(75.0),
                stacked_sa_count: 2,
            },
        },
        Chip {
            name: ChipName::B5,
            vendor: Vendor::B,
            generation: DdrGeneration::Ddr5,
            density_gbit: 16,
            production_year: 2022,
            detector: Detector::Bse,
            mats_visible_after_decap: false,
            pixel_resolution: Nanometers(4.2),
            topology: SaTopologyKind::OffsetCancellation,
            transistors: vec![
                measured(T::NSa, 241.0, 68.0, 25),
                measured(T::PSa, 138.0, 70.0, 25),
                measured(T::Precharge, 93.0, 68.0, 25),
                measured(T::Column, 131.0, 59.0, 25),
                measured(T::Isolation, 107.0, 53.0, 25),
                measured(T::OffsetCancel, 94.0, 55.0, 25),
            ],
            geometry: ChipGeometry {
                feature_size: Nanometers(19.1),
                mat_rows: 1024,
                mat_cols: 1024,
                n_mats: 16_384,
                sa_region_height: Nanometers(7_410.0),
                mat_to_sa_transition: Nanometers(280.0),
                die_area: SquareMillimeters(68.0),
                stacked_sa_count: 2,
            },
        },
        Chip {
            name: ChipName::C5,
            vendor: Vendor::C,
            generation: DdrGeneration::Ddr5,
            density_gbit: 16,
            production_year: 2022,
            detector: Detector::Bse,
            mats_visible_after_decap: true,
            pixel_resolution: Nanometers(5.0),
            topology: SaTopologyKind::Classic,
            transistors: vec![
                measured(T::NSa, 249.0, 67.0, 25),
                measured(T::PSa, 144.0, 67.0, 25),
                measured(T::Precharge, 88.0, 71.0, 25),
                measured(T::Equalizer, 81.0, 40.0, 25),
                measured(T::Column, 134.0, 58.0, 25),
            ],
            geometry: ChipGeometry {
                feature_size: Nanometers(19.2),
                mat_rows: 1024,
                mat_cols: 1024,
                n_mats: 16_384,
                sa_region_height: Nanometers(5_740.0),
                mat_to_sa_transition: Nanometers(273.0),
                die_area: SquareMillimeters(66.0),
                stacked_sa_count: 2,
            },
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_metadata_matches_paper() {
        let cs = chips();
        assert_eq!(cs.len(), 6);
        let by = |n: ChipName| cs.iter().find(|c| c.name() == n).unwrap().clone();
        assert_eq!(by(ChipName::A4).die_area(), SquareMillimeters(34.0));
        assert_eq!(by(ChipName::B4).die_area(), SquareMillimeters(48.0));
        assert_eq!(by(ChipName::C4).die_area(), SquareMillimeters(42.0));
        assert_eq!(by(ChipName::A5).die_area(), SquareMillimeters(75.0));
        assert_eq!(by(ChipName::B5).die_area(), SquareMillimeters(68.0));
        assert_eq!(by(ChipName::C5).die_area(), SquareMillimeters(66.0));
        assert_eq!(by(ChipName::B4).pixel_resolution(), Nanometers(3.4));
        assert_eq!(by(ChipName::A4).detector(), Detector::Se);
        assert_eq!(by(ChipName::C5).detector(), Detector::Bse);
        assert_eq!(by(ChipName::B4).density_gbit(), 4);
        assert_eq!(by(ChipName::A5).production_year(), 2021);
    }

    #[test]
    fn topology_split_matches_section_v() {
        for c in chips() {
            let expected = match c.name() {
                ChipName::A4 | ChipName::A5 | ChipName::B5 => SaTopologyKind::OffsetCancellation,
                _ => SaTopologyKind::Classic,
            };
            assert_eq!(c.topology(), expected, "{}", c.name());
        }
    }

    #[test]
    fn ocsa_chips_have_iso_oc_but_no_equalizer() {
        for c in chips() {
            let has_eq = c.transistor(TransistorClass::Equalizer).is_some();
            let has_iso = c.transistor(TransistorClass::Isolation).is_some();
            let has_oc = c.transistor(TransistorClass::OffsetCancel).is_some();
            match c.topology() {
                SaTopologyKind::OffsetCancellation => {
                    assert!(!has_eq && has_iso && has_oc, "{}", c.name());
                }
                _ => assert!(has_eq && !has_iso && !has_oc, "{}", c.name()),
            }
        }
    }

    #[test]
    fn psa_narrower_than_nsa_on_every_chip() {
        // The paper's PMOS-identification heuristic (Section V-A viii).
        for c in chips() {
            let nsa = c.transistor(TransistorClass::NSa).unwrap();
            let psa = c.transistor(TransistorClass::PSa).unwrap();
            assert!(psa.dims.width < nsa.dims.width, "{}", c.name());
        }
    }

    #[test]
    fn effective_sizes_exceed_drawn() {
        for c in chips() {
            for t in c.transistors() {
                assert!(t.effective.width > t.dims.width);
                assert!(t.effective.length > t.dims.length);
            }
        }
    }

    #[test]
    fn iso_fallback_scales_with_feature_size() {
        let cs = chips();
        let c4 = cs.iter().find(|c| c.name() == ChipName::C4).unwrap();
        let iso = c4.isolation_dims_for_overheads();
        // 5.5F × 1.3 at F=21.9 ≈ 157 nm.
        assert!((iso.width.value() - 157.0).abs() < 2.0, "{}", iso.width);
        // A chip with its own ISO returns the measured effective dims.
        let b5 = cs.iter().find(|c| c.name() == ChipName::B5).unwrap();
        assert_eq!(
            b5.isolation_dims_for_overheads(),
            b5.transistor(TransistorClass::Isolation).unwrap().effective
        );
    }

    #[test]
    fn geometry_fractions_in_expected_bands() {
        // Papers affected by I1 need ~57% chip overhead for the MAT
        // extension: the average MAT fraction must sit near 0.57.
        let cs = chips();
        let avg_mat: f64 = cs
            .iter()
            .map(|c| c.geometry().mat_fraction().value())
            .sum::<f64>()
            / 6.0;
        assert!((avg_mat - 0.57).abs() < 0.03, "avg mat fraction {avg_mat}");
        for c in &cs {
            let s = c.geometry().sa_fraction().value();
            assert!(s > 0.04 && s < 0.12, "{} sa fraction {s}", c.name());
        }
    }

    #[test]
    fn transition_overheads_match_section_vc() {
        let cs = chips();
        let avg = |gen: DdrGeneration| {
            let v: Vec<f64> = cs
                .iter()
                .filter(|c| c.generation() == gen)
                .map(|c| c.geometry().mat_to_sa_transition.value())
                .collect();
            v.iter().sum::<f64>() / v.len() as f64
        };
        assert!((avg(DdrGeneration::Ddr4) - 318.0).abs() < 1.0);
        assert!((avg(DdrGeneration::Ddr5) - 275.0).abs() < 1.0);
    }
}
