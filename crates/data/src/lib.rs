//! The HiFi-DRAM reverse-engineered dataset as a typed library.
//!
//! The paper open-sources the data extracted from six commodity DRAM chips:
//! circuit topologies, transistor dimensions (835 size measurements), region
//! geometry and physical layouts. This crate is that dataset in code form —
//! the substitute for the proprietary measurements we cannot take without a
//! FIB/SEM (see `DESIGN.md`). Values are synthesised to be consistent with
//! every aggregate the paper reports; the consistency is *checked* by the
//! evaluation engine's tests in `hifi-eval`, never assumed.
//!
//! - [`Chip`] / [`chips()`] — Table I's six chips with per-transistor-class
//!   dimensions and region geometry,
//! - [`ChipGeometry`] — MAT/SA-region dimensions and derived areas,
//! - [`AnalogModel`] / [`rem()`] / [`crow()`] — the two public DDR4 SA models
//!   the paper compares against (Section VI-A).
//!
//! # Examples
//!
//! ```
//! use hifi_data::{chips, ChipName};
//! use hifi_circuit::topology::SaTopologyKind;
//!
//! let b5 = chips().into_iter().find(|c| c.name() == ChipName::B5).unwrap();
//! assert_eq!(b5.topology(), SaTopologyKind::OffsetCancellation);
//! ```

mod chip;
pub mod export;
mod geometry;
mod model;

pub use chip::{chips, Chip, ChipName, DdrGeneration, Detector, MeasuredTransistor, Vendor};
pub use geometry::ChipGeometry;
pub use model::{crow, rem, AnalogModel};

/// Total number of size measurements in the dataset (Section V-B: "we make
/// 835 size measurements").
pub const TOTAL_SIZE_MEASUREMENTS: usize = 835;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measurement_count_matches_paper() {
        let total: usize = chips()
            .iter()
            .flat_map(|c| c.transistors())
            .map(|t| t.n_measurements)
            .sum();
        assert_eq!(total, TOTAL_SIZE_MEASUREMENTS);
    }
}
