//! Serialising the dataset — the "open sourcing" of the paper.
//!
//! The paper releases its reverse-engineered data publicly; this module
//! provides the same artefact for our dataset: a versioned JSON document
//! with every chip, every measured transistor, the region geometry and the
//! public models, plus a loader so downstream tools can consume it without
//! linking this crate's constructors.

use crate::{chips, crow, rem, AnalogModel, Chip};
use serde::{Deserialize, Serialize};

/// The versioned release document.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetRelease {
    /// Schema version (bumped on breaking changes).
    pub version: u32,
    /// Human-readable provenance.
    pub source: String,
    /// The six studied chips.
    pub chips: Vec<Chip>,
    /// The public analog models evaluated against them.
    pub models: Vec<AnalogModel>,
}

/// Current schema version.
pub const DATASET_VERSION: u32 = 1;

/// Builds the release document from the in-crate dataset.
pub fn dataset_release() -> DatasetRelease {
    DatasetRelease {
        version: DATASET_VERSION,
        source: "hifi-dram reproduction (synthesised, calibrated to the paper's aggregates)".into(),
        chips: chips(),
        models: vec![rem(), crow()],
    }
}

/// Serialises the release to pretty JSON.
///
/// # Panics
///
/// Never panics for the in-crate dataset (all values are finite and
/// serialisable).
pub fn to_json() -> String {
    serde_json::to_string_pretty(&dataset_release()).expect("dataset serialises")
}

/// Parses a release document.
///
/// # Errors
///
/// Returns the underlying `serde_json` error on malformed input.
pub fn from_json(text: &str) -> Result<DatasetRelease, serde_json::Error> {
    serde_json::from_str(text)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hifi_circuit::TransistorClass;

    #[test]
    fn json_round_trip_preserves_everything() {
        let json = to_json();
        let parsed = from_json(&json).expect("round trip parses");
        assert_eq!(parsed, dataset_release());
        assert_eq!(parsed.version, DATASET_VERSION);
        assert_eq!(parsed.chips.len(), 6);
        assert_eq!(parsed.models.len(), 2);
    }

    #[test]
    fn json_contains_measured_dimensions() {
        let json = to_json();
        // Spot check: B5's nSA width (241 nm) appears in the document.
        assert!(json.contains("241"));
        assert!(json.contains("OffsetCancellation"));
    }

    #[test]
    fn parsed_chips_expose_the_same_queries() {
        let parsed = from_json(&to_json()).unwrap();
        let b4 = parsed
            .chips
            .iter()
            .find(|c| c.name() == crate::ChipName::B4)
            .unwrap();
        assert!(b4.transistor(TransistorClass::Equalizer).is_some());
        assert!(b4.geometry().mat_fraction().value() > 0.5);
    }

    #[test]
    fn malformed_json_rejected() {
        assert!(from_json("{\"version\": []").is_err());
    }
}
