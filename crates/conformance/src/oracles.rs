//! Conformance oracles: what a correct pipeline must produce for a spec.
//!
//! Each oracle judges one property of a run against generator ground truth
//! the real analyst never has. A [`RunJudgement`] collects every verdict in
//! a stable order, so campaign reports aggregate deterministically.
//!
//! - `netlist` — the extracted netlist is graph-isomorphic to the ground
//!   truth (via [`hifi_circuit::identify::diff`]) and the topology was
//!   identified correctly.
//! - `dimensions` — every classified transistor's W/L is within a
//!   voxel-resolution tolerance band of its drawn dimensions.
//! - `behavioral` — the extracted netlist, handed straight to the MNA
//!   transient engine through its inferred activation schedule, senses,
//!   latches and restores both stored values. Graph isomorphism ignores
//!   transistor dimensions; this oracle turns a behaviorally-broken
//!   extraction into a waveform deviation instead of a silent pass.
//! - `voxel_accuracy` — imaged runs reconstruct enough of the volume
//!   (fidelity gauge); pristine runs recover the exact device count.
//! - `metamorphic.zero_noise` — stripping imaging from the spec yields
//!   exact netlist recovery.
//! - `metamorphic.mirror` — extraction commutes with mirroring the window
//!   volume (the netlist is orientation-free).
//! - `metamorphic.voxel_pitch` — halving the voxel pitch never makes the
//!   worst dimension error meaningfully worse.

use hifi_analog::events::{simulate_extracted_activation, ActivationConfig};
use hifi_circuit::identify::{are_isomorphic, diff};
use hifi_circuit::TransistorClass;
use hifi_circuit::{Netlist, TransistorDims};
use hifi_dram::pipeline::Pipeline;
use hifi_extract::netlist::extract_netlist;
use hifi_extract::Extraction;

use crate::spec::ChipSpec;

/// A netlist rewrite applied to the extracted netlist before the `netlist`
/// oracle judges it — test fixtures use this to prove the oracle rejects
/// mis-extractions (e.g. a dropped device).
pub type Tamper = dyn Fn(&Netlist) -> Netlist + Sync;

/// Stable oracle names, in report order. The pseudo-oracle `"pipeline"`
/// (run failed outright) is reported separately.
pub const ORACLE_NAMES: [&str; 7] = [
    "netlist",
    "dimensions",
    "behavioral",
    "voxel_accuracy",
    "metamorphic.zero_noise",
    "metamorphic.mirror",
    "metamorphic.voxel_pitch",
];

/// Tolerance bands the oracles judge against, derived from voxel
/// resolution: a W/L measured from a voxelized volume is quantized to the
/// voxel grid on both edges, and imaging adds reconstruction error on top.
#[derive(Debug, Clone, PartialEq)]
pub struct Tolerance {
    /// Dimension band for pristine (no-imaging) runs, in voxels.
    pub pristine_dim_voxels: f64,
    /// Dimension band for imaged runs, in voxels (scaled by slice
    /// thickness: milling 2-voxel slices halves the milling-axis
    /// resolution).
    pub imaged_dim_voxels: f64,
    /// Minimum reconstruction voxel accuracy for imaged runs.
    pub min_voxel_accuracy: f64,
    /// Slack for the voxel-pitch oracle, in *fine* voxels: halving the
    /// pitch must not worsen the error by more than this.
    pub pitch_slack_voxels: f64,
}

impl Default for Tolerance {
    fn default() -> Self {
        Self {
            pristine_dim_voxels: 2.5,
            imaged_dim_voxels: 3.5,
            min_voxel_accuracy: 0.85,
            pitch_slack_voxels: 1.0,
        }
    }
}

/// One oracle's verdict on one run.
#[derive(Debug, Clone, PartialEq)]
pub struct OracleVerdict {
    /// Oracle name (one of [`ORACLE_NAMES`] or `"pipeline"`).
    pub oracle: String,
    /// Whether the property held.
    pub passed: bool,
    /// Failure rendering (empty when passed).
    pub detail: String,
}

impl OracleVerdict {
    fn pass(oracle: &str) -> Self {
        Self {
            oracle: oracle.to_string(),
            passed: true,
            detail: String::new(),
        }
    }

    fn fail(oracle: &str, detail: String) -> Self {
        Self {
            oracle: oracle.to_string(),
            passed: false,
            detail,
        }
    }

    fn check(oracle: &str, passed: bool, detail: impl FnOnce() -> String) -> Self {
        if passed {
            Self::pass(oracle)
        } else {
            Self::fail(oracle, detail())
        }
    }
}

/// Every oracle's verdict on one spec.
#[derive(Debug, Clone, PartialEq)]
pub struct RunJudgement {
    /// The spec that was judged.
    pub spec: ChipSpec,
    /// Verdicts in [`ORACLE_NAMES`] order (a single `"pipeline"` verdict
    /// when the run errored before the oracles could fire).
    pub verdicts: Vec<OracleVerdict>,
    /// Worst per-device dimension error of the main run, in voxels
    /// (`0.0` when the run produced no classified devices).
    pub worst_dim_error_voxels: f64,
    /// Reconstruction accuracy of the main run (imaged runs only).
    pub voxel_accuracy: Option<f64>,
}

impl RunJudgement {
    /// Whether every oracle passed.
    pub fn passed(&self) -> bool {
        self.verdicts.iter().all(|v| v.passed)
    }

    /// Names of the oracles that failed.
    pub fn failed_oracles(&self) -> Vec<&str> {
        self.verdicts
            .iter()
            .filter(|v| !v.passed)
            .map(|v| v.oracle.as_str())
            .collect()
    }

    /// One-line rendering of the first failure (empty when passed).
    pub fn first_failure(&self) -> String {
        self.verdicts
            .iter()
            .find(|v| !v.passed)
            .map(|v| format!("{}: {}", v.oracle, v.detail))
            .unwrap_or_default()
    }
}

/// Judges `spec` against every oracle.
pub fn judge(spec: &ChipSpec, tol: &Tolerance) -> RunJudgement {
    judge_in(spec, tol, None, None)
}

/// [`judge`] with an optional netlist [`Tamper`] applied before the
/// `netlist` oracle — the sabotage hook conformance tests use to prove the
/// isomorphism oracle rejects mis-extractions. Only the `netlist` oracle
/// sees the tampered netlist; the metamorphic oracles judge the pipeline
/// itself.
pub fn judge_with(spec: &ChipSpec, tol: &Tolerance, tamper: Option<&Tamper>) -> RunJudgement {
    judge_in(spec, tol, None, tamper)
}

/// [`judge_with`] with an optional artifact store root: every pipeline
/// sub-run caches its stages there, so re-running a campaign (or shrinking
/// a failure, which re-judges many nearby specs) replays warm stages
/// bit-identically instead of recomputing them. The store's in-process
/// manifest writes are not thread-safe, so store-backed judging must not
/// run concurrently (see `run_campaign`).
pub fn judge_in(
    spec: &ChipSpec,
    tol: &Tolerance,
    store: Option<&std::path::Path>,
    tamper: Option<&Tamper>,
) -> RunJudgement {
    let mut config = spec.pipeline_config();
    if let Some(root) = store {
        config = config.with_store(root);
    }
    let pipeline = Pipeline::new(config);
    let report = match pipeline.run_instrumented() {
        Ok(r) => r,
        Err(e) => {
            return RunJudgement {
                spec: spec.clone(),
                verdicts: vec![OracleVerdict::fail("pipeline", e.to_string())],
                worst_dim_error_voxels: 0.0,
                voxel_accuracy: None,
            }
        }
    };
    let region = pipeline.region();
    let truth_netlist = region.window_netlist();
    let truth_dims = &region.ground_truth().cell.dims_by_class;
    let voxel_accuracy = report
        .telemetry
        .as_ref()
        .and_then(|t| t.fidelity.voxel_accuracy);

    let candidate = match tamper {
        Some(f) => f(&report.extraction.netlist),
        None => report.extraction.netlist.clone(),
    };

    let mut verdicts = Vec::with_capacity(ORACLE_NAMES.len());

    // netlist: isomorphic to ground truth, identified as what was built.
    let netlist_diff = diff(&candidate, truth_netlist);
    let identified_ok = report.identified == Some(spec.topology);
    verdicts.push(OracleVerdict::check(
        "netlist",
        netlist_diff.isomorphic && identified_ok,
        || {
            if netlist_diff.isomorphic {
                format!(
                    "identified {:?}, expected {:?}",
                    report.identified, spec.topology
                )
            } else {
                netlist_diff.summary()
            }
        },
    ));

    // dimensions: every classified device within its tolerance band.
    let worst_nm = worst_dimension_error_nm(&report.extraction, truth_dims);
    let worst_voxels = worst_nm.map_or(0.0, |(nm, _)| nm / spec.voxel_nm);
    let band_voxels = match &spec.imaging {
        Some(noise) => tol.imaged_dim_voxels * noise.slice_voxels as f64,
        None => tol.pristine_dim_voxels,
    };
    verdicts.push(OracleVerdict::check(
        "dimensions",
        worst_voxels <= band_voxels,
        || {
            let (nm, class) = worst_nm.unwrap_or((0.0, TransistorClass::NSa));
            format!(
                "worst error {:.2} voxels ({:.1} nm on {:?}) exceeds the {:.2}-voxel band",
                worst_voxels, nm, class, band_voxels
            )
        },
    ));

    // behavioral: simulate the candidate netlist (tampered, when a Tamper
    // is installed — a sabotage must be visible to this oracle).
    verdicts.push(behavioral_oracle(&candidate));

    // voxel_accuracy: reconstruction fidelity (imaged) or exact device
    // recovery (pristine — there is no reconstruction to score).
    match (&spec.imaging, voxel_accuracy) {
        (Some(_), Some(acc)) => verdicts.push(OracleVerdict::check(
            "voxel_accuracy",
            acc >= tol.min_voxel_accuracy,
            || {
                format!(
                    "voxel accuracy {:.4} below the {:.2} floor",
                    acc, tol.min_voxel_accuracy
                )
            },
        )),
        (Some(_), None) => verdicts.push(OracleVerdict::fail(
            "voxel_accuracy",
            "imaged run recorded no voxel-accuracy gauge".to_string(),
        )),
        (None, _) => verdicts.push(OracleVerdict::check(
            "voxel_accuracy",
            report.device_count == truth_netlist.device_count(),
            || {
                format!(
                    "pristine run extracted {} of {} ground-truth devices",
                    report.device_count,
                    truth_netlist.device_count()
                )
            },
        )),
    }

    // metamorphic.zero_noise: the imaging-free counterpart recovers the
    // netlist exactly. For already-pristine specs this re-judges the main
    // (untampered) run, so a sabotage Tamper cannot mask a real failure.
    let zero_noise = if spec.imaging.is_none() {
        let d = diff(&report.extraction.netlist, truth_netlist);
        OracleVerdict::check(
            "metamorphic.zero_noise",
            d.isomorphic && identified_ok,
            || d.summary(),
        )
    } else {
        let mut pristine_cfg = spec.pristine_variant().pipeline_config();
        if let Some(root) = store {
            pristine_cfg = pristine_cfg.with_store(root);
        }
        match Pipeline::new(pristine_cfg).run() {
            Ok(p) => {
                let d = diff(&p.extraction.netlist, truth_netlist);
                let ok = d.isomorphic && p.identified == Some(spec.topology);
                OracleVerdict::check("metamorphic.zero_noise", ok, || {
                    if d.isomorphic {
                        format!("pristine variant identified {:?}", p.identified)
                    } else {
                        d.summary()
                    }
                })
            }
            Err(e) => OracleVerdict::fail(
                "metamorphic.zero_noise",
                format!("pristine variant failed: {e}"),
            ),
        }
    };
    verdicts.push(zero_noise);

    verdicts.push(mirror_oracle(spec, &region));
    verdicts.push(voxel_pitch_oracle(spec, tol, store));

    RunJudgement {
        spec: spec.clone(),
        verdicts,
        worst_dim_error_voxels: worst_voxels,
        voxel_accuracy,
    }
}

/// Behavioral conformance: infer the candidate's SA roles, attach the MAT
/// testbench to the inferred bitlines, run both stored values through the
/// MNA engine, and demand correct sensing with a full-rail latch split.
///
/// Failure details carry the waveform evidence (sensed value, restored
/// cell level, latch split), so a mis-extraction that happens to stay
/// graph-isomorphic — wrong dimensions, swapped device roles — shows up as
/// a concrete sensing deviation rather than a clean bill of health.
fn behavioral_oracle(candidate: &Netlist) -> OracleVerdict {
    let cfg = ActivationConfig::default();
    for stored in [false, true] {
        match simulate_extracted_activation(candidate, &cfg, stored) {
            Ok(report) => {
                if !report.correct {
                    let split = report
                        .latch_split_time
                        .map_or("never split".to_string(), |t| {
                            format!("split at {:.2} ns", t * 1e9)
                        });
                    return OracleVerdict::fail(
                        "behavioral",
                        format!(
                            "stored {} sensed as {} on the {} schedule (cell restored \
                             to {:.3} V, latch {split})",
                            u8::from(stored),
                            u8::from(report.sensed_one),
                            report.topology,
                            report.restored_level,
                        ),
                    );
                }
                let expected = if stored { cfg.vdd } else { 0.0 };
                if (report.restored_level - expected).abs() > 0.15 * cfg.vdd {
                    return OracleVerdict::fail(
                        "behavioral",
                        format!(
                            "stored {} sensed correctly but restored the cell to \
                             {:.3} V (expected {:.2} V)",
                            u8::from(stored),
                            report.restored_level,
                            expected,
                        ),
                    );
                }
            }
            Err(e) => {
                return OracleVerdict::fail(
                    "behavioral",
                    format!("no activation schedule for the extracted netlist: {e}"),
                )
            }
        }
    }
    OracleVerdict::pass("behavioral")
}

/// Worst absolute W/L error (nm) across classified devices, with the class
/// it occurred on. `None` when nothing was classified.
pub fn worst_dimension_error_nm(
    extraction: &Extraction,
    truth: &[(TransistorClass, TransistorDims)],
) -> Option<(f64, TransistorClass)> {
    let mut worst: Option<(f64, TransistorClass)> = None;
    for device in &extraction.devices {
        let Some(class) = device.class else { continue };
        let Some((_, t)) = truth.iter().find(|(c, _)| *c == class) else {
            continue;
        };
        let err = (device.dims.width.value() - t.width.value())
            .abs()
            .max((device.dims.length.value() - t.length.value()).abs());
        if worst.is_none_or(|(w, _)| err > w) {
            worst = Some((err, class));
        }
    }
    worst
}

/// Mirror invariance: extracting the window volume mirrored along either
/// axis yields a netlist isomorphic to the unmirrored extraction. Uses the
/// pre-classification extractor — classification heuristics are
/// deliberately orientation-*sensitive* (column transistors sit MAT-side),
/// but the connectivity graph must not be.
fn mirror_oracle(spec: &ChipSpec, region: &hifi_synth::SaRegion) -> OracleVerdict {
    let volume = region.voxelize();
    let Some(window) = region.window_volume(&volume, spec.window_pair) else {
        return OracleVerdict::fail(
            "metamorphic.mirror",
            "pristine volume does not cover the cell window".to_string(),
        );
    };
    let base = match extract_netlist(&window) {
        Ok(e) => e,
        Err(e) => {
            return OracleVerdict::fail(
                "metamorphic.mirror",
                format!("baseline extraction failed: {e}"),
            )
        }
    };
    for (axis, mirrored) in [("x", window.mirror_x()), ("y", window.mirror_y())] {
        match extract_netlist(&mirrored) {
            Ok(m) => {
                if !are_isomorphic(&m.netlist, &base.netlist) {
                    let d = diff(&m.netlist, &base.netlist);
                    return OracleVerdict::fail(
                        "metamorphic.mirror",
                        format!("mirror_{axis} extraction diverged: {}", d.summary()),
                    );
                }
            }
            Err(e) => {
                return OracleVerdict::fail(
                    "metamorphic.mirror",
                    format!("mirror_{axis} extraction failed: {e}"),
                )
            }
        }
    }
    OracleVerdict::pass("metamorphic.mirror")
}

/// Pitch monotonicity: halving the voxel pitch must not worsen the worst
/// dimension error by more than the fine grid's own quantization slack.
/// Judged on a single-pair, MAT-free pristine reduction of the spec to
/// bound the cost of the fine-pitch run.
fn voxel_pitch_oracle(
    spec: &ChipSpec,
    tol: &Tolerance,
    store: Option<&std::path::Path>,
) -> OracleVerdict {
    let mut coarse = spec.pristine_variant();
    coarse.n_pairs = 1;
    coarse.window_pair = 0;
    coarse.mat_strip = false;
    let fine = ChipSpec {
        voxel_nm: coarse.voxel_nm / 2.0,
        ..coarse.clone()
    };
    let coarse_err = match pristine_worst_error_nm(&coarse, store) {
        Ok(e) => e,
        Err(e) => return OracleVerdict::fail("metamorphic.voxel_pitch", e),
    };
    let fine_err = match pristine_worst_error_nm(&fine, store) {
        Ok(e) => e,
        Err(e) => return OracleVerdict::fail("metamorphic.voxel_pitch", e),
    };
    let slack_nm = tol.pitch_slack_voxels * fine.voxel_nm;
    OracleVerdict::check(
        "metamorphic.voxel_pitch",
        fine_err <= coarse_err + slack_nm,
        || {
            format!(
                "error at {}nm pitch ({fine_err:.1} nm) exceeds error at {}nm pitch \
                 ({coarse_err:.1} nm) by more than {slack_nm:.1} nm slack",
                fine.voxel_nm, coarse.voxel_nm
            )
        },
    )
}

/// Runs a pristine spec and returns its worst dimension error in nm
/// (`0.0` when no devices were classified — an empty error, not a pass of
/// convenience: the `netlist` oracle separately catches missing devices).
fn pristine_worst_error_nm(
    spec: &ChipSpec,
    store: Option<&std::path::Path>,
) -> Result<f64, String> {
    let mut config = spec.pipeline_config();
    if let Some(root) = store {
        config = config.with_store(root);
    }
    let pipeline = Pipeline::new(config);
    let report = pipeline
        .run()
        .map_err(|e| format!("pristine run at {}nm pitch failed: {e}", spec.voxel_nm))?;
    let region = pipeline.region();
    let truth = &region.ground_truth().cell.dims_by_class;
    Ok(worst_dimension_error_nm(&report.extraction, truth).map_or(0.0, |(nm, _)| nm))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal_spec_passes_every_oracle() {
        let j = judge(&ChipSpec::minimal(), &Tolerance::default());
        assert!(j.passed(), "failures: {}", j.first_failure());
        assert_eq!(j.verdicts.len(), ORACLE_NAMES.len());
        for (v, name) in j.verdicts.iter().zip(ORACLE_NAMES) {
            assert_eq!(v.oracle, name);
            assert!(v.detail.is_empty());
        }
        assert!(j.worst_dim_error_voxels < 2.5);
        assert!(j.voxel_accuracy.is_none(), "pristine run has no gauge");
    }

    #[test]
    fn tampered_netlist_is_rejected_with_a_diff() {
        let tamper = |nl: &Netlist| {
            // Rebuild the netlist without its first mosfet — a classic
            // mis-extraction (dropped device).
            let mut out = Netlist::new("tampered");
            let mut dropped = false;
            for (_, d) in nl.devices() {
                if let hifi_circuit::Device::Mosfet(m) = d {
                    if !dropped {
                        dropped = true;
                        continue;
                    }
                    let g = out.add_net(nl.net_name(m.gate));
                    let s = out.add_net(nl.net_name(m.source));
                    let dr = out.add_net(nl.net_name(m.drain));
                    out.add_mosfet(m.name.clone(), m.polarity, m.class, m.dims, g, s, dr);
                }
            }
            out
        };
        let j = judge_with(&ChipSpec::minimal(), &Tolerance::default(), Some(&tamper));
        assert!(!j.passed());
        // Both candidate-facing oracles see the sabotage: the graph diff
        // reports the dropped device, and no valid activation schedule can
        // be inferred for the crippled latch.
        assert!(j.failed_oracles().contains(&"netlist"));
        let netlist = &j.verdicts[0];
        assert!(
            netlist.detail.contains("missing"),
            "diff detail: {}",
            netlist.detail
        );
        // The pipeline itself is healthy: every oracle that judges the
        // *untampered* run still passes.
        assert!(j
            .verdicts
            .iter()
            .filter(|v| v.oracle != "netlist" && v.oracle != "behavioral")
            .all(|v| v.passed));
    }

    #[test]
    fn behaviorally_sabotaged_netlist_fails_with_a_waveform_deviation() {
        // Shrink the nSA latch devices to near-uselessness but keep the
        // connectivity graph intact. Isomorphism deliberately ignores
        // dimensions, so the `netlist` oracle waves this through — only
        // the behavioral oracle catches it, as a sensing failure with
        // waveform evidence.
        let tamper = |nl: &Netlist| {
            let mut out = Netlist::new("weak-latch");
            for (_, d) in nl.devices() {
                match d {
                    hifi_circuit::Device::Mosfet(m) => {
                        let g = out.add_net(nl.net_name(m.gate));
                        let s = out.add_net(nl.net_name(m.source));
                        let dr = out.add_net(nl.net_name(m.drain));
                        let dims = if m.class == TransistorClass::NSa {
                            TransistorDims::new(
                                hifi_units::Nanometers(1.0),
                                hifi_units::Nanometers(4000.0),
                            )
                        } else {
                            m.dims
                        };
                        out.add_mosfet(m.name.clone(), m.polarity, m.class, dims, g, s, dr);
                    }
                    hifi_circuit::Device::Capacitor(c) => {
                        let a = out.add_net(nl.net_name(c.a));
                        let b = out.add_net(nl.net_name(c.b));
                        out.add_capacitor(c.name.clone(), c.value, a, b);
                    }
                }
            }
            out
        };
        let j = judge_with(&ChipSpec::minimal(), &Tolerance::default(), Some(&tamper));
        assert!(!j.passed());
        assert_eq!(
            j.failed_oracles(),
            vec!["behavioral"],
            "only the waveform oracle sees a dimensions-only sabotage"
        );
        let behavioral = j
            .verdicts
            .iter()
            .find(|v| v.oracle == "behavioral")
            .expect("behavioral verdict present");
        assert!(
            behavioral.detail.contains("sensed") || behavioral.detail.contains("restored"),
            "deviation detail should carry waveform evidence: {}",
            behavioral.detail
        );
    }

    #[test]
    fn pipeline_errors_surface_as_a_pipeline_verdict() {
        let mut spec = ChipSpec::minimal();
        spec.window_pair = 5; // out of range for 1 pair
        let j = judge(&spec, &Tolerance::default());
        assert!(!j.passed());
        assert_eq!(j.failed_oracles(), vec!["pipeline"]);
        assert!(j.verdicts[0].detail.contains("out of range"));
    }
}
