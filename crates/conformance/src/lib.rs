//! Ground-truth conformance harness: differential testing of the whole
//! reverse-engineering pipeline against the synthetic generator.
//!
//! The generator fabricates a chip whose netlist and dimensions are known
//! exactly, the pipeline reverse-engineers it, and this crate judges the
//! result — across *randomized campaigns* of specs rather than a handful
//! of hand-picked configurations. The pieces:
//!
//! - [`spec`] — seeded random [`ChipSpec`]s sweeping topology, pair count,
//!   voxel pitch, transistor scaling, transition length, MAT strips and
//!   imaging noise.
//! - [`oracles`] — per-run verdicts: netlist graph isomorphism (via
//!   [`hifi_circuit::identify::diff`]), dimension tolerance bands derived
//!   from voxel resolution, reconstruction accuracy, and the metamorphic
//!   invariants (zero-noise exactness, mirror invariance, voxel-pitch
//!   monotonicity).
//! - [`shrink`] — greedy minimisation of failing specs to counterexamples
//!   a human can read.
//! - [`campaign`] — the seeded fan-out and its deterministic
//!   [`ConformanceReport`] (bit-identical at any thread count).
//!
//! The `conformance` binary drives a campaign from the command line and
//! exits nonzero on any oracle failure; `scripts/ci.sh conformance` runs a
//! fixed seed matrix of it. See `TESTING.md` for how to reproduce a
//! failing campaign seed.
//!
//! # Examples
//!
//! ```
//! use hifi_conformance::{judge, ChipSpec, Tolerance};
//!
//! let judgement = judge(&ChipSpec::minimal(), &Tolerance::default());
//! assert!(judgement.passed(), "{}", judgement.first_failure());
//! ```

pub mod campaign;
pub mod oracles;
pub mod shrink;
pub mod spec;

pub use campaign::{
    run_campaign, run_seed, CampaignConfig, ConformanceReport, FailureCase, HistogramBucket,
    OracleSummary, WorstCase,
};
pub use oracles::{
    judge, judge_in, judge_with, OracleVerdict, RunJudgement, Tamper, Tolerance, ORACLE_NAMES,
};
pub use shrink::{shrink, Shrunk};
pub use spec::{ChipSpec, ImagingNoise};
