//! Greedy spec shrinking: from a failing [`ChipSpec`] to a minimal one.
//!
//! The vendored `proptest` stand-in has no shrinking, so the campaign
//! carries its own: a fixed, ordered list of simplification moves (strip
//! imaging, collapse pairs, undo scaling, …), each applied only if the
//! shrunk spec *still fails* the caller's predicate. The move order sorts
//! big semantic simplifications first, so counterexamples lose their
//! incidental structure before their essential one. Because every move
//! steps a field toward its [`ChipSpec::minimal`] value and never away,
//! the walk terminates in at most a handful of accepted steps.

use crate::spec::ChipSpec;

/// The outcome of shrinking one failing spec.
#[derive(Debug, Clone, PartialEq)]
pub struct Shrunk {
    /// The minimal spec that still fails.
    pub spec: ChipSpec,
    /// Accepted simplification steps (0 = the original was already
    /// minimal with respect to the move set).
    pub steps: u32,
}

/// All single-field simplification moves applicable to `spec`, most
/// drastic first. Each returned spec differs from `spec` in exactly one
/// aspect, moved toward [`ChipSpec::minimal`].
fn moves(spec: &ChipSpec) -> Vec<ChipSpec> {
    let mut out = Vec::new();
    let minimal = ChipSpec::minimal();
    if spec.imaging.is_some() {
        out.push(spec.pristine_variant());
    }
    if spec.n_pairs > 1 {
        let mut s = spec.clone();
        s.n_pairs = 1;
        s.window_pair = 0;
        out.push(s);
    }
    if spec.window_pair > 0 {
        let mut s = spec.clone();
        s.window_pair = 0;
        out.push(s);
    }
    if spec.mat_strip {
        let mut s = spec.clone();
        s.mat_strip = false;
        out.push(s);
    }
    if spec.transition_nm != minimal.transition_nm {
        let mut s = spec.clone();
        s.transition_nm = minimal.transition_nm;
        out.push(s);
    }
    if spec.dim_scale_pct != minimal.dim_scale_pct {
        let mut s = spec.clone();
        s.dim_scale_pct = minimal.dim_scale_pct;
        out.push(s);
    }
    if spec.voxel_nm != minimal.voxel_nm {
        let mut s = spec.clone();
        s.voxel_nm = minimal.voxel_nm;
        out.push(s);
    }
    if spec.topology != minimal.topology {
        let mut s = spec.clone();
        s.topology = minimal.topology;
        out.push(s);
    }
    out
}

/// Shrinks `spec` under `fails` (true = the spec still exhibits the
/// failure). Greedy fixpoint: repeatedly accept the first move whose
/// result still fails, until no move is accepted. `fails(spec)` is assumed
/// true on entry; `fails` must be deterministic or the result is
/// meaningless.
pub fn shrink(spec: &ChipSpec, fails: &dyn Fn(&ChipSpec) -> bool) -> Shrunk {
    let mut current = spec.clone();
    let mut steps = 0u32;
    // Each accepted move strictly decreases a bounded measure (fields away
    // from minimal), so this terminates; the explicit cap is a backstop
    // against a non-deterministic predicate.
    for _ in 0..64 {
        let Some(next) = moves(&current).into_iter().find(|c| fails(c)) else {
            break;
        };
        current = next;
        steps += 1;
    }
    Shrunk {
        spec: current,
        steps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::ImagingNoise;

    fn complex_spec() -> ChipSpec {
        ChipSpec {
            topology: hifi_circuit::topology::SaTopologyKind::OffsetCancellation,
            n_pairs: 3,
            window_pair: 2,
            voxel_nm: 6.0,
            dim_scale_pct: 120,
            transition_nm: 275,
            mat_strip: true,
            imaging: Some(ImagingNoise {
                dwell_us: 4.0,
                drift_sigma_px: 0.7,
                slice_voxels: 2,
                seed: 99,
            }),
        }
    }

    #[test]
    fn always_failing_predicate_shrinks_to_minimal() {
        let shrunk = shrink(&complex_spec(), &|_| true);
        assert_eq!(shrunk.spec, ChipSpec::minimal());
        assert!(shrunk.steps >= 6, "steps: {}", shrunk.steps);
    }

    #[test]
    fn shrinking_preserves_the_failing_property() {
        // A failure that depends on the OCSA topology: the shrinker must
        // keep the topology but strip everything incidental.
        let fails =
            |s: &ChipSpec| s.topology == hifi_circuit::topology::SaTopologyKind::OffsetCancellation;
        let shrunk = shrink(&complex_spec(), &fails);
        assert!(fails(&shrunk.spec));
        assert_eq!(
            shrunk.spec,
            ChipSpec {
                topology: hifi_circuit::topology::SaTopologyKind::OffsetCancellation,
                ..ChipSpec::minimal()
            }
        );
    }

    #[test]
    fn minimal_spec_does_not_shrink_further() {
        let shrunk = shrink(&ChipSpec::minimal(), &|_| true);
        assert_eq!(shrunk.spec, ChipSpec::minimal());
        assert_eq!(shrunk.steps, 0);
    }

    #[test]
    fn every_move_changes_exactly_one_aspect() {
        let spec = complex_spec();
        for m in moves(&spec) {
            assert_ne!(m, spec);
            // Each move must go toward minimal, never away: re-applying
            // moves from the moved spec yields strictly fewer options.
            assert!(moves(&m).len() < moves(&spec).len() + 1);
        }
        // The full move set covers every non-minimal field of this spec
        // (imaging, pairs, window, mat, transition, scale, voxel, topology).
        assert_eq!(moves(&spec).len(), 8);
    }
}
