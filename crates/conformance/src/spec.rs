//! Randomized chip specifications: the campaign's input domain.
//!
//! A [`ChipSpec`] is a compact, order-free description of one differential
//! test case — which topology to fabricate, at what scale, through which
//! imaging conditions. Specs are generated from a single `u64` seed, so a
//! failing case is reproduced by its seed alone, and every field comes from
//! a small palette so the hand-written shrinker (see [`crate::shrink`]) can
//! walk toward [`ChipSpec::minimal`] in a handful of steps.

use hifi_circuit::topology::{SaDimensions, SaTopologyKind};
use hifi_circuit::TransistorDims;
use hifi_dram::pipeline::PipelineConfig;
use hifi_imaging::ImagingConfig;
use hifi_synth::SaRegionSpec;
use hifi_units::Nanometers;
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// Imaging-noise knobs a spec may enable (a subset of [`ImagingConfig`],
/// restricted to palette values the pipeline is expected to survive).
#[derive(Debug, Clone, PartialEq)]
pub struct ImagingNoise {
    /// Dwell time per pixel (µs); noise σ scales as `1/√dwell`.
    pub dwell_us: f64,
    /// Per-slice stage-drift innovation σ (pixels).
    pub drift_sigma_px: f64,
    /// FIB slice thickness in voxels.
    pub slice_voxels: usize,
    /// Acquisition RNG seed.
    pub seed: u64,
}

impl ImagingNoise {
    /// Expands to a full [`ImagingConfig`] (remaining knobs at defaults).
    pub fn to_imaging_config(&self) -> ImagingConfig {
        ImagingConfig {
            dwell_us: self.dwell_us,
            drift_sigma_px: self.drift_sigma_px,
            slice_voxels: self.slice_voxels,
            seed: self.seed,
            ..ImagingConfig::default()
        }
    }
}

/// One randomized conformance case: a chip to fabricate and the conditions
/// to image and extract it under.
#[derive(Debug, Clone, PartialEq)]
pub struct ChipSpec {
    /// SA circuit topology to lay out.
    pub topology: SaTopologyKind,
    /// Bitline pairs stacked in the region.
    pub n_pairs: usize,
    /// Which pair's cell window is extracted.
    pub window_pair: usize,
    /// Voxel edge (nm).
    pub voxel_nm: f64,
    /// Uniform transistor W/L scaling (percent of the default node).
    pub dim_scale_pct: u32,
    /// MAT→SA transition length (nm).
    pub transition_nm: i64,
    /// Whether a MAT capacitor strip precedes the SA region.
    pub mat_strip: bool,
    /// Simulated FIB/SEM imaging; `None` extracts the pristine volume.
    pub imaging: Option<ImagingNoise>,
}

impl ChipSpec {
    /// The smallest spec in the domain — the shrinker's fixpoint target.
    pub fn minimal() -> Self {
        Self {
            topology: SaTopologyKind::Classic,
            n_pairs: 1,
            window_pair: 0,
            voxel_nm: 8.0,
            dim_scale_pct: 100,
            transition_nm: 318,
            mat_strip: false,
            imaging: None,
        }
    }

    /// Draws a spec from the domain, deterministically from `seed`.
    ///
    /// Every field comes from a small palette of values the generator and
    /// extractor are specified to handle; the campaign's job is to prove
    /// they actually do, across the whole cross-product.
    pub fn generate(seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let topology = if rng.gen_bool(0.5) {
            SaTopologyKind::Classic
        } else {
            SaTopologyKind::OffsetCancellation
        };
        let n_pairs = rng.gen_range(1..=3usize);
        let window_pair = rng.gen_range(0..n_pairs);
        let voxel_nm = *pick(&mut rng, &[6.0, 8.0, 10.0]);
        let dim_scale_pct = *pick(&mut rng, &[90, 100, 110, 120]);
        let transition_nm = *pick(&mut rng, &[275, 318]);
        let mat_strip = rng.gen_bool(0.25);
        // Imaging multiplies run cost ~10×; sample it at the default voxel
        // pitch only, where the imaged pipeline's tolerances are validated.
        //
        // The fastest dwell (4 µs) is excluded when the MAT strip is
        // present: the strip skews the global normalization statistics
        // enough that the noisiest acquisitions fall outside the
        // denoiser's recovery envelope (campaign seed 7 shrank such a
        // failure to exactly `minimal + mat + dwell=4`; the limit is
        // pinned in tests/extraction_edge_cases.rs).
        let dwell_palette: &[f64] = if mat_strip {
            &[6.0, 9.0]
        } else {
            &[4.0, 6.0, 9.0]
        };
        let imaging = if voxel_nm == 8.0 && rng.gen_bool(0.4) {
            Some(ImagingNoise {
                dwell_us: *pick(&mut rng, dwell_palette),
                drift_sigma_px: *pick(&mut rng, &[0.3, 0.7]),
                slice_voxels: rng.gen_range(1..=2usize),
                seed: rng.next_u64(),
            })
        } else {
            None
        };
        Self {
            topology,
            n_pairs,
            window_pair,
            voxel_nm,
            dim_scale_pct,
            transition_nm,
            mat_strip,
            imaging,
        }
    }

    /// The generator dimensions this spec fabricates: every class's W/L
    /// scaled uniformly by [`Self::dim_scale_pct`] (uniform scaling
    /// preserves the class orderings classification relies on, e.g.
    /// pSA narrower than nSA).
    pub fn scaled_dims(&self) -> SaDimensions {
        let f = f64::from(self.dim_scale_pct) / 100.0;
        let scale = |d: TransistorDims| {
            TransistorDims::new(
                Nanometers(d.width.value() * f),
                Nanometers(d.length.value() * f),
            )
        };
        let d = SaDimensions::default();
        SaDimensions {
            nsa: scale(d.nsa),
            psa: scale(d.psa),
            precharge: scale(d.precharge),
            equalizer: scale(d.equalizer),
            column: scale(d.column),
            isolation: scale(d.isolation),
            offset_cancel: scale(d.offset_cancel),
        }
    }

    /// The generator spec for this chip.
    pub fn region_spec(&self) -> SaRegionSpec {
        SaRegionSpec::new(self.topology)
            .with_dims(self.scaled_dims())
            .with_pairs(self.n_pairs)
            .with_voxel_nm(self.voxel_nm)
            .with_transition_nm(self.transition_nm)
            .with_mat_strip(self.mat_strip)
    }

    /// The full pipeline configuration for this chip.
    pub fn pipeline_config(&self) -> PipelineConfig {
        let mut cfg = match &self.imaging {
            Some(noise) => PipelineConfig::with_imaging(self.topology, noise.to_imaging_config()),
            None => PipelineConfig::pristine(self.topology),
        };
        cfg.spec = self.region_spec();
        cfg.window_pair = self.window_pair;
        cfg
    }

    /// This spec with imaging stripped (the zero-noise counterpart every
    /// metamorphic run is compared against).
    pub fn pristine_variant(&self) -> Self {
        Self {
            imaging: None,
            ..self.clone()
        }
    }

    /// Compact single-line rendering for reports and failure logs.
    pub fn describe(&self) -> String {
        let imaging = match &self.imaging {
            None => "off".to_string(),
            Some(n) => format!(
                "dwell={}us drift={}px slice={} seed={:#x}",
                n.dwell_us, n.drift_sigma_px, n.slice_voxels, n.seed
            ),
        };
        format!(
            "{} pairs={} window={} voxel={}nm scale={}% transition={}nm mat={} imaging[{}]",
            self.topology.name(),
            self.n_pairs,
            self.window_pair,
            self.voxel_nm,
            self.dim_scale_pct,
            self.transition_nm,
            if self.mat_strip { "on" } else { "off" },
            imaging,
        )
    }
}

/// Picks one element of a non-empty palette.
fn pick<'a, T>(rng: &mut StdRng, palette: &'a [T]) -> &'a T {
    &palette[rng.gen_range(0..palette.len())]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_per_seed() {
        for seed in [0, 1, 42, 0xDEAD_BEEF] {
            assert_eq!(ChipSpec::generate(seed), ChipSpec::generate(seed));
        }
        // The domain is not a single point.
        let distinct: std::collections::HashSet<String> =
            (0..64).map(|s| ChipSpec::generate(s).describe()).collect();
        assert!(
            distinct.len() > 10,
            "only {} distinct specs",
            distinct.len()
        );
    }

    #[test]
    fn every_generated_spec_is_well_formed() {
        for seed in 0..128 {
            let spec = ChipSpec::generate(seed);
            assert!(spec.n_pairs >= 1 && spec.n_pairs <= 3);
            assert!(spec.window_pair < spec.n_pairs, "{}", spec.describe());
            assert!(spec.voxel_nm > 0.0);
            // Must survive the builders' validation panics.
            let cfg = spec.pipeline_config();
            assert_eq!(cfg.spec.n_pairs, spec.n_pairs);
            assert_eq!(cfg.window_pair, spec.window_pair);
            assert_eq!(cfg.imaging.is_some(), spec.imaging.is_some());
        }
    }

    #[test]
    fn scaled_dims_scale_uniformly() {
        let spec = ChipSpec {
            dim_scale_pct: 110,
            ..ChipSpec::minimal()
        };
        let scaled = spec.scaled_dims();
        let base = SaDimensions::default();
        assert!((scaled.nsa.width.value() - base.nsa.width.value() * 1.1).abs() < 1e-9);
        assert!((scaled.psa.length.value() - base.psa.length.value() * 1.1).abs() < 1e-9);
        // Ordering invariants survive scaling.
        assert!(scaled.psa.width.value() < scaled.nsa.width.value());
    }
}
