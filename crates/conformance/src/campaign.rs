//! Seeded conformance campaigns: fan out N randomized specs, judge each
//! against every oracle, shrink the failures, aggregate a deterministic
//! [`ConformanceReport`].
//!
//! Determinism is the campaign's core contract: the report depends only on
//! `(campaign seed, run count, tolerance)` — never on thread count, wall
//! time or iteration interleaving. Judging fans out over the vendored
//! `rayon` (order-preserving `par_map`), and every aggregate is folded
//! sequentially from the ordered judgement list.

use std::path::PathBuf;

use hifi_telemetry::{
    names, ConfigEcho, CounterTotal, GaugeStat, JsonRecorder, Recorder, RunReport,
};

use crate::oracles::{judge_in, RunJudgement, Tolerance, ORACLE_NAMES};
use crate::shrink::{shrink, Shrunk};
use crate::spec::ChipSpec;

/// Campaign parameters.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Campaign seed; run `i` judges `ChipSpec::generate(run_seed(seed, i))`.
    pub seed: u64,
    /// Number of randomized runs.
    pub runs: usize,
    /// Oracle tolerance bands.
    pub tolerance: Tolerance,
    /// Artifact-store root for warm re-runs. Setting this serializes the
    /// campaign (the store's manifest writes are not safe under in-process
    /// concurrency) — it trades fan-out for stage caching.
    pub store: Option<PathBuf>,
    /// Whether failing specs are shrunk to minimal counterexamples
    /// (re-judges up to a few dozen nearby specs per failure).
    pub shrink_failures: bool,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        Self {
            seed: 42,
            runs: 16,
            tolerance: Tolerance::default(),
            store: None,
            shrink_failures: true,
        }
    }
}

/// Derives run `index`'s spec seed from the campaign seed (SplitMix64
/// finalisation, so neighbouring indices land far apart in seed space).
pub fn run_seed(campaign_seed: u64, index: u64) -> u64 {
    mix(campaign_seed.wrapping_add(mix(index
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(1))))
}

fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Per-oracle aggregate across a campaign.
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct OracleSummary {
    /// Oracle name.
    pub oracle: String,
    /// Judgements that included this oracle.
    pub runs: u64,
    /// Verdicts that failed.
    pub failures: u64,
}

/// One bucket of the worst-dimension-error histogram.
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct HistogramBucket {
    /// Bucket label (inclusive upper bound in voxels, e.g. `"<=1.0"`).
    pub bucket: String,
    /// Judged runs that landed in the bucket.
    pub count: u64,
}

/// A failing run, with its shrunken counterexample.
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct FailureCase {
    /// Campaign run index.
    pub run_index: u64,
    /// The spec seed (`ChipSpec::generate(seed)` reproduces the spec).
    pub seed: u64,
    /// The failing spec, rendered.
    pub spec: String,
    /// Oracles that failed.
    pub failed_oracles: Vec<String>,
    /// First failure's detail line.
    pub detail: String,
    /// Minimal spec that still fails (equal to `spec` when shrinking is
    /// off or nothing simplified).
    pub shrunk_spec: String,
    /// Accepted shrink steps.
    pub shrink_steps: u64,
}

/// The campaign's worst dimension error and where it occurred.
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct WorstCase {
    /// Campaign run index.
    pub run_index: u64,
    /// The spec, rendered.
    pub spec: String,
    /// Worst per-device dimension error (voxels).
    pub worst_dim_error_voxels: f64,
}

/// Deterministic aggregate of one campaign: a pure function of the
/// campaign config, bit-identical at any thread count.
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct ConformanceReport {
    /// Campaign seed.
    pub campaign_seed: u64,
    /// Runs executed.
    pub runs: u64,
    /// Runs that passed every oracle.
    pub passed: u64,
    /// Runs with at least one failing verdict.
    pub failed: u64,
    /// Per-oracle aggregates, in stable order (`pipeline` last).
    pub oracles: Vec<OracleSummary>,
    /// Worst-dimension-error histogram over judged (non-errored) runs.
    pub error_histogram: Vec<HistogramBucket>,
    /// The run with the largest dimension error.
    pub worst_case: Option<WorstCase>,
    /// Every failing run, with shrunken counterexamples.
    pub failures: Vec<FailureCase>,
    /// `conformance.*` counter totals (via the telemetry layer).
    pub counters: Vec<CounterTotal>,
    /// `conformance.*` gauge statistics (via the telemetry layer).
    pub gauges: Vec<GaugeStat>,
}

impl ConformanceReport {
    /// Pretty-printed JSON rendering.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serialization is infallible")
    }

    /// One-line human summary.
    pub fn summary_line(&self) -> String {
        let worst = self
            .worst_case
            .as_ref()
            .map_or(0.0, |w| w.worst_dim_error_voxels);
        format!(
            "conformance: seed {} — {}/{} runs passed, {} failed, worst dim error {:.2} voxels",
            self.campaign_seed, self.passed, self.runs, self.failed, worst
        )
    }
}

/// Histogram bucket upper bounds (voxels); the last bucket is open.
const BUCKETS: [f64; 6] = [0.5, 1.0, 1.5, 2.0, 2.5, 3.0];

/// Runs a conformance campaign.
///
/// Judging fans out across threads via the order-preserving `par_map`
/// unless an artifact store is configured (store manifest writes are
/// process-wide, so store-backed campaigns judge sequentially and trade
/// fan-out for warm-stage replay). Shrinking happens inside each failing
/// run's worker, so it parallelizes with the remaining runs and stays
/// deterministic per index.
pub fn run_campaign(cfg: &CampaignConfig) -> ConformanceReport {
    let indices: Vec<u64> = (0..cfg.runs as u64).collect();
    let judge_one = |&index: &u64| -> (u64, RunJudgement, Option<Shrunk>) {
        let seed = run_seed(cfg.seed, index);
        let spec = ChipSpec::generate(seed);
        let store = cfg.store.as_deref();
        let judgement = judge_in(&spec, &cfg.tolerance, store, None);
        let shrunk = if !judgement.passed() && cfg.shrink_failures {
            Some(shrink(&spec, &|candidate| {
                !judge_in(candidate, &cfg.tolerance, store, None).passed()
            }))
        } else {
            None
        };
        (seed, judgement, shrunk)
    };
    let judged: Vec<(u64, RunJudgement, Option<Shrunk>)> = if cfg.store.is_some() {
        indices.iter().map(judge_one).collect()
    } else {
        rayon::par_map(&indices, judge_one)
    };
    fold_report(cfg, &judged)
}

/// Folds ordered judgements into the report (sequential, deterministic).
fn fold_report(
    cfg: &CampaignConfig,
    judged: &[(u64, RunJudgement, Option<Shrunk>)],
) -> ConformanceReport {
    let mut rec = JsonRecorder::new();
    let mut passed = 0u64;
    let mut oracle_runs = vec![0u64; ORACLE_NAMES.len() + 1];
    let mut oracle_failures = vec![0u64; ORACLE_NAMES.len() + 1];
    let mut histogram = vec![0u64; BUCKETS.len() + 1];
    let mut worst_case: Option<WorstCase> = None;
    let mut failures = Vec::new();

    rec.counter(names::CONFORMANCE_RUNS, judged.len() as u64);
    for (index, (seed, judgement, shrunk)) in judged.iter().enumerate() {
        let index = index as u64;
        if judgement.passed() {
            passed += 1;
            rec.counter(names::CONFORMANCE_PASSED, 1);
        }
        let errored = judgement.verdicts.first().map(|v| v.oracle.as_str()) == Some("pipeline");
        for verdict in &judgement.verdicts {
            let slot = ORACLE_NAMES
                .iter()
                .position(|n| *n == verdict.oracle)
                .unwrap_or(ORACLE_NAMES.len());
            oracle_runs[slot] += 1;
            if !verdict.passed {
                oracle_failures[slot] += 1;
                rec.counter(names::CONFORMANCE_ORACLE_FAILURES, 1);
            }
        }
        if !errored {
            let err = judgement.worst_dim_error_voxels;
            rec.gauge(names::CONFORMANCE_WORST_DIM_ERROR, err);
            let bucket = BUCKETS
                .iter()
                .position(|b| err <= *b)
                .unwrap_or(BUCKETS.len());
            histogram[bucket] += 1;
            let is_worse = worst_case
                .as_ref()
                .is_none_or(|w| err.total_cmp(&w.worst_dim_error_voxels).is_gt());
            if is_worse {
                worst_case = Some(WorstCase {
                    run_index: index,
                    spec: judgement.spec.describe(),
                    worst_dim_error_voxels: err,
                });
            }
        }
        if !judgement.passed() {
            let (shrunk_spec, steps) = match shrunk {
                Some(s) => (s.spec.describe(), u64::from(s.steps)),
                None => (judgement.spec.describe(), 0),
            };
            if steps > 0 {
                rec.counter(names::CONFORMANCE_SHRINK_STEPS, steps);
            }
            failures.push(FailureCase {
                run_index: index,
                seed: *seed,
                spec: judgement.spec.describe(),
                failed_oracles: judgement
                    .failed_oracles()
                    .iter()
                    .map(ToString::to_string)
                    .collect(),
                detail: judgement.first_failure(),
                shrunk_spec,
                shrink_steps: steps,
            });
        }
    }

    let oracles = ORACLE_NAMES
        .iter()
        .copied()
        .chain(std::iter::once("pipeline"))
        .enumerate()
        .map(|(i, name)| OracleSummary {
            oracle: name.to_string(),
            runs: oracle_runs[i],
            failures: oracle_failures[i],
        })
        .collect();
    let error_histogram = BUCKETS
        .iter()
        .map(|b| format!("<={b}"))
        .chain(std::iter::once(format!(">{}", BUCKETS[BUCKETS.len() - 1])))
        .zip(histogram)
        .map(|(bucket, count)| HistogramBucket { bucket, count })
        .collect();

    // Route the aggregates through the telemetry layer so campaign totals
    // surface with the same counter/gauge machinery (and names) as every
    // other run report in the workspace.
    let telemetry = RunReport::from_events(ConfigEcho::pristine("conformance"), rec.events());

    ConformanceReport {
        campaign_seed: cfg.seed,
        runs: judged.len() as u64,
        passed,
        failed: judged.len() as u64 - passed,
        oracles,
        error_histogram,
        worst_case,
        failures,
        counters: telemetry.counters,
        gauges: telemetry.gauges,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_seeds_are_spread_and_deterministic() {
        let seeds: Vec<u64> = (0..32).map(|i| run_seed(42, i)).collect();
        let distinct: std::collections::HashSet<_> = seeds.iter().collect();
        assert_eq!(distinct.len(), seeds.len(), "seed collision");
        assert_eq!(run_seed(42, 7), run_seed(42, 7));
        assert_ne!(run_seed(42, 7), run_seed(43, 7));
    }

    #[test]
    fn small_campaign_passes_and_aggregates() {
        let cfg = CampaignConfig {
            runs: 4,
            ..CampaignConfig::default()
        };
        let report = run_campaign(&cfg);
        assert_eq!(report.runs, 4);
        assert_eq!(report.passed, 4, "failures: {:?}", report.failures);
        assert_eq!(report.failed, 0);
        assert!(report.failures.is_empty());
        assert_eq!(report.oracles.len(), ORACLE_NAMES.len() + 1);
        for o in &report.oracles[..ORACLE_NAMES.len()] {
            assert_eq!(o.runs, 4, "{}", o.oracle);
            assert_eq!(o.failures, 0, "{}", o.oracle);
        }
        let total: u64 = report.error_histogram.iter().map(|b| b.count).sum();
        assert_eq!(total, 4);
        assert!(report.worst_case.is_some());
        let runs_counter = report
            .counters
            .iter()
            .find(|c| c.name == names::CONFORMANCE_RUNS)
            .expect("runs counter");
        assert_eq!(runs_counter.total, 4);
        assert!(report.to_json().contains("error_histogram"));
        assert!(report.summary_line().contains("4/4 runs passed"));
    }

    #[test]
    fn campaign_report_is_thread_count_invariant() {
        let cfg = CampaignConfig {
            runs: 3,
            ..CampaignConfig::default()
        };
        let single = rayon::with_num_threads(1, || run_campaign(&cfg));
        let multi = rayon::with_num_threads(4, || run_campaign(&cfg));
        assert_eq!(single, multi);
        assert_eq!(single.to_json(), multi.to_json());
    }
}
