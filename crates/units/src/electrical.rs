//! Electrical quantities: voltages and capacitances.

use crate::quantity;

quantity! {
    /// A voltage in volts. DDR4 cores operate around 1.2 V, DDR5 around 1.1 V;
    /// the bitline precharge reference `Vpre` is typically half the array
    /// voltage.
    Volts, "V"
}

quantity! {
    /// A voltage in millivolts, the natural unit for sensing margins and
    /// charge-sharing perturbations (tens of mV) and transistor offsets.
    Millivolts, "mV"
}

quantity! {
    /// A capacitance in femtofarads. DRAM cell capacitors are in the tens of
    /// fF; bitlines run tens to a couple hundred fF depending on length.
    Femtofarads, "fF"
}

quantity! {
    /// A capacitance in attofarads, used for per-segment parasitics.
    Attofarads, "aF"
}

impl Volts {
    /// Converts to millivolts.
    #[inline]
    pub fn to_millivolts(self) -> Millivolts {
        Millivolts(self.0 * 1e3)
    }
}

impl Millivolts {
    /// Converts to volts.
    #[inline]
    pub fn to_volts(self) -> Volts {
        Volts(self.0 / 1e3)
    }
}

impl Femtofarads {
    /// Converts to attofarads.
    #[inline]
    pub fn to_attofarads(self) -> Attofarads {
        Attofarads(self.0 * 1e3)
    }

    /// Charge stored at the given voltage, in femtocoulombs (fF × V = fC).
    #[inline]
    pub fn charge_at(self, v: Volts) -> f64 {
        self.0 * v.0
    }
}

impl Attofarads {
    /// Converts to femtofarads.
    #[inline]
    pub fn to_femtofarads(self) -> Femtofarads {
        Femtofarads(self.0 / 1e3)
    }
}

impl From<Volts> for Millivolts {
    fn from(v: Volts) -> Self {
        v.to_millivolts()
    }
}

impl From<Millivolts> for Volts {
    fn from(v: Millivolts) -> Self {
        v.to_volts()
    }
}

/// Computes the ideal charge-sharing perturbation on a bitline.
///
/// When a cell capacitor `c_cell` charged to `v_cell` is connected to a
/// bitline capacitance `c_bl` precharged to `v_pre`, the final shared voltage
/// is the charge-weighted average; the returned value is the bitline
/// perturbation `ΔV = (v_cell − v_pre) · c_cell / (c_cell + c_bl)`.
///
/// ```
/// use hifi_units::{charge_sharing_delta, Femtofarads, Volts};
/// let dv = charge_sharing_delta(
///     Femtofarads(20.0), Volts(1.1),
///     Femtofarads(200.0), Volts(0.55),
/// );
/// assert!((dv.value() - 50.0).abs() < 0.01); // 0.55 * 20/220 V = 50 mV
/// ```
pub fn charge_sharing_delta(
    c_cell: Femtofarads,
    v_cell: Volts,
    c_bl: Femtofarads,
    v_pre: Volts,
) -> Millivolts {
    let transfer = c_cell.0 / (c_cell.0 + c_bl.0);
    Volts((v_cell.0 - v_pre.0) * transfer).to_millivolts()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn volt_millivolt_round_trip() {
        let v = Volts(1.2);
        assert_eq!(v.to_millivolts(), Millivolts(1200.0));
        assert!((Millivolts(1200.0).to_volts() - v).abs() < Volts(1e-12));
    }

    #[test]
    fn charge_sharing_zero_when_cell_at_vpre() {
        let dv = charge_sharing_delta(
            Femtofarads(20.0),
            Volts(0.55),
            Femtofarads(180.0),
            Volts(0.55),
        );
        assert_eq!(dv, Millivolts(0.0));
    }

    #[test]
    fn charge_sharing_negative_for_stored_zero() {
        let dv = charge_sharing_delta(
            Femtofarads(20.0),
            Volts(0.0),
            Femtofarads(180.0),
            Volts(0.55),
        );
        assert!(dv < Millivolts(0.0));
    }

    #[test]
    fn charge_at_is_cv() {
        assert_eq!(Femtofarads(20.0).charge_at(Volts(1.1)), 22.0);
    }
}
