//! Typed physical quantities for the HiFi-DRAM reproduction.
//!
//! DRAM reverse engineering mixes lengths spanning nine orders of magnitude
//! (nanometre transistor gates to square-millimetre dies), voltages, charges,
//! capacitances and times. This crate provides thin `f64` newtypes so the rest
//! of the workspace cannot confuse a nanometre with a micrometre or an area
//! with a length (C-NEWTYPE).
//!
//! # Examples
//!
//! ```
//! use hifi_units::{Nanometers, Micrometers};
//!
//! let gate = Nanometers(55.0);
//! let pitch = Micrometers(0.11).to_nanometers();
//! assert_eq!(pitch, Nanometers(110.0));
//! assert_eq!(gate * 2.0, pitch);
//! ```

mod area;
mod electrical;
mod length;
mod ratio;
mod time;

pub use area::{SquareMicrometers, SquareMillimeters, SquareNanometers};
pub use electrical::{charge_sharing_delta, Attofarads, Femtofarads, Millivolts, Volts};
pub use length::{Micrometers, Millimeters, Nanometers};
pub use ratio::Ratio;
pub use time::{Nanoseconds, Picoseconds};

/// Implements arithmetic and ordering boilerplate shared by all quantity
/// newtypes over `f64`.
macro_rules! quantity {
    ($(#[$meta:meta])* $name:ident, $unit:literal) => {
        $(#[$meta])*
        #[derive(Debug, Default, Clone, Copy, PartialEq, PartialOrd, serde::Serialize, serde::Deserialize)]
        pub struct $name(pub f64);

        impl $name {
            /// The zero quantity.
            pub const ZERO: Self = Self(0.0);

            /// Returns the raw `f64` value in this quantity's unit.
            #[inline]
            pub fn value(self) -> f64 {
                self.0
            }

            /// Returns the absolute value.
            #[inline]
            pub fn abs(self) -> Self {
                Self(self.0.abs())
            }

            /// Returns the smaller of `self` and `other`.
            #[inline]
            pub fn min(self, other: Self) -> Self {
                Self(self.0.min(other.0))
            }

            /// Returns the larger of `self` and `other`.
            #[inline]
            pub fn max(self, other: Self) -> Self {
                Self(self.0.max(other.0))
            }

            /// Returns `true` if the value is finite (not NaN or infinite).
            #[inline]
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }
        }

        impl core::ops::Add for $name {
            type Output = Self;
            #[inline]
            fn add(self, rhs: Self) -> Self {
                Self(self.0 + rhs.0)
            }
        }

        impl core::ops::Sub for $name {
            type Output = Self;
            #[inline]
            fn sub(self, rhs: Self) -> Self {
                Self(self.0 - rhs.0)
            }
        }

        impl core::ops::Mul<f64> for $name {
            type Output = Self;
            #[inline]
            fn mul(self, rhs: f64) -> Self {
                Self(self.0 * rhs)
            }
        }

        impl core::ops::Div<f64> for $name {
            type Output = Self;
            #[inline]
            fn div(self, rhs: f64) -> Self {
                Self(self.0 / rhs)
            }
        }

        /// Dimensionless ratio of two like quantities.
        impl core::ops::Div for $name {
            type Output = f64;
            #[inline]
            fn div(self, rhs: Self) -> f64 {
                self.0 / rhs.0
            }
        }

        impl core::ops::Neg for $name {
            type Output = Self;
            #[inline]
            fn neg(self) -> Self {
                Self(-self.0)
            }
        }

        impl core::ops::AddAssign for $name {
            #[inline]
            fn add_assign(&mut self, rhs: Self) {
                self.0 += rhs.0;
            }
        }

        impl core::ops::SubAssign for $name {
            #[inline]
            fn sub_assign(&mut self, rhs: Self) {
                self.0 -= rhs.0;
            }
        }

        impl core::iter::Sum for $name {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                Self(iter.map(|q| q.0).sum())
            }
        }

        impl core::fmt::Display for $name {
            fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
                write!(f, "{} {}", self.0, $unit)
            }
        }

        impl From<f64> for $name {
            #[inline]
            fn from(v: f64) -> Self {
                Self(v)
            }
        }
    };
}

pub(crate) use quantity;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_sub_scale() {
        let a = Nanometers(10.0);
        let b = Nanometers(4.0);
        assert_eq!(a + b, Nanometers(14.0));
        assert_eq!(a - b, Nanometers(6.0));
        assert_eq!(a * 3.0, Nanometers(30.0));
        assert_eq!(a / 2.0, Nanometers(5.0));
        assert_eq!(a / b, 2.5);
    }

    #[test]
    fn display_includes_unit() {
        assert_eq!(Nanometers(3.5).to_string(), "3.5 nm");
        assert_eq!(SquareMillimeters(34.0).to_string(), "34 mm^2");
        assert_eq!(Volts(1.1).to_string(), "1.1 V");
    }

    #[test]
    fn min_max_abs() {
        let a = Nanometers(-3.0);
        assert_eq!(a.abs(), Nanometers(3.0));
        assert_eq!(a.min(Nanometers(1.0)), a);
        assert_eq!(a.max(Nanometers(1.0)), Nanometers(1.0));
    }

    #[test]
    fn sum_over_iterator() {
        let total: Nanometers = [1.0, 2.0, 3.0].iter().map(|&v| Nanometers(v)).sum();
        assert_eq!(total, Nanometers(6.0));
    }

    #[test]
    fn default_is_zero() {
        assert_eq!(Nanometers::default(), Nanometers::ZERO);
        assert_eq!(Volts::default(), Volts::ZERO);
    }
}
