//! Dimensionless ratios with the paper's inaccuracy conventions.

/// A dimensionless ratio, used for W/L ratios, overhead fractions and the
/// paper's "Nx error" convention.
///
/// The paper expresses model inaccuracy as a *relative absolute deviation*
/// (e.g. "938% inaccuracy" means the model value deviates from the measured
/// value by 9.38× the measured value) and research error as `P_chip/P_oe − 1`
/// (e.g. "175x error").
///
/// ```
/// use hifi_units::Ratio;
/// let inacc = Ratio::relative_deviation(10.38, 1.0);
/// assert!((inacc.as_percent() - 938.0).abs() < 1e-9);
/// ```
#[derive(
    Debug, Default, Clone, Copy, PartialEq, PartialOrd, serde::Serialize, serde::Deserialize,
)]
pub struct Ratio(pub f64);

impl Ratio {
    /// The zero ratio.
    pub const ZERO: Self = Self(0.0);

    /// Ratio of one (no deviation, no overhead).
    pub const ONE: Self = Self(1.0);

    /// Builds a ratio from a percentage (`50.0` → `Ratio(0.5)`).
    #[inline]
    pub fn from_percent(pct: f64) -> Self {
        Self(pct / 100.0)
    }

    /// Returns the ratio as a percentage.
    #[inline]
    pub fn as_percent(self) -> f64 {
        self.0 * 100.0
    }

    /// Returns the raw value.
    #[inline]
    pub fn value(self) -> f64 {
        self.0
    }

    /// The paper's inaccuracy metric: `|model − measured| / measured`.
    ///
    /// # Panics
    ///
    /// Panics if `measured` is zero, which would make the metric undefined.
    #[inline]
    pub fn relative_deviation(model: f64, measured: f64) -> Self {
        assert!(
            measured != 0.0,
            "relative deviation against a zero measurement is undefined"
        );
        Self((model - measured).abs() / measured.abs())
    }

    /// The paper's overhead-error metric: `estimated/original − 1`
    /// (Appendix B reports the average of `P_chip/P_oe − 1`).
    ///
    /// # Panics
    ///
    /// Panics if `original` is zero.
    #[inline]
    pub fn overhead_error(estimated: f64, original: f64) -> Self {
        assert!(original != 0.0, "overhead error against zero is undefined");
        Self(estimated / original - 1.0)
    }

    /// Formats as the paper's "Nx" convention, e.g. `Ratio(175.0)` → `"175x"`.
    pub fn as_times(self) -> String {
        if self.0.abs() >= 10.0 {
            format!("{:.0}x", self.0)
        } else {
            format!("{:.2}x", self.0)
        }
    }

    /// Returns the absolute value.
    #[inline]
    pub fn abs(self) -> Self {
        Self(self.0.abs())
    }

    /// Returns the larger of two ratios.
    #[inline]
    pub fn max(self, other: Self) -> Self {
        Self(self.0.max(other.0))
    }

    /// Arithmetic mean over an iterator of ratios; `None` when empty.
    pub fn mean<I: IntoIterator<Item = Ratio>>(iter: I) -> Option<Ratio> {
        let mut sum = 0.0;
        let mut n = 0usize;
        for r in iter {
            sum += r.0;
            n += 1;
        }
        if n == 0 {
            None
        } else {
            Some(Ratio(sum / n as f64))
        }
    }
}

impl core::ops::Add for Ratio {
    type Output = Self;
    fn add(self, rhs: Self) -> Self {
        Self(self.0 + rhs.0)
    }
}

impl core::ops::Sub for Ratio {
    type Output = Self;
    fn sub(self, rhs: Self) -> Self {
        Self(self.0 - rhs.0)
    }
}

impl core::ops::Mul<f64> for Ratio {
    type Output = Self;
    fn mul(self, rhs: f64) -> Self {
        Self(self.0 * rhs)
    }
}

impl core::fmt::Display for Ratio {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{:.4}", self.0)
    }
}

impl From<f64> for Ratio {
    fn from(v: f64) -> Self {
        Self(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deviation_symmetry_in_magnitude() {
        // Over- and under-estimation both produce positive inaccuracies.
        assert_eq!(Ratio::relative_deviation(2.0, 1.0), Ratio(1.0));
        assert_eq!(Ratio::relative_deviation(0.5, 1.0), Ratio(0.5));
    }

    #[test]
    fn overhead_error_matches_paper_convention() {
        // An estimate 176x the original is a "175x" error.
        let err = Ratio::overhead_error(0.57, 0.57 / 176.0);
        assert!((err.0 - 175.0).abs() < 1e-9);
        assert_eq!(err.as_times(), "175x");
    }

    #[test]
    fn negative_error_for_overestimates_in_original() {
        // R.B. DEC. has a -0.25x error: real overhead below the original claim.
        let err = Ratio::overhead_error(0.75, 1.0);
        assert!((err.0 + 0.25).abs() < 1e-12);
        assert_eq!(err.as_times(), "-0.25x");
    }

    #[test]
    fn percent_round_trip() {
        let r = Ratio::from_percent(236.0);
        assert!((r.as_percent() - 236.0).abs() < 1e-9);
    }

    #[test]
    fn mean_of_empty_is_none() {
        assert_eq!(Ratio::mean(std::iter::empty()), None);
        let m = Ratio::mean([Ratio(1.0), Ratio(3.0)]).unwrap();
        assert_eq!(m, Ratio(2.0));
    }

    #[test]
    #[should_panic(expected = "undefined")]
    fn deviation_from_zero_panics() {
        let _ = Ratio::relative_deviation(1.0, 0.0);
    }
}
