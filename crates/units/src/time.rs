//! Time quantities: nanoseconds and picoseconds.

use crate::quantity;

quantity! {
    /// A time in nanoseconds — the natural unit for DDR timing parameters
    /// (tRCD, tRAS, tRP are tens of ns).
    Nanoseconds, "ns"
}

quantity! {
    /// A time in picoseconds, used for analog simulation timesteps.
    Picoseconds, "ps"
}

impl Nanoseconds {
    /// Converts to picoseconds.
    #[inline]
    pub fn to_picoseconds(self) -> Picoseconds {
        Picoseconds(self.0 * 1e3)
    }
}

impl Picoseconds {
    /// Converts to nanoseconds.
    #[inline]
    pub fn to_nanoseconds(self) -> Nanoseconds {
        Nanoseconds(self.0 / 1e3)
    }
}

impl From<Nanoseconds> for Picoseconds {
    fn from(v: Nanoseconds) -> Self {
        v.to_picoseconds()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ns_ps_round_trip() {
        let t = Nanoseconds(13.75);
        assert_eq!(t.to_picoseconds(), Picoseconds(13750.0));
        assert!((t.to_picoseconds().to_nanoseconds() - t).abs() < Nanoseconds(1e-12));
    }
}
