//! Length quantities: nanometres, micrometres, millimetres.

use crate::quantity;
use crate::{SquareMicrometers, SquareNanometers};

quantity! {
    /// A length in nanometres — the native unit for transistor dimensions,
    /// wire widths and layer thicknesses in this workspace.
    ///
    /// ```
    /// use hifi_units::Nanometers;
    /// let gate_length = Nanometers(55.0);
    /// assert_eq!(gate_length.to_micrometers().value(), 0.055);
    /// ```
    Nanometers, "nm"
}

quantity! {
    /// A length in micrometres, used for region-scale dimensions (MAT edges,
    /// SA region heights, imaged areas).
    ///
    /// ```
    /// use hifi_units::Micrometers;
    /// assert_eq!(Micrometers(1.5).to_nanometers().value(), 1500.0);
    /// ```
    Micrometers, "um"
}

quantity! {
    /// A length in millimetres, used for die-scale dimensions.
    ///
    /// ```
    /// use hifi_units::Millimeters;
    /// assert_eq!(Millimeters(2.0).to_micrometers().value(), 2000.0);
    /// ```
    Millimeters, "mm"
}

impl Nanometers {
    /// Converts to micrometres.
    #[inline]
    pub fn to_micrometers(self) -> Micrometers {
        Micrometers(self.0 / 1e3)
    }

    /// Converts to millimetres.
    #[inline]
    pub fn to_millimeters(self) -> Millimeters {
        Millimeters(self.0 / 1e6)
    }

    /// Multiplies two lengths into an area.
    ///
    /// ```
    /// use hifi_units::{Nanometers, SquareNanometers};
    /// assert_eq!(Nanometers(3.0).by(Nanometers(4.0)), SquareNanometers(12.0));
    /// ```
    #[inline]
    pub fn by(self, other: Nanometers) -> SquareNanometers {
        SquareNanometers(self.0 * other.0)
    }
}

impl Micrometers {
    /// Converts to nanometres.
    #[inline]
    pub fn to_nanometers(self) -> Nanometers {
        Nanometers(self.0 * 1e3)
    }

    /// Converts to millimetres.
    #[inline]
    pub fn to_millimeters(self) -> Millimeters {
        Millimeters(self.0 / 1e3)
    }

    /// Multiplies two lengths into an area.
    #[inline]
    pub fn by(self, other: Micrometers) -> SquareMicrometers {
        SquareMicrometers(self.0 * other.0)
    }
}

impl Millimeters {
    /// Converts to micrometres.
    #[inline]
    pub fn to_micrometers(self) -> Micrometers {
        Micrometers(self.0 * 1e3)
    }

    /// Converts to nanometres.
    #[inline]
    pub fn to_nanometers(self) -> Nanometers {
        Nanometers(self.0 * 1e6)
    }
}

impl From<Micrometers> for Nanometers {
    fn from(v: Micrometers) -> Self {
        v.to_nanometers()
    }
}

impl From<Millimeters> for Micrometers {
    fn from(v: Millimeters) -> Self {
        v.to_micrometers()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversion_round_trip() {
        let x = Nanometers(1234.5);
        assert!((x.to_micrometers().to_nanometers() - x).abs() < Nanometers(1e-9));
        let y = Millimeters(0.75);
        assert!((y.to_micrometers().to_millimeters() - y).abs() < Millimeters(1e-12));
    }

    #[test]
    fn area_from_lengths() {
        let area = Nanometers(100.0).by(Nanometers(55.0));
        assert_eq!(area, SquareNanometers(5500.0));
    }

    #[test]
    fn from_impls() {
        let nm: Nanometers = Micrometers(2.0).into();
        assert_eq!(nm, Nanometers(2000.0));
        let um: Micrometers = Millimeters(0.5).into();
        assert_eq!(um, Micrometers(500.0));
    }
}
