//! Area quantities: square nanometres, micrometres and millimetres.

use crate::quantity;
use crate::Nanometers;

quantity! {
    /// An area in square nanometres — the native unit for transistor and
    /// layout-element footprints.
    SquareNanometers, "nm^2"
}

quantity! {
    /// An area in square micrometres, used for imaged regions (the paper scans
    /// 100 um^2 and 30 um^2 windows).
    SquareMicrometers, "um^2"
}

quantity! {
    /// An area in square millimetres, used for die areas (Table I reports die
    /// sizes of 34–75 mm^2).
    SquareMillimeters, "mm^2"
}

impl SquareNanometers {
    /// Converts to square micrometres.
    #[inline]
    pub fn to_square_micrometers(self) -> SquareMicrometers {
        SquareMicrometers(self.0 / 1e6)
    }

    /// Converts to square millimetres.
    #[inline]
    pub fn to_square_millimeters(self) -> SquareMillimeters {
        SquareMillimeters(self.0 / 1e12)
    }

    /// Divides an area by a length, yielding a length.
    ///
    /// ```
    /// use hifi_units::{Nanometers, SquareNanometers};
    /// assert_eq!(SquareNanometers(12.0).over(Nanometers(4.0)), Nanometers(3.0));
    /// ```
    #[inline]
    pub fn over(self, len: Nanometers) -> Nanometers {
        Nanometers(self.0 / len.0)
    }
}

impl SquareMicrometers {
    /// Converts to square nanometres.
    #[inline]
    pub fn to_square_nanometers(self) -> SquareNanometers {
        SquareNanometers(self.0 * 1e6)
    }

    /// Converts to square millimetres.
    #[inline]
    pub fn to_square_millimeters(self) -> SquareMillimeters {
        SquareMillimeters(self.0 / 1e6)
    }
}

impl SquareMillimeters {
    /// Converts to square micrometres.
    #[inline]
    pub fn to_square_micrometers(self) -> SquareMicrometers {
        SquareMicrometers(self.0 * 1e6)
    }

    /// Converts to square nanometres.
    #[inline]
    pub fn to_square_nanometers(self) -> SquareNanometers {
        SquareNanometers(self.0 * 1e12)
    }
}

impl From<SquareMicrometers> for SquareNanometers {
    fn from(v: SquareMicrometers) -> Self {
        v.to_square_nanometers()
    }
}

impl From<SquareMillimeters> for SquareNanometers {
    fn from(v: SquareMillimeters) -> Self {
        v.to_square_nanometers()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_are_consistent() {
        let a = SquareMillimeters(34.0);
        assert_eq!(a.to_square_micrometers(), SquareMicrometers(34e6));
        assert_eq!(a.to_square_nanometers(), SquareNanometers(34e12));
        let back = a.to_square_nanometers().to_square_millimeters();
        assert!((back - a).abs() < SquareMillimeters(1e-9));
    }

    #[test]
    fn area_over_length() {
        let a = Nanometers(10.0).by(Nanometers(20.0));
        assert_eq!(a.over(Nanometers(10.0)), Nanometers(20.0));
    }
}
