//! Seeded Monte-Carlo offset-tolerance sweeps on the MNA engine.
//!
//! The paper's §VI sensitivity analysis asks how much latch mismatch each SA
//! family survives. This module answers it statistically: sample per-device
//! threshold offsets from `N(0, σ·√2)` (pair mismatch is the difference of
//! two `N(0, σ)` thresholds), run a full MNA activation per sample and
//! stored value, and fold the verdicts into an [`McReport`].
//!
//! Determinism is a hard contract, shared with the conformance campaigns:
//! sample `i` derives its RNG seed from the sweep seed via SplitMix64
//! finalisation, the fan-out uses the vendored `rayon`'s order-preserving
//! `par_map`, and every aggregate is folded sequentially from the ordered
//! sample list — so a report is a pure function of its [`McConfig`],
//! bit-identical at any thread count.

use crate::events::{try_simulate, ActivationConfig};
use crate::mna::SolveStats;
use hifi_circuit::topology::SaTopologyKind;
use hifi_telemetry::{names, Recorder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Monte-Carlo sweep parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct McConfig {
    /// Sweep seed; sample `i` uses `sample_seed(seed, i)`.
    pub seed: u64,
    /// Number of mismatch samples (each runs both stored values).
    pub samples: usize,
    /// Standard deviation of a single device's threshold mismatch (mV).
    pub sigma_mv: f64,
    /// Topology under test.
    pub topology: SaTopologyKind,
    /// Base testbench configuration.
    pub base: ActivationConfig,
}

impl McConfig {
    /// A sweep over the workspace-default testbench.
    pub fn new(topology: SaTopologyKind, sigma_mv: f64, samples: usize) -> Self {
        Self {
            seed: 0x0F_F5E7,
            samples,
            sigma_mv,
            topology,
            base: ActivationConfig::default(),
        }
    }
}

/// Derives sample `index`'s RNG seed from the sweep seed (SplitMix64
/// finalisation, so neighbouring indices land far apart in seed space).
pub fn sample_seed(sweep_seed: u64, index: u64) -> u64 {
    mix(sweep_seed.wrapping_add(mix(index
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(1))))
}

fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

fn gaussian(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(1e-12..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// One Monte-Carlo sample's outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct McSample {
    /// Sample index within the sweep.
    pub index: usize,
    /// Derived RNG seed (reproduces the sample in isolation).
    pub seed: u64,
    /// Sampled pair-mismatch offset (mV, signed).
    pub offset_mv: f64,
    /// Whether both stored values sensed correctly.
    pub correct: bool,
    /// Worst per-step Newton iteration count over both activations.
    pub max_newton_iterations: usize,
    /// Worst post-convergence KCL residual over both activations (A).
    pub worst_kcl_residual_amps: f64,
    /// Latch split time of the stored-1 activation (ps), when it split.
    pub split_ps: Option<f64>,
}

/// Aggregate of one Monte-Carlo sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct McReport {
    /// Topology swept.
    pub topology: SaTopologyKind,
    /// Mismatch σ used (mV).
    pub sigma_mv: f64,
    /// Sweep seed.
    pub seed: u64,
    /// Per-sample outcomes, in sample order.
    pub samples: Vec<McSample>,
    /// Samples in which at least one stored value mis-sensed.
    pub failures: usize,
    /// Fraction of samples in which both stored values sensed correctly.
    pub yield_fraction: f64,
    /// Smallest |offset| (mV) among failing samples, if any — the sweep's
    /// empirical tolerance edge.
    pub smallest_failing_offset_mv: Option<f64>,
    /// Accumulated solver work across all activations.
    pub solve: SolveStats,
}

impl McReport {
    /// Records the sweep into a telemetry [`Recorder`]: sample/failure
    /// counters, the yield gauge, and per-sample histograms of Newton
    /// iteration counts and latch split times.
    pub fn record_to<R: Recorder + ?Sized>(&self, rec: &mut R) {
        rec.counter(names::MNA_SAMPLES, self.samples.len() as u64);
        rec.counter(names::MNA_FAILURES, self.failures as u64);
        rec.gauge(names::MNA_YIELD_PCT, self.yield_fraction * 100.0);
        for s in &self.samples {
            rec.histogram(names::HIST_MNA_NEWTON_ITERS, s.max_newton_iterations as u64);
            if let Some(ps) = s.split_ps {
                rec.histogram(names::HIST_MNA_SPLIT_PS, ps.round().max(0.0) as u64);
            }
        }
    }
}

fn run_sample(cfg: &McConfig, index: usize) -> McSample {
    let seed = sample_seed(cfg.seed, index as u64);
    let mut rng = StdRng::seed_from_u64(seed);
    let offset_v = gaussian(&mut rng) * cfg.sigma_mv * 1e-3 * std::f64::consts::SQRT_2;
    let mut activation = cfg.base.clone();
    activation.nsa_vt_offset = offset_v;

    let mut correct = true;
    let mut max_newton = 0usize;
    let mut worst_kcl = 0.0f64;
    let mut split_ps = None;
    for stored in [false, true] {
        let rep = try_simulate(cfg.topology, &activation, stored).expect("valid MC testbench");
        correct &= rep.correct;
        if let Some(stats) = rep.solve_stats {
            max_newton = max_newton.max(stats.max_newton_iterations);
            worst_kcl = worst_kcl.max(stats.worst_kcl_residual_amps);
        }
        if stored {
            split_ps = rep.latch_split_time.map(|t| t * 1e12);
        }
    }
    McSample {
        index,
        seed,
        offset_mv: offset_v * 1e3,
        correct,
        max_newton_iterations: max_newton,
        worst_kcl_residual_amps: worst_kcl,
        split_ps,
    }
}

/// Runs a Monte-Carlo offset-tolerance sweep.
///
/// The fan-out is thread-count invariant: run it under
/// `rayon::with_num_threads(n, ..)` for any `n` and the report is
/// bit-identical.
///
/// # Panics
///
/// Panics if `config.samples` is zero.
pub fn run_sweep(config: &McConfig) -> McReport {
    assert!(config.samples > 0, "at least one sample required");
    let indices: Vec<usize> = (0..config.samples).collect();
    let samples = rayon::par_map(&indices, |&i| run_sample(config, i));

    // Sequential fold over the ordered samples keeps aggregates exact.
    let mut failures = 0usize;
    let mut smallest_failing: Option<f64> = None;
    let mut solve = SolveStats::default();
    for s in &samples {
        if !s.correct {
            failures += 1;
            let mag = s.offset_mv.abs();
            smallest_failing = Some(match smallest_failing {
                Some(cur) if cur <= mag => cur,
                _ => mag,
            });
        }
        solve.newton_iterations += s.max_newton_iterations;
        solve.max_newton_iterations = solve.max_newton_iterations.max(s.max_newton_iterations);
        solve.worst_kcl_residual_amps =
            solve.worst_kcl_residual_amps.max(s.worst_kcl_residual_amps);
    }
    let yield_fraction = (config.samples - failures) as f64 / config.samples as f64;
    McReport {
        topology: config.topology,
        sigma_mv: config.sigma_mv,
        seed: config.seed,
        samples,
        failures,
        yield_fraction,
        smallest_failing_offset_mv: smallest_failing,
        solve,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hifi_telemetry::JsonRecorder;

    fn small_cfg(topology: SaTopologyKind, sigma_mv: f64) -> McConfig {
        McConfig {
            samples: 4,
            ..McConfig::new(topology, sigma_mv, 4)
        }
    }

    #[test]
    fn zero_mismatch_sweep_is_clean() {
        let rep = run_sweep(&small_cfg(SaTopologyKind::Classic, 0.0));
        assert_eq!(rep.failures, 0);
        assert_eq!(rep.yield_fraction, 1.0);
        assert_eq!(rep.smallest_failing_offset_mv, None);
        assert!(rep.solve.max_newton_iterations >= 1);
    }

    #[test]
    fn sample_seeds_are_spread_and_reproducible() {
        let a = sample_seed(7, 0);
        let b = sample_seed(7, 1);
        assert_ne!(a, b);
        assert_eq!(a, sample_seed(7, 0));
        // Different sweep seeds decorrelate the same index.
        assert_ne!(a, sample_seed(8, 0));
    }

    #[test]
    fn heavy_mismatch_fails_the_classic_latch() {
        let rep = run_sweep(&McConfig::new(SaTopologyKind::Classic, 90.0, 6));
        assert!(rep.failures > 0, "σ=90 mV must defeat some classic samples");
        let edge = rep.smallest_failing_offset_mv.expect("edge exists");
        assert!(edge > 0.0);
        // Every failing sample carries at least the edge magnitude.
        for s in rep.samples.iter().filter(|s| !s.correct) {
            assert!(s.offset_mv.abs() + 1e-12 >= edge);
        }
    }

    #[test]
    fn sweep_is_thread_count_invariant() {
        let cfg = small_cfg(SaTopologyKind::Classic, 40.0);
        let one = rayon::with_num_threads(1, || run_sweep(&cfg));
        let four = rayon::with_num_threads(4, || run_sweep(&cfg));
        assert_eq!(one, four);
    }

    #[test]
    fn report_records_counters_and_histograms() {
        let rep = run_sweep(&small_cfg(SaTopologyKind::Classic, 0.0));
        let mut rec = JsonRecorder::new();
        rep.record_to(&mut rec);
        assert_eq!(rec.counter_total(names::MNA_SAMPLES), 4);
        assert_eq!(rec.counter_total(names::MNA_FAILURES), 0);
        let json = rec.to_json();
        assert!(json.contains(names::HIST_MNA_NEWTON_ITERS), "{json}");
    }
}
