//! Transient analog simulation of DRAM sense amplifiers.
//!
//! Research that modifies sense amplifiers validates its changes with analog
//! simulation; the paper shows those simulations are only as good as the
//! circuit topology and transistor dimensions they assume (Section VI-A).
//! This crate is the workspace's analog engine:
//!
//! - [`MosfetModel`] — a square-law (SPICE level-1 style) MOSFET with
//!   per-device threshold mismatch, the mechanism behind sensing offset,
//! - [`sim`] — a fixed-timestep transient solver over [`hifi_circuit::Netlist`]s
//!   with piecewise-linear stimuli and recorded waveforms,
//! - [`events`] — the paper's SA operation sequences: the classic events of
//!   Fig. 2c (charge sharing → latch & restore → precharge/equalise) and the
//!   OCSA events of Fig. 9b (offset cancellation → *delayed* charge sharing →
//!   pre-sensing → restore), plus offset-tolerance sweeps that reproduce why
//!   vendors moved to offset-cancellation designs.
//!
//! # Examples
//!
//! ```
//! use hifi_analog::events::{simulate_classic_activation, ActivationConfig};
//!
//! let report = simulate_classic_activation(&ActivationConfig::default(), true);
//! assert!(report.correct, "a healthy classic SA senses a stored 1");
//! ```

pub mod events;
mod model;
pub mod reliability;
pub mod sim;

pub use model::{MosfetModel, MosfetOpRegion};
pub use sim::{AnalogCircuit, SimError, Stimulus, Transient, Waveform, Waveforms};
