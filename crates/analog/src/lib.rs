//! Transient analog simulation of DRAM sense amplifiers.
//!
//! Research that modifies sense amplifiers validates its changes with analog
//! simulation; the paper shows those simulations are only as good as the
//! circuit topology and transistor dimensions they assume (Section VI-A).
//! This crate is the workspace's analog engine:
//!
//! - [`MosfetModel`] — a square-law (SPICE level-1 style) MOSFET with
//!   per-device threshold mismatch, the mechanism behind sensing offset,
//! - [`mna`] — a Modified-Nodal-Analysis transient engine (backward-Euler
//!   companion models, damped Newton iteration, KCL residual audits) driven
//!   directly by [`hifi_circuit::Netlist`]s — including netlists recovered
//!   by the extraction pipeline,
//! - [`sim`] — the legacy fixed-timestep explicit solver, kept for
//!   cross-validating the MNA engine,
//! - [`events`] — the paper's SA operation sequences: the classic events of
//!   Fig. 2c (charge sharing → latch & restore → precharge/equalise) and the
//!   OCSA events of Fig. 9b (offset cancellation → *delayed* charge sharing →
//!   pre-sensing → restore), built as stimulus schedules over roles inferred
//!   from the netlist ([`events::SaRoles`]), plus offset-tolerance sweeps
//!   that reproduce why vendors moved to offset-cancellation designs,
//! - [`montecarlo`] — seeded, thread-count-invariant Monte-Carlo mismatch
//!   sweeps feeding the §VI sensitivity tables.
//!
//! # Examples
//!
//! ```
//! use hifi_analog::events::{simulate_classic_activation, ActivationConfig};
//!
//! let report = simulate_classic_activation(&ActivationConfig::default(), true);
//! assert!(report.correct, "a healthy classic SA senses a stored 1");
//! ```

pub mod events;
pub mod mna;
mod model;
pub mod montecarlo;
pub mod reliability;
pub mod sim;
mod stamp;

pub use mna::{MnaCircuit, MnaRun, MnaTransient, SolveStats};
pub use model::{MosfetModel, MosfetOpRegion};
pub use montecarlo::{run_sweep, McConfig, McReport, McSample};
pub use sim::{AnalogCircuit, SimError, Stimulus, Transient, Waveform, Waveforms};
