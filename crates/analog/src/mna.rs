//! Modified-Nodal-Analysis transient engine.
//!
//! The fixed-timestep solver in [`crate::sim`] integrates node charge
//! explicitly, which forces sub-picosecond steps and treats driven nets as
//! ideal rails outside the equation system. This module solves the circuit
//! equations properly: every node voltage and every source branch current is
//! an unknown of one nonlinear system per timestep, discretised with
//! backward Euler and solved by damped Newton iteration. That buys
//! unconditional stability (20× coarser steps at the same fidelity), exact
//! KCL at every solution point (the property tests pin the residual), and
//! typed diagnostics when the latch's positive feedback defeats convergence.
//!
//! The engine is driven by the same [`Stimulus`] schedules as the legacy
//! solver and accepts any [`hifi_circuit::Netlist`] — including netlists
//! straight out of `hifi_extract`, which is what makes the behavioral
//! conformance oracle possible.

use crate::model::MosfetModel;
use crate::sim::{SimError, Stimulus, Waveform, Waveforms};
use crate::stamp::{MnaSystem, NodeRef};
use hifi_circuit::{Device, Netlist};
use hifi_units::{Femtofarads, Volts};
use std::collections::HashMap;

/// Perturbation used for the numerical MOSFET partial derivatives (V).
const DERIV_STEP_V: f64 = 1e-6;

#[derive(Debug, Clone)]
enum Element {
    Resistor { a: usize, b: usize, siemens: f64 },
    Capacitor { a: usize, b: usize, farads: f64 },
    Mosfet(MosfetElement),
}

#[derive(Debug, Clone)]
struct MosfetElement {
    name: String,
    model: MosfetModel,
    gate: usize,
    source: usize,
    drain: usize,
}

/// A circuit compiled for MNA simulation.
///
/// Node voltages are referenced to an implicit ground that is *not* a named
/// node: a netlist's `GND` net is an ordinary node a [`Stimulus`] holds at
/// 0 V, exactly as with [`crate::AnalogCircuit`]. Every node carries a small
/// parasitic capacitance and a `gmin` leak to the reference so the system
/// stays well-posed even around cut-off transistors.
#[derive(Debug, Clone)]
pub struct MnaCircuit {
    node_names: Vec<String>,
    elements: Vec<Element>,
    parasitic_f: f64,
    gmin_siemens: f64,
    vt_offsets: HashMap<String, Volts>,
}

impl Default for MnaCircuit {
    fn default() -> Self {
        Self::new()
    }
}

impl MnaCircuit {
    /// Default per-node parasitic capacitance, matching the legacy engine.
    pub const DEFAULT_PARASITIC: Femtofarads = Femtofarads(0.5);
    /// Default conditioning conductance from every node to the reference.
    pub const DEFAULT_GMIN_S: f64 = 1e-12;

    /// An empty circuit for builder-style construction (mainly tests).
    pub fn new() -> Self {
        Self {
            node_names: Vec::new(),
            elements: Vec::new(),
            parasitic_f: Self::DEFAULT_PARASITIC.value() * 1e-15,
            gmin_siemens: Self::DEFAULT_GMIN_S,
            vt_offsets: HashMap::new(),
        }
    }

    /// Interns a node by name, returning its index.
    pub fn node(&mut self, name: &str) -> usize {
        if let Some(i) = self.node_names.iter().position(|n| n == name) {
            return i;
        }
        self.node_names.push(name.to_owned());
        self.node_names.len() - 1
    }

    /// Adds a resistor between two named nodes.
    ///
    /// # Panics
    ///
    /// Panics if `ohms` is not strictly positive.
    pub fn add_resistor(&mut self, a: &str, b: &str, ohms: f64) -> &mut Self {
        assert!(ohms > 0.0, "resistance must be positive, got {ohms}");
        let (a, b) = (self.node(a), self.node(b));
        self.elements.push(Element::Resistor {
            a,
            b,
            siemens: 1.0 / ohms,
        });
        self
    }

    /// Adds a capacitor between two named nodes.
    pub fn add_capacitor(&mut self, a: &str, b: &str, c: Femtofarads) -> &mut Self {
        let (a, b) = (self.node(a), self.node(b));
        self.elements.push(Element::Capacitor {
            a,
            b,
            farads: c.value() * 1e-15,
        });
        self
    }

    /// Adds a MOSFET with an explicit model.
    pub fn add_mosfet(
        &mut self,
        name: &str,
        model: MosfetModel,
        gate: &str,
        source: &str,
        drain: &str,
    ) -> &mut Self {
        let (gate, source, drain) = (self.node(gate), self.node(source), self.node(drain));
        self.elements.push(Element::Mosfet(MosfetElement {
            name: name.to_owned(),
            model,
            gate,
            source,
            drain,
        }));
        self
    }

    /// Compiles a netlist: MOSFET models from the netlist's drawn W/L,
    /// capacitors from its `Femtofarads` values. Works for hand-built
    /// topologies and extracted netlists alike.
    pub fn from_netlist(netlist: &Netlist) -> Self {
        let mut circuit = Self::new();
        circuit.node_names = (0..netlist.net_count())
            .map(|i| netlist.net_name(hifi_circuit::NetId(i)).to_owned())
            .collect();
        for (_, dev) in netlist.devices() {
            match dev {
                Device::Mosfet(m) => circuit.elements.push(Element::Mosfet(MosfetElement {
                    name: m.name.clone(),
                    model: MosfetModel::new(m.polarity, m.dims.w_over_l()),
                    gate: m.gate.0,
                    source: m.source.0,
                    drain: m.drain.0,
                })),
                Device::Capacitor(c) => circuit.elements.push(Element::Capacitor {
                    a: c.a.0,
                    b: c.b.0,
                    farads: c.value.value() * 1e-15,
                }),
            }
        }
        circuit
    }

    /// Sets the per-node parasitic capacitance (builder style).
    pub fn with_parasitic(mut self, c: Femtofarads) -> Self {
        self.parasitic_f = c.value() * 1e-15;
        self
    }

    /// Adds a threshold-voltage offset to the named MOSFET.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownDevice`] if no MOSFET has that name.
    pub fn with_vt_offset(mut self, device: &str, offset: Volts) -> Result<Self, SimError> {
        let found = self.elements.iter_mut().find_map(|e| match e {
            Element::Mosfet(m) if m.name == device => Some(m),
            _ => None,
        });
        let Some(m) = found else {
            return Err(SimError::UnknownDevice(device.into()));
        };
        m.model = m.model.with_vt_offset(offset);
        self.vt_offsets.insert(device.into(), offset);
        Ok(self)
    }

    /// The threshold offsets applied so far, by device name.
    pub fn vt_offsets(&self) -> &HashMap<String, Volts> {
        &self.vt_offsets
    }

    /// Node names in the compiled circuit.
    pub fn node_names(&self) -> &[String] {
        &self.node_names
    }

    fn node_index(&self, name: &str) -> Option<usize> {
        self.node_names.iter().position(|n| n == name)
    }
}

/// Convergence and accuracy diagnostics for one transient run.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SolveStats {
    /// Timesteps solved.
    pub steps: usize,
    /// Newton iterations summed over all steps.
    pub newton_iterations: usize,
    /// Worst per-step Newton iteration count.
    pub max_newton_iterations: usize,
    /// Largest KCL residual (A) observed at any accepted solution point —
    /// the property tests pin this to essentially machine precision.
    pub worst_kcl_residual_amps: f64,
}

/// Result of an MNA transient: sampled waveforms plus solver diagnostics.
#[derive(Debug, Clone)]
pub struct MnaRun {
    /// Recorded node voltages, sampled on the same grid as the legacy
    /// engine's output.
    pub waveforms: Waveforms,
    /// Solver diagnostics.
    pub stats: SolveStats,
}

/// Backward-Euler transient configuration for [`MnaCircuit`].
#[derive(Debug, Clone)]
pub struct MnaTransient {
    /// Integration timestep (s). Backward Euler is unconditionally stable,
    /// so the default (5 ps) is 20× the legacy explicit step.
    pub dt: f64,
    /// Simulation duration (s).
    pub t_end: f64,
    /// Recording interval (s). Default 10 ps.
    pub dt_sample: f64,
    /// Initial voltages for floating nodes (by name); unlisted nodes start
    /// at 0 V.
    pub initial: HashMap<String, f64>,
    /// Newton iteration cap per timestep.
    pub max_newton: usize,
    /// Convergence threshold on the voltage update (V).
    pub tol_v: f64,
    /// Damping clamp: the largest per-iteration voltage move allowed (V).
    pub damping_v: f64,
}

impl MnaTransient {
    /// A transient of the given duration with workspace-default settings.
    pub fn new(t_end: f64) -> Self {
        Self {
            dt: 5e-12,
            t_end,
            dt_sample: 10e-12,
            initial: HashMap::new(),
            max_newton: 100,
            tol_v: 1e-9,
            damping_v: 0.3,
        }
    }

    /// Sets an initial condition on a floating node (builder style).
    pub fn with_initial(mut self, net: &str, v: Volts) -> Self {
        self.initial.insert(net.into(), v.value());
        self
    }

    /// Runs the transient.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidTimestep`] / [`SimError::UnknownNet`] for
    /// bad configuration, [`SimError::NoConvergence`] when Newton iteration
    /// stalls, and [`SimError::SingularSystem`] when the linearised system
    /// has no usable pivot.
    pub fn run(&self, circuit: &MnaCircuit, stimulus: &Stimulus) -> Result<MnaRun, SimError> {
        let positive = |x: f64| x.partial_cmp(&0.0) == Some(std::cmp::Ordering::Greater);
        if !positive(self.dt) || !positive(self.t_end) || !positive(self.dt_sample) {
            return Err(SimError::InvalidTimestep(self.dt));
        }
        let n_nodes = circuit.node_names.len();

        // Driven nets become voltage-source branches, in sorted-name order
        // so the unknown layout is deterministic.
        let mut sources: Vec<(usize, &Waveform)> = Vec::new();
        let mut driven_names: Vec<&str> = stimulus.driven_nets().collect();
        driven_names.sort_unstable();
        for name in driven_names {
            let idx = circuit
                .node_index(name)
                .ok_or_else(|| SimError::UnknownNet(name.into()))?;
            sources.push((idx, stimulus.waveform(name).expect("driven net")));
        }
        for name in self.initial.keys() {
            if circuit.node_index(name).is_none() {
                return Err(SimError::UnknownNet(name.clone()));
            }
        }
        let driven: Vec<bool> = {
            let mut d = vec![false; n_nodes];
            for &(idx, _) in &sources {
                d[idx] = true;
            }
            d
        };

        let n = n_nodes + sources.len();
        let mut x = vec![0.0f64; n];
        for (k, &(idx, wf)) in sources.iter().enumerate() {
            x[idx] = wf.value(0.0);
            x[n_nodes + k] = 0.0;
        }
        for (name, &v) in &self.initial {
            let idx = circuit.node_index(name).expect("validated above");
            if !driven[idx] {
                x[idx] = v;
            }
        }

        let steps = (self.t_end / self.dt).ceil() as usize;
        let sample_every = (self.dt_sample / self.dt).round().max(1.0) as usize;
        let mut traces: HashMap<String, Vec<f64>> = circuit
            .node_names
            .iter()
            .map(|nm| (nm.clone(), Vec::with_capacity(steps / sample_every + 2)))
            .collect();

        let mut stats = SolveStats::default();
        let mut sys = MnaSystem::new(n);
        let mut residual = vec![0.0f64; n];
        let mut v_prev = x[..n_nodes].to_vec();

        for step in 0..=steps {
            if step % sample_every == 0 {
                for (i, nm) in circuit.node_names.iter().enumerate() {
                    traces.get_mut(nm).expect("trace").push(x[i]);
                }
            }
            if step == steps {
                break;
            }
            let t_next = (step + 1) as f64 * self.dt;
            v_prev.copy_from_slice(&x[..n_nodes]);

            let mut converged = false;
            let mut worst_dv = f64::INFINITY;
            let mut iters = 0usize;
            while iters < self.max_newton {
                iters += 1;
                self.assemble(circuit, &sources, &v_prev, &x, t_next, &mut sys, None);
                let Some(dx) = sys.solve() else {
                    return Err(SimError::SingularSystem { time_s: t_next });
                };
                worst_dv = dx[..n_nodes].iter().fold(0.0f64, |m, d| m.max(d.abs()));
                let scale = if worst_dv > self.damping_v {
                    self.damping_v / worst_dv
                } else {
                    1.0
                };
                for (xi, di) in x.iter_mut().zip(&dx) {
                    *xi += scale * di;
                }
                if worst_dv < self.tol_v {
                    converged = true;
                    break;
                }
            }
            if !converged {
                return Err(SimError::NoConvergence {
                    time_s: t_next,
                    iterations: iters,
                    worst_delta_v: worst_dv,
                });
            }
            stats.steps += 1;
            stats.newton_iterations += iters;
            stats.max_newton_iterations = stats.max_newton_iterations.max(iters);

            // KCL audit at the accepted point: residual-only pass.
            self.assemble(
                circuit,
                &sources,
                &v_prev,
                &x,
                t_next,
                &mut sys,
                Some(&mut residual),
            );
            let worst = residual[..n_nodes]
                .iter()
                .fold(0.0f64, |m, r| m.max(r.abs()));
            stats.worst_kcl_residual_amps = stats.worst_kcl_residual_amps.max(worst);
        }

        Ok(MnaRun {
            waveforms: Waveforms {
                dt_sample: self.dt_sample,
                traces,
            },
            stats,
        })
    }

    /// Assembles the Newton system at the guess `x`: Jacobian into `sys.a`
    /// and `−residual` into `sys.b`, so `solve()` yields the update `Δx`.
    /// With `residual_out` set, only the residual vector is produced (used
    /// for the post-convergence KCL audit).
    #[allow(clippy::too_many_arguments)]
    fn assemble(
        &self,
        circuit: &MnaCircuit,
        sources: &[(usize, &Waveform)],
        v_prev: &[f64],
        x: &[f64],
        t_next: f64,
        sys: &mut MnaSystem,
        mut residual_out: Option<&mut Vec<f64>>,
    ) {
        let n_nodes = circuit.node_names.len();
        sys.clear();
        if let Some(r) = residual_out.as_deref_mut() {
            r.iter_mut().for_each(|v| *v = 0.0);
        }
        let jacobian = residual_out.is_none();
        // `leaving(i)` accumulates current leaving node i; the Newton rhs is
        // the negated residual.
        macro_rules! leave {
            ($node:expr, $amps:expr) => {
                match residual_out.as_deref_mut() {
                    Some(r) => r[$node] += $amps,
                    None => sys.stamp_rhs(NodeRef::Node($node), -($amps)),
                }
            };
        }

        let geq_par = circuit.parasitic_f / self.dt;
        for i in 0..n_nodes {
            let g = circuit.gmin_siemens + geq_par;
            if jacobian {
                sys.stamp_conductance(NodeRef::Node(i), NodeRef::Ground, g);
            }
            leave!(
                i,
                circuit.gmin_siemens * x[i] + geq_par * (x[i] - v_prev[i])
            );
        }
        for e in &circuit.elements {
            match e {
                Element::Resistor { a, b, siemens } => {
                    if jacobian {
                        sys.stamp_conductance(NodeRef::Node(*a), NodeRef::Node(*b), *siemens);
                    }
                    let i = siemens * (x[*a] - x[*b]);
                    leave!(*a, i);
                    leave!(*b, -i);
                }
                Element::Capacitor { a, b, farads } => {
                    let geq = farads / self.dt;
                    if jacobian {
                        sys.stamp_conductance(NodeRef::Node(*a), NodeRef::Node(*b), geq);
                    }
                    let i = geq * ((x[*a] - x[*b]) - (v_prev[*a] - v_prev[*b]));
                    leave!(*a, i);
                    leave!(*b, -i);
                }
                Element::Mosfet(m) => {
                    let (vg, vs, vd) = (x[m.gate], x[m.source], x[m.drain]);
                    let i_ds = m.model.channel_current(vg, vs, vd);
                    // Positive i_ds flows drain→source through the channel,
                    // i.e. leaves the drain node and enters the source node.
                    leave!(m.drain, i_ds);
                    leave!(m.source, -i_ds);
                    if jacobian {
                        let h = DERIV_STEP_V;
                        let di = |vg2: f64, vs2: f64, vd2: f64| {
                            (m.model.channel_current(vg2, vs2, vd2)
                                - m.model.channel_current(
                                    2.0 * vg - vg2,
                                    2.0 * vs - vs2,
                                    2.0 * vd - vd2,
                                ))
                                / (2.0 * h)
                        };
                        let (d, s, g) = (
                            NodeRef::Node(m.drain),
                            NodeRef::Node(m.source),
                            NodeRef::Node(m.gate),
                        );
                        for (col, dgdv) in [
                            (g, di(vg + h, vs, vd)),
                            (s, di(vg, vs + h, vd)),
                            (d, di(vg, vs, vd + h)),
                        ] {
                            sys.stamp_jacobian(d, col, dgdv);
                            sys.stamp_jacobian(s, col, -dgdv);
                        }
                    }
                }
            }
        }
        let n_nodes_base = n_nodes;
        for (k, &(idx, wf)) in sources.iter().enumerate() {
            let branch = n_nodes_base + k;
            let i_br = x[branch];
            // Branch current leaves the driven node's KCL row; the branch
            // row pins the node voltage to the waveform.
            leave!(idx, i_br);
            match residual_out.as_deref_mut() {
                Some(r) => r[branch] = x[idx] - wf.value(t_next),
                None => {
                    sys.stamp_branch(branch, NodeRef::Node(idx), NodeRef::Ground);
                    sys.stamp_rhs(NodeRef::Node(branch), -(x[idx] - wf.value(t_next)));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hifi_circuit::Polarity;

    #[test]
    fn resistor_divider_settles_to_half() {
        let mut c = MnaCircuit::new();
        c.add_resistor("IN", "MID", 1000.0);
        c.add_resistor("MID", "GND", 1000.0);
        let mut stim = Stimulus::new();
        stim.hold("IN", Volts(1.0)).hold("GND", Volts(0.0));
        let run = MnaTransient::new(1e-9).run(&c, &stim).unwrap();
        let v = run.waveforms.final_voltage("MID").unwrap();
        assert!((v - 0.5).abs() < 1e-6, "divider mid = {v}");
        assert!(run.stats.worst_kcl_residual_amps < 1e-9);
    }

    #[test]
    fn rc_discharge_matches_analytic_solution() {
        // 100 fF through 10 kΩ from 1 V: v(t) = exp(−t/RC), RC = 1 ns.
        let mut c = MnaCircuit::new();
        c.add_resistor("A", "GND", 10_000.0);
        c.add_capacitor("A", "GND", Femtofarads(100.0));
        let c = c.with_parasitic(Femtofarads(0.0));
        let mut stim = Stimulus::new();
        stim.hold("GND", Volts(0.0));
        let mut tr = MnaTransient::new(2e-9).with_initial("A", Volts(1.0));
        tr.dt = 1e-12;
        let run = tr.run(&c, &stim).unwrap();
        let v = run.waveforms.voltage("A", 1e-9).unwrap();
        assert!(
            (v - (-1.0f64).exp()).abs() < 2e-3,
            "v(RC) = {v}, expected {}",
            (-1.0f64).exp()
        );
    }

    #[test]
    fn nmos_discharge_agrees_with_legacy_engine() {
        use hifi_circuit::{TransistorClass, TransistorDims};
        use hifi_units::Nanometers;
        let mut nl = Netlist::new("rc");
        let cap_net = nl.add_net("C");
        let gnd = nl.add_net("GND");
        let gate = nl.add_net("G");
        nl.add_capacitor("c", Femtofarads(50.0), cap_net, gnd);
        nl.add_mosfet(
            "sw",
            Polarity::Nmos,
            TransistorClass::Access,
            TransistorDims::new(Nanometers(400.0), Nanometers(100.0)),
            gate,
            gnd,
            cap_net,
        );
        let mut stim = Stimulus::new();
        stim.hold("GND", Volts(0.0)).hold("G", Volts(1.2));

        let mna = MnaCircuit::from_netlist(&nl);
        let run = MnaTransient::new(5e-9)
            .with_initial("C", Volts(1.0))
            .run(&mna, &stim)
            .unwrap();

        let legacy = crate::AnalogCircuit::from_netlist(&nl);
        let wf = crate::Transient::new(5e-9)
            .with_initial("C", Volts(1.0))
            .run(&legacy, &stim)
            .unwrap();

        for t in [0.5e-9, 1e-9, 2e-9, 4e-9] {
            let a = run.waveforms.voltage("C", t).unwrap();
            let b = wf.voltage("C", t).unwrap();
            assert!(
                (a - b).abs() < 0.02,
                "engines disagree at {t}: mna {a} vs legacy {b}"
            );
        }
    }

    #[test]
    fn unknown_net_and_device_errors() {
        let mut c = MnaCircuit::new();
        c.add_resistor("A", "GND", 1000.0);
        let mut stim = Stimulus::new();
        stim.hold("NOPE", Volts(0.0));
        let err = MnaTransient::new(1e-9).run(&c, &stim).unwrap_err();
        assert_eq!(err, SimError::UnknownNet("NOPE".into()));
        let err = c.clone().with_vt_offset("m?", Volts(0.01)).unwrap_err();
        assert_eq!(err, SimError::UnknownDevice("m?".into()));
    }

    #[test]
    fn invalid_timestep_is_rejected() {
        let c = MnaCircuit::new();
        let stim = Stimulus::new();
        let mut tr = MnaTransient::new(1e-9);
        tr.dt = 0.0;
        assert!(matches!(
            tr.run(&c, &stim),
            Err(SimError::InvalidTimestep(_))
        ));
    }
}
