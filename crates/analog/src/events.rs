//! Sense-amplifier operation sequences and sensing experiments.
//!
//! Implements the event schedules of Fig. 2c (classic) and Fig. 9b (OCSA):
//!
//! | Classic (Fig. 2c)            | OCSA (Fig. 9b)                       |
//! |------------------------------|--------------------------------------|
//! | precharge/equalise (PEQ)     | precharge (PRE, with ISO+OC for EQ)  |
//! | ① charge sharing             | ① offset cancellation                |
//! | ② latching & restore         | ② charge sharing (*delayed*, §VI-D)  |
//! | ③ precharge                  | ③ pre-sensing (no bitline load)      |
//! |                              | ④ restore (ISO on), then precharge   |
//!
//! The testbench hangs a one-cell MAT column off `BL` (the activated MAT) and
//! a dummy column off `BLB` (the reference MAT of the open-bitline scheme),
//! injects threshold mismatch into a latch transistor, and reports whether
//! the amplifier latched the right value.

use crate::sim::{AnalogCircuit, SimError, Stimulus, Transient, Waveforms};
use hifi_circuit::topology::{self, SaDimensions, SaTopologyKind};
use hifi_circuit::TransistorDims;
use hifi_units::{Femtofarads, Nanometers};

/// Phase durations for an activation, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhaseTimings {
    /// Initial precharge hold before the row activation.
    pub precharge_ns: f64,
    /// OCSA offset-cancellation phase (ignored by the classic schedule).
    pub offset_cancel_ns: f64,
    /// Charge-sharing window between wordline rise and latch enable.
    pub charge_share_ns: f64,
    /// Latch/pre-sense amplification window.
    pub sense_ns: f64,
    /// Restore window (full-rail drive back into the cell).
    pub restore_ns: f64,
    /// Final precharge/equalise window.
    pub final_precharge_ns: f64,
    /// Control-signal slew time.
    pub slew_ns: f64,
}

impl Default for PhaseTimings {
    fn default() -> Self {
        Self {
            precharge_ns: 2.0,
            offset_cancel_ns: 4.0,
            charge_share_ns: 4.0,
            sense_ns: 4.0,
            restore_ns: 12.0,
            final_precharge_ns: 6.0,
            slew_ns: 0.5,
        }
    }
}

/// Testbench configuration for an activation experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct ActivationConfig {
    /// Array rail voltage (V). DDR4 cores run ≈1.1–1.2 V.
    pub vdd: f64,
    /// Bitline precharge reference (V), typically `vdd/2`.
    pub vpre: f64,
    /// Boosted wordline / pass-gate level (V).
    pub v_boost: f64,
    /// Cell capacitance (fF).
    pub c_cell_ff: f64,
    /// Bitline capacitance (fF). The default (180 fF) yields a ~50 mV
    /// charge-sharing signal, typical of long modern bitlines.
    pub c_bitline_ff: f64,
    /// Threshold mismatch injected into the left nSA latch transistor (V).
    /// Negative values make it conduct early — the failure direction for a
    /// stored 1.
    pub nsa_vt_offset: f64,
    /// Transistor dimensions used to instantiate the topology.
    pub dims: SaDimensions,
    /// Phase durations.
    pub timings: PhaseTimings,
}

impl Default for ActivationConfig {
    fn default() -> Self {
        Self {
            vdd: 1.1,
            vpre: 0.55,
            v_boost: 2.4,
            c_cell_ff: 18.0,
            c_bitline_ff: 180.0,
            nsa_vt_offset: 0.0,
            dims: SaDimensions::default(),
            timings: PhaseTimings::default(),
        }
    }
}

/// Outcome of one simulated activation.
#[derive(Debug, Clone)]
pub struct SenseReport {
    /// All recorded node waveforms.
    pub waveforms: Waveforms,
    /// The value the latch settled on.
    pub sensed_one: bool,
    /// Whether the sensed value matches the stored value.
    pub correct: bool,
    /// Time (s) at which the cell's storage node first moved — the onset of
    /// charge sharing. In OCSA schedules this is *delayed* by the
    /// offset-cancellation phase (Section VI-D).
    pub charge_sharing_onset: Option<f64>,
    /// Time (s) at which the latch nodes split by ≥ half a rail.
    pub latch_split_time: Option<f64>,
    /// Final cell storage-node voltage after restore (V).
    pub restored_level: f64,
    /// The topology simulated.
    pub topology: SaTopologyKind,
}

fn build_testbench(
    kind: SaTopologyKind,
    cfg: &ActivationConfig,
) -> (hifi_circuit::Netlist, &'static str, &'static str) {
    // Latch observation nodes differ: the classic latch drains *are* the
    // bitlines; the OCSA latch drains are the internal SABL/SABLB nodes.
    let (circuit, node_l, node_r) = match kind {
        SaTopologyKind::Classic => (topology::classic_sa(cfg.dims.clone()), "BL", "BLB"),
        SaTopologyKind::OffsetCancellation => (topology::ocsa(cfg.dims.clone()), "SABL", "SABLB"),
        SaTopologyKind::ClassicWithIsolation => (
            topology::classic_sa_with_isolation(cfg.dims.clone()),
            "IBL",
            "IBLB",
        ),
    };
    let mut nl = circuit.into_netlist();
    let access = TransistorDims::new(Nanometers(40.0), Nanometers(20.0));
    // Activated MAT column on BL, reference column on BLB (never activated).
    topology::attach_mat_column(
        &mut nl,
        "BL",
        1,
        Femtofarads(cfg.c_cell_ff),
        Femtofarads(cfg.c_bitline_ff),
        access,
    );
    topology::attach_mat_column(
        &mut nl,
        "BLB",
        1,
        Femtofarads(cfg.c_cell_ff),
        Femtofarads(cfg.c_bitline_ff),
        access,
    );
    // Explicit parasitics on internal latch nodes keep integration smooth.
    for pair in [("SABL", "SABLB"), ("IBL", "IBLB")] {
        if nl.net(pair.0).is_some() {
            let gnd = nl.add_net("GND");
            let l = nl.net(pair.0).expect("internal node");
            let r = nl.net(pair.1).expect("internal node");
            nl.add_capacitor(format!("c_{}", pair.0), Femtofarads(8.0), l, gnd);
            nl.add_capacitor(format!("c_{}", pair.1), Femtofarads(8.0), r, gnd);
        }
    }
    (nl, node_l, node_r)
}

fn report_from(
    waveforms: Waveforms,
    kind: SaTopologyKind,
    cfg: &ActivationConfig,
    stored_one: bool,
    node_l: &str,
    node_r: &str,
    read_time: f64,
) -> SenseReport {
    // During the final precharge the latch nodes re-equalise; read the
    // decision at the end of restore instead of the end of simulation.
    let v_l = waveforms.voltage(node_l, read_time).unwrap_or(0.0);
    let v_r = waveforms.voltage(node_r, read_time).unwrap_or(0.0);
    let sensed_one = v_l > v_r;
    // Charge-sharing onset: first movement of the active cell node.
    let sn = "SN0_BL";
    let initial = if stored_one { cfg.vdd } else { 0.0 };
    let onset = waveforms.trace(sn).and_then(|t| {
        t.iter()
            .position(|&v| (v - initial).abs() > 0.02)
            .map(|i| i as f64 * waveforms.sample_interval())
    });
    let split = waveforms.split_time(node_l, node_r, cfg.vdd / 2.0);
    let restored = waveforms.voltage(sn, read_time).unwrap_or(f64::NAN);
    SenseReport {
        sensed_one,
        correct: sensed_one == stored_one,
        charge_sharing_onset: onset,
        latch_split_time: split,
        restored_level: restored,
        topology: kind,
        waveforms,
    }
}

/// Simulates a full classic-SA activation (Fig. 2c) for a cell storing
/// `stored_one`, returning the sensing outcome.
///
/// # Panics
///
/// Panics if the internally-built testbench is inconsistent (a bug, not a
/// user error).
pub fn simulate_classic_activation(cfg: &ActivationConfig, stored_one: bool) -> SenseReport {
    try_simulate(SaTopologyKind::Classic, cfg, stored_one).expect("internal testbench is valid")
}

/// Simulates a full OCSA activation (Fig. 9b) for a cell storing
/// `stored_one`.
///
/// # Panics
///
/// Panics if the internally-built testbench is inconsistent.
pub fn simulate_ocsa_activation(cfg: &ActivationConfig, stored_one: bool) -> SenseReport {
    try_simulate(SaTopologyKind::OffsetCancellation, cfg, stored_one)
        .expect("internal testbench is valid")
}

/// Simulates one activation of the given topology.
///
/// # Errors
///
/// Returns [`SimError`] if the configuration produces an invalid testbench
/// (for example a non-positive timestep via pathological timings).
pub fn try_simulate(
    kind: SaTopologyKind,
    cfg: &ActivationConfig,
    stored_one: bool,
) -> Result<SenseReport, SimError> {
    let (nl, node_l, node_r) = build_testbench(kind, cfg);
    let mut circuit = AnalogCircuit::from_netlist(&nl);
    if cfg.nsa_vt_offset != 0.0 {
        circuit = circuit.with_vt_offset("nSA_l", cfg.nsa_vt_offset)?;
    }

    let t = &cfg.timings;
    let ns = 1e-9;
    let slew = t.slew_ns * ns;
    let t_act = t.precharge_ns * ns; // ACT command arrives here.

    let mut stim = Stimulus::new();
    stim.hold("GND", 0.0);
    stim.hold("Y0", 0.0); // column not selected during activation
    stim.hold("VPRE", cfg.vpre);
    stim.hold("WL0_BLB", 0.0); // reference MAT never activated

    let (t_share, t_sense, t_restore_end, t_end);
    match kind {
        SaTopologyKind::Classic | SaTopologyKind::ClassicWithIsolation => {
            // Charge sharing starts right after ACT.
            t_share = t_act;
            t_sense = t_share + t.charge_share_ns * ns;
            t_restore_end = t_sense + t.sense_ns * ns + t.restore_ns * ns;
            t_end = t_restore_end + t.final_precharge_ns * ns;
            // PEQ: on during precharge, off at ACT, on again at the end.
            stim.pwl(
                "PEQ",
                vec![
                    (0.0, cfg.v_boost),
                    (t_act, cfg.v_boost),
                    (t_act + slew, 0.0),
                    (t_restore_end, 0.0),
                    (t_restore_end + slew, cfg.v_boost),
                ],
            );
            if kind == SaTopologyKind::ClassicWithIsolation {
                stim.hold("ISO", cfg.v_boost); // statically connected
            }
            stim.pwl(
                "WL0_BL",
                vec![
                    (0.0, 0.0),
                    (t_share, 0.0),
                    (t_share + slew, cfg.v_boost),
                    (t_restore_end, cfg.v_boost),
                    (t_restore_end + slew, 0.0),
                ],
            );
            // Latch rails: parked at Vpre, driven apart during sensing,
            // re-parked for the final precharge.
            stim.pwl(
                "LA",
                vec![
                    (0.0, cfg.vpre),
                    (t_sense, cfg.vpre),
                    (t_sense + 2.0 * slew, cfg.vdd),
                    (t_restore_end, cfg.vdd),
                    (t_restore_end + slew, cfg.vpre),
                ],
            );
            stim.pwl(
                "LAB",
                vec![
                    (0.0, cfg.vpre),
                    (t_sense, cfg.vpre),
                    (t_sense + 2.0 * slew, 0.0),
                    (t_restore_end, 0.0),
                    (t_restore_end + slew, cfg.vpre),
                ],
            );
        }
        SaTopologyKind::OffsetCancellation => {
            // Fig. 9b: offset cancellation precedes charge sharing.
            let t_oc_end = t_act + t.offset_cancel_ns * ns;
            t_share = t_oc_end;
            t_sense = t_share + t.charge_share_ns * ns;
            let t_restore = t_sense + t.sense_ns * ns;
            t_restore_end = t_restore + t.restore_ns * ns;
            t_end = t_restore_end + t.final_precharge_ns * ns;
            // PRE: on during initial precharge and final precharge only.
            stim.pwl(
                "PRE",
                vec![
                    (0.0, cfg.v_boost),
                    (t_act, cfg.v_boost),
                    (t_act + slew, 0.0),
                    (t_restore_end, 0.0),
                    (t_restore_end + slew, cfg.v_boost),
                ],
            );
            // ISO: on in precharge (and for equalisation), off from ACT
            // until the restore phase reconnects the latch to the bitlines.
            stim.pwl(
                "ISO",
                vec![
                    (0.0, cfg.v_boost),
                    (t_act, cfg.v_boost),
                    (t_act + slew, 0.0),
                    (t_restore, 0.0),
                    (t_restore + slew, cfg.v_boost),
                ],
            );
            // OC: on during precharge (equalisation = ISO+OC) and during the
            // offset-cancellation phase.
            stim.pwl(
                "OC",
                vec![
                    (0.0, cfg.v_boost),
                    (t_oc_end, cfg.v_boost),
                    (t_oc_end + slew, 0.0),
                    (t_restore_end, 0.0),
                    (t_restore_end + slew, cfg.v_boost),
                ],
            );
            // Wordline rises only after offset cancellation.
            stim.pwl(
                "WL0_BL",
                vec![
                    (0.0, 0.0),
                    (t_share, 0.0),
                    (t_share + slew, cfg.v_boost),
                    (t_restore_end, cfg.v_boost),
                    (t_restore_end + slew, 0.0),
                ],
            );
            // LAB drops at the start of offset cancellation to enable the
            // nSA diode action; LA ramps only at pre-sensing.
            stim.pwl(
                "LAB",
                vec![
                    (0.0, cfg.vpre),
                    (t_act, cfg.vpre),
                    (t_act + 2.0 * slew, 0.0),
                    (t_restore_end, 0.0),
                    (t_restore_end + slew, cfg.vpre),
                ],
            );
            stim.pwl(
                "LA",
                vec![
                    (0.0, cfg.vpre),
                    (t_sense, cfg.vpre),
                    (t_sense + 2.0 * slew, cfg.vdd),
                    (t_restore_end, cfg.vdd),
                    (t_restore_end + slew, cfg.vpre),
                ],
            );
        }
    }

    let mut tr = Transient::new(t_end)
        .with_initial("BL", cfg.vpre)
        .with_initial("BLB", cfg.vpre)
        .with_initial("SN0_BL", if stored_one { cfg.vdd } else { 0.0 })
        .with_initial("SN0_BLB", 0.0);
    for internal in ["SABL", "SABLB", "IBL", "IBLB"] {
        if nl.net(internal).is_some() {
            tr = tr.with_initial(internal, cfg.vpre);
        }
    }
    tr.dt = 0.25e-12;
    let waveforms = tr.run(&circuit, &stim)?;
    Ok(report_from(
        waveforms,
        kind,
        cfg,
        stored_one,
        node_l,
        node_r,
        t_restore_end,
    ))
}

/// Sweeps threshold mismatch and returns the largest offset magnitude (in
/// millivolts, at `step_mv` granularity up to `max_mv`) for which the
/// topology senses **both** stored values correctly with **both** offset
/// polarities.
///
/// Classic SAs fail once the offset rivals the charge-sharing signal
/// (tens of mV); OCSAs cancel the offset and tolerate much more — the reason
/// the paper found them deployed in modern chips.
///
/// # Panics
///
/// Panics if `step_mv` is not positive or `max_mv < step_mv`.
pub fn max_tolerated_offset(
    kind: SaTopologyKind,
    cfg: &ActivationConfig,
    step_mv: f64,
    max_mv: f64,
) -> f64 {
    assert!(step_mv > 0.0 && max_mv >= step_mv, "invalid sweep bounds");
    let mut tolerated = 0.0;
    let mut offset = step_mv;
    while offset <= max_mv + 1e-9 {
        let mut all_ok = true;
        'combo: for stored in [false, true] {
            for sign in [-1.0, 1.0] {
                let mut c = cfg.clone();
                c.nsa_vt_offset = sign * offset * 1e-3;
                let rep = try_simulate(kind, &c, stored).expect("valid testbench");
                if !rep.correct {
                    all_ok = false;
                    break 'combo;
                }
            }
        }
        if !all_ok {
            break;
        }
        tolerated = offset;
        offset += step_mv;
    }
    tolerated
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classic_senses_both_values() {
        let cfg = ActivationConfig::default();
        for stored in [false, true] {
            let rep = simulate_classic_activation(&cfg, stored);
            assert!(
                rep.correct,
                "classic failed stored={stored}: sensed_one={}",
                rep.sensed_one
            );
        }
    }

    #[test]
    fn ocsa_senses_both_values() {
        let cfg = ActivationConfig::default();
        for stored in [false, true] {
            let rep = simulate_ocsa_activation(&cfg, stored);
            assert!(
                rep.correct,
                "ocsa failed stored={stored}: sensed_one={}",
                rep.sensed_one
            );
        }
    }

    #[test]
    fn classic_restores_the_cell() {
        let cfg = ActivationConfig::default();
        let rep = simulate_classic_activation(&cfg, true);
        assert!(
            rep.restored_level > 0.9 * cfg.vdd,
            "restore reached {} V",
            rep.restored_level
        );
        let rep0 = simulate_classic_activation(&cfg, false);
        assert!(rep0.restored_level < 0.1 * cfg.vdd);
    }

    #[test]
    fn ocsa_charge_sharing_is_delayed() {
        // Section VI-D: charge sharing happens after offset cancellation in
        // OCSA chips, not immediately at ACT.
        let cfg = ActivationConfig::default();
        let classic = simulate_classic_activation(&cfg, true);
        let ocsa = simulate_ocsa_activation(&cfg, true);
        let tc = classic.charge_sharing_onset.expect("classic shares charge");
        let to = ocsa.charge_sharing_onset.expect("ocsa shares charge");
        let expected_delay = cfg.timings.offset_cancel_ns * 1e-9;
        assert!(
            to - tc > 0.8 * expected_delay,
            "ocsa onset {to} vs classic {tc}"
        );
    }

    #[test]
    fn large_offset_breaks_classic_but_not_ocsa() {
        let cfg = ActivationConfig {
            nsa_vt_offset: -0.08, // 80 mV early-conduction mismatch
            ..Default::default()
        };
        let classic = simulate_classic_activation(&cfg, true);
        assert!(
            !classic.correct,
            "80 mV offset should defeat the classic latch"
        );
        let ocsa = simulate_ocsa_activation(&cfg, true);
        assert!(ocsa.correct, "ocsa should cancel an 80 mV offset");
    }
}
