//! Sense-amplifier operation sequences and sensing experiments.
//!
//! Implements the event schedules of Fig. 2c (classic) and Fig. 9b (OCSA):
//!
//! | Classic (Fig. 2c)            | OCSA (Fig. 9b)                       |
//! |------------------------------|--------------------------------------|
//! | precharge/equalise (PEQ)     | precharge (PRE, with ISO+OC for EQ)  |
//! | ① charge sharing             | ① offset cancellation                |
//! | ② latching & restore         | ② charge sharing (*delayed*, §VI-D)  |
//! | ③ precharge                  | ③ pre-sensing (no bitline load)      |
//! |                              | ④ restore (ISO on), then precharge   |
//!
//! The schedules are pure stimulus descriptions executed by the MNA engine
//! ([`crate::mna`]); the legacy explicit solver remains available through
//! [`SimEngine::LegacyExplicit`] for cross-validation. Control nets are
//! located by **role inference** ([`SaRoles::infer`]) rather than by name,
//! so the same schedules drive hand-built topologies and netlists recovered
//! by `hifi_extract` — the closed loop the paper's §VI-A argues for: a wrong
//! extraction shows up as a wrong waveform, not just a wrong graph.
//!
//! The testbench hangs a one-cell MAT column off the inferred `BL` (the
//! activated MAT) and a dummy column off `BLB` (the reference MAT of the
//! open-bitline scheme), injects threshold mismatch into a latch transistor,
//! and reports whether the amplifier latched the right value.

use crate::mna::{MnaCircuit, MnaTransient, SolveStats};
use crate::sim::{AnalogCircuit, SimError, Stimulus, Transient, Waveforms};
use hifi_circuit::topology::{self, SaDimensions, SaTopologyKind};
use hifi_circuit::{Mosfet, NetId, Netlist, TransistorClass, TransistorDims};
use hifi_units::{Femtofarads, Nanometers, Volts};

/// Phase durations for an activation, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhaseTimings {
    /// Initial precharge hold before the row activation.
    pub precharge_ns: f64,
    /// OCSA offset-cancellation phase (ignored by the classic schedule).
    pub offset_cancel_ns: f64,
    /// Charge-sharing window between wordline rise and latch enable.
    pub charge_share_ns: f64,
    /// Latch/pre-sense amplification window.
    pub sense_ns: f64,
    /// Restore window (full-rail drive back into the cell).
    pub restore_ns: f64,
    /// Final precharge/equalise window.
    pub final_precharge_ns: f64,
    /// Control-signal slew time.
    pub slew_ns: f64,
}

impl Default for PhaseTimings {
    fn default() -> Self {
        Self {
            precharge_ns: 2.0,
            offset_cancel_ns: 4.0,
            charge_share_ns: 4.0,
            sense_ns: 4.0,
            restore_ns: 12.0,
            final_precharge_ns: 6.0,
            slew_ns: 0.5,
        }
    }
}

/// Testbench configuration for an activation experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct ActivationConfig {
    /// Array rail voltage (V). DDR4 cores run ≈1.1–1.2 V.
    pub vdd: f64,
    /// Bitline precharge reference (V), typically `vdd/2`.
    pub vpre: f64,
    /// Boosted wordline / pass-gate level (V).
    pub v_boost: f64,
    /// Cell capacitance (fF).
    pub c_cell_ff: f64,
    /// Bitline capacitance (fF). The default (180 fF) yields a ~50 mV
    /// charge-sharing signal, typical of long modern bitlines.
    pub c_bitline_ff: f64,
    /// Threshold mismatch injected into the left nSA latch transistor (V).
    /// Negative values make it conduct early — the failure direction for a
    /// stored 1.
    pub nsa_vt_offset: f64,
    /// Transistor dimensions used to instantiate the topology.
    pub dims: SaDimensions,
    /// Phase durations.
    pub timings: PhaseTimings,
}

impl Default for ActivationConfig {
    fn default() -> Self {
        Self {
            vdd: 1.1,
            vpre: 0.55,
            v_boost: 2.4,
            c_cell_ff: 18.0,
            c_bitline_ff: 180.0,
            nsa_vt_offset: 0.0,
            dims: SaDimensions::default(),
            timings: PhaseTimings::default(),
        }
    }
}

/// Which transient solver executes the activation schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SimEngine {
    /// The MNA backward-Euler engine ([`crate::mna`]) — the default.
    #[default]
    Mna,
    /// The legacy explicit fixed-timestep integrator, kept for
    /// cross-validating the MNA results.
    LegacyExplicit,
}

/// Outcome of one simulated activation.
#[derive(Debug, Clone)]
pub struct SenseReport {
    /// All recorded node waveforms.
    pub waveforms: Waveforms,
    /// The value the latch settled on.
    pub sensed_one: bool,
    /// Whether the sensed value matches the stored value.
    pub correct: bool,
    /// Time (s) at which the cell's storage node first moved — the onset of
    /// charge sharing. In OCSA schedules this is *delayed* by the
    /// offset-cancellation phase (Section VI-D).
    pub charge_sharing_onset: Option<f64>,
    /// Time (s) at which the latch nodes split by ≥ half a rail.
    pub latch_split_time: Option<f64>,
    /// Final cell storage-node voltage after restore (V).
    pub restored_level: f64,
    /// The topology simulated.
    pub topology: SaTopologyKind,
    /// Solver diagnostics (`None` when run on the legacy engine).
    pub solve_stats: Option<SolveStats>,
}

/// The functional roles of a sense amplifier's nets and devices, inferred
/// from a classified netlist.
///
/// The extractor names nets `n17` and devices `m4`; the activation
/// schedules need to know which of those is the bitline, the latch rail or
/// the precharge gate. This structure is that mapping. Side `l` is the side
/// whose latch sense node has the smaller [`NetId`] — an arbitrary but
/// deterministic orientation; the active MAT column always attaches to
/// [`SaRoles::bl`].
#[derive(Debug, Clone, PartialEq)]
pub struct SaRoles {
    /// Topology family implied by the device classes present.
    pub kind: SaTopologyKind,
    /// Bitline carrying the activated MAT column.
    pub bl: String,
    /// Reference bitline (never-activated MAT).
    pub blb: String,
    /// Latch sense node on the `bl` side (`BL` itself for the classic SA,
    /// `SABL`/`IBL` for topologies that decouple the latch).
    pub sense_l: String,
    /// Latch sense node on the `blb` side.
    pub sense_r: String,
    /// pSA latch rail (driven high to sense).
    pub la: String,
    /// nSA latch rail (driven low to sense).
    pub lab: String,
    /// Precharge reference net (Vdd/2 supply).
    pub vpre: String,
    /// Gate net shared by the precharge devices (`PEQ`/`PRE`).
    pub precharge_gate: String,
    /// Gate net of the isolation devices, when present.
    pub iso_gate: Option<String>,
    /// Gate net of the offset-cancellation devices, when present.
    pub oc_gate: Option<String>,
    /// Gate net of the column-select devices, when present and unanimous.
    pub column_gate: Option<String>,
    /// The `bl`-side nSA latch transistor — where
    /// [`ActivationConfig::nsa_vt_offset`] is injected.
    pub offset_device: String,
}

impl SaRoles {
    /// The roles of a freshly built canonical topology (all named nets).
    ///
    /// # Panics
    ///
    /// Panics only if the workspace topology builders are inconsistent.
    pub fn canonical(kind: SaTopologyKind) -> Self {
        let circuit = match kind {
            SaTopologyKind::Classic => topology::classic_sa(SaDimensions::default()),
            SaTopologyKind::OffsetCancellation => topology::ocsa(SaDimensions::default()),
            SaTopologyKind::ClassicWithIsolation => {
                topology::classic_sa_with_isolation(SaDimensions::default())
            }
        };
        Self::infer(circuit.netlist()).expect("canonical topologies have well-defined roles")
    }

    /// Infers the roles from any classified netlist (hand-built or
    /// extracted).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::RoleInference`] when the netlist does not
    /// describe a recognisable single sense amplifier — wrong device-class
    /// counts, a latch that is not cross-coupled, missing ISO/OC paths.
    pub fn infer(nl: &Netlist) -> Result<Self, SimError> {
        let fail = |why: String| Err(SimError::RoleInference(why));
        let name = |id: NetId| nl.net_name(id).to_owned();

        let nsa: Vec<&Mosfet> = nl.mosfets_of_class(TransistorClass::NSa).collect();
        let psa: Vec<&Mosfet> = nl.mosfets_of_class(TransistorClass::PSa).collect();
        if nsa.len() != 2 || psa.len() != 2 {
            return fail(format!(
                "expected 2 nSA and 2 pSA latch devices, found {} and {}",
                nsa.len(),
                psa.len()
            ));
        }
        let shared_channel = |a: &Mosfet, b: &Mosfet| -> Option<NetId> {
            [a.source, a.drain]
                .into_iter()
                .find(|t| *t == b.source || *t == b.drain)
        };
        let other_channel = |m: &Mosfet, not: NetId| -> NetId {
            if m.source == not {
                m.drain
            } else {
                m.source
            }
        };
        let Some(lab) = shared_channel(nsa[0], nsa[1]) else {
            return fail("nSA latch devices share no tail rail".into());
        };
        let Some(la) = shared_channel(psa[0], psa[1]) else {
            return fail("pSA latch devices share no tail rail".into());
        };
        let n_sense = (other_channel(nsa[0], lab), other_channel(nsa[1], lab));
        if n_sense.0 == n_sense.1 {
            return fail("nSA latch devices collapse onto one sense node".into());
        }
        let p_sense = [other_channel(psa[0], la), other_channel(psa[1], la)];
        if !(p_sense.contains(&n_sense.0) && p_sense.contains(&n_sense.1)) {
            return fail("pSA and nSA halves sense different node pairs".into());
        }
        // Deterministic orientation: side l owns the smaller sense NetId.
        let (nsa_l, nsa_r) = if n_sense.0 .0 <= n_sense.1 .0 {
            (nsa[0], nsa[1])
        } else {
            (nsa[1], nsa[0])
        };
        let sense_l = other_channel(nsa_l, lab);
        let sense_r = other_channel(nsa_r, lab);

        let iso: Vec<&Mosfet> = nl.mosfets_of_class(TransistorClass::Isolation).collect();
        let oc: Vec<&Mosfet> = nl.mosfets_of_class(TransistorClass::OffsetCancel).collect();
        if !matches!(iso.len(), 0 | 2) || !matches!(oc.len(), 0 | 2) {
            return fail(format!(
                "expected 0 or 2 isolation/offset-cancel devices, found {} and {}",
                iso.len(),
                oc.len()
            ));
        }
        let common_gate = |devices: &[&Mosfet]| -> Option<NetId> {
            let g = devices.first()?.gate;
            devices.iter().all(|m| m.gate == g).then_some(g)
        };
        // The device of `class` whose channel touches `node`; its far
        // terminal tells us what the node connects onward to.
        let attached_via = |devices: &[&Mosfet], node: NetId| -> Option<NetId> {
            devices
                .iter()
                .find(|m| m.source == node || m.drain == node)
                .map(|m| other_channel(m, node))
        };

        let gates_on_sense = nsa_l.gate == sense_r && nsa_r.gate == sense_l;
        let (kind, bl, blb) = if gates_on_sense {
            if iso.len() == 2 {
                // Research-style isolation: the whole latch sits behind ISO.
                let Some(bl) = attached_via(&iso, sense_l) else {
                    return fail("no isolation device reaches the left sense node".into());
                };
                let Some(blb) = attached_via(&iso, sense_r) else {
                    return fail("no isolation device reaches the right sense node".into());
                };
                (SaTopologyKind::ClassicWithIsolation, bl, blb)
            } else {
                (SaTopologyKind::Classic, sense_l, sense_r)
            }
        } else {
            // Latch gates leave the sense nodes: offset-cancellation SA.
            if iso.len() != 2 || oc.len() != 2 {
                return fail(
                    "latch gates are off the sense nodes but no ISO/OC device pair exists".into(),
                );
            }
            let Some(bl) = attached_via(&iso, sense_l) else {
                return fail("no isolation device reaches the left sense node".into());
            };
            let Some(blb) = attached_via(&iso, sense_r) else {
                return fail("no isolation device reaches the right sense node".into());
            };
            if nsa_l.gate != blb || nsa_r.gate != bl {
                return fail("latch gates are not cross-coupled to the bitlines".into());
            }
            if attached_via(&oc, sense_l) != Some(blb) || attached_via(&oc, sense_r) != Some(bl) {
                return fail("offset-cancel devices do not reach the opposite bitlines".into());
            }
            (SaTopologyKind::OffsetCancellation, bl, blb)
        };

        let pre: Vec<&Mosfet> = nl.mosfets_of_class(TransistorClass::Precharge).collect();
        if pre.len() != 2 {
            return fail(format!("expected 2 precharge devices, found {}", pre.len()));
        }
        let Some(precharge_gate) = common_gate(&pre) else {
            return fail("precharge devices do not share a gate".into());
        };
        let Some(vpre) = shared_channel(pre[0], pre[1]) else {
            return fail("precharge devices share no reference net".into());
        };

        let cols: Vec<&Mosfet> = nl.mosfets_of_class(TransistorClass::Column).collect();
        Ok(Self {
            kind,
            bl: name(bl),
            blb: name(blb),
            sense_l: name(sense_l),
            sense_r: name(sense_r),
            la: name(la),
            lab: name(lab),
            vpre: name(vpre),
            precharge_gate: name(precharge_gate),
            iso_gate: common_gate(&iso).map(name),
            oc_gate: common_gate(&oc).map(name),
            column_gate: common_gate(&cols).map(name),
            offset_device: nsa_l.name.clone(),
        })
    }
}

/// Schedule landmarks shared by both topologies' stimulus programs.
struct Landmarks {
    t_share: f64,
    t_restore_end: f64,
    t_end: f64,
}

/// Builds the activation stimulus program for the inferred roles: the
/// Fig. 2c events for classic-family topologies, the Fig. 9b events for the
/// OCSA.
fn schedule(roles: &SaRoles, cfg: &ActivationConfig) -> (Stimulus, Landmarks) {
    let t = &cfg.timings;
    let ns = 1e-9;
    let slew = t.slew_ns * ns;
    let t_act = t.precharge_ns * ns; // ACT command arrives here.

    let mut stim = Stimulus::new();
    stim.hold("GND", Volts(0.0));
    stim.hold(&roles.vpre, Volts(cfg.vpre));
    if let Some(y) = &roles.column_gate {
        stim.hold(y, Volts(0.0)); // column not selected during activation
    }
    stim.hold(&format!("WL0_{}", roles.blb), Volts(0.0)); // reference MAT

    let wl = format!("WL0_{}", roles.bl);
    let (t_share, t_restore_end, t_end);
    match roles.kind {
        SaTopologyKind::Classic | SaTopologyKind::ClassicWithIsolation => {
            // Charge sharing starts right after ACT.
            t_share = t_act;
            let t_sense = t_share + t.charge_share_ns * ns;
            t_restore_end = t_sense + t.sense_ns * ns + t.restore_ns * ns;
            t_end = t_restore_end + t.final_precharge_ns * ns;
            // PEQ: on during precharge, off at ACT, on again at the end.
            stim.pwl(
                &roles.precharge_gate,
                vec![
                    (0.0, cfg.v_boost),
                    (t_act, cfg.v_boost),
                    (t_act + slew, 0.0),
                    (t_restore_end, 0.0),
                    (t_restore_end + slew, cfg.v_boost),
                ],
            );
            if roles.kind == SaTopologyKind::ClassicWithIsolation {
                if let Some(iso) = &roles.iso_gate {
                    stim.hold(iso, Volts(cfg.v_boost)); // statically connected
                }
            }
            stim.pwl(
                &wl,
                vec![
                    (0.0, 0.0),
                    (t_share, 0.0),
                    (t_share + slew, cfg.v_boost),
                    (t_restore_end, cfg.v_boost),
                    (t_restore_end + slew, 0.0),
                ],
            );
            // Latch rails: parked at Vpre, driven apart during sensing,
            // re-parked for the final precharge.
            stim.pwl(
                &roles.la,
                vec![
                    (0.0, cfg.vpre),
                    (t_sense, cfg.vpre),
                    (t_sense + 2.0 * slew, cfg.vdd),
                    (t_restore_end, cfg.vdd),
                    (t_restore_end + slew, cfg.vpre),
                ],
            );
            stim.pwl(
                &roles.lab,
                vec![
                    (0.0, cfg.vpre),
                    (t_sense, cfg.vpre),
                    (t_sense + 2.0 * slew, 0.0),
                    (t_restore_end, 0.0),
                    (t_restore_end + slew, cfg.vpre),
                ],
            );
        }
        SaTopologyKind::OffsetCancellation => {
            // Fig. 9b: offset cancellation precedes charge sharing.
            let t_oc_end = t_act + t.offset_cancel_ns * ns;
            t_share = t_oc_end;
            let t_sense = t_share + t.charge_share_ns * ns;
            let t_restore = t_sense + t.sense_ns * ns;
            t_restore_end = t_restore + t.restore_ns * ns;
            t_end = t_restore_end + t.final_precharge_ns * ns;
            let iso = roles.iso_gate.as_deref().expect("ocsa roles carry ISO");
            let oc = roles.oc_gate.as_deref().expect("ocsa roles carry OC");
            // PRE: on during initial precharge and final precharge only.
            stim.pwl(
                &roles.precharge_gate,
                vec![
                    (0.0, cfg.v_boost),
                    (t_act, cfg.v_boost),
                    (t_act + slew, 0.0),
                    (t_restore_end, 0.0),
                    (t_restore_end + slew, cfg.v_boost),
                ],
            );
            // ISO: on in precharge (and for equalisation), off from ACT
            // until the restore phase reconnects the latch to the bitlines.
            stim.pwl(
                iso,
                vec![
                    (0.0, cfg.v_boost),
                    (t_act, cfg.v_boost),
                    (t_act + slew, 0.0),
                    (t_restore, 0.0),
                    (t_restore + slew, cfg.v_boost),
                ],
            );
            // OC: on during precharge (equalisation = ISO+OC) and during the
            // offset-cancellation phase.
            stim.pwl(
                oc,
                vec![
                    (0.0, cfg.v_boost),
                    (t_oc_end, cfg.v_boost),
                    (t_oc_end + slew, 0.0),
                    (t_restore_end, 0.0),
                    (t_restore_end + slew, cfg.v_boost),
                ],
            );
            // Wordline rises only after offset cancellation.
            stim.pwl(
                &wl,
                vec![
                    (0.0, 0.0),
                    (t_share, 0.0),
                    (t_share + slew, cfg.v_boost),
                    (t_restore_end, cfg.v_boost),
                    (t_restore_end + slew, 0.0),
                ],
            );
            // LAB drops at the start of offset cancellation to enable the
            // nSA diode action; LA ramps only at pre-sensing.
            stim.pwl(
                &roles.lab,
                vec![
                    (0.0, cfg.vpre),
                    (t_act, cfg.vpre),
                    (t_act + 2.0 * slew, 0.0),
                    (t_restore_end, 0.0),
                    (t_restore_end + slew, cfg.vpre),
                ],
            );
            stim.pwl(
                &roles.la,
                vec![
                    (0.0, cfg.vpre),
                    (t_sense, cfg.vpre),
                    (t_sense + 2.0 * slew, cfg.vdd),
                    (t_restore_end, cfg.vdd),
                    (t_restore_end + slew, cfg.vpre),
                ],
            );
        }
    }
    (
        stim,
        Landmarks {
            t_share,
            t_restore_end,
            t_end,
        },
    )
}

/// Attaches the MAT columns and internal-node parasitics to a bare SA
/// netlist, completing the activation testbench.
fn attach_testbench(nl: &mut Netlist, roles: &SaRoles, cfg: &ActivationConfig) {
    let access = TransistorDims::new(Nanometers(40.0), Nanometers(20.0));
    // Activated MAT column on BL, reference column on BLB (never activated).
    for bitline in [&roles.bl, &roles.blb] {
        topology::attach_mat_column(
            nl,
            bitline,
            1,
            Femtofarads(cfg.c_cell_ff),
            Femtofarads(cfg.c_bitline_ff),
            access,
        );
    }
    // Explicit parasitics on internal latch nodes keep integration smooth.
    for sense in [&roles.sense_l, &roles.sense_r] {
        if *sense != roles.bl && *sense != roles.blb {
            let gnd = nl.add_net("GND");
            let node = nl.net(sense).expect("sense node exists");
            nl.add_capacitor(format!("c_{sense}"), Femtofarads(8.0), node, gnd);
        }
    }
}

fn report_from(
    waveforms: Waveforms,
    roles: &SaRoles,
    cfg: &ActivationConfig,
    stored_one: bool,
    read_time: f64,
    solve_stats: Option<SolveStats>,
) -> SenseReport {
    // During the final precharge the latch nodes re-equalise; read the
    // decision at the end of restore instead of the end of simulation.
    let v_l = waveforms.voltage(&roles.sense_l, read_time).unwrap_or(0.0);
    let v_r = waveforms.voltage(&roles.sense_r, read_time).unwrap_or(0.0);
    let sensed_one = v_l > v_r;
    // Charge-sharing onset: first movement of the active cell node.
    let sn = format!("SN0_{}", roles.bl);
    let initial = if stored_one { cfg.vdd } else { 0.0 };
    let onset = waveforms.trace(&sn).and_then(|t| {
        t.iter()
            .position(|&v| (v - initial).abs() > 0.02)
            .map(|i| i as f64 * waveforms.sample_interval())
    });
    let split = waveforms.split_time(&roles.sense_l, &roles.sense_r, cfg.vdd / 2.0);
    let restored = waveforms.voltage(&sn, read_time).unwrap_or(f64::NAN);
    SenseReport {
        sensed_one,
        correct: sensed_one == stored_one,
        charge_sharing_onset: onset,
        latch_split_time: split,
        restored_level: restored,
        topology: roles.kind,
        solve_stats,
        waveforms,
    }
}

/// Runs the activation schedule for an already-prepared testbench netlist.
fn run_activation(
    nl: &Netlist,
    roles: &SaRoles,
    cfg: &ActivationConfig,
    stored_one: bool,
    engine: SimEngine,
) -> Result<SenseReport, SimError> {
    let (stim, marks) = schedule(roles, cfg);
    let mut initial: Vec<(String, f64)> = vec![
        (roles.bl.clone(), cfg.vpre),
        (roles.blb.clone(), cfg.vpre),
        (
            format!("SN0_{}", roles.bl),
            if stored_one { cfg.vdd } else { 0.0 },
        ),
        (format!("SN0_{}", roles.blb), 0.0),
    ];
    for sense in [&roles.sense_l, &roles.sense_r] {
        if *sense != roles.bl && *sense != roles.blb {
            initial.push((sense.clone(), cfg.vpre));
        }
    }

    let (waveforms, stats) = match engine {
        SimEngine::Mna => {
            let mut circuit = MnaCircuit::from_netlist(nl);
            if cfg.nsa_vt_offset != 0.0 {
                circuit = circuit.with_vt_offset(&roles.offset_device, Volts(cfg.nsa_vt_offset))?;
            }
            let mut tr = MnaTransient::new(marks.t_end);
            for (net, v) in initial {
                tr = tr.with_initial(&net, Volts(v));
            }
            let run = tr.run(&circuit, &stim)?;
            (run.waveforms, Some(run.stats))
        }
        SimEngine::LegacyExplicit => {
            let mut circuit = AnalogCircuit::from_netlist(nl);
            if cfg.nsa_vt_offset != 0.0 {
                circuit = circuit.with_vt_offset(&roles.offset_device, Volts(cfg.nsa_vt_offset))?;
            }
            let mut tr = Transient::new(marks.t_end);
            for (net, v) in initial {
                tr = tr.with_initial(&net, Volts(v));
            }
            tr.dt = 0.25e-12;
            (tr.run(&circuit, &stim)?, None)
        }
    };
    let _ = marks.t_share;
    Ok(report_from(
        waveforms,
        roles,
        cfg,
        stored_one,
        marks.t_restore_end,
        stats,
    ))
}

/// Simulates a full classic-SA activation (Fig. 2c) for a cell storing
/// `stored_one`, returning the sensing outcome.
///
/// # Panics
///
/// Panics if the internally-built testbench is inconsistent (a bug, not a
/// user error).
pub fn simulate_classic_activation(cfg: &ActivationConfig, stored_one: bool) -> SenseReport {
    try_simulate(SaTopologyKind::Classic, cfg, stored_one).expect("internal testbench is valid")
}

/// Simulates a full OCSA activation (Fig. 9b) for a cell storing
/// `stored_one`.
///
/// # Panics
///
/// Panics if the internally-built testbench is inconsistent.
pub fn simulate_ocsa_activation(cfg: &ActivationConfig, stored_one: bool) -> SenseReport {
    try_simulate(SaTopologyKind::OffsetCancellation, cfg, stored_one)
        .expect("internal testbench is valid")
}

/// Simulates one activation of the given topology on the MNA engine.
///
/// # Errors
///
/// Returns [`SimError`] if the configuration produces an invalid testbench
/// (for example a non-positive timestep via pathological timings).
pub fn try_simulate(
    kind: SaTopologyKind,
    cfg: &ActivationConfig,
    stored_one: bool,
) -> Result<SenseReport, SimError> {
    try_simulate_with(SimEngine::Mna, kind, cfg, stored_one)
}

/// Simulates one activation of the given topology on a chosen engine.
///
/// # Errors
///
/// Returns [`SimError`] if the configuration produces an invalid testbench.
pub fn try_simulate_with(
    engine: SimEngine,
    kind: SaTopologyKind,
    cfg: &ActivationConfig,
    stored_one: bool,
) -> Result<SenseReport, SimError> {
    let circuit = match kind {
        SaTopologyKind::Classic => topology::classic_sa(cfg.dims.clone()),
        SaTopologyKind::OffsetCancellation => topology::ocsa(cfg.dims.clone()),
        SaTopologyKind::ClassicWithIsolation => {
            topology::classic_sa_with_isolation(cfg.dims.clone())
        }
    };
    let mut nl = circuit.into_netlist();
    let roles = SaRoles::infer(&nl)?;
    attach_testbench(&mut nl, &roles, cfg);
    run_activation(&nl, &roles, cfg, stored_one, engine)
}

/// Simulates an activation of an **extracted** netlist: infers the SA roles
/// from the device classes, attaches the MAT-column testbench to the
/// inferred bitlines, and runs the matching schedule on the MNA engine.
///
/// This is the paper's closed loop (§VI-A): a `Pipeline` extraction can be
/// handed straight to the simulator, and a mis-extracted circuit fails with
/// a waveform deviation instead of only a graph mismatch.
///
/// # Errors
///
/// Returns [`SimError::RoleInference`] when the netlist is not a
/// recognisable sense amplifier, or any simulation error from the run.
pub fn simulate_extracted_activation(
    netlist: &Netlist,
    cfg: &ActivationConfig,
    stored_one: bool,
) -> Result<SenseReport, SimError> {
    let roles = SaRoles::infer(netlist)?;
    let mut nl = netlist.clone();
    attach_testbench(&mut nl, &roles, cfg);
    run_activation(&nl, &roles, cfg, stored_one, SimEngine::Mna)
}

/// Sweeps threshold mismatch and returns the largest offset magnitude (in
/// millivolts, at `step_mv` granularity up to `max_mv`) for which the
/// topology senses **both** stored values correctly with **both** offset
/// polarities.
///
/// Classic SAs fail once the offset rivals the charge-sharing signal
/// (tens of mV); OCSAs cancel the offset and tolerate much more — the reason
/// the paper found them deployed in modern chips.
///
/// # Panics
///
/// Panics if `step_mv` is not positive or `max_mv < step_mv`.
pub fn max_tolerated_offset(
    kind: SaTopologyKind,
    cfg: &ActivationConfig,
    step_mv: f64,
    max_mv: f64,
) -> f64 {
    max_tolerated_offset_with(SimEngine::Mna, kind, cfg, step_mv, max_mv)
}

/// [`max_tolerated_offset`] on a chosen engine (the cross-validation tests
/// compare the two).
///
/// # Panics
///
/// Panics if `step_mv` is not positive or `max_mv < step_mv`.
pub fn max_tolerated_offset_with(
    engine: SimEngine,
    kind: SaTopologyKind,
    cfg: &ActivationConfig,
    step_mv: f64,
    max_mv: f64,
) -> f64 {
    assert!(step_mv > 0.0 && max_mv >= step_mv, "invalid sweep bounds");
    let mut tolerated = 0.0;
    let mut offset = step_mv;
    while offset <= max_mv + 1e-9 {
        let mut all_ok = true;
        'combo: for stored in [false, true] {
            for sign in [-1.0, 1.0] {
                let mut c = cfg.clone();
                c.nsa_vt_offset = sign * offset * 1e-3;
                let rep = try_simulate_with(engine, kind, &c, stored).expect("valid testbench");
                if !rep.correct {
                    all_ok = false;
                    break 'combo;
                }
            }
        }
        if !all_ok {
            break;
        }
        tolerated = offset;
        offset += step_mv;
    }
    tolerated
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classic_senses_both_values() {
        let cfg = ActivationConfig::default();
        for stored in [false, true] {
            let rep = simulate_classic_activation(&cfg, stored);
            assert!(
                rep.correct,
                "classic failed stored={stored}: sensed_one={}",
                rep.sensed_one
            );
        }
    }

    #[test]
    fn ocsa_senses_both_values() {
        let cfg = ActivationConfig::default();
        for stored in [false, true] {
            let rep = simulate_ocsa_activation(&cfg, stored);
            assert!(
                rep.correct,
                "ocsa failed stored={stored}: sensed_one={}",
                rep.sensed_one
            );
        }
    }

    #[test]
    fn classic_restores_the_cell() {
        let cfg = ActivationConfig::default();
        let rep = simulate_classic_activation(&cfg, true);
        assert!(
            rep.restored_level > 0.9 * cfg.vdd,
            "restore reached {} V",
            rep.restored_level
        );
        let rep0 = simulate_classic_activation(&cfg, false);
        assert!(rep0.restored_level < 0.1 * cfg.vdd);
    }

    #[test]
    fn ocsa_charge_sharing_is_delayed() {
        // Section VI-D: charge sharing happens after offset cancellation in
        // OCSA chips, not immediately at ACT.
        let cfg = ActivationConfig::default();
        let classic = simulate_classic_activation(&cfg, true);
        let ocsa = simulate_ocsa_activation(&cfg, true);
        let tc = classic.charge_sharing_onset.expect("classic shares charge");
        let to = ocsa.charge_sharing_onset.expect("ocsa shares charge");
        let expected_delay = cfg.timings.offset_cancel_ns * 1e-9;
        assert!(
            to - tc > 0.8 * expected_delay,
            "ocsa onset {to} vs classic {tc}"
        );
    }

    #[test]
    fn large_offset_breaks_classic_but_not_ocsa() {
        let cfg = ActivationConfig {
            nsa_vt_offset: -0.08, // 80 mV early-conduction mismatch
            ..Default::default()
        };
        let classic = simulate_classic_activation(&cfg, true);
        assert!(
            !classic.correct,
            "80 mV offset should defeat the classic latch"
        );
        let ocsa = simulate_ocsa_activation(&cfg, true);
        assert!(ocsa.correct, "ocsa should cancel an 80 mV offset");
    }

    #[test]
    fn canonical_roles_use_the_schematic_names() {
        let classic = SaRoles::canonical(SaTopologyKind::Classic);
        assert_eq!(classic.bl, "BL");
        assert_eq!(classic.sense_l, "BL");
        assert_eq!(classic.lab, "LAB");
        assert_eq!(classic.precharge_gate, "PEQ");
        assert_eq!(classic.offset_device, "nSA_l");
        assert_eq!(classic.iso_gate, None);

        let ocsa = SaRoles::canonical(SaTopologyKind::OffsetCancellation);
        assert_eq!(ocsa.bl, "BL");
        assert_eq!(ocsa.sense_l, "SABL");
        assert_eq!(ocsa.precharge_gate, "PRE");
        assert_eq!(ocsa.iso_gate.as_deref(), Some("ISO"));
        assert_eq!(ocsa.oc_gate.as_deref(), Some("OC"));
        assert_eq!(ocsa.offset_device, "nSA_l");

        let iso = SaRoles::canonical(SaTopologyKind::ClassicWithIsolation);
        assert_eq!(iso.bl, "BL");
        assert_eq!(iso.sense_l, "IBL");
        assert_eq!(iso.iso_gate.as_deref(), Some("ISO"));
    }

    #[test]
    fn role_inference_rejects_a_broken_latch() {
        // Cut the cross-coupling: retarget one latch gate to its own sense
        // node. The graph is still a 9-transistor circuit, but no valid
        // schedule exists for it.
        let sa = topology::classic_sa(SaDimensions::default());
        let mut nl = Netlist::new("broken");
        for m in sa.netlist().mosfets() {
            let gate_name = if m.name == "nSA_l" {
                // Gate onto its own drain instead of the opposite bitline.
                sa.netlist().net_name(m.drain).to_owned()
            } else {
                sa.netlist().net_name(m.gate).to_owned()
            };
            let g = nl.add_net(gate_name);
            let s = nl.add_net(sa.netlist().net_name(m.source).to_owned());
            let d = nl.add_net(sa.netlist().net_name(m.drain).to_owned());
            nl.add_mosfet(m.name.clone(), m.polarity, m.class, m.dims, g, s, d);
        }
        let err = SaRoles::infer(&nl).unwrap_err();
        assert!(matches!(err, SimError::RoleInference(_)), "{err}");
    }

    #[test]
    fn extracted_style_netlist_simulates_via_inferred_roles() {
        // Rebuild the classic SA with anonymised extractor-style names; the
        // schedule must come out of role inference alone.
        let sa = topology::classic_sa(SaDimensions::default());
        let src = sa.netlist();
        let mut nl = Netlist::new("anon");
        let mut ids = std::collections::HashMap::new();
        for (i, _) in (0..src.net_count()).enumerate() {
            let id = nl.add_net(format!("n{i}"));
            ids.insert(i, id);
        }
        for (k, m) in src.mosfets().enumerate() {
            nl.add_mosfet(
                format!("m{k}"),
                m.polarity,
                m.class,
                m.dims,
                ids[&m.gate.0],
                ids[&m.source.0],
                ids[&m.drain.0],
            );
        }
        let cfg = ActivationConfig::default();
        for stored in [false, true] {
            let rep = simulate_extracted_activation(&nl, &cfg, stored).expect("roles infer");
            assert!(rep.correct, "anon netlist failed stored={stored}");
            assert_eq!(rep.topology, SaTopologyKind::Classic);
        }
    }

    #[test]
    fn engines_agree_on_verdicts() {
        // The MNA core must reproduce the legacy fixed-schedule verdicts:
        // healthy SAs sense correctly, an 80 mV offset defeats the classic
        // latch but not the OCSA — on both engines.
        for (kind, offset, expect_correct) in [
            (SaTopologyKind::Classic, 0.0, true),
            (SaTopologyKind::Classic, -0.08, false),
            (SaTopologyKind::OffsetCancellation, -0.08, true),
        ] {
            let cfg = ActivationConfig {
                nsa_vt_offset: offset,
                ..Default::default()
            };
            for engine in [SimEngine::Mna, SimEngine::LegacyExplicit] {
                let rep = try_simulate_with(engine, kind, &cfg, true).expect("valid");
                assert_eq!(
                    rep.correct, expect_correct,
                    "{kind} offset={offset} on {engine:?}"
                );
            }
        }
    }
}
