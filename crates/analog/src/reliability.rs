//! Monte-Carlo sensing-yield analysis.
//!
//! The paper explains *why* vendors moved to offset-cancellation designs:
//! packing more rows per MAT weakens the sensed signal while smaller nodes
//! increase transistor mismatch, raising the risk of "latching the opposite
//! value" (Section II-A). This module quantifies that trade-off on our
//! transistor-level testbench: sample threshold mismatch from a normal
//! distribution, run full activations, and report the fraction that sensed
//! correctly — for the classic SA and the OCSA.

use crate::events::{try_simulate, ActivationConfig};
use hifi_circuit::topology::SaTopologyKind;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Monte-Carlo configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct YieldConfig {
    /// Standard deviation of the latch threshold mismatch (mV). Pair
    /// mismatch is the difference of two device thresholds, so the sampled
    /// per-experiment offset uses `σ·√2`.
    pub sigma_mv: f64,
    /// Number of Monte-Carlo trials (each runs both stored values).
    pub trials: usize,
    /// RNG seed.
    pub seed: u64,
    /// Base testbench configuration.
    pub base: ActivationConfig,
}

impl YieldConfig {
    /// A config with the workspace-default testbench.
    pub fn new(sigma_mv: f64, trials: usize) -> Self {
        Self {
            sigma_mv,
            trials,
            seed: 0xD12A,
            base: ActivationConfig::default(),
        }
    }
}

/// Result of a yield run.
#[derive(Debug, Clone, PartialEq)]
pub struct YieldReport {
    /// Topology simulated.
    pub topology: SaTopologyKind,
    /// Mismatch σ used (mV).
    pub sigma_mv: f64,
    /// Trials run.
    pub trials: usize,
    /// Fraction of trials in which **both** stored values sensed correctly.
    pub yield_fraction: f64,
}

fn gaussian(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(1e-12..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Runs the Monte-Carlo yield experiment for one topology.
///
/// # Panics
///
/// Panics if `trials` is zero.
pub fn sensing_yield(topology: SaTopologyKind, config: &YieldConfig) -> YieldReport {
    assert!(config.trials > 0, "at least one trial required");
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut good = 0usize;
    for _ in 0..config.trials {
        // Pair mismatch: difference of two N(0, σ) thresholds.
        let offset_v = gaussian(&mut rng) * config.sigma_mv * 1e-3 * std::f64::consts::SQRT_2;
        let mut cfg = config.base.clone();
        cfg.nsa_vt_offset = offset_v;
        let ok = [false, true].iter().all(|&stored| {
            try_simulate(topology, &cfg, stored)
                .expect("testbench valid")
                .correct
        });
        if ok {
            good += 1;
        }
    }
    YieldReport {
        topology,
        sigma_mv: config.sigma_mv,
        trials: config.trials,
        yield_fraction: good as f64 / config.trials as f64,
    }
}

/// Sweeps mismatch σ and returns the yield curve for a topology.
pub fn yield_curve(
    topology: SaTopologyKind,
    sigmas_mv: &[f64],
    trials: usize,
    base: &ActivationConfig,
) -> Vec<YieldReport> {
    sigmas_mv
        .iter()
        .map(|&sigma_mv| {
            sensing_yield(
                topology,
                &YieldConfig {
                    sigma_mv,
                    trials,
                    seed: 0xD12A ^ (sigma_mv * 1000.0) as u64,
                    base: base.clone(),
                },
            )
        })
        .collect()
}

/// Analytic sensing-margin model (no transient): the charge-sharing signal
/// as a function of the cell/bitline capacitance ratio. More rows per MAT
/// means longer bitlines, higher `c_bl` and a weaker signal — the scaling
/// pressure that drove OCSA deployment.
pub fn signal_margin_mv(c_cell_ff: f64, c_bl_ff: f64, vdd: f64) -> f64 {
    hifi_units::charge_sharing_delta(
        hifi_units::Femtofarads(c_cell_ff),
        hifi_units::Volts(vdd),
        hifi_units::Femtofarads(c_bl_ff),
        hifi_units::Volts(vdd / 2.0),
    )
    .value()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_mismatch_yields_one() {
        let cfg = YieldConfig::new(0.0, 3);
        for kind in [SaTopologyKind::Classic, SaTopologyKind::OffsetCancellation] {
            let r = sensing_yield(kind, &cfg);
            assert_eq!(r.yield_fraction, 1.0, "{kind}");
        }
    }

    #[test]
    fn ocsa_yield_dominates_classic_at_high_mismatch() {
        // Heavy mismatch (σ = 60 mV): the classic SA starts failing while
        // the OCSA cancels the offsets. Few trials keep the test fast; the
        // seed is fixed so the comparison is paired.
        let cfg = YieldConfig::new(60.0, 8);
        let classic = sensing_yield(SaTopologyKind::Classic, &cfg);
        let ocsa = sensing_yield(SaTopologyKind::OffsetCancellation, &cfg);
        assert!(
            ocsa.yield_fraction > classic.yield_fraction,
            "ocsa {} vs classic {}",
            ocsa.yield_fraction,
            classic.yield_fraction
        );
        assert!(classic.yield_fraction < 1.0, "classic must show failures");
    }

    #[test]
    fn signal_margin_shrinks_with_bitline_capacitance() {
        let short_bl = signal_margin_mv(18.0, 90.0, 1.1);
        let long_bl = signal_margin_mv(18.0, 360.0, 1.1);
        assert!(short_bl > long_bl);
        assert!(long_bl > 0.0);
        // Doubling rows (≈ doubling c_bl) roughly halves the signal.
        let halfish = signal_margin_mv(18.0, 180.0, 1.1);
        assert!((short_bl / halfish - 1.83).abs() < 0.2);
    }
}
