//! Fixed-timestep transient solver over netlists.

use crate::model::MosfetModel;
use hifi_circuit::{Device, Netlist};
use hifi_units::{Femtofarads, Volts};
use std::collections::HashMap;

/// Error produced while building or running a simulation.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// A stimulus or probe referenced a net that is not in the netlist.
    UnknownNet(String),
    /// A threshold-offset override referenced a device that does not exist.
    UnknownDevice(String),
    /// The timestep or duration was not strictly positive.
    InvalidTimestep(f64),
    /// A piecewise-linear waveform had unsorted time points.
    UnsortedWaveform(String),
    /// Newton iteration failed to converge at a timestep (MNA engine).
    NoConvergence {
        /// Simulation time of the failing step (s).
        time_s: f64,
        /// Iterations spent before giving up.
        iterations: usize,
        /// Largest node-voltage update at the last iteration (V).
        worst_delta_v: f64,
    },
    /// The linearised MNA system had no usable pivot at a timestep.
    SingularSystem {
        /// Simulation time of the failing step (s).
        time_s: f64,
    },
    /// A netlist's sense-amplifier roles could not be inferred, so no
    /// activation schedule can be built for it.
    RoleInference(String),
}

impl core::fmt::Display for SimError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SimError::UnknownNet(n) => write!(f, "unknown net `{n}`"),
            SimError::UnknownDevice(d) => write!(f, "unknown device `{d}`"),
            SimError::InvalidTimestep(dt) => write!(f, "invalid timestep {dt}"),
            SimError::UnsortedWaveform(n) => write!(f, "waveform for `{n}` is not time-sorted"),
            SimError::NoConvergence {
                time_s,
                iterations,
                worst_delta_v,
            } => write!(
                f,
                "newton iteration did not converge at t={time_s}s after \
                 {iterations} iterations (last |Δv| = {worst_delta_v} V)"
            ),
            SimError::SingularSystem { time_s } => {
                write!(f, "singular MNA system at t={time_s}s")
            }
            SimError::RoleInference(why) => write!(f, "cannot infer SA roles: {why}"),
        }
    }
}

impl std::error::Error for SimError {}

/// A piecewise-linear voltage waveform.
#[derive(Debug, Clone, PartialEq)]
pub struct Waveform {
    points: Vec<(f64, f64)>,
}

impl Waveform {
    /// Builds a waveform from `(time_s, volts)` points.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnsortedWaveform`] when times decrease.
    pub fn pwl(points: Vec<(f64, f64)>) -> Result<Self, SimError> {
        if points.windows(2).any(|w| w[1].0 < w[0].0) {
            return Err(SimError::UnsortedWaveform("<anonymous>".into()));
        }
        Ok(Self { points })
    }

    /// A constant waveform.
    pub fn constant(v: f64) -> Self {
        Self {
            points: vec![(0.0, v)],
        }
    }

    /// Linear interpolation; clamps before the first and after the last point.
    pub fn value(&self, t: f64) -> f64 {
        match self.points.len() {
            0 => 0.0,
            1 => self.points[0].1,
            _ => {
                if t <= self.points[0].0 {
                    return self.points[0].1;
                }
                if t >= self.points[self.points.len() - 1].0 {
                    return self.points[self.points.len() - 1].1;
                }
                let i = self
                    .points
                    .windows(2)
                    .position(|w| t >= w[0].0 && t <= w[1].0)
                    .expect("t within range");
                let (t0, v0) = self.points[i];
                let (t1, v1) = self.points[i + 1];
                if t1 == t0 {
                    v1
                } else {
                    v0 + (v1 - v0) * (t - t0) / (t1 - t0)
                }
            }
        }
    }
}

/// Drive specification: piecewise-linear sources attached to named nets.
///
/// ```
/// use hifi_analog::Stimulus;
/// use hifi_units::Volts;
/// let mut stim = Stimulus::new();
/// stim.hold("GND", Volts(0.0));
/// stim.ramp("LA", 5e-9, 7e-9, 0.55, 1.1);
/// assert_eq!(stim.driven_nets().count(), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Stimulus {
    drives: HashMap<String, Waveform>,
}

impl Stimulus {
    /// Creates an empty stimulus.
    pub fn new() -> Self {
        Self::default()
    }

    /// Holds a net at a constant voltage for the whole run.
    pub fn hold(&mut self, net: &str, v: Volts) -> &mut Self {
        self.drives
            .insert(net.into(), Waveform::constant(v.value()));
        self
    }

    /// Drives a net with an arbitrary piecewise-linear waveform.
    ///
    /// # Panics
    ///
    /// Panics if the points are not time-sorted (use [`Waveform::pwl`] for a
    /// fallible version).
    pub fn pwl(&mut self, net: &str, points: Vec<(f64, f64)>) -> &mut Self {
        let wf = Waveform::pwl(points)
            .unwrap_or_else(|_| panic!("stimulus for `{net}` must be time-sorted"));
        self.drives.insert(net.into(), wf);
        self
    }

    /// Convenience: hold `v0` until `t0`, ramp linearly to `v1` by `t1`,
    /// then hold `v1`. Extends an existing waveform on the net if present.
    pub fn ramp(&mut self, net: &str, t0: f64, t1: f64, v0: f64, v1: f64) -> &mut Self {
        let mut points = match self.drives.remove(net) {
            Some(w) => w.points,
            None => vec![(0.0, v0)],
        };
        points.push((t0, v0));
        points.push((t1, v1));
        points.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite times"));
        self.drives.insert(net.into(), Waveform { points });
        self
    }

    /// Iterates over driven net names.
    pub fn driven_nets(&self) -> impl Iterator<Item = &str> {
        self.drives.keys().map(String::as_str)
    }

    pub(crate) fn waveform(&self, net: &str) -> Option<&Waveform> {
        self.drives.get(net)
    }
}

/// Recorded node voltages, sampled on a regular grid.
#[derive(Debug, Clone)]
pub struct Waveforms {
    pub(crate) dt_sample: f64,
    pub(crate) traces: HashMap<String, Vec<f64>>,
}

impl Waveforms {
    /// The sampled trace for a net.
    pub fn trace(&self, net: &str) -> Option<&[f64]> {
        self.traces.get(net).map(Vec::as_slice)
    }

    /// Sampling interval in seconds.
    pub fn sample_interval(&self) -> f64 {
        self.dt_sample
    }

    /// Voltage of `net` at time `t` (nearest sample).
    pub fn voltage(&self, net: &str, t: f64) -> Option<f64> {
        let tr = self.traces.get(net)?;
        let idx = ((t / self.dt_sample).round() as usize).min(tr.len().saturating_sub(1));
        tr.get(idx).copied()
    }

    /// Final sampled voltage of `net`.
    pub fn final_voltage(&self, net: &str) -> Option<f64> {
        self.traces.get(net)?.last().copied()
    }

    /// First time `net` crosses `level` in the given direction.
    pub fn time_crossing(&self, net: &str, level: f64, rising: bool) -> Option<f64> {
        let tr = self.traces.get(net)?;
        for w in 0..tr.len().saturating_sub(1) {
            let (a, b) = (tr[w], tr[w + 1]);
            let crossed = if rising {
                a < level && b >= level
            } else {
                a > level && b <= level
            };
            if crossed {
                return Some(w as f64 * self.dt_sample);
            }
        }
        None
    }

    /// First time `|a − b|` reaches `threshold` volts.
    pub fn split_time(&self, a: &str, b: &str, threshold: f64) -> Option<f64> {
        let ta = self.traces.get(a)?;
        let tb = self.traces.get(b)?;
        let n = ta.len().min(tb.len());
        (0..n)
            .find(|&i| (ta[i] - tb[i]).abs() >= threshold)
            .map(|i| i as f64 * self.dt_sample)
    }

    /// Net names with recorded traces.
    pub fn nets(&self) -> impl Iterator<Item = &str> {
        self.traces.keys().map(String::as_str)
    }

    /// Renders selected traces as CSV (`time_ns` first column), for plotting
    /// the Fig. 2c / Fig. 9b waveforms externally. Unknown nets are skipped.
    pub fn to_csv(&self, nets: &[&str]) -> String {
        let present: Vec<&str> = nets
            .iter()
            .copied()
            .filter(|n| self.traces.contains_key(*n))
            .collect();
        let mut out = String::from("time_ns");
        for n in &present {
            out.push(',');
            out.push_str(n);
        }
        out.push('\n');
        let len = present
            .iter()
            .filter_map(|n| self.traces.get(*n).map(Vec::len))
            .min()
            .unwrap_or(0);
        for i in 0..len {
            out.push_str(&format!("{:.4}", i as f64 * self.dt_sample * 1e9));
            for n in &present {
                out.push_str(&format!(",{:.6}", self.traces[*n][i]));
            }
            out.push('\n');
        }
        out
    }
}

#[derive(Debug)]
struct SimMosfet {
    model: MosfetModel,
    gate: usize,
    source: usize,
    drain: usize,
}

#[derive(Debug)]
struct SimCap {
    farads: f64,
    a: usize,
    b: usize,
}

/// A netlist compiled for transient simulation.
///
/// Floating nets integrate charge; nets named in the [`Stimulus`] are driven
/// ideally. Every floating net carries a small parasitic capacitance to
/// ground so its voltage is always defined.
#[derive(Debug)]
pub struct AnalogCircuit {
    net_names: Vec<String>,
    mosfet_names: Vec<String>,
    mosfets: Vec<SimMosfet>,
    caps: Vec<SimCap>,
    parasitic_f: f64,
    vt_offsets: HashMap<String, Volts>,
}

impl AnalogCircuit {
    /// Default per-node parasitic capacitance (0.5 fF).
    pub const DEFAULT_PARASITIC_F: f64 = 0.5e-15;

    /// Compiles a netlist. MOSFET W/L ratios come from the netlist's drawn
    /// dimensions; capacitor values from the netlist's `Femtofarads`.
    pub fn from_netlist(netlist: &Netlist) -> Self {
        let net_names = (0..netlist.net_count())
            .map(|i| netlist.net_name(hifi_circuit::NetId(i)).to_owned())
            .collect();
        let mut mosfets = Vec::new();
        let mut caps = Vec::new();
        for (_, dev) in netlist.devices() {
            match dev {
                Device::Mosfet(m) => mosfets.push(SimMosfet {
                    model: MosfetModel::new(m.polarity, m.dims.w_over_l()),
                    gate: m.gate.0,
                    source: m.source.0,
                    drain: m.drain.0,
                }),
                Device::Capacitor(c) => caps.push(SimCap {
                    farads: c.value.value() * 1e-15,
                    a: c.a.0,
                    b: c.b.0,
                }),
            }
        }
        // Names align with mosfet insertion order for vt overrides.
        let mosfet_names = netlist
            .devices()
            .filter_map(|(_, d)| d.as_mosfet().map(|m| m.name.clone()))
            .collect();
        Self {
            net_names,
            mosfet_names,
            mosfets,
            caps,
            parasitic_f: Self::DEFAULT_PARASITIC_F,
            vt_offsets: HashMap::new(),
        }
    }

    /// Sets the per-node parasitic capacitance (builder style).
    pub fn with_parasitic(mut self, c: Femtofarads) -> Self {
        self.parasitic_f = c.value() * 1e-15;
        self
    }

    /// Adds a threshold-voltage offset to the named MOSFET — the sensing
    /// offset the OCSA compensates.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownDevice`] if no MOSFET has that name.
    pub fn with_vt_offset(mut self, device: &str, offset: Volts) -> Result<Self, SimError> {
        let Some(idx) = self.mosfet_names.iter().position(|n| n == device) else {
            return Err(SimError::UnknownDevice(device.into()));
        };
        self.mosfets[idx].model = self.mosfets[idx].model.with_vt_offset(offset);
        self.vt_offsets.insert(device.into(), offset);
        Ok(self)
    }

    fn net_index(&self, name: &str) -> Option<usize> {
        self.net_names.iter().position(|n| n == name)
    }

    /// Net names in the compiled circuit.
    pub fn net_names(&self) -> &[String] {
        &self.net_names
    }

    /// The threshold offsets applied so far, by device name.
    pub fn vt_offsets(&self) -> &HashMap<String, Volts> {
        &self.vt_offsets
    }
}

/// Transient run configuration and driver.
#[derive(Debug, Clone)]
pub struct Transient {
    /// Integration timestep (s). Default 0.2 ps.
    pub dt: f64,
    /// Simulation duration (s).
    pub t_end: f64,
    /// Recording interval (s). Default 10 ps.
    pub dt_sample: f64,
    /// Initial voltages for floating nets (by name); unlisted nets start at 0.
    pub initial: HashMap<String, f64>,
}

impl Transient {
    /// A transient of the given duration with workspace-default steps.
    pub fn new(t_end: f64) -> Self {
        Self {
            dt: 0.2e-12,
            t_end,
            dt_sample: 10e-12,
            initial: HashMap::new(),
        }
    }

    /// Sets an initial condition on a floating net (builder style).
    pub fn with_initial(mut self, net: &str, v: Volts) -> Self {
        self.initial.insert(net.into(), v.value());
        self
    }

    /// Runs the transient.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] for invalid timesteps, or stimuli/initial
    /// conditions naming unknown nets.
    pub fn run(&self, circuit: &AnalogCircuit, stimulus: &Stimulus) -> Result<Waveforms, SimError> {
        let positive = |x: f64| x.partial_cmp(&0.0) == Some(std::cmp::Ordering::Greater);
        if !positive(self.dt) || !positive(self.t_end) || !positive(self.dt_sample) {
            return Err(SimError::InvalidTimestep(self.dt));
        }
        let n = circuit.net_names.len();
        // Resolve driven nets.
        let mut driven: Vec<Option<&Waveform>> = vec![None; n];
        for name in stimulus.driven_nets() {
            let idx = circuit
                .net_index(name)
                .ok_or_else(|| SimError::UnknownNet(name.into()))?;
            driven[idx] = stimulus.waveform(name);
        }
        for name in self.initial.keys() {
            if circuit.net_index(name).is_none() {
                return Err(SimError::UnknownNet(name.clone()));
            }
        }

        // Node capacitance: parasitic + attached caps.
        let mut ctot = vec![circuit.parasitic_f; n];
        for c in &circuit.caps {
            ctot[c.a] += c.farads;
            ctot[c.b] += c.farads;
        }

        // Initial voltages.
        let mut v = vec![0.0f64; n];
        for (i, vv) in v.iter_mut().enumerate() {
            if let Some(w) = driven[i] {
                *vv = w.value(0.0);
            }
        }
        for (name, &volts) in self.initial.iter().map(|(k, vv)| (k.as_str(), vv)) {
            let idx = circuit.net_index(name).expect("validated above");
            if driven[idx].is_none() {
                v[idx] = volts;
            }
        }

        let steps = (self.t_end / self.dt).ceil() as usize;
        let sample_every = (self.dt_sample / self.dt).round().max(1.0) as usize;
        let mut traces: HashMap<String, Vec<f64>> = circuit
            .net_names
            .iter()
            .map(|nm| (nm.clone(), Vec::with_capacity(steps / sample_every + 2)))
            .collect();

        let mut prev_v = v.clone();
        let mut inject = vec![0.0f64; n];
        let mut coupled = vec![0.0f64; n];
        for step in 0..=steps {
            let t = step as f64 * self.dt;
            if step % sample_every == 0 {
                for (i, nm) in circuit.net_names.iter().enumerate() {
                    traces.get_mut(nm).expect("trace").push(v[i]);
                }
            }
            // Device currents into each node.
            inject.iter_mut().for_each(|x| *x = 0.0);
            for m in &circuit.mosfets {
                let i_ds = m.model.channel_current(v[m.gate], v[m.source], v[m.drain]);
                // Positive i_ds: conventional current enters the drain node
                // terminal and leaves at the source terminal.
                inject[m.drain] -= i_ds;
                inject[m.source] += i_ds;
            }
            // Capacitive coupling from the other plate's voltage change.
            coupled.iter_mut().for_each(|x| *x = 0.0);
            for c in &circuit.caps {
                let d_a = v[c.a] - prev_v[c.a];
                let d_b = v[c.b] - prev_v[c.b];
                coupled[c.a] += c.farads * d_b;
                coupled[c.b] += c.farads * d_a;
            }
            prev_v.copy_from_slice(&v);
            // Integrate floating nodes; refresh driven nodes.
            let t_next = t + self.dt;
            for i in 0..n {
                match driven[i] {
                    Some(w) => v[i] = w.value(t_next),
                    None => {
                        v[i] += (inject[i] * self.dt + coupled[i]) / ctot[i];
                    }
                }
            }
        }

        Ok(Waveforms {
            dt_sample: self.dt_sample,
            traces,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hifi_circuit::{Netlist, Polarity, TransistorClass, TransistorDims};
    use hifi_units::Nanometers;

    fn dims(wl: f64) -> TransistorDims {
        TransistorDims::new(Nanometers(100.0 * wl), Nanometers(100.0))
    }

    #[test]
    fn waveform_interpolation() {
        let w = Waveform::pwl(vec![(0.0, 0.0), (1.0, 1.0), (2.0, 1.0)]).unwrap();
        assert_eq!(w.value(-1.0), 0.0);
        assert!((w.value(0.5) - 0.5).abs() < 1e-12);
        assert_eq!(w.value(5.0), 1.0);
        assert!(Waveform::pwl(vec![(1.0, 0.0), (0.0, 1.0)]).is_err());
    }

    #[test]
    fn rc_discharge_through_nmos() {
        // A capacitor discharging through an NMOS switch approaches 0.
        let mut nl = Netlist::new("rc");
        let cap_net = nl.add_net("C");
        let gnd = nl.add_net("GND");
        let gate = nl.add_net("G");
        nl.add_capacitor("c", Femtofarads(50.0), cap_net, gnd);
        nl.add_mosfet(
            "sw",
            Polarity::Nmos,
            TransistorClass::Access,
            dims(4.0),
            gate,
            gnd,
            cap_net,
        );

        let circuit = AnalogCircuit::from_netlist(&nl);
        let mut stim = Stimulus::new();
        stim.hold("GND", Volts(0.0)).hold("G", Volts(1.2));
        let tr = Transient::new(5e-9).with_initial("C", Volts(1.0));
        let wf = tr.run(&circuit, &stim).unwrap();
        let v_end = wf.final_voltage("C").unwrap();
        assert!(v_end < 0.05, "discharged to near ground, got {v_end}");
        // And it decayed monotonically (no numerical blow-up).
        let trace = wf.trace("C").unwrap();
        assert!(trace.windows(2).all(|w| w[1] <= w[0] + 1e-6));
    }

    #[test]
    fn switch_off_holds_charge() {
        let mut nl = Netlist::new("hold");
        let cap_net = nl.add_net("C");
        let gnd = nl.add_net("GND");
        let gate = nl.add_net("G");
        nl.add_capacitor("c", Femtofarads(50.0), cap_net, gnd);
        nl.add_mosfet(
            "sw",
            Polarity::Nmos,
            TransistorClass::Access,
            dims(4.0),
            gate,
            gnd,
            cap_net,
        );
        let circuit = AnalogCircuit::from_netlist(&nl);
        let mut stim = Stimulus::new();
        stim.hold("GND", Volts(0.0)).hold("G", Volts(0.0)); // gate off
        let tr = Transient::new(5e-9).with_initial("C", Volts(1.0));
        let wf = tr.run(&circuit, &stim).unwrap();
        assert!((wf.final_voltage("C").unwrap() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn charge_sharing_matches_capacitor_divider() {
        // 20 fF cell at 1.1 V dumped onto a 180 fF bitline precharged to 0.55 V:
        // final = (20*1.1 + 180*0.55)/200 = 0.605 V.
        let mut nl = Netlist::new("cs");
        let bl = nl.add_net("BL");
        let sn = nl.add_net("SN");
        let gnd = nl.add_net("GND");
        let wl = nl.add_net("WL");
        nl.add_capacitor("cbl", Femtofarads(180.0), bl, gnd);
        nl.add_capacitor("cs", Femtofarads(20.0), sn, gnd);
        nl.add_mosfet(
            "acc",
            Polarity::Nmos,
            TransistorClass::Access,
            dims(2.0),
            wl,
            sn,
            bl,
        );
        let circuit = AnalogCircuit::from_netlist(&nl).with_parasitic(Femtofarads(0.001));
        let mut stim = Stimulus::new();
        stim.hold("GND", Volts(0.0));
        stim.ramp("WL", 1e-9, 1.5e-9, 0.0, 2.4); // boosted wordline
        let tr = Transient::new(20e-9)
            .with_initial("BL", Volts(0.55))
            .with_initial("SN", Volts(1.1));
        let wf = tr.run(&circuit, &stim).unwrap();
        let v = wf.final_voltage("BL").unwrap();
        assert!((v - 0.605).abs() < 0.01, "charge sharing gave {v}");
        // Cell node equalises with the bitline.
        let vs = wf.final_voltage("SN").unwrap();
        assert!((vs - v).abs() < 0.01);
    }

    #[test]
    fn csv_export_has_header_and_rows() {
        let mut nl = Netlist::new("csv");
        let a = nl.add_net("A");
        let gnd = nl.add_net("GND");
        nl.add_capacitor("c", Femtofarads(10.0), a, gnd);
        let circuit = AnalogCircuit::from_netlist(&nl);
        let mut stim = Stimulus::new();
        stim.hold("GND", Volts(0.0));
        let wf = Transient::new(1e-9)
            .with_initial("A", Volts(0.7))
            .run(&circuit, &stim)
            .unwrap();
        let csv = wf.to_csv(&["A", "MISSING", "GND"]);
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some("time_ns,A,GND"));
        let first = lines.next().unwrap();
        assert!(first.starts_with("0.0000,0.7"), "{first}");
        assert!(csv.lines().count() > 10);
    }

    #[test]
    fn unknown_net_in_stimulus_errors() {
        let mut nl = Netlist::new("x");
        nl.add_net("A");
        let circuit = AnalogCircuit::from_netlist(&nl);
        let mut stim = Stimulus::new();
        stim.hold("NOPE", Volts(0.0));
        let err = Transient::new(1e-9).run(&circuit, &stim).unwrap_err();
        assert_eq!(err, SimError::UnknownNet("NOPE".into()));
    }

    #[test]
    fn vt_offset_requires_known_device() {
        let mut nl = Netlist::new("x");
        let a = nl.add_net("A");
        let b = nl.add_net("B");
        let g = nl.add_net("G");
        nl.add_mosfet(
            "m1",
            Polarity::Nmos,
            TransistorClass::Access,
            dims(1.0),
            g,
            a,
            b,
        );
        let c = AnalogCircuit::from_netlist(&nl);
        let err = c.with_vt_offset("nope", Volts(0.02)).unwrap_err();
        assert_eq!(err, SimError::UnknownDevice("nope".into()));
        let c = AnalogCircuit::from_netlist(&nl)
            .with_vt_offset("m1", Volts(0.02))
            .unwrap();
        assert_eq!(c.vt_offsets()["m1"], Volts(0.02));
    }
}
