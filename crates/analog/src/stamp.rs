//! Dense MNA system assembly and direct solution.
//!
//! A Modified-Nodal-Analysis system over `n` unknowns: one row per
//! non-ground node (KCL) plus one row per voltage-source branch (the branch
//! current is an unknown, the branch row pins the node-voltage difference).
//! The ground node is eliminated at stamp time: stamps that reference
//! [`NodeRef::Ground`] simply skip the ground row/column.
//!
//! Sense-amplifier testbenches stay small (tens of nodes), so a dense
//! row-major matrix with Gaussian elimination and partial pivoting is both
//! the simplest and the fastest correct choice — no sparse bookkeeping, and
//! pivoting keeps the latch's near-singular high-gain moments stable.

/// A node reference in the MNA system: either the eliminated ground
/// reference or a numbered unknown.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum NodeRef {
    /// The global reference; its row and column are eliminated.
    Ground,
    /// Unknown `i` (a node voltage or, above the node count, a branch
    /// current).
    Node(usize),
}

impl NodeRef {
    fn index(self) -> Option<usize> {
        match self {
            NodeRef::Ground => None,
            NodeRef::Node(i) => Some(i),
        }
    }
}

/// Dense `A·x = b` system with MNA stamp helpers.
#[derive(Debug, Clone)]
pub(crate) struct MnaSystem {
    n: usize,
    a: Vec<f64>,
    b: Vec<f64>,
}

impl MnaSystem {
    pub(crate) fn new(n: usize) -> Self {
        Self {
            n,
            a: vec![0.0; n * n],
            b: vec![0.0; n],
        }
    }

    /// Zeroes the system for re-assembly (same sparsity every Newton
    /// iteration, so the allocation is reused).
    pub(crate) fn clear(&mut self) {
        self.a.iter_mut().for_each(|x| *x = 0.0);
        self.b.iter_mut().for_each(|x| *x = 0.0);
    }

    fn add(&mut self, row: usize, col: usize, v: f64) {
        self.a[row * self.n + col] += v;
    }

    /// Stamps a conductance `g` (siemens) between two nodes: the standard
    /// four-point pattern, rows/columns at ground skipped.
    pub(crate) fn stamp_conductance(&mut self, a: NodeRef, b: NodeRef, g: f64) {
        if let Some(i) = a.index() {
            self.add(i, i, g);
            if let Some(j) = b.index() {
                self.add(i, j, -g);
            }
        }
        if let Some(j) = b.index() {
            self.add(j, j, g);
            if let Some(i) = a.index() {
                self.add(j, i, -g);
            }
        }
    }

    /// Stamps a partial derivative ∂(current leaving `row`)/∂v(`col`) into
    /// the Jacobian — the general stamp nonlinear devices reduce to.
    pub(crate) fn stamp_jacobian(&mut self, row: NodeRef, col: NodeRef, dgdv: f64) {
        if let (Some(r), Some(c)) = (row.index(), col.index()) {
            self.add(r, c, dgdv);
        }
    }

    /// Adds to the right-hand side of a row (KCL residual or branch
    /// equation residual).
    pub(crate) fn stamp_rhs(&mut self, row: NodeRef, v: f64) {
        if let Some(r) = row.index() {
            self.b[r] += v;
        }
    }

    /// Couples a voltage-source branch current (unknown `branch`) into the
    /// KCL rows of its terminals: the branch current leaves the positive
    /// node and enters the negative one. The branch row itself pins
    /// `v(pos) − v(neg)`, whose residual the caller stamps via
    /// [`MnaSystem::stamp_rhs`].
    pub(crate) fn stamp_branch(&mut self, branch: usize, pos: NodeRef, neg: NodeRef) {
        if let Some(p) = pos.index() {
            self.add(p, branch, 1.0);
            self.add(branch, p, 1.0);
        }
        if let Some(q) = neg.index() {
            self.add(q, branch, -1.0);
            self.add(branch, q, -1.0);
        }
    }

    /// Solves the assembled system in place by Gaussian elimination with
    /// partial pivoting, returning the solution vector. Returns `None` when
    /// the matrix is numerically singular (no usable pivot).
    pub(crate) fn solve(&mut self) -> Option<Vec<f64>> {
        let n = self.n;
        if n == 0 {
            return Some(Vec::new());
        }
        let a = &mut self.a;
        let b = &mut self.b;
        for col in 0..n {
            // Partial pivot: largest magnitude in this column at or below
            // the diagonal.
            let mut pivot_row = col;
            let mut pivot_mag = a[col * n + col].abs();
            for row in (col + 1)..n {
                let mag = a[row * n + col].abs();
                if mag > pivot_mag {
                    pivot_mag = mag;
                    pivot_row = row;
                }
            }
            if pivot_mag < 1e-300 {
                return None;
            }
            if pivot_row != col {
                for k in 0..n {
                    a.swap(col * n + k, pivot_row * n + k);
                }
                b.swap(col, pivot_row);
            }
            let pivot = a[col * n + col];
            for row in (col + 1)..n {
                let factor = a[row * n + col] / pivot;
                if factor == 0.0 {
                    continue;
                }
                a[row * n + col] = 0.0;
                for k in (col + 1)..n {
                    a[row * n + k] -= factor * a[col * n + k];
                }
                b[row] -= factor * b[col];
            }
        }
        let mut x = vec![0.0; n];
        for row in (0..n).rev() {
            let mut sum = b[row];
            for k in (row + 1)..n {
                sum -= a[row * n + k] * x[k];
            }
            x[row] = sum / a[row * n + row];
        }
        Some(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resistor_divider_solves_exactly() {
        // 1 V source -> 1 kΩ -> node0 -> 1 kΩ -> ground: node0 = 0.5 V.
        // Unknowns: v0 (0), v_src (1), i_branch (2).
        let mut sys = MnaSystem::new(3);
        let v0 = NodeRef::Node(0);
        let vs = NodeRef::Node(1);
        sys.stamp_conductance(vs, v0, 1e-3);
        sys.stamp_conductance(v0, NodeRef::Ground, 1e-3);
        sys.stamp_branch(2, vs, NodeRef::Ground);
        sys.stamp_rhs(NodeRef::Node(2), 1.0);
        let x = sys.solve().expect("non-singular");
        assert!((x[0] - 0.5).abs() < 1e-12, "divider mid = {}", x[0]);
        assert!((x[1] - 1.0).abs() < 1e-12);
        // Branch current: by the stamp convention it *leaves* the positive
        // node into the source, so a delivering source reads negative —
        // 1 V over 2 kΩ gives −0.5 mA.
        assert!((x[2] + 0.5e-3).abs() < 1e-12, "i_branch = {}", x[2]);
    }

    #[test]
    fn singular_matrix_is_reported() {
        // A floating node with no conductance anywhere.
        let mut sys = MnaSystem::new(2);
        sys.stamp_conductance(NodeRef::Node(0), NodeRef::Ground, 1.0);
        assert!(sys.solve().is_none());
    }

    #[test]
    fn pivoting_handles_zero_diagonal() {
        // Pure voltage source between two nodes bridged by a conductance:
        // the branch row has a zero diagonal until pivoted.
        let mut sys = MnaSystem::new(3);
        let a = NodeRef::Node(0);
        let b = NodeRef::Node(1);
        sys.stamp_conductance(a, NodeRef::Ground, 1.0);
        sys.stamp_conductance(b, NodeRef::Ground, 1.0);
        sys.stamp_branch(2, a, b);
        sys.stamp_rhs(NodeRef::Node(2), 0.4);
        let x = sys.solve().expect("pivoting succeeds");
        assert!((x[0] - x[1] - 0.4).abs() < 1e-12);
        assert!(((x[0] + x[1]) - 0.0).abs() < 1e-12, "symmetric split");
    }
}
